package main

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// registrationRe captures the metric-name literal of a telemetry
// registration call: reg.Counter("name", ...), .Gauge, .GaugeFunc or
// .Histogram, tolerating a line break between the call and the literal.
var registrationRe = regexp.MustCompile(
	`\.(?:Counter|Gauge|GaugeFunc|Histogram)\(\s*"([a-zA-Z_][a-zA-Z0-9_]*)"`)

// TestMetricsDocumented fails when a metric registered anywhere in the
// production source tree is missing from docs/OBSERVABILITY.md, so the
// metric reference cannot silently rot. Test files are excluded: their
// throwaway series (hammer_*, test_*, ...) are not part of the
// product's metric surface.
func TestMetricsDocumented(t *testing.T) {
	names := map[string][]string{} // metric name -> files registering it
	for _, root := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range registrationRe.FindAllStringSubmatch(string(src), -1) {
				names[m[1]] = append(names[m[1]], path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(names) == 0 {
		t.Fatal("no metric registrations found under internal/ or cmd/; the lint regex is broken")
	}

	doc, err := os.ReadFile(filepath.Join("docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatal(err)
	}
	docText := string(doc)

	var missing []string
	for name := range names {
		if !strings.Contains(docText, "`"+name+"`") {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		t.Errorf("metric %q (registered in %s) is not documented in docs/OBSERVABILITY.md",
			name, strings.Join(names[name], ", "))
	}
	t.Logf("checked %d registered metric names against docs/OBSERVABILITY.md", len(names))
}
