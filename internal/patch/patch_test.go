package patch

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"exterminator/internal/site"
)

func TestAddPadKeepsMax(t *testing.T) {
	s := New()
	if !s.AddPad(1, 10) {
		t.Fatal("first AddPad reported no change")
	}
	if s.AddPad(1, 5) {
		t.Fatal("smaller pad reported change")
	}
	if !s.AddPad(1, 20) {
		t.Fatal("larger pad reported no change")
	}
	if s.Pad(1) != 20 {
		t.Fatalf("pad = %d", s.Pad(1))
	}
	if s.AddPad(2, 0) {
		t.Fatal("zero pad stored")
	}
}

func TestAddDeferralKeepsMax(t *testing.T) {
	s := New()
	p := site.Pair{Alloc: 1, Free: 2}
	s.AddDeferral(p, 100)
	s.AddDeferral(p, 50)
	if s.Deferral(p) != 100 {
		t.Fatalf("deferral = %d", s.Deferral(p))
	}
	s.AddDeferral(p, 200)
	if s.Deferral(p) != 200 {
		t.Fatalf("deferral = %d", s.Deferral(p))
	}
	if s.Deferral(site.Pair{Alloc: 9, Free: 9}) != 0 {
		t.Fatal("missing pair nonzero")
	}
}

func mkSet(pads map[uint32]uint32, defs map[[2]uint32]uint64) *Set {
	s := New()
	for k, v := range pads {
		s.AddPad(site.ID(k), v)
	}
	for k, v := range defs {
		s.AddDeferral(site.Pair{Alloc: site.ID(k[0]), Free: site.ID(k[1])}, v)
	}
	return s
}

func TestMergeSemilattice(t *testing.T) {
	a := mkSet(map[uint32]uint32{1: 10, 2: 5}, map[[2]uint32]uint64{{1, 2}: 7})
	b := mkSet(map[uint32]uint32{1: 4, 3: 9}, map[[2]uint32]uint64{{1, 2}: 11, {3, 4}: 2})

	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	if !ab.Equal(ba) {
		t.Fatal("merge not commutative")
	}
	if ab.Pad(1) != 10 || ab.Pad(3) != 9 {
		t.Fatal("merge did not take maxima")
	}
	if ab.Deferral(site.Pair{Alloc: 1, Free: 2}) != 11 {
		t.Fatal("deferral max wrong")
	}
	// Idempotent.
	ab2 := ab.Clone()
	if ab2.Merge(ab) {
		t.Fatal("self merge reported change")
	}
	if !ab2.Equal(ab) {
		t.Fatal("merge not idempotent")
	}
}

func TestMergeAssociative(t *testing.T) {
	if err := quick.Check(func(p1, p2, p3 map[uint32]uint32) bool {
		a := mkSet(p1, nil)
		b := mkSet(p2, nil)
		c := mkSet(p3, nil)
		left := a.Clone()
		left.Merge(b)
		left.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		right := a.Clone()
		right.Merge(bc)
		return left.Equal(right)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	s := mkSet(
		map[uint32]uint32{0xdeadbeef: 6, 1: 36},
		map[[2]uint32]uint64{{0xa, 0xb}: 21, {0xffffffff, 0}: 1 << 40},
	)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", got, s)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a patch file....."))); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty decoded")
	}
	// Truncated records.
	s := mkSet(map[uint32]uint32{1: 2}, nil)
	var buf bytes.Buffer
	s.Encode(&buf)
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated file decoded")
	}
}

func TestTextRoundTrip(t *testing.T) {
	s := mkSet(
		map[uint32]uint32{0xcafe: 12},
		map[[2]uint32]uint64{{0x1, 0x2}: 33},
	)
	var buf bytes.Buffer
	if err := s.EncodeText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("text round trip mismatch: %s vs %s", got, s)
	}
}

func TestTextComments(t *testing.T) {
	in := "# a comment\n\npad 0000cafe 6\ndefer 00000001 00000002 10\n"
	s, err := DecodeText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Pad(0xcafe) != 6 || s.Deferral(site.Pair{Alloc: 1, Free: 2}) != 10 {
		t.Fatalf("parsed %s", s)
	}
}

func TestTextErrors(t *testing.T) {
	for _, bad := range []string{
		"pad 1\n",
		"pad zz 5\n",
		"defer 1 2\n",
		"frobnicate 1 2 3\n",
	} {
		if _, err := DecodeText(strings.NewReader(bad)); err == nil {
			t.Errorf("parsed bad input %q", bad)
		}
	}
}

func TestDeterministicEncoding(t *testing.T) {
	s := mkSet(map[uint32]uint32{3: 1, 1: 1, 2: 1}, map[[2]uint32]uint64{{2, 1}: 5, {1, 1}: 5})
	var b1, b2 bytes.Buffer
	s.Encode(&b1)
	s.Clone().Encode(&b2)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("encoding not deterministic")
	}
	if s.String() != s.Clone().String() {
		t.Fatal("text not deterministic")
	}
}

func TestPropertyEncodeDecodeIdentity(t *testing.T) {
	if err := quick.Check(func(pads map[uint32]uint32, defs map[uint32]uint64) bool {
		s := New()
		for k, v := range pads {
			if v > 0 {
				s.AddPad(site.ID(k), v)
			}
		}
		for k, v := range defs {
			if v > 0 {
				s.AddDeferral(site.Pair{Alloc: site.ID(k), Free: site.ID(k >> 1)}, v)
			}
		}
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		return err == nil && got.Equal(s)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLen(t *testing.T) {
	s := mkSet(map[uint32]uint32{1: 1, 2: 2}, map[[2]uint32]uint64{{1, 2}: 3})
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
}

func BenchmarkMerge1000Sites(b *testing.B) {
	big := New()
	for i := uint32(0); i < 1000; i++ {
		big.AddPad(site.ID(i), i+1)
	}
	for i := 0; i < b.N; i++ {
		s := New()
		s.Merge(big)
	}
}
