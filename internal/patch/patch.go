// Package patch implements Exterminator's runtime patches (paper §6).
//
// A patch set holds two tables keyed by call sites:
//
//   - the pad table maps an allocation site to the number of extra bytes
//     every allocation from that site receives, containing buffer
//     overflows (§6.1);
//   - the deferral table maps an (allocation site, deallocation site) pair
//     to an allocation-clock delay applied to frees from that pair,
//     preventing premature reuse by dangling pointers (§6.2).
//
// Patches compose by taking maxima, which makes Merge a join on a
// semilattice: commutative, associative and idempotent. That is what
// enables collaborative correction (§6.4) — users merge patch files
// freely and the result covers every observed error.
package patch

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"exterminator/internal/site"
)

// Set is a runtime patch set. The zero value is not usable; call New.
type Set struct {
	// Pads maps allocation site → trailing pad bytes (forward overflows).
	Pads map[site.ID]uint32
	// FrontPads maps allocation site → leading pad bytes. Front pads
	// contain *backward* overflows (underflows) — the extension the
	// paper's §2.1 describes but does not implement: the allocator
	// over-allocates and returns an interior pointer, so writes before
	// the object land in owned space.
	FrontPads map[site.ID]uint32
	// Deferrals maps (alloc site, free site) → allocation-clock deferral.
	Deferrals map[site.Pair]uint64
}

// New returns an empty patch set.
func New() *Set {
	return &Set{
		Pads:      make(map[site.ID]uint32),
		FrontPads: make(map[site.ID]uint32),
		Deferrals: make(map[site.Pair]uint64),
	}
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := New()
	for k, v := range s.Pads {
		c.Pads[k] = v
	}
	for k, v := range s.FrontPads {
		c.FrontPads[k] = v
	}
	for k, v := range s.Deferrals {
		c.Deferrals[k] = v
	}
	return c
}

// AddPad records a pad for an allocation site, keeping the maximum pad
// seen so far (§6.1). It reports whether the set changed.
func (s *Set) AddPad(a site.ID, pad uint32) bool {
	if pad == 0 {
		return false
	}
	if cur, ok := s.Pads[a]; ok && cur >= pad {
		return false
	}
	s.Pads[a] = pad
	return true
}

// AddFrontPad records a leading pad for an allocation site, keeping the
// maximum. It reports whether the set changed.
func (s *Set) AddFrontPad(a site.ID, pad uint32) bool {
	if pad == 0 {
		return false
	}
	if cur, ok := s.FrontPads[a]; ok && cur >= pad {
		return false
	}
	s.FrontPads[a] = pad
	return true
}

// AddDeferral records a deallocation deferral for a site pair, keeping the
// maximum (§6.2). It reports whether the set changed.
func (s *Set) AddDeferral(p site.Pair, d uint64) bool {
	if d == 0 {
		return false
	}
	if cur, ok := s.Deferrals[p]; ok && cur >= d {
		return false
	}
	s.Deferrals[p] = d
	return true
}

// Pad returns the trailing pad for an allocation site (0 if none).
func (s *Set) Pad(a site.ID) uint32 { return s.Pads[a] }

// FrontPad returns the leading pad for an allocation site (0 if none).
func (s *Set) FrontPad(a site.ID) uint32 { return s.FrontPads[a] }

// Deferral returns the deferral for a site pair (0 if none).
func (s *Set) Deferral(p site.Pair) uint64 { return s.Deferrals[p] }

// Len returns the total number of patch entries.
func (s *Set) Len() int { return len(s.Pads) + len(s.FrontPads) + len(s.Deferrals) }

// Merge folds other into s by taking maxima (§6.4). It reports whether s
// changed.
func (s *Set) Merge(other *Set) bool {
	changed := false
	for k, v := range other.Pads {
		if s.AddPad(k, v) {
			changed = true
		}
	}
	for k, v := range other.FrontPads {
		if s.AddFrontPad(k, v) {
			changed = true
		}
	}
	for k, v := range other.Deferrals {
		if s.AddDeferral(k, v) {
			changed = true
		}
	}
	return changed
}

// Diff returns the entries in s that are absent from (or stronger than
// in) base — the delta that Merge(base, diff) needs to reconstruct s.
// Like Merge, it compares by the semilattice order: an entry counts only
// if its value exceeds base's.
func (s *Set) Diff(base *Set) *Set {
	out := New()
	if base == nil {
		base = out
	}
	for k, v := range s.Pads {
		if v > base.Pad(k) {
			out.Pads[k] = v
		}
	}
	for k, v := range s.FrontPads {
		if v > base.FrontPad(k) {
			out.FrontPads[k] = v
		}
	}
	for k, v := range s.Deferrals {
		if v > base.Deferral(k) {
			out.Deferrals[k] = v
		}
	}
	return out
}

// Equal reports whether two sets contain identical patches.
func (s *Set) Equal(other *Set) bool {
	if len(s.Pads) != len(other.Pads) || len(s.FrontPads) != len(other.FrontPads) ||
		len(s.Deferrals) != len(other.Deferrals) {
		return false
	}
	for k, v := range s.Pads {
		if other.Pads[k] != v {
			return false
		}
	}
	for k, v := range s.FrontPads {
		if other.FrontPads[k] != v {
			return false
		}
	}
	for k, v := range s.Deferrals {
		if other.Deferrals[k] != v {
			return false
		}
	}
	return true
}

// String renders the set in the text format (sorted, deterministic).
func (s *Set) String() string {
	var b strings.Builder
	s.encodeText(&b)
	return b.String()
}

// Binary format: magic, version, counts, then fixed-width records.
const (
	magic   = 0x5854504d // "XTPM"
	version = 2
)

// Encode writes the set in the compact binary format (§6.4 measures patch
// files of ~130KB for espresso; this format is what those numbers are
// computed over in the reproduction).
func (s *Set) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(s.Pads)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(s.FrontPads)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(s.Deferrals)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	// Sorted for deterministic output.
	for _, k := range sortedPadSites(s.Pads) {
		var rec [8]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(k))
		binary.LittleEndian.PutUint32(rec[4:], s.Pads[k])
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	for _, k := range sortedPadSites(s.FrontPads) {
		var rec [8]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(k))
		binary.LittleEndian.PutUint32(rec[4:], s.FrontPads[k])
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	for _, k := range sortedPairs(s.Deferrals) {
		var rec [16]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(k.Alloc))
		binary.LittleEndian.PutUint32(rec[4:], uint32(k.Free))
		binary.LittleEndian.PutUint64(rec[8:], s.Deferrals[k])
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a binary patch set.
func Decode(r io.Reader) (*Set, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("patch: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, errors.New("patch: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return nil, fmt.Errorf("patch: unsupported version %d", v)
	}
	nPads := binary.LittleEndian.Uint32(hdr[8:])
	nFront := binary.LittleEndian.Uint32(hdr[12:])
	nDefs := binary.LittleEndian.Uint32(hdr[16:])
	const maxEntries = 1 << 24
	if nPads > maxEntries || nFront > maxEntries || nDefs > maxEntries {
		return nil, errors.New("patch: implausible entry count")
	}
	s := New()
	for i := uint32(0); i < nPads; i++ {
		var rec [8]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("patch: truncated pad record: %w", err)
		}
		s.Pads[site.ID(binary.LittleEndian.Uint32(rec[0:]))] = binary.LittleEndian.Uint32(rec[4:])
	}
	for i := uint32(0); i < nFront; i++ {
		var rec [8]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("patch: truncated front-pad record: %w", err)
		}
		s.FrontPads[site.ID(binary.LittleEndian.Uint32(rec[0:]))] = binary.LittleEndian.Uint32(rec[4:])
	}
	for i := uint32(0); i < nDefs; i++ {
		var rec [16]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("patch: truncated deferral record: %w", err)
		}
		p := site.Pair{
			Alloc: site.ID(binary.LittleEndian.Uint32(rec[0:])),
			Free:  site.ID(binary.LittleEndian.Uint32(rec[4:])),
		}
		s.Deferrals[p] = binary.LittleEndian.Uint64(rec[8:])
	}
	return s, nil
}

// EncodeText writes a human-readable line-oriented format:
//
//	pad <allocsite-hex> <bytes>
//	defer <allocsite-hex> <freesite-hex> <allocations>
func (s *Set) EncodeText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	s.encodeText(bw)
	return bw.Flush()
}

func (s *Set) encodeText(w io.Writer) {
	for _, k := range sortedPadSites(s.Pads) {
		fmt.Fprintf(w, "pad %08x %d\n", uint32(k), s.Pads[k])
	}
	for _, k := range sortedPadSites(s.FrontPads) {
		fmt.Fprintf(w, "fpad %08x %d\n", uint32(k), s.FrontPads[k])
	}
	for _, k := range sortedPairs(s.Deferrals) {
		fmt.Fprintf(w, "defer %08x %08x %d\n", uint32(k.Alloc), uint32(k.Free), s.Deferrals[k])
	}
}

// DecodeText parses the text format. Blank lines and #-comments are
// ignored.
func DecodeText(r io.Reader) (*Set, error) {
	s := New()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "pad", "fpad":
			if len(fields) != 3 {
				return nil, fmt.Errorf("patch: line %d: want 'pad <site> <bytes>'", line)
			}
			var sid uint32
			var pad uint32
			if _, err := fmt.Sscanf(fields[1], "%x", &sid); err != nil {
				return nil, fmt.Errorf("patch: line %d: bad site: %v", line, err)
			}
			if _, err := fmt.Sscanf(fields[2], "%d", &pad); err != nil {
				return nil, fmt.Errorf("patch: line %d: bad pad: %v", line, err)
			}
			if fields[0] == "fpad" {
				s.AddFrontPad(site.ID(sid), pad)
			} else {
				s.AddPad(site.ID(sid), pad)
			}
		case "defer":
			if len(fields) != 4 {
				return nil, fmt.Errorf("patch: line %d: want 'defer <alloc> <free> <n>'", line)
			}
			var a, f uint32
			var d uint64
			if _, err := fmt.Sscanf(fields[1], "%x", &a); err != nil {
				return nil, fmt.Errorf("patch: line %d: bad alloc site: %v", line, err)
			}
			if _, err := fmt.Sscanf(fields[2], "%x", &f); err != nil {
				return nil, fmt.Errorf("patch: line %d: bad free site: %v", line, err)
			}
			if _, err := fmt.Sscanf(fields[3], "%d", &d); err != nil {
				return nil, fmt.Errorf("patch: line %d: bad deferral: %v", line, err)
			}
			s.AddDeferral(site.Pair{Alloc: site.ID(a), Free: site.ID(f)}, d)
		default:
			return nil, fmt.Errorf("patch: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func sortedPadSites(m map[site.ID]uint32) []site.ID {
	keys := make([]site.ID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortedPairs(m map[site.Pair]uint64) []site.Pair {
	keys := make([]site.Pair, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Alloc != keys[j].Alloc {
			return keys[i].Alloc < keys[j].Alloc
		}
		return keys[i].Free < keys[j].Free
	})
	return keys
}
