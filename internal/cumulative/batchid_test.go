package cumulative

import (
	"testing"

	"exterminator/internal/site"
)

// TestBatchIDStableAndDiscriminating: the ID is a pure function of
// (client, watermark position, content) — identical for a verbatim retry,
// different for any other batch.
func TestBatchIDStableAndDiscriminating(t *testing.T) {
	snap := func() *Snapshot {
		return &Snapshot{
			C: 4, P: 0.5, Runs: 3,
			Sites: []site.ID{0x10, 0x20},
			Overflow: []SiteObservations{
				{Site: 0x10, Obs: []Observation{{X: 0.25, Y: true}}},
			},
		}
	}
	base := BatchID("client-a", 5, 17, snap())
	if base == "" {
		t.Fatal("empty batch ID")
	}
	if got := BatchID("client-a", 5, 17, snap()); got != base {
		t.Fatalf("retry of an identical batch changed ID: %s vs %s", got, base)
	}
	if got := BatchID("client-b", 5, 17, snap()); got == base {
		t.Fatal("different client, same ID")
	}
	if got := BatchID("client-a", 6, 17, snap()); got == base {
		t.Fatal("different watermark run position, same ID")
	}
	if got := BatchID("client-a", 5, 18, snap()); got == base {
		t.Fatal("different watermark observation position, same ID")
	}
	changed := snap()
	changed.Runs++
	if got := BatchID("client-a", 5, 17, changed); got == base {
		t.Fatal("different content, same ID")
	}
}

// TestUploadedCountsTracksWatermark: UploadedCounts moves exactly with
// MarkUploaded, so two deltas cut at the same unacknowledged position
// place identically (retry stability) and any acknowledged progress
// moves the position (fresh IDs for fresh deltas).
func TestUploadedCountsTracksWatermark(t *testing.T) {
	hist := NewHistory(DefaultConfig())
	if r, o := hist.UploadedCounts(); r != 0 || o != 0 {
		t.Fatalf("fresh history watermark at (%d, %d), want (0, 0)", r, o)
	}
	hist.Absorb(&Snapshot{
		Runs: 2, FailedRuns: 1,
		Sites: []site.ID{1},
		Overflow: []SiteObservations{
			{Site: 1, Obs: []Observation{{X: 0.5, Y: true}, {X: 0.5, Y: false}}},
		},
		Dangling: []PairObservations{
			{Alloc: 1, Free: 2, Obs: []Observation{{X: 0.5, Y: true}}},
		},
	})
	delta := hist.UploadDelta()
	if r, o := hist.UploadedCounts(); r != 0 || o != 0 {
		t.Fatalf("cutting a delta moved the watermark to (%d, %d)", r, o)
	}
	hist.MarkUploaded(delta)
	// Runs position counts runs + failed; observation position counts
	// every overflow and dangling observation.
	if r, o := hist.UploadedCounts(); r != 3 || o != 3 {
		t.Fatalf("watermark position (%d, %d) after ack, want (3, 3)", r, o)
	}
}
