package cumulative

import (
	"encoding/json"
	"testing"

	"exterminator/internal/site"
)

// recordedHistory builds a history with real overflow and dangling
// evidence using the simulated-run helpers.
func recordedHistory(t *testing.T, seedBase uint64) *History {
	t.Helper()
	hist := NewHistory(DefaultConfig())
	pair := site.Pair{Alloc: 0xDA, Free: 0xDF}
	for r := 1; r <= 10; r++ {
		h := overflowRun(seedBase+uint64(r)*2654435761, 0xBAD, 8)
		hist.RecordRun(h, len(h.Scan(false)) > 0)
		dh, failed := danglingRun(seedBase+uint64(r)*11400714819323198485, pair)
		hist.RecordRun(dh, failed)
	}
	return hist
}

func TestSnapshotAbsorbRoundTrip(t *testing.T) {
	hist := recordedHistory(t, 7)
	snap := hist.Snapshot()

	got := NewHistory(hist.Config())
	got.Absorb(snap)

	// The round-tripped history must be evidence-equivalent: same
	// counters, same findings, same candidate rankings.
	if got.Runs != hist.Runs || got.FailedRuns != hist.FailedRuns || got.CorruptRuns != hist.CorruptRuns {
		t.Fatalf("counters differ: got %s want %s", got, hist)
	}
	if got.Sites() != hist.Sites() {
		t.Fatalf("sites differ: %d vs %d", got.Sites(), hist.Sites())
	}
	hist.Canonicalize()
	if !hist.Equal(got) {
		t.Fatal("canonicalized original and absorbed copy differ")
	}
	if !hist.Identify().Patches().Equal(got.Identify().Patches()) {
		t.Fatal("findings differ after snapshot round trip")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	hist := recordedHistory(t, 99)
	snap := hist.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got := NewHistory(hist.Config())
	got.Absorb(&back)
	hist.Canonicalize()
	if !hist.Equal(got) {
		t.Fatal("JSON round trip lost evidence")
	}
}

func TestHistoryMergeSplitEvidence(t *testing.T) {
	// Two installations each see half the runs; merging their histories
	// must equal one installation that saw everything.
	pair := site.Pair{Alloc: 0xDA, Free: 0xDF}
	whole := NewHistory(DefaultConfig())
	a := NewHistory(DefaultConfig())
	b := NewHistory(DefaultConfig())
	for r := 1; r <= 20; r++ {
		h := overflowRun(uint64(r)*2654435761, 0xBAD, 8)
		corrupt := len(h.Scan(false)) > 0
		h2 := overflowRun(uint64(r)*2654435761, 0xBAD, 8)
		whole.RecordRun(h, corrupt)
		if r%2 == 0 {
			a.RecordRun(h2, corrupt)
		} else {
			b.RecordRun(h2, corrupt)
		}
		dh, failed := danglingRun(uint64(r)*11400714819323198485, pair)
		dh2, _ := danglingRun(uint64(r)*11400714819323198485, pair)
		whole.RecordRun(dh, failed)
		if r%2 == 0 {
			a.RecordRun(dh2, failed)
		} else {
			b.RecordRun(dh2, failed)
		}
	}
	merged := NewHistory(DefaultConfig())
	merged.Merge(a)
	merged.Merge(b)
	whole.Canonicalize()
	merged.Canonicalize()
	if !whole.Equal(merged) {
		t.Fatalf("merged halves differ from whole:\n  whole  %s\n  merged %s", whole, merged)
	}
	if !whole.Identify().Patches().Equal(merged.Identify().Patches()) {
		t.Fatal("merged findings differ from whole-history findings")
	}
}

func TestCanonicalizeMakesOrderIrrelevant(t *testing.T) {
	// Same multiset of observations absorbed in different orders must
	// produce bit-identical Bayes factors after canonicalization.
	mk := func(order []int) *History {
		h := NewHistory(DefaultConfig())
		obs := []Observation{
			{X: 0.1, Y: true}, {X: 0.5, Y: false}, {X: 0.25, Y: true},
			{X: 0.7, Y: false}, {X: 0.1, Y: false},
		}
		for _, i := range order {
			h.Absorb(&Snapshot{
				Sites:    []site.ID{0xAB},
				Overflow: []SiteObservations{{Site: 0xAB, Obs: []Observation{obs[i]}}},
			})
		}
		h.Canonicalize()
		return h
	}
	h1 := mk([]int{0, 1, 2, 3, 4})
	h2 := mk([]int{4, 2, 0, 3, 1})
	b1 := BayesFactor(h1.ObservationsFor(0xAB))
	b2 := BayesFactor(h2.ObservationsFor(0xAB))
	if b1 != b2 {
		t.Fatalf("order-dependent Bayes factor: %v vs %v", b1, b2)
	}
}
