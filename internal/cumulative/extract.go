package cumulative

import "exterminator/internal/site"

// Evidence extraction: the surgical inverse of Absorb, built for cluster
// rebalancing (internal/cluster). When ring membership changes, a moved
// key's evidence must leave its old partition in one piece — otherwise
// fresh observations accumulate on the new owner while the old evidence
// ages on the previous one, and the Bayesian test never sees the pooled
// multiset it needs. Extract removes a key set's evidence atomically
// (with respect to this history) and returns it in canonical snapshot
// form, ready to be absorbed by the new owner.

// EvidenceKeys returns every allocation-site key this history holds
// evidence or hints under, sorted: the site set, overflow sites, pad-hint
// sites, and the allocation side of dangling pairs and deferral hints.
// This is the key universe a rebalance diffs against ring ownership —
// dangling pairs key by their alloc side, matching fleet.Store's striping
// and cluster.Ring's Owner.
func (hist *History) EvidenceKeys() []site.ID {
	set := make(map[site.ID]bool, len(hist.sites))
	for s := range hist.sites {
		set[s] = true
	}
	for s := range hist.overflow {
		set[s] = true
	}
	for s := range hist.padHint {
		set[s] = true
	}
	for p := range hist.dangling {
		set[p.Alloc] = true
	}
	for p := range hist.dferHint {
		set[p.Alloc] = true
	}
	return sortedIDKeys(set)
}

// Extract removes and returns the canonical evidence for a key set: the
// keys' overflow observations, pad hints, site-set membership, and every
// dangling pair and deferral hint whose allocation side is in the set.
// Run counters are NOT moved — they are not keyed, so they stay where
// the batch that carried them landed; cross-partition totals are
// preserved because the coordinator sums counters across partitions.
//
// Absorbing the returned snapshot into an empty history and re-absorbing
// it here reproduces the original evidence exactly (observations are
// returned in canonical order, hints at their maxima). Factor caches and
// dirty marks for the removed keys are dropped; the upload watermark's
// entries for them are cleared so a later UploadDelta cannot reference
// evidence that no longer exists.
func (hist *History) Extract(keys []site.ID) *Snapshot {
	if len(keys) == 0 {
		return &Snapshot{C: hist.cfg.C, P: hist.cfg.P}
	}
	ks := make(map[site.ID]bool, len(keys))
	for _, k := range keys {
		ks[k] = true
	}
	out := &Snapshot{C: hist.cfg.C, P: hist.cfg.P}
	for _, s := range sortedIDKeys(hist.sites) {
		if !ks[s] {
			continue
		}
		out.Sites = append(out.Sites, s)
		delete(hist.sites, s)
	}
	for _, s := range sortedIDKeys(hist.overflow) {
		if !ks[s] {
			continue
		}
		obs := hist.overflow[s]
		sortObs(obs)
		out.Overflow = append(out.Overflow, SiteObservations{Site: s, Obs: obs})
		delete(hist.overflow, s)
		delete(hist.bfOverflow, s)
		delete(hist.dirtyOvf, s)
	}
	for _, p := range sortedPairKeys(hist.dangling) {
		if !ks[p.Alloc] {
			continue
		}
		obs := hist.dangling[p]
		sortObs(obs)
		out.Dangling = append(out.Dangling, PairObservations{Alloc: p.Alloc, Free: p.Free, Obs: obs})
		delete(hist.dangling, p)
		delete(hist.bfDangling, p)
		delete(hist.dirtyDan, p)
	}
	for _, s := range sortedIDKeys(hist.padHint) {
		if !ks[s] {
			continue
		}
		out.PadHints = append(out.PadHints, PadHint{Site: s, Pad: hist.padHint[s]})
		delete(hist.padHint, s)
	}
	for _, p := range sortedPairKeys(hist.dferHint) {
		if !ks[p.Alloc] {
			continue
		}
		out.DeferralHints = append(out.DeferralHints, DeferralHint{Alloc: p.Alloc, Free: p.Free, Deferral: hist.dferHint[p]})
		delete(hist.dferHint, p)
	}
	if hist.uploaded.sites != nil {
		m := &hist.uploaded
		for s := range ks {
			delete(m.sites, s)
			delete(m.overflow, s)
			delete(m.pad, s)
		}
		for p := range m.dangling {
			if ks[p.Alloc] {
				delete(m.dangling, p)
			}
		}
		for p := range m.dfer {
			if ks[p.Alloc] {
				delete(m.dfer, p)
			}
		}
	}
	return out
}
