package cumulative

import (
	"bytes"
	"testing"

	"exterminator/internal/site"
)

func populatedHistory(t *testing.T) *History {
	t.Helper()
	hist := NewHistory(DefaultConfig())
	for runs := 1; runs <= 10; runs++ {
		h := overflowRun(uint64(runs)*2654435761, 0xBAD, 8)
		hist.RecordRun(h, runs%2 == 0)
	}
	if hist.Runs != 10 {
		t.Fatal("setup failed")
	}
	return hist
}

func TestHistoryRoundTrip(t *testing.T) {
	hist := populatedHistory(t)
	var buf bytes.Buffer
	if err := hist.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(hist) {
		t.Fatal("round trip mismatch")
	}
	// The restored history classifies identically.
	a, b := hist.Identify(), got.Identify()
	if len(a.Overflows) != len(b.Overflows) || len(a.Danglings) != len(b.Danglings) {
		t.Fatalf("classification differs after restore: %+v vs %+v", a, b)
	}
}

func TestHistoryResumeAcrossRestart(t *testing.T) {
	// The §3.4 deployment story: runs accumulate across process restarts
	// via the persisted summaries. Splitting one experiment into two
	// "processes" must reach the same conclusion as one continuous run.
	continuous := NewHistory(DefaultConfig())
	for runs := 1; runs <= 20; runs++ {
		h := overflowRun(uint64(runs)*40503, 0xBAD, 8)
		continuous.RecordRun(h, false)
	}

	first := NewHistory(DefaultConfig())
	for runs := 1; runs <= 10; runs++ {
		h := overflowRun(uint64(runs)*40503, 0xBAD, 8)
		first.RecordRun(h, false)
	}
	var buf bytes.Buffer
	if err := first.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := DecodeHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for runs := 11; runs <= 20; runs++ {
		h := overflowRun(uint64(runs)*40503, 0xBAD, 8)
		resumed.RecordRun(h, false)
	}
	if !resumed.Equal(continuous) {
		t.Fatal("resumed history diverges from continuous run")
	}
}

func TestHistorySizeIsKilobytes(t *testing.T) {
	// "The retained data is on the order of a few kilobytes per
	// execution, compared to tens or hundreds of megabytes for each heap
	// image" (§3.4).
	hist := populatedHistory(t)
	var buf bytes.Buffer
	hist.Encode(&buf)
	perRun := buf.Len() / hist.Runs
	if perRun > 64*1024 {
		t.Fatalf("summary costs %d bytes/run — not 'a few kilobytes'", perRun)
	}
	t.Logf("history: %d bytes total, %d bytes/run", buf.Len(), perRun)
}

func TestDecodeHistoryRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{nil, []byte("bogus"), bytes.Repeat([]byte{0xFF}, 64)} {
		if _, err := DecodeHistory(bytes.NewReader(in)); err == nil {
			t.Fatalf("decoded %q", in)
		}
	}
	// Truncation.
	hist := populatedHistory(t)
	var buf bytes.Buffer
	hist.Encode(&buf)
	if _, err := DecodeHistory(bytes.NewReader(buf.Bytes()[:buf.Len()/3])); err == nil {
		t.Fatal("decoded truncated history")
	}
}

func TestEmptyHistoryRoundTrip(t *testing.T) {
	hist := NewHistory(Config{C: 3, P: 0.25})
	var buf bytes.Buffer
	if err := hist.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(hist) || got.cfg.C != 3 || got.cfg.P != 0.25 {
		t.Fatal("empty round trip failed")
	}
	_ = site.ID(0)
}
