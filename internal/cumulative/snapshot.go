package cumulative

import (
	"sort"

	"exterminator/internal/site"
)

// Snapshot is an exported, exchange-friendly view of a History: the per-site
// (X, Y) observations, hints, site set and run counters, with every list in
// a canonical sorted order. It exists so observations can leave the process
// — the fleet aggregation service (internal/fleet) JSON-encodes Snapshots on
// the wire — without exposing History's internals or its invariants.
//
// Canonical ordering matters beyond determinism of the encoding: observation
// lists are sorted by (X, Y), which makes every downstream float computation
// (BayesFactor multiplies factors in slice order) independent of the order
// in which contributions arrived. Observations are exchangeable under the
// §5.1 model, so sorting does not change their meaning — only fixes the
// floating-point evaluation order.
type Snapshot struct {
	C float64 `json:"c"`
	P float64 `json:"p"`

	Runs        int `json:"runs"`
	FailedRuns  int `json:"failedRuns"`
	CorruptRuns int `json:"corruptRuns"`

	Sites         []site.ID          `json:"sites,omitempty"`
	Overflow      []SiteObservations `json:"overflow,omitempty"`
	Dangling      []PairObservations `json:"dangling,omitempty"`
	PadHints      []PadHint          `json:"padHints,omitempty"`
	DeferralHints []DeferralHint     `json:"deferralHints,omitempty"`
}

// SiteObservations carries one allocation site's overflow observations.
type SiteObservations struct {
	Site site.ID       `json:"site"`
	Obs  []Observation `json:"obs"`
}

// PairObservations carries one (alloc, free) pair's dangling observations.
type PairObservations struct {
	Alloc site.ID       `json:"alloc"`
	Free  site.ID       `json:"free"`
	Obs   []Observation `json:"obs"`
}

// PadHint is the pad estimate for one allocation site.
type PadHint struct {
	Site site.ID `json:"site"`
	Pad  uint32  `json:"pad"`
}

// DeferralHint is the lifetime-extension estimate for one site pair.
type DeferralHint struct {
	Alloc    site.ID `json:"alloc"`
	Free     site.ID `json:"free"`
	Deferral uint64  `json:"deferral"`
}

// sortObs orders observations canonically by (X, then Y=false first).
func sortObs(obs []Observation) {
	sort.Slice(obs, func(i, j int) bool {
		if obs[i].X != obs[j].X {
			return obs[i].X < obs[j].X
		}
		return !obs[i].Y && obs[j].Y
	})
}

// Snapshot exports the history's current contents in canonical order. The
// returned value shares no storage with the history.
func (hist *History) Snapshot() *Snapshot {
	s := &Snapshot{
		C:           hist.cfg.C,
		P:           hist.cfg.P,
		Runs:        hist.Runs,
		FailedRuns:  hist.FailedRuns,
		CorruptRuns: hist.CorruptRuns,
	}
	s.Sites = sortedIDKeys(hist.sites)
	for _, id := range sortedIDKeys(hist.overflow) {
		obs := append([]Observation(nil), hist.overflow[id]...)
		sortObs(obs)
		s.Overflow = append(s.Overflow, SiteObservations{Site: id, Obs: obs})
	}
	for _, p := range sortedPairKeys(hist.dangling) {
		obs := append([]Observation(nil), hist.dangling[p]...)
		sortObs(obs)
		s.Dangling = append(s.Dangling, PairObservations{Alloc: p.Alloc, Free: p.Free, Obs: obs})
	}
	for _, id := range sortedIDKeys(hist.padHint) {
		s.PadHints = append(s.PadHints, PadHint{Site: id, Pad: hist.padHint[id]})
	}
	for _, p := range sortedPairKeys(hist.dferHint) {
		s.DeferralHints = append(s.DeferralHints, DeferralHint{Alloc: p.Alloc, Free: p.Free, Deferral: hist.dferHint[p]})
	}
	return s
}

// Absorb folds a snapshot into the history: observations append, hints take
// maxima, the site set unions, and run counters add. Absorbing the same
// snapshot twice double-counts observations — idempotence is the patch
// set's property (§6.4), not the evidence store's.
func (hist *History) Absorb(s *Snapshot) {
	if s == nil {
		return
	}
	hist.Runs += s.Runs
	hist.FailedRuns += s.FailedRuns
	hist.CorruptRuns += s.CorruptRuns
	for _, id := range s.Sites {
		hist.sites[id] = true
	}
	for _, so := range s.Overflow {
		if len(so.Obs) > 0 {
			hist.overflow[so.Site] = append(hist.overflow[so.Site], so.Obs...)
			hist.touchOverflow(so.Site)
		}
		hist.sites[so.Site] = true
	}
	for _, po := range s.Dangling {
		if len(po.Obs) == 0 {
			continue
		}
		p := site.Pair{Alloc: po.Alloc, Free: po.Free}
		hist.dangling[p] = append(hist.dangling[p], po.Obs...)
		hist.touchDangling(p)
	}
	for _, h := range s.PadHints {
		if h.Pad > hist.padHint[h.Site] {
			hist.padHint[h.Site] = h.Pad
		}
	}
	for _, h := range s.DeferralHints {
		p := site.Pair{Alloc: h.Alloc, Free: h.Free}
		if h.Deferral > hist.dferHint[p] {
			hist.dferHint[p] = h.Deferral
		}
	}
}

// Merge folds other's evidence into hist (Absorb of other's snapshot).
func (hist *History) Merge(other *History) {
	if other == nil {
		return
	}
	hist.Absorb(other.Snapshot())
}

// Canonicalize re-sorts every observation list into the canonical (X, Y)
// order in place. Identify already scores a canonically ordered copy of
// each list, so this is no longer needed for order-independent results;
// it remains for tools that want the stored lists themselves canonical.
// Reordering destroys the upload watermark's append-only prefix, so the
// watermark resets (a subsequent fleet upload re-sends everything).
func (hist *History) Canonicalize() {
	for s, obs := range hist.overflow {
		sortObs(obs)
		hist.touchOverflow(s)
	}
	for p, obs := range hist.dangling {
		sortObs(obs)
		hist.touchDangling(p)
	}
	hist.uploaded = uploadMark{}
}

// Config returns the history's classifier configuration.
func (hist *History) Config() Config { return hist.cfg }
