package cumulative

import (
	"testing"

	"exterminator/internal/site"
)

func extractFixture() *History {
	hist := NewHistory(DefaultConfig())
	hist.Absorb(&Snapshot{
		C: 4, P: 0.5, Runs: 9, FailedRuns: 3, CorruptRuns: 2,
		Sites: []site.ID{1, 2, 3, 4},
		Overflow: []SiteObservations{
			{Site: 1, Obs: []Observation{{X: 0.5, Y: true}, {X: 0.25, Y: false}}},
			{Site: 2, Obs: []Observation{{X: 0.125, Y: false}}},
		},
		Dangling: []PairObservations{
			{Alloc: 1, Free: 7, Obs: []Observation{{X: 0.5, Y: true}}},
			{Alloc: 3, Free: 8, Obs: []Observation{{X: 0.5, Y: false}}},
		},
		PadHints:      []PadHint{{Site: 1, Pad: 24}, {Site: 2, Pad: 8}},
		DeferralHints: []DeferralHint{{Alloc: 1, Free: 7, Deferral: 64}},
	})
	return hist
}

// TestExtractPartitionsEvidence: Extract removes exactly the keyed
// evidence (dangling pairs by alloc side), leaves run counters in place,
// and re-absorbing the extraction restores the original history — the
// drain/backfill round-trip is lossless.
func TestExtractPartitionsEvidence(t *testing.T) {
	hist := extractFixture()
	want := extractFixture()
	want.Canonicalize()

	out := hist.Extract([]site.ID{1, 3})
	if hist.Runs != 9 || hist.FailedRuns != 3 || hist.CorruptRuns != 2 {
		t.Fatalf("extract moved run counters: %s", hist)
	}
	if out.Runs != 0 {
		t.Fatal("extracted snapshot carries run counters")
	}
	if len(out.Overflow) != 1 || out.Overflow[0].Site != 1 {
		t.Fatalf("extracted overflow = %+v", out.Overflow)
	}
	if len(out.Dangling) != 2 { // both pairs key by alloc sides 1 and 3
		t.Fatalf("extracted dangling = %+v", out.Dangling)
	}
	if len(out.Sites) != 2 || len(out.PadHints) != 1 || len(out.DeferralHints) != 1 {
		t.Fatalf("extracted snapshot incomplete: %+v", out)
	}
	if hist.Sites() != 2 || hist.OverflowKeys() != 1 || hist.DanglingKeys() != 0 {
		t.Fatalf("leftovers wrong: %s", hist)
	}

	// Round trip: extract + absorb == original.
	hist.Absorb(out)
	hist.Canonicalize()
	if !hist.Equal(want) {
		t.Fatalf("extract/absorb round trip diverged:\ngot  %s\nwant %s", hist, want)
	}
	// Identify still works and matches a fresh history's decisions.
	if got, ref := len(hist.Identify().Overflows), len(want.Identify().Overflows); got != ref {
		t.Fatalf("identify after round trip: %d findings, want %d", got, ref)
	}
}

// TestEvidenceKeys: the key universe unions every keyed component by its
// alloc side, sorted.
func TestEvidenceKeys(t *testing.T) {
	hist := extractFixture()
	keys := hist.EvidenceKeys()
	want := []site.ID{1, 2, 3, 4}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
	// A dangling-only alloc side appears too.
	hist.Absorb(&Snapshot{Dangling: []PairObservations{{Alloc: 99, Free: 7, Obs: []Observation{{X: 0.5, Y: true}}}}})
	keys = hist.EvidenceKeys()
	if keys[len(keys)-1] != 99 {
		t.Fatalf("dangling-only alloc side missing: %v", keys)
	}

	// Extracting every key empties the history.
	hist.Extract(keys)
	if hist.Sites() != 0 || hist.OverflowKeys() != 0 || hist.DanglingKeys() != 0 || len(hist.EvidenceKeys()) != 0 {
		t.Fatalf("full extract left evidence: %s", hist)
	}
}
