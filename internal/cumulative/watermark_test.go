package cumulative

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"exterminator/internal/site"
)

func encodeDecode(t *testing.T, hist *History) *History {
	t.Helper()
	var buf bytes.Buffer
	if err := hist.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestUploadDeltaCoversEverythingOnce: the first delta is the whole
// history; after MarkUploaded the next delta is empty; new evidence
// yields a delta containing exactly the new evidence.
func TestUploadDeltaCoversEverythingOnce(t *testing.T) {
	hist := NewHistory(DefaultConfig())
	first := &Snapshot{C: 4, P: 0.5, Runs: 3, FailedRuns: 1, Sites: []site.ID{1, 2},
		Overflow: []SiteObservations{{Site: 1, Obs: []Observation{{X: 0.5, Y: true}, {X: 0.25, Y: false}}}},
		Dangling: []PairObservations{{Alloc: 1, Free: 9, Obs: []Observation{{X: 0.5, Y: true}}}},
		PadHints: []PadHint{{Site: 1, Pad: 16}},
	}
	hist.Absorb(first)

	delta := hist.UploadDelta()
	check := NewHistory(DefaultConfig())
	check.Absorb(delta)
	direct := NewHistory(DefaultConfig())
	direct.Absorb(first)
	// Deltas list observations canonically sorted; compare canonical forms.
	check.Canonicalize()
	direct.Canonicalize()
	if !check.Equal(direct) {
		t.Fatalf("first delta %+v does not reproduce the history", delta)
	}
	hist.MarkUploaded(delta)

	if d := hist.UploadDelta(); !DeltaEmpty(d) {
		t.Fatalf("delta after MarkUploaded not empty: %+v", d)
	}

	second := &Snapshot{C: 4, P: 0.5, Runs: 2, Sites: []site.ID{3},
		Overflow: []SiteObservations{
			{Site: 1, Obs: []Observation{{X: 0.75, Y: true}}},
			{Site: 3, Obs: []Observation{{X: 0.1, Y: false}}},
		},
		PadHints: []PadHint{{Site: 1, Pad: 32}}, // hint grew: re-sent
	}
	hist.Absorb(second)
	delta = hist.UploadDelta()
	if delta.Runs != 2 || len(delta.Sites) != 1 || delta.Sites[0] != 3 {
		t.Fatalf("second delta wrong counters/sites: %+v", delta)
	}
	gotObs := 0
	for _, so := range delta.Overflow {
		gotObs += len(so.Obs)
	}
	if gotObs != 2 {
		t.Fatalf("second delta carries %d overflow observations, want 2", gotObs)
	}
	if len(delta.PadHints) != 1 || delta.PadHints[0].Pad != 32 {
		t.Fatalf("grown pad hint not re-sent: %+v", delta.PadHints)
	}
	hist.MarkUploaded(delta)
	if d := hist.UploadDelta(); !DeltaEmpty(d) {
		t.Fatalf("delta after second MarkUploaded not empty: %+v", d)
	}
}

// TestUploadDeltaUnchangedHintNotResent: a hint that did not grow is not
// re-uploaded.
func TestUploadDeltaUnchangedHintNotResent(t *testing.T) {
	hist := NewHistory(DefaultConfig())
	hist.Absorb(&Snapshot{C: 4, P: 0.5, PadHints: []PadHint{{Site: 7, Pad: 24}}})
	d := hist.UploadDelta()
	hist.MarkUploaded(d)
	hist.Absorb(&Snapshot{C: 4, P: 0.5, PadHints: []PadHint{{Site: 7, Pad: 24}}}) // same value
	if d := hist.UploadDelta(); len(d.PadHints) != 0 {
		t.Fatalf("unchanged hint re-sent: %+v", d.PadHints)
	}
}

// TestWatermarkSurvivesPersistence is the -resume-history + -fleet
// footgun test: save a history whose evidence was already uploaded,
// decode it, and verify the next upload delta is empty — not the whole
// history again.
func TestWatermarkSurvivesPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	hist := NewHistory(DefaultConfig())
	for i := 0; i < 6; i++ {
		hist.Absorb(randSnapshot(rng))
	}
	d := hist.UploadDelta()
	hist.MarkUploaded(d)

	restored := encodeDecode(t, hist)
	if got := restored.UploadDelta(); !DeltaEmpty(got) {
		t.Fatalf("restored history wants to re-upload: %d sites, %d runs", len(got.Sites), got.Runs)
	}

	// More evidence after the restart uploads exactly once.
	extra := randSnapshot(rng)
	restored.Absorb(extra)
	got := restored.UploadDelta()
	if got.Runs != extra.Runs {
		t.Fatalf("post-restore delta runs = %d, want %d", got.Runs, extra.Runs)
	}
	restored.MarkUploaded(got)
	if d := restored.UploadDelta(); !DeltaEmpty(d) {
		t.Fatal("delta not empty after post-restore upload")
	}
}

// TestWatermarkClampOnDecode: a persisted watermark claiming more was
// uploaded than the history contains (corrupt or hand-edited file) is
// clamped on decode — the next delta re-uploads at worst, but never goes
// negative and never suppresses evidence forever.
func TestWatermarkClampOnDecode(t *testing.T) {
	hist := NewHistory(DefaultConfig())
	hist.Absorb(&Snapshot{C: 4, P: 0.5, Runs: 3, Sites: []site.ID{1},
		Overflow: []SiteObservations{{Site: 1, Obs: []Observation{{X: 0.5, Y: true}}}},
		PadHints: []PadHint{{Site: 1, Pad: 8}}})
	// Violate the MarkUploaded contract to simulate a corrupt watermark:
	// counts far beyond what the history holds.
	hist.MarkUploaded(&Snapshot{Runs: 1000, FailedRuns: 50, CorruptRuns: 50,
		Overflow: []SiteObservations{{Site: 1, Obs: make([]Observation, 99)}},
		Dangling: []PairObservations{{Alloc: 9, Free: 9, Obs: make([]Observation, 5)}},
		PadHints: []PadHint{{Site: 1, Pad: 1 << 30}}})

	restored := encodeDecode(t, hist)
	d := restored.UploadDelta()
	if d.Runs < 0 || d.FailedRuns < 0 || d.CorruptRuns < 0 {
		t.Fatalf("clamped delta went negative: %+v", d)
	}
	// New evidence for site 1 must still be uploadable.
	restored.Absorb(&Snapshot{C: 4, P: 0.5, Runs: 1,
		Overflow: []SiteObservations{{Site: 1, Obs: []Observation{{X: 0.25, Y: false}}}},
		PadHints: []PadHint{{Site: 1, Pad: 16}}})
	d = restored.UploadDelta()
	if d.Runs != 1 || len(d.Overflow) != 1 || len(d.Overflow[0].Obs) != 1 {
		t.Fatalf("evidence suppressed by corrupt watermark: %+v", d)
	}
	if len(d.PadHints) != 1 || d.PadHints[0].Pad != 16 {
		t.Fatalf("grown hint suppressed by corrupt watermark: %+v", d.PadHints)
	}
}

// TestPartialWatermarkPersistRoundTrip: a half-uploaded history
// round-trips with the split intact.
func TestPartialWatermarkPersistRoundTrip(t *testing.T) {
	hist := NewHistory(DefaultConfig())
	hist.Absorb(&Snapshot{C: 4, P: 0.5, Runs: 2, Sites: []site.ID{1},
		Overflow: []SiteObservations{{Site: 1, Obs: []Observation{{X: 0.5, Y: true}}}}})
	d := hist.UploadDelta()
	hist.MarkUploaded(d)
	hist.Absorb(&Snapshot{C: 4, P: 0.5, Runs: 1,
		Overflow: []SiteObservations{{Site: 1, Obs: []Observation{{X: 0.25, Y: false}}}}})

	restored := encodeDecode(t, hist)
	want := hist.UploadDelta()
	got := restored.UploadDelta()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("restored delta %+v != original delta %+v", got, want)
	}
	if got.Runs != 1 || len(got.Overflow) != 1 || len(got.Overflow[0].Obs) != 1 {
		t.Fatalf("restored delta should carry only the unuploaded half: %+v", got)
	}
}
