package cumulative

import (
	"math"
	"testing"

	"exterminator/internal/diefast"
	"exterminator/internal/mem"
	"exterminator/internal/site"
	"exterminator/internal/xrand"
)

func TestBayesFactorChanceConsistent(t *testing.T) {
	// Y tracks X exactly as chance predicts (half the time at X=0.5):
	// the factor should stay below any reasonable threshold.
	var obs []Observation
	for i := 0; i < 30; i++ {
		obs = append(obs, Observation{X: 0.5, Y: i%2 == 0})
	}
	if r := BayesFactor(obs); r > 10 {
		t.Fatalf("chance-consistent observations gave ratio %v", r)
	}
}

func TestBayesFactorGuiltySite(t *testing.T) {
	// Y=1 every run while X is small: overwhelming evidence for H1.
	var obs []Observation
	for i := 0; i < 15; i++ {
		obs = append(obs, Observation{X: 0.1, Y: true})
	}
	if r := BayesFactor(obs); r < 1e6 {
		t.Fatalf("guilty-site ratio only %v", r)
	}
}

func TestBayesFactorImpossibleChance(t *testing.T) {
	obs := []Observation{{X: 0, Y: true}}
	if r := BayesFactor(obs); !math.IsInf(r, 1) {
		t.Fatalf("X=0,Y=1 should be infinite evidence, got %v", r)
	}
	if BayesFactor(nil) != 0 {
		t.Fatal("empty observations should give 0")
	}
}

func TestBayesFactorGrowsWithEvidence(t *testing.T) {
	mk := func(n int) []Observation {
		var obs []Observation
		for i := 0; i < n; i++ {
			obs = append(obs, Observation{X: 0.3, Y: true})
		}
		return obs
	}
	r5, r10, r15 := BayesFactor(mk(5)), BayesFactor(mk(10)), BayesFactor(mk(15))
	if !(r5 < r10 && r10 < r15) {
		t.Fatalf("evidence not monotone: %v %v %v", r5, r10, r15)
	}
}

func TestIntegrateRatioKnownValue(t *testing.T) {
	// One observation (X=1/2, Y=1): ratio = ∫ ((1−θ)/2+θ)/(1/2) dθ = 3/2.
	v := integrateRatio([]Observation{{X: 0.5, Y: true}})
	if math.Abs(v-1.5) > 1e-3 {
		t.Fatalf("ratio = %v, want 1.5", v)
	}
	// And the complementary observation (Y=0): ∫ (1−((1−θ)/2+θ))/(1/2) dθ
	// = ∫ (1−θ) dθ = 1/2.
	v = integrateRatio([]Observation{{X: 0.5, Y: false}})
	if math.Abs(v-0.5) > 1e-3 {
		t.Fatalf("ratio = %v, want 0.5", v)
	}
}

func TestBayesFactorStableOverThousandsOfRuns(t *testing.T) {
	// A deployed installation can accumulate thousands of run summaries.
	// Chance-consistent observations must not underflow into fabricated
	// +Inf evidence (the naive L1/L0 formulation underflows L0 at ~1100
	// observations of X=0.5).
	var obs []Observation
	for i := 0; i < 5000; i++ {
		obs = append(obs, Observation{X: 0.5, Y: i%2 == 0})
	}
	r := BayesFactor(obs)
	if math.IsInf(r, 1) || math.IsNaN(r) {
		t.Fatalf("ratio degenerated to %v", r)
	}
	if r > 1000 {
		t.Fatalf("chance-consistent history produced ratio %v", r)
	}
	// And a guilty site still shows up as overwhelming after many runs.
	var guilty []Observation
	for i := 0; i < 2000; i++ {
		guilty = append(guilty, Observation{X: 0.25, Y: true})
	}
	if g := BayesFactor(guilty); !(g > 1e9 || math.IsInf(g, 1)) {
		t.Fatalf("guilty ratio only %v", g)
	}
}

// overflowRun simulates one cumulative-mode run of a program with a
// deterministic overflow at site badSite. Returns the heap after the run.
func overflowRun(seed uint64, badSite site.ID, overflowLen int) *diefast.Heap {
	h := diefast.New(diefast.CumulativeConfig(0.5), xrand.New(seed))
	rng := xrand.New(seed ^ 0xabcdef) // program-side randomness
	var live []mem.Addr
	var badObj mem.Addr
	for i := 0; i < 400; i++ {
		s := site.ID(0x100 + uint32(i%10))
		p, _ := h.Malloc(32, s)
		live = append(live, p)
		if len(live) > 40 {
			k := rng.Intn(len(live))
			h.Free(live[k], site.ID(0x200+uint32(k%4)))
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if i == 350 {
			badObj, _ = h.Malloc(32, badSite)
			// The bug: write overflowLen bytes past the object's end.
			over := make([]byte, overflowLen)
			for j := range over {
				over[j] = 0xE7
			}
			h.Space().Write(badObj+32, over)
		}
	}
	return h
}

func TestCumulativeOverflowIsolation(t *testing.T) {
	const badSite = site.ID(0xBAD)
	hist := NewHistory(DefaultConfig())
	var found *Findings
	runs := 0
	for runs = 1; runs <= 60; runs++ {
		h := overflowRun(uint64(runs)*2654435761, badSite, 8)
		hist.RecordRun(h, len(h.Scan(false)) > 0)
		f := hist.Identify()
		if len(f.Overflows) > 0 {
			found = f
			break
		}
	}
	if found == nil {
		t.Fatalf("overflow site never identified: %s", hist)
	}
	if found.Overflows[0].Site != badSite {
		t.Fatalf("identified %v, want %v (findings %+v)", found.Overflows[0].Site, badSite, found)
	}
	if found.Overflows[0].Pad < 8 {
		t.Fatalf("pad %d does not contain 8-byte overflow", found.Overflows[0].Pad)
	}
	// No false positives.
	for _, o := range found.Overflows[1:] {
		if o.Site != badSite {
			t.Fatalf("false positive site %v", o.Site)
		}
	}
	t.Logf("isolated in %d runs (paper: 22–34 for dangling, ~23–34 for Mozilla)", runs)
}

// danglingRun simulates one cumulative-mode run of a program with a
// premature free: the dangled object is read after free, so the run
// fails exactly when DieFast canaried it (reading the canary crashes).
func danglingRun(seed uint64, pair site.Pair) (h *diefast.Heap, failed bool) {
	h = diefast.New(diefast.CumulativeConfig(0.5), xrand.New(seed))
	rng := xrand.New(seed ^ 0x123457)
	var live []mem.Addr
	var dangled mem.Addr
	for i := 0; i < 300; i++ {
		s := site.ID(0x300 + uint32(i%8))
		p, _ := h.Malloc(48, s)
		live = append(live, p)
		if i == 100 {
			dangled, _ = h.Malloc(48, pair.Alloc)
			h.Free(dangled, pair.Free) // premature free (the bug)
		}
		if i == 120 {
			// The program reads through the dangling pointer while the
			// object is still "logically live". If DieFast canaried the
			// slot, the program loads the canary, treats it as a pointer
			// and crashes on dereference (low bit → alignment trap). If
			// the slot was not canaried (or was reused and holds other
			// data), the read yields plausible bytes and the program
			// hobbles on.
			word, fault := h.Space().Read64(dangled)
			if fault == nil && word == h.Canary().Word64() {
				failed = true
			}
		}
		if len(live) > 30 {
			k := rng.Intn(len(live))
			h.Free(live[k], site.ID(0x400+uint32(k%3)))
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return h, failed
}

func TestCumulativeDanglingIsolation(t *testing.T) {
	pair := site.Pair{Alloc: 0xDA, Free: 0xDF}
	hist := NewHistory(DefaultConfig())
	var found *Findings
	runs, failures := 0, 0
	for runs = 1; runs <= 80; runs++ {
		h, failed := danglingRun(uint64(runs)*11400714819323198485, pair)
		if failed {
			failures++
		}
		hist.RecordRun(h, failed)
		f := hist.Identify()
		if len(f.Danglings) > 0 {
			found = f
			break
		}
	}
	if found == nil {
		t.Fatalf("dangling pair never identified: %s", hist)
	}
	d := found.Danglings[0]
	if d.Pair != pair {
		t.Fatalf("identified %v, want %v", d.Pair, pair)
	}
	if d.Deferral == 0 {
		t.Fatal("no lifetime extension computed")
	}
	for _, other := range found.Danglings[1:] {
		if other.Pair != pair {
			t.Fatalf("false positive pair %v", other.Pair)
		}
	}
	// Paper §7.2: ~15 failures needed before the threshold is crossed,
	// and 22–34 total runs. Allow slack but verify the same regime.
	if failures < 5 || failures > 40 {
		t.Errorf("needed %d failures (paper: ~15)", failures)
	}
	if runs > 80 {
		t.Errorf("needed %d runs (paper: 22–34)", runs)
	}
	t.Logf("isolated after %d runs, %d failures; deferral=%d", runs, failures, d.Deferral)
}

func TestNoFalsePositivesOnCleanRuns(t *testing.T) {
	hist := NewHistory(DefaultConfig())
	for r := 1; r <= 30; r++ {
		h := diefast.New(diefast.CumulativeConfig(0.5), xrand.New(uint64(r)*7919))
		var live []mem.Addr
		rng := xrand.New(uint64(r))
		for i := 0; i < 200; i++ {
			p, _ := h.Malloc(32, site.ID(0x700+uint32(i%6)))
			live = append(live, p)
			if len(live) > 20 {
				k := rng.Intn(len(live))
				h.Free(live[k], site.ID(0x800))
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		// Even claim failures (the worst case for dangling FPs).
		hist.RecordRun(h, r%3 == 0)
	}
	if f := hist.Identify(); !f.Empty() {
		t.Fatalf("clean runs produced findings: %+v", f)
	}
}

func TestFindingsPatches(t *testing.T) {
	f := &Findings{
		Overflows: []OverflowSite{{Site: 0xA, Pad: 6}},
		Danglings: []DanglingPair{{Pair: site.Pair{Alloc: 1, Free: 2}, Deferral: 42}},
	}
	ps := f.Patches()
	if ps.Pad(0xA) != 6 || ps.Deferral(site.Pair{Alloc: 1, Free: 2}) != 42 {
		t.Fatalf("patches = %s", ps)
	}
}

func TestHistoryBookkeeping(t *testing.T) {
	hist := NewHistory(DefaultConfig())
	h := diefast.New(diefast.CumulativeConfig(0.5), xrand.New(1))
	p, _ := h.Malloc(16, 0x9)
	h.Free(p, 0x10)
	hist.RecordRun(h, true)
	if hist.Runs != 1 || hist.FailedRuns != 1 {
		t.Fatalf("%s", hist)
	}
	if hist.Sites() != 1 {
		t.Fatalf("sites = %d", hist.Sites())
	}
	if hist.Threshold() != 4*1-1 {
		t.Fatalf("threshold = %v", hist.Threshold())
	}
	if hist.String() == "" {
		t.Fatal("empty String")
	}
}

func BenchmarkBayesFactor30Runs(b *testing.B) {
	var obs []Observation
	for i := 0; i < 30; i++ {
		obs = append(obs, Observation{X: 0.3, Y: i%3 == 0})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BayesFactor(obs)
	}
}

func BenchmarkRecordRun(b *testing.B) {
	h := overflowRun(12345, 0xBAD, 8)
	hist := NewHistory(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hist.RecordRun(h, true)
	}
}
