package cumulative

import "exterminator/internal/site"

// Upload watermark: fleet clients upload the *delta* of a history, not
// the whole thing, so resuming from a persisted history file and
// uploading again cannot double-count evidence the fleet already has
// (observations are a multiset — absorbing the same snapshot twice is
// not idempotent). The watermark is a monotonic high-water mark over the
// history's append-only structure: per-key observation counts, hint
// values, run counters and the uploaded site set. It rides along in the
// persist format, so the guarantee survives process restarts.

// uploadMark records how much of each append-only component has been
// uploaded. The zero value means "nothing uploaded yet".
type uploadMark struct {
	runs, failed, corrupt int
	sites                 map[site.ID]bool
	overflow              map[site.ID]int
	dangling              map[site.Pair]int
	pad                   map[site.ID]uint32
	dfer                  map[site.Pair]uint64
}

func (m *uploadMark) init() {
	if m.sites == nil {
		m.sites = make(map[site.ID]bool)
		m.overflow = make(map[site.ID]int)
		m.dangling = make(map[site.Pair]int)
		m.pad = make(map[site.ID]uint32)
		m.dfer = make(map[site.Pair]uint64)
	}
}

// clampWatermark bounds every watermark component by the evidence that
// actually exists, repairing inconsistent state from a corrupt or
// hand-edited persisted history (the mark can then at worst cause a
// harmless re-upload, never a negative delta or suppressed evidence).
func (hist *History) clampWatermark() {
	m := &hist.uploaded
	if m.runs > hist.Runs {
		m.runs = hist.Runs
	}
	if m.failed > hist.FailedRuns {
		m.failed = hist.FailedRuns
	}
	if m.corrupt > hist.CorruptRuns {
		m.corrupt = hist.CorruptRuns
	}
	for s, n := range m.overflow {
		if have := len(hist.overflow[s]); n > have {
			m.overflow[s] = have
		}
	}
	for p, n := range m.dangling {
		if have := len(hist.dangling[p]); n > have {
			m.dangling[p] = have
		}
	}
	for s, v := range m.pad {
		if have := hist.padHint[s]; v > have {
			m.pad[s] = have
		}
	}
	for p, v := range m.dfer {
		if have := hist.dferHint[p]; v > have {
			m.dfer[p] = have
		}
	}
}

// UploadDelta returns a snapshot of everything recorded since the last
// MarkUploaded: run-counter differences, per-key observations beyond the
// uploaded count, sites not yet announced, and hints that grew. Pushing
// the returned snapshot and then passing it to MarkUploaded advances the
// watermark by exactly what was sent, so evidence recorded concurrently
// between the two calls is kept for the next delta.
func (hist *History) UploadDelta() *Snapshot {
	hist.uploaded.init()
	m := &hist.uploaded
	s := &Snapshot{
		C:           hist.cfg.C,
		P:           hist.cfg.P,
		Runs:        hist.Runs - m.runs,
		FailedRuns:  hist.FailedRuns - m.failed,
		CorruptRuns: hist.CorruptRuns - m.corrupt,
	}
	for _, id := range sortedIDKeys(hist.sites) {
		if !m.sites[id] {
			s.Sites = append(s.Sites, id)
		}
	}
	for _, id := range sortedIDKeys(hist.overflow) {
		obs := hist.overflow[id]
		if n := m.overflow[id]; n < len(obs) {
			delta := append([]Observation(nil), obs[n:]...)
			sortObs(delta)
			s.Overflow = append(s.Overflow, SiteObservations{Site: id, Obs: delta})
		}
	}
	for _, p := range sortedPairKeys(hist.dangling) {
		obs := hist.dangling[p]
		if n := m.dangling[p]; n < len(obs) {
			delta := append([]Observation(nil), obs[n:]...)
			sortObs(delta)
			s.Dangling = append(s.Dangling, PairObservations{Alloc: p.Alloc, Free: p.Free, Obs: delta})
		}
	}
	for _, id := range sortedIDKeys(hist.padHint) {
		if v := hist.padHint[id]; v > m.pad[id] {
			s.PadHints = append(s.PadHints, PadHint{Site: id, Pad: v})
		}
	}
	for _, p := range sortedPairKeys(hist.dferHint) {
		if v := hist.dferHint[p]; v > m.dfer[p] {
			s.DeferralHints = append(s.DeferralHints, DeferralHint{Alloc: p.Alloc, Free: p.Free, Deferral: v})
		}
	}
	return s
}

// MarkUploaded advances the watermark by the contents of delta, which
// must be a snapshot produced by UploadDelta on this history (and
// successfully delivered — call this only after the push succeeded).
func (hist *History) MarkUploaded(delta *Snapshot) {
	if delta == nil {
		return
	}
	hist.uploaded.init()
	m := &hist.uploaded
	m.runs += delta.Runs
	m.failed += delta.FailedRuns
	m.corrupt += delta.CorruptRuns
	for _, id := range delta.Sites {
		m.sites[id] = true
	}
	for _, so := range delta.Overflow {
		m.overflow[so.Site] += len(so.Obs)
	}
	for _, po := range delta.Dangling {
		m.dangling[site.Pair{Alloc: po.Alloc, Free: po.Free}] += len(po.Obs)
	}
	for _, h := range delta.PadHints {
		if h.Pad > m.pad[h.Site] {
			m.pad[h.Site] = h.Pad
		}
	}
	for _, h := range delta.DeferralHints {
		p := site.Pair{Alloc: h.Alloc, Free: h.Free}
		if h.Deferral > m.dfer[p] {
			m.dfer[p] = h.Deferral
		}
	}
}

// UploadedRuns returns the number of runs already covered by the
// watermark (diagnostics).
func (hist *History) UploadedRuns() int { return hist.uploaded.runs }

// UploadedCounts summarizes the watermark position as two scalars: the
// total run-counter movement covered (runs + failed + corrupt) and the
// total number of observations covered across every key. Together with
// the delta's content they uniquely place an upload batch in the
// history's append-only structure, which is what makes BatchID stable
// across retries (the watermark only advances on a confirmed ack, so a
// re-cut of an unacknowledged delta starts at the same position).
func (hist *History) UploadedCounts() (wmRuns, wmObs int) {
	m := &hist.uploaded
	wmRuns = m.runs + m.failed + m.corrupt
	for _, n := range m.overflow {
		wmObs += n
	}
	for _, n := range m.dangling {
		wmObs += n
	}
	return wmRuns, wmObs
}

// DeltaEmpty reports whether a snapshot carries no evidence and no
// counter movement at all — uploading it would be a no-op.
func DeltaEmpty(s *Snapshot) bool {
	return s == nil ||
		(s.Runs == 0 && s.FailedRuns == 0 && s.CorruptRuns == 0 &&
			len(s.Sites) == 0 && len(s.Overflow) == 0 && len(s.Dangling) == 0 &&
			len(s.PadHints) == 0 && len(s.DeferralHints) == 0)
}
