// Package cumulative implements Exterminator's cumulative-mode error
// isolation (paper §5).
//
// Cumulative mode isolates errors without replication, identical inputs
// or deterministic execution: instead of heap images it keeps a few
// numbers per call site per run, and applies a Bayesian hypothesis test
// across runs.
//
// Buffer overflows (§5.1): after a run in which corruption was found at
// slot k of miniheap Mc, every allocation site A gets an observation
// (X, Y) where X = P(C_A) is the probability — under the randomized
// placement — that at least one of A's objects landed where it *could*
// have caused the corruption (same miniheap, lower slot), and Y = C_A
// records whether one actually did. For an innocent site Y tracks X
// (pure chance); for the culprit, Y=1 far more often than X predicts.
//
// Dangling pointers (§5.2): freed objects are canaried with probability
// p (=1/2), turning each run into a Bernoulli trial; for each failed run
// and each (alloc site, free site) pair, X = 1 − (1−p)^m is the chance
// at least one of its m freed objects was canaried and Y records whether
// one was. Canarying a prematurely freed object is what *makes* the
// program fail, so the guilty pair's Y correlates with failure.
//
// The test (§5.1) rejects H0 (θ_A = 0) when
//
//	P(X̄,Ȳ | H1) / P(X̄,Ȳ | H0)  >  P(H0) / P(H1),
//
// with prior P(H1) = 1/(cN) (c = 4, N = number of sites), a uniform prior
// on θ_A, and the H1 likelihood integrated numerically over θ.
//
// Beyond the classifier, the package provides the machinery that lets
// evidence travel: binary persistence (Encode/DecodeHistory), canonical
// Snapshot exchange (Snapshot/Absorb/Merge), the upload watermark
// (UploadDelta/MarkUploaded — what keeps fleet uploads from
// double-counting across flushes, retries and process restarts), and
// content-addressed batch identity (BatchID — what lets servers dedup a
// retried upload whose ack was lost).
package cumulative

import (
	"fmt"
	"math"
	"sort"

	"exterminator/internal/diefast"
	"exterminator/internal/mem"
	"exterminator/internal/patch"
	"exterminator/internal/site"
)

// Observation is one run's (X, Y) for one site (or site pair).
type Observation struct {
	X float64 // probability of satisfying the criteria by chance
	Y bool    // whether the criteria were actually satisfied
}

// Config parameterizes the classifier.
type Config struct {
	// C is the prior constant: P(H1) = 1/(C·N). The paper uses 4.
	C float64
	// P is the canary fill probability used by the heap (needed to
	// compute dangling X values). The paper uses 1/2.
	P float64
}

// DefaultConfig mirrors the paper (§5.1–§5.2).
func DefaultConfig() Config { return Config{C: 4, P: 0.5} }

// History accumulates per-site summaries across runs. "The retained data
// is on the order of a few kilobytes per execution" (§3.4): observations,
// not heap images.
type History struct {
	cfg Config

	overflow map[site.ID][]Observation
	dangling map[site.Pair][]Observation
	padHint  map[site.ID]uint32
	dferHint map[site.Pair]uint64
	sites    map[site.ID]bool // all allocation sites ever seen (N)

	// Incremental-identify state: Bayes factors are cached per key and
	// recomputed only for keys whose observation list changed since the
	// last pass ("dirty"). Factors are always computed over the canonical
	// (X, Y)-sorted order, so a cached value is exactly what a fresh
	// recompute would produce regardless of ingest order.
	bfOverflow map[site.ID]float64
	bfDangling map[site.Pair]float64
	dirtyOvf   map[site.ID]bool
	dirtyDan   map[site.Pair]bool

	// Upload watermark: how much of this history has already been
	// uploaded to a fleet (see watermark.go).
	uploaded uploadMark

	Runs        int
	FailedRuns  int
	CorruptRuns int
}

// NewHistory returns an empty history.
func NewHistory(cfg Config) *History {
	if cfg.C <= 0 {
		cfg.C = 4
	}
	if cfg.P <= 0 || cfg.P >= 1 {
		cfg.P = 0.5
	}
	return &History{
		cfg:        cfg,
		overflow:   make(map[site.ID][]Observation),
		dangling:   make(map[site.Pair][]Observation),
		padHint:    make(map[site.ID]uint32),
		dferHint:   make(map[site.Pair]uint64),
		sites:      make(map[site.ID]bool),
		bfOverflow: make(map[site.ID]float64),
		bfDangling: make(map[site.Pair]float64),
		dirtyOvf:   make(map[site.ID]bool),
		dirtyDan:   make(map[site.Pair]bool),
	}
}

// touchOverflow marks a site's overflow evidence as changed since the
// last identify pass.
func (hist *History) touchOverflow(s site.ID) { hist.dirtyOvf[s] = true }

// touchDangling marks a pair's dangling evidence as changed.
func (hist *History) touchDangling(p site.Pair) { hist.dirtyDan[p] = true }

// DirtyKeys returns the number of overflow sites and dangling pairs whose
// evidence changed since the last identify pass — the work the next
// incremental pass will do.
func (hist *History) DirtyKeys() int { return len(hist.dirtyOvf) + len(hist.dirtyDan) }

// OverflowKeys returns the number of tracked overflow sites.
func (hist *History) OverflowKeys() int { return len(hist.overflow) }

// DanglingKeys returns the number of tracked dangling pairs.
func (hist *History) DanglingKeys() int { return len(hist.dangling) }

// Sites returns N, the number of distinct allocation sites observed.
func (hist *History) Sites() int { return len(hist.sites) }

// RecordRun folds one finished run into the history. failed reports
// whether the run crashed, aborted, or produced divergent output. The
// heap must have been created with diefast.CumulativeConfig so the
// allocation and free logs are present.
func (hist *History) RecordRun(h *diefast.Heap, failed bool) {
	hist.Runs++
	if failed {
		hist.FailedRuns++
	}
	log := h.Diehard().Log()
	for _, rec := range log {
		hist.sites[rec.Site] = true
	}

	// Overflow summaries: only runs that exhibit corruption contribute
	// (§5.1 phase 1: identify heap corruption).
	if corr := h.Scan(false); len(corr) > 0 {
		hist.CorruptRuns++
		hist.recordOverflow(h, corr[0])
	}

	// Dangling summaries: only failed runs contribute (§5.2).
	if failed {
		hist.recordDangling(h)
	}
}

// recordOverflow computes (X, Y) per allocation site for the first
// corruption found this run, plus the pad hint.
func (hist *History) recordOverflow(h *diefast.Heap, corr diefast.Corruption) {
	dh := h.Diehard()
	minis := dh.Miniheaps()
	mc := minis[corr.Mini]
	k := corr.Slot

	// Per-object P(C_i), folded per site into P(C_A) = 1 − Π(1 − P(C_i)),
	// and the observed C_A.
	noSat := make(map[site.ID]float64) // Π (1 − P(C_i))
	satisf := make(map[site.ID]bool)
	for _, rec := range dh.Log() {
		if _, ok := noSat[rec.Site]; !ok {
			noSat[rec.Site] = 1
		}
		if rec.Class != mc.Class {
			continue // wrong size class: P(C_i) = 0
		}
		if mc.CreateTime > rec.Time {
			continue // corrupt miniheap did not exist yet: P(C_i) = 0
		}
		denom := 0
		for _, mj := range minis {
			if mj.Class == mc.Class && mj.CreateTime <= rec.Time {
				denom += mj.Slots
			}
		}
		if denom == 0 {
			continue
		}
		pc := (float64(mc.Slots) / float64(denom)) * (float64(k) / float64(mc.Slots))
		noSat[rec.Site] *= 1 - pc
		if rec.Mini == corr.Mini && rec.Slot < k {
			satisf[rec.Site] = true
		}
	}
	for s, ns := range noSat {
		hist.overflow[s] = append(hist.overflow[s], Observation{X: 1 - ns, Y: satisf[s]})
		hist.touchOverflow(s)
	}

	// Pad hint (§5.1): search backwards from the corruption for the
	// nearest object from each candidate site; the pad is the distance
	// from that object's usable end to the end of the corruption.
	corrEnd := 0
	for _, r := range corr.Ranges {
		if r.End > corrEnd {
			corrEnd = r.End
		}
	}
	corrEndAddr := mc.SlotAddr(corr.Slot) + mem.Addr(corrEnd)
	for slot := corr.Slot; slot >= 0; slot-- {
		m := mc.Meta(slot)
		if m.ID == 0 || slot == corr.Slot {
			continue
		}
		need := int64(corrEndAddr) - int64(mc.SlotAddr(slot)) - int64(m.ReqSize)
		if need <= 0 {
			continue
		}
		if cur := hist.padHint[m.AllocSite]; uint32(need) > cur {
			hist.padHint[m.AllocSite] = uint32(need)
		}
	}
}

// recordDangling computes (X, Y) per (alloc, free) site pair for a failed
// run, plus the lifetime-extension hint from the oldest canaried object.
func (hist *History) recordDangling(h *diefast.Heap) {
	type agg struct {
		m        int
		canaried bool
		oldest   uint64 // earliest FreeTime among canaried objects
	}
	pairs := make(map[site.Pair]*agg)
	for _, fr := range h.FreeLog() {
		p := site.Pair{Alloc: fr.AllocSite, Free: fr.FreeSite}
		a := pairs[p]
		if a == nil {
			a = &agg{oldest: math.MaxUint64}
			pairs[p] = a
		}
		a.m++
		if fr.Canaried {
			a.canaried = true
			if fr.FreeTime < a.oldest {
				a.oldest = fr.FreeTime
			}
		}
	}
	T := h.Clock()
	for p, a := range pairs {
		x := 1 - math.Pow(1-hist.cfg.P, float64(a.m))
		hist.dangling[p] = append(hist.dangling[p], Observation{X: x, Y: a.canaried})
		hist.touchDangling(p)
		if a.canaried {
			ext := 2 * (T - a.oldest)
			if ext == 0 {
				ext = 1
			}
			if ext > hist.dferHint[p] {
				hist.dferHint[p] = ext
			}
		}
	}
}

// OverflowSite is an allocation site identified as an overflow source.
type OverflowSite struct {
	Site  site.ID
	Pad   uint32
	Bayes float64 // L1/L0
	Runs  int     // observations used
}

// DanglingPair is a site pair identified as a dangling-pointer source.
type DanglingPair struct {
	Pair     site.Pair
	Deferral uint64
	Bayes    float64
	Runs     int
}

// Findings is the classifier output.
type Findings struct {
	Overflows []OverflowSite
	Danglings []DanglingPair
}

// Patches converts findings into runtime patches.
func (f *Findings) Patches() *patch.Set {
	ps := patch.New()
	for _, o := range f.Overflows {
		ps.AddPad(o.Site, o.Pad)
	}
	for _, d := range f.Danglings {
		ps.AddDeferral(d.Pair, d.Deferral)
	}
	return ps
}

// Empty reports whether nothing crossed the threshold.
func (f *Findings) Empty() bool {
	return len(f.Overflows) == 0 && len(f.Danglings) == 0
}

// Identify runs the hypothesis test over everything recorded so far. It
// is incremental: Bayes factors are recomputed only for keys whose
// evidence changed since the last pass; every other key reuses its cached
// factor (identical to a recompute — factors are deterministic functions
// of the canonically ordered observation list). The threshold comparison
// itself reruns for every key because N, and hence the prior, moves.
func (hist *History) Identify() *Findings {
	return hist.IdentifyWithSites(len(hist.sites))
}

// IdentifyWithSites is Identify with the prior's N supplied externally.
// A sharded evidence store holds disjoint slices of one logical history;
// each shard must test its keys against the *global* site count, not its
// own subset, to decide exactly as an unsharded store would.
func (hist *History) IdentifyWithSites(n int) *Findings {
	f := &Findings{}
	if n == 0 {
		return f
	}
	threshold := hist.cfg.C*float64(n) - 1

	for s, obs := range hist.overflow {
		ratio := hist.overflowFactor(s, obs)
		if ratio > threshold {
			pad := hist.padHint[s]
			if pad == 0 {
				continue // identified but no pad estimate yet
			}
			f.Overflows = append(f.Overflows, OverflowSite{Site: s, Pad: pad, Bayes: ratio, Runs: len(obs)})
		}
	}
	for p, obs := range hist.dangling {
		ratio := hist.danglingFactor(p, obs)
		if ratio > threshold {
			d := hist.dferHint[p]
			if d == 0 {
				continue
			}
			f.Danglings = append(f.Danglings, DanglingPair{Pair: p, Deferral: d, Bayes: ratio, Runs: len(obs)})
		}
	}
	sortFindings(f)
	return f
}

// IdentifyFull drops every cached factor and rescores all keys from
// scratch — the O(keys × observations) pass Identify used to be. It
// exists as the reference for equivalence tests and benchmarks; results
// are identical to Identify by construction.
func (hist *History) IdentifyFull() *Findings {
	hist.bfOverflow = make(map[site.ID]float64, len(hist.overflow))
	hist.bfDangling = make(map[site.Pair]float64, len(hist.dangling))
	for s := range hist.overflow {
		hist.touchOverflow(s)
	}
	for p := range hist.dangling {
		hist.touchDangling(p)
	}
	return hist.Identify()
}

// overflowFactor returns the (possibly cached) Bayes factor for one site.
// Recomputation scores a canonically sorted copy of the observations, so
// the factor — and therefore every identify decision — is independent of
// the order evidence arrived in.
func (hist *History) overflowFactor(s site.ID, obs []Observation) float64 {
	if v, ok := hist.bfOverflow[s]; ok && !hist.dirtyOvf[s] {
		return v
	}
	v := canonicalBayesFactor(obs)
	hist.bfOverflow[s] = v
	delete(hist.dirtyOvf, s)
	return v
}

// danglingFactor is overflowFactor for pair keys.
func (hist *History) danglingFactor(p site.Pair, obs []Observation) float64 {
	if v, ok := hist.bfDangling[p]; ok && !hist.dirtyDan[p] {
		return v
	}
	v := canonicalBayesFactor(obs)
	hist.bfDangling[p] = v
	delete(hist.dirtyDan, p)
	return v
}

// canonicalBayesFactor scores a sorted copy of obs, fixing the
// floating-point evaluation order without mutating the history.
func canonicalBayesFactor(obs []Observation) float64 {
	c := append([]Observation(nil), obs...)
	sortObs(c)
	return BayesFactor(c)
}

func sortFindings(f *Findings) {
	sort.Slice(f.Overflows, func(i, j int) bool {
		if f.Overflows[i].Bayes != f.Overflows[j].Bayes {
			return f.Overflows[i].Bayes > f.Overflows[j].Bayes
		}
		return f.Overflows[i].Site < f.Overflows[j].Site
	})
	sort.Slice(f.Danglings, func(i, j int) bool {
		if f.Danglings[i].Bayes != f.Danglings[j].Bayes {
			return f.Danglings[i].Bayes > f.Danglings[j].Bayes
		}
		pi, pj := f.Danglings[i].Pair, f.Danglings[j].Pair
		if pi.Alloc != pj.Alloc {
			return pi.Alloc < pj.Alloc
		}
		return pi.Free < pj.Free
	})
}

// BayesFactor computes P(X̄,Ȳ|H1) / P(X̄,Ȳ|H0) for a site's observations
// (§5.1). It returns +Inf when H0 assigns probability zero to the data
// (Y observed with X = 0).
//
// The ratio is evaluated as ∫₀¹ Π_i [P(Y_i|θ,X_i) / P(Y_i|H0,X_i)] dθ:
// dividing factor by factor keeps the integrand moderate for
// chance-consistent observations, so histories of thousands of runs
// neither underflow L0 (which would fabricate +Inf evidence) nor
// overflow L1.
func BayesFactor(obs []Observation) float64 {
	if len(obs) == 0 {
		return 0
	}
	for _, o := range obs {
		if o.Y && o.X <= 0 {
			return math.Inf(1) // impossible under H0
		}
	}
	return integrateRatio(obs)
}

// integrateRatio evaluates the Bayes factor with Simpson's rule. Under
// θ, P(Y_i = 1) = (1−θ)X_i + θ; under H0, P(Y_i = 1) = X_i.
func integrateRatio(obs []Observation) float64 {
	const steps = 512 // even
	const eps = 1e-12
	g := func(theta float64) float64 {
		r := 1.0
		for _, o := range obs {
			x := o.X
			if x < eps {
				x = eps
			}
			if x > 1-eps {
				x = 1 - eps
			}
			py := (1-theta)*x + theta
			if o.Y {
				r *= py / x
			} else {
				r *= (1 - py) / (1 - x)
			}
			if math.IsInf(r, 1) {
				return r // genuinely overwhelming evidence
			}
		}
		return r
	}
	h := 1.0 / steps
	sum := g(0) + g(1)
	for i := 1; i < steps; i++ {
		x := float64(i) * h
		if i%2 == 1 {
			sum += 4 * g(x)
		} else {
			sum += 2 * g(x)
		}
	}
	return sum * h / 3
}

// Candidate is a (site or pair, Bayes factor) ranking entry, exposed for
// diagnostics and tooling regardless of whether it crossed the threshold.
type Candidate struct {
	Site  site.ID   // overflow candidates
	Pair  site.Pair // dangling candidates
	Bayes float64
	Obs   int
	YRate float64 // fraction of observations with Y=1
}

// OverflowCandidates returns all tracked allocation sites ranked by Bayes
// factor, descending.
func (hist *History) OverflowCandidates() []Candidate {
	var out []Candidate
	for s, obs := range hist.overflow {
		out = append(out, Candidate{Site: s, Bayes: hist.overflowFactor(s, obs), Obs: len(obs), YRate: yRate(obs)})
	}
	sortCandidates(out)
	return out
}

// DanglingCandidates returns all tracked site pairs ranked by Bayes
// factor, descending.
func (hist *History) DanglingCandidates() []Candidate {
	var out []Candidate
	for p, obs := range hist.dangling {
		out = append(out, Candidate{Pair: p, Bayes: hist.danglingFactor(p, obs), Obs: len(obs), YRate: yRate(obs)})
	}
	sortCandidates(out)
	return out
}

func yRate(obs []Observation) float64 {
	if len(obs) == 0 {
		return 0
	}
	y := 0
	for _, o := range obs {
		if o.Y {
			y++
		}
	}
	return float64(y) / float64(len(obs))
}

func sortCandidates(cs []Candidate) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Bayes > cs[j].Bayes })
}

// Threshold returns the decision threshold cN−1 for the current N.
func (hist *History) Threshold() float64 {
	return hist.cfg.C*float64(len(hist.sites)) - 1
}

// String summarizes the history.
func (hist *History) String() string {
	return fmt.Sprintf("cumulative history: %d runs (%d failed, %d corrupt), %d sites, %d/%d tracked overflow/dangling keys",
		hist.Runs, hist.FailedRuns, hist.CorruptRuns, len(hist.sites), len(hist.overflow), len(hist.dangling))
}

// ObservationsFor exposes a site's overflow observations (for tests and
// the experiment harness).
func (hist *History) ObservationsFor(s site.ID) []Observation { return hist.overflow[s] }

// DanglingObservationsFor exposes a pair's observations.
func (hist *History) DanglingObservationsFor(p site.Pair) []Observation { return hist.dangling[p] }
