package cumulative

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"exterminator/internal/site"
)

// History persistence: §3.4 says cumulative mode "computes relevant
// statistics about each run and stores them in its patch file. The
// retained data is on the order of a few kilobytes per execution" —
// isolation must survive process restarts, so the (X, Y) observations,
// pad hints and deferral hints round-trip through a compact binary
// format.

const (
	persistMagic = 0x48435458 // "XTCH"
	// Version 2 appends the fleet upload watermark (watermark.go) after
	// the version-1 payload; version-1 files still decode (with an empty
	// watermark, i.e. "nothing uploaded yet").
	persistVersion = 2
)

// Encode writes the history.
func (hist *History) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	u32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	u64 := func(v uint64) { binary.Write(bw, binary.LittleEndian, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	u32(persistMagic)
	u32(persistVersion)
	f64(hist.cfg.C)
	f64(hist.cfg.P)
	u32(uint32(hist.Runs))
	u32(uint32(hist.FailedRuns))
	u32(uint32(hist.CorruptRuns))

	// Sites.
	u32(uint32(len(hist.sites)))
	for _, s := range sortedIDKeys(hist.sites) {
		u32(uint32(s))
	}

	// Overflow observations.
	u32(uint32(len(hist.overflow)))
	for _, s := range sortedIDKeys(hist.overflow) {
		obs := hist.overflow[s]
		u32(uint32(s))
		u32(uint32(len(obs)))
		for _, o := range obs {
			f64(o.X)
			if o.Y {
				u32(1)
			} else {
				u32(0)
			}
		}
	}

	// Dangling observations.
	u32(uint32(len(hist.dangling)))
	for _, p := range sortedPairKeys(hist.dangling) {
		obs := hist.dangling[p]
		u32(uint32(p.Alloc))
		u32(uint32(p.Free))
		u32(uint32(len(obs)))
		for _, o := range obs {
			f64(o.X)
			if o.Y {
				u32(1)
			} else {
				u32(0)
			}
		}
	}

	// Hints.
	u32(uint32(len(hist.padHint)))
	for _, s := range sortedIDKeys(hist.padHint) {
		u32(uint32(s))
		u32(hist.padHint[s])
	}
	u32(uint32(len(hist.dferHint)))
	for _, p := range sortedPairKeys(hist.dferHint) {
		u32(uint32(p.Alloc))
		u32(uint32(p.Free))
		u64(hist.dferHint[p])
	}

	// Upload watermark (version 2).
	m := &hist.uploaded
	u32(uint32(m.runs))
	u32(uint32(m.failed))
	u32(uint32(m.corrupt))
	u32(uint32(len(m.sites)))
	for _, s := range sortedIDKeys(m.sites) {
		u32(uint32(s))
	}
	u32(uint32(len(m.overflow)))
	for _, s := range sortedIDKeys(m.overflow) {
		u32(uint32(s))
		u32(uint32(m.overflow[s]))
	}
	u32(uint32(len(m.dangling)))
	for _, p := range sortedPairKeys(m.dangling) {
		u32(uint32(p.Alloc))
		u32(uint32(p.Free))
		u32(uint32(m.dangling[p]))
	}
	u32(uint32(len(m.pad)))
	for _, s := range sortedIDKeys(m.pad) {
		u32(uint32(s))
		u32(m.pad[s])
	}
	u32(uint32(len(m.dfer)))
	for _, p := range sortedPairKeys(m.dfer) {
		u32(uint32(p.Alloc))
		u32(uint32(p.Free))
		u64(m.dfer[p])
	}
	return bw.Flush()
}

// DecodeHistory reads a history written by Encode.
func DecodeHistory(r io.Reader) (*History, error) {
	br := bufio.NewReader(r)
	var err error
	u32 := func() uint32 {
		var v uint32
		if err == nil {
			err = binary.Read(br, binary.LittleEndian, &v)
		}
		return v
	}
	u64 := func() uint64 {
		var v uint64
		if err == nil {
			err = binary.Read(br, binary.LittleEndian, &v)
		}
		return v
	}
	f64 := func() float64 { return math.Float64frombits(u64()) }

	if m := u32(); err != nil || m != persistMagic {
		if err == nil {
			err = errors.New("bad magic")
		}
		return nil, fmt.Errorf("cumulative: %w", err)
	}
	version := u32()
	if err != nil || version < 1 || version > persistVersion {
		if err == nil {
			err = fmt.Errorf("unsupported version %d", version)
		}
		return nil, fmt.Errorf("cumulative: %w", err)
	}
	cfg := Config{C: f64(), P: f64()}
	hist := NewHistory(cfg)
	hist.Runs = int(u32())
	hist.FailedRuns = int(u32())
	hist.CorruptRuns = int(u32())

	const maxEntries = 1 << 22
	nSites := u32()
	if err != nil || nSites > maxEntries {
		return nil, fmt.Errorf("cumulative: sites: %w", orImplausible(err))
	}
	for i := uint32(0); i < nSites; i++ {
		hist.sites[site.ID(u32())] = true
	}

	nOvf := u32()
	if err != nil || nOvf > maxEntries {
		return nil, fmt.Errorf("cumulative: overflow keys: %w", orImplausible(err))
	}
	for i := uint32(0); i < nOvf; i++ {
		s := site.ID(u32())
		n := u32()
		if err != nil || n > maxEntries {
			return nil, fmt.Errorf("cumulative: overflow obs: %w", orImplausible(err))
		}
		// Capacity capped: a forged count must not pre-allocate beyond
		// what the bytes present can actually fill.
		obs := make([]Observation, 0, min(n, 1024))
		for j := uint32(0); j < n && err == nil; j++ {
			x := f64()
			y := u32() == 1
			obs = append(obs, Observation{X: x, Y: y})
		}
		hist.overflow[s] = obs
		hist.touchOverflow(s)
	}

	nDan := u32()
	if err != nil || nDan > maxEntries {
		return nil, fmt.Errorf("cumulative: dangling keys: %w", orImplausible(err))
	}
	for i := uint32(0); i < nDan; i++ {
		p := site.Pair{Alloc: site.ID(u32()), Free: site.ID(u32())}
		n := u32()
		if err != nil || n > maxEntries {
			return nil, fmt.Errorf("cumulative: dangling obs: %w", orImplausible(err))
		}
		obs := make([]Observation, 0, min(n, 1024))
		for j := uint32(0); j < n && err == nil; j++ {
			x := f64()
			y := u32() == 1
			obs = append(obs, Observation{X: x, Y: y})
		}
		hist.dangling[p] = obs
		hist.touchDangling(p)
	}

	nPadH := u32()
	if err != nil || nPadH > maxEntries {
		return nil, fmt.Errorf("cumulative: pad hints: %w", orImplausible(err))
	}
	for i := uint32(0); i < nPadH; i++ {
		s := site.ID(u32())
		hist.padHint[s] = u32()
	}
	nDefH := u32()
	if err != nil || nDefH > maxEntries {
		return nil, fmt.Errorf("cumulative: deferral hints: %w", orImplausible(err))
	}
	for i := uint32(0); i < nDefH; i++ {
		p := site.Pair{Alloc: site.ID(u32()), Free: site.ID(u32())}
		hist.dferHint[p] = u64()
	}

	if version >= 2 {
		hist.uploaded.init()
		m := &hist.uploaded
		m.runs = int(u32())
		m.failed = int(u32())
		m.corrupt = int(u32())
		nUpSites := u32()
		if err != nil || nUpSites > maxEntries {
			return nil, fmt.Errorf("cumulative: watermark sites: %w", orImplausible(err))
		}
		for i := uint32(0); i < nUpSites; i++ {
			m.sites[site.ID(u32())] = true
		}
		nUpOvf := u32()
		if err != nil || nUpOvf > maxEntries {
			return nil, fmt.Errorf("cumulative: watermark overflow: %w", orImplausible(err))
		}
		for i := uint32(0); i < nUpOvf; i++ {
			s := site.ID(u32())
			m.overflow[s] = int(u32())
		}
		nUpDan := u32()
		if err != nil || nUpDan > maxEntries {
			return nil, fmt.Errorf("cumulative: watermark dangling: %w", orImplausible(err))
		}
		for i := uint32(0); i < nUpDan; i++ {
			p := site.Pair{Alloc: site.ID(u32()), Free: site.ID(u32())}
			m.dangling[p] = int(u32())
		}
		nUpPad := u32()
		if err != nil || nUpPad > maxEntries {
			return nil, fmt.Errorf("cumulative: watermark pads: %w", orImplausible(err))
		}
		for i := uint32(0); i < nUpPad; i++ {
			s := site.ID(u32())
			m.pad[s] = u32()
		}
		nUpDfer := u32()
		if err != nil || nUpDfer > maxEntries {
			return nil, fmt.Errorf("cumulative: watermark deferrals: %w", orImplausible(err))
		}
		for i := uint32(0); i < nUpDfer; i++ {
			p := site.Pair{Alloc: site.ID(u32()), Free: site.ID(u32())}
			m.dfer[p] = u64()
		}
		// A corrupt file could carry a watermark ahead of the evidence it
		// claims was uploaded; clamping keeps upload deltas non-negative
		// and guarantees evidence can never be silently un-uploadable.
		hist.clampWatermark()
	}
	if err != nil {
		return nil, fmt.Errorf("cumulative: %w", err)
	}
	return hist, nil
}

func orImplausible(err error) error {
	if err != nil {
		return err
	}
	return errors.New("implausible entry count")
}

// Equal compares two histories field by field (for tests).
func (hist *History) Equal(other *History) bool {
	if hist.Runs != other.Runs || hist.FailedRuns != other.FailedRuns ||
		hist.CorruptRuns != other.CorruptRuns ||
		hist.cfg != other.cfg ||
		len(hist.sites) != len(other.sites) ||
		len(hist.overflow) != len(other.overflow) ||
		len(hist.dangling) != len(other.dangling) ||
		len(hist.padHint) != len(other.padHint) ||
		len(hist.dferHint) != len(other.dferHint) {
		return false
	}
	for s := range hist.sites {
		if !other.sites[s] {
			return false
		}
	}
	for s, obs := range hist.overflow {
		if !sameObs(obs, other.overflow[s]) {
			return false
		}
	}
	for p, obs := range hist.dangling {
		if !sameObs(obs, other.dangling[p]) {
			return false
		}
	}
	for s, v := range hist.padHint {
		if other.padHint[s] != v {
			return false
		}
	}
	for p, v := range hist.dferHint {
		if other.dferHint[p] != v {
			return false
		}
	}
	return true
}

func sameObs(a, b []Observation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedIDKeys returns a map's site.ID keys in ascending order — the
// single canonical key order every encoder and snapshot in this package
// shares.
func sortedIDKeys[V any](m map[site.ID]V) []site.ID {
	out := make([]site.ID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedPairKeys returns a map's site.Pair keys ordered by (Alloc, Free).
func sortedPairKeys[V any](m map[site.Pair]V) []site.Pair {
	out := make([]site.Pair, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Alloc != out[j].Alloc {
			return out[i].Alloc < out[j].Alloc
		}
		return out[i].Free < out[j].Free
	})
	return out
}
