package cumulative_test

import (
	"fmt"

	"exterminator/internal/cumulative"
	"exterminator/internal/site"
)

// Evidence uploads are cut at the history's upload watermark: each
// delta carries exactly what was recorded since the last acknowledged
// upload, so uploading in rounds can never re-send acknowledged
// evidence.
func ExampleHistory_UploadDelta() {
	hist := cumulative.NewHistory(cumulative.DefaultConfig())

	// Round 1: two runs of evidence arrive, are uploaded, and the
	// acknowledged delta advances the watermark.
	hist.Absorb(&cumulative.Snapshot{
		Runs:  2,
		Sites: []site.ID{0x100},
		Overflow: []cumulative.SiteObservations{
			{Site: 0x100, Obs: []cumulative.Observation{{X: 0.2, Y: true}}},
		},
	})
	first := hist.UploadDelta()
	fmt.Printf("first delta: %d runs, %d overflow key(s)\n", first.Runs, len(first.Overflow))
	hist.MarkUploaded(first) // ...after the push succeeded

	// Round 2: only the new evidence is in the next delta.
	hist.Absorb(&cumulative.Snapshot{Runs: 1, Sites: []site.ID{0x200}})
	second := hist.UploadDelta()
	fmt.Printf("second delta: %d runs, %d new site(s), %d overflow key(s)\n",
		second.Runs, len(second.Sites), len(second.Overflow))

	// Nothing new after acknowledging it.
	hist.MarkUploaded(second)
	fmt.Println("drained:", cumulative.DeltaEmpty(hist.UploadDelta()))
	// Output:
	// first delta: 2 runs, 1 overflow key(s)
	// second delta: 1 runs, 1 new site(s), 0 overflow key(s)
	// drained: true
}

// A batch's identity is content-addressed: a verbatim retry (the
// lost-ack case) reproduces the same ID, while any new delta — more
// content or a moved watermark — gets a fresh one. Servers keep a
// bounded window of absorbed IDs and acknowledge duplicates without
// re-absorbing, making ingest exactly-once.
func ExampleBatchID() {
	snap := &cumulative.Snapshot{Runs: 3, Sites: []site.ID{0x100}}

	id1 := cumulative.BatchID("install-7", 0, 0, snap)
	retry := cumulative.BatchID("install-7", 0, 0, snap)
	next := cumulative.BatchID("install-7", 3, 0, snap) // watermark moved

	fmt.Println("retry matches:", retry == id1)
	fmt.Println("next delta differs:", next != id1)
	// Output:
	// retry matches: true
	// next delta differs: true
}
