package cumulative

import (
	"math/rand"
	"reflect"
	"testing"

	"exterminator/internal/site"
)

// randSnapshot builds a random evidence batch: a pool of mostly
// chance-consistent sites, a handful of guilty keys with strong
// correlated evidence, random hints.
func randSnapshot(rng *rand.Rand) *Snapshot {
	s := &Snapshot{C: 4, P: 0.5, Runs: 1 + rng.Intn(5), FailedRuns: rng.Intn(2), CorruptRuns: rng.Intn(2)}
	for i, n := 0, 5+rng.Intn(30); i < n; i++ {
		id := site.ID(0x100 + uint32(rng.Intn(150)))
		s.Sites = append(s.Sites, id)
		var obs []Observation
		for j, m := 0, 1+rng.Intn(4); j < m; j++ {
			x := rng.Float64()
			obs = append(obs, Observation{X: x, Y: rng.Float64() < x})
		}
		s.Overflow = append(s.Overflow, SiteObservations{Site: id, Obs: obs})
		if rng.Intn(4) == 0 {
			s.PadHints = append(s.PadHints, PadHint{Site: id, Pad: uint32(8 + rng.Intn(64))})
		}
	}
	if rng.Intn(2) == 0 {
		g := site.ID(0xBAD0 + uint32(rng.Intn(4)))
		s.Sites = append(s.Sites, g)
		s.Overflow = append(s.Overflow, SiteObservations{Site: g, Obs: []Observation{
			{X: 0.1, Y: true}, {X: 0.2, Y: true},
		}})
		s.PadHints = append(s.PadHints, PadHint{Site: g, Pad: 24})
	}
	for i, n := 0, rng.Intn(8); i < n; i++ {
		p := PairObservations{Alloc: site.ID(0x5000 + uint32(rng.Intn(30))), Free: site.ID(0x6000 + uint32(rng.Intn(5)))}
		for j, m := 0, 1+rng.Intn(3); j < m; j++ {
			x := rng.Float64()
			p.Obs = append(p.Obs, Observation{X: x, Y: rng.Float64() < x})
		}
		s.Dangling = append(s.Dangling, p)
		if rng.Intn(3) == 0 {
			s.DeferralHints = append(s.DeferralHints, DeferralHint{Alloc: p.Alloc, Free: p.Free, Deferral: uint64(1 + rng.Intn(512))})
		}
	}
	if rng.Intn(2) == 0 {
		a, f := site.ID(0xDAD0+uint32(rng.Intn(3))), site.ID(0xDF)
		s.Dangling = append(s.Dangling, PairObservations{Alloc: a, Free: f, Obs: []Observation{
			{X: 0.5, Y: true}, {X: 0.5, Y: true},
		}})
		s.DeferralHints = append(s.DeferralHints, DeferralHint{Alloc: a, Free: f, Deferral: 128})
	}
	return s
}

// TestIncrementalIdentifyMatchesFullRescore interleaves absorbs with
// incremental Identify calls and checks every result against a fresh
// history rebuilt from scratch and fully rescored. This is the
// equivalence contract the incremental path must keep: caching may never
// change a decision, a Bayes factor, or an ordering.
func TestIncrementalIdentifyMatchesFullRescore(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		hist := NewHistory(DefaultConfig())
		for round := 0; round < 25; round++ {
			hist.Absorb(randSnapshot(rng))
			if round%3 != 0 {
				continue // let dirt accumulate across several absorbs
			}
			inc := hist.Identify()

			ref := NewHistory(DefaultConfig())
			ref.Absorb(hist.Snapshot())
			full := ref.IdentifyFull()

			if !reflect.DeepEqual(inc, full) {
				t.Fatalf("seed %d round %d: incremental %+v != full rescore %+v", seed, round, inc, full)
			}
			if hist.DirtyKeys() != 0 {
				t.Fatalf("seed %d round %d: %d dirty keys survived an identify pass", seed, round, hist.DirtyKeys())
			}
			// A second pass with no new evidence does zero rescoring work
			// and returns the same findings.
			again := hist.Identify()
			if !reflect.DeepEqual(inc, again) {
				t.Fatalf("seed %d round %d: repeated identify diverged", seed, round)
			}
		}
	}
}

// TestIdentifyOrderIndependent: two histories fed the same evidence in
// different orders produce identical findings (factors are computed over
// canonically sorted copies).
func TestIdentifyOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	batches := make([]*Snapshot, 12)
	for i := range batches {
		batches[i] = randSnapshot(rng)
	}
	forward := NewHistory(DefaultConfig())
	for _, b := range batches {
		forward.Absorb(b)
	}
	backward := NewHistory(DefaultConfig())
	for i := len(batches) - 1; i >= 0; i-- {
		backward.Absorb(batches[i])
	}
	if !reflect.DeepEqual(forward.Identify(), backward.Identify()) {
		t.Fatal("identify depends on evidence arrival order")
	}
}

// TestIncrementalIdentifySurvivesPersistence: a decoded history rescoring
// incrementally matches the original.
func TestIncrementalIdentifySurvivesPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	hist := NewHistory(DefaultConfig())
	for i := 0; i < 10; i++ {
		hist.Absorb(randSnapshot(rng))
	}
	want := hist.Identify()

	roundTripped := encodeDecode(t, hist)
	if got := roundTripped.Identify(); !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded history identifies differently: %+v vs %+v", got, want)
	}
}

// TestDirtyKeysTracksChanges: dirt accumulates with new evidence for a
// key and clears exactly when that key is rescored.
func TestDirtyKeysTracksChanges(t *testing.T) {
	hist := NewHistory(DefaultConfig())
	if hist.DirtyKeys() != 0 {
		t.Fatal("fresh history is dirty")
	}
	hist.Absorb(&Snapshot{C: 4, P: 0.5, Sites: []site.ID{1, 2},
		Overflow: []SiteObservations{
			{Site: 1, Obs: []Observation{{X: 0.5, Y: true}}},
			{Site: 2, Obs: []Observation{{X: 0.5, Y: false}}},
		}})
	if got := hist.DirtyKeys(); got != 2 {
		t.Fatalf("DirtyKeys = %d, want 2", got)
	}
	hist.Identify()
	if got := hist.DirtyKeys(); got != 0 {
		t.Fatalf("DirtyKeys after identify = %d, want 0", got)
	}
	hist.Absorb(&Snapshot{C: 4, P: 0.5,
		Overflow: []SiteObservations{{Site: 1, Obs: []Observation{{X: 0.25, Y: false}}}}})
	if got := hist.DirtyKeys(); got != 1 {
		t.Fatalf("DirtyKeys after one-key absorb = %d, want 1", got)
	}
}
