package cumulative

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Content-addressed batch identity: the fleet tier (internal/fleet)
// stamps every observation upload with an ID derived from WHAT is being
// sent (the canonicalized snapshot), WHO is sending it (the client id)
// and WHERE in the client's history the delta starts (the upload
// watermark position). A retry of the same batch — the lost-ack case,
// where the server absorbed the evidence but the client never saw the
// reply — reproduces the identical ID, so a bounded server-side dedup
// window can acknowledge it without absorbing twice. A *new* delta from
// the same client necessarily differs in content or watermark position
// and gets a fresh ID.

// BatchID returns the content-addressed identifier for one upload batch:
// a hex digest over the client id, the watermark position the delta was
// cut at (wmRuns, wmObs — see History.UploadedCounts) and the snapshot's
// canonical JSON encoding. The snapshot must be in canonical order
// (UploadDelta and Snapshot always produce one); hashing an unsorted
// hand-built snapshot still dedups exact retries, but two semantically
// equal batches with different orderings would get different IDs.
func BatchID(client string, wmRuns, wmObs int, s *Snapshot) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00%d\x00", client, wmRuns, wmObs)
	// Snapshot's JSON encoding is canonical by construction: every list
	// is emitted in sorted key order with (X, Y)-sorted observations.
	json.NewEncoder(h).Encode(s)
	// 128 bits keeps IDs short on the wire; collision probability is
	// negligible at any realistic dedup-window size.
	return hex.EncodeToString(h.Sum(nil)[:16])
}
