// Package stats provides the small statistical helpers the experiment
// harness reports with (geometric means for Figure 7, summaries for the
// injected-fault tables).
package stats

import (
	"math"
	"sort"
)

// GeoMean returns the geometric mean of xs. It panics on non-positive
// inputs and returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean of non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MinMax returns the extrema (0, 0 for empty).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Median returns the median (0 for empty).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Stddev returns the sample standard deviation (0 for n < 2).
func Stddev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}
