package stats

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeoMean(t *testing.T) {
	if !approx(GeoMean([]float64{2, 8}), 4) {
		t.Fatal("geomean(2,8) != 4")
	}
	if !approx(GeoMean([]float64{1, 1, 1}), 1) {
		t.Fatal("geomean of ones")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestMeanMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 2}
	if !approx(Mean(xs), 2) {
		t.Fatal("mean")
	}
	lo, hi := MinMax(xs)
	if lo != 1 || hi != 3 {
		t.Fatal("minmax")
	}
	if !approx(Median(xs), 2) {
		t.Fatal("median odd")
	}
	if !approx(Median([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("median even")
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty")
	}
	if l, h := MinMax(nil); l != 0 || h != 0 {
		t.Fatal("empty minmax")
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Fatal("single-element stddev")
	}
	if !approx(Stddev([]float64{2, 4}), math.Sqrt(2)) {
		t.Fatalf("stddev = %v", Stddev([]float64{2, 4}))
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Fatal("median sorted the input")
	}
}
