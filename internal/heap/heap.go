// Package heap implements miniheaps: the unit of DieHard's adaptive heap
// layout (paper §3.1, Figure 2) extended with Exterminator's out-of-band
// per-object metadata (paper §3.2, Figure 1).
//
// A miniheap is a contiguous region holding object slots of exactly one
// size, an allocation bitmap, and — below the line in Figure 1 — five
// metadata fields per slot used by error isolation and correction:
//
//	object id, allocation site, deallocation site, deallocation time,
//	and a canary bit.
//
// The metadata lives outside the simulated address space (out-of-band), so
// mutator bugs can corrupt object *contents* but never the allocator's own
// bookkeeping — the same robustness property DieHard gets from segregating
// its bitmaps from the data pages.
package heap

import (
	"fmt"

	"exterminator/internal/bitmap"
	"exterminator/internal/mem"
	"exterminator/internal/site"
	"exterminator/internal/xrand"
)

// ObjectID identifies the n-th successful allocation of a run (1-based).
// Object ids are the cross-heap identity used by the iterative/replicated
// isolator: addresses differ across randomized heaps, ids do not. Zero
// means "no object has ever occupied this slot".
type ObjectID uint64

// Meta is the out-of-band per-slot metadata of Figure 1.
type Meta struct {
	ID        ObjectID // id of current or most recent occupant
	AllocSite site.ID
	FreeSite  site.ID
	AllocTime uint64 // allocation clock when allocated
	FreeTime  uint64 // allocation clock when freed (0 if live or never used)
	ReqSize   uint32 // requested size (≤ slot size; includes any pad)
	Canaried  bool   // slot was filled with canaries when freed
	Bad       bool   // bad-object isolation: corrupted, never reuse
}

// Miniheap is one chunk of the adaptive heap: Slots slots of SlotSize
// bytes each, backed by a randomly placed region of the simulated address
// space.
type Miniheap struct {
	Index      int    // creation order across the whole heap (deterministic)
	Class      int    // size-class index
	SlotSize   int    // bytes per slot
	Slots      int    // number of slots
	CreateTime uint64 // allocation clock at creation

	Region *mem.Region
	bits   *bitmap.Bitmap
	meta   []Meta
}

// NewMiniheap maps a fresh miniheap into space.
func NewMiniheap(space *mem.Space, index, class, slotSize, slots int, createTime uint64) *Miniheap {
	if slotSize <= 0 || slots <= 0 {
		panic("heap: non-positive miniheap geometry")
	}
	mh := &Miniheap{
		Index:      index,
		Class:      class,
		SlotSize:   slotSize,
		Slots:      slots,
		CreateTime: createTime,
		bits:       bitmap.New(slots),
		meta:       make([]Meta, slots),
	}
	mh.Region = space.Map(slotSize*slots, mh)
	return mh
}

// Base returns the address of slot 0.
func (m *Miniheap) Base() mem.Addr { return m.Region.Base }

// SlotAddr returns the address of slot i.
func (m *Miniheap) SlotAddr(i int) mem.Addr {
	return m.Region.Base + mem.Addr(i*m.SlotSize)
}

// AddrSlot maps an address to the slot containing it. ok is false if addr
// is outside the miniheap.
func (m *Miniheap) AddrSlot(addr mem.Addr) (slot int, ok bool) {
	if !m.Region.Contains(addr) {
		return 0, false
	}
	return int(addr-m.Region.Base) / m.SlotSize, true
}

// SlotData returns the backing bytes of slot i (aliasing the region).
func (m *Miniheap) SlotData(i int) []byte {
	off := i * m.SlotSize
	return m.Region.Data[off : off+m.SlotSize]
}

// Meta returns a pointer to slot i's metadata.
func (m *Miniheap) Meta(i int) *Meta { return &m.meta[i] }

// InUse reports whether slot i is currently allocated (or bad-isolated).
func (m *Miniheap) InUse(i int) bool { return m.bits.Get(i) }

// Used returns the number of allocated slots.
func (m *Miniheap) Used() int { return m.bits.Count() }

// FreeSlots returns the number of unallocated slots.
func (m *Miniheap) FreeSlots() int { return m.Slots - m.bits.Count() }

// RandomFreeSlot picks a uniformly random free slot, or -1 if full.
func (m *Miniheap) RandomFreeSlot(rng *xrand.RNG) int {
	return m.bits.RandomClearBit(rng)
}

// Take marks slot i allocated. It reports whether the slot was free.
func (m *Miniheap) Take(i int) bool { return m.bits.Set(i) }

// Release marks slot i free. It reports whether the slot was allocated;
// a second Release is a no-op (the bitmap property that makes double frees
// benign, paper §2).
func (m *Miniheap) Release(i int) bool { return m.bits.Clear(i) }

// Bitmap exposes the allocation bitmap for image capture. Callers must not
// mutate it.
func (m *Miniheap) Bitmap() *bitmap.Bitmap { return m.bits }

// String summarizes the miniheap geometry.
func (m *Miniheap) String() string {
	return fmt.Sprintf("miniheap[%d] class=%d %dx%dB @0x%x used=%d",
		m.Index, m.Class, m.Slots, m.SlotSize, m.Region.Base, m.Used())
}
