package heap

import (
	"testing"

	"exterminator/internal/mem"
	"exterminator/internal/xrand"
)

func newMini(t *testing.T, slotSize, slots int) (*mem.Space, *Miniheap) {
	t.Helper()
	space := mem.NewSpace(xrand.New(42))
	return space, NewMiniheap(space, 0, 3, slotSize, slots, 7)
}

func TestGeometry(t *testing.T) {
	_, m := newMini(t, 64, 32)
	if m.Region.Size() != 64*32 {
		t.Fatalf("region size = %d", m.Region.Size())
	}
	if m.SlotAddr(0) != m.Base() {
		t.Fatal("slot 0 not at base")
	}
	if m.SlotAddr(5) != m.Base()+5*64 {
		t.Fatal("slot addressing wrong")
	}
	if m.CreateTime != 7 || m.Class != 3 {
		t.Fatal("fields not recorded")
	}
}

func TestAddrSlotRoundTrip(t *testing.T) {
	_, m := newMini(t, 48, 16)
	for i := 0; i < 16; i++ {
		for _, off := range []mem.Addr{0, 1, 47} {
			slot, ok := m.AddrSlot(m.SlotAddr(i) + off)
			if !ok || slot != i {
				t.Fatalf("AddrSlot(slot %d + %d) = %d, %v", i, off, slot, ok)
			}
		}
	}
	if _, ok := m.AddrSlot(m.Base() - 1); ok {
		t.Fatal("resolved address below base")
	}
	if _, ok := m.AddrSlot(m.Base() + 48*16); ok {
		t.Fatal("resolved address past end")
	}
}

func TestTakeReleaseDoubleFree(t *testing.T) {
	_, m := newMini(t, 32, 8)
	if !m.Take(3) {
		t.Fatal("Take of free slot failed")
	}
	if m.Take(3) {
		t.Fatal("double Take succeeded")
	}
	if m.Used() != 1 || m.FreeSlots() != 7 {
		t.Fatal("counts wrong")
	}
	if !m.Release(3) {
		t.Fatal("Release failed")
	}
	if m.Release(3) {
		t.Fatal("double Release changed state (must be benign)")
	}
	if m.Used() != 0 {
		t.Fatal("count after release wrong")
	}
}

func TestRandomFreeSlotAvoidsTaken(t *testing.T) {
	rng := xrand.New(5)
	_, m := newMini(t, 16, 64)
	for i := 0; i < 32; i++ {
		m.Take(i)
	}
	for trial := 0; trial < 500; trial++ {
		s := m.RandomFreeSlot(rng)
		if s < 32 {
			t.Fatalf("picked taken slot %d", s)
		}
	}
}

func TestSlotDataAliasesRegion(t *testing.T) {
	space, m := newMini(t, 16, 4)
	d := m.SlotData(2)
	d[0] = 0xAB
	var b [1]byte
	if f := space.Read(m.SlotAddr(2), b[:]); f != nil {
		t.Fatalf("read: %v", f)
	}
	if b[0] != 0xAB {
		t.Fatal("SlotData does not alias region memory")
	}
	if len(d) != 16 {
		t.Fatalf("slot data len = %d", len(d))
	}
}

func TestMetaPersistence(t *testing.T) {
	_, m := newMini(t, 16, 4)
	meta := m.Meta(1)
	meta.ID = 99
	meta.AllocSite = 0xabcd
	meta.Canaried = true
	if got := m.Meta(1); got.ID != 99 || got.AllocSite != 0xabcd || !got.Canaried {
		t.Fatal("meta not persisted through pointer")
	}
}

func TestRegionTagBackPointer(t *testing.T) {
	space, m := newMini(t, 16, 4)
	r := space.Find(m.Base())
	if r == nil || r.Tag != m {
		t.Fatal("region tag does not point back to miniheap")
	}
}

func TestStringNonEmpty(t *testing.T) {
	_, m := newMini(t, 16, 4)
	if m.String() == "" {
		t.Fatal("empty String")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	space := mem.NewSpace(xrand.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("zero slots did not panic")
		}
	}()
	NewMiniheap(space, 0, 0, 16, 0, 0)
}
