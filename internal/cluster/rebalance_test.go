package cluster

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/engine"
	"exterminator/internal/fleet"
)

// TestRingVersionMonotonic pins the membership-version contract writers
// and partitions converge through: versions start at 1, every effective
// change bumps them, no-ops don't, and external announcements only ever
// move them forward.
func TestRingVersionMonotonic(t *testing.T) {
	r := NewRing(0, "a", "b")
	if got := r.Version(); got != 1 {
		t.Fatalf("fresh ring version = %d, want 1", got)
	}
	r.Add("c")
	if got := r.Version(); got != 2 {
		t.Fatalf("after add: version = %d, want 2", got)
	}
	r.Add("c") // already a member: no-op
	if got := r.Version(); got != 2 {
		t.Fatalf("duplicate add moved the version to %d", got)
	}
	r.Remove("a")
	if got := r.Version(); got != 3 {
		t.Fatalf("after remove: version = %d, want 3", got)
	}
	r.Remove("zz") // not a member: no-op
	if got := r.Version(); got != 3 {
		t.Fatalf("phantom remove moved the version to %d", got)
	}

	// Announcements: strictly newer adopts, stale or equal is ignored.
	if r.SetMembership(3, []string{"x"}) {
		t.Fatal("equal-version announcement was applied")
	}
	if r.SetMembership(2, []string{"x"}) {
		t.Fatal("stale announcement was applied")
	}
	if got := r.Owner(42); got == "x" {
		t.Fatal("ignored announcement still changed ownership")
	}
	if !r.SetMembership(7, []string{"x", "y"}) {
		t.Fatal("newer announcement was not applied")
	}
	version, nodes := r.Membership()
	if version != 7 || len(nodes) != 2 || nodes[0] != "x" || nodes[1] != "y" {
		t.Fatalf("membership after adopt = v%d %v", version, nodes)
	}
}

// TestRouterEmptyRing pins the degenerate-ring fix: a router whose ring
// lost every member returns ErrNoMembers instead of routing pieces to a
// partition named "".
func TestRouterEmptyRing(t *testing.T) {
	router, err := NewRouter("lonely", "http://p1")
	if err != nil {
		t.Fatal(err)
	}
	router.Ring().Remove("http://p1")

	if _, _, err := router.PushSplit(context.Background(), testBatch(rand.New(rand.NewSource(1)))); !errors.Is(err, ErrNoMembers) {
		t.Fatalf("PushSplit on empty ring: %v, want ErrNoMembers", err)
	}
	if _, err := router.SplitBatch(0, 0, testBatch(rand.New(rand.NewSource(2)))); !errors.Is(err, ErrNoMembers) {
		t.Fatalf("SplitBatch on empty ring: %v, want ErrNoMembers", err)
	}
	if parts := SplitSnapshot(router.Ring(), testBatch(rand.New(rand.NewSource(3)))); parts != nil {
		t.Fatalf("SplitSnapshot on empty ring routed to %d node(s)", len(parts))
	}
}

// rebalanceCluster is the shared fixture: a single-fleetd control, four
// partition servers (three in the initial membership, one spare), and a
// coordinator with a crash-safe rebalance journal.
type rebalanceCluster struct {
	control  *fleet.Server
	ctrlTS   *httptest.Server
	parts    []*fleet.Server
	partTS   []*httptest.Server
	partURLs []string
	coord    *Coordinator
	coordTS  *httptest.Server
	journal  string
}

func newRebalanceCluster(t *testing.T, nParts int) *rebalanceCluster {
	t.Helper()
	cfg := cumulative.DefaultConfig()
	rc := &rebalanceCluster{journal: filepath.Join(t.TempDir(), "rebalance.journal")}
	rc.control = fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
	rc.ctrlTS = httptest.NewServer(rc.control.Handler())
	t.Cleanup(rc.ctrlTS.Close)
	for i := 0; i < nParts; i++ {
		srv := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1, DisableCorrection: true})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		rc.parts = append(rc.parts, srv)
		rc.partTS = append(rc.partTS, ts)
		rc.partURLs = append(rc.partURLs, ts.URL)
	}
	coord, err := NewCoordinator(CoordinatorOptions{
		Partitions:       rc.partURLs[:3],
		Config:           cfg,
		RebalanceJournal: rc.journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	rc.coord = coord
	rc.coordTS = httptest.NewServer(coord.Handler())
	t.Cleanup(rc.coordTS.Close)
	return rc
}

// assertEvidenceMatchesControl pins the headline invariants: the cluster
// and the never-resharded control hold the byte-identical canonical
// evidence multiset and derive byte-identical patches, and every key's
// evidence lives on exactly one partition (partition /v1/status shard
// counts sum to the control's key counts — a split key would inflate
// the sum).
func (rc *rebalanceCluster) assertEvidenceMatchesControl(t *testing.T, members []int) {
	t.Helper()
	cfg := cumulative.DefaultConfig()

	merged := cumulative.NewHistory(cfg)
	for _, i := range members {
		merged.Absorb(rc.parts[i].Store().Combined().Snapshot())
	}
	merged.Canonicalize()
	want := rc.control.Store().Combined()
	want.Canonicalize()
	if !merged.Equal(want) {
		t.Fatalf("cluster evidence diverged from control:\ncluster: %s\ncontrol: %s", merged, want)
	}

	if gotRuns, wantRuns := rc.coord.Status().Runs, rc.control.Store().Runs(); gotRuns != wantRuns {
		t.Fatalf("coordinator runs = %d, control = %d", gotRuns, wantRuns)
	}
	singleBytes := canonicalPatchBytes(t, rc.control.PatchLog())
	clusterBytes := canonicalPatchBytes(t, rc.coord.PatchLog())
	if !bytes.Equal(singleBytes, clusterBytes) {
		t.Fatalf("cluster patch set diverged from control:\nsingle:  %s\ncluster: %s", singleBytes, clusterBytes)
	}

	// Exactly-one-partition, via the public status surface.
	sumSites, sumOvf, sumDan := 0, 0, 0
	for _, i := range members {
		st, err := fleet.NewClient(rc.partURLs[i], "probe").Status()
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range st.Shards {
			sumSites += sh.Sites
			sumOvf += sh.OverflowKeys
			sumDan += sh.DanglingKeys
		}
	}
	ctrl := rc.control.Store().Combined()
	if sumSites != ctrl.Sites() || sumOvf != ctrl.OverflowKeys() || sumDan != ctrl.DanglingKeys() {
		t.Fatalf("shard-count sums (sites %d ovf %d dan %d) != control (sites %d ovf %d dan %d) — a moved key is split or lost",
			sumSites, sumOvf, sumDan, ctrl.Sites(), ctrl.OverflowKeys(), ctrl.DanglingKeys())
	}
}

// TestRebalanceMembershipChangeUnderLiveUploads is the membership-change
// e2e: grow 3→4, then drain out a founding member, all while concurrent
// uploaders keep streaming through cluster sinks that started on the old
// topology. The cluster must converge byte-identically (evidence,
// totals, patches) with a never-resharded single fleetd, with every
// moved key on exactly one partition.
func TestRebalanceMembershipChangeUnderLiveUploads(t *testing.T) {
	ctx := context.Background()
	rc := newRebalanceCluster(t, 4)
	cfg := cumulative.DefaultConfig()

	const uploaders = 3
	const rounds = 10
	type uploader struct {
		sink *Sink
		hist *cumulative.History
	}
	ups := make([]*uploader, uploaders)
	var wg sync.WaitGroup
	for u := 0; u < uploaders; u++ {
		// Sinks start on the OLD topology; the coordinator URL is where
		// they refresh membership after a stale-ring bounce.
		sink, err := NewSink(rc.coordTS.URL, "up", rc.partURLs[:3]...)
		if err != nil {
			t.Fatal(err)
		}
		ups[u] = &uploader{sink: sink, hist: cumulative.NewHistory(cfg)}
	}
	errCh := make(chan error, uploaders)
	reached := make(chan struct{}, uploaders)
	for u := 0; u < uploaders; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + u)))
			ctrl := fleet.NewClient(rc.ctrlTS.URL, "up")
			for r := 0; r < rounds; r++ {
				batch := testBatch(rng)
				if _, err := ctrl.PushSnapshot(batch); err != nil {
					errCh <- err
					return
				}
				ups[u].hist.Absorb(batch)
				// Flush failures mid-rebalance are soft: the watermark
				// holds the evidence and a later flush re-splits it under
				// the refreshed ring.
				ups[u].sink.FlushEvidence(ctx, &engine.Evidence{History: ups[u].hist})
				if r == rounds/2 {
					// Evidence is flowing; the main goroutine resizes the
					// cluster NOW, concurrently with the remaining rounds.
					reached <- struct{}{}
				}
			}
		}(u)
	}
	for u := 0; u < uploaders; u++ {
		<-reached
	}

	// Live resize while uploads stream: add the spare node...
	if res, err := rc.coord.AddNode(ctx, rc.partURLs[3]); err != nil {
		t.Fatalf("add node: %v", err)
	} else if res.Version != 2 || res.MovedKeys == 0 {
		t.Fatalf("add-node result: %+v", res)
	}
	// ...then drain out a founding member.
	if res, err := rc.coord.RemoveNode(ctx, rc.partURLs[0]); err != nil {
		t.Fatalf("remove node: %v", err)
	} else if res.Version != 3 || res.MovedKeys == 0 {
		t.Fatalf("remove-node result: %+v", res)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Drain every uploader's watermark through the (now current) ring.
	for _, up := range ups {
		for attempt := 0; attempt < 5; attempt++ {
			up.sink.FlushEvidence(ctx, &engine.Evidence{History: up.hist})
			if cumulative.DeltaEmpty(up.hist.UploadDelta()) {
				break
			}
		}
		if d := up.hist.UploadDelta(); !cumulative.DeltaEmpty(d) {
			t.Fatalf("uploader watermark never drained after the resize: %+v", d)
		}
	}

	rc.control.Correct()
	if _, err := rc.coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// The removed founder must hold nothing.
	if got := rc.parts[0].Store().Sites(); got != 0 {
		t.Fatalf("removed partition still holds %d sites", got)
	}
	rc.assertEvidenceMatchesControl(t, []int{1, 2, 3})

	st := rc.coord.Status()
	if st.MembershipVersion != 3 || len(st.Nodes) != 3 {
		t.Fatalf("final membership v%d over %v", st.MembershipVersion, st.Nodes)
	}
	if st.Rebalance.State != RebalanceDone || st.Rebalance.MovedKeys == 0 {
		t.Fatalf("rebalance state not reported: %+v", st.Rebalance)
	}
}

// TestRebalanceCoordinatorKilledMidDrain is the crash e2e the tentpole
// is pinned by: the coordinator dies between drain and backfill (moved
// evidence exists only in a partition's evict cache), a FRESH
// coordinator re-drives the journaled plan, and the cluster still
// converges byte-identically with a never-resharded single fleetd — no
// lost and no double-counted evidence.
func TestRebalanceCoordinatorKilledMidDrain(t *testing.T) {
	ctx := context.Background()
	rc := newRebalanceCluster(t, 4)
	cfg := cumulative.DefaultConfig()

	router, err := NewRouter("routed", rc.partURLs[:3]...)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := fleet.NewClient(rc.ctrlTS.URL, "routed")
	rng := rand.New(rand.NewSource(17))
	push := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			batch := testBatch(rng)
			if _, err := ctrl.PushSnapshot(batch); err != nil {
				t.Fatal(err)
			}
			if _, err := router.PushSnapshot(ctx, batch); err != nil {
				t.Fatal(err)
			}
		}
	}
	push(30)
	if _, err := rc.coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill the coordinator right after the first partition's drain: the
	// drained keys now live ONLY in that partition's evict cache.
	rc.coord.testRebalanceCrash = func(stage string) error {
		if stage == "drained" {
			return errors.New("simulated coordinator crash")
		}
		return nil
	}
	if _, err := rc.coord.AddNode(ctx, rc.partURLs[3]); err == nil {
		t.Fatal("crashed rebalance reported success")
	}
	if st := rc.coord.Status().Rebalance; st.State != RebalanceFailed {
		t.Fatalf("rebalance state after crash: %+v", st)
	}

	// A fresh coordinator (the restarted process) resumes from the
	// journal alone.
	coordB, err := NewCoordinator(CoordinatorOptions{
		Partitions:       rc.partURLs[:3],
		Config:           cfg,
		RebalanceJournal: rc.journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coordB.ResumeRebalance(ctx)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res == nil || res.Version != 2 || len(res.Nodes) != 4 {
		t.Fatalf("resume result: %+v", res)
	}
	rc.coord = coordB

	// Resuming again is a no-op: the journal shows the plan done.
	if res, err := coordB.ResumeRebalance(ctx); err != nil || res != nil {
		t.Fatalf("second resume: %v, %+v", err, res)
	}

	// Uploads continue on the new topology (the router adopts the
	// membership the resume reported).
	router.Ring().SetMembership(res.Version, res.Nodes)
	push(10)

	rc.control.Correct()
	if _, err := coordB.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	rc.assertEvidenceMatchesControl(t, []int{0, 1, 2, 3})

	// The spare actually took ownership of moved keys.
	if got := rc.parts[3].Store().Sites(); got == 0 {
		t.Fatal("new partition received no evidence — nothing was backfilled")
	}

	// A THIRD coordinator restarted with the stale flag list and no
	// snapshot must re-adopt the journal's completed membership instead
	// of silently reverting to 3 nodes and dropping p4 from the merge.
	coordC, err := NewCoordinator(CoordinatorOptions{
		Partitions:       rc.partURLs[:3],
		Config:           cfg,
		RebalanceJournal: rc.journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := coordC.ResumeRebalance(ctx); err != nil || res != nil {
		t.Fatalf("resume on a completed journal: %v, %+v", err, res)
	}
	st := coordC.Status()
	if st.MembershipVersion != 2 || len(st.Nodes) != 4 {
		t.Fatalf("restarted coordinator lost the journaled membership: v%d over %v", st.MembershipVersion, st.Nodes)
	}
	if _, err := coordC.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := coordC.Status().Runs, rc.control.Store().Runs(); got != want {
		t.Fatalf("restarted coordinator merges %d runs, control has %d — a partition dropped out", got, want)
	}
}
