package cluster

import (
	"context"
	"errors"
	"log/slog"
	"sync"

	"exterminator/internal/cumulative"
	"exterminator/internal/engine"
	"exterminator/internal/fleet"
	"exterminator/internal/patch"
	"exterminator/internal/report"
	"exterminator/internal/telemetry"
)

// Sink is the cluster-aware engine.EvidenceSink: patches download from
// the coordinator (the merge tier's fleet-wide log), observations upload
// through the ring-partitioned router, and bug reports go to the
// coordinator. Like fleet.Sink, uploads are watermarked so resumed
// histories never double-count.
type Sink struct {
	coord  *fleet.Client
	router *Router
	logger *slog.Logger

	// Flush instrumentation, registered by SetMetrics (nil without).
	flushPieces   *telemetry.Histogram
	staleResplits *telemetry.Counter

	mu             sync.Mutex
	fetchedEntries int
	fetchedVersion uint64
	// pending holds, per partition, a piece that was sent but never
	// acknowledged. Each is retried verbatim — same content, same batch
	// ID — before any new delta is cut for that partition, so the
	// partition's dedup window recognizes a delivery whose ack was lost
	// and the evidence is absorbed exactly once.
	pending map[string]Piece
}

// NewSink returns a sink for a cluster: coordinatorURL serves patches
// and receives reports; the router spreads observation uploads across
// the partitions.
func NewSink(coordinatorURL, id string, partitions ...string) (*Sink, error) {
	rt, err := NewRouter(id, partitions...)
	if err != nil {
		return nil, err
	}
	return &Sink{
		coord:   fleet.NewClient(coordinatorURL, id),
		router:  rt,
		logger:  slog.New(slog.DiscardHandler),
		pending: make(map[string]Piece),
	}, nil
}

// SetToken attaches a shared ingest token to the router and coordinator
// clients.
func (s *Sink) SetToken(token string) {
	s.coord.SetToken(token)
	s.router.SetToken(token)
}

// SetWireV2 switches the sink's uploads and patch polls to the binary
// v2 wire protocol: the router's per-partition clients frame their
// pieces, and the coordinator client advertises v2 in Accept on patch
// polls. Servers that lack v2 keep working — clients self-downgrade on
// rejection and polls negotiate per response.
func (s *Sink) SetWireV2(on bool) {
	s.coord.SetWireV2(on)
	s.router.SetWireV2(on)
}

// SetLogger attaches a structured logger to the sink and every client
// under it (coordinator and per-partition); by default all are silent.
func (s *Sink) SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.DiscardHandler)
	}
	s.logger = l.With("component", "cluster-sink")
	s.coord.SetLogger(l)
	s.router.SetLogger(l)
}

// SetMetrics registers the sink's flush instruments into reg and
// propagates the registry to every client under it.
func (s *Sink) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	//extlint:ignore metricconv published name predates the unit-suffix convention; a piece count has no unit, and renaming would break existing dashboards
	s.flushPieces = reg.Histogram("cluster_sink_flush_pieces",
		"Ring-split pieces pushed per evidence flush.", telemetry.SizeBuckets)
	s.staleResplits = reg.Counter("cluster_sink_stale_resplits_total",
		"Flushes re-split after a stale-ring rejection (the cluster rebalanced mid-upload).")
	s.coord.SetMetrics(reg)
	s.router.SetMetrics(reg)
}

// Router exposes the underlying router (membership changes).
func (s *Sink) Router() *Router { return s.router }

// SinkName implements engine.EvidenceSink.
func (s *Sink) SinkName() string { return "cluster" }

// FetchPatches implements engine.PatchSource: download the fleet-wide
// patch set from the coordinator. The same poll refreshes ring
// membership (best-effort), so a session started after a rebalance
// routes by the current topology from its first upload.
func (s *Sink) FetchPatches(ctx context.Context) (*patch.Set, error) {
	ps, version, err := s.coord.PatchesContext(ctx, 0)
	if err != nil {
		return nil, err
	}
	s.refreshMembership(ctx)
	s.mu.Lock()
	s.fetchedEntries, s.fetchedVersion = ps.Len(), version
	s.mu.Unlock()
	return ps, nil
}

// refreshMembership adopts the coordinator's current topology. Failures
// are ignored: the sink keeps routing by its last known ring, and a
// stale split is rejected (never absorbed), so correctness is not at
// stake — only an extra round trip.
func (s *Sink) refreshMembership(ctx context.Context) {
	m, err := s.coord.Membership(ctx)
	if err != nil {
		return
	}
	s.router.Ring().SetMembership(m.Version, m.Nodes)
}

// Commit implements engine.EvidenceSink: route the history's upload
// delta across the partitions and report newly derived patch entries to
// the coordinator. The watermark advances per *delivered piece*, not per
// batch: if one partition is down, the pieces the healthy partitions
// absorbed are marked uploaded immediately, and a later retry re-sends
// only the failed partition's piece — never re-counting evidence a
// partition already holds. Pieces carry content-addressed batch IDs and
// unacknowledged pieces are retried verbatim, so ingest is exactly-once
// against partitions keeping a dedup window even when acks are lost.
func (s *Sink) Commit(ctx context.Context, ev *engine.Evidence) error {
	var errs []error
	if ev.History != nil && ev.History.Runs > 0 {
		if err := s.stream(ctx, ev.History); err != nil {
			errs = append(errs, err)
		}
	}
	if ev.Derived != nil && ev.Derived.Len() > 0 {
		if err := s.coord.PushReportContext(ctx, report.FromPatches(ev.Derived, nil)); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// FlushEvidence implements engine.StreamingSink: route the history's
// unacknowledged delta across the partitions mid-run, so a long
// cumulative session feeds the cluster continuously instead of in one
// post-run batch.
func (s *Sink) FlushEvidence(ctx context.Context, ev *engine.Evidence) error {
	if ev.History == nil {
		return nil
	}
	return s.stream(ctx, ev.History)
}

// stream is the shared routed-upload path: (1) retry every pending piece
// verbatim, advancing the watermark for each one acknowledged; (2) cut
// the next watermark delta, split it along the ring with per-piece batch
// IDs, and push each piece, skipping partitions that still hold an
// unacknowledged piece (overlapping deltas to one partition would defeat
// the content-addressed retry); (3) advance the watermark per delivered
// piece, parking failures as that partition's pending piece. Pushes
// within each phase run concurrently (one slow partition costs one
// timeout, not one per partition); the watermark is only touched after
// the phase's pushes have all returned, since the caller serializes
// history access.
//
// Stale-ring rejections (the cluster rebalanced under us) are not
// failures to park: the rejected piece was split under a dead topology,
// so it is dropped — its evidence sits beyond the watermark — the
// membership refreshes from the coordinator, and one more pass re-cuts
// and re-routes the delta under the new ring.
func (s *Sink) stream(ctx context.Context, hist *cumulative.History) error {
	var errs []error

	s.mu.Lock()
	retries := make([]Piece, 0, len(s.pending))
	for _, p := range s.pending {
		retries = append(retries, p)
	}
	s.mu.Unlock()
	delivered, failed, stale := s.pushAll(ctx, retries, &errs)
	for _, p := range delivered {
		hist.MarkUploaded(p.Batch.Snapshot)
	}
	s.mu.Lock()
	for _, p := range delivered {
		delete(s.pending, p.Node)
	}
	for _, p := range stale {
		// Split under a dead topology: drop the piece. Its evidence is
		// still beyond the watermark and re-cuts below under the
		// refreshed ring.
		delete(s.pending, p.Node)
	}
	s.mu.Unlock()
	sawStale := len(stale) > 0
	pushed := len(retries)

	for pass := 0; pass < 2; pass++ {
		if sawStale {
			if s.staleResplits != nil {
				s.staleResplits.Inc()
			}
			s.logger.Warn("stale ring rejected pieces; refreshing membership and re-splitting",
				"stalePieces", len(stale))
			s.refreshMembership(ctx)
			sawStale = false
		}
		// Counter movement riding a still-unacknowledged piece must not be
		// re-cut into the new delta: the new delta's counters would land on
		// whichever node owns its lowest key — possibly a *healthy* one —
		// and be absorbed there while the pending piece later delivers the
		// overlapping range a second time. Strip counters from the new cut
		// while any pending piece carries them; they stream once it clears.
		blocked := make(map[string]bool)
		pendingCounters := false
		s.mu.Lock()
		for node, p := range s.pending {
			blocked[node] = true
			sn := p.Batch.Snapshot
			if sn.Runs != 0 || sn.FailedRuns != 0 || sn.CorruptRuns != 0 {
				pendingCounters = true
			}
		}
		s.mu.Unlock()

		delta := hist.UploadDelta()
		if pendingCounters {
			delta.Runs, delta.FailedRuns, delta.CorruptRuns = 0, 0, 0
		}
		if cumulative.DeltaEmpty(delta) {
			break
		}
		wmRuns, wmObs := hist.UploadedCounts()
		split, err := s.router.SplitBatch(wmRuns, wmObs, delta)
		if err != nil {
			errs = append(errs, err)
			break
		}
		var fresh []Piece
		for _, p := range split {
			if blocked[p.Node] {
				// This partition's unacknowledged piece is a subset of the
				// piece just cut for it. Nothing is marked uploaded, so the
				// evidence stays beyond the watermark and is re-cut into a
				// future delta once the retry clears.
				continue
			}
			fresh = append(fresh, p)
		}
		pushed += len(fresh)
		delivered, failed, stale = s.pushAll(ctx, fresh, &errs)
		for _, p := range delivered {
			hist.MarkUploaded(p.Batch.Snapshot)
		}
		s.mu.Lock()
		for _, p := range failed {
			s.pending[p.Node] = p
		}
		s.mu.Unlock()
		if len(stale) == 0 {
			break
		}
		sawStale = true
	}
	if s.flushPieces != nil && pushed > 0 {
		s.flushPieces.Observe(float64(pushed))
	}
	return errors.Join(errs...)
}

// pushAll uploads pieces to their partitions concurrently, partitioning
// them into delivered, failed (retryable verbatim) and stale (rejected
// for an outdated ring version — must be re-split, never retried
// verbatim); push errors are appended to errs, except stale rejections,
// which the caller recovers from by refreshing membership.
func (s *Sink) pushAll(ctx context.Context, pieces []Piece, errs *[]error) (delivered, failed, stale []Piece) {
	if len(pieces) == 0 {
		return nil, nil, nil
	}
	var (
		wg  sync.WaitGroup
		rmu sync.Mutex
	)
	for _, p := range pieces {
		wg.Add(1)
		go func(p Piece) {
			defer wg.Done()
			_, err := s.router.PushPiece(ctx, p)
			rmu.Lock()
			defer rmu.Unlock()
			var sre *fleet.StaleRingError
			switch {
			case err == nil:
				delivered = append(delivered, p)
			case errors.As(err, &sre):
				stale = append(stale, p)
			default:
				*errs = append(*errs, err)
				failed = append(failed, p)
			}
		}(p)
	}
	wg.Wait()
	return delivered, failed, stale
}

// Fetched reports what the pre-run download merged.
func (s *Sink) Fetched() (entries int, version uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetchedEntries, s.fetchedVersion
}
