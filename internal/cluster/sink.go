package cluster

import (
	"context"
	"errors"
	"sync"

	"exterminator/internal/cumulative"
	"exterminator/internal/engine"
	"exterminator/internal/fleet"
	"exterminator/internal/patch"
	"exterminator/internal/report"
)

// Sink is the cluster-aware engine.EvidenceSink: patches download from
// the coordinator (the merge tier's fleet-wide log), observations upload
// through the ring-partitioned router, and bug reports go to the
// coordinator. Like fleet.Sink, uploads are watermarked so resumed
// histories never double-count.
type Sink struct {
	coord  *fleet.Client
	router *Router

	mu             sync.Mutex
	fetchedEntries int
	fetchedVersion uint64
}

// NewSink returns a sink for a cluster: coordinatorURL serves patches
// and receives reports; the router spreads observation uploads across
// the partitions.
func NewSink(coordinatorURL, id string, partitions ...string) (*Sink, error) {
	rt, err := NewRouter(id, partitions...)
	if err != nil {
		return nil, err
	}
	return &Sink{coord: fleet.NewClient(coordinatorURL, id), router: rt}, nil
}

// SetToken attaches a shared ingest token to the router and coordinator
// clients.
func (s *Sink) SetToken(token string) {
	s.coord.SetToken(token)
	s.router.SetToken(token)
}

// Router exposes the underlying router (membership changes).
func (s *Sink) Router() *Router { return s.router }

// SinkName implements engine.EvidenceSink.
func (s *Sink) SinkName() string { return "cluster" }

// FetchPatches implements engine.PatchSource: download the fleet-wide
// patch set from the coordinator.
func (s *Sink) FetchPatches(ctx context.Context) (*patch.Set, error) {
	ps, version, err := s.coord.PatchesContext(ctx, 0)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.fetchedEntries, s.fetchedVersion = ps.Len(), version
	s.mu.Unlock()
	return ps, nil
}

// Commit implements engine.EvidenceSink: route the history's upload
// delta across the partitions and report newly derived patch entries to
// the coordinator. The watermark advances per *delivered piece*, not per
// batch: if one partition is down, the pieces the healthy partitions
// absorbed are marked uploaded immediately, and a later retry re-sends
// only the failed partition's piece — never re-counting evidence a
// partition already holds.
func (s *Sink) Commit(ctx context.Context, ev *engine.Evidence) error {
	var errs []error
	if ev.History != nil && ev.History.Runs > 0 {
		delta := ev.History.UploadDelta()
		if !cumulative.DeltaEmpty(delta) {
			_, delivered, err := s.router.PushSplit(ctx, delta)
			if err != nil {
				errs = append(errs, err)
			}
			for _, piece := range delivered {
				ev.History.MarkUploaded(piece)
			}
		}
	}
	if ev.Derived != nil && ev.Derived.Len() > 0 {
		if err := s.coord.PushReportContext(ctx, report.FromPatches(ev.Derived, nil)); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Fetched reports what the pre-run download merged.
func (s *Sink) Fetched() (entries int, version uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetchedEntries, s.fetchedVersion
}
