package cluster

import (
	"bytes"
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/fleet"
	"exterminator/internal/patch"
	"exterminator/internal/testutil"
	"exterminator/internal/testutil/chaos"
)

// TestCoordinatorKillFailoverE2E is the headline fault-injection test:
// an HA pair (primary + warm standby over the same partitions) is fed
// the identical evidence stream as a control cluster that never fails.
// Mid-stream the primary is killed (its proxy partitioned, its listener
// closed); the standby detects the dead lease and promotes itself.
//
// Pinned invariants:
//   - a patch poller with the standby as fallback never observes the
//     patch set regress — across the kill, the rotation, and the
//     epoch-driven resync;
//   - an upload whose ack was lost in the failover window is retried
//     and absorbed exactly once (run totals match the control's);
//   - after failover, /v1/patches and /v1/triage answers are
//     byte-identical to the never-failed control cluster's.
func TestCoordinatorKillFailoverE2E(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()

	// Control cluster: two partitions + one coordinator, never killed.
	_, ctrlURL1 := haPartition(t, cfg)
	_, ctrlURL2 := haPartition(t, cfg)
	ctrl, err := NewCoordinator(CoordinatorOptions{Partitions: []string{ctrlURL1, ctrlURL2}, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	ctrlTS := httptest.NewServer(ctrl.Handler())
	defer ctrlTS.Close()

	// HA cluster: two partitions, a primary behind a drop-capable proxy,
	// and a warm standby probing the primary's lease through it.
	_, haURL1 := haPartition(t, cfg)
	_, haURL2 := haPartition(t, cfg)
	primary, err := NewCoordinator(CoordinatorOptions{
		Partitions: []string{haURL1, haURL2}, Config: cfg, LeaseHolder: "coord-a",
	})
	if err != nil {
		t.Fatal(err)
	}
	primaryTS := httptest.NewServer(primary.Handler())
	proxy, err := chaos.NewProxy(primaryTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	standby, err := NewCoordinator(CoordinatorOptions{
		Partitions: []string{haURL1, haURL2}, Config: cfg,
		Standby: true, Primary: proxy.URL(), TakeoverAfter: 3, LeaseHolder: "coord-b",
	})
	if err != nil {
		t.Fatal(err)
	}
	standbyTS := httptest.NewServer(standby.Handler())
	defer standbyTS.Close()

	// Both clusters receive the identical batch stream through their own
	// routers.
	ctrlRouter, err := NewRouter("e2e", ctrlURL1, ctrlURL2)
	if err != nil {
		t.Fatal(err)
	}
	haRouter, err := NewRouter("e2e", haURL1, haURL2)
	if err != nil {
		t.Fatal(err)
	}
	pushBoth := func(s *cumulative.Snapshot) {
		t.Helper()
		if _, err := ctrlRouter.PushSnapshot(ctx, s); err != nil {
			t.Fatalf("control push: %v", err)
		}
		if _, err := haRouter.PushSnapshot(ctx, s); err != nil {
			t.Fatalf("ha push: %v", err)
		}
	}

	// Phase 1: evidence flows, one correction pass per tier, the standby
	// warms its mirrors without correcting (its triage pass counter must
	// stay aligned with the control's).
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 20; i++ {
		pushBoth(testBatch(rng))
	}
	if _, err := ctrl.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := standby.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		standby.probePrimary(ctx) // healthy primary: tracks its epoch
	}
	if standby.Primary() {
		t.Fatal("standby promoted while the primary was healthy")
	}

	// The installation polls patches through the proxy with the standby
	// configured as fallback, and must never see its local set regress.
	poller := fleet.NewClient(proxy.URL(), "installation")
	poller.SetFallbacks(standbyTS.URL)
	local := patch.New()
	var cursor uint64
	poll := func(stage string) {
		t.Helper()
		delta, v, err := poller.Patches(cursor)
		if err != nil {
			t.Fatalf("%s: poll: %v", stage, err)
		}
		prev := local.Clone()
		local.Merge(delta)
		if d := prev.Diff(local); d.Len() != 0 {
			t.Fatalf("%s: patch set regressed — lost entries %s", stage, d)
		}
		cursor = v
	}
	poll("pre-failover")
	if local.Len() == 0 {
		t.Fatal("pre-failover poll returned an empty patch set")
	}

	// Phase 2 begins: half lands, then the primary is killed cold. The
	// second half indicts a new site, so the post-failover tier must
	// derive patches the dead primary never served.
	for i := 0; i < 10; i++ {
		pushBoth(testBatch(rng))
	}
	proxy.Drop()
	primaryTS.Close()

	// An upload whose ack was lost in the kill window is retried
	// verbatim. The dedup window lives on the partitions — which do not
	// fail over — so it drains exactly once on both clusters.
	inflight := testBatch(rng)
	for i, target := range []string{haURL1, ctrlURL1} {
		pc := fleet.NewClient(target, "inflight-client")
		b := &fleet.ObservationBatch{BatchID: "e2e-inflight-0001", Snapshot: inflight}
		first, err := pc.PushBatchContext(ctx, b)
		if err != nil {
			t.Fatalf("in-flight push %d: %v", i, err)
		}
		if first.Duplicate {
			t.Fatalf("first delivery %d acked as duplicate", i)
		}
		retry, err := pc.PushBatchContext(ctx, b)
		if err != nil {
			t.Fatalf("in-flight retry %d: %v", i, err)
		}
		if !retry.Duplicate {
			t.Fatalf("retry %d was re-absorbed, want duplicate ack", i)
		}
	}

	// The standby's lease probes fail against the dead proxy and it
	// promotes itself — epoch strictly above anything the primary issued.
	for i := 0; i < 3; i++ {
		standby.probePrimary(ctx)
	}
	if !standby.Primary() {
		t.Fatal("standby did not promote after the primary died")
	}
	if standby.Epoch() <= primary.Epoch() {
		t.Fatalf("promoted epoch %d does not fence the dead primary's %d",
			standby.Epoch(), primary.Epoch())
	}

	// The poller's next poll rides the failover: transport error against
	// the proxy, rotation to the standby, epoch-driven resync from 0.
	poll("during failover")

	// Rest of phase 2 (with the newly indicted site) plus one final
	// correction pass per surviving tier.
	for i := 0; i < 8; i++ {
		s := testBatch(rng)
		s.Sites = append(s.Sites, lateGuiltySite)
		s.Overflow = append(s.Overflow, cumulative.SiteObservations{
			Site: lateGuiltySite,
			Obs:  []cumulative.Observation{{X: 0.1, Y: true}, {X: 0.15, Y: true}},
		})
		s.PadHints = append(s.PadHints, cumulative.PadHint{Site: lateGuiltySite, Pad: lateGuiltyPad})
		pushBoth(s)
	}
	if _, err := ctrl.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := standby.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	poll("post-failover")

	// The client's accumulated set equals the control's full set: no
	// entry lost across the kill, the new site's patch picked up from
	// the promoted tier.
	ctrlFull, _ := ctrl.PatchLog().Full()
	if !local.Equal(ctrlFull) {
		t.Fatalf("poller's accumulated set diverged from control:\npoller:  %s\ncontrol: %s", local, ctrlFull)
	}
	if local.Pad(lateGuiltySite) != lateGuiltyPad {
		t.Fatalf("post-failover patch for the late site missing: %s", local)
	}

	// Byte-identity with the never-failed control: the canonicalized
	// patch log (version and epoch normalized to 0 — they legitimately
	// differ across incarnations) and the raw triage ranking.
	ctrlBytes := canonicalPatchBytes(t, ctrl.PatchLog())
	haBytes := canonicalPatchBytes(t, standby.PatchLog())
	if !bytes.Equal(ctrlBytes, haBytes) {
		t.Fatalf("post-failover patch log diverged from control:\ncontrol: %s\nha:      %s", ctrlBytes, haBytes)
	}
	ctrlTriage := getBytes(t, ctrlTS.URL+"/v1/triage?limit=200")
	haTriage := getBytes(t, standbyTS.URL+"/v1/triage?limit=200")
	if !bytes.Equal(ctrlTriage, haTriage) {
		t.Fatalf("post-failover triage diverged from control:\ncontrol: %s\nha:      %s", ctrlTriage, haTriage)
	}

	// Exactly-once, cluster-wide: run totals match — nothing dropped in
	// the kill window, nothing double-counted by the retry.
	ctrlSt, haSt := ctrl.Status(), standby.Status()
	if ctrlSt.Runs != haSt.Runs || ctrlSt.Sites != haSt.Sites {
		t.Fatalf("totals diverged: control runs=%d sites=%d, ha runs=%d sites=%d",
			ctrlSt.Runs, ctrlSt.Sites, haSt.Runs, haSt.Sites)
	}
	if !haSt.Primary || haSt.LeaseHolder != "coord-b" {
		t.Fatalf("promoted standby status = %+v", haSt)
	}

	// Read fan-out rides the same failover: a replica pointed at the
	// pair serves the promoted tier's state, and an unmodified client
	// revalidating against it gets 304s (the fan-out hit path).
	rep, err := NewReplica(ReplicaOptions{Upstreams: []string{proxy.URL(), standbyTS.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.PollOnce(ctx); err != nil {
		t.Fatalf("replica poll across failover: %v", err)
	}
	repTS := httptest.NewServer(rep.Handler())
	defer repTS.Close()
	repPoller := fleet.NewClient(repTS.URL, "replica-poller")
	full, v, err := repPoller.Patches(0)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Equal(ctrlFull) {
		t.Fatalf("replica-served set diverged from control:\nreplica: %s\ncontrol: %s", full, ctrlFull)
	}
	if delta, _, err := repPoller.Patches(v); err != nil || delta.Len() != 0 {
		t.Fatalf("replica revalidation poll = (%v, %v), want empty delta", delta, err)
	}
	st := rep.Status()
	if st.PatchNotModified != 1 || st.PatchRequests != 2 {
		t.Fatalf("replica 304 hit ratio %d/%d, want 1/2", st.PatchNotModified, st.PatchRequests)
	}
}
