package cluster

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/engine"
	"exterminator/internal/fleet"
	"exterminator/internal/site"
	"exterminator/internal/testutil"
)

// TestDuplicateUploadsConvergeWithCleanSender is the exactly-once
// acceptance test: a client that re-sends every batch twice (simulating
// lost acks on every upload) against a 3-partition cluster must converge
// to the byte-identical canonicalized patch set as a single
// clean-sending client against one fleetd — and to identical fleet-wide
// run totals.
func TestDuplicateUploadsConvergeWithCleanSender(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()

	single := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()
	clean := fleet.NewClient(singleTS.URL, "clean")

	var partURLs []string
	var partServers []*fleet.Server
	for i := 0; i < 3; i++ {
		srv := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		partServers = append(partServers, srv)
		partURLs = append(partURLs, ts.URL)
	}
	router, err := NewRouter("doubler", partURLs...)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorOptions{Partitions: partURLs, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}

	// The doubling client maintains a real history with an upload
	// watermark, cuts a delta per round, splits it with per-piece batch
	// IDs — and pushes every piece TWICE before acknowledging it.
	hist := cumulative.NewHistory(cfg)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		batch := testBatch(rng)
		if _, err := clean.PushSnapshot(batch); err != nil {
			t.Fatalf("clean push: %v", err)
		}
		hist.Absorb(batch)
		delta := hist.UploadDelta()
		wmRuns, wmObs := hist.UploadedCounts()
		pieces, err := router.SplitBatch(wmRuns, wmObs, delta)
		if err != nil {
			t.Fatal(err)
		}
		for _, piece := range pieces {
			for attempt := 0; attempt < 2; attempt++ {
				reply, err := router.PushPiece(ctx, piece)
				if err != nil {
					t.Fatalf("routed push: %v", err)
				}
				if attempt == 1 && !reply.Duplicate {
					t.Fatal("second delivery of a piece was not deduped")
				}
			}
			hist.MarkUploaded(piece.Batch.Snapshot)
		}
		if i%10 == 5 {
			single.Correct()
			if _, err := coord.Sync(ctx); err != nil {
				t.Fatalf("mid-stream sync: %v", err)
			}
		}
	}
	single.Correct()
	if _, err := coord.Sync(ctx); err != nil {
		t.Fatalf("final sync: %v", err)
	}

	if got, want := coord.Status().Runs, single.Store().Runs(); got != want {
		t.Fatalf("double-sending inflated the cluster: runs %d, want %d", got, want)
	}
	singleBytes := canonicalPatchBytes(t, single.PatchLog())
	clusterBytes := canonicalPatchBytes(t, coord.PatchLog())
	if !bytes.Equal(singleBytes, clusterBytes) {
		t.Fatalf("double-sending diverged the patch set:\nsingle:  %s\ncluster: %s", singleBytes, clusterBytes)
	}

	// Every partition saw duplicates and deduped them.
	for i := range partServers {
		st, err := fleet.NewClient(partURLs[i], "probe").Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.Deduped == 0 {
			t.Fatalf("partition %d deduped nothing — duplicates were absorbed", i)
		}
	}
}

// TestRunCountersSingleCountAcrossShiftedOwner: run counters ride the
// piece of whichever node owns the delta's lowest evidence key. If the
// counter-carrying piece is parked pending on a down partition and a
// later delta's lowest key is owned by a *healthy* node, naively
// re-cutting the counters into the new delta would absorb the
// overlapping range twice. The sink must strip counters from re-cut
// deltas while a pending piece still carries them.
func TestRunCountersSingleCountAcrossShiftedOwner(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()

	up := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
	upTS := httptest.NewServer(up.Handler())
	defer upTS.Close()

	down := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
	downSW := &swappable{}
	outage := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "outage", http.StatusBadGateway)
	})
	downSW.set(outage)
	downTS := httptest.NewServer(downSW)
	defer downTS.Close()

	sink, err := NewSink(upTS.URL, "ctr", upTS.URL, downTS.URL)
	if err != nil {
		t.Fatal(err)
	}

	// Probe the ring for a key owned by the down partition and a LOWER
	// key owned by the healthy one, so the counter owner shifts between
	// the two delta cuts.
	ring := sink.Router().Ring()
	var siteDown, siteUp site.ID
	haveDown, haveUp := false, false
	for id := site.ID(10000); id > 0; id-- {
		if ring.Owner(id) == downTS.URL {
			siteDown, haveDown = id, true
			break
		}
	}
	for id := site.ID(1); haveDown && id < siteDown; id++ {
		if ring.Owner(id) == upTS.URL {
			siteUp, haveUp = id, true
			break
		}
	}
	if !haveDown || !haveUp {
		t.Skip("ring assigned no suitable key pair (vanishingly unlikely)")
	}

	hist := cumulative.NewHistory(cfg)
	ev := &engine.Evidence{History: hist}

	// Run 1: evidence only at the down-owned key, so its piece carries
	// the run counters — and is parked pending.
	hist.Absorb(&cumulative.Snapshot{C: cfg.C, P: cfg.P, Runs: 1, Sites: []site.ID{siteDown}})
	if err := sink.Commit(ctx, ev); err == nil {
		t.Fatal("commit with the counter owner down must fail")
	}

	// Run 2: new evidence at a lower, healthy-owned key — the re-cut
	// delta's counter owner is now the healthy node.
	hist.Absorb(&cumulative.Snapshot{C: cfg.C, P: cfg.P, Runs: 1, Sites: []site.ID{siteUp}})
	if err := sink.Commit(ctx, ev); err == nil {
		t.Fatal("commit with a pending piece outstanding must still report it")
	}
	// The healthy partition got the new key's evidence but NOT the run
	// counters: those overlap the pending piece and must stay held until
	// it clears — delivering them here is the double count.
	if got := up.Store().Runs(); got != 0 {
		t.Fatalf("healthy partition absorbed %d run(s) while the counter piece was pending", got)
	}
	if got := up.Store().Sites(); got == 0 {
		t.Fatal("healthy partition missing the new key's evidence")
	}

	// Recovery: the pending counter piece finally lands, then the held
	// counter movement streams.
	downSW.set(down.Handler())
	if err := sink.Commit(ctx, ev); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	if err := sink.Commit(ctx, ev); err != nil {
		t.Fatalf("final drain commit: %v", err)
	}

	total := up.Store().Runs() + down.Store().Runs()
	if total != int64(hist.Runs) {
		t.Fatalf("cluster-wide runs = %d, history recorded %d (counters double-counted or lost)", total, hist.Runs)
	}
	// No partition may ever have seen a negative run count (the
	// signature of an over-advanced watermark "correcting" itself).
	if up.Store().Runs() < 0 || down.Store().Runs() < 0 {
		t.Fatalf("negative run counters on a partition: up=%d down=%d", up.Store().Runs(), down.Store().Runs())
	}
	if d := hist.UploadDelta(); !cumulative.DeltaEmpty(d) {
		t.Fatalf("watermark incomplete after full delivery: %+v", d)
	}
}

// TestCoordinatorSnapshotRestart: a coordinator restored from its
// snapshot carries its merged history and journal cursors across the
// restart — totals and patches identical before any poll, no
// double-count and no forced resync after polling resumes, and new
// evidence keeps flowing incrementally.
func TestCoordinatorSnapshotRestart(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()

	var partURLs []string
	for i := 0; i < 2; i++ {
		srv := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		partURLs = append(partURLs, ts.URL)
	}
	router, err := NewRouter("c1", partURLs...)
	if err != nil {
		t.Fatal(err)
	}

	coord, err := NewCoordinator(CoordinatorOptions{Partitions: partURLs, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		if _, err := router.PushSnapshot(ctx, testBatch(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	wantRuns := coord.Status().Runs
	wantPatches := canonicalPatchBytes(t, coord.PatchLog())
	if wantRuns == 0 || len(wantPatches) == 0 {
		t.Fatalf("bad pre-restart state: %+v", coord.Status())
	}

	snap := filepath.Join(t.TempDir(), "coord.snap")
	if err := coord.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh coordinator over the same partitions restores
	// the snapshot. Merged history and patch log are rebuilt from the
	// persisted mirrors before any partition is polled.
	coord2, err := NewCoordinator(CoordinatorOptions{Partitions: partURLs, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord2.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if got := coord2.Status().Runs; got != wantRuns {
		t.Fatalf("restored runs = %d, want %d", got, wantRuns)
	}
	if got := canonicalPatchBytes(t, coord2.PatchLog()); !bytes.Equal(got, wantPatches) {
		t.Fatal("restored patch set differs")
	}

	// Polling resumes from the persisted cursors: the live partitions
	// answer with empty deltas — no resync, no double count.
	for round := 0; round < 3; round++ {
		if _, err := coord2.Sync(ctx); err != nil {
			t.Fatalf("post-restore sync %d: %v", round, err)
		}
	}
	st := coord2.Status()
	if st.Runs != wantRuns {
		t.Fatalf("post-restore poll double-counted: runs %d, want %d", st.Runs, wantRuns)
	}
	if st.Resyncs != 0 {
		t.Fatalf("restored cursors forced %d full resync(s); deltas should have sufficed", st.Resyncs)
	}
	if got := canonicalPatchBytes(t, coord2.PatchLog()); !bytes.Equal(got, wantPatches) {
		t.Fatal("post-restore poll changed the patch set")
	}

	// New evidence still flows incrementally through the restored cursors.
	for i := 0; i < 5; i++ {
		if _, err := router.PushSnapshot(ctx, testBatch(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := coord2.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := coord2.Status().Runs; got != wantRuns+5*3 {
		t.Fatalf("post-restore evidence lost or duplicated: runs %d, want %d", got, wantRuns+5*3)
	}
}
