package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"exterminator/internal/cumulative"
	"exterminator/internal/fleet"
	"exterminator/internal/report"
)

// CoordinatorOptions configures a cluster coordinator.
type CoordinatorOptions struct {
	// Partitions are the base URLs of the partition fleetd instances to
	// mirror.
	Partitions []string
	// Config parameterizes the Bayesian classifier (zero = paper
	// defaults). It must match the partitions'.
	Config cumulative.Config
	// Token authenticates report uploads to this coordinator (optional).
	Token string
	// MaxReports bounds the retained bug-report ring (0 = 128).
	MaxReports int
}

// Coordinator is the cluster's merge tier. It mirrors every partition's
// evidence journal through GET /v1/deltas, maintains one merged history,
// reruns the hypothesis test incrementally (only sites whose evidence
// moved since the last pass are rescored), and serves the fleet-wide
// patch log over the standard fleet wire protocol — fleet.Client and
// fleet.Sink poll a coordinator exactly as they would a single fleetd.
type Coordinator struct {
	cfg   cumulative.Config
	parts []*partition

	pollMu  sync.Mutex // serializes PollOnce (Run loop vs manual Sync)
	mu      sync.Mutex
	merged  *cumulative.History
	rebuild bool // a partition resynced; merged must be rebuilt from mirrors

	log         *fleet.PatchLog
	epoch       uint64
	start       time.Time
	polls       atomic.Int64
	resyncs     atomic.Int64
	corrections atomic.Int64

	token      string
	reportMu   sync.Mutex
	reports    []*report.Report
	maxReports int
	reportSeen atomic.Int64

	mux *http.ServeMux
}

// partition is the coordinator's view of one fleetd instance: a local
// mirror of its evidence plus the journal cursor and epoch the mirror is
// valid for. Mirror state is guarded by the coordinator's mu.
type partition struct {
	base   string
	client *fleet.Client

	mirror  *cumulative.History
	seq     uint64
	epoch   uint64
	errs    atomic.Int64
	lastErr atomic.Value // string
}

// NewCoordinator returns a coordinator mirroring the given partitions.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if len(opts.Partitions) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one partition")
	}
	cfg := opts.Config
	if cfg.C == 0 && cfg.P == 0 {
		cfg = cumulative.DefaultConfig()
	}
	c := &Coordinator{
		cfg:        cfg,
		merged:     cumulative.NewHistory(cfg),
		log:        fleet.NewPatchLog(),
		epoch:      uint64(time.Now().UnixNano()),
		start:      time.Now(),
		token:      opts.Token,
		maxReports: opts.MaxReports,
	}
	if c.maxReports <= 0 {
		c.maxReports = 128
	}
	for _, base := range opts.Partitions {
		c.parts = append(c.parts, &partition{
			base:   base,
			client: fleet.NewClient(base, "coordinator"),
			mirror: cumulative.NewHistory(cfg),
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/patches", c.handlePatches)
	mux.HandleFunc("/v1/reports", c.handleReports)
	mux.HandleFunc("/v1/status", c.handleStatus)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	c.mux = mux
	return c, nil
}

// Handler returns the coordinator's HTTP handler (the client-facing
// subset of the fleet protocol: patches, reports, status, health).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// PatchLog exposes the fleet-wide patch log.
func (c *Coordinator) PatchLog() *fleet.PatchLog { return c.log }

// PollOnce polls every partition's journal concurrently and applies the
// deltas. It reports whether any new evidence arrived (a correction pass
// is worthwhile) and joins per-partition errors; one unreachable
// partition delays only its own evidence, never the others'.
func (c *Coordinator) PollOnce(ctx context.Context) (changed bool, err error) {
	c.pollMu.Lock()
	defer c.pollMu.Unlock()
	c.polls.Add(1)
	type result struct {
		p     *partition
		delta *fleet.SnapshotDelta
		err   error
	}
	results := make([]result, len(c.parts))
	var wg sync.WaitGroup
	for i, p := range c.parts {
		wg.Add(1)
		go func(i int, p *partition, since, epoch uint64) {
			defer wg.Done()
			d, derr := p.client.Deltas(ctx, since)
			if derr == nil && !d.Full && epoch != 0 && d.Epoch != epoch {
				// The partition restarted under us and has already
				// re-accumulated past our cursor, so the reply is a delta
				// of the *new* incarnation's journal — useless against our
				// mirror of the old one. Refetch with a cursor no journal
				// can satisfy, forcing a Full store snapshot (a plain
				// since=0 delta could miss snapshot-restored evidence that
				// never went through the journal).
				d, derr = p.client.Deltas(ctx, ^uint64(0))
			}
			results[i] = result{p: p, delta: d, err: derr}
		}(i, p, p.seq, p.epoch)
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	for _, res := range results {
		if res.err != nil {
			res.p.errs.Add(1)
			res.p.lastErr.Store(res.err.Error())
			errs = append(errs, fmt.Errorf("cluster: poll %s: %w", res.p.base, res.err))
			continue
		}
		d := res.delta
		switch {
		case d.Full || (res.p.epoch != 0 && d.Epoch != res.p.epoch):
			// The partition restarted or we fell off its journal window:
			// replace the mirror wholesale. Replacing — never absorbing a
			// full snapshot into an existing mirror — is what makes
			// re-polls and restarts idempotent: evidence is a multiset,
			// so only replacement avoids double counting. (A cross-epoch
			// non-Full reply is the since=0 refetch above: the complete
			// evidence of the new incarnation.)
			mirror := cumulative.NewHistory(c.cfg)
			mirror.Absorb(d.Snapshot)
			res.p.mirror = mirror
			c.rebuild = true
			c.resyncs.Add(1)
			changed = true
		case d.Snapshot != nil:
			res.p.mirror.Absorb(d.Snapshot)
			if !c.rebuild {
				// Fast path: fold the delta straight into the merged
				// history; only these keys become dirty for the next
				// incremental identify pass.
				c.merged.Absorb(d.Snapshot)
			}
			changed = true
		}
		res.p.seq, res.p.epoch = d.Seq, d.Epoch
	}
	return changed, errors.Join(errs...)
}

// Correct runs one correction pass over the merged evidence and folds
// newly derived patches into the fleet-wide log. After a partition
// resync the merged history is rebuilt from the mirrors first (the rare
// slow path); otherwise the pass rescores only dirty sites.
func (c *Coordinator) Correct() (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.corrections.Add(1)
	if c.rebuild {
		merged := cumulative.NewHistory(c.cfg)
		for _, p := range c.parts {
			merged.Absorb(p.mirror.Snapshot())
		}
		c.merged = merged
		c.rebuild = false
	}
	findings := c.merged.Identify()
	if findings.Empty() {
		return c.log.Version(), false
	}
	return c.log.Fold(findings.Patches())
}

// Run polls and corrects every interval until ctx is done.
func (c *Coordinator) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if changed, _ := c.PollOnce(ctx); changed {
				c.Correct()
			}
		}
	}
}

// Sync is PollOnce + Correct, for callers that want to drive the loop
// themselves (tests, demos).
func (c *Coordinator) Sync(ctx context.Context) (uint64, error) {
	changed, err := c.PollOnce(ctx)
	if changed {
		v, _ := c.Correct()
		return v, err
	}
	return c.log.Version(), err
}

func (c *Coordinator) handlePatches(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "cluster: bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = v
	}
	ps, version := c.log.Since(since)
	wire := fleet.ToWire(ps, version)
	wire.Epoch = c.epoch
	fleet.WriteJSON(w, wire)
}

func (c *Coordinator) handleReports(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		if c.token != "" && !fleet.BearerAuthorized(r, c.token) {
			w.Header().Set("WWW-Authenticate", `Bearer realm="fleet"`)
			http.Error(w, "cluster: missing or invalid ingest token", http.StatusUnauthorized)
			return
		}
		var rep report.Report
		// fleet.DecodeJSONBody, not a plain json.Decoder: fleet.Client
		// gzips request bodies by default, and the coordinator must accept
		// exactly what any fleetd accepts.
		if err := fleet.DecodeJSONBody(w, r, 16<<20, &rep); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.reportSeen.Add(1)
		c.reportMu.Lock()
		c.reports = append(c.reports, &rep)
		if len(c.reports) > c.maxReports {
			c.reports = append([]*report.Report(nil), c.reports[len(c.reports)-c.maxReports:]...)
		}
		c.reportMu.Unlock()
		fleet.WriteJSON(w, map[string]any{"ok": true})
	case http.MethodGet:
		c.reportMu.Lock()
		out := append([]*report.Report{}, c.reports...)
		c.reportMu.Unlock()
		fleet.WriteJSON(w, out)
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// ClusterStatus is the coordinator's GET /v1/status body: the standard
// fleet status (so generic tooling keeps working) plus per-partition
// mirror state.
type ClusterStatus struct {
	fleet.StatusReply
	Polls      int64             `json:"polls"`
	Resyncs    int64             `json:"resyncs"`
	Partitions []PartitionStatus `json:"partitions"`
}

// PartitionStatus is one partition's mirror state in ClusterStatus.
type PartitionStatus struct {
	Base      string `json:"base"`
	Seq       uint64 `json:"seq"`
	Epoch     uint64 `json:"epoch"`
	Sites     int    `json:"sites"`
	Runs      int    `json:"runs"`
	Errors    int64  `json:"errors"`
	LastError string `json:"lastError,omitempty"`
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	fleet.WriteJSON(w, c.Status())
}

// Status assembles the coordinator's status reply.
func (c *Coordinator) Status() *ClusterStatus {
	c.mu.Lock()
	st := &ClusterStatus{
		StatusReply: fleet.StatusReply{
			Version:     c.log.Version(),
			Sites:       c.merged.Sites(),
			Runs:        int64(c.merged.Runs),
			FailedRuns:  int64(c.merged.FailedRuns),
			CorruptRuns: int64(c.merged.CorruptRuns),
			Reports:     c.reportSeen.Load(),
			PatchLen:    c.log.Len(),
			UptimeSec:   int64(time.Since(c.start).Seconds()),
			Corrections: c.corrections.Load(),
			DirtyKeys:   c.merged.DirtyKeys(),
		},
		Polls:   c.polls.Load(),
		Resyncs: c.resyncs.Load(),
	}
	for _, p := range c.parts {
		ps := PartitionStatus{
			Base:   p.base,
			Seq:    p.seq,
			Epoch:  p.epoch,
			Sites:  p.mirror.Sites(),
			Runs:   p.mirror.Runs,
			Errors: p.errs.Load(),
		}
		if v, ok := p.lastErr.Load().(string); ok {
			ps.LastError = v
		}
		st.Partitions = append(st.Partitions, ps)
	}
	c.mu.Unlock()
	return st
}
