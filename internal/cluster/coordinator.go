package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"exterminator/internal/cumulative"
	"exterminator/internal/fleet"
	"exterminator/internal/report"
	"exterminator/internal/telemetry"
	"exterminator/internal/triage"
	"exterminator/internal/version"
)

// CoordinatorOptions configures a cluster coordinator.
type CoordinatorOptions struct {
	// Partitions are the base URLs of the partition fleetd instances to
	// mirror.
	Partitions []string
	// Config parameterizes the Bayesian classifier (zero = paper
	// defaults). It must match the partitions'.
	Config cumulative.Config
	// Token authenticates report uploads to this coordinator (optional).
	// It is also forwarded to the partition clients, so a token-hardened
	// cluster accepts the coordinator's rebalance drains and backfills.
	Token string
	// MaxReports bounds the retained bug-report ring (0 = 128).
	MaxReports int
	// Triage configures the coordinator's triage engine (GET /v1/triage
	// rankings over the merged evidence) and its webhook alerter. The
	// zero value serves rankings with alerting off. Alert exactly-once
	// state rides in the coordinator snapshot (SaveSnapshot), so a
	// restart neither re-fires nor drops an armed alert.
	Triage triage.Config
	// Standby starts the coordinator as a warm standby: it mirrors the
	// same partition journals (cursors advancing, mirrors warm) but
	// answers the client-facing surface — patches, triage, reports,
	// rebalance — with 503 until Promote is called or its lease probes
	// against Primary fail TakeoverAfter times in a row. See
	// docs/OPERATIONS.md "Failover".
	Standby bool
	// Primary is the primary coordinator's base URL a standby probes
	// (GET /v1/lease) from its Run loop. Empty disables automatic
	// takeover; promotion is then manual (Promote, or POST /v1/lease).
	Primary string
	// TakeoverAfter is the consecutive failed lease probes after which
	// a standby promotes itself (0 = 3).
	TakeoverAfter int
	// LeaseHolder names this coordinator in GET /v1/lease replies
	// (diagnostic only; empty = "coordinator").
	LeaseHolder string
	// RebalanceJournal is the path of the crash-safe rebalance journal
	// (JSON lines, fsynced per record). With it set, a coordinator that
	// dies between drain and backfill re-drives the interrupted rebalance
	// on restart (ResumeRebalance) without losing or double-counting a
	// single observation. Empty disables crash safety for rebalances —
	// fine for tests, not for production resizes.
	RebalanceJournal string
	// WireV2 opts the coordinator's partition clients into the binary
	// v2 wire protocol: delta polls advertise v2 in Accept (partitions
	// that speak it answer in frames; older ones keep answering JSON).
	// The coordinator's own served surface negotiates per request either
	// way, so this only controls what it asks its partitions for.
	WireV2 bool
	// Metrics is the registry the coordinator's instruments register into
	// (poll/resync counters, per-partition lag gauges, rebalance phase
	// histograms). Nil gets a private registry; either way the
	// coordinator's mux serves it on GET /metrics.
	Metrics *telemetry.Registry
	// Logger receives the coordinator's structured log (delta
	// applications with their upload correlation IDs, resyncs, rebalance
	// phases). Nil discards.
	Logger *slog.Logger
}

// Coordinator is the cluster's merge tier. It mirrors every partition's
// evidence journal through GET /v1/deltas, maintains one merged history,
// reruns the hypothesis test incrementally (only sites whose evidence
// moved since the last pass are rescored), and serves the fleet-wide
// patch log over the standard fleet wire protocol — fleet.Client and
// fleet.Sink poll a coordinator exactly as they would a single fleetd.
type Coordinator struct {
	cfg   cumulative.Config
	parts []*partition
	ring  *Ring // current membership; bumped by Rebalance

	pollMu  sync.Mutex // serializes PollOnce (Run loop vs manual Sync)
	mu      sync.Mutex
	merged  *cumulative.History
	rebuild bool // a partition resynced; merged must be rebuilt from mirrors

	// Rebalance state: rebalMu serializes Rebalance/ResumeRebalance,
	// rebalPath is the two-phase journal, rebalState is reported in
	// ClusterStatus (guarded by mu). testRebalanceCrash, when set, aborts
	// a rebalance at a named stage — the kill-mid-rebalance e2e hook.
	rebalMu            sync.Mutex
	rebalPath          string
	rebalState         RebalanceState
	testRebalanceCrash func(stage string) error

	log         *fleet.PatchLog
	triage      *triage.Engine
	start       time.Time
	polls       atomic.Int64
	resyncs     atomic.Int64
	corrections atomic.Int64

	// Failover state: epoch stamps every patch response (rises across
	// failovers — clients reject anything lower than they have seen);
	// primary gates the client-facing surface; a standby probes the
	// primary's lease through primaryClient and promotes itself after
	// takeoverAfter consecutive probe failures (probeFails is touched
	// only by the Run loop). seenPrimaryEpoch floors the epoch a
	// promotion mints.
	epoch            atomic.Uint64
	primary          atomic.Bool
	holder           string
	primaryClient    *fleet.Client
	takeoverAfter    int
	probeFails       int
	seenPrimaryEpoch atomic.Uint64

	token      string
	wireV2     bool
	reportMu   sync.Mutex
	reports    []*report.Report
	maxReports int
	reportSeen atomic.Int64

	reg     *telemetry.Registry
	metrics coordMetrics
	logger  *slog.Logger

	mux *http.ServeMux
}

// coordMetrics is the merge tier's instrument set. Per-partition series
// (seq, poll age, poll errors) are registered by newPartition as
// membership changes — GaugeFunc replacement keeps a re-added
// partition's series bound to its live state.
type coordMetrics struct {
	polls       *telemetry.Counter
	resyncs     *telemetry.Counter
	deltas      *telemetry.Counter
	deltaObs    *telemetry.Counter
	rebuilds    *telemetry.Counter
	corrections *telemetry.Counter
	patchPolls  *telemetry.Counter
	movedKeys   *telemetry.Counter
	correctSec  *telemetry.Histogram
	// Merged-history state is mirrored into plain gauges at the end of
	// every mutation (pollLocked, Correct, membership changes) instead of
	// being read through scrape-time funcs: a gauge func would take c.mu,
	// making a /metrics scrape block for the full duration of a
	// correction pass — and the exposition path must never contend with
	// the poll/correct path.
	mergedSites *telemetry.Gauge
	mergedRuns  *telemetry.Gauge
	dirtyKeys   *telemetry.Gauge
	partitions  *telemetry.Gauge
	// Failover instruments: primaryG mirrors the lease role (1 =
	// primary) so dashboards can alert on "no primary" or "two
	// primaries" across a pair's scrapes.
	patchNotMod    *telemetry.Counter
	leaseProbes    *telemetry.Counter
	leaseProbeErrs *telemetry.Counter
	failovers      *telemetry.Counter
	primaryG       *telemetry.Gauge
}

func (m *coordMetrics) register(reg *telemetry.Registry, c *Coordinator) {
	m.polls = reg.Counter("cluster_polls_total",
		"Delta-poll rounds across all partitions.")
	m.resyncs = reg.Counter("cluster_resyncs_total",
		"Partition mirrors replaced wholesale (restart, journal-window miss, or epoch change).")
	m.deltas = reg.Counter("cluster_deltas_applied_total",
		"Partition deltas folded into mirrors (incremental or ordered).")
	m.deltaObs = reg.Counter("cluster_delta_observations_total",
		"Individual observations mirrored from partitions via deltas (the coordinator's ingest volume).")
	m.rebuilds = reg.Counter("cluster_merged_rebuilds_total",
		"Merged-history rebuilds from the partition mirrors (the post-resync/rebalance slow path).")
	m.corrections = reg.Counter("cluster_corrections_total",
		"Correction passes over the merged evidence.")
	m.patchPolls = reg.Counter("cluster_patch_polls_total",
		"GET /v1/patches requests served (writer patch-poll fan-in).")
	m.movedKeys = reg.Counter("cluster_rebalance_moved_keys_total",
		"Evidence keys drained and backfilled by completed rebalances.")
	m.patchNotMod = reg.Counter("cluster_patch_not_modified_total",
		"GET /v1/patches polls answered 304 off the If-None-Match validator.")
	m.leaseProbes = reg.Counter("cluster_lease_probes_total",
		"Standby lease probes against the primary coordinator.")
	m.leaseProbeErrs = reg.Counter("cluster_lease_probe_errors_total",
		"Failed standby lease probes (takeover fires after TakeoverAfter consecutive failures).")
	m.failovers = reg.Counter("cluster_failovers_total",
		"Standby promotions to primary (epoch handoffs).")
	m.primaryG = reg.Gauge("cluster_primary",
		"1 while this coordinator holds the lease (serves the client-facing surface), 0 while standing by.")
	m.correctSec = reg.Histogram("cluster_correct_seconds",
		"Correction pass latency (rebuild, if any, plus incremental identify and fold).",
		telemetry.DefBuckets)
	m.mergedSites = reg.Gauge("cluster_merged_sites",
		"Distinct allocation sites in the merged history.")
	m.mergedRuns = reg.Gauge("cluster_merged_runs",
		"Fleet-wide runs folded into the merged history.")
	m.dirtyKeys = reg.Gauge("cluster_dirty_keys",
		"Merged-history keys awaiting the next incremental identify pass.")
	m.partitions = reg.Gauge("cluster_partitions",
		"Partitions currently in the poll set.")
	reg.GaugeFunc("cluster_patch_version",
		"Fleet-wide patch log version.",
		func() float64 { return float64(c.log.Version()) })
	telemetry.RegisterBuildInfo(reg)
}

// updateMergedGauges mirrors the merged-history state into the
// exposition gauges. The caller holds c.mu; every path that mutates the
// merged history or the poll set calls it before unlocking, so scrapes
// read current values off atomics without ever touching c.mu.
func (c *Coordinator) updateMergedGauges() {
	c.metrics.mergedSites.Set(float64(c.merged.Sites()))
	c.metrics.mergedRuns.Set(float64(c.merged.Runs))
	c.metrics.dirtyKeys.Set(float64(c.merged.DirtyKeys()))
	c.metrics.partitions.Set(float64(len(c.parts)))
}

// partition is the coordinator's view of one fleetd instance: a local
// mirror of its evidence plus the journal cursor and epoch the mirror is
// valid for. Mirror state is guarded by the coordinator's mu.
type partition struct {
	base   string
	client *fleet.Client

	mirror *cumulative.History
	seq    uint64
	epoch  uint64
	errs   atomic.Int64
	// seqGauge shadows seq and lastPoll stamps the last successful delta
	// application (unixnano), so the per-partition gauges read lock-free
	// atomics instead of reaching for the coordinator's mu from an
	// exposition scrape.
	seqGauge atomic.Uint64
	lastPoll atomic.Int64
	errsC    *telemetry.Counter
	lastErr  atomic.Value // string
}

// NewCoordinator returns a coordinator mirroring the given partitions.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if len(opts.Partitions) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one partition")
	}
	cfg := opts.Config
	if cfg.C == 0 && cfg.P == 0 {
		cfg = cumulative.DefaultConfig()
	}
	c := &Coordinator{
		cfg:           cfg,
		ring:          NewRing(0, opts.Partitions...),
		merged:        cumulative.NewHistory(cfg),
		log:           fleet.NewPatchLog(),
		start:         time.Now(),
		token:         opts.Token,
		maxReports:    opts.MaxReports,
		rebalPath:     opts.RebalanceJournal,
		rebalState:    RebalanceState{State: RebalanceIdle},
		holder:        opts.LeaseHolder,
		takeoverAfter: opts.TakeoverAfter,
		wireV2:        opts.WireV2,
	}
	c.epoch.Store(uint64(time.Now().UnixNano()))
	c.primary.Store(!opts.Standby)
	if c.holder == "" {
		c.holder = "coordinator"
	}
	if c.takeoverAfter <= 0 {
		c.takeoverAfter = leaseProbeDefault
	}
	if c.maxReports <= 0 {
		c.maxReports = 128
	}
	c.reg = opts.Metrics
	if c.reg == nil {
		c.reg = telemetry.NewRegistry()
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	tcfg := opts.Triage
	tcfg.Source = "coordinator"
	c.triage = triage.New(tcfg)
	c.triage.SetLogger(logger)
	c.triage.SetMetrics(c.reg)
	c.logger = logger.With("component", "coordinator")
	c.metrics.register(c.reg, c)
	if c.primary.Load() {
		c.metrics.primaryG.Set(1)
	}
	if opts.Primary != "" {
		pc := fleet.NewClient(opts.Primary, "standby")
		pc.SetLogger(c.logger.With("primary", opts.Primary))
		if c.token != "" {
			pc.SetToken(c.token)
		}
		c.primaryClient = pc
	}
	for _, base := range opts.Partitions {
		c.parts = append(c.parts, c.newPartition(base))
	}
	c.updateMergedGauges()
	mux := http.NewServeMux()
	// The client-facing surface is lease-gated: a standby answers 503
	// until promoted. Topology and diagnostics (membership, status,
	// lease, health, metrics) always serve — they are how operators and
	// probes see the standby at all.
	mux.Handle("/v1/patches", c.gatePrimary(http.HandlerFunc(c.handlePatches)))
	mux.Handle("/v1/reports", c.gatePrimary(http.HandlerFunc(c.handleReports)))
	mux.HandleFunc("/v1/membership", c.handleMembership)
	mux.Handle("/v1/rebalance", c.gatePrimary(http.HandlerFunc(c.handleRebalance)))
	mux.HandleFunc("/v1/status", c.handleStatus)
	mux.HandleFunc("/v1/lease", c.handleLease)
	mux.Handle("/v1/triage", c.gatePrimary(c.triage))
	mux.Handle("/v1/triage/", c.gatePrimary(c.triage))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", c.reg.Handler())
	c.mux = mux
	return c, nil
}

// Metrics exposes the coordinator's registry (also served on the
// handler's GET /metrics).
func (c *Coordinator) Metrics() *telemetry.Registry { return c.reg }

// Handler returns the coordinator's HTTP handler (the client-facing
// subset of the fleet protocol — patches, reports, status, health —
// plus the cluster admin surface: membership and rebalance).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// newPartition builds the coordinator's view of one fleetd instance and
// registers its per-partition series. A re-added partition re-binds the
// existing series to the fresh state (GaugeFunc replace semantics), so
// membership churn never double-registers.
func (c *Coordinator) newPartition(base string) *partition {
	client := fleet.NewClient(base, "coordinator")
	// The partition client logs its delta fetches with their
	// X-Request-ID, so one correlation ID greps from a partition's
	// journal serve through the coordinator's mirror application.
	client.SetLogger(c.logger.With("partition", base))
	if c.token != "" {
		client.SetToken(c.token)
	}
	client.SetWireV2(c.wireV2)
	p := &partition{
		base:   base,
		client: client,
		mirror: cumulative.NewHistory(c.cfg),
	}
	p.errsC = c.reg.Counter("cluster_poll_errors_total",
		"Failed delta polls, by partition.", telemetry.L("partition", base))
	c.reg.GaugeFunc("cluster_partition_seq",
		"Journal cursor mirrored from each partition.",
		func() float64 { return float64(p.seqGauge.Load()) },
		telemetry.L("partition", base))
	c.reg.GaugeFunc("cluster_partition_poll_age_seconds",
		"Delta-poll lag: seconds since each partition's last successful poll (0 until the first).",
		func() float64 {
			ns := p.lastPoll.Load()
			if ns == 0 {
				return 0
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		},
		telemetry.L("partition", base))
	return p
}

// partitionsSnapshot returns the current partition slice (membership can
// change under Rebalance).
func (c *Coordinator) partitionsSnapshot() []*partition {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*partition(nil), c.parts...)
}

// setPartitions resets the poll set to exactly nodes, keeping existing
// partitions' mirrors and cursors where the base URL matches (new nodes
// start empty and full-resync on their first poll). The merged history
// is rebuilt from the surviving mirrors on the next correction pass.
func (c *Coordinator) setPartitions(nodes []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	have := make(map[string]*partition, len(c.parts))
	for _, p := range c.parts {
		have[p.base] = p
	}
	c.parts = c.parts[:0]
	for _, n := range nodes {
		p := have[n]
		if p == nil {
			p = c.newPartition(n)
		}
		c.parts = append(c.parts, p)
	}
	c.rebuild = true
	c.updateMergedGauges()
}

// findPartition returns the partition for base, or nil.
func (c *Coordinator) findPartition(base string) *partition {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.parts {
		if p.base == base {
			return p
		}
	}
	return nil
}

// Ring exposes the coordinator's membership ring (diagnostics, tests).
func (c *Coordinator) Ring() *Ring { return c.ring }

// PatchLog exposes the fleet-wide patch log.
func (c *Coordinator) PatchLog() *fleet.PatchLog { return c.log }

// PollOnce polls every partition's journal concurrently and applies the
// deltas. It reports whether any new evidence arrived (a correction pass
// is worthwhile) and joins per-partition errors; one unreachable
// partition delays only its own evidence, never the others'.
func (c *Coordinator) PollOnce(ctx context.Context) (changed bool, err error) {
	c.pollMu.Lock()
	defer c.pollMu.Unlock()
	return c.pollLocked(ctx)
}

// pollLocked is PollOnce's body; the caller holds pollMu (Rebalance
// holds it across its whole drain/backfill critical section, so no poll
// can observe — and run a correction pass over — the half-moved state).
func (c *Coordinator) pollLocked(ctx context.Context) (changed bool, err error) {
	c.polls.Add(1)
	c.metrics.polls.Inc()
	parts := c.partitionsSnapshot()
	type result struct {
		p     *partition
		delta *fleet.SnapshotDelta
		err   error
	}
	results := make([]result, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *partition, since, epoch uint64) {
			defer wg.Done()
			d, derr := p.client.Deltas(ctx, since)
			if derr == nil && !d.Full && epoch != 0 && d.Epoch != epoch {
				// The partition restarted under us and has already
				// re-accumulated past our cursor, so the reply is a delta
				// of the *new* incarnation's journal — useless against our
				// mirror of the old one. Refetch with a cursor no journal
				// can satisfy, forcing a Full store snapshot (a plain
				// since=0 delta could miss snapshot-restored evidence that
				// never went through the journal).
				d, derr = p.client.Deltas(ctx, ^uint64(0))
			}
			results[i] = result{p: p, delta: d, err: derr}
		}(i, p, p.seq, p.epoch)
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	for _, res := range results {
		if res.err != nil {
			res.p.errs.Add(1)
			res.p.errsC.Inc()
			res.p.lastErr.Store(res.err.Error())
			c.logger.Warn("delta poll failed",
				"partition", res.p.base, "error", res.err.Error())
			errs = append(errs, fmt.Errorf("cluster: poll %s: %w", res.p.base, res.err))
			continue
		}
		d := res.delta
		switch {
		case d.Full || (res.p.epoch != 0 && d.Epoch != res.p.epoch):
			// The partition restarted or we fell off its journal window:
			// replace the mirror wholesale. Replacing — never absorbing a
			// full snapshot into an existing mirror — is what makes
			// re-polls and restarts idempotent: evidence is a multiset,
			// so only replacement avoids double counting. (A cross-epoch
			// non-Full reply is the since=0 refetch above: the complete
			// evidence of the new incarnation.)
			mirror := cumulative.NewHistory(c.cfg)
			mirror.Absorb(d.Snapshot)
			res.p.mirror = mirror
			c.rebuild = true
			c.resyncs.Add(1)
			c.metrics.resyncs.Inc()
			c.metrics.deltaObs.Add(float64(fleet.SnapshotObservations(d.Snapshot)))
			c.logger.Info("partition resynced; mirror replaced",
				"partition", res.p.base, "seq", d.Seq, "epoch", d.Epoch)
			changed = true
		case len(d.Ops) > 0:
			// Ordered delta: the window holds rebalance evictions. Apply
			// each op to the mirror in sequence — an eviction removes the
			// keys' entire evidence at that point. The merged history is
			// rebuilt from the mirrors afterwards: the drained keys'
			// evidence reappears through the new owner's journal, and
			// rebuilding (instead of in-place extraction) keeps the merge
			// independent of the order partitions' deltas land in.
			obs := 0
			for _, op := range d.Ops {
				if len(op.Evict) > 0 {
					res.p.mirror.Extract(op.Evict)
					c.rebuild = true
				}
				if op.Snapshot != nil {
					res.p.mirror.Absorb(op.Snapshot)
					obs += fleet.SnapshotObservations(op.Snapshot)
				}
			}
			c.rebuild = true
			c.metrics.deltas.Inc()
			c.metrics.deltaObs.Add(float64(obs))
			c.logger.Info("ordered delta applied",
				"partition", res.p.base, "seq", d.Seq, "ops", len(d.Ops),
				"observations", obs, "requestIds", d.ReqIDs)
			changed = true
		case d.Snapshot != nil:
			res.p.mirror.Absorb(d.Snapshot)
			if !c.rebuild {
				// Fast path: fold the delta straight into the merged
				// history; only these keys become dirty for the next
				// incremental identify pass.
				c.merged.Absorb(d.Snapshot)
			}
			obs := fleet.SnapshotObservations(d.Snapshot)
			c.metrics.deltas.Inc()
			c.metrics.deltaObs.Add(float64(obs))
			c.logger.Info("delta applied",
				"partition", res.p.base, "seq", d.Seq,
				"observations", obs, "requestIds", d.ReqIDs)
			changed = true
		}
		res.p.seq, res.p.epoch = d.Seq, d.Epoch
		res.p.seqGauge.Store(d.Seq)
		res.p.lastPoll.Store(time.Now().UnixNano())
	}
	c.updateMergedGauges()
	return changed, errors.Join(errs...)
}

// Correct runs one correction pass over the merged evidence and folds
// newly derived patches into the fleet-wide log. After a partition
// resync the merged history is rebuilt from the mirrors first (the rare
// slow path); otherwise the pass rescores only dirty sites. The triage
// pass that follows runs outside c.mu — a /metrics scrape or delta poll
// never waits behind clustering.
func (c *Coordinator) Correct() (uint64, bool) {
	v, changed := c.correctLocked()
	c.triagePass()
	return v, changed
}

func (c *Coordinator) correctLocked() (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.updateMergedGauges()
	c.corrections.Add(1)
	c.metrics.corrections.Inc()
	defer c.metrics.correctSec.ObserveSince(time.Now())
	if c.rebuild {
		merged := cumulative.NewHistory(c.cfg)
		for _, p := range c.parts {
			merged.Absorb(p.mirror.Snapshot())
		}
		c.merged = merged
		c.rebuild = false
		c.metrics.rebuilds.Inc()
	}
	findings := c.merged.Identify()
	if findings.Empty() {
		return c.log.Version(), false
	}
	v, changed := c.log.Fold(findings.Patches())
	if changed {
		c.logger.Info("correction pass folded fleet-wide patches",
			"patchVersion", v, "patchEntries", c.log.Len())
	}
	return v, changed
}

// triagePass feeds the merged evidence's ranked candidates through the
// triage engine. Candidates are harvested under c.mu (they are cheap
// copies of cached per-key Bayes factors); the clustering pass itself
// runs unlocked.
func (c *Coordinator) triagePass() {
	if c.triage == nil {
		return
	}
	c.mu.Lock()
	over := c.merged.OverflowCandidates()
	dang := c.merged.DanglingCandidates()
	threshold := c.merged.Threshold()
	c.mu.Unlock()
	patches, _ := c.log.Since(0)
	c.triage.Pass(triage.PassInput{
		Overflows: over,
		Danglings: dang,
		Patches:   patches,
		Threshold: threshold,
	})
}

// Triage exposes the coordinator's triage engine (rankings, alert
// delivery, snapshot persistence).
func (c *Coordinator) Triage() *triage.Engine { return c.triage }

// Run polls and corrects every interval (jittered ±10% so a fleet of
// coordinators and replicas never phase-locks; see fleet.JitterInterval)
// until ctx is done. A standby polls the same journals — mirrors warm,
// cursors advancing — but defers correction and alert delivery to its
// promotion: the patch log is a pure function of the mirrors, and
// running the alerter on a standby would double-fire every webhook the
// primary already sent. Each standby tick also probes the primary's
// lease and promotes after TakeoverAfter consecutive failures.
func (c *Coordinator) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTimer(fleet.JitterInterval(interval))
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			changed, _ := c.PollOnce(ctx)
			if c.primary.Load() {
				if changed {
					c.Correct()
				}
				c.triage.DeliverAlerts(ctx)
			} else {
				c.probePrimary(ctx)
			}
			t.Reset(fleet.JitterInterval(interval))
		}
	}
}

// Sync is PollOnce + Correct, for callers that want to drive the loop
// themselves (tests, demos).
func (c *Coordinator) Sync(ctx context.Context) (uint64, error) {
	changed, err := c.PollOnce(ctx)
	if changed {
		v, _ := c.Correct()
		return v, err
	}
	return c.log.Version(), err
}

func (c *Coordinator) handlePatches(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reqID := fleet.EchoRequestID(w, r)
	c.metrics.patchPolls.Inc()
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "cluster: bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = v
	}
	ps, version := c.log.Since(since)
	epoch := c.epoch.Load()
	if fleet.MatchETag(w, r, fleet.PatchETag(epoch, version)) {
		c.metrics.patchNotMod.Inc()
		c.logger.Debug("patches revalidated (304)",
			"since", since, "version", version, "requestId", reqID)
		return
	}
	wire := fleet.ToWire(ps, version)
	wire.Epoch = epoch
	c.logger.Debug("patches served",
		"since", since, "version", version, "requestId", reqID)
	fleet.WritePatchSet(w, r, wire)
}

func (c *Coordinator) handleReports(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		if c.token != "" && !fleet.BearerAuthorized(r, c.token) {
			w.Header().Set("WWW-Authenticate", `Bearer realm="fleet"`)
			http.Error(w, "cluster: missing or invalid ingest token", http.StatusUnauthorized)
			return
		}
		var rep report.Report
		// fleet.DecodeJSONBody, not a plain json.Decoder: fleet.Client
		// gzips request bodies by default, and the coordinator must accept
		// exactly what any fleetd accepts.
		if err := fleet.DecodeJSONBody(w, r, 16<<20, &rep); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Same retention hygiene as fleetd: sanitize on ingest (paths,
		// PII, caps) so a re-served report never leaks what a client
		// forgot to redact, and feed stack provenance to triage.
		report.Redact(&rep)
		c.feedTriageFrames(&rep)
		c.reportSeen.Add(1)
		c.reportMu.Lock()
		c.reports = append(c.reports, &rep)
		if len(c.reports) > c.maxReports {
			c.reports = append([]*report.Report(nil), c.reports[len(c.reports)-c.maxReports:]...)
		}
		c.reportMu.Unlock()
		fleet.WriteJSON(w, map[string]any{"ok": true})
	case http.MethodGet:
		c.reportMu.Lock()
		out := append([]*report.Report{}, c.reports...)
		c.reportMu.Unlock()
		fleet.WriteJSON(w, out)
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// feedTriageFrames records uploaded findings' call stacks with the
// triage engine so clusters can group by normalized callsite signature
// instead of falling back to per-site keys.
func (c *Coordinator) feedTriageFrames(rep *report.Report) {
	if c.triage == nil {
		return
	}
	for _, f := range rep.Findings {
		for _, t := range f.Sites {
			c.triage.RecordFrames(t.Site, t.Frames)
		}
	}
}

// ClusterStatus is the coordinator's GET /v1/status body: the standard
// fleet status (so generic tooling keeps working) plus per-partition
// mirror state.
type ClusterStatus struct {
	fleet.StatusReply
	Polls   int64 `json:"polls"`
	Resyncs int64 `json:"resyncs"`
	// MembershipVersion and Nodes are the current cluster topology
	// (GET /v1/membership returns the same pair); Rebalance is the
	// drain/backfill engine's state, including the moved-key count of
	// the most recent resize.
	MembershipVersion uint64            `json:"membershipVersion"`
	Nodes             []string          `json:"nodes"`
	Rebalance         RebalanceState    `json:"rebalance"`
	Partitions        []PartitionStatus `json:"partitions"`
	// Primary, LeaseEpoch and LeaseHolder mirror GET /v1/lease, so one
	// status scrape shows a pair's roles.
	Primary     bool   `json:"primary"`
	LeaseEpoch  uint64 `json:"leaseEpoch"`
	LeaseHolder string `json:"leaseHolder"`
}

// PartitionStatus is one partition's mirror state in ClusterStatus.
type PartitionStatus struct {
	Base      string `json:"base"`
	Seq       uint64 `json:"seq"`
	Epoch     uint64 `json:"epoch"`
	Sites     int    `json:"sites"`
	Runs      int    `json:"runs"`
	Errors    int64  `json:"errors"`
	LastError string `json:"lastError,omitempty"`
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reqID := fleet.EchoRequestID(w, r)
	c.logger.Debug("status served", "requestId", reqID)
	fleet.WriteJSON(w, c.Status())
}

// handleMembership serves the current cluster topology: writers
// (cluster.Sink, Router owners) adopt it via Ring.SetMembership after a
// stale-ring rejection or on their regular patch-poll path.
func (c *Coordinator) handleMembership(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reqID := fleet.EchoRequestID(w, r)
	version, nodes := c.ring.Membership()
	c.logger.Debug("membership served",
		"membershipVersion", version, "requestId", reqID)
	fleet.WriteJSON(w, fleet.MembershipReply{Version: version, Nodes: nodes})
}

// Status assembles the coordinator's status reply.
func (c *Coordinator) Status() *ClusterStatus {
	build := version.String()
	memberVersion, nodes := c.ring.Membership()
	c.mu.Lock()
	st := &ClusterStatus{
		StatusReply: fleet.StatusReply{
			Build:       build,
			Version:     c.log.Version(),
			Sites:       c.merged.Sites(),
			Runs:        int64(c.merged.Runs),
			FailedRuns:  int64(c.merged.FailedRuns),
			CorruptRuns: int64(c.merged.CorruptRuns),
			Reports:     c.reportSeen.Load(),
			PatchLen:    c.log.Len(),
			UptimeSec:   int64(time.Since(c.start).Seconds()),
			Corrections: c.corrections.Load(),
			DirtyKeys:   c.merged.DirtyKeys(),
		},
		Polls:             c.polls.Load(),
		Resyncs:           c.resyncs.Load(),
		MembershipVersion: memberVersion,
		Nodes:             nodes,
		Rebalance:         c.rebalState,
		Primary:           c.primary.Load(),
		LeaseEpoch:        c.epoch.Load(),
		LeaseHolder:       c.holder,
	}
	for _, p := range c.parts {
		ps := PartitionStatus{
			Base:   p.base,
			Seq:    p.seq,
			Epoch:  p.epoch,
			Sites:  p.mirror.Sites(),
			Runs:   p.mirror.Runs,
			Errors: p.errs.Load(),
		}
		if v, ok := p.lastErr.Load().(string); ok {
			ps.LastError = v
		}
		st.Partitions = append(st.Partitions, ps)
	}
	c.mu.Unlock()
	return st
}
