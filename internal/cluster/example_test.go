package cluster_test

import (
	"fmt"

	"exterminator/internal/cluster"
	"exterminator/internal/cumulative"
	"exterminator/internal/site"
)

// SplitBatch partitions one upload along the consistent-hash ring: every
// evidence key lands on exactly one partition, run counters ride exactly
// one piece, and each piece is stamped with its own content-addressed
// batch ID so a retried piece is deduped rather than re-absorbed.
func ExampleRouter_SplitBatch() {
	router, _ := cluster.NewRouter("install-1", "http://p1", "http://p2", "http://p3")

	snap := &cumulative.Snapshot{
		C: 4, P: 0.5, Runs: 5,
		Sites: []site.ID{1, 2, 3, 4, 5, 6, 7, 8},
	}
	pieces, _ := router.SplitBatch(0, 0, snap)

	sites, withCounters, stamped := 0, 0, 0
	for _, p := range pieces {
		sites += len(p.Batch.Snapshot.Sites)
		if p.Batch.Snapshot.Runs > 0 {
			withCounters++
		}
		if p.Batch.BatchID != "" {
			stamped++
		}
	}
	fmt.Println("pieces:", len(pieces))
	fmt.Println("sites preserved:", sites)
	fmt.Println("pieces carrying run counters:", withCounters)
	fmt.Println("pieces stamped:", stamped)
	// Output:
	// pieces: 3
	// sites preserved: 8
	// pieces carrying run counters: 1
	// pieces stamped: 3
}

// Ownership is a pure function of ring membership: every router over the
// same partition set routes every key identically, with no coordination.
func ExampleRing() {
	a := cluster.NewRing(0, "http://p1", "http://p2", "http://p3")
	b := cluster.NewRing(0, "http://p3", "http://p1", "http://p2") // order irrelevant

	agree := true
	for id := site.ID(0); id < 1000; id++ {
		if a.Owner(id) != b.Owner(id) {
			agree = false
		}
	}
	fmt.Println("independent rings agree:", agree)
	// Output:
	// independent rings agree: true
}
