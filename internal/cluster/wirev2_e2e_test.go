package cluster

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/fleet"
	"exterminator/internal/site"
)

// scrapeMetric reads one metric value from a server's /metrics
// exposition (the tests live outside package fleet, so the typed
// instruments are not reachable directly).
func scrapeMetric(t *testing.T, baseURL, name string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (.+)$`).FindSubmatch(body)
	if m == nil {
		return ""
	}
	return string(m[1])
}

// TestMixedWireVersionsConverge is the v2 acceptance test: a v1 JSON
// installation and a v2 binary installation upload interleaved evidence
// through router → partitions → coordinator (itself polling partitions
// over v2), and the published patch set must be byte-identical to a
// v1-only control cluster fed the same stream. A v2 read replica over
// the coordinator must re-serve the same set.
func TestMixedWireVersionsConverge(t *testing.T) {
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()

	type clusterUnderTest struct {
		partURLs []string
		routers  [2]*Router
		coord    *Coordinator
	}
	build := func(v2 bool) *clusterUnderTest {
		cut := &clusterUnderTest{}
		for i := 0; i < 3; i++ {
			srv := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			cut.partURLs = append(cut.partURLs, ts.URL)
		}
		for i, id := range []string{"install-a", "install-b"} {
			rt, err := NewRouter(id, cut.partURLs...)
			if err != nil {
				t.Fatal(err)
			}
			cut.routers[i] = rt
		}
		coord, err := NewCoordinator(CoordinatorOptions{Partitions: cut.partURLs, Config: cfg, WireV2: v2})
		if err != nil {
			t.Fatal(err)
		}
		cut.coord = coord
		return cut
	}

	control := build(false)
	mixed := build(true)
	// Mixed cluster: install-a speaks v2 binary frames, install-b stays
	// on v1 JSON. The control never negotiates v2 anywhere.
	mixed.routers[0].SetWireV2(true)

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		batch := testBatch(rng)
		which := i % 2
		if _, err := control.routers[which].PushSnapshot(ctx, batch); err != nil {
			t.Fatalf("control push %d: %v", i, err)
		}
		if _, err := mixed.routers[which].PushSnapshot(ctx, batch); err != nil {
			t.Fatalf("mixed push %d: %v", i, err)
		}
		if i%10 == 5 {
			if _, err := control.coord.Sync(ctx); err != nil {
				t.Fatal(err)
			}
			if _, err := mixed.coord.Sync(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := control.coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := mixed.coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	controlBytes := canonicalPatchBytes(t, control.coord.PatchLog())
	mixedBytes := canonicalPatchBytes(t, mixed.coord.PatchLog())
	if !bytes.Equal(controlBytes, mixedBytes) {
		t.Fatalf("mixed-wire cluster diverged from v1-only control:\ncontrol: %s\nmixed:   %s",
			controlBytes, mixedBytes)
	}
	ps, _ := mixed.coord.PatchLog().Full()
	if ps.Pad(guiltySite) != guiltyPad {
		t.Fatalf("guilty overflow not patched: %v", ps)
	}
	if ps.Deferral(site.Pair{Alloc: guiltyAlloc, Free: guiltyFree}) != guiltyDefer {
		t.Fatalf("guilty dangling pair not patched: %v", ps)
	}

	// The mixed partitions really did ingest binary frames (half the
	// uploads), and the control never saw one.
	for i, u := range mixed.partURLs {
		if v := scrapeMetric(t, u, "fleet_ingest_v2_batches_total"); v == "" || v == "0" {
			t.Errorf("mixed partition %d ingested no v2 frames (metric=%q)", i, v)
		}
	}
	for i, u := range control.partURLs {
		if v := scrapeMetric(t, u, "fleet_ingest_v2_batches_total"); v != "" && v != "0" {
			t.Errorf("control partition %d ingested %s v2 frames, want none", i, v)
		}
	}

	// Counters survive the split + re-stamp on both wire versions.
	cs, ms := control.coord.Status(), mixed.coord.Status()
	if cs.Runs != ms.Runs || cs.CorruptRuns != ms.CorruptRuns {
		t.Fatalf("run counters diverge: control runs=%d corrupt=%d, mixed runs=%d corrupt=%d",
			cs.Runs, cs.CorruptRuns, ms.Runs, ms.CorruptRuns)
	}

	// A v2 read replica over the mixed coordinator re-serves the same
	// patch set to a v1 poller.
	coordTS := httptest.NewServer(mixed.coord.Handler())
	t.Cleanup(coordTS.Close)
	rep, err := NewReplica(ReplicaOptions{Upstreams: []string{coordTS.URL}, WireV2: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	repTS := httptest.NewServer(rep.Handler())
	t.Cleanup(repTS.Close)
	poller := fleet.NewClient(repTS.URL, "poller")
	got, _, err := poller.Patches(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pad(guiltySite) != guiltyPad {
		t.Fatalf("replica poll over v2 upstream returned %v", got)
	}

	// And a v2 poller straight off the coordinator decodes the frame
	// answer to the identical set.
	v2poller := fleet.NewClient(coordTS.URL, "v2-poller")
	v2poller.SetWireV2(true)
	gotV2, _, err := v2poller.Patches(0)
	if err != nil {
		t.Fatal(err)
	}
	if !gotV2.Equal(got) {
		t.Fatalf("v2-negotiated patch poll diverged from JSON poll:\n v2:   %v\n json: %v", gotV2, got)
	}
}
