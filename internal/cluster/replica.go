package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"exterminator/internal/fleet"
	"exterminator/internal/fleet/codec"
	"exterminator/internal/patch"
	"exterminator/internal/telemetry"
	"exterminator/internal/version"
)

// Replica is the read-path fan-out tier: a stateless cache that polls a
// coordinator's patch log and triage ranking and re-serves them to any
// number of pollers, CDN-style. Patch distribution is overwhelmingly
// read-heavy — millions of installations poll, one merge tier writes —
// so replicas absorb the fan-in: each keeps a delta ring keyed by the
// *upstream's* version numbers (a poller talking to a replica sees the
// exact versions and epoch the coordinator would have served), stamps
// every response with the upstream ETag validator, and answers an
// unchanged poll with a bodyless 304. Losing a replica loses nothing:
// its entire state is rebuilt from one upstream poll.
//
// Replicas follow a failover pair transparently: configure the primary
// and standby as upstreams, and the replica rotates on transport
// failure or 503 and adopts the promoted standby's higher epoch (lower
// epochs — a zombie primary — are rejected, never cached).
type Replica struct {
	upstreams []string
	hc        *http.Client
	interval  time.Duration
	maxDeltas int
	wireV2    bool
	logger    *slog.Logger
	reg       *telemetry.Registry
	metrics   replicaMetrics
	mux       *http.ServeMux
	start     time.Time

	mu     sync.Mutex
	active int // upstream currently polled (sticky rotation)
	synced bool
	epoch  uint64
	vers   uint64
	full   *patch.Set
	// entries is the delta ring: entries[i] holds exactly the patch
	// entries upstream versions (from, to] introduced, contiguous and
	// in order. Polls with a cursor inside the ring get the merged
	// suffix; older cursors get the full set (over-answering is safe —
	// patches compose by maxima).
	entries    []replicaDelta
	triageBody []byte
	triageETag string
}

type replicaDelta struct {
	from, to uint64
	set      *patch.Set
}

// ReplicaOptions configures a read replica.
type ReplicaOptions struct {
	// Upstreams are the coordinator base URLs in failover order
	// (primary first, standby after). At least one is required.
	Upstreams []string
	// PollInterval is the upstream refresh cadence, jittered ±10%
	// (0 = 1s).
	PollInterval time.Duration
	// MaxDeltas bounds the retained delta ring (0 = 64); pollers whose
	// cursor falls off the ring resync from the full set.
	MaxDeltas int
	// Token authenticates upstream polls when the cluster is
	// token-hardened (optional; the replica's own read surface is
	// unauthenticated, like every patch read path).
	Token string
	// WireV2 makes upstream patch polls advertise the binary v2 wire
	// protocol in Accept; upstreams that speak it answer in frames,
	// older ones keep answering JSON (the decode negotiates per
	// response). The replica's own served surface negotiates per
	// request regardless.
	WireV2 bool
	// Metrics is the registry the replica's instruments register into
	// (nil gets a private one); Logger receives its structured log
	// (nil discards).
	Metrics *telemetry.Registry
	Logger  *slog.Logger
}

// replicaTriageLimit is the ranking depth a replica caches and serves.
// Replicas answer every GET /v1/triage with this cached body; paginated
// or per-cluster triage reads belong on the coordinator.
const replicaTriageLimit = 200

// replicaMetrics is the fan-out tier's instrument set.
type replicaMetrics struct {
	polls       *telemetry.Counter
	pollErrs    *telemetry.Counter
	failovers   *telemetry.Counter
	patchReqs   *telemetry.Counter
	patchNotMod *telemetry.Counter
	triageReqs  *telemetry.Counter
	triageNM    *telemetry.Counter
	versionG    *telemetry.Gauge
}

func (m *replicaMetrics) register(reg *telemetry.Registry) {
	m.polls = reg.Counter("cluster_replica_polls_total",
		"Upstream refresh rounds (patch log + triage ranking).")
	m.pollErrs = reg.Counter("cluster_replica_poll_errors_total",
		"Failed upstream refreshes (the cache keeps serving its last state).")
	m.failovers = reg.Counter("cluster_replica_upstream_failovers_total",
		"Upstream rotations after a transport failure, 503, or stale (lower-epoch) answer.")
	m.patchReqs = reg.Counter("cluster_replica_patch_requests_total",
		"GET /v1/patches requests served from the cache.")
	m.patchNotMod = reg.Counter("cluster_replica_patch_not_modified_total",
		"Patch polls answered 304 off the If-None-Match validator (the replica hit ratio's numerator).")
	m.triageReqs = reg.Counter("cluster_replica_triage_requests_total",
		"GET /v1/triage requests served from the cache.")
	m.triageNM = reg.Counter("cluster_replica_triage_not_modified_total",
		"Triage reads answered 304 off the If-None-Match validator.")
	m.versionG = reg.Gauge("cluster_replica_patch_version",
		"Upstream patch-log version the cache currently mirrors.")
	telemetry.RegisterBuildInfo(reg)
}

// NewReplica returns a read replica over the given upstreams.
func NewReplica(opts ReplicaOptions) (*Replica, error) {
	var ups []string
	for _, u := range opts.Upstreams {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			ups = append(ups, u)
		}
	}
	if len(ups) == 0 {
		return nil, fmt.Errorf("cluster: replica needs at least one upstream")
	}
	r := &Replica{
		upstreams: ups,
		hc:        &http.Client{Timeout: 15 * time.Second},
		interval:  opts.PollInterval,
		maxDeltas: opts.MaxDeltas,
		wireV2:    opts.WireV2,
		full:      patch.New(),
		start:     time.Now(),
	}
	if r.interval <= 0 {
		r.interval = time.Second
	}
	if r.maxDeltas <= 0 {
		r.maxDeltas = 64
	}
	if opts.Token != "" {
		r.hc.Transport = &bearerTransport{token: opts.Token, base: http.DefaultTransport}
	}
	r.logger = opts.Logger
	if r.logger == nil {
		r.logger = slog.New(slog.DiscardHandler)
	}
	r.logger = r.logger.With("component", "replica")
	r.reg = opts.Metrics
	if r.reg == nil {
		r.reg = telemetry.NewRegistry()
	}
	r.metrics.register(r.reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/patches", r.handlePatches)
	mux.HandleFunc("/v1/triage", r.handleTriage)
	mux.HandleFunc("/v1/status", r.handleStatus)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", r.reg.Handler())
	r.mux = mux
	return r, nil
}

// bearerTransport stamps upstream polls with the cluster's ingest token.
type bearerTransport struct {
	token string
	base  http.RoundTripper
}

func (t *bearerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	req.Header.Set("Authorization", "Bearer "+t.token)
	return t.base.RoundTrip(req)
}

// Handler returns the replica's HTTP handler.
func (r *Replica) Handler() http.Handler { return r.mux }

// Metrics exposes the replica's registry (also served on GET /metrics).
func (r *Replica) Metrics() *telemetry.Registry { return r.reg }

// Run refreshes the cache every poll interval (jittered ±10% — a
// replica fleet must not poll the coordinator in phase) until ctx is
// done.
func (r *Replica) Run(ctx context.Context) {
	t := time.NewTimer(fleet.JitterInterval(r.interval))
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := r.PollOnce(ctx); err != nil {
				r.logger.Warn("upstream refresh failed", "error", err.Error())
			}
			t.Reset(fleet.JitterInterval(r.interval))
		}
	}
}

// PollOnce refreshes the patch and triage caches from the upstream. All
// network I/O happens before the replica's lock is taken; a failed
// refresh leaves the cache serving its previous state.
func (r *Replica) PollOnce(ctx context.Context) error {
	r.metrics.polls.Inc()
	r.mu.Lock()
	since := uint64(0)
	if r.synced {
		since = r.vers
	}
	epoch := r.epoch
	r.mu.Unlock()

	w, err := r.fetchPatches(ctx, since)
	if err != nil {
		r.metrics.pollErrs.Inc()
		return err
	}
	if epoch != 0 && w.Epoch != 0 && w.Epoch != epoch {
		if w.Epoch < epoch {
			// Zombie primary: rotate away and refuse the stale state.
			r.rotate()
			r.metrics.pollErrs.Inc()
			return fmt.Errorf("cluster: replica upstream answered stale epoch %d (have %d)", w.Epoch, epoch)
		}
		// Failover (or coordinator restart): version numbering restarted
		// under the new epoch, so rebuild the cache from a full fetch.
		if w, err = r.fetchPatches(ctx, 0); err != nil {
			r.metrics.pollErrs.Inc()
			return err
		}
		since = 0
		r.logger.Info("upstream epoch changed; cache rebuilt", "epoch", w.Epoch, "version", w.Version)
	}

	tbody, terr := r.fetchTriage(ctx)
	if terr != nil {
		// Patch state still applies; triage keeps its last body.
		r.logger.Warn("triage refresh failed", "error", terr.Error())
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if since == 0 {
		r.full = w.Set()
		r.entries = nil
		r.epoch, r.vers, r.synced = w.Epoch, w.Version, true
	} else if w.Version > r.vers {
		delta := w.Set()
		r.full.Merge(delta)
		r.entries = append(r.entries, replicaDelta{from: r.vers, to: w.Version, set: delta})
		if len(r.entries) > r.maxDeltas {
			r.entries = append([]replicaDelta(nil), r.entries[len(r.entries)-r.maxDeltas:]...)
		}
		r.vers = w.Version
		if w.Epoch != 0 {
			r.epoch = w.Epoch
		}
	}
	r.metrics.versionG.Set(float64(r.vers))
	if terr == nil && len(tbody) > 0 {
		r.triageBody = tbody
		h := fnv.New64a()
		h.Write(tbody)
		r.triageETag = fmt.Sprintf("%q", fmt.Sprintf("t%x", h.Sum64()))
	}
	return nil
}

// rotate advances to the next upstream (sticky).
func (r *Replica) rotate() {
	r.mu.Lock()
	r.active = (r.active + 1) % len(r.upstreams)
	r.mu.Unlock()
	r.metrics.failovers.Inc()
}

func (r *Replica) upstream() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.upstreams[r.active]
}

// fetchPatches polls one upstream, rotating through the failover set on
// transport errors and 503s (a standby answering before promotion).
func (r *Replica) fetchPatches(ctx context.Context, since uint64) (*fleet.WirePatchSet, error) {
	var lastErr error
	for i := 0; i < len(r.upstreams); i++ {
		base := r.upstream()
		accept := ""
		if r.wireV2 {
			accept = codec.ContentTypeV2
		}
		resp, err := r.getURL(ctx, fmt.Sprintf("%s/v1/patches?since=%d", base, since), accept)
		if err != nil {
			lastErr = err
			r.rotate()
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			lastErr = fmt.Errorf("cluster: replica upstream %s unavailable (503)", base)
			r.rotate()
			continue
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return nil, fmt.Errorf("cluster: replica poll %s: %s: %s", base, resp.Status, strings.TrimSpace(string(msg)))
		}
		w, err := fleet.DecodePatchSetResponse(resp)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("cluster: replica poll %s: %w", base, err)
		}
		return w, nil
	}
	return nil, lastErr
}

// fetchTriage polls the upstream ranking body the replica re-serves.
func (r *Replica) fetchTriage(ctx context.Context) ([]byte, error) {
	base := r.upstream()
	resp, err := r.getURL(ctx, fmt.Sprintf("%s/v1/triage?limit=%d", base, replicaTriageLimit), "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: replica triage poll %s: %s: %s", base, resp.Status, strings.TrimSpace(string(msg)))
	}
	return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
}

func (r *Replica) getURL(ctx context.Context, url, accept string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(fleet.RequestIDHeader, telemetry.NewRequestID())
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	return r.hc.Do(req)
}

func (r *Replica) handlePatches(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reqID := fleet.EchoRequestID(w, req)
	r.metrics.patchReqs.Inc()
	var since uint64
	if q := req.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "cluster: bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = v
	}

	// Assemble the response under the lock, write it after release (no
	// blocking I/O under a data lock).
	r.mu.Lock()
	if !r.synced {
		r.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "cluster: replica warming (no upstream state yet)", http.StatusServiceUnavailable)
		return
	}
	epoch, vers := r.epoch, r.vers
	var ps *patch.Set
	switch {
	case since >= vers:
		if since > vers {
			// A cursor this incarnation never issued: resync, exactly
			// like the coordinator would.
			ps = r.full.Clone()
		} else {
			ps = patch.New()
		}
	case len(r.entries) == 0 || since < r.entries[0].from:
		ps = r.full.Clone()
	default:
		ps = patch.New()
		for _, e := range r.entries {
			if e.to > since {
				ps.Merge(e.set)
			}
		}
	}
	r.mu.Unlock()

	if fleet.MatchETag(w, req, fleet.PatchETag(epoch, vers)) {
		r.metrics.patchNotMod.Inc()
		r.logger.Debug("patches revalidated (304)", "since", since, "version", vers, "requestId", reqID)
		return
	}
	wire := fleet.ToWire(ps, vers)
	wire.Epoch = epoch
	r.logger.Debug("patches served", "since", since, "version", vers, "requestId", reqID)
	fleet.WritePatchSet(w, req, wire)
}

func (r *Replica) handleTriage(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reqID := fleet.EchoRequestID(w, req)
	r.metrics.triageReqs.Inc()
	r.mu.Lock()
	body, etag := r.triageBody, r.triageETag
	r.mu.Unlock()
	if len(body) == 0 {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "cluster: replica warming (no triage state yet)", http.StatusServiceUnavailable)
		return
	}
	if fleet.MatchETag(w, req, etag) {
		r.metrics.triageNM.Inc()
		r.logger.Debug("triage revalidated (304)", "requestId", reqID)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	r.logger.Debug("triage served", "requestId", reqID)
	w.Write(body)
}

// ReplicaStatus is the replica's GET /v1/status body.
type ReplicaStatus struct {
	// Build identifies the serving binary; Upstream is the base URL
	// currently polled.
	Build    string `json:"build,omitempty"`
	Upstream string `json:"upstream"`
	// ReplicaVersion and ReplicaEpoch mirror the upstream patch-log
	// cursor the cache is valid at; Synced is false until the first
	// successful upstream poll.
	ReplicaVersion uint64 `json:"replicaVersion"`
	ReplicaEpoch   uint64 `json:"replicaEpoch"`
	Synced         bool   `json:"synced"`
	// PatchRequests / PatchNotModified are the served-read counters
	// (their ratio is the cache hit ratio); Polls / PollErrors count
	// upstream refreshes.
	PatchRequests    int64 `json:"patchRequests"`
	PatchNotModified int64 `json:"patchNotModified"`
	Polls            int64 `json:"polls"`
	PollErrors       int64 `json:"pollErrors"`
	UptimeSec        int64 `json:"uptimeSec"`
}

// Status assembles the replica's GET /v1/status body.
func (r *Replica) Status() *ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &ReplicaStatus{
		Build:            version.String(),
		Upstream:         r.upstreams[r.active],
		ReplicaVersion:   r.vers,
		ReplicaEpoch:     r.epoch,
		Synced:           r.synced,
		PatchRequests:    int64(r.metrics.patchReqs.Value()),
		PatchNotModified: int64(r.metrics.patchNotMod.Value()),
		Polls:            int64(r.metrics.polls.Value()),
		PollErrors:       int64(r.metrics.pollErrs.Value()),
		UptimeSec:        int64(time.Since(r.start).Seconds()),
	}
}

func (r *Replica) handleStatus(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reqID := fleet.EchoRequestID(w, req)
	st := r.Status()
	r.logger.Debug("status served", "requestId", reqID)
	fleet.WriteJSON(w, st)
}
