package cluster

import (
	"math/rand"
	"testing"

	"exterminator/internal/site"
)

func ringKeys(n int, seed int64) []site.ID {
	rng := rand.New(rand.NewSource(seed))
	out := make([]site.ID, n)
	for i := range out {
		out[i] = site.ID(rng.Uint32())
	}
	return out
}

func owners(r *Ring, keys []site.ID) map[site.ID]string {
	m := make(map[site.ID]string, len(keys))
	for _, k := range keys {
		m[k] = r.Owner(k)
	}
	return m
}

// TestRingAddMovesKeysOnlyToNewNode pins the consistent-hashing
// invariant: adding a node may move keys only *to* that node, and the
// moved fraction is bounded near 1/(n+1).
func TestRingAddMovesKeysOnlyToNewNode(t *testing.T) {
	keys := ringKeys(20000, 1)
	r := NewRing(0, "a", "b", "c", "d", "e")
	before := owners(r, keys)

	r.Add("f")
	moved := 0
	for _, k := range keys {
		now := r.Owner(k)
		if now != before[k] {
			if now != "f" {
				t.Fatalf("key %v moved between pre-existing nodes: %s -> %s", k, before[k], now)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("new node owns nothing")
	}
	// Expected share is 1/6 of the keys; allow wide slack for vnode
	// placement variance but fail on gross imbalance.
	frac := float64(moved) / float64(len(keys))
	if frac > 2.0/6 {
		t.Fatalf("adding one node to five moved %.1f%% of keys, want ~16%%", 100*frac)
	}
}

// TestRingRemoveMovesOnlyOrphanedKeys pins the reverse invariant:
// removing a node moves only the keys it owned.
func TestRingRemoveMovesOnlyOrphanedKeys(t *testing.T) {
	keys := ringKeys(20000, 2)
	r := NewRing(0, "a", "b", "c", "d")
	before := owners(r, keys)

	r.Remove("c")
	for _, k := range keys {
		now := r.Owner(k)
		if before[k] == "c" {
			if now == "c" {
				t.Fatalf("key %v still owned by removed node", k)
			}
		} else if now != before[k] {
			t.Fatalf("key %v not owned by removed node moved: %s -> %s", k, before[k], now)
		}
	}
}

// TestRingMembershipRoundTrip: removing a node and re-adding it restores
// the exact prior ownership (point hashes depend only on names), and two
// rings built from the same membership in different orders agree on
// every key.
func TestRingMembershipRoundTrip(t *testing.T) {
	keys := ringKeys(5000, 3)
	r := NewRing(0, "a", "b", "c")
	before := owners(r, keys)

	r.Remove("b")
	r.Add("b")
	for _, k := range keys {
		if r.Owner(k) != before[k] {
			t.Fatalf("remove+add changed ownership of %v", k)
		}
	}

	other := NewRing(0, "c", "a", "b")
	for _, k := range keys {
		if other.Owner(k) != before[k] {
			t.Fatalf("construction order changed ownership of %v", k)
		}
	}
}

// TestRingBalance: with enough virtual nodes no member owns a grossly
// disproportionate share.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(30000, 4)
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r := NewRing(0, nodes...)
	counts := make(map[string]int)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, n := range nodes {
		frac := float64(counts[n]) / float64(len(keys))
		if frac < 0.05 || frac > 0.45 {
			t.Fatalf("node %s owns %.1f%% of keys (want roughly 20%%): %v", n, 100*frac, counts)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if got := r.Owner(42); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	r.Add("only")
	for _, k := range ringKeys(100, 5) {
		if r.Owner(k) != "only" {
			t.Fatal("single-node ring must own every key")
		}
	}
}
