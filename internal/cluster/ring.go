// Package cluster scales the fleet aggregation service horizontally: a
// consistent-hash ring partitions the evidence store by call site across
// N independent fleetd instances, a router splits every observation
// batch along the ring, and a coordinator/merge tier mirrors each
// partition's evidence journal (GET /v1/deltas), reruns the Bayesian
// hypothesis test incrementally over the merged pool, and publishes a
// fleet-wide versioned patch log that unmodified fleet.Client /
// fleet.Sink consumers poll exactly as they would a single fleetd.
//
// Topology:
//
//	installations ──Router──▶ partition fleetd × N  ──deltas──▶ Coordinator ──patches──▶ installations
//
// Evidence keys (allocation sites; (alloc, free) pairs key by their
// alloc side, like fleet.Store's stripes) live on exactly one partition,
// so the coordinator can union partition evidence without deduplication.
// Membership changes move only the keys owned by the added or removed
// node — the consistent-hash property the ring tests pin down — and the
// coordinator's Rebalance moves those keys' accumulated evidence with
// them (drain via POST /v1/evict, backfill through the exactly-once
// batch path, two-phase journal for crash safety), so a moved key's
// observations never stay split between its old and new owner. Writers
// stamp uploads with the ring's membership version; partitions reject
// stale splits, and Sink/Router re-adopt the topology from the
// coordinator's GET /v1/membership.
//
// Uploads are exactly-once end to end: Router.SplitBatch stamps every
// per-partition piece with its own content-addressed batch ID, Sink
// retries unacknowledged pieces verbatim (and streams mid-run as an
// engine.StreamingSink), and each partition's dedup window absorbs a
// piece at most once. The Coordinator persists its partition mirrors
// and journal cursors (SaveSnapshot/LoadSnapshot), so a restarted merge
// tier resumes with cheap deltas instead of full resyncs.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"

	"exterminator/internal/site"
)

// DefaultVirtualNodes is the number of ring points per node. More points
// smooth the key distribution across heterogeneous node counts at the
// cost of a larger (still tiny) sorted array.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over partition node names. It is safe
// for concurrent use; membership changes rebuild the point array.
//
// Every membership change bumps a monotonically increasing membership
// version. Writers stamp the version on the pieces they route
// (Router.SplitBatch / ObservationBatch.RingVersion) and partitions
// reject pieces from a stale ring, so a writer that missed a rebalance
// converges on the new topology instead of racing it — see
// docs/PROTOCOL.md "Membership versioning".
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	version uint64
	nodes   map[string]bool
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint32
	node string
}

// NewRing returns a ring with vnodes virtual nodes per member (<= 0
// means DefaultVirtualNodes) and the given initial members.
func NewRing(vnodes int, nodes ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes, version: 1, nodes: make(map[string]bool)}
	for _, n := range nodes {
		r.nodes[n] = true
	}
	r.rebuild()
	return r
}

// Add inserts a node and bumps the membership version. Keys whose
// ownership changes move exclusively to the new node; no key moves
// between pre-existing nodes. Adding an existing member is a no-op (the
// version does not move).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	r.version++
	r.rebuild()
}

// Remove deletes a node and bumps the membership version. Keys it owned
// redistribute to the surviving nodes; every other key keeps its owner.
// Removing a non-member is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	r.version++
	r.rebuild()
}

// Version returns the current membership version. Versions start at 1
// and only ever increase: local Add/Remove bump by one, SetMembership
// adopts a strictly newer announced version.
func (r *Ring) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// Membership returns the version and the sorted member list as one
// consistent pair.
func (r *Ring) Membership() (uint64, []string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return r.version, out
}

// SetMembership adopts an externally announced topology (a coordinator's
// GET /v1/membership reply): the node set is replaced wholesale and the
// version adopted. Announcements at or below the current version are
// ignored — versions are monotonic, so a stale announcement can never
// roll a writer back onto an old topology. It reports whether the
// announcement was applied.
func (r *Ring) SetMembership(version uint64, nodes []string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if version <= r.version {
		return false
	}
	return r.setMembershipLocked(version, nodes)
}

// restoreMembership force-applies a persisted topology (coordinator
// snapshot restore), where the on-disk version is authoritative even
// against an equal in-memory one.
func (r *Ring) restoreMembership(version uint64, nodes []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if version < r.version {
		return
	}
	r.setMembershipLocked(version, nodes)
}

func (r *Ring) setMembershipLocked(version uint64, nodes []string) bool {
	r.nodes = make(map[string]bool, len(nodes))
	for _, n := range nodes {
		r.nodes[n] = true
	}
	r.version = version
	r.rebuild()
	return true
}

// rebuild recomputes the sorted point array. Point hashes depend only on
// (node name, vnode index), so the mapping is deterministic for a given
// membership set — two routers configured with the same nodes agree on
// every key, and re-adding a node restores its exact prior ownership.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for node := range r.nodes {
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(node, i), node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by name so ownership stays
		// deterministic across membership changes.
		return r.points[i].node < r.points[j].node
	})
}

// Owner returns the node owning a site ID, or "" on an empty ring.
// Dangling pairs key by their allocation side, matching fleet.Store's
// striping, so every evidence key has exactly one home partition.
func (r *Ring) Owner(id site.ID) string {
	return r.OwnerKey(keyHash(id))
}

// OwnerKey returns the node owning an arbitrary pre-hashed key.
func (r *Ring) OwnerKey(h uint32) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].node
}

// Nodes returns the current members, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

func (r *Ring) String() string {
	return fmt.Sprintf("ring of %d node(s), %d vnodes each", r.Len(), r.vnodes)
}

// pointHash places one virtual node on the circle.
func pointHash(node string, vnode int) uint32 {
	h := fnv.New32a()
	h.Write([]byte(node))
	h.Write([]byte{'#'})
	h.Write([]byte(strconv.Itoa(vnode)))
	return h.Sum32()
}

// keyHash maps a site ID onto the circle. Site IDs are DJB2 hashes
// already, but synthetic test IDs are sequential, so they get one more
// mixing round through FNV.
func keyHash(id site.ID) uint32 {
	h := fnv.New32a()
	v := uint32(id)
	h.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	return h.Sum32()
}
