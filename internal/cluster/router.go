package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"

	"exterminator/internal/cumulative"
	"exterminator/internal/fleet"
	"exterminator/internal/fleet/codec"
	"exterminator/internal/site"
	"exterminator/internal/telemetry"
)

// Router is the cluster-aware upload client: it splits every observation
// batch along the ring and pushes each piece to the partition that owns
// those keys. Node names are partition base URLs. Safe for concurrent
// use.
type Router struct {
	ring    *Ring
	id      string
	mu      sync.Mutex
	clients map[string]*fleet.Client
	token   string
	logger  *slog.Logger
	reg     *telemetry.Registry
	// wireV2 opts every partition client into binary v2 uploads and
	// switches piece stamping to the binary batch identity
	// (codec.BatchID), which hashes the encoded frame bytes instead of
	// re-encoding each piece as canonical JSON.
	wireV2 bool
}

// ErrNoMembers reports a routing attempt against a ring with no
// members: there is no partition to own any key, so nothing can be
// split or pushed. It guards the degenerate-ring footgun where
// Ring.Owner returns "" and a piece would otherwise be pushed to a
// client built for an empty base URL.
var ErrNoMembers = errors.New("cluster: ring has no members")

// NewRouter returns a router over the given partition base URLs. id is
// the installation identifier forwarded with every upload.
func NewRouter(id string, partitions ...string) (*Router, error) {
	if len(partitions) == 0 {
		return nil, errors.New("cluster: router needs at least one partition")
	}
	return &Router{
		ring:    NewRing(0, partitions...),
		id:      id,
		clients: make(map[string]*fleet.Client),
	}, nil
}

// Ring exposes the router's ring (membership changes, diagnostics).
func (rt *Router) Ring() *Ring { return rt.ring }

// SetToken attaches a shared ingest token to every partition client.
func (rt *Router) SetToken(token string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.token = token
	for _, c := range rt.clients {
		c.SetToken(token)
	}
}

// SetLogger propagates a structured logger to every partition client —
// existing and lazily created alike — so each 429/retry logs with its
// batch and correlation IDs.
func (rt *Router) SetLogger(l *slog.Logger) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.logger = l
	for _, c := range rt.clients {
		c.SetLogger(l)
	}
}

// SetMetrics registers every partition client's upload instruments into
// reg (the fleet_client_* family; all partitions share the series).
func (rt *Router) SetMetrics(reg *telemetry.Registry) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.reg = reg
	for _, c := range rt.clients {
		c.SetMetrics(reg)
	}
}

// SetWireV2 opts the router into the binary v2 wire protocol: every
// partition client (existing and lazily created) uploads v2 frames, and
// SplitBatch stamps pieces with the binary batch identity. Per-client
// negotiation still applies — a partition that doesn't speak v2
// downgrades its own client to JSON without affecting the others.
func (rt *Router) SetWireV2(on bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.wireV2 = on
	for _, c := range rt.clients {
		c.SetWireV2(on)
	}
}

// client returns (creating lazily) the fleet client for a partition.
func (rt *Router) client(node string) *fleet.Client {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c := rt.clients[node]
	if c == nil {
		c = fleet.NewClient(node, rt.id)
		if rt.token != "" {
			c.SetToken(rt.token)
		}
		if rt.logger != nil {
			c.SetLogger(rt.logger)
		}
		if rt.reg != nil {
			c.SetMetrics(rt.reg)
		}
		c.SetWireV2(rt.wireV2)
		rt.clients[node] = c
	}
	return c
}

// PushSnapshot splits one batch along the ring and uploads the pieces to
// their partitions concurrently. It returns per-partition ingest replies
// for the pieces that succeeded; any failures are joined into the
// returned error. A partial failure means the successful pieces stay
// absorbed — callers that retry must re-send only the failed pieces
// (PushSplit exposes which pieces were delivered), because blindly
// re-sending the whole batch would double-count the evidence the
// healthy partitions already absorbed. These pieces carry no batch IDs,
// so delivery is at-least-once; exactly-once callers use SplitBatch +
// PushPiece instead, as cluster.Sink does.
func (rt *Router) PushSnapshot(ctx context.Context, s *cumulative.Snapshot) (map[string]*fleet.IngestReply, error) {
	replies, _, err := rt.PushSplit(ctx, s)
	return replies, err
}

// PushSplit is PushSnapshot exposing the delivered pieces: the
// per-partition sub-snapshots that were actually absorbed. Watermarking
// callers advance their cursor by exactly these, so a retry after a
// partial failure re-sends only what is missing.
func (rt *Router) PushSplit(ctx context.Context, s *cumulative.Snapshot) (replies map[string]*fleet.IngestReply, delivered []*cumulative.Snapshot, err error) {
	if s == nil {
		return nil, nil, errors.New("cluster: nil snapshot")
	}
	version, parts, err := rt.split(s)
	if err != nil {
		return nil, nil, err
	}
	replies = make(map[string]*fleet.IngestReply, len(parts))
	var (
		wg   sync.WaitGroup
		rmu  sync.Mutex
		errs []error
	)
	for node, part := range parts {
		wg.Add(1)
		go func(node string, part *cumulative.Snapshot) {
			defer wg.Done()
			reply, err := rt.client(node).PushBatchContext(ctx, &fleet.ObservationBatch{
				Client:      rt.id,
				Snapshot:    part,
				RingVersion: version,
			})
			rmu.Lock()
			defer rmu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("cluster: push to %s: %w", node, err))
				return
			}
			replies[node] = reply
			delivered = append(delivered, part)
		}(node, part)
	}
	wg.Wait()
	return replies, delivered, errors.Join(errs...)
}

// split partitions one snapshot under a consistent (version, ownership)
// pair: if a membership change lands mid-split, the split is redone so
// the stamped version always matches the topology the pieces were routed
// by.
func (rt *Router) split(s *cumulative.Snapshot) (uint64, map[string]*cumulative.Snapshot, error) {
	for {
		version := rt.ring.Version()
		if rt.ring.Len() == 0 {
			return 0, nil, ErrNoMembers
		}
		parts := SplitSnapshot(rt.ring, s)
		if rt.ring.Version() == version {
			return version, parts, nil
		}
	}
}

// PushHistory uploads a whole local history as one routed batch.
func (rt *Router) PushHistory(ctx context.Context, h *cumulative.History) (map[string]*fleet.IngestReply, error) {
	if h == nil {
		return nil, errors.New("cluster: nil history")
	}
	return rt.PushSnapshot(ctx, h.Snapshot())
}

// Piece is one ring-partitioned share of an upload batch, stamped with
// its own content-addressed batch ID so partition retries stay
// idempotent: re-pushing a piece after a lost ack is recognized by that
// partition's dedup window and acknowledged without re-absorbing.
type Piece struct {
	// Node is the partition base URL that owns the piece's keys.
	Node string
	// Batch is the stamped upload body.
	Batch *fleet.ObservationBatch
}

// SplitBatch splits delta along the ring (SplitSnapshot) and stamps each
// piece with cumulative.BatchID derived from the client id, the upload
// watermark position the delta was cut at (wmRuns, wmObs — see
// History.UploadedCounts), and the piece's canonical content, plus the
// membership version the split was routed under. Retrying a stored piece
// verbatim therefore reproduces its ID exactly, while any newly cut
// delta gets fresh IDs. Pieces are returned in ring-node map order;
// callers push them with PushPiece and advance their watermark per
// acknowledged piece. It returns ErrNoMembers on an empty ring instead
// of routing pieces to a node named "".
func (rt *Router) SplitBatch(wmRuns, wmObs int, delta *cumulative.Snapshot) ([]Piece, error) {
	version, parts, err := rt.split(delta)
	if err != nil {
		return nil, err
	}
	rt.mu.Lock()
	v2 := rt.wireV2
	rt.mu.Unlock()
	stamp := cumulative.BatchID
	if v2 {
		// Binary identity: hashes the piece's v2 frame bytes directly —
		// no canonical-JSON round-trip per piece. IDs are opaque to the
		// server's dedup window, so the two schemes coexist; what matters
		// is that retrying a stored piece reproduces its ID, which both
		// do deterministically.
		stamp = codec.BatchID
	}
	pieces := make([]Piece, 0, len(parts))
	for node, part := range parts {
		pieces = append(pieces, Piece{
			Node: node,
			Batch: &fleet.ObservationBatch{
				Client:      rt.id,
				Snapshot:    part,
				BatchID:     stamp(rt.id, wmRuns, wmObs, part),
				RingVersion: version,
			},
		})
	}
	return pieces, nil
}

// PushPiece uploads one stamped piece to its partition.
func (rt *Router) PushPiece(ctx context.Context, p Piece) (*fleet.IngestReply, error) {
	reply, err := rt.client(p.Node).PushBatchContext(ctx, p.Batch)
	if err != nil {
		return nil, fmt.Errorf("cluster: push to %s: %w", p.Node, err)
	}
	return reply, nil
}

// SplitSnapshot partitions one snapshot by ring ownership: overflow
// evidence, pad hints and the site set split by allocation site;
// dangling evidence and deferral hints by their allocation side — the
// same striping fleet.Store uses, so each key lands on exactly one
// partition. Run counters ride with a single deterministic piece (the
// owner of the batch's lowest key) so the cluster-wide totals the
// coordinator sums count every run exactly once. An empty ring returns
// nil — callers that push (the Router) surface ErrNoMembers instead of
// routing to a node named "".
func SplitSnapshot(r *Ring, s *cumulative.Snapshot) map[string]*cumulative.Snapshot {
	if r.Len() == 0 {
		return nil
	}
	nodes := r.Nodes()
	idx := make(map[string]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	// Two passes: resolve every element's owner once into one scratch
	// array and tally per node, then allocate each part's slices at their
	// exact final sizes — the fill pass never re-grows an append.
	nSites, nOver := len(s.Sites), len(s.Overflow)
	nDang, nPads := len(s.Dangling), len(s.PadHints)
	nDefs := len(s.DeferralHints)
	own := make([]int, nSites+nOver+nDang+nPads+nDefs)
	siteOwn := own[:nSites]
	overOwn := own[nSites : nSites+nOver]
	dangOwn := own[nSites+nOver : nSites+nOver+nDang]
	padOwn := own[nSites+nOver+nDang : nSites+nOver+nDang+nPads]
	defOwn := own[nSites+nOver+nDang+nPads:]
	type tally struct{ sites, over, dang, pads, defs int }
	tallies := make([]tally, len(nodes))
	for i, id := range s.Sites {
		j := idx[r.Owner(id)]
		siteOwn[i] = j
		tallies[j].sites++
	}
	for i, so := range s.Overflow {
		j := idx[r.Owner(so.Site)]
		overOwn[i] = j
		tallies[j].over++
	}
	for i, po := range s.Dangling {
		j := idx[r.Owner(po.Alloc)]
		dangOwn[i] = j
		tallies[j].dang++
	}
	for i, h := range s.PadHints {
		j := idx[r.Owner(h.Site)]
		padOwn[i] = j
		tallies[j].pads++
	}
	for i, h := range s.DeferralHints {
		j := idx[r.Owner(h.Alloc)]
		defOwn[i] = j
		tallies[j].defs++
	}
	parts := make(map[string]*cumulative.Snapshot)
	slot := make([]*cumulative.Snapshot, len(nodes))
	part := func(j int) *cumulative.Snapshot {
		p := slot[j]
		if p == nil {
			t := tallies[j]
			p = &cumulative.Snapshot{C: s.C, P: s.P}
			if t.sites > 0 {
				p.Sites = make([]site.ID, 0, t.sites)
			}
			if t.over > 0 {
				p.Overflow = make([]cumulative.SiteObservations, 0, t.over)
			}
			if t.dang > 0 {
				p.Dangling = make([]cumulative.PairObservations, 0, t.dang)
			}
			if t.pads > 0 {
				p.PadHints = make([]cumulative.PadHint, 0, t.pads)
			}
			if t.defs > 0 {
				p.DeferralHints = make([]cumulative.DeferralHint, 0, t.defs)
			}
			slot[j] = p
			parts[nodes[j]] = p
		}
		return p
	}
	for i, id := range s.Sites {
		p := part(siteOwn[i])
		p.Sites = append(p.Sites, id)
	}
	for i, so := range s.Overflow {
		p := part(overOwn[i])
		p.Overflow = append(p.Overflow, so)
	}
	for i, po := range s.Dangling {
		p := part(dangOwn[i])
		p.Dangling = append(p.Dangling, po)
	}
	for i, h := range s.PadHints {
		p := part(padOwn[i])
		p.PadHints = append(p.PadHints, h)
	}
	for i, h := range s.DeferralHints {
		p := part(defOwn[i])
		p.DeferralHints = append(p.DeferralHints, h)
	}
	counterNode := counterOwner(r, s)
	if counterNode != "" {
		p := part(idx[counterNode])
		p.Runs, p.FailedRuns, p.CorruptRuns = s.Runs, s.FailedRuns, s.CorruptRuns
	}
	return parts
}

// counterOwner picks the partition that carries a batch's run counters:
// the owner of the batch's lowest evidence key, falling back to the
// first ring member for batches with counters but no evidence.
func counterOwner(r *Ring, s *cumulative.Snapshot) string {
	best := site.ID(0)
	have := false
	consider := func(id site.ID) {
		if !have || id < best {
			best, have = id, true
		}
	}
	for _, id := range s.Sites {
		consider(id)
	}
	for _, so := range s.Overflow {
		consider(so.Site)
	}
	for _, po := range s.Dangling {
		consider(po.Alloc)
	}
	for _, h := range s.PadHints {
		consider(h.Site)
	}
	for _, h := range s.DeferralHints {
		consider(h.Alloc)
	}
	if have {
		return r.Owner(best)
	}
	if nodes := r.Nodes(); len(nodes) > 0 {
		return nodes[0]
	}
	return ""
}
