package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/fleet"
	"exterminator/internal/site"
	"exterminator/internal/testutil"
	"exterminator/internal/testutil/chaos"
)

// haPartition spins up one partition server and a coordinator-ready
// base URL for it.
func haPartition(t *testing.T, cfg cumulative.Config) (*fleet.Server, string) {
	t.Helper()
	srv := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts.URL
}

// feedCluster pushes n deterministic batches through a router over the
// given partitions.
func feedCluster(t *testing.T, ctx context.Context, seed int64, n int, partURLs ...string) {
	t.Helper()
	router, err := NewRouter("ha-feed", partURLs...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if _, err := router.PushSnapshot(ctx, testBatch(rng)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
}

// feedSecondWave indicts a fresh overflow site (strong evidence plus a
// pad hint) so a correction pass after it must bump the patch version.
func feedSecondWave(t *testing.T, ctx context.Context, partURLs ...string) {
	t.Helper()
	router, err := NewRouter("ha-feed-2", partURLs...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 8; i++ {
		s := testBatch(rng)
		s.Sites = append(s.Sites, lateGuiltySite)
		s.Overflow = append(s.Overflow, cumulative.SiteObservations{
			Site: lateGuiltySite,
			Obs:  []cumulative.Observation{{X: 0.1, Y: true}, {X: 0.15, Y: true}},
		})
		s.PadHints = append(s.PadHints, cumulative.PadHint{Site: lateGuiltySite, Pad: lateGuiltyPad})
		if _, err := router.PushSnapshot(ctx, s); err != nil {
			t.Fatalf("second-wave push %d: %v", i, err)
		}
	}
}

const (
	lateGuiltySite = site.ID(0xBAD2)
	lateGuiltyPad  = uint32(40)
)

func TestStandbyGatesClientSurfaceUntilPromoted(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()
	_, partURL := haPartition(t, cfg)
	feedCluster(t, ctx, 11, 8, partURL)

	standby, err := NewCoordinator(CoordinatorOptions{
		Partitions:  []string{partURL},
		Config:      cfg,
		Standby:     true,
		LeaseHolder: "coord-b",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(standby.Handler())
	defer ts.Close()

	// The standby mirrors journals like any coordinator...
	if _, err := standby.PollOnce(ctx); err != nil {
		t.Fatalf("standby poll: %v", err)
	}
	if standby.Primary() {
		t.Fatal("coordinator built with Standby: true reports Primary() == true")
	}

	// ...but gates the whole client-facing surface behind 503.
	for _, path := range []string{"/v1/patches?since=0", "/v1/triage", "/v1/reports"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("standby GET %s = %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("standby 503 on %s lacks Retry-After", path)
		}
		resp.Body.Close()
	}

	// Ungated surface: lease, status, membership, health.
	lr := getLease(t, ts.URL)
	if lr.Primary || lr.Holder != "coord-b" {
		t.Fatalf("standby lease = %+v, want primary=false holder=coord-b", lr)
	}
	for _, path := range []string{"/v1/status", "/v1/membership", "/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("standby GET %s = %d, want 200", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if st := standby.Status(); st.Primary || st.LeaseHolder != "coord-b" {
		t.Fatalf("standby status = primary=%v holder=%q", st.Primary, st.LeaseHolder)
	}

	// Promotion opens the gate with a fresh epoch and a warmed patch log.
	preEpoch := standby.Epoch()
	if err := standby.Promote(ctx); err != nil {
		t.Fatal(err)
	}
	if !standby.Primary() {
		t.Fatal("Promote did not make the standby primary")
	}
	if standby.Epoch() <= preEpoch {
		t.Fatalf("promotion epoch %d did not rise above pre-promotion epoch %d", standby.Epoch(), preEpoch)
	}
	var w fleet.WirePatchSet
	getJSON(t, ts.URL+"/v1/patches?since=0", &w)
	if w.Epoch != standby.Epoch() {
		t.Fatalf("patch response epoch %d != coordinator epoch %d", w.Epoch, standby.Epoch())
	}
	if w.Version == 0 {
		t.Fatal("promoted standby serves an unwarmed (version 0) patch log")
	}
	// Promote is idempotent: the epoch must not move again.
	epoch := standby.Epoch()
	if err := standby.Promote(ctx); err != nil {
		t.Fatal(err)
	}
	if standby.Epoch() != epoch {
		t.Fatalf("second Promote moved the epoch %d -> %d", epoch, standby.Epoch())
	}
}

func TestManualPromotionViaLeaseEndpointIsTokenGated(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := cumulative.DefaultConfig()
	_, partURL := haPartition(t, cfg)
	standby, err := NewCoordinator(CoordinatorOptions{
		Partitions: []string{partURL},
		Config:     cfg,
		Standby:    true,
		Token:      "S3CRET",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(standby.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/lease", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated POST /v1/lease = %d, want 401", resp.StatusCode)
	}
	if standby.Primary() {
		t.Fatal("unauthenticated lease POST promoted the standby")
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/lease", nil)
	req.Header.Set("Authorization", "Bearer S3CRET")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var lr fleet.LeaseReply
	decodeBody(t, resp, &lr)
	if !lr.Primary || !standby.Primary() {
		t.Fatal("authorized POST /v1/lease did not promote the standby")
	}
}

func TestStandbyPromotesAfterConsecutiveProbeFailures(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()
	_, partURL := haPartition(t, cfg)

	primary, err := NewCoordinator(CoordinatorOptions{
		Partitions: []string{partURL}, Config: cfg, LeaseHolder: "coord-a",
	})
	if err != nil {
		t.Fatal(err)
	}
	primaryTS := httptest.NewServer(primary.Handler())
	defer primaryTS.Close()
	proxy, err := chaos.NewProxy(primaryTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	standby, err := NewCoordinator(CoordinatorOptions{
		Partitions:    []string{partURL},
		Config:        cfg,
		Standby:       true,
		Primary:       proxy.URL(),
		TakeoverAfter: 3,
		LeaseHolder:   "coord-b",
	})
	if err != nil {
		t.Fatal(err)
	}

	// While the primary answers, probes track its epoch and never promote.
	for i := 0; i < 5; i++ {
		standby.probePrimary(ctx)
	}
	if standby.Primary() {
		t.Fatal("standby promoted itself while the primary was healthy")
	}
	if got := standby.seenPrimaryEpoch.Load(); got != primary.Epoch() {
		t.Fatalf("standby tracked primary epoch %d, want %d", got, primary.Epoch())
	}

	// Partition the primary away: promotion exactly at the threshold.
	proxy.Drop()
	standby.probePrimary(ctx)
	standby.probePrimary(ctx)
	if standby.Primary() {
		t.Fatalf("standby promoted after 2 failed probes, want TakeoverAfter=3")
	}
	standby.probePrimary(ctx)
	if !standby.Primary() {
		t.Fatal("standby did not promote after 3 consecutive failed probes")
	}
	// The fencing invariant: the new epoch clears everything the old
	// primary ever issued.
	if standby.Epoch() <= primary.Epoch() {
		t.Fatalf("promoted epoch %d does not clear the deposed primary's %d",
			standby.Epoch(), primary.Epoch())
	}
}

// TestStandbyProbeRecoveryResetsFailureCount pins that a transient
// outage shorter than the threshold never promotes: fail, fail, heal,
// fail, fail — the counter restarts at the heal.
func TestStandbyProbeRecoveryResetsFailureCount(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()
	_, partURL := haPartition(t, cfg)
	primary, err := NewCoordinator(CoordinatorOptions{Partitions: []string{partURL}, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	primaryTS := httptest.NewServer(primary.Handler())
	defer primaryTS.Close()
	proxy, err := chaos.NewProxy(primaryTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	standby, err := NewCoordinator(CoordinatorOptions{
		Partitions: []string{partURL}, Config: cfg,
		Standby: true, Primary: proxy.URL(), TakeoverAfter: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	proxy.Drop()
	standby.probePrimary(ctx)
	standby.probePrimary(ctx)
	proxy.Restore()
	standby.probePrimary(ctx) // heals: resets the consecutive count
	proxy.Drop()
	standby.probePrimary(ctx)
	standby.probePrimary(ctx)
	if standby.Primary() {
		t.Fatal("standby promoted across a healed probe — failure count did not reset")
	}
	standby.probePrimary(ctx)
	if !standby.Primary() {
		t.Fatal("standby did not promote after 3 consecutive post-heal failures")
	}
}

func TestReplicaServesCachedPatchesAndTriage(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()
	_, partURL := haPartition(t, cfg)
	coord, err := NewCoordinator(CoordinatorOptions{Partitions: []string{partURL}, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(coord.Handler())
	defer coordTS.Close()

	feedCluster(t, ctx, 23, 10, partURL)
	if _, err := coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	rep, err := NewReplica(ReplicaOptions{Upstreams: []string{coordTS.URL}})
	if err != nil {
		t.Fatal(err)
	}
	repTS := httptest.NewServer(rep.Handler())
	defer repTS.Close()

	// Before the first successful upstream poll the replica is warming.
	resp, err := http.Get(repTS.URL + "/v1/patches")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unsynced replica GET /v1/patches = %d, want 503", resp.StatusCode)
	}

	if err := rep.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}

	// Byte-identical read path: a poller cannot tell the replica from
	// the coordinator.
	coordPatches := getBytes(t, coordTS.URL+"/v1/patches?since=0")
	repPatches := getBytes(t, repTS.URL+"/v1/patches?since=0")
	if !bytes.Equal(coordPatches, repPatches) {
		t.Fatalf("replica patches diverge from coordinator:\ncoord:   %s\nreplica: %s", coordPatches, repPatches)
	}
	coordTriage := getBytes(t, coordTS.URL+"/v1/triage?limit=200")
	repTriage := getBytes(t, repTS.URL+"/v1/triage")
	if !bytes.Equal(coordTriage, repTriage) {
		t.Fatalf("replica triage diverges from coordinator:\ncoord:   %s\nreplica: %s", coordTriage, repTriage)
	}

	// Revalidation: echoing the validator costs a 304, no body.
	st := rep.Status()
	if !st.Synced || st.ReplicaVersion == 0 {
		t.Fatalf("replica status after poll = %+v", st)
	}
	etag := fleet.PatchETag(st.ReplicaEpoch, st.ReplicaVersion)
	req, _ := http.NewRequest(http.MethodGet, repTS.URL+"/v1/patches", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidating poll = %d, want 304", resp.StatusCode)
	}
	if got := rep.Status(); got.PatchNotModified != 1 || got.PatchRequests < 2 {
		t.Fatalf("hit counters = %d not-modified / %d requests", got.PatchNotModified, got.PatchRequests)
	}

	// Delta ring: a cursor inside the ring gets exactly the coordinator's
	// delta answer, stamped with the upstream version numbering. The
	// second wave indicts a *new* site so the patch log actually moves.
	firstVersion := st.ReplicaVersion
	feedSecondWave(t, ctx, partURL)
	if _, err := coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rep.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := rep.Status().ReplicaVersion; got <= firstVersion {
		t.Fatalf("replica version did not advance past %d (got %d)", firstVersion, got)
	}
	coordDelta := getBytes(t, coordTS.URL+"/v1/patches?since="+utoa(firstVersion))
	repDelta := getBytes(t, repTS.URL+"/v1/patches?since="+utoa(firstVersion))
	if !bytes.Equal(coordDelta, repDelta) {
		t.Fatalf("replica delta answer diverges:\ncoord:   %s\nreplica: %s", coordDelta, repDelta)
	}
}

func TestReplicaFollowsCoordinatorFailover(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()
	_, partURL := haPartition(t, cfg)
	feedCluster(t, ctx, 31, 8, partURL)

	primary, err := NewCoordinator(CoordinatorOptions{Partitions: []string{partURL}, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	primaryTS := httptest.NewServer(primary.Handler())
	defer primaryTS.Close()
	if _, err := primary.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	proxy, err := chaos.NewProxy(primaryTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	standby, err := NewCoordinator(CoordinatorOptions{
		Partitions: []string{partURL}, Config: cfg, Standby: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	standbyTS := httptest.NewServer(standby.Handler())
	defer standbyTS.Close()
	if _, err := standby.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}

	rep, err := NewReplica(ReplicaOptions{Upstreams: []string{proxy.URL(), standbyTS.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := rep.Status().ReplicaEpoch; got != primary.Epoch() {
		t.Fatalf("replica mirrors epoch %d, want primary's %d", got, primary.Epoch())
	}

	// Kill the primary, promote the standby: the next poll rotates and
	// adopts the promoted epoch.
	proxy.Drop()
	if err := standby.Promote(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rep.PollOnce(ctx); err != nil {
		t.Fatalf("post-failover poll: %v", err)
	}
	st := rep.Status()
	if st.ReplicaEpoch != standby.Epoch() {
		t.Fatalf("replica epoch %d after failover, want promoted %d", st.ReplicaEpoch, standby.Epoch())
	}
	if st.Upstream != strings.TrimRight(standbyTS.URL, "/") {
		t.Fatalf("replica upstream %q after failover, want %q", st.Upstream, standbyTS.URL)
	}

	// A zombie primary answering with its deposed epoch is rejected —
	// rotated away from, never cached.
	proxy.Restore()
	rep.mu.Lock()
	rep.active = 0 // point the replica back at the deposed primary
	rep.mu.Unlock()
	if err := rep.PollOnce(ctx); err == nil {
		t.Fatal("replica accepted a stale-epoch answer from the deposed primary")
	}
	if got := rep.Status(); got.ReplicaEpoch != standby.Epoch() {
		t.Fatalf("zombie answer changed the cached epoch to %d", got.ReplicaEpoch)
	}
	// ...and the rotation means the next poll succeeds against the new
	// primary without intervention.
	if err := rep.PollOnce(ctx); err != nil {
		t.Fatalf("poll after zombie rotation: %v", err)
	}
}

// getLease fetches and decodes GET /v1/lease.
func getLease(t *testing.T, base string) *fleet.LeaseReply {
	t.Helper()
	var lr fleet.LeaseReply
	getJSON(t, base+"/v1/lease", &lr)
	return &lr
}

// getJSON fetches url and decodes the 200 body into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, v)
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET = %d, want 200", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func utoa(v uint64) string { return strconv.FormatUint(v, 10) }
