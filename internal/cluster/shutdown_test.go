package cluster

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"exterminator/internal/cumulative"
	"exterminator/internal/fleet"
	"exterminator/internal/testutil"
)

// TestCoordinatorShutdownLeavesNoGoroutines runs the coordinator's
// background poll loop against a live partition, feeds it real
// observations, then cancels and requires every goroutine started
// during the test — the loop itself and the per-partition poll fan-out
// — to exit. Armed first so the leak check runs after all cleanups.
func TestCoordinatorShutdownLeavesNoGoroutines(t *testing.T) {
	testutil.VerifyNoLeaks(t)

	cfg := cumulative.DefaultConfig()
	srv := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	coord, err := NewCoordinator(CoordinatorOptions{Partitions: []string{ts.URL}, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}

	client := fleet.NewClient(ts.URL, "leak-test")
	if _, err := client.PushSnapshot(testBatch(rand.New(rand.NewSource(1)))); err != nil {
		t.Fatalf("push: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		coord.Run(ctx, time.Millisecond)
	}()

	// Make sure at least one full poll+correct pass happened before the
	// teardown, so the shutdown path is exercised with state in flight.
	if _, err := coord.Sync(ctx); err != nil {
		cancel()
		t.Fatalf("sync: %v", err)
	}

	cancel()
	select {
	case <-loopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator poll loop did not stop after cancel")
	}
}
