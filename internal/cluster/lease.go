package cluster

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"exterminator/internal/fleet"
)

// Coordinator high availability: a warm standby runs the same merge
// tier against the same partition journals — mirrors warm, cursors
// advancing — but gates its client-facing read/write surface behind a
// 503 until it holds the lease. Takeover is an epoch handoff, not a
// state transfer: the patch log is a pure function of the partition
// journals (a join-semilattice folded by maxima), so the standby's log
// converges to the primary's by construction and the only thing that
// must move is the *authority* to serve it. Authority is the epoch:
// every patch response is stamped with it, clients track the highest
// epoch they have integrated, and a promoted standby takes an epoch
// strictly above anything the old primary ever issued — a zombie
// primary keeps answering, but nobody believes it.

// leaseProbeDefault is the consecutive failed lease probes after which
// a standby with no explicit TakeoverAfter promotes itself.
const leaseProbeDefault = 3

// Primary reports whether this coordinator currently holds the lease
// (serves the patch/triage/report/rebalance surface).
func (c *Coordinator) Primary() bool { return c.primary.Load() }

// Epoch returns the incarnation stamp this coordinator puts in patch
// responses. It rises monotonically across failovers.
func (c *Coordinator) Epoch() uint64 { return c.epoch.Load() }

// Lease assembles the GET /v1/lease body.
func (c *Coordinator) Lease() *fleet.LeaseReply {
	return &fleet.LeaseReply{
		Epoch:        c.epoch.Load(),
		Holder:       c.holder,
		Primary:      c.primary.Load(),
		PatchVersion: c.log.Version(),
	}
}

// Promote makes a standby the primary. The epoch is bumped strictly
// above both wall-clock now and the highest epoch observed from the old
// primary's lease, any rebalance journal the old primary left mid-drain
// is re-driven, and a correction pass warms the patch log — then the
// gate opens and the first client poll is served current state. Calling
// Promote on a coordinator that is already primary is a no-op.
func (c *Coordinator) Promote(ctx context.Context) error {
	if c.primary.Swap(true) {
		return nil
	}
	epoch := uint64(time.Now().UnixNano())
	if seen := c.seenPrimaryEpoch.Load(); seen >= epoch {
		epoch = seen + 1
	}
	c.epoch.Store(epoch)
	c.metrics.failovers.Inc()
	c.metrics.primaryG.Set(1)
	c.logger.Info("promoted to primary", "epoch", epoch, "holder", c.holder)
	if c.rebalPath != "" {
		// The old primary may have died between drain and backfill; the
		// journal is shared state (operators point both coordinators at
		// the same file or a copy of it), so the re-drive is lossless
		// wherever the crash landed. A failed re-drive does not block
		// promotion — the operator retries with POST /v1/rebalance {}.
		if res, err := c.ResumeRebalance(ctx); err != nil {
			c.logger.Warn("rebalance re-drive failed after promotion", "error", err.Error())
		} else if res != nil {
			c.logger.Info("re-drove interrupted rebalance after promotion",
				"membershipVersion", res.Version, "movedKeys", res.MovedKeys)
		}
	}
	c.Correct()
	return nil
}

// probePrimary runs one standby lease probe against the primary. It
// tracks the primary's epoch (the floor a later promotion must clear)
// and counts consecutive failures; once the threshold is reached the
// standby promotes itself. Called from Run's standby branch only —
// probeFails needs no lock.
func (c *Coordinator) probePrimary(ctx context.Context) {
	if c.primaryClient == nil || c.primary.Load() {
		return
	}
	c.metrics.leaseProbes.Inc()
	lr, err := c.primaryClient.Lease(ctx)
	if err != nil {
		c.probeFails++
		c.metrics.leaseProbeErrs.Inc()
		c.logger.Warn("primary lease probe failed",
			"consecutiveFailures", c.probeFails, "takeoverAfter", c.takeoverAfter, "error", err.Error())
		if c.probeFails >= c.takeoverAfter {
			c.Promote(ctx)
		}
		return
	}
	c.probeFails = 0
	if lr.Epoch > c.seenPrimaryEpoch.Load() {
		c.seenPrimaryEpoch.Store(lr.Epoch)
	}
}

// handleLease serves GET /v1/lease (lease state) and POST /v1/lease
// (manual promotion — the operator's forced-failover lever; token-gated
// like every other write when the cluster is token-hardened).
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	reqID := fleet.EchoRequestID(w, r)
	switch r.Method {
	case http.MethodGet:
		c.logger.Debug("lease served", "requestId", reqID)
		fleet.WriteJSON(w, c.Lease())
	case http.MethodPost:
		if c.token != "" && !fleet.BearerAuthorized(r, c.token) {
			w.Header().Set("WWW-Authenticate", `Bearer realm="fleet"`)
			http.Error(w, "cluster: missing or invalid ingest token", http.StatusUnauthorized)
			return
		}
		if err := c.Promote(r.Context()); err != nil {
			http.Error(w, "cluster: promote: "+err.Error(), http.StatusInternalServerError)
			return
		}
		c.logger.Info("manual promotion via POST /v1/lease", "requestId", reqID)
		fleet.WriteJSON(w, c.Lease())
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// gatePrimary wraps a client-facing handler so a standby answers 503
// (with Retry-After) instead of serving or mutating state it does not
// own. Clients with the standby configured as a fallback rotate straight
// back to the primary; after a takeover the gate is open and the same
// rotation lands here.
func (c *Coordinator) gatePrimary(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !c.primary.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("cluster: %s is standing by (not primary)", c.holder),
				http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}
