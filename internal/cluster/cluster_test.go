package cluster

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/engine"
	"exterminator/internal/fleet"
	"exterminator/internal/report"
	"exterminator/internal/site"
)

const (
	guiltySite  = site.ID(0xBAD)
	guiltyPad   = uint32(24)
	guiltyAlloc = site.ID(0xDA)
	guiltyFree  = site.ID(0xDF)
	guiltyDefer = uint64(128)
)

// testBatch builds one installation's upload: strong evidence for the
// guilty overflow site and dangling pair, chance-consistent noise for a
// crowd of innocent sites. Hints are constant so the derived patch set
// is identical no matter how many correction passes interleave.
func testBatch(rng *rand.Rand) *cumulative.Snapshot {
	s := &cumulative.Snapshot{C: 4, P: 0.5, Runs: 3, FailedRuns: 1, CorruptRuns: 1}
	seen := map[site.ID]bool{guiltySite: true, guiltyAlloc: true}
	s.Sites = append(s.Sites, guiltySite, guiltyAlloc)
	for i := 0; i < 40; i++ {
		id := site.ID(0x1000 + uint32(rng.Intn(200)))
		if !seen[id] {
			seen[id] = true
			s.Sites = append(s.Sites, id)
		}
		x := 0.05 + 0.4*rng.Float64()
		s.Overflow = append(s.Overflow, cumulative.SiteObservations{
			Site: id,
			Obs:  []cumulative.Observation{{X: x, Y: rng.Float64() < x}},
		})
	}
	s.Overflow = append(s.Overflow, cumulative.SiteObservations{
		Site: guiltySite,
		Obs:  []cumulative.Observation{{X: 0.1, Y: true}, {X: 0.15, Y: true}},
	})
	s.PadHints = append(s.PadHints, cumulative.PadHint{Site: guiltySite, Pad: guiltyPad})
	s.Dangling = append(s.Dangling, cumulative.PairObservations{
		Alloc: guiltyAlloc, Free: guiltyFree,
		Obs: []cumulative.Observation{{X: 0.5, Y: true}, {X: 0.5, Y: true}},
	})
	for i := 0; i < 5; i++ {
		s.Dangling = append(s.Dangling, cumulative.PairObservations{
			Alloc: site.ID(0x2000 + uint32(rng.Intn(20))), Free: site.ID(0x3000 + uint32(i)),
			Obs: []cumulative.Observation{{X: 0.75, Y: rng.Float64() < 0.75}},
		})
	}
	s.DeferralHints = append(s.DeferralHints, cumulative.DeferralHint{
		Alloc: guiltyAlloc, Free: guiltyFree, Deferral: guiltyDefer,
	})
	return s
}

func canonicalPatchBytes(t *testing.T, log *fleet.PatchLog) []byte {
	t.Helper()
	ps, _ := log.Full()
	var buf bytes.Buffer
	if err := fleet.EncodePatchSet(&buf, ps, 0); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestClusterConvergesWithSingleFleetd is the end-to-end acceptance
// test: three partition servers plus a coordinator, fed the identical
// observation stream as one single-node fleetd, must publish the
// byte-identical canonicalized patch set.
func TestClusterConvergesWithSingleFleetd(t *testing.T) {
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()

	single := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()
	singleClient := fleet.NewClient(singleTS.URL, "single")

	var partURLs []string
	var partServers []*fleet.Server
	for i := 0; i < 3; i++ {
		srv := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		partServers = append(partServers, srv)
		partURLs = append(partURLs, ts.URL)
	}
	router, err := NewRouter("routed", partURLs...)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorOptions{Partitions: partURLs, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		batch := testBatch(rng)
		if _, err := singleClient.PushSnapshot(batch); err != nil {
			t.Fatalf("single push: %v", err)
		}
		if _, err := router.PushSnapshot(ctx, batch); err != nil {
			t.Fatalf("routed push: %v", err)
		}
		if i%10 == 5 {
			// Interleave correction passes: the patch log folds by
			// maxima, so mid-stream passes must not change the outcome.
			single.Correct()
			if _, err := coord.Sync(ctx); err != nil {
				t.Fatalf("mid-stream sync: %v", err)
			}
		}
	}
	single.Correct()
	if _, err := coord.Sync(ctx); err != nil {
		t.Fatalf("final sync: %v", err)
	}

	// Every partition holds a strict subset of the sites...
	total := 0
	for i, srv := range partServers {
		n := srv.Store().Sites()
		if n == 0 {
			t.Fatalf("partition %d received no evidence — ring routed nothing to it", i)
		}
		if n == single.Store().Sites() {
			t.Fatalf("partition %d holds every site — batches were not split", i)
		}
		total += n
	}
	// ...and the partitions are disjoint: their site counts sum to the total.
	if total != single.Store().Sites() {
		t.Fatalf("partition sites sum to %d, single store has %d", total, single.Store().Sites())
	}

	singleBytes := canonicalPatchBytes(t, single.PatchLog())
	clusterBytes := canonicalPatchBytes(t, coord.PatchLog())
	if !bytes.Equal(singleBytes, clusterBytes) {
		t.Fatalf("cluster patch set diverged from single fleetd:\nsingle:  %s\ncluster: %s", singleBytes, clusterBytes)
	}
	ps, _ := coord.PatchLog().Full()
	if ps.Pad(guiltySite) != guiltyPad {
		t.Fatalf("guilty overflow not patched: %v", ps)
	}
	if ps.Deferral(site.Pair{Alloc: guiltyAlloc, Free: guiltyFree}) != guiltyDefer {
		t.Fatalf("guilty dangling pair not patched: %v", ps)
	}

	// Run counters: each batch's counters ride exactly one partition, so
	// the coordinator's totals match the single store's.
	st := coord.Status()
	if st.Runs != single.Store().Runs() || st.CorruptRuns != single.Store().CorruptRuns() {
		t.Fatalf("coordinator counters (runs=%d corrupt=%d) != single (runs=%d corrupt=%d)",
			st.Runs, st.CorruptRuns, single.Store().Runs(), single.Store().CorruptRuns())
	}

	// An unmodified fleet.Client polls the coordinator like any fleetd.
	coordTS := httptest.NewServer(coord.Handler())
	defer coordTS.Close()
	poller := fleet.NewClient(coordTS.URL, "poller")
	got, _, err := poller.Patches(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pad(guiltySite) != guiltyPad {
		t.Fatalf("fleet.Client poll against coordinator returned %v", got)
	}
	// ...including report uploads, which the client gzips by default.
	if err := poller.PushReport(report.FromPatches(got, nil)); err != nil {
		t.Fatalf("gzip report upload to coordinator: %v", err)
	}
	if coord.Status().Reports != 1 {
		t.Fatalf("coordinator retained %d reports, want 1", coord.Status().Reports)
	}
}

// swappable lets a test "restart" a partition behind a stable URL.
type swappable struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swappable) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swappable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

// TestCoordinatorIdempotentUnderPartitionRestart: a partition restarting
// from its snapshot (same evidence, new epoch, reset journal) must not
// change the coordinator's merged totals or patch set, no matter how
// often it re-polls.
func TestCoordinatorIdempotentUnderPartitionRestart(t *testing.T) {
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()

	sw := &swappable{}
	srv1 := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
	sw.set(srv1.Handler())
	ts := httptest.NewServer(sw)
	defer ts.Close()

	coord, err := NewCoordinator(CoordinatorOptions{Partitions: []string{ts.URL}, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}

	client := fleet.NewClient(ts.URL, "c1")
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		if _, err := client.PushSnapshot(testBatch(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	wantRuns := coord.Status().Runs
	wantPatches := canonicalPatchBytes(t, coord.PatchLog())
	if wantRuns == 0 || len(coord.Status().Partitions) != 1 {
		t.Fatalf("bad pre-restart state: %+v", coord.Status())
	}

	// Restart the partition through the real fleetd path: persist the
	// snapshot, then restore it into a fresh server (new epoch, journal
	// invalidated so delta cursors cannot skip the restored evidence).
	snapPath := filepath.Join(t.TempDir(), "part.snap")
	if err := srv1.SaveSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	srv2 := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
	if err := srv2.LoadSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	sw.set(srv2.Handler())

	for round := 0; round < 3; round++ {
		if _, err := coord.Sync(ctx); err != nil {
			t.Fatalf("post-restart sync %d: %v", round, err)
		}
		st := coord.Status()
		if st.Runs != wantRuns {
			t.Fatalf("sync %d after restart double-counted: runs %d, want %d", round, st.Runs, wantRuns)
		}
		if got := canonicalPatchBytes(t, coord.PatchLog()); !bytes.Equal(got, wantPatches) {
			t.Fatalf("sync %d after restart changed the patch set", round)
		}
	}
	if coord.Status().Resyncs == 0 {
		t.Fatal("coordinator never detected the restart (no full resync)")
	}

	// New evidence uploaded to the restarted partition still flows — and
	// enough of it that the new incarnation's journal seq climbs past the
	// coordinator's stale cursor, exercising the cross-epoch refetch path
	// (a naive delta there would drop the snapshot-restored evidence).
	for i := 0; i < 35; i++ {
		if _, err := client.PushSnapshot(testBatch(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := coord.Status().Runs; got != wantRuns+35*3 {
		t.Fatalf("post-restart evidence lost or duplicated: runs %d, want %d", got, wantRuns+35*3)
	}
}

// TestClusterSinkPartialPushNoDoubleCount: with one partition down, the
// sink marks the delivered pieces uploaded immediately; retries re-send
// only the missing piece, so no partition ever absorbs the same
// evidence twice.
func TestClusterSinkPartialPushNoDoubleCount(t *testing.T) {
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()

	up := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
	upTS := httptest.NewServer(up.Handler())
	defer upTS.Close()

	down := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
	downSW := &swappable{}
	outage := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "outage", http.StatusBadGateway)
	})
	downSW.set(outage)
	downTS := httptest.NewServer(downSW)
	defer downTS.Close()

	sink, err := NewSink(upTS.URL /* coordinator unused: no derived patches */, "partial", upTS.URL, downTS.URL)
	if err != nil {
		t.Fatal(err)
	}

	hist := cumulative.NewHistory(cfg)
	hist.Absorb(testBatch(rand.New(rand.NewSource(41))))
	ev := &engine.Evidence{History: hist}

	if err := sink.Commit(ctx, ev); err == nil {
		t.Fatal("commit with a dead partition must report the failure")
	}
	upBatches := up.Store().Batches()
	if upBatches == 0 {
		t.Fatal("healthy partition received nothing")
	}

	// Retry while the partition is still down: the healthy partition's
	// pieces are already watermarked, so it must receive nothing new.
	if err := sink.Commit(ctx, ev); err == nil {
		t.Fatal("second commit should still fail")
	}
	if got := up.Store().Batches(); got != upBatches {
		t.Fatalf("retry re-sent delivered pieces: batches %d -> %d", upBatches, got)
	}

	// Partition recovers: the third commit delivers only its piece.
	downSW.set(down.Handler())
	if err := sink.Commit(ctx, ev); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	if got := up.Store().Batches(); got != upBatches {
		t.Fatalf("recovery commit re-sent healthy partition's pieces: batches %d -> %d", upBatches, got)
	}

	// Exactly-once across the cluster: merging both partitions
	// reproduces the history's canonical evidence with no duplication.
	merged := cumulative.NewHistory(cfg)
	merged.Absorb(up.Store().Combined().Snapshot())
	merged.Absorb(down.Store().Combined().Snapshot())
	merged.Canonicalize()
	want := cumulative.NewHistory(cfg)
	want.Absorb(hist.Snapshot())
	want.Canonicalize()
	if !merged.Equal(want) {
		t.Fatalf("cluster evidence diverged from the history: %s vs %s", merged, want)
	}

	// Nothing left to upload.
	if d := hist.UploadDelta(); !cumulative.DeltaEmpty(d) {
		t.Fatalf("watermark incomplete after full delivery: %+v", d)
	}
}

// TestSplitSnapshotPartitionsEvidence: the split is a partition of the
// batch — reassembling the pieces reproduces the original evidence, each
// key lands on the ring owner, and run counters appear exactly once.
func TestSplitSnapshotPartitionsEvidence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := testBatch(rng)
	ring := NewRing(0, "p1", "p2", "p3", "p4")
	parts := SplitSnapshot(ring, s)
	if len(parts) < 2 {
		t.Fatalf("split produced %d piece(s), want several", len(parts))
	}

	runs, failed := 0, 0
	reassembled := cumulative.NewHistory(cumulative.DefaultConfig())
	for node, p := range parts {
		runs += p.Runs
		failed += p.FailedRuns
		for _, so := range p.Overflow {
			if ring.Owner(so.Site) != node {
				t.Fatalf("overflow key %v on %s, owner is %s", so.Site, node, ring.Owner(so.Site))
			}
		}
		for _, po := range p.Dangling {
			if ring.Owner(po.Alloc) != node {
				t.Fatalf("dangling key %v on %s, owner is %s", po.Alloc, node, ring.Owner(po.Alloc))
			}
		}
		reassembled.Absorb(p)
	}
	if runs != s.Runs || failed != s.FailedRuns {
		t.Fatalf("run counters duplicated or dropped: got %d/%d, want %d/%d", runs, failed, s.Runs, s.FailedRuns)
	}

	direct := cumulative.NewHistory(cumulative.DefaultConfig())
	direct.Absorb(s)
	if !reassembled.Equal(direct) {
		t.Fatal("reassembled pieces differ from absorbing the whole batch")
	}
}

// TestCoordinatorToleratesPartitionOutage: an unreachable partition only
// delays its own evidence; the others keep flowing, and the laggard
// catches up once it returns.
func TestCoordinatorToleratesPartitionOutage(t *testing.T) {
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()

	up := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
	upTS := httptest.NewServer(up.Handler())
	defer upTS.Close()

	down := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
	downSW := &swappable{}
	downSW.set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "outage", http.StatusBadGateway)
	}))
	downTS := httptest.NewServer(downSW)
	defer downTS.Close()

	coord, err := NewCoordinator(CoordinatorOptions{Partitions: []string{upTS.URL, downTS.URL}, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(31))
	upClient := fleet.NewClient(upTS.URL, "up")
	downClient := fleet.NewClient(downTS.URL, "down")
	for i := 0; i < 5; i++ {
		if _, err := upClient.PushSnapshot(testBatch(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := coord.Sync(ctx); err == nil {
		t.Fatal("sync with a dead partition should surface its error")
	}
	if got := coord.Status().Runs; got != 15 {
		t.Fatalf("healthy partition's evidence missing: runs %d, want 15", got)
	}

	// Partition recovers with its own evidence.
	downSW.set(down.Handler())
	if _, err := downClient.PushSnapshot(testBatch(rng)); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := coord.Status().Runs; got != 18 {
		t.Fatalf("recovered partition's evidence missing: runs %d, want 18", got)
	}
}
