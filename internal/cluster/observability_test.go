package cluster

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/fleet"
	"exterminator/internal/site"
	"exterminator/internal/telemetry"
)

// logSink is a goroutine-safe slog destination.
type logSink struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *logSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *logSink) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func sampleValue(body, name string) string {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return rest
		}
	}
	return ""
}

// TestUploadCorrelationAcrossTiers is the end-to-end observability
// check: ONE client upload must (a) increment the partition's ingest
// metrics, (b) increment the coordinator's delta-ingest metrics after a
// poll, and (c) appear under the SAME correlation ID in the partition's
// log and the coordinator's log — the grep-one-ID-across-three-tiers
// property the telemetry layer exists for.
func TestUploadCorrelationAcrossTiers(t *testing.T) {
	ctx := context.Background()

	var partLog, coordLog logSink
	partReg := telemetry.NewRegistry()
	part := fleet.NewServer(fleet.ServerOptions{
		CorrectEvery:      -1,
		DisableCorrection: true,
		Metrics:           partReg,
		Logger:            slog.New(slog.NewTextHandler(&partLog, nil)),
	})
	partTS := httptest.NewServer(part.Handler())
	defer partTS.Close()

	coordReg := telemetry.NewRegistry()
	coord, err := NewCoordinator(CoordinatorOptions{
		Partitions: []string{partTS.URL},
		Metrics:    coordReg,
		Logger:     slog.New(slog.NewTextHandler(&coordLog, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(coord.Handler())
	defer coordTS.Close()

	// One upload from one client, through the instrumented fleet client.
	c := fleet.NewClient(partTS.URL, "e2e-install")
	snap := &cumulative.Snapshot{C: 4, P: 0.5, Runs: 2}
	snap.Sites = append(snap.Sites, site.ID(0x900))
	snap.Overflow = append(snap.Overflow, cumulative.SiteObservations{
		Site: site.ID(0x900),
		Obs:  []cumulative.Observation{{X: 0.25, Y: false}, {X: 0.5, Y: true}},
	})
	reply, err := c.PushSnapshotContext(ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	reqID := reply.RequestID
	if reqID == "" {
		t.Fatal("upload reply carries no correlation ID")
	}

	// Coordinator mirrors the partition.
	if _, err := coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// (a) Partition ingest metrics.
	partMetrics := getBody(t, partTS.URL+"/metrics")
	if got := sampleValue(partMetrics, "fleet_ingest_batches_total"); got != "1" {
		t.Errorf("partition fleet_ingest_batches_total = %q, want 1", got)
	}
	if got := sampleValue(partMetrics, "fleet_ingest_observations_total"); got != "2" {
		t.Errorf("partition fleet_ingest_observations_total = %q, want 2", got)
	}

	// (b) Coordinator ingest metrics, served from its own /metrics route.
	coordMetrics := getBody(t, coordTS.URL+"/metrics")
	if got := sampleValue(coordMetrics, "cluster_deltas_applied_total"); got != "1" {
		t.Errorf("coordinator cluster_deltas_applied_total = %q, want 1", got)
	}
	if got := sampleValue(coordMetrics, "cluster_delta_observations_total"); got != "2" {
		t.Errorf("coordinator cluster_delta_observations_total = %q, want 2", got)
	}
	if got := sampleValue(coordMetrics, "cluster_polls_total"); got != "1" {
		t.Errorf("coordinator cluster_polls_total = %q, want 1", got)
	}
	if !regexp.MustCompile(`cluster_partition_seq\{partition="[^"]+"\} 1`).MatchString(coordMetrics) {
		t.Errorf("coordinator missing cluster_partition_seq series:\n%s", coordMetrics)
	}

	// (c) The same correlation ID in both logs.
	if !strings.Contains(partLog.String(), reqID) {
		t.Errorf("partition log does not carry correlation ID %s:\n%s", reqID, partLog.String())
	}
	if !strings.Contains(coordLog.String(), reqID) {
		t.Errorf("coordinator log does not carry correlation ID %s:\n%s", reqID, coordLog.String())
	}
}

// TestRebalanceMetrics: a completed add-node rebalance shows up in the
// phase histograms, the moved-key counter and the outcome counter.
func TestRebalanceMetrics(t *testing.T) {
	ctx := context.Background()
	cfg := cumulative.Config{C: 4, P: 0.5}

	mk := func() (*fleet.Server, *httptest.Server) {
		srv := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1, DisableCorrection: true})
		return srv, httptest.NewServer(srv.Handler())
	}
	_, ts1 := mk()
	defer ts1.Close()
	_, ts2 := mk()
	defer ts2.Close()

	reg := telemetry.NewRegistry()
	coord, err := NewCoordinator(CoordinatorOptions{
		Partitions: []string{ts1.URL},
		Config:     cfg,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Seed evidence across many keys so the resize moves some.
	rt, err := NewRouter("seed", ts1.URL)
	if err != nil {
		t.Fatal(err)
	}
	snap := &cumulative.Snapshot{C: 4, P: 0.5, Runs: 1}
	for i := 0; i < 64; i++ {
		id := site.ID(0x2000 + uint32(i))
		snap.Sites = append(snap.Sites, id)
		snap.Overflow = append(snap.Overflow, cumulative.SiteObservations{
			Site: id, Obs: []cumulative.Observation{{X: 0.25, Y: false}},
		})
	}
	if _, err := rt.PushSnapshot(ctx, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	res, err := coord.AddNode(ctx, ts2.URL)
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedKeys == 0 {
		t.Fatal("rebalance moved no keys; metric assertions would be vacuous")
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	if got := sampleValue(body, `cluster_rebalances_total{outcome="done"}`); got != "1" {
		t.Errorf(`cluster_rebalances_total{outcome="done"} = %q, want 1`, got)
	}
	if got := sampleValue(body, "cluster_rebalance_moved_keys_total"); got == "" || got == "0" {
		t.Errorf("cluster_rebalance_moved_keys_total = %q, want > 0", got)
	}
	for _, phase := range []string{"announce", "drain", "commit"} {
		if !strings.Contains(body, `cluster_rebalance_phase_seconds_count{phase="`+phase+`"} 1`) {
			t.Errorf("missing phase histogram for %q:\n%s", phase, body)
		}
	}
}

// TestScrapeDuringMembershipChange pins the lock-order fix: exposition
// scrapes hammering the registry must never deadlock against a
// membership change that registers new per-partition series while
// holding the coordinator's state lock. (The old ABBA: WriteText held
// the registry lock while gauge funcs took the coordinator lock, and
// newPartition took the two in the opposite order — one scrape
// concurrent with one add-node could hang the coordinator forever.)
// It also pins the mirrored merged-history gauges: the values must be
// current in the scrape without the exposition path touching c.mu.
func TestScrapeDuringMembershipChange(t *testing.T) {
	ctx := context.Background()
	cfg := cumulative.Config{C: 4, P: 0.5}

	mk := func() *httptest.Server {
		srv := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1, DisableCorrection: true})
		return httptest.NewServer(srv.Handler())
	}
	ts1 := mk()
	defer ts1.Close()
	ts2 := mk()
	defer ts2.Close()

	reg := telemetry.NewRegistry()
	coord, err := NewCoordinator(CoordinatorOptions{
		Partitions: []string{ts1.URL},
		Config:     cfg,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	rt, err := NewRouter("seed", ts1.URL)
	if err != nil {
		t.Fatal(err)
	}
	snap := &cumulative.Snapshot{C: 4, P: 0.5, Runs: 1}
	for i := 0; i < 64; i++ {
		id := site.ID(0x3000 + uint32(i))
		snap.Sites = append(snap.Sites, id)
		snap.Overflow = append(snap.Overflow, cumulative.SiteObservations{
			Site: id, Obs: []cumulative.Observation{{X: 0.25, Y: false}},
		})
	}
	if _, err := rt.PushSnapshot(ctx, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// Scrape continuously while the rebalance registers the new node's
	// series. Before the fix this pair could deadlock; the test would
	// then hang until the go test timeout.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var b strings.Builder
			if err := reg.WriteText(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	_, rebErr := coord.AddNode(ctx, ts2.URL)
	close(done)
	wg.Wait()
	if rebErr != nil {
		t.Fatal(rebErr)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	if got := sampleValue(body, "cluster_partitions"); got != "2" {
		t.Errorf("cluster_partitions = %q, want 2", got)
	}
	if got := sampleValue(body, "cluster_merged_sites"); got != "64" {
		t.Errorf("cluster_merged_sites = %q, want 64", got)
	}
	if got := sampleValue(body, "cluster_merged_runs"); got != "1" {
		t.Errorf("cluster_merged_runs = %q, want 1", got)
	}
	// runRebalance ends with a Correct(), which clears the dirty set and
	// re-mirrors the gauge.
	if got := sampleValue(body, "cluster_dirty_keys"); got != "0" {
		t.Errorf("cluster_dirty_keys = %q, want 0", got)
	}
}
