package cluster

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/fleet"
	"exterminator/internal/report"
	"exterminator/internal/site"
	"exterminator/internal/triage"
)

// guiltyFrames is the synthetic call stack uploaded for the guilty
// overflow site, outermost first. Its innermost suffix drives
// signature-keyed clustering on both tiers.
var guiltyFrames = []uint64{0x10, 0x20, 0x30, 0x40}

// triageReport is the bug report both tiers ingest before their first
// correction pass: it carries the stack provenance triage clusters by.
func triageReport() *report.Report {
	return &report.Report{Findings: []report.Finding{{
		Kind:  "buffer-overflow",
		Title: "heap buffer overflow from allocation site 0xbad",
		Sites: []report.SiteTrace{{Site: guiltySite, Role: "alloc", Frames: guiltyFrames}},
	}, {
		Kind:  "dangling-pointer",
		Title: "premature free",
		Sites: []report.SiteTrace{
			{Site: guiltyAlloc, Role: "alloc", Frames: []uint64{0x11, 0x22, 0x33}},
			{Site: guiltyFree, Role: "free"},
		},
	}}}
}

func getBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTriageRankingsConvergeWithSingleFleetd is the triage acceptance
// test: three partitions plus a coordinator, fed the identical evidence
// and bug-report stream as one single-node fleetd, must serve
// byte-identical GET /v1/triage rankings and cluster details. Pooled
// Bayes factors, lifecycle fields and pagination all ride the wire, so
// byte equality pins the whole pipeline — sharding must be invisible to
// triage consumers.
func TestTriageRankingsConvergeWithSingleFleetd(t *testing.T) {
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()

	single := fleet.NewServer(fleet.ServerOptions{Config: cfg, CorrectEvery: -1})
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()
	singleClient := fleet.NewClient(singleTS.URL, "single")

	var partURLs []string
	for i := 0; i < 3; i++ {
		srv := fleet.NewServer(fleet.ServerOptions{
			Config: cfg, CorrectEvery: -1, DisableCorrection: true,
		})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		partURLs = append(partURLs, ts.URL)
	}
	router, err := NewRouter("routed", partURLs...)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorOptions{Partitions: partURLs, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(coord.Handler())
	defer coordTS.Close()

	// Identical evidence stream to both tiers.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		batch := testBatch(rng)
		if _, err := singleClient.PushSnapshot(batch); err != nil {
			t.Fatalf("single push: %v", err)
		}
		if _, err := router.PushSnapshot(ctx, batch); err != nil {
			t.Fatalf("routed push: %v", err)
		}
	}
	// Identical stack provenance to both tiers, before the first pass,
	// so signature keying (not the site-hash fallback) is exercised.
	if err := singleClient.PushReport(triageReport()); err != nil {
		t.Fatalf("single report: %v", err)
	}
	if err := fleet.NewClient(coordTS.URL, "reporter").PushReport(triageReport()); err != nil {
		t.Fatalf("coordinator report: %v", err)
	}

	// Exactly one correction (= one triage pass) on each tier, so pass
	// counters and firstPass/lastPass fields line up.
	single.Correct()
	if _, err := coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	singleRank := getBytes(t, singleTS.URL+"/v1/triage?limit=200")
	coordRank := getBytes(t, coordTS.URL+"/v1/triage?limit=200")
	if !bytes.Equal(singleRank, coordRank) {
		t.Fatalf("triage rankings diverged:\nsingle:  %s\ncluster: %s", singleRank, coordRank)
	}

	// The ranking is non-trivial and the guilty overflow clusters by
	// signature (the uploaded stack), not by site hash.
	rank, err := fleet.NewClient(coordTS.URL, "poller").TriageRankings(ctx, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rank.Total == 0 || len(rank.Clusters) == 0 {
		t.Fatal("empty triage ranking after 40 batches")
	}
	var sigCluster string
	for _, c := range rank.Clusters {
		if c.Kind == "overflow" && strings.Contains(c.ID, "-sig-") {
			sigCluster = c.ID
			break
		}
	}
	if sigCluster == "" {
		t.Fatalf("no signature-keyed overflow cluster in %+v", rank.Clusters)
	}

	// Every cluster's detail body is byte-identical too.
	for _, c := range rank.Clusters {
		sd := getBytes(t, singleTS.URL+"/v1/triage/"+c.ID)
		cd := getBytes(t, coordTS.URL+"/v1/triage/"+c.ID)
		if !bytes.Equal(sd, cd) {
			t.Fatalf("detail diverged for %s:\nsingle:  %s\ncluster: %s", c.ID, sd, cd)
		}
	}
}

// TestAlertExactlyOnceAcrossSnapshotRestart pins the webhook guarantee:
// a fired alert survives a coordinator kill/restart in the fired map
// (no duplicate), and an armed-but-undelivered alert survives in the
// pending queue (no loss) — delivered exactly once overall.
func TestAlertExactlyOnceAcrossSnapshotRestart(t *testing.T) {
	ctx := context.Background()
	var posts atomic.Int64
	webhook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
	}))
	defer webhook.Close()

	part := fleet.NewServer(fleet.ServerOptions{CorrectEvery: -1, DisableCorrection: true})
	partTS := httptest.NewServer(part.Handler())
	defer partTS.Close()

	opts := CoordinatorOptions{
		Partitions: []string{partTS.URL},
		Triage:     triage.Config{Alert: triage.AlertConfig{URL: webhook.URL, MinOccurrences: 1}},
	}
	snapPath := filepath.Join(t.TempDir(), "coord.xcsn")

	newCoord := func() *Coordinator {
		c, err := NewCoordinator(opts)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Evidence that produces at least one candidate (obs >= 1 arms the
	// MinOccurrences=1 trigger).
	snap := &cumulative.Snapshot{C: 4, P: 0.5, Runs: 2, Sites: []site.ID{0x900}}
	snap.Overflow = append(snap.Overflow, cumulative.SiteObservations{
		Site: 0x900,
		Obs:  []cumulative.Observation{{X: 0.25, Y: true}, {X: 0.5, Y: true}},
	})
	if _, err := fleet.NewClient(partTS.URL, "inst").PushSnapshot(snap); err != nil {
		t.Fatal(err)
	}

	// Incarnation 1: arm and deliver.
	c1 := newCoord()
	if _, err := c1.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if n := c1.Triage().DeliverAlerts(ctx); n != 1 {
		t.Fatalf("incarnation 1 delivered %d alerts, want 1", n)
	}
	if posts.Load() != 1 {
		t.Fatalf("webhook POSTs = %d, want 1", posts.Load())
	}
	if err := c1.SaveSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}

	// Incarnation 2: the restored fired map suppresses re-arming even
	// though LoadSnapshot's warm-up pass sees the same crossing again.
	c2 := newCoord()
	if err := c2.LoadSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	if p := c2.Triage().PendingAlerts(); p != 0 {
		t.Fatalf("restart resurrected %d pending alerts", p)
	}
	c2.Triage().DeliverAlerts(ctx)
	if _, err := c2.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	c2.Triage().DeliverAlerts(ctx)
	if posts.Load() != 1 {
		t.Fatalf("delivered alert re-fired after restart: POSTs = %d", posts.Load())
	}

	// Incarnation 3: arm but crash before delivery. The pending queue
	// rides the snapshot and delivers exactly once after restart.
	c3 := newCoord()
	if _, err := c3.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if p := c3.Triage().PendingAlerts(); p != 1 {
		t.Fatalf("incarnation 3 pending = %d, want 1", p)
	}
	snapPath2 := filepath.Join(t.TempDir(), "coord2.xcsn")
	if err := c3.SaveSnapshot(snapPath2); err != nil {
		t.Fatal(err)
	}

	c4 := newCoord()
	if err := c4.LoadSnapshot(snapPath2); err != nil {
		t.Fatal(err)
	}
	if p := c4.Triage().PendingAlerts(); p != 1 {
		t.Fatalf("restored pending = %d, want 1", p)
	}
	if n := c4.Triage().DeliverAlerts(ctx); n != 1 {
		t.Fatalf("incarnation 4 delivered %d, want 1", n)
	}
	c4.Triage().DeliverAlerts(ctx)
	if posts.Load() != 2 {
		t.Fatalf("total webhook POSTs = %d, want 2 (one per armed crossing)", posts.Load())
	}
}

var reqIDRe = regexp.MustCompile(`requestId=([0-9a-f]{16})`)

// TestReadPathCorrelationAcrossTiers pins satellite read-path
// correlation: a fleet.Client GET mints an X-Request-ID, and the same
// ID appears in the client's log and the serving tier's log — including
// the coordinator's own delta polls against partitions, so one grep
// follows a read across tiers.
func TestReadPathCorrelationAcrossTiers(t *testing.T) {
	ctx := context.Background()
	debugHandler := func(w io.Writer) *slog.Logger {
		return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}

	var partLog, coordLog, clientLog logSink
	part := fleet.NewServer(fleet.ServerOptions{
		CorrectEvery: -1, DisableCorrection: true, Logger: debugHandler(&partLog),
	})
	partTS := httptest.NewServer(part.Handler())
	defer partTS.Close()

	coord, err := NewCoordinator(CoordinatorOptions{
		Partitions: []string{partTS.URL}, Logger: debugHandler(&coordLog),
	})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(coord.Handler())
	defer coordTS.Close()

	poller := fleet.NewClient(coordTS.URL, "poller")
	poller.SetLogger(debugHandler(&clientLog))

	// Client → coordinator: the patch poll's ID appears on both sides.
	if _, _, err := poller.PatchesContext(ctx, 0); err != nil {
		t.Fatal(err)
	}
	var patchID string
	for _, line := range strings.Split(clientLog.String(), "\n") {
		if strings.Contains(line, "/v1/patches") {
			if m := reqIDRe.FindStringSubmatch(line); m != nil {
				patchID = m[1]
			}
		}
	}
	if patchID == "" {
		t.Fatalf("client log has no request ID for the patch poll:\n%s", clientLog.String())
	}
	if !strings.Contains(coordLog.String(), patchID) {
		t.Fatalf("coordinator log does not mention client request %s:\n%s", patchID, coordLog.String())
	}

	// Coordinator → partition: the delta poll's ID appears in the
	// coordinator's (client-side) log and the partition's (server-side)
	// log.
	if _, err := coord.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	var deltaID string
	for _, line := range strings.Split(partLog.String(), "\n") {
		if strings.Contains(line, "deltas served") {
			if m := reqIDRe.FindStringSubmatch(line); m != nil {
				deltaID = m[1]
			}
		}
	}
	if deltaID == "" {
		t.Fatalf("partition log has no request ID for the delta poll:\n%s", partLog.String())
	}
	if !strings.Contains(coordLog.String(), deltaID) {
		t.Fatalf("coordinator log does not mention its own delta request %s:\n%s", deltaID, coordLog.String())
	}

	// Triage reads echo the ID back to the caller.
	req, _ := http.NewRequest(http.MethodGet, coordTS.URL+"/v1/triage", nil)
	req.Header.Set(fleet.RequestIDHeader, "feedfacefeedface")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(fleet.RequestIDHeader); got != "feedfacefeedface" {
		t.Fatalf("triage read echoed %q, want the caller's ID", got)
	}
}
