package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"exterminator/internal/cumulative"
)

// Coordinator snapshot persistence: the merge tier's state is exactly
// its per-partition mirrors plus the journal cursor (seq, epoch) each
// mirror is valid at — the merged history and the patch log are pure
// functions of the mirrors, so persisting mirrors+cursors is enough to
// restart a coordinator without re-pulling (or worse, double-absorbing)
// every partition's full evidence. On restore the merged history is
// rebuilt from the mirrors and a correction pass re-derives the patch
// log; polling then resumes from the persisted cursors, so partitions
// that kept running answer with cheap deltas instead of full resyncs.
// This closes the ROADMAP "coordinator snapshot persistence" item.

const (
	coordSnapMagic   = 0x4E534358 // "XCSN" little-endian
	coordSnapVersion = 3
	maxSnapParts     = 1 << 12
	maxMirrorBytes   = 1 << 30
	maxAlertBytes    = 1 << 26
)

// SaveSnapshot writes the coordinator's membership (version 2: the ring
// version and node list, so a restarted coordinator keeps the
// rebalanced topology and its monotonic version even when the operator's
// flag list is stale), mirrors, cursors and the triage alerter's
// exactly-once state (version 3: fired records and the undelivered
// queue, so a restart neither re-fires a webhook already sent nor drops
// one still pending) to path (write-to-temp, then rename — a crash
// mid-write never corrupts the previous snapshot).
func (c *Coordinator) SaveSnapshot(path string) error {
	ringVersion, nodes := c.ring.Membership()
	alerts, err := c.triage.AlertState()
	if err != nil {
		return fmt.Errorf("cluster: snapshot: %w", err)
	}
	c.mu.Lock()
	type entry struct {
		base       string
		seq, epoch uint64
		mirror     []byte
	}
	entries := make([]entry, 0, len(c.parts))
	for _, p := range c.parts {
		var buf bytes.Buffer
		if err = p.mirror.Encode(&buf); err != nil {
			break
		}
		entries = append(entries, entry{base: p.base, seq: p.seq, epoch: p.epoch, mirror: buf.Bytes()})
	}
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("cluster: snapshot: %w", err)
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".coord-snap-*")
	if err != nil {
		return fmt.Errorf("cluster: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	u32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	u64 := func(v uint64) { binary.Write(bw, binary.LittleEndian, v) }
	u32(coordSnapMagic)
	u32(coordSnapVersion)
	u64(ringVersion)
	u32(uint32(len(nodes)))
	for _, n := range nodes {
		u32(uint32(len(n)))
		bw.WriteString(n)
	}
	u32(uint32(len(entries)))
	for _, e := range entries {
		u32(uint32(len(e.base)))
		bw.WriteString(e.base)
		u64(e.seq)
		u64(e.epoch)
		u64(uint64(len(e.mirror)))
		bw.Write(e.mirror)
	}
	u64(uint64(len(alerts)))
	bw.Write(alerts)
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cluster: snapshot: %w", err)
	}
	return os.Rename(tmp.Name(), path)
}

// coordSnapEntry is one partition's restored state.
type coordSnapEntry struct {
	seq, epoch uint64
	mirror     *cumulative.History
}

// coordSnapshot is the decoded form of a SaveSnapshot file.
type coordSnapshot struct {
	ringVersion uint64
	nodes       []string
	entries     map[string]coordSnapEntry
	alerts      []byte
}

// readBlob reads exactly n bytes without trusting n for the allocation:
// a forged length prefix in a corrupt snapshot must fail with a short
// read, not a multi-gigabyte up-front allocation.
func readBlob(r io.Reader, n uint64) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// readCoordSnapshot decodes a coordinator snapshot container (any
// supported version). Corrupt or truncated input returns an error; no
// input may panic or force allocations beyond the bytes actually
// present (fuzzed by FuzzXCSNDecode).
func readCoordSnapshot(r io.Reader) (*coordSnapshot, error) {
	br := bufio.NewReader(r)
	var readErr error
	u32 := func() uint32 {
		var v uint32
		if readErr == nil {
			readErr = binary.Read(br, binary.LittleEndian, &v)
		}
		return v
	}
	u64 := func() uint64 {
		var v uint64
		if readErr == nil {
			readErr = binary.Read(br, binary.LittleEndian, &v)
		}
		return v
	}
	if m := u32(); readErr != nil || m != coordSnapMagic {
		if readErr == nil {
			readErr = errors.New("bad magic")
		}
		return nil, readErr
	}
	version := u32()
	if readErr != nil || version < 1 || version > coordSnapVersion {
		if readErr == nil {
			readErr = fmt.Errorf("unsupported version %d", version)
		}
		return nil, readErr
	}
	snap := &coordSnapshot{}
	if version >= 2 {
		snap.ringVersion = u64()
		nn := u32()
		if readErr != nil || nn > maxSnapParts {
			return nil, orImplausible(readErr)
		}
		for i := uint32(0); i < nn; i++ {
			nl := u32()
			if readErr != nil || nl > 4096 {
				return nil, orImplausible(readErr)
			}
			buf, err := readBlob(br, uint64(nl))
			if err != nil {
				return nil, err
			}
			snap.nodes = append(snap.nodes, string(buf))
		}
	}
	n := u32()
	if readErr != nil || n > maxSnapParts {
		return nil, orImplausible(readErr)
	}
	snap.entries = make(map[string]coordSnapEntry)
	for i := uint32(0); i < n; i++ {
		bl := u32()
		if readErr != nil || bl > 4096 {
			return nil, orImplausible(readErr)
		}
		base, err := readBlob(br, uint64(bl))
		if err != nil {
			return nil, err
		}
		seq, epoch := u64(), u64()
		ml := u64()
		if readErr != nil || ml > maxMirrorBytes {
			return nil, orImplausible(readErr)
		}
		// Mirrors are length-prefixed because the history decoder reads
		// through its own buffer: handing it the rest of the stream would
		// swallow the next entry's bytes.
		mb, err := readBlob(br, ml)
		if err != nil {
			return nil, err
		}
		mirror, err := cumulative.DecodeHistory(bytes.NewReader(mb))
		if err != nil {
			return nil, err
		}
		snap.entries[string(base)] = coordSnapEntry{seq: seq, epoch: epoch, mirror: mirror}
	}
	if version >= 3 {
		al := u64()
		if readErr != nil || al > maxAlertBytes {
			return nil, orImplausible(readErr)
		}
		snap.alerts, readErr = readBlob(br, al)
		if readErr != nil {
			return nil, readErr
		}
	}
	return snap, nil
}

// LoadSnapshot restores mirrors and cursors from a snapshot written by
// SaveSnapshot, rebuilds the merged history, and runs a correction pass
// so the patch log is warm before the first client poll. Mirrors are
// matched to the configured partitions by base URL: partitions added
// since the snapshot start empty (their first poll full-resyncs), and
// snapshot entries for partitions no longer configured are dropped. A
// missing file is not an error (fresh start).
func (c *Coordinator) LoadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("cluster: restore: %w", err)
	}
	defer f.Close()
	snap, err := readCoordSnapshot(f)
	if err != nil {
		return fmt.Errorf("cluster: restore %s: %w", path, err)
	}
	ringVersion, nodes := snap.ringVersion, snap.nodes
	restored, alerts := snap.entries, snap.alerts

	// A version-2 snapshot's membership is authoritative: it reflects any
	// rebalance completed since the operator's flag list was written, and
	// restoring the monotonic ring version is what keeps the next
	// rebalance's announcements ahead of the partitions' requirements.
	if len(nodes) > 0 {
		c.ring.restoreMembership(ringVersion, nodes)
		c.setPartitions(nodes)
	}
	c.mu.Lock()
	for _, p := range c.parts {
		e, ok := restored[p.base]
		if !ok {
			continue
		}
		p.mirror = e.mirror
		p.seq, p.epoch = e.seq, e.epoch
	}
	c.rebuild = true
	c.mu.Unlock()
	// Alert state must land before the warm-up correction pass: the pass
	// re-ranks the restored evidence, and only the restored fired records
	// stop it from re-arming (and later re-firing) alerts already sent by
	// the previous incarnation.
	if err := c.triage.RestoreAlertState(alerts); err != nil {
		return fmt.Errorf("cluster: restore %s: %w", path, err)
	}
	c.Correct()
	return nil
}

func orImplausible(err error) error {
	if err != nil {
		return err
	}
	return errors.New("implausible entry count")
}
