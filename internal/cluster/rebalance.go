package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"exterminator/internal/cumulative"
	"exterminator/internal/fleet"
	"exterminator/internal/site"
	"exterminator/internal/telemetry"
)

// Live ring rebalancing: when cluster membership changes, the keys the
// ring reassigns must take their accumulated evidence with them —
// otherwise a moved key's fresh observations pile up on the new owner
// while its old evidence ages on the previous one, and the Bayesian test
// never again sees the pooled multiset that gives fleet mode its power.
// Rebalance drains moved keys from their old owners (POST /v1/evict,
// idempotent via per-(version, partition) tokens) and backfills them
// into the new owners through the exactly-once stamped-batch path, under
// a two-phase journal:
//
//	begin v — the plan (old and new membership) is durable
//	drain  — a partition's moved keys were computed (observability)
//	backfilled — a partition's drained evidence reached its new owners
//	done v — membership committed, mirrors caught up
//
// A coordinator killed anywhere in between re-drives the plan on
// restart: evictions replay from the partitions' evict caches (same
// token returns the originally drained snapshot), and backfill batch IDs
// are deterministic functions of (version, source partition, piece), so
// a piece that already landed is acknowledged as a duplicate. Re-drains
// at worst; never a lost or double-counted observation.
//
// Ordering against writers: the new membership version is announced to
// every partition (POST /v1/ring) *before* any key moves, so uploads
// split under the old ring bounce with IngestReply.StaleRing instead of
// stranding evidence on a former owner; writers refresh membership from
// the coordinator and re-split. The whole drain/backfill section runs
// with the poll loop frozen (pollMu), so no correction pass can observe
// the half-moved evidence state.

// Rebalance states reported in ClusterStatus.Rebalance.
const (
	RebalanceIdle        = "idle"
	RebalanceRebalancing = "rebalancing"
	RebalanceFailed      = "failed"
	RebalanceDone        = "done"
)

// RebalanceState is the drain/backfill engine's externally visible
// state (ClusterStatus.Rebalance).
type RebalanceState struct {
	State string `json:"state"`
	// Version is the membership version the most recent rebalance moved
	// to (or is moving to / failed moving to).
	Version uint64 `json:"version,omitempty"`
	// MovedKeys counts the evidence keys the most recent completed
	// rebalance drained and backfilled.
	MovedKeys int `json:"movedKeys"`
	// DrainedPartitions counts the old owners that gave up keys.
	DrainedPartitions int    `json:"drainedPartitions"`
	LastError         string `json:"lastError,omitempty"`
}

// RebalanceResult summarizes one completed rebalance.
type RebalanceResult struct {
	// Version is the membership version now in force.
	Version uint64 `json:"version"`
	// Nodes is the new membership.
	Nodes []string `json:"nodes"`
	// MovedKeys is the total number of evidence keys drained and
	// backfilled; Drained breaks it down by source partition.
	MovedKeys int            `json:"movedKeys"`
	Drained   map[string]int `json:"drained,omitempty"`
}

// rebalPlan is the durable core of one rebalance: everything a re-drive
// needs, independent of in-memory state.
type rebalPlan struct {
	Version uint64
	Old     []string
	New     []string
}

// rebalRecord is one line of the two-phase journal.
type rebalRecord struct {
	Op      string   `json:"op"` // begin | drain | backfilled | done
	Version uint64   `json:"version,omitempty"`
	Old     []string `json:"old,omitempty"`
	New     []string `json:"new,omitempty"`
	Part    string   `json:"part,omitempty"`
	Keys    int      `json:"keys,omitempty"`
}

// AddNode grows the cluster by one partition, draining the keys the ring
// reassigns to it from their old owners. Shorthand for Rebalance.
func (c *Coordinator) AddNode(ctx context.Context, base string) (*RebalanceResult, error) {
	return c.Rebalance(ctx, []string{base}, nil)
}

// RemoveNode shrinks the cluster by one partition, draining everything
// it owns to the survivors. The node must stay reachable until the
// rebalance completes; shut it down afterwards.
func (c *Coordinator) RemoveNode(ctx context.Context, base string) (*RebalanceResult, error) {
	return c.Rebalance(ctx, nil, []string{base})
}

// Rebalance applies a membership change — add joins, remove drains out —
// moving every reassigned key's evidence to its new owner. With both
// lists empty it resumes a pending (crashed or failed) rebalance from
// the journal; while one is pending, new membership changes are refused
// until it is driven to completion.
func (c *Coordinator) Rebalance(ctx context.Context, add, remove []string) (*RebalanceResult, error) {
	c.rebalMu.Lock()
	defer c.rebalMu.Unlock()
	pending, completed, err := readJournalPlans(c.rebalPath)
	if err != nil {
		return nil, fmt.Errorf("cluster: rebalance journal: %w", err)
	}
	c.adoptCompletedPlan(completed)
	var plan *rebalPlan
	if len(add) == 0 && len(remove) == 0 {
		if pending == nil {
			return nil, errors.New("cluster: rebalance: no membership change given and no pending rebalance to resume")
		}
		plan = pending
	} else {
		if pending != nil {
			return nil, fmt.Errorf("cluster: rebalance to version %d is incomplete; resume it first (POST /v1/rebalance with an empty change)", pending.Version)
		}
		curV, curNodes := c.ring.Membership()
		set := make(map[string]bool, len(curNodes))
		for _, n := range curNodes {
			set[n] = true
		}
		changed := false
		for _, n := range add {
			if n != "" && !set[n] {
				set[n] = true
				changed = true
			}
		}
		for _, n := range remove {
			if set[n] {
				delete(set, n)
				changed = true
			}
		}
		if !changed {
			return nil, errors.New("cluster: rebalance: membership unchanged")
		}
		if len(set) == 0 {
			return nil, errors.New("cluster: rebalance: change would leave the ring without members")
		}
		newNodes := make([]string, 0, len(set))
		for n := range set {
			newNodes = append(newNodes, n)
		}
		sort.Strings(newNodes)
		plan = &rebalPlan{Version: curV + 1, Old: curNodes, New: newNodes}
		if err := c.journalRebal(rebalRecord{Op: "begin", Version: plan.Version, Old: plan.Old, New: plan.New}); err != nil {
			return nil, err
		}
	}
	return c.runRebalance(ctx, plan)
}

// ResumeRebalance re-drives a rebalance the journal shows incomplete (a
// coordinator crash between drain and backfill). Completed plans count
// too: the newest done plan's membership is re-adopted, so a coordinator
// restarted with a stale flag list (and no -snapshot) does not silently
// revert to the pre-resize topology and drop a partition from the merge.
// It returns (nil, nil) when there is nothing to re-drive. fleetd calls
// it on coordinator start.
func (c *Coordinator) ResumeRebalance(ctx context.Context) (*RebalanceResult, error) {
	c.rebalMu.Lock()
	pending, completed, err := readJournalPlans(c.rebalPath)
	if err == nil {
		c.adoptCompletedPlan(completed)
	}
	c.rebalMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("cluster: rebalance journal: %w", err)
	}
	if pending == nil {
		return nil, nil
	}
	return c.Rebalance(ctx, nil, nil)
}

// adoptCompletedPlan restores the membership a completed (journal-done)
// rebalance committed, when it is newer than what the coordinator holds
// — the journal outlives the process, the flag list does not. The caller
// holds rebalMu.
func (c *Coordinator) adoptCompletedPlan(completed *rebalPlan) {
	if completed == nil || completed.Version < c.ring.Version() {
		return
	}
	c.ring.restoreMembership(completed.Version, completed.New)
	c.setPartitions(completed.New)
}

// observeRebalPhase records one rebalance phase's duration in the
// per-phase latency histogram.
func (c *Coordinator) observeRebalPhase(phase string, start time.Time) {
	c.reg.Histogram("cluster_rebalance_phase_seconds",
		"Rebalance phase durations (announce, drain, commit).",
		telemetry.DefBuckets, telemetry.L("phase", phase)).ObserveSince(start)
}

// runRebalance drives one plan to completion. The caller holds rebalMu.
func (c *Coordinator) runRebalance(ctx context.Context, plan *rebalPlan) (*RebalanceResult, error) {
	c.setRebalState(RebalanceState{State: RebalanceRebalancing, Version: plan.Version})
	c.logger.Info("rebalance starting",
		"version", plan.Version, "old", plan.Old, "new", plan.New)
	fail := func(err error) (*RebalanceResult, error) {
		c.setRebalState(RebalanceState{State: RebalanceFailed, Version: plan.Version, LastError: err.Error()})
		c.reg.Counter("cluster_rebalances_total",
			"Rebalances driven to a terminal state, by outcome.",
			telemetry.L("outcome", "failed")).Inc()
		c.logger.Error("rebalance failed",
			"version", plan.Version, "error", err.Error())
		return nil, err
	}

	// Every node involved — drains come from old members, backfills go to
	// new ones — needs a partition entry and client.
	union := unionNodes(plan.Old, plan.New)
	c.mu.Lock()
	have := make(map[string]bool, len(c.parts))
	for _, p := range c.parts {
		have[p.base] = true
	}
	for _, node := range union {
		if !have[node] {
			c.parts = append(c.parts, c.newPartition(node))
		}
	}
	c.updateMergedGauges()
	c.mu.Unlock()

	// Phase 0 — announce: every partition starts requiring the new
	// membership version before any key moves, so a writer still routing
	// by the old ring cannot strand evidence on a former owner while the
	// drain is in flight.
	announceStart := time.Now()
	for _, node := range union {
		if _, err := c.findPartition(node).client.AnnounceRing(ctx, plan.Version); err != nil {
			return fail(fmt.Errorf("cluster: announce membership v%d to %s: %w", plan.Version, node, err))
		}
	}
	c.observeRebalPhase("announce", announceStart)
	if err := c.rebalCrashpoint("announced"); err != nil {
		return fail(err)
	}

	// Freeze the poll loop across drain+backfill: no correction pass may
	// observe the state with a key's evidence extracted but not yet
	// re-absorbed (the transiently smaller site count would skew the
	// Bayesian prior's N).
	c.pollMu.Lock()
	defer c.pollMu.Unlock()

	// Freshen every mirror first. Post-announce, stale writers bounce, so
	// the mirrors now hold everything the old owners will ever hold for
	// the moved keys — the ring diff below cannot miss a key.
	if _, err := c.pollLocked(ctx); err != nil {
		return fail(fmt.Errorf("cluster: pre-drain poll: %w", err))
	}

	newRing := NewRing(0, plan.New...)
	newSet := make(map[string]bool, len(plan.New))
	for _, n := range plan.New {
		newSet[n] = true
	}
	drainStart := time.Now()
	moved := 0
	drained := make(map[string]int)
	for _, node := range plan.Old {
		p := c.findPartition(node)
		// A node leaving the cluster drains its run counters along with
		// its keys — counters are not keyed, so key eviction alone would
		// shrink the fleet-wide totals when its mirror is dropped.
		leaving := !newSet[node]
		var keys []site.ID
		c.mu.Lock()
		for _, k := range p.mirror.EvidenceKeys() {
			if newRing.Owner(k) != node {
				keys = append(keys, k)
			}
		}
		c.mu.Unlock()
		if len(keys) > 0 || leaving {
			if err := c.journalRebal(rebalRecord{Op: "drain", Version: plan.Version, Part: node, Keys: len(keys)}); err != nil {
				return fail(err)
			}
		}
		// Drain. The token makes this idempotent: a re-drive (possibly
		// computing an empty key set, because the mirror already reflects
		// the eviction) gets the originally drained snapshot back.
		reply, err := p.client.EvictKeys(ctx, rebalToken(plan.Version, node), keys, leaving)
		if err != nil {
			return fail(fmt.Errorf("cluster: drain %s: %w", node, err))
		}
		if err := c.rebalCrashpoint("drained"); err != nil {
			return fail(err)
		}
		if kc := evidenceKeyCount(reply.Evicted); kc > 0 {
			moved += kc
			drained[node] = kc
		}
		// Backfill: split the drained evidence along the NEW ring and push
		// each piece through the exactly-once path. Batch IDs derive from
		// (version, source, piece content) — deterministic across
		// re-drives, so a piece that already landed dedups.
		if reply.Evicted != nil && !cumulative.DeltaEmpty(reply.Evicted) {
			for dest, piece := range SplitSnapshot(newRing, reply.Evicted) {
				batch := &fleet.ObservationBatch{
					Client:      "rebalance",
					Snapshot:    piece,
					BatchID:     cumulative.BatchID(rebalToken(plan.Version, node)+">"+dest, 0, 0, piece),
					RingVersion: plan.Version,
				}
				if _, err := c.findPartition(dest).client.PushBatchContext(ctx, batch); err != nil {
					return fail(fmt.Errorf("cluster: backfill %s to %s: %w", node, dest, err))
				}
			}
		}
		if err := c.journalRebal(rebalRecord{Op: "backfilled", Version: plan.Version, Part: node}); err != nil {
			return fail(err)
		}
		c.logger.Info("partition drained and backfilled",
			"version", plan.Version, "partition", node,
			"movedKeys", drained[node], "leaving", leaving)
	}
	c.observeRebalPhase("drain", drainStart)

	// Commit membership: the coordinator's own ring adopts the new
	// topology, removed partitions drop out of the poll set, and the
	// merged history is rebuilt from the mirrors on the next pass.
	commitStart := time.Now()
	c.ring.SetMembership(plan.Version, plan.New)
	c.mu.Lock()
	kept := c.parts[:0]
	for _, p := range c.parts {
		if newSet[p.base] {
			kept = append(kept, p)
		}
	}
	c.parts = kept
	c.rebuild = true
	c.updateMergedGauges()
	c.mu.Unlock()

	// Fold the moves into the mirrors while the poll freeze still holds,
	// so the first post-rebalance correction pass sees every moved key at
	// exactly one partition.
	if _, err := c.pollLocked(ctx); err != nil {
		return fail(fmt.Errorf("cluster: post-rebalance poll: %w", err))
	}
	if err := c.journalRebal(rebalRecord{Op: "done", Version: plan.Version}); err != nil {
		return fail(err)
	}
	c.Correct()
	c.observeRebalPhase("commit", commitStart)
	c.setRebalState(RebalanceState{
		State:             RebalanceDone,
		Version:           plan.Version,
		MovedKeys:         moved,
		DrainedPartitions: len(drained),
	})
	c.metrics.movedKeys.Add(float64(moved))
	c.reg.Counter("cluster_rebalances_total",
		"Rebalances driven to a terminal state, by outcome.",
		telemetry.L("outcome", "done")).Inc()
	c.logger.Info("rebalance committed",
		"version", plan.Version, "nodes", plan.New,
		"movedKeys", moved, "drainedPartitions", len(drained))
	return &RebalanceResult{Version: plan.Version, Nodes: plan.New, MovedKeys: moved, Drained: drained}, nil
}

// handleRebalance is the admin endpoint: POST /v1/rebalance
// {"add": [...], "remove": [...]} applies a membership change; an empty
// change resumes a pending rebalance. Token-authenticated when the
// coordinator has one.
func (c *Coordinator) handleRebalance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if c.token != "" && !fleet.BearerAuthorized(r, c.token) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="fleet"`)
		http.Error(w, "cluster: missing or invalid admin token", http.StatusUnauthorized)
		return
	}
	var req struct {
		Add    []string `json:"add"`
		Remove []string `json:"remove"`
	}
	if err := fleet.DecodeJSONBody(w, r, 1<<20, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Detached from the request context: announcements and evictions are
	// committed side effects on the partitions, so an admin curl timing
	// out must not abort the transition halfway (writers would bounce on
	// the announced version while /v1/membership still reports the old
	// one). Each step is bounded by the partition clients' own timeouts.
	res, err := c.Rebalance(context.WithoutCancel(r.Context()), req.Add, req.Remove)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	fleet.WriteJSON(w, res)
}

func (c *Coordinator) setRebalState(st RebalanceState) {
	c.mu.Lock()
	c.rebalState = st
	c.mu.Unlock()
}

// rebalCrashpoint aborts the rebalance at a named stage when the test
// hook is armed — the journal then shows an incomplete plan, exactly as
// after a process kill.
func (c *Coordinator) rebalCrashpoint(stage string) error {
	if c.testRebalanceCrash != nil {
		return c.testRebalanceCrash(stage)
	}
	return nil
}

// rebalToken is the idempotency handle for one partition's drain within
// one membership transition. Deterministic — a re-driving coordinator
// (same journal, fresh process) reproduces it exactly.
func rebalToken(version uint64, node string) string {
	return fmt.Sprintf("rebalance:v%d:%s", version, node)
}

// journalRebal appends one fsynced record to the two-phase journal. With
// no journal configured it is a no-op (the rebalance is then not
// crash-safe — acceptable for tests and toy clusters).
func (c *Coordinator) journalRebal(rec rebalRecord) error {
	if c.rebalPath == "" {
		return nil
	}
	f, err := os.OpenFile(c.rebalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: rebalance journal: %w", err)
	}
	defer f.Close()
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: rebalance journal: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("cluster: rebalance journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("cluster: rebalance journal: %w", err)
	}
	return nil
}

// readJournalPlans scans the journal for (a) the most recent begin
// without a matching done — the plan to re-drive — and (b) the newest
// completed plan, whose membership survives a restart. A trailing
// partial line (torn write) is ignored — the record it would have been
// was not durable.
func readJournalPlans(path string) (pending, completed *rebalPlan, err error) {
	if path == "" {
		return nil, nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var rec rebalRecord
		if json.Unmarshal(sc.Bytes(), &rec) != nil {
			continue
		}
		switch rec.Op {
		case "begin":
			pending = &rebalPlan{Version: rec.Version, Old: rec.Old, New: rec.New}
		case "done":
			if pending != nil && pending.Version == rec.Version {
				completed = pending
				pending = nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return pending, completed, nil
}

// unionNodes returns the ordered union of two node lists.
func unionNodes(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, n := range append(append([]string(nil), a...), b...) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// evidenceKeyCount counts the distinct alloc-side evidence keys a
// snapshot carries (the "moved keys" statistic).
func evidenceKeyCount(s *cumulative.Snapshot) int {
	if s == nil {
		return 0
	}
	set := make(map[site.ID]bool)
	for _, id := range s.Sites {
		set[id] = true
	}
	for _, so := range s.Overflow {
		set[so.Site] = true
	}
	for _, po := range s.Dangling {
		set[po.Alloc] = true
	}
	for _, h := range s.PadHints {
		set[h.Site] = true
	}
	for _, h := range s.DeferralHints {
		set[h.Alloc] = true
	}
	return len(set)
}
