package cluster

import (
	"bytes"
	"encoding/binary"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/site"
)

// fuzzCoordSeed hand-encodes a small valid XCSN v3 container: ring
// membership, one partition entry with a non-empty mirror, and an
// empty alert blob.
func fuzzCoordSeed(t testing.TB) []byte {
	hist := cumulative.NewHistory(cumulative.DefaultConfig())
	hist.Absorb(&cumulative.Snapshot{
		Runs:  2,
		Sites: []site.ID{9},
		Overflow: []cumulative.SiteObservations{
			{Site: 9, Obs: []cumulative.Observation{{X: 0.5, Y: true}}},
		},
	})
	var mirror bytes.Buffer
	if err := hist.Encode(&mirror); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	u32 := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) }
	u64 := func(v uint64) { binary.Write(&buf, binary.LittleEndian, v) }
	const base = "http://p1.example:7077"
	u32(coordSnapMagic)
	u32(coordSnapVersion)
	u64(3) // ring version
	u32(1) // one node
	u32(uint32(len(base)))
	buf.WriteString(base)
	u32(1) // one partition entry
	u32(uint32(len(base)))
	buf.WriteString(base)
	u64(17) // seq
	u64(5)  // epoch
	u64(uint64(mirror.Len()))
	buf.Write(mirror.Bytes())
	u64(0) // no alert state
	return buf.Bytes()
}

// FuzzXCSNDecode fuzzes the coordinator snapshot decoder: corrupt or
// truncated containers — including forged length prefixes far beyond
// the bytes present — must return an error, never panic, and never
// allocate proportional to an untrusted prefix.
func FuzzXCSNDecode(f *testing.F) {
	seed := fuzzCoordSeed(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // truncated inside the mirror blob
	f.Add(seed[:10])          // truncated inside the header
	f.Add([]byte{})
	// Forged mirror length: entry claims ~1 GiB of mirror bytes.
	forged := append([]byte{}, seed...)
	if len(forged) > 60 {
		binary.LittleEndian.PutUint64(forged[52:], maxMirrorBytes-1)
	}
	f.Add(forged)
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := readCoordSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// An accepted container must carry decodable mirrors: re-encoding
		// each must not panic.
		for _, e := range snap.entries {
			var buf bytes.Buffer
			if err := e.mirror.Encode(&buf); err != nil {
				t.Fatalf("re-encode of accepted mirror: %v", err)
			}
		}
	})
}
