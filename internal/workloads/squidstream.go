// SquidStream is the streaming (long-running service) form of the Squid
// workload: one request per Step, live cache state across steps — the
// shape modes.Serve (Figure 5) needs.
package workloads

import (
	"strings"

	"exterminator/internal/mutator"
)

// SquidStream is the service program.
type SquidStream struct{}

// NewSquidStream returns the streaming squid.
func NewSquidStream() SquidStream { return SquidStream{} }

// Name implements modes.StreamProgram (structurally).
func (SquidStream) Name() string { return "squid-stream" }

// SquidSession is one replica's live cache.
type SquidSession struct {
	e      *mutator.Env
	cache  []cacheEntry
	served int
	hits   int
}

// NewSession implements mutator.StreamProgram.
func (SquidStream) NewSession(e *mutator.Env) mutator.Session {
	return &SquidSession{e: e}
}

var _ mutator.StreamProgram = SquidStream{}

// Step processes one request line ("GET <url>").
func (s *SquidSession) Step(chunk []byte) {
	e := s.e
	line := strings.TrimSpace(string(chunk))
	if line == "" || !strings.HasPrefix(line, "GET ") {
		return
	}
	url := strings.TrimPrefix(line, "GET ")
	host := hostOf(url)

	var reqBuf, respBuf mutator.Ptr
	e.Call(0x5151A, func() { reqBuf = e.Malloc(len(url) + 1) })
	e.Write(reqBuf, 0, []byte(url))
	e.Call(0x5151B, func() { respBuf = e.Malloc(24 + len(host)%8) })
	e.Write(respBuf, 0, []byte("HTTP/1.0 200 OK\r\n"))

	found := false
	for _, ent := range s.cache {
		if ent.key == host {
			s.hits++
			found = true
			break
		}
	}
	if !found {
		var ptr mutator.Ptr
		var stored int
		e.Call(0x5151D, func() { ptr, stored = Squid{}.storeHost(e, host) })
		s.cache = append(s.cache, cacheEntry{ptr: ptr, size: stored, key: host})
		if len(s.cache) > 24 {
			old := s.cache[0]
			s.cache = s.cache[1:]
			e.Call(0x5151E, func() { e.Free(old.ptr) })
		}
	}
	s.served++
	e.Call(0x5151F, func() {
		e.Free(respBuf)
		e.Free(reqBuf)
	})
	e.Printf("squid-stream served=%d hits=%d\n", s.served, s.hits)
}

// SquidRequestStream splits the batch input format into per-request
// chunks for modes.Serve.
func SquidRequestStream(input []byte) [][]byte {
	var chunks [][]byte
	for _, line := range strings.Split(string(input), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		chunks = append(chunks, []byte(line))
	}
	return chunks
}
