// Squid web-cache analogue with the real 2.3s5-era buffer overflow of
// §7.2: certain request URLs make the server write 6 bytes past a
// heap buffer sized for the unescaped host, crashing it under GNU libc
// (and the BDW collector) but not under Exterminator, which isolates a
// single allocation site and generates a pad of exactly 6 bytes.
package workloads

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"

	"exterminator/internal/mutator"
)

// squidOverflowLen matches the paper: "generates a pad of exactly 6
// bytes, fixing the error."
const squidOverflowLen = 6

// Squid is the cache-server program. Input is a newline-separated list of
// "GET <url>" requests.
type Squid struct{}

// NewSquid returns the program.
func NewSquid() Squid { return Squid{} }

// Name implements mutator.Program.
func (Squid) Name() string { return "squid" }

// SquidHostileInput builds a request stream whose i-th request (0-based)
// triggers the overflow, surrounded by benign traffic. The hostile host
// unescapes to exactly 32 bytes — a size-class boundary — so the 6 extra
// bytes cross into the next object, as the original bug's CRLF-injection
// buffer did.
func SquidHostileInput(total, hostileAt int) []byte {
	var b bytes.Buffer
	hostile := "h%0d%0a" + strings.Repeat("a", 25) + ".com" // unescaped length 32
	for i := 0; i < total; i++ {
		if i == hostileAt {
			// An escaped host: the miscounted-length code path.
			fmt.Fprintf(&b, "GET http://%s/exploit\n", hostile)
			continue
		}
		fmt.Fprintf(&b, "GET http://host%03d.example.com/page%d\n", i%37, i)
	}
	return b.Bytes()
}

// SquidBenignInput builds overflow-free traffic.
func SquidBenignInput(total int) []byte {
	return SquidHostileInput(total, -1)
}

type cacheEntry struct {
	ptr  mutator.Ptr
	size int
	key  string
}

// Run implements mutator.Program: parse requests, maintain an LRU-ish
// cache of host buffers, and reply. The bug lives in parseHost.
func (s Squid) Run(e *mutator.Env) {
	sc := bufio.NewScanner(bytes.NewReader(e.Input))
	var cache []cacheEntry
	served, hits := 0, 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || !strings.HasPrefix(line, "GET ") {
			continue
		}
		url := strings.TrimPrefix(line, "GET ")
		host := hostOf(url)

		// Transient request/response buffers, freed at request end —
		// the per-request churn a real proxy has.
		var reqBuf, respBuf mutator.Ptr
		e.Call(0x5151A, func() { reqBuf = e.Malloc(len(url) + 1) })
		e.Write(reqBuf, 0, []byte(url))
		e.Call(0x5151B, func() { respBuf = e.Malloc(24 + len(host)%8) })
		e.Write(respBuf, 0, []byte("HTTP/1.0 200 OK\r\n"))

		// Cache lookup.
		found := false
		for _, ent := range cache {
			if ent.key == host {
				hits++
				found = true
				break
			}
		}
		if !found {
			var ptr mutator.Ptr
			var stored int
			// The vulnerable allocation site: one fixed code path, as in
			// the real Squid (a single culprit allocation site).
			e.Call(0x5151D, func() { ptr, stored = s.storeHost(e, host) })
			cache = append(cache, cacheEntry{ptr: ptr, size: stored, key: host})
			if len(cache) > 24 {
				old := cache[0]
				cache = cache[1:]
				e.Call(0x5151E, func() { e.Free(old.ptr) })
			}
		}
		served++
		e.Call(0x5151F, func() {
			e.Free(respBuf)
			e.Free(reqBuf)
		})
		if served%16 == 0 {
			e.Printf("squid served=%d hits=%d\n", served, hits)
		}
	}
	// Integrity sweep, as Squid's cache validation would do.
	for _, ent := range cache {
		buf := make([]byte, ent.size)
		e.Read(ent.ptr, 0, buf)
		e.Free(ent.ptr)
	}
	e.Printf("squid done served=%d hits=%d\n", served, hits)
}

// storeHost copies the host into a fresh buffer. The buffer is sized for
// the *escaped* form's unescaped length, but hosts containing %-escapes
// take a code path that appends a 6-byte suffix — writing past the end.
func (Squid) storeHost(e *mutator.Env, host string) (mutator.Ptr, int) {
	unescaped := unescape(host)
	size := len(unescaped)
	if size < 1 {
		size = 1
	}
	ptr := e.Malloc(size)
	e.Write(ptr, 0, []byte(unescaped))
	if strings.Contains(host, "%") {
		// BUG: writes squidOverflowLen bytes past the allocation.
		e.Write(ptr, size, []byte("\r\n\r\n..")[:squidOverflowLen])
	}
	return ptr, size
}

func hostOf(url string) string {
	s := strings.TrimPrefix(url, "http://")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			b.WriteByte(hexByte(s[i+1], s[i+2]))
			i += 2
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func hexByte(hi, lo byte) byte {
	h := func(c byte) byte {
		switch {
		case c >= '0' && c <= '9':
			return c - '0'
		case c >= 'a' && c <= 'f':
			return c - 'a' + 10
		case c >= 'A' && c <= 'F':
			return c - 'A' + 10
		}
		return 0
	}
	return h(hi)<<4 | h(lo)
}
