// Package workloads provides the simulated application suite: stand-ins
// for the benchmarks of the paper's evaluation (§7).
//
//   - An allocation-intensive suite named after the paper's (cfrac,
//     espresso, lindsay, p2c, roboop): high malloc/free rates, little
//     compute per allocation — the workloads where Exterminator's
//     overhead peaks (geometric mean 1.81× in Figure 7).
//   - A SPECint2000-like suite (gzip, vpr, gcc, mcf, crafty, parser,
//     perlbmk, gap, vortex, bzip2, twolf): heavy compute per allocation,
//     where overhead nearly vanishes (geometric mean 1.07×).
//   - Squid and Mozilla analogues with *built-in* (not injected) buffer
//     overflows modeled on the real bugs of §7.2.
//
// Each program is deterministic given its input and program seed, writes
// voter-comparable output that never depends on heap addresses, verifies
// its own data (so reading a canary through a dangling pointer makes it
// abort, as espresso does in §7.2), and chases stored pointers (so a
// canaried pointer field causes a crash on dereference).
package workloads

import (
	"fmt"

	"exterminator/internal/mutator"
)

// Profile parameterizes a synthetic benchmark.
type Profile struct {
	Name         string
	Ops          int // outer-loop operations
	ComputePerOp int // synthetic compute rounds per op (hash iterations)
	AllocEvery   int // allocate on every k-th op
	SizeMin      int
	SizeMax      int
	LiveTarget   int  // steady-state live objects
	PointerChase bool // store and follow intra-heap pointers
	Sites        int  // number of distinct allocation call sites
}

// Synthetic is a Profile-driven program.
type Synthetic struct {
	P Profile
}

// Name implements mutator.Program.
func (s Synthetic) Name() string { return s.P.Name }

// payloadByte is the expected payload of object ord at offset i; programs
// verify reads against it and abort on mismatch (self-checking, like
// espresso's internal consistency checks).
func payloadByte(ord uint64, i int) byte {
	return byte(uint64(i)*167 + ord*31 + 5)
}

// compute burns deterministic CPU (the SPEC-like compute phase) and
// returns a checksum contribution.
func compute(rounds int, seed uint64) uint64 {
	h := seed | 1
	for i := 0; i < rounds; i++ {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
	}
	return h
}

type liveObj struct {
	ptr  mutator.Ptr
	size int
	ord  uint64
}

// Run implements mutator.Program.
func (s Synthetic) Run(e *mutator.Env) {
	p := s.P
	if p.AllocEvery <= 0 {
		p.AllocEvery = 1
	}
	if p.Sites <= 0 {
		p.Sites = 8
	}
	var live []liveObj
	var checksum uint64

	// payloadLen is the verifiable payload region; pointer-chasing
	// objects reserve their last aligned word for a pointer field.
	payloadLen := func(o liveObj) int {
		if p.PointerChase && o.size >= 16 {
			return (o.size - 8) &^ 7
		}
		return o.size
	}

	// rewritePayload refreshes the verifiable payload region in place.
	rewritePayload := func(o liveObj) {
		n := payloadLen(o)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = payloadByte(o.ord, i)
		}
		e.Write(o.ptr, 0, buf)
	}

	writeObj := func(o liveObj) {
		rewritePayload(o)
		if n := payloadLen(o); n != o.size {
			// Pointer field: a random live object, or null when none.
			var target mutator.Ptr
			if len(live) > 0 {
				target = live[e.Rng.Intn(len(live))].ptr
			}
			e.Write64(o.ptr, n, target)
		}
	}

	verifyObj := func(o liveObj) {
		n := payloadLen(o)
		buf := make([]byte, n)
		e.Read(o.ptr, 0, buf)
		for i, b := range buf {
			if b != payloadByte(o.ord, i) {
				e.Fail(fmt.Sprintf("%s: data corruption in object %d at offset %d", p.Name, o.ord, i))
			}
		}
	}

	for op := 0; op < p.Ops; op++ {
		checksum ^= compute(p.ComputePerOp, uint64(op)+1)

		if op%p.AllocEvery == 0 {
			size := p.SizeMin
			if p.SizeMax > p.SizeMin {
				size += e.Rng.Intn(p.SizeMax - p.SizeMin + 1)
			}
			pc := 0xF000 + uint64(op%p.Sites)
			var ptr mutator.Ptr
			e.Call(pc, func() { ptr = e.Malloc(size) })
			o := liveObj{ptr: ptr, size: size, ord: e.Alloc.Clock()}
			writeObj(o)
			live = append(live, o)

			if len(live) > p.LiveTarget {
				k := e.Rng.Intn(len(live))
				victim := live[k]
				// Consistency checks are periodic, not on every free —
				// like espresso's own validation passes.
				if op&3 == 0 {
					verifyObj(victim)
				}
				e.Call(0xE000+uint64(k%p.Sites), func() { e.Free(victim.ptr) })
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}

		if p.PointerChase && op%7 == 3 && len(live) > 0 {
			// Chase a stored pointer: read the pointer field of a live
			// object and dereference it. If the object was dangled and
			// canaried, the loaded "pointer" is the canary and the
			// dereference traps (§3.3's alignment trick).
			o := live[e.Rng.Intn(len(live))]
			if o.size >= 16 {
				v := e.Read64(o.ptr, payloadLen(o))
				if v != 0 {
					// The loaded value is discarded: what it reads
					// depends on heap layout (the target may have been
					// freed), and program output must stay layout-
					// independent for the voter.
					e.Deref(v)
				}
			}
		}

		if op%5 == 2 && len(live) > 0 {
			// Update phase: rewrite a live object's payload in place (as
			// espresso rewrites its bitsets). A write through an object
			// the allocator has secretly reclaimed is a dangling *write*
			// — the case iterative mode can isolate (§4.2). The pointer
			// field is left alone (payloads are replica-identical,
			// pointers are not).
			rewritePayload(live[e.Rng.Intn(len(live))])
		}

		if op%512 == 511 {
			e.Printf("%s %d %x\n", p.Name, op, checksum&0xffff)
		}
	}
	// Final verification pass: corrupted survivors abort the run.
	for _, o := range live {
		verifyObj(o)
		e.Free(o.ptr)
	}
	e.Printf("%s done ops=%d sum=%x\n", p.Name, p.Ops, checksum&0xffffffff)
}

// AllocIntensive returns the allocation-intensive suite (Figure 7, left).
// Parameters echo the character of each original: cfrac's tiny transient
// bignums, espresso's mixed bitset churn, lindsay's message buffers,
// p2c's AST nodes, roboop's matrix temporaries.
func AllocIntensive(scale int) []mutator.Program {
	if scale <= 0 {
		scale = 1
	}
	return []mutator.Program{
		Synthetic{Profile{Name: "cfrac", Ops: 3000 * scale, ComputePerOp: 4, AllocEvery: 1, SizeMin: 8, SizeMax: 40, LiveTarget: 30, Sites: 6}},
		Synthetic{Profile{Name: "espresso", Ops: 2500 * scale, ComputePerOp: 8, AllocEvery: 1, SizeMin: 8, SizeMax: 256, LiveTarget: 60, PointerChase: true, Sites: 12}},
		Synthetic{Profile{Name: "lindsay", Ops: 2000 * scale, ComputePerOp: 12, AllocEvery: 1, SizeMin: 32, SizeMax: 512, LiveTarget: 40, Sites: 8}},
		Synthetic{Profile{Name: "p2c", Ops: 2500 * scale, ComputePerOp: 10, AllocEvery: 1, SizeMin: 16, SizeMax: 96, LiveTarget: 120, PointerChase: true, Sites: 16}},
		Synthetic{Profile{Name: "roboop", Ops: 2200 * scale, ComputePerOp: 16, AllocEvery: 1, SizeMin: 64, SizeMax: 1024, LiveTarget: 24, Sites: 6}},
	}
}

// SPECLike returns the SPECint2000-like suite (Figure 7, right): the same
// machinery with far more compute per allocation.
func SPECLike(scale int) []mutator.Program {
	if scale <= 0 {
		scale = 1
	}
	mk := func(name string, computePerOp, allocEvery, szMin, szMax, liveTarget int) mutator.Program {
		return Synthetic{Profile{
			Name: name, Ops: 1200 * scale, ComputePerOp: computePerOp,
			AllocEvery: allocEvery, SizeMin: szMin, SizeMax: szMax,
			LiveTarget: liveTarget, Sites: 10,
		}}
	}
	return []mutator.Program{
		mk("gzip", 600, 24, 1024, 8192, 12),
		mk("vpr", 400, 12, 32, 256, 80),
		mk("gcc", 220, 4, 16, 512, 200),
		mk("mcf", 500, 20, 64, 192, 60),
		mk("crafty", 900, 60, 256, 2048, 8),
		mk("parser", 260, 3, 16, 128, 150),
		mk("perlbmk", 300, 6, 24, 384, 120),
		mk("gap", 350, 10, 32, 1024, 90),
		mk("vortex", 320, 8, 48, 640, 100),
		mk("bzip2", 700, 30, 2048, 16384, 10),
		mk("twolf", 380, 9, 24, 224, 110),
	}
}

// ByName finds a program in the combined suite.
func ByName(name string, scale int) (mutator.Program, bool) {
	for _, p := range append(AllocIntensive(scale), SPECLike(scale)...) {
		if p.Name() == name {
			return p, true
		}
	}
	switch name {
	case "squid":
		return NewSquid(), true
	case "mozilla":
		return NewMozilla(12), true
	case "espresso-qm":
		return NewMinimizer(16, 10*scale, 48), true
	case "cfrac-mp":
		return NewFactorizer(20*scale, 4), true
	}
	return nil, false
}
