// Minimizer is a real two-level logic minimizer — the algorithmic heart
// of espresso, the paper's flagship benchmark — rather than a synthetic
// allocation profile. It repeatedly merges distance-1 implicant cubes
// (the Quine–McCluskey combining step), with every cube stored as a
// heap-allocated bitset exactly as espresso stores its covers. The
// paper's observation that "some objects hold bitsets", making canary
// reads look like valid data, applies literally here.
package workloads

import (
	"exterminator/internal/mutator"
)

// Minimizer minimizes random single-output covers.
type Minimizer struct {
	// Vars is the number of input variables (cube = 2*Vars bits).
	Vars int
	// Covers is how many independent covers to minimize.
	Covers int
	// CubesPerCover is the initial implicant count per cover.
	CubesPerCover int
}

// NewMinimizer returns a workload with espresso-like proportions.
func NewMinimizer(vars, covers, cubes int) Minimizer {
	if vars <= 0 {
		vars = 16
	}
	if covers <= 0 {
		covers = 12
	}
	if cubes <= 0 {
		cubes = 48
	}
	return Minimizer{Vars: vars, Covers: covers, CubesPerCover: cubes}
}

// Name implements mutator.Program.
func (Minimizer) Name() string { return "espresso-qm" }

// Cube layout: positional-cube notation, two bits per variable
// (01 = positive literal, 10 = negative literal, 11 = don't-care),
// packed little-endian into a heap-allocated byte array.

func (m Minimizer) cubeBytes() int { return (2*m.Vars + 7) / 8 }

// Run implements mutator.Program.
func (m Minimizer) Run(e *mutator.Env) {
	totalCubes, totalMerges := 0, 0

	for c := 0; c < m.Covers; c++ {
		cover := m.randomCover(e)

		// Iterated combining: merge any two cubes at distance 1 until a
		// fixpoint — the QM prime-implicant generation loop. Each merge
		// allocates the combined cube and frees the two inputs (real
		// minimizers churn exactly like this).
		for {
			merged := false
			for i := 0; i < len(cover) && !merged; i++ {
				for j := i + 1; j < len(cover) && !merged; j++ {
					if v, ok := m.distance1(e, cover[i], cover[j]); ok {
						nc := m.combine(e, cover[i], cover[j], v)
						m.freeCube(e, cover[i])
						m.freeCube(e, cover[j])
						// Remove j first (higher index), then i.
						cover = append(cover[:j], cover[j+1:]...)
						cover = append(cover[:i], cover[i+1:]...)
						cover = append(cover, nc)
						merged = true
						totalMerges++
					}
				}
			}
			if !merged {
				break
			}
		}

		// Single-cube containment sweep: drop cubes covered by another.
		cover = m.dropContained(e, cover)

		// Report a layout-independent signature of the minimized cover.
		sig := uint32(0)
		for _, cb := range cover {
			sig = sig*31 + m.checksum(e, cb)
		}
		e.Printf("espresso-qm cover %d: %d cubes sig=%08x\n", c, len(cover), sig)
		totalCubes += len(cover)
		for _, cb := range cover {
			m.freeCube(e, cb)
		}
	}
	e.Printf("espresso-qm done covers=%d cubes=%d merges=%d\n", m.Covers, totalCubes, totalMerges)
}

// randomCover allocates an initial cover of minterm-ish cubes.
func (m Minimizer) randomCover(e *mutator.Env) []mutator.Ptr {
	cover := make([]mutator.Ptr, 0, m.CubesPerCover)
	for i := 0; i < m.CubesPerCover; i++ {
		var p mutator.Ptr
		e.Call(0xE599, func() { p = e.Malloc(m.cubeBytes()) })
		buf := make([]byte, m.cubeBytes())
		for v := 0; v < m.Vars; v++ {
			var bits byte
			switch e.Rng.Intn(4) {
			case 0, 1:
				bits = 0b01 // positive literal
			case 2:
				bits = 0b10 // negative literal
			default:
				bits = 0b11 // don't-care
			}
			setPair(buf, v, bits)
		}
		e.Write(p, 0, buf)
		cover = append(cover, p)
	}
	return cover
}

func (m Minimizer) freeCube(e *mutator.Env, p mutator.Ptr) {
	e.Call(0xE59A, func() { e.Free(p) })
}

func (m Minimizer) load(e *mutator.Env, p mutator.Ptr) []byte {
	buf := make([]byte, m.cubeBytes())
	e.Read(p, 0, buf)
	return buf
}

// distance1 reports whether cubes a and b agree everywhere except one
// variable whose literals are complementary — the QM merge condition —
// returning that variable.
func (m Minimizer) distance1(e *mutator.Env, a, b mutator.Ptr) (int, bool) {
	ab, bb := m.load(e, a), m.load(e, b)
	diffVar := -1
	for v := 0; v < m.Vars; v++ {
		pa, pb := getPair(ab, v), getPair(bb, v)
		if pa == pb {
			continue
		}
		// Complementary literals merge; anything else is distance > 1.
		if (pa == 0b01 && pb == 0b10) || (pa == 0b10 && pb == 0b01) {
			if diffVar >= 0 {
				return 0, false
			}
			diffVar = v
			continue
		}
		return 0, false
	}
	if diffVar < 0 {
		return 0, false // identical cubes: duplicate, not a merge
	}
	return diffVar, true
}

// combine allocates the merged cube: a with variable v made don't-care.
func (m Minimizer) combine(e *mutator.Env, a, _ mutator.Ptr, v int) mutator.Ptr {
	ab := m.load(e, a)
	setPair(ab, v, 0b11)
	var p mutator.Ptr
	e.Call(0xE59B, func() { p = e.Malloc(m.cubeBytes()) })
	e.Write(p, 0, ab)
	return p
}

// dropContained removes cubes contained in another cube of the cover
// (a ⊆ b iff b's literal set is a subset bitwise: a&b == a on every pair,
// with b's don't-cares covering a's literals).
func (m Minimizer) dropContained(e *mutator.Env, cover []mutator.Ptr) []mutator.Ptr {
	out := make([]mutator.Ptr, 0, len(cover))
	for i, a := range cover {
		contained := false
		for j, b := range cover {
			if i == j {
				continue
			}
			if m.contains(e, b, a) && !(m.contains(e, a, b) && i < j) {
				contained = true
				break
			}
		}
		if contained {
			m.freeCube(e, a)
		} else {
			out = append(out, a)
		}
	}
	return out
}

// contains reports whether cube big covers cube small.
func (m Minimizer) contains(e *mutator.Env, big, small mutator.Ptr) bool {
	bb, sb := m.load(e, big), m.load(e, small)
	for v := 0; v < m.Vars; v++ {
		pb, ps := getPair(bb, v), getPair(sb, v)
		if pb&ps != ps {
			return false
		}
	}
	return true
}

// checksum folds a cube into a layout-independent signature. Canary
// bytes read through a dangled cube change the signature — the
// "treats it as valid data and aborts" behaviour of §7.2.
func (m Minimizer) checksum(e *mutator.Env, p mutator.Ptr) uint32 {
	buf := m.load(e, p)
	var h uint32 = 5381
	for v := 0; v < m.Vars; v++ {
		pair := getPair(buf, v)
		if pair == 0 {
			// An empty literal set is impossible in a well-formed cube:
			// the cover is corrupt (espresso's internal consistency
			// checks abort here). Canary or zero-filled bytes read
			// through a dangled cube land here with high probability.
			e.Fail("espresso-qm: malformed cube (empty literal pair)")
		}
		h = h*33 + uint32(pair)
	}
	return h
}

func setPair(buf []byte, v int, bits byte) {
	idx, shift := v/4, uint(v%4)*2
	buf[idx] = buf[idx]&^(0b11<<shift) | bits<<shift
}

func getPair(buf []byte, v int) byte {
	idx, shift := v/4, uint(v%4)*2
	return buf[idx] >> shift & 0b11
}
