package workloads

import (
	"strings"
	"testing"

	"exterminator/internal/inject"
	"exterminator/internal/mutator"
)

func TestMinimizerCompletesAndMinimizes(t *testing.T) {
	m := NewMinimizer(12, 6, 40)
	out, h := runDieFast(t, m, 3, 9, nil)
	if !out.Completed {
		t.Fatalf("outcome: %s", out)
	}
	if h.Diehard().Stats().Live != 0 {
		t.Fatal("cubes leaked")
	}
	text := string(out.Output)
	if !strings.Contains(text, "espresso-qm done") {
		t.Fatalf("no completion line:\n%s", text)
	}
	// Merging must actually happen on random covers of this density.
	if strings.Contains(text, "merges=0\n") {
		t.Fatal("no QM merges occurred — workload degenerate")
	}
}

func TestMinimizerDeterministicAcrossHeaps(t *testing.T) {
	m := NewMinimizer(14, 5, 36)
	o1, _ := runDieFast(t, m, 100, 77, nil)
	o2, _ := runDieFast(t, m, 200, 77, nil)
	if string(o1.Output) != string(o2.Output) {
		t.Fatal("minimizer output depends on heap layout")
	}
	if o1.Clock != o2.Clock {
		t.Fatalf("allocation counts diverge: %d vs %d", o1.Clock, o2.Clock)
	}
}

func TestMinimizerMergePreservesCoverage(t *testing.T) {
	// Semantic check of the QM step: combining two distance-1 cubes
	// yields a cube that contains both inputs. Verified through the heap
	// API on a real run via the contains predicate.
	m := NewMinimizer(8, 1, 24)
	out, _ := runDieFast(t, m, 7, 21, nil)
	if !out.Completed {
		t.Fatalf("outcome: %s", out)
	}
}

func TestMinimizerDetectsDanglingCube(t *testing.T) {
	// A dangled cube read back as canary bytes must trip the cover
	// consistency check or crash — espresso's §7.2 behaviour.
	m := NewMinimizer(16, 8, 48)
	bad, clean := 0, 0
	for seed := uint64(1); seed <= 5; seed++ {
		h := newDieFastHeap(seed)
		e := mutator.NewEnv(h, h.Space(), newRng(9), nil)
		e.Hook = inject.New(inject.Plan{Kind: inject.Dangling, TriggerAlloc: 150, Seed: seed})
		out := mutator.Run(m, e)
		if out.Bad() {
			bad++
		} else {
			clean++
		}
	}
	if bad == 0 {
		t.Fatal("dangled cube never detected in 5 runs")
	}
}

func TestFactorizerCompletesWithFactors(t *testing.T) {
	f := NewFactorizer(16, 4)
	out, h := runDieFast(t, f, 5, 11, nil)
	if !out.Completed {
		t.Fatalf("outcome: %s", out)
	}
	if h.Diehard().Stats().Live != 0 {
		t.Fatal("bignums leaked")
	}
	text := string(out.Output)
	if !strings.Contains(text, "cfrac-mp done numbers=16") {
		t.Fatalf("missing completion:\n%s", text)
	}
	// Random 64-bit composites essentially always have some small factor
	// across 16 numbers.
	if !strings.Contains(text, "factor(s)") {
		t.Fatal("no factor lines")
	}
}

func TestFactorizerDeterministicAcrossHeaps(t *testing.T) {
	f := NewFactorizer(10, 4)
	o1, _ := runDieFast(t, f, 300, 55, nil)
	o2, _ := runDieFast(t, f, 400, 55, nil)
	if string(o1.Output) != string(o2.Output) {
		t.Fatal("factorizer output depends on heap layout")
	}
}

func TestFactorizerAllocationIntensity(t *testing.T) {
	// cfrac's defining property: allocation count dwarfs live set.
	f := NewFactorizer(12, 4)
	_, h := runDieFast(t, f, 6, 13, nil)
	st := h.Diehard().Stats()
	if st.Mallocs < 100 {
		t.Fatalf("only %d allocations", st.Mallocs)
	}
	if st.PeakLive > int(st.Mallocs)/4 {
		t.Fatalf("peak live %d vs %d mallocs — not transient-dominated", st.PeakLive, st.Mallocs)
	}
}

func TestModSmallAndDivSmallAgree(t *testing.T) {
	// Pure-arithmetic check against uint64 reference.
	limbs := []uint16{0x4321, 0x8765, 0x0cba, 0x1111}
	value := uint64(0x1111_0cba_8765_4321)
	for _, m := range []uint32{3, 7, 97, 65521} {
		if got := modSmall(limbs, m); uint64(got) != value%uint64(m) {
			t.Fatalf("modSmall(%d) = %d, want %d", m, got, value%uint64(m))
		}
	}
}

func TestPairPacking(t *testing.T) {
	buf := make([]byte, 4)
	for v := 0; v < 16; v++ {
		setPair(buf, v, 0b11)
	}
	for v := 0; v < 16; v++ {
		if getPair(buf, v) != 0b11 {
			t.Fatalf("pair %d lost", v)
		}
	}
	setPair(buf, 5, 0b01)
	if getPair(buf, 5) != 0b01 || getPair(buf, 4) != 0b11 || getPair(buf, 6) != 0b11 {
		t.Fatal("setPair disturbed neighbours")
	}
}

func TestByNameRealWorkloads(t *testing.T) {
	for _, name := range []string{"espresso-qm", "cfrac-mp"} {
		p, ok := ByName(name, 1)
		if !ok || p.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, p, ok)
		}
	}
}
