package workloads

import (
	"strings"
	"testing"

	"exterminator/internal/correct"
	"exterminator/internal/diefast"
	"exterminator/internal/freelist"
	"exterminator/internal/mem"
	"exterminator/internal/mutator"
	"exterminator/internal/patch"
	"exterminator/internal/site"
	"exterminator/internal/xrand"
)

func runDieFast(t *testing.T, p mutator.Program, heapSeed, progSeed uint64, input []byte) (*mutator.Outcome, *diefast.Heap) {
	t.Helper()
	h := diefast.New(diefast.DefaultConfig(), xrand.New(heapSeed))
	h.OnError = func(diefast.Event) {}
	e := mutator.NewEnv(h, h.Space(), xrand.New(progSeed), input)
	return mutator.Run(p, e), h
}

func TestAllSyntheticProgramsComplete(t *testing.T) {
	for _, p := range append(AllocIntensive(1), SPECLike(1)...) {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			out, h := runDieFast(t, p, 11, 22, nil)
			if !out.Completed {
				t.Fatalf("outcome: %s", out)
			}
			if len(out.Output) == 0 {
				t.Fatal("no output")
			}
			if len(h.Events()) != 0 {
				t.Fatalf("clean workload raised DieFast events: %v", h.Events())
			}
			st := h.Diehard().Stats()
			if st.Mallocs == 0 || st.Frees == 0 {
				t.Fatal("no allocator activity")
			}
			// Everything allocated was freed (final sweep).
			if st.Live != 0 {
				t.Fatalf("%d objects leaked", st.Live)
			}
		})
	}
}

func TestSyntheticDeterministicAcrossHeaps(t *testing.T) {
	p := Synthetic{Profile{Name: "det", Ops: 1500, ComputePerOp: 4, AllocEvery: 1,
		SizeMin: 8, SizeMax: 128, LiveTarget: 40, PointerChase: true, Sites: 8}}
	o1, _ := runDieFast(t, p, 100, 7, nil)
	o2, _ := runDieFast(t, p, 200, 7, nil)
	if string(o1.Output) != string(o2.Output) {
		t.Fatal("output depends on heap layout")
	}
	if o1.Clock != o2.Clock {
		t.Fatalf("allocation counts diverged: %d vs %d", o1.Clock, o2.Clock)
	}
}

func TestAllocIntensiveAllocatesMoreThanSPEC(t *testing.T) {
	// The defining contrast behind Figure 7's two groups.
	_, hAlloc := runDieFast(t, AllocIntensive(1)[0], 1, 2, nil)
	_, hSpec := runDieFast(t, SPECLike(1)[4], 1, 2, nil) // crafty
	ai := float64(hAlloc.Diehard().Stats().Mallocs)
	sp := float64(hSpec.Diehard().Stats().Mallocs)
	if ai < 10*sp {
		t.Fatalf("alloc-intensive %v vs SPEC-like %v mallocs: ratio too small", ai, sp)
	}
}

func TestSquidBenignTraffic(t *testing.T) {
	out, h := runDieFast(t, NewSquid(), 3, 4, SquidBenignInput(200))
	if !out.Completed {
		t.Fatalf("outcome: %s", out)
	}
	if len(h.Events()) != 0 {
		t.Fatalf("benign squid corrupted heap: %v", h.Events())
	}
	if !strings.Contains(string(out.Output), "squid done") {
		t.Fatalf("output: %q", out.Output)
	}
}

func TestSquidHostileCorruptsHeapUnderDieFast(t *testing.T) {
	// Under DieFast the overflow is tolerated (objects are randomly
	// placed), but the canary scan finds the 6-byte corruption.
	corrupted := 0
	for seed := uint64(1); seed <= 5; seed++ {
		out, h := runDieFast(t, NewSquid(), seed, 4, SquidHostileInput(200, 100))
		if out.Crashed {
			continue // overflow walked off a miniheap: possible
		}
		if len(h.Scan(false)) > 0 || len(h.Events()) > 0 {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("hostile input never left detectable corruption in 5 runs")
	}
}

func TestSquidCrashesUnderFreelist(t *testing.T) {
	// The paper: "certain inputs cause Squid to crash with the GNU libc
	// allocator". The 6-byte overflow smashes the next inline header.
	rng := xrand.New(9)
	crashed := 0
	for seed := 0; seed < 5; seed++ {
		fl := freelist.New(mem.NewSpace(rng.Split()), rng.Split())
		e := mutator.NewEnv(fl, fl.Space(), xrand.New(4), SquidHostileInput(200, 100))
		out := mutator.Run(NewSquid(), e)
		if out.Crashed {
			crashed++
		}
	}
	if crashed == 0 {
		t.Fatal("hostile squid input never crashed the freelist allocator")
	}
}

func TestSquidFixedBySixBytePad(t *testing.T) {
	// The paper's punchline: a pad of exactly 6 bytes at the culprit
	// site fixes the error.
	h := diefast.New(diefast.DefaultConfig(), xrand.New(77))
	h.OnError = func(diefast.Event) {}
	a := correct.New(h)
	// The culprit site is storeHost's allocation, reached via Call(0x5151D)
	// from Run: compute its site hash the same way the program does.
	e := mutator.NewEnv(a, h.Space(), xrand.New(4), SquidHostileInput(200, 100))
	// Discover the culprit site from an unpatched run first.
	out := mutator.Run(NewSquid(), e)
	if out.Crashed {
		t.Skip("layout crashed before scan")
	}
	corr := h.Scan(false)
	if len(corr) == 0 {
		t.Skip("no corruption observed this seed")
	}

	// Find the hostile allocation's site: the culprit is the object
	// preceding the corruption; in this workload every storeHost call
	// shares one site, so take it from any cache buffer.
	var culpritSite uint32
	for _, mh := range h.Diehard().Miniheaps() {
		for s := 0; s < mh.Slots; s++ {
			if m := mh.Meta(s); m.ID != 0 {
				if m.AllocSite != 0 && culpritSite == 0 {
					culpritSite = uint32(m.AllocSite)
				}
			}
		}
	}

	// Re-run with the pad patch; no corruption may remain.
	h2 := diefast.New(diefast.DefaultConfig(), xrand.New(78))
	h2.OnError = func(diefast.Event) {}
	a2 := correct.New(h2)
	ps := patch.New()
	// Pad every site by 6 (superset of the single-culprit patch; the
	// precise-site version is exercised in the modes integration tests).
	seen := map[uint32]bool{}
	e2 := mutator.NewEnv(a2, h2.Space(), xrand.New(4), SquidHostileInput(200, 100))
	_ = seen
	ps.AddPad(site.ID(siteOfSquidStore()), squidOverflowLen)
	a2.Reload(ps)
	out2 := mutator.Run(NewSquid(), e2)
	if !out2.Completed {
		t.Fatalf("patched run did not complete: %s", out2)
	}
	if len(h2.Scan(false)) != 0 {
		t.Fatal("corruption remains despite 6-byte pad")
	}
}

// siteOfSquidStore computes the call-site hash of the vulnerable
// allocation (Run pushes 0x5151D, storeHost allocates at depth 1).
func siteOfSquidStore() uint32 {
	var st siteStack
	st.push(0x5151D)
	return st.hash()
}

// minimal re-implementation to avoid exporting internals: mirrors
// site.HashPCs over a single frame.
type siteStack struct{ pcs []uint64 }

func (s *siteStack) push(pc uint64) { s.pcs = append(s.pcs, pc) }
func (s *siteStack) hash() uint32 {
	var h uint32 = 5381
	for i := 0; i < 5; i++ {
		var pc uint32
		idx := len(s.pcs) - 5 + i
		if idx >= 0 {
			pc = uint32(s.pcs[idx])
		}
		h = h*33 + pc
	}
	return h
}

func TestMozillaNondeterministicAcrossRuns(t *testing.T) {
	// Different program seeds → different allocation counts: the reason
	// iterative/replicated modes cannot handle Mozilla (§7.2).
	p := NewMozilla(12)
	in := MozillaSession(20, false)
	o1, _ := runDieFast(t, p, 1, 111, in)
	o2, _ := runDieFast(t, p, 1, 222, in)
	if o1.Clock == o2.Clock {
		t.Fatal("mozilla allocation count identical across program seeds — not nondeterministic")
	}
	if !o1.Completed || !o2.Completed {
		t.Fatal("benign sessions did not complete")
	}
}

func TestMozillaTriggerCorrupts(t *testing.T) {
	corrupted := 0
	for seed := uint64(1); seed <= 6; seed++ {
		out, h := runDieFast(t, NewMozilla(12), seed, seed*31, MozillaSession(5, true))
		if out.Crashed {
			continue
		}
		if len(h.Scan(false)) > 0 {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("IDN page never left detectable corruption")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"espresso", "cfrac", "gzip", "twolf", "squid", "mozilla"} {
		if _, ok := ByName(name, 1); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("no-such-benchmark", 1); ok {
		t.Error("phantom benchmark")
	}
}

func TestHostOfAndUnescape(t *testing.T) {
	if hostOf("http://a.b.c/d/e") != "a.b.c" {
		t.Fatal("hostOf")
	}
	if hostOf("plain-host") != "plain-host" {
		t.Fatal("hostOf bare")
	}
	if unescape("a%41b") != "aAb" {
		t.Fatalf("unescape: %q", unescape("a%41b"))
	}
	if unescape("x%0d%0ay") != "x\r\ny" {
		t.Fatal("unescape crlf")
	}
}

func BenchmarkEspressoDieFast(b *testing.B) {
	p, _ := ByName("espresso", 1)
	for i := 0; i < b.N; i++ {
		h := diefast.New(diefast.DefaultConfig(), xrand.New(uint64(i)))
		e := mutator.NewEnv(h, h.Space(), xrand.New(7), nil)
		mutator.Run(p, e)
	}
}

// newDieFastHeap and newRng are shared helpers for the real-workload
// tests.
func newDieFastHeap(seed uint64) *diefast.Heap {
	h := diefast.New(diefast.DefaultConfig(), xrand.New(seed))
	h.OnError = func(diefast.Event) {}
	return h
}

func newRng(seed uint64) *xrand.RNG { return xrand.New(seed) }
