// Mozilla analogue for the cumulative-mode case study of §7.2 (bug
// 307259): a heap overflow in the processing of Unicode (IDN) characters
// in domain names. The workload is deliberately nondeterministic — page
// rendering draws on the program RNG for layout work ("even slight
// differences in moving the mouse cause allocation sequences to
// diverge") — so iterative and replicated modes cannot align object ids,
// and only cumulative mode can isolate the error.
package workloads

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"

	"exterminator/internal/mutator"
)

// mozillaOverflowLen is the overflow size of the simulated IDN bug.
const mozillaOverflowLen = 8

// Mozilla is the browser program. Input is a newline-separated list of
// URLs to visit; URLs whose host starts with "xn--" take the buggy IDN
// decoding path.
type Mozilla struct {
	// DOMFanout controls per-page allocation volume.
	DOMFanout int
}

// NewMozilla returns the program.
func NewMozilla(fanout int) Mozilla {
	if fanout <= 0 {
		fanout = 12
	}
	return Mozilla{DOMFanout: fanout}
}

// Name implements mutator.Program.
func (Mozilla) Name() string { return "mozilla" }

// MozillaSession builds an input of n benign pages followed (optionally)
// by the IDN page that triggers the bug — the paper's two case studies:
// immediate (n=0: load the proof-of-concept right away) and browse-first
// (navigate a selection of pages, then hit the bug).
func MozillaSession(benignPages int, includeTrigger bool) []byte {
	var b bytes.Buffer
	for i := 0; i < benignPages; i++ {
		fmt.Fprintf(&b, "http://news-site-%d.example.com/story/%d\n", i%9, i)
	}
	if includeTrigger {
		// The decoded host is exactly 32 bytes (a size-class boundary),
		// so the decoder's extra normalization bytes cross into the next
		// object — the geometry of the original IDN bug's buffer.
		fmt.Fprintf(&b, "http://xn--%s.com/\n", strings.Repeat("b", 28))
	}
	return b.Bytes()
}

// Run implements mutator.Program.
func (m Mozilla) Run(e *mutator.Env) {
	sc := bufio.NewScanner(bytes.NewReader(e.Input))
	pages := 0
	for sc.Scan() {
		url := strings.TrimSpace(sc.Text())
		if url == "" {
			continue
		}
		m.loadPage(e, url)
		pages++
	}
	e.Printf("mozilla rendered %d pages\n", pages)
}

func (m Mozilla) loadPage(e *mutator.Env, url string) {
	host := hostOf(strings.TrimPrefix(url, "http://"))

	// Host processing. The IDN path has the overflow.
	if strings.HasPrefix(host, "xn--") {
		e.Call(0x307259, func() { m.decodeIDN(e, host) })
	} else {
		e.Call(0x30700, func() {
			p := e.Malloc(len(host) + 1)
			e.Write(p, 0, []byte(host))
			e.Free(p)
		})
	}

	// Text shaping: browsers churn through small string buffers for every
	// page. These share the IDN buffer's size class, so the heap's free
	// space there is realistically salted with canaried slots.
	e.Call(0x30A00, func() {
		n := 12 + e.Rng.Intn(8)
		for i := 0; i < n; i++ {
			sz := 17 + e.Rng.Intn(16)
			p := e.Malloc(sz)
			e.Write(p, 0, []byte("text-run")[:8])
			e.Free(p)
		}
	})

	// Nondeterministic DOM construction: node counts and sizes depend on
	// the run's program RNG (mouse movement, timers, network jitter).
	nodes := m.DOMFanout + e.Rng.Intn(m.DOMFanout)
	var dom []mutator.Ptr
	var domSizes []int
	for i := 0; i < nodes; i++ {
		sz := 24 + e.Rng.Intn(160)
		var p mutator.Ptr
		e.Call(0x30800+uint64(i%5), func() { p = e.Malloc(sz) })
		buf := make([]byte, sz)
		for j := range buf {
			buf[j] = byte(j * 3)
		}
		e.Write(p, 0, buf)
		dom = append(dom, p)
		domSizes = append(domSizes, sz)
	}
	// Layout: touch nodes in random order (more nondeterminism).
	for i := 0; i < len(dom); i++ {
		k := e.Rng.Intn(len(dom))
		var b [1]byte
		e.Read(dom[k], 0, b[:])
	}
	// Teardown.
	for i, p := range dom {
		_ = domSizes[i]
		e.Call(0x30900, func() { e.Free(p) })
	}
}

// decodeIDN is the buggy path: the output buffer is sized for the ASCII
// form but the decoder appends mozillaOverflowLen extra bytes of
// normalization state past the end.
func (m Mozilla) decodeIDN(e *mutator.Env, host string) {
	decoded := strings.TrimPrefix(host, "xn--")
	size := len(decoded)
	if size < 1 {
		size = 1
	}
	p := e.Malloc(size)
	e.Write(p, 0, []byte(decoded))
	// BUG (307259 analogue): normalization writes past the buffer.
	extra := make([]byte, mozillaOverflowLen)
	for i := range extra {
		extra[i] = byte(0xD8 + i) // UTF-16 surrogate-ish garbage
	}
	e.Write(p, size, extra)
	e.Free(p)
}
