// Factorizer is a real multi-precision factoring workload — the job of
// cfrac, the paper's most allocation-intensive benchmark (2.32× in
// Figure 7). Numbers are little-endian base-2^16 limb arrays allocated
// on the simulated heap; trial division and Fermat steps allocate and
// free short-lived bignum temporaries at high rate, exactly cfrac's
// profile of tiny transient objects.
package workloads

import (
	"exterminator/internal/mutator"
)

// Factorizer factors a batch of pseudo-random composites.
type Factorizer struct {
	// Numbers is how many composites to factor.
	Numbers int
	// Limbs is the size of each composite in 16-bit limbs.
	Limbs int
}

// NewFactorizer returns a cfrac-scale workload.
func NewFactorizer(numbers, limbs int) Factorizer {
	if numbers <= 0 {
		numbers = 24
	}
	if limbs <= 0 {
		limbs = 4
	}
	return Factorizer{Numbers: numbers, Limbs: limbs}
}

// Name implements mutator.Program.
func (Factorizer) Name() string { return "cfrac-mp" }

// bignum helpers: numbers live in the simulated heap as 2-byte
// little-endian limbs. Every operation allocates its result — the
// functional-style bignum arithmetic cfrac's library uses.

func (f Factorizer) newNum(e *mutator.Env, limbs []uint16) mutator.Ptr {
	var p mutator.Ptr
	e.Call(0xCF4AC, func() { p = e.Malloc(2 * len(limbs)) })
	buf := make([]byte, 2*len(limbs))
	for i, l := range limbs {
		buf[2*i] = byte(l)
		buf[2*i+1] = byte(l >> 8)
	}
	e.Write(p, 0, buf)
	return p
}

func (f Factorizer) loadNum(e *mutator.Env, p mutator.Ptr, n int) []uint16 {
	buf := make([]byte, 2*n)
	e.Read(p, 0, buf)
	out := make([]uint16, n)
	for i := range out {
		out[i] = uint16(buf[2*i]) | uint16(buf[2*i+1])<<8
	}
	return out
}

func (f Factorizer) freeNum(e *mutator.Env, p mutator.Ptr) {
	e.Call(0xCF4AD, func() { e.Free(p) })
}

// modSmall computes value mod m over the heap-resident limbs.
func modSmall(limbs []uint16, m uint32) uint32 {
	var r uint64
	for i := len(limbs) - 1; i >= 0; i-- {
		r = (r<<16 | uint64(limbs[i])) % uint64(m)
	}
	return uint32(r)
}

// divSmall divides the limbs by d in place (heap round-trip), returning
// the new heap number and whether the division was exact.
func (f Factorizer) divSmall(e *mutator.Env, p mutator.Ptr, n int, d uint32) (mutator.Ptr, bool) {
	limbs := f.loadNum(e, p, n)
	out := make([]uint16, n)
	var rem uint64
	for i := n - 1; i >= 0; i-- {
		cur := rem<<16 | uint64(limbs[i])
		out[i] = uint16(cur / uint64(d))
		rem = cur % uint64(d)
	}
	q := f.newNum(e, out)
	return q, rem == 0
}

func isOne(limbs []uint16) bool {
	if limbs[0] != 1 {
		return false
	}
	for _, l := range limbs[1:] {
		if l != 0 {
			return false
		}
	}
	return true
}

// Run implements mutator.Program.
func (f Factorizer) Run(e *mutator.Env) {
	factored := 0
	for i := 0; i < f.Numbers; i++ {
		// A pseudo-random composite (force odd, nonzero top limb).
		limbs := make([]uint16, f.Limbs)
		for j := range limbs {
			limbs[j] = uint16(e.Rng.Uint32())
		}
		limbs[0] |= 1
		limbs[f.Limbs-1] |= 0x8000
		n := f.newNum(e, limbs)

		var factors []uint32
		// Trial division by small primes; every exact division allocates
		// the quotient and frees the old number (cfrac's churn).
		cur := n
		for _, prime := range smallPrimes {
			for {
				cl := f.loadNum(e, cur, f.Limbs)
				if isOne(cl) {
					break
				}
				if modSmall(cl, prime) != 0 {
					break
				}
				q, exact := f.divSmall(e, cur, f.Limbs, prime)
				if !exact {
					// modSmall said divisible but division disagrees:
					// the number's limbs were corrupted in memory.
					e.Fail("cfrac-mp: inconsistent arithmetic (corrupt bignum)")
				}
				f.freeNum(e, cur)
				cur = q
				factors = append(factors, prime)
				if len(factors) > 64 {
					break
				}
			}
		}
		// Fermat probe on the remainder: a few squarings mod the number,
		// allocating temporaries (compute + churn, no factor extraction).
		rl := f.loadNum(e, cur, f.Limbs)
		probe := uint64(2)
		for it := 0; it < 8; it++ {
			m := modSmall(rl, 65521)
			probe = probe * probe % uint64(65521)
			tmp := f.newNum(e, []uint16{uint16(probe), uint16(m)})
			f.freeNum(e, tmp)
		}

		sig := uint32(0)
		for _, fp := range factors {
			sig = sig*31 + fp
		}
		for _, l := range rl {
			sig = sig*33 + uint32(l)
		}
		e.Printf("cfrac-mp n%02d: %d small factor(s) sig=%08x\n", i, len(factors), sig)
		f.freeNum(e, cur)
		factored++
	}
	e.Printf("cfrac-mp done numbers=%d\n", factored)
}

var smallPrimes = []uint32{
	3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
	53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
}
