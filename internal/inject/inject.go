// Package inject plants memory errors into simulated programs at
// deterministic logical points — the reproduction of the fault injector
// that accompanies the DieHard distribution, which the paper uses for its
// §7.2 injected-fault experiments.
//
// A Plan fires at a fixed allocation ordinal. Because object ordinals are
// identical across replicas (same program seed and input), the same
// logical bug recurs in every replica and every iterative re-execution,
// exactly as a real deterministic bug would — while its *physical*
// manifestation (which neighbour gets smashed) differs per randomized
// heap. Victims are chosen from the live-object table by a PRNG seeded
// from the plan, so the choice is also replica-deterministic.
//
// Supported bug classes match Table 1: buffer overflows (forward),
// dangling pointers (premature free; the program's own later accesses
// become dangling reads/writes and its later free a double free), double
// frees, and invalid frees. Uninitialized reads need no injector: any
// program that reads before writing exercises them.
package inject

import (
	"fmt"

	"exterminator/internal/alloc"
	"exterminator/internal/mutator"
	"exterminator/internal/xrand"
)

// Kind classifies injected bugs.
type Kind int

const (
	// Overflow writes Size bytes past the end of a victim object.
	Overflow Kind = iota
	// Underflow writes Size bytes before the start of a victim object
	// (a backward overflow — the §2.1 extension).
	Underflow
	// Dangling frees a victim object underneath the program while the
	// program still uses it.
	Dangling
	// DoubleFree frees a victim object twice in a row.
	DoubleFree
	// InvalidFree frees an address never returned by the allocator.
	InvalidFree
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Overflow:
		return "overflow"
	case Underflow:
		return "underflow"
	case Dangling:
		return "dangling"
	case DoubleFree:
		return "double-free"
	case InvalidFree:
		return "invalid-free"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Plan describes one injected bug.
type Plan struct {
	Kind Kind
	// TriggerAlloc is the allocation ordinal at which the bug fires.
	TriggerAlloc uint64
	// Size is the overflow length in bytes (Overflow only). The paper
	// injects 4, 20 and 36 (§7.2).
	Size int
	// Seed drives victim selection (replica-deterministic).
	Seed uint64
	// Pattern is the first byte of the overflow string (subsequent bytes
	// increment), making overflow strings recognizable.
	Pattern byte
}

// Injector applies a Plan as a mutator.Hook.
type Injector struct {
	Plan
	fired bool

	// VictimOrd records which object the bug hit (diagnostics/tests).
	VictimOrd uint64
	// VictimPtr records the victim's address in this replica.
	VictimPtr mutator.Ptr
	// VictimSize records the victim's requested size.
	VictimSize int
}

var _ mutator.Hook = (*Injector)(nil)

// New returns an injector for the plan.
func New(plan Plan) *Injector {
	if plan.Pattern == 0 {
		plan.Pattern = 0xC3
	}
	return &Injector{Plan: plan}
}

// Fired reports whether the bug has been planted.
func (in *Injector) Fired() bool { return in.fired }

// AfterMalloc implements mutator.Hook.
func (in *Injector) AfterMalloc(e *mutator.Env, ord uint64, ptr mutator.Ptr, size int) {
	if in.fired || ord < in.TriggerAlloc {
		return
	}
	in.fired = true

	// Deterministic victim choice: seed-driven index into the live table
	// ordered by ordinal. Ordinals align across replicas, so every
	// replica picks the same logical object.
	rng := xrand.New(in.Seed ^ 0x1ec7a0)
	live := e.Live()
	if len(live) == 0 {
		return
	}
	victim := live[rng.Intn(len(live))]
	in.VictimOrd = victim.Ord
	in.VictimPtr = victim.Ptr
	in.VictimSize = victim.Size

	switch in.Kind {
	case Overflow:
		// Forward overflow: write Size bytes reaching past the victim's
		// allocation. Like the DieHard distribution's allocator-level
		// injector, the write starts at the victim's size-class boundary
		// so it always escapes the object (a write absorbed by class
		// rounding would be a non-bug). The write itself may trap (walks
		// off a miniheap) — a legitimate outcome of the bug.
		start := victim.Size
		if c := alloc.ClassForSize(victim.Size); c >= 0 {
			start = alloc.ClassSlotSize(c)
		}
		over := make([]byte, in.Size)
		for i := range over {
			over[i] = in.Pattern + byte(i)
		}
		e.Write(victim.Ptr, start, over)
	case Underflow:
		// Backward overflow: write Size bytes immediately before the
		// object's start (negative offsets; may trap at a miniheap's
		// first slot — a legitimate outcome).
		under := make([]byte, in.Size)
		for i := range under {
			under[i] = in.Pattern + byte(i)
		}
		e.Write(victim.Ptr, -in.Size, under)
	case Dangling:
		// Premature free underneath the program. DieFast may canary the
		// slot; the program's own future reads/writes of this object are
		// now dangling accesses, and its eventual Free a double free.
		e.FreeUnderneath(victim.Ptr)
	case DoubleFree:
		e.FreeUnderneath(victim.Ptr)
		e.FreeUnderneath(victim.Ptr)
		// The program no longer owns the object either way.
		e.Free(victim.Ptr)
	case InvalidFree:
		// An address the allocator never returned: interior pointer.
		e.Alloc.Free(victim.Ptr+1, e.Stack.Hash())
	}
}
