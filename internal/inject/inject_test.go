package inject

import (
	"testing"

	"exterminator/internal/alloc"
	"exterminator/internal/diefast"
	"exterminator/internal/mutator"
	"exterminator/internal/xrand"
)

// churnProg allocates and frees deterministically; the injector plants
// bugs while it runs.
type churnProg struct{ n int }

func (churnProg) Name() string { return "churn" }
func (p churnProg) Run(e *mutator.Env) {
	var live []mutator.Ptr
	for i := 0; i < p.n; i++ {
		ptr := e.Malloc(8 + e.Rng.Intn(56))
		live = append(live, ptr)
		if len(live) > 16 {
			k := e.Rng.Intn(len(live))
			e.Free(live[k])
			live = append(live[:k], live[k+1:]...)
		}
	}
	e.Printf("clock=%d\n", e.Alloc.Clock())
}

func runWith(t *testing.T, heapSeed uint64, plan Plan) (*mutator.Outcome, *Injector, *diefast.Heap) {
	t.Helper()
	h := diefast.New(diefast.DefaultConfig(), xrand.New(heapSeed))
	h.OnError = func(diefast.Event) {} // record only
	e := mutator.NewEnv(h, h.Space(), xrand.New(7), nil)
	inj := New(plan)
	e.Hook = inj
	out := mutator.Run(churnProg{n: 300}, e)
	return out, inj, h
}

func TestOverflowInjection(t *testing.T) {
	plan := Plan{Kind: Overflow, TriggerAlloc: 150, Size: 20, Seed: 9}
	out, inj, h := runWith(t, 1, plan)
	if !inj.Fired() {
		t.Fatal("injector never fired")
	}
	if out.Crashed {
		t.Skipf("overflow walked off a miniheap in this layout: %s", out)
	}
	// The overflow corrupted memory past the victim; a heap scan must see
	// canary corruption (victim neighbourhood is half canaried).
	if len(h.Scan(false)) == 0 && len(h.Events()) == 0 {
		t.Skip("overflow landed on uncanaried space in this layout")
	}
}

func TestVictimChoiceDeterministicAcrossHeaps(t *testing.T) {
	plan := Plan{Kind: Overflow, TriggerAlloc: 100, Size: 4, Seed: 42}
	_, i1, _ := runWith(t, 111, plan)
	_, i2, _ := runWith(t, 999, plan)
	if i1.VictimOrd != i2.VictimOrd {
		t.Fatalf("victims differ across heap seeds: %d vs %d", i1.VictimOrd, i2.VictimOrd)
	}
	if i1.VictimSize != i2.VictimSize {
		t.Fatal("victim sizes differ")
	}
}

func TestDanglingInjection(t *testing.T) {
	plan := Plan{Kind: Dangling, TriggerAlloc: 120, Seed: 3}
	out, inj, h := runWith(t, 2, plan)
	if !inj.Fired() {
		t.Fatal("injector never fired")
	}
	// The program later frees the object itself: that becomes a double
	// free, which DieHard tolerates. The run should not crash.
	if out.Crashed {
		t.Fatalf("dangling injection crashed DieFast run: %s", out)
	}
	if h.Diehard().Stats().DoubleFrees == 0 {
		t.Skip("program freed the victim before injection in this schedule")
	}
}

func TestDoubleFreeInjectionBenignOnDieFast(t *testing.T) {
	plan := Plan{Kind: DoubleFree, TriggerAlloc: 80, Seed: 5}
	out, _, h := runWith(t, 3, plan)
	if out.Crashed {
		t.Fatalf("double free crashed DieFast: %s", out)
	}
	if h.Diehard().Stats().DoubleFrees == 0 {
		t.Fatal("double free not recorded")
	}
}

func TestInvalidFreeInjectionBenignOnDieFast(t *testing.T) {
	plan := Plan{Kind: InvalidFree, TriggerAlloc: 80, Seed: 5}
	out, _, h := runWith(t, 4, plan)
	if out.Crashed {
		t.Fatalf("invalid free crashed DieFast: %s", out)
	}
	if h.Diehard().Stats().InvalidFrees == 0 {
		t.Fatal("invalid free not recorded")
	}
}

func TestInjectorFiresOnce(t *testing.T) {
	plan := Plan{Kind: Overflow, TriggerAlloc: 10, Size: 4, Seed: 1}
	_, inj, _ := runWith(t, 5, plan)
	if !inj.Fired() {
		t.Fatal("never fired")
	}
	// Firing more than once would corrupt more than one location; the
	// single-victim invariant is what makes the bug "a bug", so the
	// injector latches. (Indirectly verified: VictimOrd stable.)
	if inj.VictimOrd == 0 || inj.VictimOrd > 10 {
		t.Fatalf("victim ord %d outside live set at trigger", inj.VictimOrd)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{Overflow, Dangling, DoubleFree, InvalidFree, Kind(99)} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}

var _ alloc.Allocator = (*diefast.Heap)(nil)
