// Package version carries the build identity stamped into Exterminator
// binaries at link time:
//
//	go build -ldflags "-X exterminator/internal/version.Version=v1.2.3 \
//	                   -X exterminator/internal/version.Commit=$(git rev-parse --short HEAD)" ./cmd/fleetd
//
// Unstamped builds report "dev (unknown)". The daemons log it at
// startup, report it in GET /v1/status (StatusReply.Build), and expose
// it as the exterminator_build_info metric, so an operator can always
// tell which binary a partition runs.
package version

var (
	// Version is the human-readable release identifier.
	Version = "dev"
	// Commit is the VCS revision the binary was built from.
	Commit = "unknown"
)

// String renders the build identity as "version (commit)".
func String() string { return Version + " (" + Commit + ")" }
