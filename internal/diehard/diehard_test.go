package diehard

import (
	"testing"

	"exterminator/internal/alloc"
	"exterminator/internal/mem"
	"exterminator/internal/xrand"
)

func newHeap(seed uint64) *Heap {
	rng := xrand.New(seed)
	return New(DefaultConfig(), mem.NewSpace(rng.Split()), rng)
}

func TestMallocFreeBasic(t *testing.T) {
	h := newHeap(1)
	p, err := h.Malloc(100, 0xA)
	if err != nil {
		t.Fatal(err)
	}
	mh, slot, ok := h.Lookup(p)
	if !ok {
		t.Fatal("Lookup failed")
	}
	m := mh.Meta(slot)
	if m.ID != 1 || m.AllocSite != 0xA || m.ReqSize != 100 || m.AllocTime != 1 {
		t.Fatalf("meta = %+v", m)
	}
	if h.Clock() != 1 {
		t.Fatalf("clock = %d", h.Clock())
	}
	if st := h.Free(p, 0xB); st != alloc.FreeOK {
		t.Fatalf("free = %v", st)
	}
	if m.FreeSite != 0xB || m.FreeTime != 1 {
		t.Fatalf("free meta = %+v", m)
	}
}

func TestObjectIDsSequential(t *testing.T) {
	h := newHeap(2)
	for i := 1; i <= 50; i++ {
		p, _ := h.Malloc(24, 0)
		mh, slot, _ := h.Lookup(p)
		if got := mh.Meta(slot).ID; uint64(got) != uint64(i) {
			t.Fatalf("allocation %d got id %d", i, got)
		}
	}
}

func TestOccupancyInvariantUnderChurn(t *testing.T) {
	h := newHeap(3)
	rng := xrand.New(99)
	var live []mem.Addr
	for i := 0; i < 5000; i++ {
		if len(live) > 0 && rng.Bool(0.4) {
			k := rng.Intn(len(live))
			h.Free(live[k], 0)
			live = append(live[:k], live[k+1:]...)
		} else {
			p, err := h.Malloc(8+rng.Intn(200), 0)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		}
		if i%500 == 0 {
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNoOverlappingObjects(t *testing.T) {
	h := newHeap(4)
	type span struct{ lo, hi mem.Addr }
	var spans []span
	for i := 0; i < 300; i++ {
		p, _ := h.Malloc(64, 0)
		spans = append(spans, span{p, p + 64})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Fatalf("objects overlap: [%x,%x) and [%x,%x)", a.lo, a.hi, b.lo, b.hi)
			}
		}
	}
}

func TestDoubleFreeBenign(t *testing.T) {
	h := newHeap(5)
	p, _ := h.Malloc(32, 0)
	h.Free(p, 0)
	if st := h.Free(p, 0); st != alloc.FreeDouble {
		t.Fatalf("second free = %v", st)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("double free corrupted state: %v", err)
	}
	if h.Stats().DoubleFrees != 1 {
		t.Fatal("double free not counted")
	}
}

func TestInvalidFreeIgnored(t *testing.T) {
	h := newHeap(6)
	p, _ := h.Malloc(32, 0)
	cases := []mem.Addr{
		0xdead0000, // unmapped
		p + 1,      // interior pointer
	}
	for _, bad := range cases {
		if st := h.Free(bad, 0); st != alloc.FreeInvalid {
			t.Fatalf("Free(%#x) = %v, want invalid", bad, st)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The real object is still live and freeable.
	if st := h.Free(p, 0); st != alloc.FreeOK {
		t.Fatalf("valid free after invalid frees = %v", st)
	}
}

func TestGrowthDoubles(t *testing.T) {
	cfg := DefaultConfig()
	rng := xrand.New(7)
	h := New(cfg, mem.NewSpace(rng.Split()), rng)
	// Force repeated growth of one class.
	for i := 0; i < 1000; i++ {
		if _, err := h.Malloc(16, 0); err != nil {
			t.Fatal(err)
		}
	}
	minis := h.Miniheaps()
	if len(minis) < 2 {
		t.Fatalf("expected growth, got %d miniheaps", len(minis))
	}
	largest := 0
	for i, mh := range minis {
		if mh.Class != 0 {
			continue
		}
		if largest > 0 && mh.Slots != largest*2 {
			t.Fatalf("miniheap %d has %d slots, previous largest %d (want doubling)", i, mh.Slots, largest)
		}
		if mh.Slots > largest {
			largest = mh.Slots
		}
	}
	cap0, inUse0 := h.ClassInfo(0)
	if float64(inUse0)*cfg.M > float64(cap0) {
		t.Fatalf("invariant: inUse=%d capacity=%d", inUse0, cap0)
	}
}

func TestIndependentRandomizationAcrossSeeds(t *testing.T) {
	// Same allocation sequence, different seeds: addresses must differ
	// (this is the replica independence the isolator needs).
	h1, h2 := newHeap(100), newHeap(200)
	same := 0
	const n = 200
	for i := 0; i < n; i++ {
		p1, _ := h1.Malloc(48, 0)
		p2, _ := h2.Malloc(48, 0)
		if p1 == p2 {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/%d identical addresses across seeds", same, n)
	}
}

func TestSameSeedReproducible(t *testing.T) {
	h1, h2 := newHeap(42), newHeap(42)
	for i := 0; i < 200; i++ {
		p1, _ := h1.Malloc(48, 0)
		p2, _ := h2.Malloc(48, 0)
		if p1 != p2 {
			t.Fatalf("same seed diverged at allocation %d", i)
		}
	}
}

func TestRandomPlacementWithinClass(t *testing.T) {
	// Consecutive allocations should not be adjacent in address order
	// (freelist allocators are; DieHard is not).
	h := newHeap(8)
	var addrs []mem.Addr
	for i := 0; i < 100; i++ {
		p, _ := h.Malloc(16, 0)
		addrs = append(addrs, p)
	}
	adjacent := 0
	for i := 1; i < len(addrs); i++ {
		d := int64(addrs[i]) - int64(addrs[i-1])
		if d == 16 || d == -16 {
			adjacent++
		}
	}
	if adjacent > 20 {
		t.Fatalf("%d/99 consecutive allocations adjacent — not randomized", adjacent)
	}
}

func TestUnsatisfiableRequest(t *testing.T) {
	h := newHeap(9)
	if _, err := h.Malloc(alloc.MaxRequest+1, 0); err == nil {
		t.Fatal("huge malloc succeeded")
	}
	if _, err := h.Malloc(0, 0); err == nil {
		t.Fatal("zero malloc succeeded")
	}
}

func TestAllocLog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LogAllocs = true
	rng := xrand.New(10)
	h := New(cfg, mem.NewSpace(rng.Split()), rng)
	h.Malloc(100, 0xAA)
	h.Malloc(20, 0xBB)
	log := h.Log()
	if len(log) != 2 {
		t.Fatalf("log len = %d", len(log))
	}
	if log[0].Site != 0xAA || log[0].ID != 1 || log[0].Size != 100 {
		t.Fatalf("log[0] = %+v", log[0])
	}
	if log[1].Time != 2 || log[1].Class != alloc.ClassForSize(20) {
		t.Fatalf("log[1] = %+v", log[1])
	}
	mh := h.Miniheaps()[log[1].Mini]
	if got := mh.Meta(log[1].Slot).ID; got != 2 {
		t.Fatalf("log slot does not hold object: id=%d", got)
	}
}

func TestMarkBadSlotNeverReused(t *testing.T) {
	h := newHeap(11)
	mh, slot := h.AllocSlot(0)
	h.MarkBad(mh, slot)
	addr := mh.SlotAddr(slot)
	for i := 0; i < 500; i++ {
		p, _ := h.Malloc(16, 0)
		if p == addr {
			t.Fatal("bad-isolated slot was reused")
		}
	}
	// Freeing a bad slot is rejected.
	if st := h.Free(addr, 0); st != alloc.FreeInvalid {
		t.Fatalf("free of bad slot = %v", st)
	}
}

func TestFreeSlotsSeparateLiveObjects(t *testing.T) {
	// With M=2 at most half the slots of a class are ever in use, so live
	// objects are separated by expected ≥1 free slot — the implicit
	// fence-post property DieFast relies on (§3.3).
	h := newHeap(12)
	for i := 0; i < 400; i++ {
		h.Malloc(16, 0)
	}
	capacity, inUse := h.ClassInfo(0)
	if inUse*2 > capacity {
		t.Fatalf("occupancy %d/%d exceeds 1/M", inUse, capacity)
	}
}

func BenchmarkMalloc(b *testing.B) {
	h := newHeap(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := h.Malloc(64, 0)
		h.Free(p, 0)
	}
}

func BenchmarkMallocChurn(b *testing.B) {
	h := newHeap(1)
	rng := xrand.New(2)
	var live []mem.Addr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(live) > 64 {
			k := rng.Intn(len(live))
			h.Free(live[k], 0)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		p, _ := h.Malloc(16+rng.Intn(100), 0)
		live = append(live, p)
	}
}
