// Package diehard implements the adaptive DieHard allocator that
// Exterminator builds on (paper §3.1, Figure 2; Berger & Zorn, PLDI 2006
// and TR UMCS-2007-17).
//
// The heap is sized M times larger than the maximum the application
// needs: each size class maintains the invariant inUse ≤ capacity/M, and
// when an allocation would violate it, a new miniheap twice as large as
// the previous largest is mapped at a random address. Allocation probes
// uniformly among all slots of the class until it hits a free one —
// O(1) expected time under the occupancy invariant — which makes every
// heap layout independent of every other, the property all of
// Exterminator's probabilistic isolation rests on.
//
// Double frees are benign (a bitmap bit resets once) and invalid frees are
// detected by range checks and ignored (paper §2).
package diehard

import (
	"fmt"

	"exterminator/internal/alloc"
	"exterminator/internal/heap"
	"exterminator/internal/mem"
	"exterminator/internal/site"
	"exterminator/internal/xrand"
)

// Config parameterizes the heap.
type Config struct {
	// M is the heap multiplier: each size class is kept at most 1/M full.
	// The paper fixes M=2 for all experiments (§7.1).
	M float64
	// MinSlots is the slot count of the first miniheap of each class.
	MinSlots int
	// LogAllocs records an AllocRecord per allocation, needed by
	// cumulative-mode isolation (paper §5.1).
	LogAllocs bool
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config { return Config{M: 2, MinSlots: 32} }

func (c *Config) fill() {
	if c.M < 1.0+1e-9 {
		c.M = 2
	}
	if c.MinSlots <= 0 {
		c.MinSlots = 32
	}
}

// AllocRecord is one entry of the cumulative-mode allocation log: enough
// to recompute P(C_i) for any later-discovered corruption (paper §5.1).
type AllocRecord struct {
	ID    heap.ObjectID
	Site  site.ID
	Class int
	Time  uint64 // allocation clock (== ID)
	Mini  int    // miniheap index within the whole heap
	Slot  int
	Size  int
}

type sizeClass struct {
	class    int
	slotSize int
	minis    []*heap.Miniheap
	capacity int // total slots across minis
	inUse    int // allocated slots (including bad-isolated ones)
}

// Heap is a DieHard heap over a simulated address space.
type Heap struct {
	cfg     Config
	space   *mem.Space
	rng     *xrand.RNG
	classes [alloc.NumClasses]*sizeClass
	minis   []*heap.Miniheap // all miniheaps, creation order
	clock   uint64           // number of allocations to date
	stats   alloc.Stats
	log     []AllocRecord
}

var _ alloc.Allocator = (*Heap)(nil)

// New creates a heap. Both the miniheap placement and the slot choices
// draw from rng, so two heaps with different rng seeds are independently
// randomized (the replica property, §3.1).
func New(cfg Config, space *mem.Space, rng *xrand.RNG) *Heap {
	cfg.fill()
	return &Heap{cfg: cfg, space: space, rng: rng}
}

// Space returns the underlying simulated address space.
func (h *Heap) Space() *mem.Space { return h.space }

// Clock returns the allocation clock (allocations to date).
func (h *Heap) Clock() uint64 { return h.clock }

// M returns the configured heap multiplier.
func (h *Heap) M() float64 { return h.cfg.M }

// Stats returns a copy of the accumulated statistics.
func (h *Heap) Stats() alloc.Stats { return h.stats }

// Log returns the allocation log (nil unless Config.LogAllocs).
func (h *Heap) Log() []AllocRecord { return h.log }

// Miniheaps returns all miniheaps in creation order. The slice must not
// be modified.
func (h *Heap) Miniheaps() []*heap.Miniheap { return h.minis }

// AllocSlot reserves a uniformly random free slot in the given size class,
// growing the class if the occupancy invariant requires it. It does not
// stamp metadata — callers follow up with Commit (on success) or MarkBad
// (bad-object isolation). This split lets DieFast examine a slot's canary
// before an object id is consumed, keeping ids aligned across replicas.
func (h *Heap) AllocSlot(class int) (*heap.Miniheap, int) {
	sc := h.ensureClass(class)
	// Grow until (inUse+1) * M <= capacity.
	for float64(sc.inUse+1)*h.cfg.M > float64(sc.capacity) {
		h.grow(sc)
	}
	// Uniform probe over all slots of the class; redraw on collision.
	// Expected draws ≤ M/(M-1) under the invariant.
	for {
		r := h.rng.Intn(sc.capacity)
		for _, mh := range sc.minis {
			if r < mh.Slots {
				if mh.Take(r) {
					sc.inUse++
					return mh, r
				}
				break // occupied: redraw globally to stay uniform
			}
			r -= mh.Slots
		}
	}
}

// Commit stamps slot metadata for a new object of the requested size and
// returns its address. It advances the allocation clock and assigns the
// next object id.
func (h *Heap) Commit(mh *heap.Miniheap, slot, size int, allocSite site.ID) mem.Addr {
	h.clock++
	m := mh.Meta(slot)
	*m = heap.Meta{
		ID:        heap.ObjectID(h.clock),
		AllocSite: allocSite,
		AllocTime: h.clock,
		ReqSize:   uint32(size),
	}
	h.stats.NoteMalloc(size)
	if h.cfg.LogAllocs {
		h.log = append(h.log, AllocRecord{
			ID: m.ID, Site: allocSite, Class: mh.Class,
			Time: h.clock, Mini: mh.Index, Slot: slot, Size: size,
		})
	}
	return mh.SlotAddr(slot)
}

// MarkBad performs bad-object isolation (paper §3.3): the slot stays
// allocated so its corrupted contents are preserved for the error
// isolator, and it is never handed out again.
func (h *Heap) MarkBad(mh *heap.Miniheap, slot int) {
	mh.Meta(slot).Bad = true
	// The slot remains counted in inUse: it consumes capacity like a live
	// object, so the occupancy invariant still bounds probe time.
}

// Isolate bad-isolates a slot that may currently be free (e.g. a corrupted
// freed neighbour found during a free-time check): the slot is re-taken if
// necessary and marked bad, preserving its contents.
func (h *Heap) Isolate(mh *heap.Miniheap, slot int) {
	if mh.Take(slot) {
		h.classes[mh.Class].inUse++
	}
	h.MarkBad(mh, slot)
}

// Malloc allocates size bytes (plain DieHard: no canary checks).
func (h *Heap) Malloc(size int, allocSite site.ID) (mem.Addr, error) {
	class := alloc.ClassForSize(size)
	if class < 0 {
		return 0, fmt.Errorf("diehard: unsatisfiable request of %d bytes", size)
	}
	mh, slot := h.AllocSlot(class)
	return h.Commit(mh, slot, size, allocSite), nil
}

// Lookup resolves a pointer to its miniheap and slot. ok is false for
// addresses outside the heap or not at a slot boundary.
func (h *Heap) Lookup(ptr mem.Addr) (*heap.Miniheap, int, bool) {
	r := h.space.Find(ptr)
	if r == nil {
		return nil, 0, false
	}
	mh, ok := r.Tag.(*heap.Miniheap)
	if !ok {
		return nil, 0, false
	}
	slot, ok := mh.AddrSlot(ptr)
	if !ok || mh.SlotAddr(slot) != ptr {
		return nil, 0, false
	}
	return mh, slot, true
}

// Free releases ptr. Invalid and double frees are detected and ignored
// (paper §2, Table 1).
func (h *Heap) Free(ptr mem.Addr, freeSite site.ID) alloc.FreeStatus {
	mh, slot, ok := h.Lookup(ptr)
	if !ok {
		h.stats.NoteFree(alloc.FreeInvalid, 0)
		return alloc.FreeInvalid
	}
	m := mh.Meta(slot)
	if m.Bad {
		// A bad-isolated slot is not program-owned; treat as invalid.
		h.stats.NoteFree(alloc.FreeInvalid, 0)
		return alloc.FreeInvalid
	}
	if !mh.Release(slot) {
		h.stats.NoteFree(alloc.FreeDouble, 0)
		return alloc.FreeDouble
	}
	h.classes[mh.Class].inUse--
	m.FreeSite = freeSite
	m.FreeTime = h.clock
	h.stats.NoteFree(alloc.FreeOK, int(m.ReqSize))
	return alloc.FreeOK
}

// ClassInfo reports (capacity, inUse) for a size class, for tests and
// statistics.
func (h *Heap) ClassInfo(class int) (capacity, inUse int) {
	if h.classes[class] == nil {
		return 0, 0
	}
	return h.classes[class].capacity, h.classes[class].inUse
}

// CheckInvariants verifies the occupancy invariant and bitmap consistency;
// property tests call it after random operation sequences.
func (h *Heap) CheckInvariants() error {
	for _, sc := range h.classes {
		if sc == nil {
			continue
		}
		used := 0
		for _, mh := range sc.minis {
			used += mh.Used()
		}
		if used != sc.inUse {
			return fmt.Errorf("class %d: counted %d in use, tracked %d", sc.class, used, sc.inUse)
		}
		if float64(sc.inUse)*h.cfg.M > float64(sc.capacity)+1e-9 {
			return fmt.Errorf("class %d: occupancy invariant violated: %d in use, capacity %d, M=%v",
				sc.class, sc.inUse, sc.capacity, h.cfg.M)
		}
	}
	return nil
}

func (h *Heap) ensureClass(class int) *sizeClass {
	if h.classes[class] == nil {
		h.classes[class] = &sizeClass{class: class, slotSize: alloc.ClassSlotSize(class)}
	}
	return h.classes[class]
}

// grow maps a new miniheap twice as large as the previous largest in the
// class (paper §3.1: "twice as large as the previous largest miniheap").
func (h *Heap) grow(sc *sizeClass) {
	slots := h.cfg.MinSlots
	if n := len(sc.minis); n > 0 {
		largest := 0
		for _, mh := range sc.minis {
			if mh.Slots > largest {
				largest = mh.Slots
			}
		}
		slots = largest * 2
	}
	mh := heap.NewMiniheap(h.space, len(h.minis), sc.class, sc.slotSize, slots, h.clock)
	h.minis = append(h.minis, mh)
	sc.minis = append(sc.minis, mh)
	sc.capacity += slots
}
