package isolate

import (
	"testing"

	"exterminator/internal/heap"
	"exterminator/internal/image"
)

func objID(v uint64) heap.ObjectID { return heap.ObjectID(v) }

// pointerRichTrace builds replicas of a program whose live objects store
// cross-object pointers — the §4.1 case where naive byte diffing drowns
// in false victims because pointer values differ across randomized heaps.
func pointerRichImages(k int) []*image.Image {
	out := make([]*image.Image, k)
	for i := 0; i < k; i++ {
		out[i] = runTrace(uint64(5000+i*104729), 60, 32, func(r *replicaRun) {
			// Every even live object stores a pointer to the next odd
			// object at offset 8 (odd ids are freed by runTrace, so point
			// at even ones: even id -> even id + 2).
			for id := uint64(2); id+2 <= 60; id += 2 {
				src, dst := r.ptrs[objID(id)], r.ptrs[objID(id+2)]
				r.h.Space().Write64(src+8, dst)
			}
		})
	}
	return out
}

func TestPointerFilterSuppressesFalseVictims(t *testing.T) {
	imgs := pointerRichImages(3)

	full, err := Analyze(imgs)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := AnalyzeWithOptions(imgs, Options{NoPointerFilter: true, NoDistinctFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	// With filters, the pointer words are recognized as equivalent: no
	// live victims. Without them, every pointer-holding object looks
	// corrupted.
	if len(full.LiveVictims) != 0 {
		t.Fatalf("filters left %d false live victims", len(full.LiveVictims))
	}
	if len(naive.LiveVictims) < 10 {
		t.Fatalf("naive diff found only %d live victims; expected many false positives", len(naive.LiveVictims))
	}
}

func TestFiltersDoNotMaskRealOverflow(t *testing.T) {
	// The filters must not hide real corruption: an injected overflow is
	// still found with filters on (try several layout draws).
	for base := 0; base < 5; base++ {
		imgs := make([]*image.Image, 3)
		for i := range imgs {
			imgs[i] = runTrace(uint64(7000+base*31337+i*7919), 60, 32, overflowFault(8, 32, 20))
		}
		rep, err := Analyze(imgs)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Overflows) == 0 {
			continue
		}
		if rep.Overflows[0].CulpritID != 8 {
			t.Fatalf("culprit = %d", rep.Overflows[0].CulpritID)
		}
		return
	}
	t.Fatal("overflow never found across 5 layout draws")
}

func BenchmarkAnalyzeWithFilters(b *testing.B) {
	imgs := pointerRichImages(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(imgs)
	}
}

func BenchmarkAnalyzeNaiveDiff(b *testing.B) {
	imgs := pointerRichImages(3)
	opts := Options{NoPointerFilter: true, NoDistinctFilter: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeWithOptions(imgs, opts)
	}
}
