package isolate

import (
	"testing"

	"exterminator/internal/image"
	"exterminator/internal/mem"
)

// underflowFault writes b bytes immediately before the victim object —
// a backward overflow.
func underflowFault(victim uint64, b int) func(*replicaRun) {
	return func(r *replicaRun) {
		p := r.ptrs[objID(victim)]
		under := make([]byte, b)
		for i := range under {
			under[i] = byte(0xB0 + i)
		}
		r.h.Space().Write(p-mem.Addr(b), under)
	}
}

func TestUnderflowIsolatedAsBackward(t *testing.T) {
	const victim, size, b = 8, 32, 12
	foundRight, foundWrong := 0, 0
	for base := 0; base < 6; base++ {
		imgs := make([]*image.Image, 3)
		for i := range imgs {
			imgs[i] = runTrace(uint64(9000+base*4241+i*7919), 60, size, underflowFault(victim, b))
		}
		rep, err := Analyze(imgs)
		if err != nil {
			t.Fatal(err)
		}
		var top *OverflowFinding
		for i := range rep.Overflows {
			if rep.Overflows[i].Backward {
				top = &rep.Overflows[i]
				break
			}
		}
		if top == nil {
			continue // invisible in this layout draw
		}
		if top.CulpritID == victim {
			foundRight++
			if top.Pad < b {
				t.Errorf("front pad %d does not cover %d-byte underflow", top.Pad, b)
			}
			ps := rep.Patches()
			if ps.FrontPad(top.AllocSite) != top.Pad {
				t.Error("patch does not carry the front pad")
			}
		} else {
			foundWrong++
		}
	}
	if foundRight == 0 {
		t.Fatalf("underflow never isolated across 6 layout draws (wrong culprits: %d)", foundWrong)
	}
	if foundWrong > foundRight {
		t.Fatalf("wrong culprit dominates: %d right vs %d wrong", foundRight, foundWrong)
	}
}

func TestForwardOverflowNotMisreadAsBackward(t *testing.T) {
	// A forward overflow must still rank a forward culprit first.
	for base := 0; base < 6; base++ {
		imgs := make([]*image.Image, 4)
		for i := range imgs {
			imgs[i] = runTrace(uint64(11000+base*5557+i*7919), 60, 32, overflowFault(10, 32, 16))
		}
		rep, err := Analyze(imgs)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Overflows) == 0 {
			continue
		}
		if rep.Overflows[0].Backward {
			t.Fatalf("forward overflow ranked backward candidate first: %+v", rep.Overflows[0])
		}
		if rep.Overflows[0].CulpritID != 10 {
			t.Fatalf("culprit = %d", rep.Overflows[0].CulpritID)
		}
		return
	}
	t.Fatal("overflow never visible across 6 layout draws")
}
