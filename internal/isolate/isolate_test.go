package isolate

import (
	"testing"

	"exterminator/internal/canary"
	"exterminator/internal/diefast"
	"exterminator/internal/heap"
	"exterminator/internal/image"
	"exterminator/internal/mem"
	"exterminator/internal/site"
	"exterminator/internal/xrand"
)

// replicaRun executes the same logical allocation trace on a freshly
// seeded DieFast heap, applies fault (a deterministic logical bug), and
// returns the heap image — the test stand-in for one replica/iteration.
type replicaRun struct {
	h    *diefast.Heap
	ptrs map[heap.ObjectID]mem.Addr // live pointers by object id
}

func runTrace(seed uint64, nObjs int, objSize int, fault func(r *replicaRun)) *image.Image {
	h := diefast.New(diefast.DefaultConfig(), xrand.New(seed))
	h.OnError = func(diefast.Event) {} // record only
	r := &replicaRun{h: h, ptrs: make(map[heap.ObjectID]mem.Addr)}
	for i := 0; i < nObjs; i++ {
		p, err := h.Malloc(objSize, site.ID(0x1000+uint32(i%7)))
		if err != nil {
			panic(err)
		}
		r.ptrs[heap.ObjectID(i+1)] = p
	}
	// Churn so the heap reaches the paper's steady state, where free
	// space is (almost) entirely previously-freed, canaried slots.
	for i := 0; i < 12*nObjs; i++ {
		p, err := h.Malloc(objSize, site.ID(0x3000))
		if err != nil {
			panic(err)
		}
		h.Free(p, site.ID(0x3001))
	}
	// Free every other initial object so there are victims with known ids.
	for i := 1; i <= nObjs; i += 2 {
		h.Free(r.ptrs[heap.ObjectID(i)], site.ID(0x2000+uint32(i%3)))
	}
	if fault != nil {
		fault(r)
	}
	return image.Capture(h, "test")
}

// overflowFault writes b bytes of pattern past the end of object victim.
func overflowFault(victim heap.ObjectID, size int, b int) func(*replicaRun) {
	return func(r *replicaRun) {
		p := r.ptrs[victim]
		over := make([]byte, b)
		for i := range over {
			over[i] = byte(0xC0 + i)
		}
		// Forward overflow from the object's end; ignore faults (an
		// overflow that walks off a miniheap would segfault — not the
		// scenario under test).
		r.h.Space().Write(p+mem.Addr(size), over)
	}
}

// danglingFault overwrites a freed object's contents at a fixed offset —
// what a program writing through a dangling pointer does.
func danglingFault(victim heap.ObjectID) func(*replicaRun) {
	return func(r *replicaRun) {
		p := r.ptrs[victim]
		r.h.Space().Write(p+4, []byte("stale write via dangling ptr"))
	}
}

func images(k int, nObjs, objSize int, fault func(*replicaRun)) []*image.Image {
	out := make([]*image.Image, k)
	for i := 0; i < k; i++ {
		out[i] = runTrace(uint64(1000+i*7919), nObjs, objSize, fault)
	}
	return out
}

func TestNeedTwoImages(t *testing.T) {
	imgs := images(1, 20, 32, nil)
	if _, err := Analyze(imgs); err == nil {
		t.Fatal("single image accepted")
	}
}

func TestCleanHeapsNoFindings(t *testing.T) {
	rep, err := Analyze(images(3, 60, 32, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty() {
		t.Fatalf("clean run produced findings: %s", rep)
	}
	if rep.Patches().Len() != 0 {
		t.Fatal("clean run produced patches")
	}
}

func TestOverflowIsolatedWithThreeImages(t *testing.T) {
	// Paper §7.2: 3 images sufficed for every injected overflow.
	const victim, size, overflowLen = 8, 32, 20
	rep, err := Analyze(images(3, 60, size, overflowFault(victim, size, overflowLen)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Overflows) == 0 {
		t.Fatalf("overflow not found: %s", rep)
	}
	top := rep.Overflows[0]
	if top.CulpritID != victim {
		t.Fatalf("culprit = object %d, want %d (report %s)", top.CulpritID, victim, rep)
	}
	if top.AllocSite != site.ID(0x1000+uint32((victim-1)%7)) {
		t.Fatalf("culprit site = %v", top.AllocSite)
	}
	if top.Pad < overflowLen || top.Pad > overflowLen+16 {
		t.Fatalf("pad = %d, want ≥%d and close", top.Pad, overflowLen)
	}
	if top.Score < 0.99 {
		t.Fatalf("score = %v", top.Score)
	}
	ps := rep.Patches()
	if ps.Pad(top.AllocSite) != top.Pad {
		t.Fatal("patch does not carry the pad")
	}
}

func TestOverflowPadCoversAllSizes(t *testing.T) {
	// The paper's injected sizes: 4, 20, 36 bytes.
	for _, b := range []int{4, 20, 36} {
		rep, err := Analyze(images(3, 60, 64, overflowFault(10, 64, b)))
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Overflows) == 0 {
			t.Fatalf("overflow of %d bytes not found", b)
		}
		top := rep.Overflows[0]
		if top.CulpritID != 10 {
			t.Errorf("size %d: culprit %d, want 10", b, top.CulpritID)
		}
		if int(top.Pad) < b {
			t.Errorf("size %d: pad %d does not contain overflow", b, top.Pad)
		}
	}
}

func TestDanglingOverwriteClassified(t *testing.T) {
	const victim = 7 // freed (odd id), canaried in every image
	rep, err := Analyze(images(3, 60, 32, danglingFault(victim)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Danglings) != 1 {
		t.Fatalf("dangling findings = %d, want 1 (%s)", len(rep.Danglings), rep)
	}
	d := rep.Danglings[0]
	if d.VictimID != victim {
		t.Fatalf("victim = %d", d.VictimID)
	}
	if d.Pair.Alloc != site.ID(0x1000+uint32((victim-1)%7)) || d.Pair.Free != site.ID(0x2000+uint32(victim%3)) {
		t.Fatalf("site pair = %v", d.Pair)
	}
	// Deferral = 2(T−τ)+1.
	if d.Deferral != 2*(d.LastAlloc-d.FreeTime)+1 {
		t.Fatalf("deferral = %d, T=%d τ=%d", d.Deferral, d.LastAlloc, d.FreeTime)
	}
	if len(rep.Overflows) != 0 {
		t.Fatalf("dangling overwrite misclassified as overflow: %+v", rep.Overflows)
	}
	ps := rep.Patches()
	if ps.Deferral(d.Pair) != d.Deferral {
		t.Fatal("patch does not carry the deferral")
	}
}

func TestDanglingNotMistakenForOverflowAcrossManyTrials(t *testing.T) {
	// Theorem 1 in practice: identical overwrites are classified dangling,
	// not overflow, across repeated independent image sets.
	misclassified := 0
	for trial := 0; trial < 10; trial++ {
		imgs := make([]*image.Image, 3)
		for i := range imgs {
			imgs[i] = runTrace(uint64(trial*100+i+1)*104729, 60, 32, danglingFault(9))
		}
		rep, err := Analyze(imgs)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Overflows) > 0 {
			misclassified++
		}
	}
	if misclassified > 0 {
		t.Fatalf("%d/10 trials misclassified dangling as overflow", misclassified)
	}
}

func TestNoFalseCulpritWithMoreImages(t *testing.T) {
	// Theorem 3: with k ≥ 3 images the expected number of accidental
	// same-δ culprits is ≤ 1/(H−1). A trial may fail to *find* the culprit
	// (the corruption landed where no canary could witness it — iterative
	// mode then simply takes more images), but it must never finger the
	// wrong object.
	wrongCulprit, notFound := 0, 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		imgs := make([]*image.Image, 4)
		for i := range imgs {
			imgs[i] = runTrace(uint64(trial*1000+i+1)*7919, 80, 32, overflowFault(12, 32, 16))
		}
		rep, err := Analyze(imgs)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case len(rep.Overflows) == 0:
			notFound++
		case rep.Overflows[0].CulpritID != 12:
			wrongCulprit++
		}
	}
	if wrongCulprit > 0 {
		t.Fatalf("%d/%d trials picked the wrong culprit", wrongCulprit, trials)
	}
	if notFound > trials/2 {
		t.Fatalf("%d/%d trials found nothing", notFound, trials)
	}
}

func TestPatchesTakeTopRankedCulpritOnly(t *testing.T) {
	rep := &Report{
		Overflows: []OverflowFinding{
			{AllocSite: 0xA, Pad: 20, Score: 0.999},
			{AllocSite: 0xB, Pad: 50, Score: 0.5},
		},
	}
	ps := rep.Patches()
	if ps.Pad(0xA) != 20 || ps.Pad(0xB) != 0 {
		t.Fatalf("patches = %s", ps)
	}
}

func TestCorruptRunAt(t *testing.T) {
	c := canary.Canary(0xA1A2A3A5)
	buf := make([]byte, 32)
	c.Fill(buf)
	copy(buf[8:], []byte{1, 2, 3, 4})
	run, ok := corruptRunAt(c, buf, 9)
	if !ok || len(run) < 3 {
		t.Fatalf("run = %v, ok = %v", run, ok)
	}
	if _, ok := corruptRunAt(c, buf, 0); ok {
		t.Fatal("intact byte reported corrupt")
	}
	if _, ok := corruptRunAt(c, buf, 99); ok {
		t.Fatal("out of range reported corrupt")
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{}
	if rep.String() == "" {
		t.Fatal("empty string")
	}
}

func BenchmarkAnalyzeThreeImages(b *testing.B) {
	imgs := images(3, 100, 32, overflowFault(8, 32, 20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(imgs); err != nil {
			b.Fatal(err)
		}
	}
}
