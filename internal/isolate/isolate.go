// Package isolate implements Exterminator's iterative/replicated-mode
// probabilistic error isolation (paper §4).
//
// Input: k heap images of the same logical execution (same inputs, same
// allocation sequence, hence aligned object ids) over independently
// randomized heaps. Output: classified findings —
//
//   - buffer overflows: a culprit allocation site and the pad needed to
//     contain the overflow (§4.1, corrected by §6.1 pad patches);
//   - dangling-pointer overwrites: the victim's allocation/deallocation
//     site pair and a deallocation deferral (§4.2, corrected by §6.2).
//
// Classification follows the paper's probabilistic reasoning:
//
//   - A freed, canaried object overwritten with *identical* values in
//     every image is a dangling overwrite: Theorem 1 bounds the chance a
//     buffer overflow hits the same object identically in k heaps by
//     (1/2^k)(1/(H−S)^k).
//   - Otherwise, corrupted canaries are overflow evidence. A culprit is
//     an object that precedes corruption at the *same* byte distance δ in
//     every image (overflows are deterministic relative to the culprit's
//     base). Theorem 3: one extra image reduces the expected number of
//     accidental same-δ objects to 1/(H−1)^(k−2), so k=3 images suffice
//     in practice (§7.2 observes exactly 3).
//   - Live objects are diffed word-by-word across images; words that are
//     pointer-equivalent (same target object id and offset) or that
//     legitimately differ everywhere (pids, addresses) are filtered
//     before a discrepancy is declared (§4.1).
//
// Culprit-victim pairs are scored 1 − (1/256)^S where S is the total
// length of detected overflow strings; the patch is generated from the
// most highly ranked culprit.
package isolate

import (
	"errors"
	"fmt"
	"sort"

	"exterminator/internal/canary"
	"exterminator/internal/heap"
	"exterminator/internal/image"
	"exterminator/internal/mem"
	"exterminator/internal/patch"
	"exterminator/internal/site"
)

// OverflowFinding is a confirmed culprit-victim pairing.
type OverflowFinding struct {
	CulpritID heap.ObjectID
	AllocSite site.ID
	// Backward marks an underflow: corruption *precedes* the culprit, and
	// the patch is a leading pad (the §2.1 extension).
	Backward bool
	Delta    int     // |culprit start → first confirmed corrupted byte|
	Extent   int     // culprit start → end of corruption (forward only)
	Pad      uint32  // trailing pad (forward) or leading pad (backward)
	Score    float64 // 1 − (1/256)^S
	Evidence int     // S: total detected overflow-string bytes
	Obs      int     // number of images supporting the pair
	Victims  []heap.ObjectID
}

// DanglingFinding is a dangling-pointer overwrite.
type DanglingFinding struct {
	VictimID  heap.ObjectID
	Pair      site.Pair
	FreeTime  uint64 // τ: when the object was (prematurely) freed
	LastAlloc uint64 // T: allocation clock at failure
	Deferral  uint64 // 2(T−τ)+1 (§6.2)
}

// Report is the result of analyzing a set of heap images.
type Report struct {
	Overflows []OverflowFinding // sorted by descending score
	Danglings []DanglingFinding
	// LiveVictims lists live objects with unexplained cross-image
	// discrepancies (diagnostic; culprit confirmation is canary-based).
	LiveVictims []heap.ObjectID
}

// Patches converts the report into runtime patches: the most highly
// ranked overflow culprit's pad (§4.1) and a deferral for every dangling
// finding.
func (r *Report) Patches() *patch.Set {
	ps := patch.New()
	// Most highly ranked forward and backward culprits each yield one
	// patch (the paper patches only the top-ranked culprit).
	forwardDone, backwardDone := false, false
	for _, f := range r.Overflows {
		if f.Score <= 0 {
			continue
		}
		if f.Backward && !backwardDone {
			ps.AddFrontPad(f.AllocSite, f.Pad)
			backwardDone = true
		}
		if !f.Backward && !forwardDone {
			ps.AddPad(f.AllocSite, f.Pad)
			forwardDone = true
		}
		if forwardDone && backwardDone {
			break
		}
	}
	for _, d := range r.Danglings {
		ps.AddDeferral(d.Pair, d.Deferral)
	}
	return ps
}

// Empty reports whether no errors were isolated.
func (r *Report) Empty() bool {
	return len(r.Overflows) == 0 && len(r.Danglings) == 0
}

// corruption is one corrupted-canary range, in absolute addresses.
type corruption struct {
	obj   *image.Object
	start mem.Addr // first corrupted byte
	bytes []byte
}

// Options tunes the analysis; the zero value is the paper's algorithm.
type Options struct {
	// NoPointerFilter disables the §4.1 pointer-equivalence filter for
	// live-object words (ablation: how many false live victims appear).
	NoPointerFilter bool
	// NoDistinctFilter disables the legitimately-different (all pairwise
	// distinct) filter (ablation).
	NoDistinctFilter bool
}

// Analyze runs error isolation over k ≥ 2 images with the paper's
// algorithm.
func Analyze(images []*image.Image) (*Report, error) {
	return AnalyzeWithOptions(images, Options{})
}

// AnalyzeWithOptions runs error isolation with explicit options.
func AnalyzeWithOptions(images []*image.Image, opts Options) (*Report, error) {
	if len(images) < 2 {
		return nil, errors.New("isolate: need at least 2 heap images")
	}
	k := len(images)
	rep := &Report{}
	idx := newIndexes(images)

	// Phase 1: canary evidence per image.
	evidence := make([][]corruption, k)
	for h, img := range images {
		evidence[h] = canaryCorruptions(img)
	}

	// Phase 2: dangling overwrites — identical corruption of the same
	// freed object across every image where it is observable.
	danglingVictims := make(map[heap.ObjectID]bool)
	for h := range evidence {
		for _, c := range evidence[h] {
			id := c.obj.ID
			if id == 0 || danglingVictims[id] {
				continue
			}
			if identicalAcrossImages(images, id) {
				o := c.obj
				T := images[0].Clock
				rep.Danglings = append(rep.Danglings, DanglingFinding{
					VictimID:  id,
					Pair:      site.Pair{Alloc: o.AllocSite, Free: o.FreeSite},
					FreeTime:  o.FreeTime,
					LastAlloc: T,
					Deferral:  2*(T-o.FreeTime) + 1,
				})
				danglingVictims[id] = true
			}
		}
	}
	sort.Slice(rep.Danglings, func(i, j int) bool {
		return rep.Danglings[i].VictimID < rep.Danglings[j].VictimID
	})

	// Phase 3: overflow culprit identification. Anchor on each image's
	// corruption events; confirm candidates at constant δ in all others.
	type pairKey struct {
		culprit  heap.ObjectID
		delta    int
		backward bool
	}
	found := make(map[pairKey]*OverflowFinding)
	for anchor := 0; anchor < k; anchor++ {
		img := images[anchor]
		for _, ev := range evidence[anchor] {
			if danglingVictims[ev.obj.ID] {
				continue
			}
			mini := img.Mini(ev.obj.Mini)
			if mini == nil {
				continue
			}
			for _, cand := range idx[anchor].byMini[ev.obj.Mini] {
				if cand.ID == ev.obj.ID {
					continue
				}
				if cand.Addr < ev.start {
					// Forward overflow: candidate precedes the corruption
					// with δ past its end.
					delta := int(ev.start - cand.Addr)
					if delta < cand.ReqSize {
						continue // corruption inside the candidate itself
					}
					key := pairKey{cand.ID, delta, false}
					if _, ok := found[key]; ok {
						continue
					}
					if f := confirmCulprit(images, idx, cand.ID, delta, ev.bytes); f != nil {
						f.Victims = append(f.Victims, ev.obj.ID)
						found[key] = f
					}
					continue
				}
				// Backward overflow (underflow): candidate sits after the
				// corruption, which must end at or before its start.
				// Underflows reach a bounded distance below a buffer
				// (negative indices, header back-offsets); candidates
				// further away are overwhelmingly coincidences.
				const maxBackwardReach = 1024
				deltaBack := int(cand.Addr - ev.start)
				if deltaBack > maxBackwardReach {
					continue
				}
				if int(cand.Addr)-int(ev.start) < len(ev.bytes) {
					continue // corruption runs into the candidate: not an underflow shape
				}
				key := pairKey{cand.ID, deltaBack, true}
				if _, ok := found[key]; ok {
					continue
				}
				if f := confirmBackwardCulprit(images, idx, cand.ID, deltaBack, ev.bytes); f != nil {
					f.Victims = append(f.Victims, ev.obj.ID)
					found[key] = f
				}
			}
		}
	}
	for _, f := range found {
		rep.Overflows = append(rep.Overflows, *f)
	}
	sort.Slice(rep.Overflows, func(i, j int) bool {
		a, b := rep.Overflows[i], rep.Overflows[j]
		// Accidental same-δ candidates share the true culprit's
		// corruption events in a couple of images; the real culprit is
		// supported wherever the overflow was observable, so support
		// count dominates the ranking, then evidence length (§4.1's
		// similarity ranking).
		if a.Obs != b.Obs {
			return a.Obs > b.Obs
		}
		if a.Evidence != b.Evidence {
			return a.Evidence > b.Evidence
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		// Forward overflows start at the culprit's end: among otherwise
		// equal candidates, the one nearest its corruption is the
		// likeliest source.
		if a.Delta != b.Delta {
			return a.Delta < b.Delta
		}
		return a.CulpritID < b.CulpritID // deterministic order
	})

	// Phase 4: live-object discrepancies (diagnostic victims).
	rep.LiveVictims = liveVictims(images, idx, opts)
	return rep, nil
}

// indexes caches per-image lookup structures.
type index struct {
	img    *image.Image
	byMini map[int][]*image.Object // objects per miniheap, any state
	bySlot map[[2]int]*image.Object
}

func newIndexes(images []*image.Image) []*index {
	out := make([]*index, len(images))
	for h, img := range images {
		ix := &index{
			img:    img,
			byMini: make(map[int][]*image.Object),
			bySlot: make(map[[2]int]*image.Object),
		}
		for i := range img.Objects {
			o := &img.Objects[i]
			ix.byMini[o.Mini] = append(ix.byMini[o.Mini], o)
			ix.bySlot[[2]int{o.Mini, o.Slot}] = o
		}
		out[h] = ix
	}
	return out
}

// canaryCorruptions extracts corrupted canary ranges from freed-canaried
// and bad-isolated objects.
func canaryCorruptions(img *image.Image) []corruption {
	var out []corruption
	for i := range img.Objects {
		o := &img.Objects[i]
		if o.Live || !o.Canaried {
			continue
		}
		for _, r := range img.Canary.CorruptRanges(o.Data) {
			out = append(out, corruption{
				obj:   o,
				start: o.Addr + mem.Addr(r.Start),
				bytes: r.Bytes,
			})
		}
	}
	return out
}

// identicalAcrossImages reports whether object id is freed+canaried and
// "overwritten with identical values across multiple heap images" (§4.2).
//
// The comparison is value-based rather than range-based: a byte of the
// overwritten value can coincide with one image's canary pattern (each
// image has its own random canary), hiding that byte there. The rule is:
// at every offset where two images both detect corruption, the observed
// bytes must agree; the jointly-corrupt offsets must cover most of each
// image's corruption; and at least two images must observe corruption.
func identicalAcrossImages(images []*image.Image, id heap.ObjectID) bool {
	type obs struct {
		mask []bool
		data []byte
	}
	var seen []obs
	for _, img := range images {
		o := img.Object(id)
		if o == nil || o.Live || !o.Canaried {
			continue
		}
		rs := img.Canary.CorruptRanges(o.Data)
		if len(rs) == 0 {
			// Intact here but corrupted elsewhere: the overwrite is not a
			// deterministic dangling write to this object.
			return false
		}
		mask := make([]bool, len(o.Data))
		for _, r := range rs {
			for j := r.Start; j < r.End; j++ {
				mask[j] = true
			}
		}
		seen = append(seen, obs{mask: mask, data: o.Data})
	}
	if len(seen) < 2 {
		return false
	}
	for i := 0; i < len(seen); i++ {
		for j := i + 1; j < len(seen); j++ {
			a, b := seen[i], seen[j]
			n := len(a.mask)
			if len(b.mask) < n {
				n = len(b.mask)
			}
			both, union := 0, 0
			for p := 0; p < n; p++ {
				switch {
				case a.mask[p] && b.mask[p]:
					if a.data[p] != b.data[p] {
						return false // different values: not a dangling overwrite
					}
					both++
					union++
				case a.mask[p] || b.mask[p]:
					union++
				}
			}
			if both == 0 || both*2 < union {
				return false // corruption in different places: overflow victims
			}
		}
	}
	return true
}

// confirmCulprit checks a (culprit id, δ) hypothesis across images.
//
// For each image, the address culprit+δ is examined: if it falls in a
// freed, canaried slot whose canary is broken exactly there with an
// overflow string sharing bytes with the anchor's, that image supports
// the pair (§4.1: "if that object is free and should be filled with
// canaries but they are not intact, it adds this culprit-victim pair").
// All other states are unobservable — including an *intact* canary, which
// may simply postdate the overflow (the slot was freed and re-filled
// after the corrupting write). At least two images must support the pair;
// by Theorem 3 that already reduces the expected number of accidental
// same-δ candidates to ~1/(H−1), and ranking by evidence length S puts
// the true culprit first.
func confirmCulprit(images []*image.Image, idx []*index, culprit heap.ObjectID, delta int, anchorBytes []byte) *OverflowFinding {
	var (
		extent = 0
		totalS = 0
		obsns  = 0
		cref   *image.Object
	)
	for h, img := range images {
		c := img.Object(culprit)
		if c == nil {
			continue // culprit slot recycled in this image: unobservable
		}
		cref = c
		target := c.Addr + mem.Addr(delta)
		mini := img.Mini(c.Mini)
		if mini == nil || target >= mini.Base+mem.Addr(mini.SlotSize*mini.Slots) {
			continue // δ walks off the miniheap in this layout
		}
		slot := int(target-mini.Base) / mini.SlotSize
		v := idx[h].bySlot[[2]int{c.Mini, slot}]
		if v == nil || v.Live || !v.Canaried {
			continue // no canary at c+δ in this image: unobservable
		}
		off := int(target - v.Addr)
		run, ok := corruptRunAt(img.Canary, v.Data, off)
		if !ok {
			continue // canary intact: may postdate the overflow — unobservable
		}
		// Shared-bytes requirement (§4.1): compare against the anchor's
		// observed overflow string.
		n := len(run)
		if n > len(anchorBytes) {
			n = len(anchorBytes)
		}
		match := 0
		for j := 0; j < n; j++ {
			if run[j] == anchorBytes[j] {
				match++
			}
		}
		if match == 0 {
			continue // corruption present but unrelated values
		}
		obsns++
		if e := delta + len(run); e > extent {
			extent = e
		}
		totalS += len(run)
	}
	if cref == nil || obsns < 2 {
		return nil
	}
	pad := extent - cref.ReqSize
	if pad <= 0 {
		return nil
	}
	score := 1.0
	p := 1.0
	for i := 0; i < totalS && i < 64; i++ {
		p /= 256.0
	}
	score = 1.0 - p
	return &OverflowFinding{
		CulpritID: culprit,
		AllocSite: cref.AllocSite,
		Delta:     delta,
		Extent:    extent,
		Pad:       uint32(pad),
		Score:     score,
		Evidence:  totalS,
		Obs:       obsns,
	}
}

// confirmBackwardCulprit mirrors confirmCulprit for underflows: the
// corruption must appear at the constant distance deltaBack *before* the
// candidate's start in at least two images, and the leading pad is the
// largest observed reach below the object.
func confirmBackwardCulprit(images []*image.Image, idx []*index, culprit heap.ObjectID, deltaBack int, anchorBytes []byte) *OverflowFinding {
	var (
		reach  = 0 // bytes below the culprit's start covered by corruption
		totalS = 0
		obsns  = 0
		cref   *image.Object
	)
	for h, img := range images {
		c := img.Object(culprit)
		if c == nil {
			continue
		}
		cref = c
		if mem.Addr(deltaBack) > c.Addr {
			continue
		}
		target := c.Addr - mem.Addr(deltaBack)
		mini := img.Mini(c.Mini)
		if mini == nil || target < mini.Base {
			continue // δ walks off the miniheap in this layout
		}
		slot := int(target-mini.Base) / mini.SlotSize
		v := idx[h].bySlot[[2]int{c.Mini, slot}]
		if v == nil || v.Live || !v.Canaried {
			continue
		}
		off := int(target - v.Addr)
		run, ok := corruptRunAt(img.Canary, v.Data, off)
		if !ok {
			continue
		}
		n := len(run)
		if n > len(anchorBytes) {
			n = len(anchorBytes)
		}
		match := 0
		for j := 0; j < n; j++ {
			if run[j] == anchorBytes[j] {
				match++
			}
		}
		if match == 0 {
			continue
		}
		obsns++
		// The run containing target may start even earlier; the front pad
		// must cover from the earliest corrupted byte to the object start.
		runStart, _ := corruptRunStart(img.Canary, v.Data, off)
		if r := deltaBack + (off - runStart); r > reach {
			reach = r
		}
		totalS += len(run)
	}
	if cref == nil || obsns < 2 || reach <= 0 {
		return nil
	}
	p := 1.0
	for i := 0; i < totalS && i < 64; i++ {
		p /= 256.0
	}
	return &OverflowFinding{
		CulpritID: culprit,
		AllocSite: cref.AllocSite,
		Backward:  true,
		Delta:     deltaBack,
		Pad:       uint32(reach),
		Score:     1.0 - p,
		Evidence:  totalS,
		Obs:       obsns,
	}
}

// corruptRunStart returns the start offset of the corrupted run
// containing off (assumes the byte at off is corrupt).
func corruptRunStart(c canary.Canary, data []byte, off int) (int, bool) {
	if off < 0 || off >= len(data) || data[off] == c.Byte(off) {
		return 0, false
	}
	start := off
	for start > 0 && data[start-1] != c.Byte(start-1) {
		start--
	}
	return start, true
}

// corruptRunAt returns the corrupted run containing offset off of a
// canary-filled buffer, or ok=false if the byte at off is intact.
func corruptRunAt(c canary.Canary, data []byte, off int) ([]byte, bool) {
	if off < 0 || off >= len(data) || data[off] == c.Byte(off) {
		return nil, false
	}
	start := off
	for start > 0 && data[start-1] != c.Byte(start-1) {
		start--
	}
	end := off + 1
	for end < len(data) && data[end] != c.Byte(end) {
		end++
	}
	return data[start:end], true
}

// liveVictims diffs live objects across images word-by-word with the
// §4.1 filters: pointer-equivalent words and legitimately-different words
// are not discrepancies.
func liveVictims(images []*image.Image, idx []*index, opts Options) []heap.ObjectID {
	k := len(images)
	var victims []heap.ObjectID
	ref := images[0]
	for i := range ref.Objects {
		o := &ref.Objects[i]
		if !o.Live {
			continue
		}
		objs := make([]*image.Object, k)
		objs[0] = o
		inAll := true
		for h := 1; h < k; h++ {
			oh := images[h].Object(o.ID)
			if oh == nil || !oh.Live {
				inAll = false
				break
			}
			objs[h] = oh
		}
		if !inAll {
			continue
		}
		if hasDiscrepancy(images, objs, opts) {
			victims = append(victims, o.ID)
		}
	}
	return victims
}

func hasDiscrepancy(images []*image.Image, objs []*image.Object, opts Options) bool {
	k := len(objs)
	n := objs[0].ReqSize &^ 7
	for w := 0; w+8 <= n; w += 8 {
		vals := make([]uint64, k)
		for h, o := range objs {
			vals[h] = le64(o.Data[w:])
		}
		if allEqual(vals) {
			continue
		}
		if !opts.NoPointerFilter && pointerEquivalent(images, vals, objs, w) {
			continue
		}
		if !opts.NoDistinctFilter && k >= 3 && allDistinct(vals) {
			continue // legitimately different (pids, handles, addresses)
		}
		return true
	}
	return false
}

func allEqual(vals []uint64) bool {
	for _, v := range vals[1:] {
		if v != vals[0] {
			return false
		}
	}
	return true
}

func allDistinct(vals []uint64) bool {
	seen := make(map[uint64]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// pointerEquivalent reports whether every value, interpreted as a pointer
// in its own image, refers to the same logical object at the same offset.
func pointerEquivalent(images []*image.Image, vals []uint64, objs []*image.Object, w int) bool {
	var id heap.ObjectID
	var off mem.Addr
	for h, v := range vals {
		t := images[h].ObjectAt(mem.Addr(v))
		if t == nil {
			return false
		}
		o := mem.Addr(v) - t.Addr
		if h == 0 {
			id, off = t.ID, o
			continue
		}
		if t.ID != id || o != off {
			return false
		}
	}
	_ = objs
	_ = w
	return true
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// String summarizes a report.
func (r *Report) String() string {
	return fmt.Sprintf("report: %d overflow candidate(s), %d dangling finding(s), %d live victim(s)",
		len(r.Overflows), len(r.Danglings), len(r.LiveVictims))
}
