package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/engine"
	"exterminator/internal/site"
)

// stampedBatch builds an upload with a content-addressed batch ID, the
// way fleet.Sink cuts one from a history at watermark position (0, 0).
func stampedBatch(client string, s *cumulative.Snapshot) *ObservationBatch {
	return &ObservationBatch{
		Client:   client,
		Snapshot: s,
		BatchID:  cumulative.BatchID(client, 0, 0, s),
	}
}

func smallSnapshot(runs int, sites ...site.ID) *cumulative.Snapshot {
	s := &cumulative.Snapshot{C: 4, P: 0.5, Runs: runs}
	for _, id := range sites {
		s.Sites = append(s.Sites, id)
		s.Overflow = append(s.Overflow, cumulative.SiteObservations{
			Site: id,
			Obs:  []cumulative.Observation{{X: 0.25, Y: false}},
		})
	}
	return s
}

// TestExactlyOnceIngest: re-sending a stamped batch (the lost-ack retry)
// is acknowledged as a duplicate and absorbed exactly once; an unstamped
// batch keeps the legacy at-least-once behavior.
func TestExactlyOnceIngest(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, "dup")

	batch := stampedBatch("dup", smallSnapshot(3, 0x100, 0x101))
	first, err := c.PushBatchContext(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if first.Duplicate {
		t.Fatal("first delivery acked as duplicate")
	}
	second, err := c.PushBatchContext(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Duplicate {
		t.Fatal("retry not recognized as duplicate")
	}
	if got := srv.Store().Runs(); got != 3 {
		t.Fatalf("retried batch double-counted: runs = %d, want 3", got)
	}
	if got := srv.Store().Batches(); got != 1 {
		t.Fatalf("retried batch absorbed twice: batches = %d, want 1", got)
	}

	// Legacy clients (no batch ID) are still at-least-once.
	plain := smallSnapshot(1, 0x102)
	for i := 0; i < 2; i++ {
		if _, err := c.PushSnapshot(plain); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Store().Runs(); got != 5 {
		t.Fatalf("unstamped batches should absorb every time: runs = %d, want 5", got)
	}
}

// TestDedupWindowBounded: the window retains only the configured number
// of IDs; a retry arriving after its ID aged out falls back to
// at-least-once (absorbed again) instead of growing server memory.
func TestDedupWindowBounded(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1, DedupWindow: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, "bounded")

	first := stampedBatch("bounded", smallSnapshot(1, 0x200))
	if _, err := c.PushBatchContext(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	// Push enough distinct batches to evict the first ID.
	for i := 0; i < 3; i++ {
		b := stampedBatch("bounded", smallSnapshot(1, site.ID(0x300+uint32(i))))
		if _, err := c.PushBatchContext(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	reply, err := c.PushBatchContext(context.Background(), first)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Duplicate {
		t.Fatal("evicted ID still deduped — window is not bounded")
	}
	if got := srv.Store().Runs(); got != 5 {
		t.Fatalf("runs = %d, want 5 (first batch absorbed twice after eviction)", got)
	}
}

// TestDedupSurvivesSnapshotRestore: the dedup window persists inside the
// fleet snapshot, so a batch absorbed before a restart and retried after
// it is still recognized — exactly-once survives crashes. Legacy
// snapshots (bare cumulative history files) still restore.
func TestDedupSurvivesSnapshotRestore(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, "restart")

	batch := stampedBatch("restart", smallSnapshot(2, 0x400, 0x401))
	if _, err := c.PushBatchContext(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "fleet.snap")
	if err := srv.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}

	restored := NewServer(ServerOptions{CorrectEvery: -1})
	if err := restored.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(restored.Handler())
	defer ts2.Close()
	c2 := NewClient(ts2.URL, "restart")
	reply, err := c2.PushBatchContext(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Duplicate {
		t.Fatal("dedup window lost across snapshot restore")
	}
	if got := restored.Store().Runs(); got != 2 {
		t.Fatalf("restored server double-counted the retry: runs = %d, want 2", got)
	}

	// Legacy snapshot: a bare cumulative history file (what SaveSnapshot
	// wrote before the container format) restores with an empty window.
	legacy := filepath.Join(t.TempDir(), "legacy.snap")
	f, err := os.Create(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Store().Combined().Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	fromLegacy := NewServer(ServerOptions{CorrectEvery: -1})
	if err := fromLegacy.LoadSnapshot(legacy); err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
	if got := fromLegacy.Store().Runs(); got != 2 {
		t.Fatalf("legacy restore lost evidence: runs = %d, want 2", got)
	}
}

// lossyAck wraps a handler: while lossy, requests are fully processed
// (the server absorbs the batch) but the client receives a 500 — the
// lost-ack failure mode exactly-once ingest exists for.
type lossyAck struct {
	mu    sync.Mutex
	lossy bool
	inner http.Handler
}

func (l *lossyAck) set(lossy bool) {
	l.mu.Lock()
	l.lossy = lossy
	l.mu.Unlock()
}

func (l *lossyAck) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.Lock()
	lossy := l.lossy
	l.mu.Unlock()
	if !lossy {
		l.inner.ServeHTTP(w, r)
		return
	}
	rec := httptest.NewRecorder()
	l.inner.ServeHTTP(rec, r)
	http.Error(w, "ack lost", http.StatusInternalServerError)
}

// TestSinkExactlyOnceAfterLostAck: the sink's first upload is absorbed
// but the ack is lost; the retried commit re-sends the identical batch,
// the server dedups it, and the fleet counts the evidence exactly once.
func TestSinkExactlyOnceAfterLostAck(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	la := &lossyAck{inner: srv.Handler(), lossy: true}
	ts := httptest.NewServer(la)
	defer ts.Close()

	sink := NewSink(NewClient(ts.URL, "lossy"))
	hist := cumulative.NewHistory(cumulative.DefaultConfig())
	hist.Absorb(smallSnapshot(4, 0x500, 0x501))
	ev := &engine.Evidence{History: hist}

	if err := sink.Commit(context.Background(), ev); err == nil {
		t.Fatal("commit with a lost ack must report the failure")
	}
	if got := srv.Store().Runs(); got != 4 {
		t.Fatalf("server should have absorbed the batch despite the lost ack: runs = %d", got)
	}
	// The watermark must NOT have advanced: the sink has no proof of
	// delivery, so the evidence stays pending.
	if d := hist.UploadDelta(); cumulative.DeltaEmpty(d) {
		t.Fatal("watermark advanced on an unacknowledged upload")
	}

	la.set(false)
	if err := sink.Commit(context.Background(), ev); err != nil {
		t.Fatalf("retry commit: %v", err)
	}
	if got := srv.Store().Runs(); got != 4 {
		t.Fatalf("lost-ack retry double-counted: runs = %d, want 4", got)
	}
	if got := srv.Store().Batches(); got != 1 {
		t.Fatalf("batches = %d, want 1 (retry deduped, not re-absorbed)", got)
	}
	if d := hist.UploadDelta(); !cumulative.DeltaEmpty(d) {
		t.Fatalf("watermark incomplete after acknowledged retry: %+v", d)
	}

	// New evidence after the recovery flows as a fresh batch.
	hist.Absorb(smallSnapshot(1, 0x502))
	if err := sink.Commit(context.Background(), ev); err != nil {
		t.Fatal(err)
	}
	if got := srv.Store().Runs(); got != 5 {
		t.Fatalf("follow-up delta lost: runs = %d, want 5", got)
	}
}
