package fleet

import (
	"context"
	"net/http/httptest"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/engine"
	"exterminator/internal/patch"
	"exterminator/internal/site"
	"exterminator/internal/testutil"
)

// TestSinkFetchAndCommit drives the fleet client through the engine
// sink contract: FetchPatches downloads the fleet's current set, Commit
// uploads observation history and reports newly derived patches.
func TestSinkFetchAndCommit(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv := NewServer(ServerOptions{CorrectEvery: 0})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Seed the fleet's patch log so the fetch has something to return.
	seeded := patch.New()
	seeded.AddPad(site.ID(0xF00), 48)
	srv.PatchLog().Fold(seeded)

	sink := NewSink(NewClient(ts.URL, "sink-test"))
	ctx := context.Background()

	ps, err := sink.FetchPatches(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Pad(site.ID(0xF00)) != 48 {
		t.Fatalf("fetched set missing seeded pad: %s", ps)
	}
	if entries, version := sink.Fetched(); entries != 1 || version == 0 {
		t.Fatalf("fetch bookkeeping: entries=%d version=%d", entries, version)
	}

	// Commit: a cumulative history plus one newly derived entry.
	hist := cumulative.NewHistory(cumulative.DefaultConfig())
	hist.Absorb(testBatches(1)[0])
	derived := patch.New()
	derived.AddPad(site.ID(0xD0D0), 16)
	ev := &engine.Evidence{
		Workload: "sink-test",
		Mode:     engine.ModeCumulative,
		History:  hist,
		Derived:  derived,
	}
	if err := sink.Commit(ctx, ev); err != nil {
		t.Fatal(err)
	}
	if reply := sink.LastIngest(); reply == nil || reply.Runs != int64(hist.Runs) {
		t.Fatalf("ingest reply: %+v", sink.LastIngest())
	}
	if got := srv.Store().Runs(); got != int64(hist.Runs) {
		t.Fatalf("server runs: %d, want %d", got, hist.Runs)
	}
	if srv.retainedReports() != 1 {
		t.Fatalf("derived-patch report not uploaded: %d retained", srv.retainedReports())
	}
}

// TestSinkCommitSkipsEmptyEvidence: nothing is uploaded for a session
// with no history and no derived patches (e.g. a clean iterative run).
func TestSinkCommitSkipsEmptyEvidence(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sink := NewSink(NewClient(ts.URL, "quiet"))
	ev := &engine.Evidence{Workload: "quiet", Mode: engine.ModeIterative, Derived: patch.New()}
	if err := sink.Commit(context.Background(), ev); err != nil {
		t.Fatal(err)
	}
	if srv.Store().Batches() != 0 || srv.retainedReports() != 0 {
		t.Fatal("empty evidence produced uploads")
	}
}
