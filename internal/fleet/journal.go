package fleet

import (
	"sync"

	"exterminator/internal/cumulative"
	"exterminator/internal/site"
)

// journal is the bounded evidence journal behind GET /v1/deltas: every
// absorbed observation batch is appended with a monotonic sequence
// number, so a coordinator can poll "what arrived after seq S" and
// receive just that. Rebalance evictions are journaled too — as removal
// entries, so a poller's mirror tracks evidence that *left* this
// partition, not only evidence that arrived. Pollers whose cursor
// predates the retained window (or comes from another server
// incarnation) get a full resync instead.
type journal struct {
	mu      sync.Mutex
	max     int
	base    uint64 // entries[0] carries seq base+1
	seq     uint64
	entries []journalEntry
}

// journalEntry is one journal step: an absorbed batch (snap, or parts
// when the batch arrived pre-split on the v2 ingest path) or an
// eviction (evict — the key set a rebalance drained from this
// partition). reqID is the batch's X-Request-ID correlation field; it
// rides the delta reply so the coordinator's log can be joined with
// this partition's, upload by upload.
type journalEntry struct {
	snap  *cumulative.Snapshot
	parts []*cumulative.Snapshot
	evict []site.ID
	reqID string
}

// defaultJournalLen is the retained batch window. Batches are a few KB
// each (§3.4), so the default costs a few MB and covers minutes of
// coordinator downtime at high ingest rates. Single-node deployments
// that nothing ever delta-polls can disable retention entirely
// (ServerOptions.JournalLen < 0): sequence numbers still advance, and
// any poll is answered with a full resync.
const defaultJournalLen = 1024

func newJournal(max int) *journal {
	if max == 0 {
		max = defaultJournalLen
	}
	if max < 0 {
		max = -1 // retention disabled: append trims immediately
	}
	return &journal{max: max}
}

// append records one absorbed batch (tagged with its request's
// correlation ID) and returns its sequence number. The snapshot must
// not be mutated afterwards (the journal keeps the reference).
func (j *journal) append(s *cumulative.Snapshot, reqID string) uint64 {
	return j.push(journalEntry{snap: s, reqID: reqID})
}

// appendParts records one absorbed batch that arrived pre-split into
// per-shard parts (v2 ingest): the parts are journaled as-is, never
// merged — delta pollers absorb each part in turn, which is equivalent
// because Absorb is commutative over disjoint key sets. The parts must
// not be mutated afterwards.
func (j *journal) appendParts(parts []*cumulative.Snapshot, reqID string) uint64 {
	return j.push(journalEntry{parts: parts, reqID: reqID})
}

// appendEvict records a rebalance drain of the given keys.
func (j *journal) appendEvict(keys []site.ID) uint64 {
	return j.push(journalEntry{evict: keys})
}

func (j *journal) push(e journalEntry) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	if j.max < 0 {
		// Retention disabled: keep no references, only the sequence.
		j.base = j.seq
		return j.seq
	}
	j.entries = append(j.entries, e)
	if len(j.entries) > j.max {
		drop := len(j.entries) - j.max/2
		j.entries = append([]journalEntry(nil), j.entries[drop:]...)
		j.base += uint64(drop)
	}
	return j.seq
}

// since returns the entries recorded after sequence number from, plus
// the current sequence. ok is false when from lies outside the retained
// window (too old, or from a previous incarnation ahead of seq) — the
// caller must answer with a full resync.
func (j *journal) since(from uint64) (entries []journalEntry, seq uint64, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from > j.seq || from < j.base {
		return nil, j.seq, false
	}
	return append([]journalEntry(nil), j.entries[from-j.base:]...), j.seq, true
}

// length returns how many entries the journal currently retains (the
// delta-poll window depth gauge).
func (j *journal) length() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// seqNow returns the current sequence number.
func (j *journal) seqNow() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// invalidate declares every cursor at or below the current sequence
// stale: the store now holds evidence that never went through the
// journal (a snapshot restore), so a delta reconstructed from journal
// entries alone would silently miss it. Advancing base past seq forces
// the next poll from any such cursor onto the full-resync path.
func (j *journal) invalidate() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	j.base = j.seq
	j.entries = j.entries[:0]
}
