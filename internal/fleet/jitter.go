package fleet

import (
	"math/rand/v2"
	"time"
)

// JitterFraction is the half-width of the uniform perturbation
// JitterInterval applies: every poll interval lands in
// [(1-JitterFraction)·d, (1+JitterFraction)·d].
const JitterFraction = 0.10

// JitterInterval perturbs a poll interval by a uniform ±10%. Every
// periodic poller in the fleet (patch pollers, replica cache refreshes,
// the coordinator's partition polls) sleeps a jittered interval instead
// of a fixed one: at replica scale, fixed intervals synchronize — one
// slow scrape or a mass restart phase-locks the fleet and every
// subsequent poll arrives as a thundering herd. Jitter de-phases the
// herd within a few cycles and keeps it de-phased.
//
// Non-positive intervals are returned unchanged.
func JitterInterval(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	f := 1 - JitterFraction + 2*JitterFraction*rand.Float64()
	return time.Duration(float64(d) * f)
}
