package fleet

import (
	"context"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exterminator/internal/engine"
	"exterminator/internal/mutator"
	"exterminator/internal/testutil"
)

// flushOnRun is a clean workload that fires exactly one deterministic
// mid-run flush: on its trigger run it sends on the session's flush
// signal (engine.WithFlushSignal) and blocks until the flush is
// acknowledged. "Evidence visible mid-run" then holds by construction
// instead of depending on a wall-clock ticker winning a race against
// the workload's pacing.
type flushOnRun struct {
	runs    atomic.Int64
	trigger int64
	fire    chan<- time.Time
	acked   <-chan struct{}
}

func (p *flushOnRun) Name() string { return "paced" }
func (p *flushOnRun) Run(e *mutator.Env) {
	ptr := e.Malloc(16)
	if p.runs.Add(1) == p.trigger {
		p.fire <- time.Time{}
		<-p.acked
	}
	e.Free(ptr)
}

// TestSessionStreamsToLiveFleetMidRun is the live-streaming acceptance
// test: a cumulative session with a flush trigger contributes evidence
// to a running fleetd while it is still executing — observable through
// /v1/status before the session exits — and the post-run commit adds
// exactly the remainder, never double-counting what was flushed.
func TestSessionStreamsToLiveFleetMidRun(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := NewClient(ts.URL, "live")
	sink := NewSink(client)

	// The observer probes the server the moment the flush is
	// acknowledged: the session is mid-run (its trigger run is blocked
	// inside Run waiting for this ack), yet the fleet already holds
	// evidence.
	fire := make(chan time.Time)
	acked := make(chan struct{}, 1)
	var (
		mu         sync.Mutex
		midRunRuns int64
		midRunSeen bool
	)
	obs := engine.ObserverFunc(func(ev engine.Event) {
		if _, ok := ev.(engine.EvidenceFlushed); !ok {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if midRunSeen {
			return
		}
		st, err := client.Status()
		if err != nil {
			t.Errorf("status during flush: %v", err)
			return
		}
		midRunRuns, midRunSeen = st.Runs, true
		acked <- struct{}{}
	})

	const trigger = 5
	prog := &flushOnRun{trigger: trigger, fire: fire, acked: acked}
	sess, err := engine.New(engine.Batch(prog),
		engine.WithMode(engine.ModeCumulative),
		engine.WithSeeds(1, 0x9106),
		engine.WithMaxRuns(10),
		engine.WithFlushSignal(fire),
		engine.WithSink(sink),
		engine.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, se := range res.SinkErrors {
		t.Fatalf("sink error: %v", se)
	}

	if !midRunSeen {
		t.Fatal("no mid-run flush reached the fleet")
	}
	if midRunRuns != trigger-1 {
		t.Fatalf("fleet showed %d runs at the mid-run flush, want the %d folded before the trigger run",
			midRunRuns, trigger-1)
	}
	total := int64(res.Cumulative.History.Runs)
	if midRunRuns >= total {
		t.Fatalf("first flush already showed all %d runs — nothing was streamed mid-run", total)
	}
	// No double count at session end: the fleet's total equals the
	// session's, even though evidence arrived across a flush plus a
	// final commit.
	if got := srv.Store().Runs(); got != total {
		t.Fatalf("fleet holds %d runs after session end, session recorded %d", got, total)
	}
	if sink.Flushes() == 0 {
		t.Fatal("sink recorded no flushes")
	}
}
