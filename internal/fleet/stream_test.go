package fleet

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"exterminator/internal/engine"
	"exterminator/internal/mutator"
)

// pacedProg is a trivial clean workload that sleeps per run, so the
// wall-clock flusher fires several times during a short session.
type pacedProg struct{ d time.Duration }

func (p pacedProg) Name() string { return "paced" }
func (p pacedProg) Run(e *mutator.Env) {
	ptr := e.Malloc(16)
	time.Sleep(p.d)
	e.Free(ptr)
}

// TestSessionStreamsToLiveFleetMidRun is the live-streaming acceptance
// test: a cumulative session with a flush trigger contributes evidence
// to a running fleetd while it is still executing — observable through
// /v1/status before the session exits — and the post-run commit adds
// exactly the remainder, never double-counting what was flushed.
func TestSessionStreamsToLiveFleetMidRun(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := NewClient(ts.URL, "live")
	sink := NewSink(client)

	// The observer probes the server the moment a flush is acknowledged:
	// the session is mid-run (SessionFinished has not fired), yet the
	// fleet already holds evidence.
	var (
		mu          sync.Mutex
		midRunRuns  int64
		midRunSeen  bool
		finishedYet bool
	)
	obs := engine.ObserverFunc(func(ev engine.Event) {
		switch ev.(type) {
		case engine.EvidenceFlushed:
			mu.Lock()
			defer mu.Unlock()
			if midRunSeen || finishedYet {
				return
			}
			st, err := client.Status()
			if err != nil {
				t.Errorf("status during flush: %v", err)
				return
			}
			midRunRuns, midRunSeen = st.Runs, true
		case engine.SessionFinished:
			mu.Lock()
			finishedYet = true
			mu.Unlock()
		}
	})

	sess, err := engine.New(engine.Batch(pacedProg{d: 10 * time.Millisecond}),
		engine.WithMode(engine.ModeCumulative),
		engine.WithSeeds(1, 0x9106),
		engine.WithMaxRuns(10),
		engine.WithFlushInterval(2*time.Millisecond),
		engine.WithSink(sink),
		engine.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, se := range res.SinkErrors {
		t.Fatalf("sink error: %v", se)
	}

	if !midRunSeen {
		t.Fatal("no mid-run flush reached the fleet")
	}
	if midRunRuns == 0 {
		t.Fatal("fleet showed no evidence at the first mid-run flush")
	}
	total := int64(res.Cumulative.History.Runs)
	if midRunRuns >= total {
		t.Fatalf("first flush already showed all %d runs — nothing was streamed mid-run", total)
	}
	// No double count at session end: the fleet's total equals the
	// session's, even though evidence arrived across many deltas plus a
	// final commit.
	if got := srv.Store().Runs(); got != total {
		t.Fatalf("fleet holds %d runs after session end, session recorded %d", got, total)
	}
	if sink.Flushes() == 0 {
		t.Fatal("sink recorded no flushes")
	}
}
