package fleet

import "sync"

// dedupWindow is the server side of exactly-once ingest: a bounded FIFO
// set of recently absorbed batch IDs (cumulative.BatchID). An upload
// whose ID is already present is acknowledged without being re-absorbed
// — the lost-ack retry case. The window is bounded because IDs are
// client-supplied: retaining them forever would let uploads grow server
// memory without limit. A retry that arrives after its ID aged out of
// the window is absorbed again (the at-least-once fallback), so the
// window must be sized to cover the longest plausible retry horizon —
// see ServerOptions.DedupWindow.
type dedupWindow struct {
	mu    sync.Mutex
	max   int
	seen  map[string]bool
	order []string // FIFO eviction order; len(order) == len(seen)
}

// defaultDedupLen covers thousands of in-flight clients each retrying a
// handful of batches; at ~32 bytes per ID the default costs well under a
// megabyte.
const defaultDedupLen = 4096

// newDedupWindow returns a window retaining up to max IDs (0 = default,
// negative = dedup disabled — returns nil, and admit on a nil window is
// never called).
func newDedupWindow(max int) *dedupWindow {
	if max < 0 {
		return nil
	}
	if max == 0 {
		max = defaultDedupLen
	}
	return &dedupWindow{max: max, seen: make(map[string]bool)}
}

// admit records id and reports whether it was new. A false return means
// the batch was already absorbed: acknowledge it as a duplicate and do
// not absorb again. The check and the insert are atomic, so two
// concurrent deliveries of the same batch admit exactly one.
//
// Eviction drops the older half when the window overflows (the evidence
// journal's strategy): amortized O(1) per ingest, instead of shifting
// the whole slice on every insert once full. The retained set therefore
// fluctuates between max/2 and max of the most recent IDs — size the
// window so max/2 still covers the retry horizon.
func (d *dedupWindow) admit(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seen[id] {
		return false
	}
	d.seen[id] = true
	d.order = append(d.order, id)
	if len(d.order) > d.max {
		drop := len(d.order) - d.max/2
		for _, old := range d.order[:drop] {
			delete(d.seen, old)
		}
		d.order = append([]string(nil), d.order[drop:]...)
	}
	return true
}

// has reports whether id is in the window without admitting it. The
// ingest path consults it before the stale-ring check: a retried batch
// that was absorbed before a rebalance must ack as a duplicate, never be
// rejected as stale (rejection would make the client re-split and
// re-send evidence the drain already moved — a double count).
func (d *dedupWindow) has(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seen[id]
}

// ids returns the retained IDs in FIFO order (snapshot persistence).
func (d *dedupWindow) ids() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.order...)
}

// restore refills the window from persisted IDs, oldest first, dropping
// the oldest overflow if the persisted set exceeds the configured bound.
func (d *dedupWindow) restore(ids []string) {
	for _, id := range ids {
		d.admit(id)
	}
}

// size returns the number of retained IDs.
func (d *dedupWindow) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.order)
}
