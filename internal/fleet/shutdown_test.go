package fleet

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"exterminator/internal/testutil"
)

// TestServerShutdownLeavesNoGoroutines drives a full server lifecycle —
// background correction loop, HTTP ingest traffic — then tears it down
// and requires that every goroutine the test started has exited. Armed
// first so the leak check runs after all the shutdown cleanups.
func TestServerShutdownLeavesNoGoroutines(t *testing.T) {
	testutil.VerifyNoLeaks(t)

	srv := NewServer(ServerOptions{Shards: 4, CorrectEvery: 0})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		srv.RunCorrectionLoop(ctx, time.Millisecond)
	}()

	c := NewClient(ts.URL, "leak-test")
	for _, b := range testBatches(3) {
		if _, err := c.PushSnapshot(b); err != nil {
			cancel()
			t.Fatalf("push: %v", err)
		}
	}

	cancel()
	select {
	case <-loopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("correction loop did not stop after cancel")
	}
}
