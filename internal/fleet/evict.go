package fleet

import (
	"sync"

	"exterminator/internal/cumulative"
)

// evictCache makes rebalance drains idempotent: POST /v1/evict removes a
// key set's evidence atomically and *destructively*, so a coordinator
// that crashes after the extraction but before journaling or backfilling
// the result would otherwise lose it forever. The cache retains each
// drain's result keyed by the caller-chosen idempotency token; re-posting
// the token returns the original snapshot ("re-drains at worst"). The
// cache is bounded — tokens are derived from the monotonic membership
// version, so only the most recent rebalances matter — and persisted in
// fleet snapshots so the guarantee survives partition restarts.
type evictCache struct {
	mu    sync.Mutex
	max   int
	order []string // FIFO eviction order
	snaps map[string]*cumulative.Snapshot
}

// defaultEvictCacheLen covers many in-flight or recently crashed
// rebalances; each entry is one drained key set's snapshot.
const defaultEvictCacheLen = 32

func newEvictCache(max int) *evictCache {
	if max <= 0 {
		max = defaultEvictCacheLen
	}
	return &evictCache{max: max, snaps: make(map[string]*cumulative.Snapshot)}
}

// get returns the cached extraction for token, if any.
func (e *evictCache) get(token string) (*cumulative.Snapshot, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.snaps[token]
	return s, ok
}

// put records an extraction result. The snapshot must not be mutated
// afterwards.
func (e *evictCache) put(token string, s *cumulative.Snapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.snaps[token]; ok {
		return
	}
	e.snaps[token] = s
	e.order = append(e.order, token)
	if len(e.order) > e.max {
		drop := len(e.order) - e.max
		for _, old := range e.order[:drop] {
			delete(e.snaps, old)
		}
		e.order = append([]string(nil), e.order[drop:]...)
	}
}

// evictEntry is one cached drain, in persistence order.
type evictEntry struct {
	Token string
	Snap  *cumulative.Snapshot
}

// entries returns the cached drains oldest-first (snapshot persistence).
func (e *evictCache) entries() []evictEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]evictEntry, 0, len(e.order))
	for _, tok := range e.order {
		out = append(out, evictEntry{Token: tok, Snap: e.snaps[tok]})
	}
	return out
}

// restore refills the cache from persisted entries, oldest first.
func (e *evictCache) restore(entries []evictEntry) {
	for _, en := range entries {
		e.put(en.Token, en.Snap)
	}
}
