package fleet

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/patch"
	"exterminator/internal/report"
	"exterminator/internal/site"
)

const (
	guiltySite  = site.ID(0xBAD)
	guiltyAlloc = site.ID(0xDA)
	guiltyFree  = site.ID(0xDF)
)

// testBatches fabricates n observation batches the way n independent
// installations would: every batch carries the same site population, a
// guilty overflow site whose Y=1 far exceeds its X, a guilty dangling
// pair, and chance-consistent innocents.
func testBatches(n int) []*cumulative.Snapshot {
	batches := make([]*cumulative.Snapshot, 0, n)
	for b := 0; b < n; b++ {
		s := &cumulative.Snapshot{C: 4, P: 0.5, Runs: 3, FailedRuns: 1, CorruptRuns: 1}
		for i := 0; i < 10; i++ {
			s.Sites = append(s.Sites, site.ID(0x100+uint32(i)))
		}
		s.Sites = append(s.Sites, guiltySite)
		// Guilty overflow: Y=1 at small X, every corrupt run.
		s.Overflow = append(s.Overflow, cumulative.SiteObservations{
			Site: guiltySite,
			Obs:  []cumulative.Observation{{X: 0.1, Y: true}},
		})
		// Innocent overflow evidence: Y tracks X.
		for i := 0; i < 4; i++ {
			s.Overflow = append(s.Overflow, cumulative.SiteObservations{
				Site: site.ID(0x100 + uint32(i)),
				Obs:  []cumulative.Observation{{X: 0.5, Y: (b+i)%2 == 0}},
			})
		}
		// Guilty dangling pair: canaried on every failed run.
		s.Dangling = append(s.Dangling, cumulative.PairObservations{
			Alloc: guiltyAlloc, Free: guiltyFree,
			Obs: []cumulative.Observation{{X: 0.5, Y: true}},
		})
		s.PadHints = append(s.PadHints, cumulative.PadHint{Site: guiltySite, Pad: 9})
		s.DeferralHints = append(s.DeferralHints, cumulative.DeferralHint{
			Alloc: guiltyAlloc, Free: guiltyFree, Deferral: uint64(30 + b%4),
		})
		batches = append(batches, s)
	}
	return batches
}

// TestConcurrentIngestConvergence is the satellite requirement: ingest
// from 8 goroutines must converge to the same patch set as
// single-threaded cumulative aggregation over identical observations.
func TestConcurrentIngestConvergence(t *testing.T) {
	batches := testBatches(48)

	// Reference: one cumulative.History fed sequentially.
	ref := cumulative.NewHistory(cumulative.DefaultConfig())
	for _, b := range batches {
		ref.Absorb(b)
	}
	ref.Canonicalize()
	refPatches := ref.Identify().Patches()
	if refPatches.Len() == 0 {
		t.Fatal("reference aggregation derived no patches; test evidence too weak")
	}

	// Fleet store: 8 concurrent ingesters.
	st := NewStore(8, cumulative.DefaultConfig())
	work := make(chan *cumulative.Snapshot)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range work {
				st.AbsorbSnapshot(b)
			}
		}()
	}
	for _, b := range batches {
		work <- b
	}
	close(work)
	wg.Wait()

	combined := st.Combined()
	if !combined.Equal(ref) {
		t.Fatalf("combined store differs from sequential history:\n  store %s\n  ref   %s", combined, ref)
	}
	got := combined.Identify().Patches()
	if !got.Equal(refPatches) {
		t.Fatalf("patch sets diverge:\n  store: %s\n  ref:   %s", got, refPatches)
	}
	if got.Pad(guiltySite) != 9 {
		t.Fatalf("pad for guilty site = %d, want 9", got.Pad(guiltySite))
	}
	if d := got.Deferral(site.Pair{Alloc: guiltyAlloc, Free: guiltyFree}); d != 33 {
		t.Fatalf("deferral = %d, want the maximum hint 33", d)
	}
	if st.Runs() != int64(48*3) || st.FailedRuns() != 48 || st.CorruptRuns() != 48 {
		t.Fatalf("run counters wrong: %d/%d/%d", st.Runs(), st.FailedRuns(), st.CorruptRuns())
	}
}

func TestPatchLogDeltaPolling(t *testing.T) {
	l := NewPatchLog()

	mk := func(s site.ID, pad uint32) *patch.Set {
		ps := patch.New()
		ps.AddPad(s, pad)
		return ps
	}

	if ps, v := l.Since(0); ps.Len() != 0 || v != 0 {
		t.Fatalf("empty log: got %d entries at v%d", ps.Len(), v)
	}
	if v, changed := l.Fold(mk(0xA, 4)); !changed || v != 1 {
		t.Fatalf("first fold: v=%d changed=%v", v, changed)
	}
	// Re-folding the same (or weaker) evidence must not version-bump.
	if v, changed := l.Fold(mk(0xA, 3)); changed || v != 1 {
		t.Fatalf("weaker fold bumped version: v=%d changed=%v", v, changed)
	}
	l.Fold(mk(0xB, 8)) // v2
	l.Fold(mk(0xA, 9)) // v3: pad for A grew

	// since=1 must contain exactly what v2 and v3 added.
	ps, v := l.Since(1)
	if v != 3 {
		t.Fatalf("version = %d, want 3", v)
	}
	want := patch.New()
	want.AddPad(0xB, 8)
	want.AddPad(0xA, 9)
	if !ps.Equal(want) {
		t.Fatalf("since=1 delta:\n%s\nwant:\n%s", ps, want)
	}
	// since=3 (current) is empty; since=2 has only the v3 entry.
	if ps, _ := l.Since(3); ps.Len() != 0 {
		t.Fatalf("since=current returned %d entries", ps.Len())
	}
	ps, _ = l.Since(2)
	if ps.Len() != 1 || ps.Pad(0xA) != 9 {
		t.Fatalf("since=2 delta wrong: %s", ps)
	}
	// since beyond the current version (stale client from a previous
	// server incarnation) resyncs with the full set.
	ps, v = l.Since(99)
	full, _ := l.Full()
	if v != 3 || !ps.Equal(full) {
		t.Fatalf("resync: got v%d %s", v, ps)
	}
}

func TestPatchLogCompaction(t *testing.T) {
	l := NewPatchLog()
	for i := 0; i < maxDeltas+10; i++ {
		ps := patch.New()
		ps.AddPad(site.ID(i+1), uint32(i+1))
		l.Fold(ps)
	}
	// A poll older than the retained window falls back to the full set.
	ps, v := l.Since(1)
	full, _ := l.Full()
	if v != uint64(maxDeltas+10) || !ps.Equal(full) {
		t.Fatalf("compacted poll: v=%d len=%d want full len %d", v, ps.Len(), full.Len())
	}
	// A poll inside the window still gets an exact delta.
	ps, _ = l.Since(uint64(maxDeltas + 9))
	if ps.Len() != 1 || ps.Pad(site.ID(maxDeltas+10)) == 0 {
		t.Fatalf("recent delta wrong: %s", ps)
	}
}

func TestServerEndToEnd(t *testing.T) {
	srv := NewServer(ServerOptions{Shards: 4, CorrectEvery: 0})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := NewClient(ts.URL, "test-install")
	var lastVersion uint64
	for _, b := range testBatches(40) {
		reply, err := c.PushSnapshot(b)
		if err != nil {
			t.Fatal(err)
		}
		lastVersion = reply.Version
	}
	if lastVersion == 0 {
		t.Fatal("server never derived a patch from 40 batches of strong evidence")
	}

	// Full fetch from scratch.
	ps, v, err := c.Patches(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != lastVersion || ps.Pad(guiltySite) == 0 {
		t.Fatalf("patches(0): v=%d set=%s", v, ps)
	}
	// Delta poll at the current version is empty.
	ps, v2, err := c.Patches(v)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v || ps.Len() != 0 {
		t.Fatalf("patches(current): v=%d len=%d", v2, ps.Len())
	}

	// Reports round-trip.
	rep := &report.Report{Findings: []report.Finding{{
		Kind: "buffer-overflow", Title: "test", Suggested: "grow the buffer",
	}}}
	if err := c.PushReport(rep); err != nil {
		t.Fatal(err)
	}

	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != 40 || st.Clients != 1 || st.Reports != 1 || st.Version != v {
		t.Fatalf("status = %+v", st)
	}
	if st.Runs != 120 || st.PatchLen == 0 {
		t.Fatalf("status counters = %+v", st)
	}
}

func TestServerRejectsBadInput(t *testing.T) {
	srv := NewServer(ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Non-JSON body.
	resp, err := http.Post(ts.URL+"/v1/observations", "application/json",
		strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: %s", resp.Status)
	}
	// Batch without a snapshot.
	resp, err = http.Post(ts.URL+"/v1/observations", "application/json",
		strings.NewReader(`{"client":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %s", resp.Status)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/observations")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET observations: %s", resp.Status)
	}
	// Bad since parameter.
	resp, err = http.Get(ts.URL + "/v1/patches?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: %s", resp.Status)
	}
}

func TestSnapshotPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.snap")

	srv := NewServer(ServerOptions{CorrectEvery: 0})
	for _, b := range testBatches(40) {
		srv.Store().AbsorbSnapshot(b)
	}
	srv.Correct()
	wantPatches, _ := srv.PatchLog().Full()
	if wantPatches.Len() == 0 {
		t.Fatal("no patches before snapshot")
	}
	if err := srv.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// A fresh server restores the evidence and rederives the patches.
	srv2 := NewServer(ServerOptions{})
	if err := srv2.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	got, v := srv2.PatchLog().Full()
	if v == 0 || !got.Equal(wantPatches) {
		t.Fatalf("restored patches differ (v%d):\n%s\nwant:\n%s", v, got, wantPatches)
	}
	if !srv2.Store().Combined().Equal(srv.Store().Combined()) {
		t.Fatal("restored evidence differs")
	}

	// Missing file is a clean fresh start.
	srv3 := NewServer(ServerOptions{})
	if err := srv3.LoadSnapshot(filepath.Join(dir, "absent")); err != nil {
		t.Fatal(err)
	}
}

// TestClientResyncsAcrossServerRestart covers the version-reset hazard:
// a server restarted from a stale snapshot restarts version numbering,
// so a client carrying a version from the old incarnation could silently
// skip the new incarnation's early versions. The epoch in every patches
// reply lets the client detect this and resync from 0.
func TestClientResyncsAcrossServerRestart(t *testing.T) {
	mkServer := func(folds []uint32) *Server {
		s := NewServer(ServerOptions{})
		for i, pad := range folds {
			ps := patch.New()
			ps.AddPad(site.ID(0x500+uint32(i)), pad)
			s.PatchLog().Fold(ps)
		}
		return s
	}
	// Old incarnation at version 3; new incarnation at version 5 with
	// different (rederived) content — 3 falls inside 0..5, the lossy case.
	oldSrv := mkServer([]uint32{1, 2, 3})
	newSrv := mkServer([]uint32{10, 20, 30, 40, 50})

	var cur atomic.Pointer[Server]
	cur.Store(oldSrv)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, "restart-test")
	_, v, err := c.Patches(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("old incarnation version = %d, want 3", v)
	}

	cur.Store(newSrv) // "restart"
	ps, v, err := c.Patches(v)
	if err != nil {
		t.Fatal(err)
	}
	full, wantV := newSrv.PatchLog().Full()
	if v != wantV || !ps.Equal(full) {
		t.Fatalf("post-restart poll: v=%d len=%d, want full set v=%d len=%d",
			v, ps.Len(), wantV, full.Len())
	}
}

func TestWireRejectsCorruptPatchSet(t *testing.T) {
	if _, _, err := DecodePatchSet(strings.NewReader("{broken")); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
	if _, _, err := DecodePatchSet(strings.NewReader(`{"version":1} trailing`)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestWirePatchSetRoundTrip(t *testing.T) {
	ps := patch.New()
	ps.AddPad(0xA, 12)
	ps.AddFrontPad(0xB, 3)
	ps.AddDeferral(site.Pair{Alloc: 0xC, Free: 0xD}, 77)
	var buf bytes.Buffer
	if err := EncodePatchSet(&buf, ps, 5); err != nil {
		t.Fatal(err)
	}
	got, v, err := DecodePatchSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 || !got.Equal(ps) {
		t.Fatalf("round trip: v=%d %s", v, got)
	}
}
