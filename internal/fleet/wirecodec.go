package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"exterminator/internal/fleet/codec"
)

// Codec is the wire-encoding seam every fleet tier talks through: one
// implementation per negotiated content type, over the same wire
// structs. JSONCodec is the v1 protocol unchanged; V2Codec is the
// binary framing (internal/fleet/codec, spec in docs/PROTOCOL.md "v2
// binary framing"). Negotiation is by content type: requests declare
// their body's codec in Content-Type and their acceptable response
// codecs in Accept; servers answer v1 JSON unless the request
// explicitly accepts v2, so a v1-only peer at either end of any
// connection degrades the pair to JSON and nothing breaks.
type Codec interface {
	// ContentType is the media type this codec negotiates under.
	ContentType() string
	// EncodeBatch appends an observation upload body to buf; the
	// returned bytes alias buf.
	EncodeBatch(buf *codec.Buffer, b *ObservationBatch) ([]byte, error)
	// DecodeBatch decodes an observation upload body.
	DecodeBatch(data []byte) (*ObservationBatch, error)
	// EncodePatchSet appends a GET /v1/patches response body to buf.
	EncodePatchSet(buf *codec.Buffer, w *WirePatchSet) ([]byte, error)
	// DecodePatchSet decodes a GET /v1/patches response body.
	DecodePatchSet(data []byte) (*WirePatchSet, error)
	// EncodeDelta appends a GET /v1/deltas response body to buf.
	EncodeDelta(buf *codec.Buffer, d *SnapshotDelta) ([]byte, error)
	// DecodeDelta decodes a GET /v1/deltas response body.
	DecodeDelta(data []byte) (*SnapshotDelta, error)
}

// JSONCodec is the v1 wire protocol: one JSON document per body,
// exactly the bytes pre-v2 clients and servers exchanged.
var JSONCodec Codec = jsonCodec{}

// V2Codec is the binary wire protocol (application/x-exterminator-v2).
var V2Codec Codec = v2Codec{}

// CodecForContentType returns the codec a Content-Type (or Accept
// entry) selects: V2Codec for the v2 media type, JSONCodec for
// everything else — unknown types fall back to v1, matching the
// protocol rule that JSON is the floor every peer speaks.
func CodecForContentType(ct string) Codec {
	if strings.HasPrefix(strings.TrimSpace(ct), codec.ContentTypeV2) {
		return V2Codec
	}
	return JSONCodec
}

// AcceptsV2 reports whether an Accept header value asks for v2 frames.
func AcceptsV2(accept string) bool {
	return strings.Contains(accept, codec.ContentTypeV2)
}

type jsonCodec struct{}

func (jsonCodec) ContentType() string { return "application/json" }

// appendJSON marshals v onto buf with the trailing newline
// json.Encoder always emitted, keeping v1 bodies byte-for-byte stable.
func appendJSON(buf *codec.Buffer, v any) ([]byte, error) {
	start := len(buf.B)
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	buf.B = append(buf.B, data...)
	buf.B = append(buf.B, '\n')
	return buf.B[start:], nil
}

func (jsonCodec) EncodeBatch(buf *codec.Buffer, b *ObservationBatch) ([]byte, error) {
	return appendJSON(buf, b)
}

func (jsonCodec) DecodeBatch(data []byte) (*ObservationBatch, error) {
	var b ObservationBatch
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("fleet: decode batch: %w", err)
	}
	return &b, nil
}

func (jsonCodec) EncodePatchSet(buf *codec.Buffer, w *WirePatchSet) ([]byte, error) {
	return appendJSON(buf, w)
}

func (jsonCodec) DecodePatchSet(data []byte) (*WirePatchSet, error) {
	var w WirePatchSet
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("fleet: decode patch set: %w", err)
	}
	return &w, nil
}

func (jsonCodec) EncodeDelta(buf *codec.Buffer, d *SnapshotDelta) ([]byte, error) {
	return appendJSON(buf, d)
}

func (jsonCodec) DecodeDelta(data []byte) (*SnapshotDelta, error) {
	var d SnapshotDelta
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("fleet: decode delta: %w", err)
	}
	return &d, nil
}

type v2Codec struct{}

func (v2Codec) ContentType() string { return codec.ContentTypeV2 }

func (v2Codec) EncodeBatch(buf *codec.Buffer, b *ObservationBatch) ([]byte, error) {
	return codec.EncodeBatch(buf, &codec.Batch{
		Client:      b.Client,
		BatchID:     b.BatchID,
		RingVersion: b.RingVersion,
		Snapshot:    b.Snapshot,
	}), nil
}

func (v2Codec) DecodeBatch(data []byte) (*ObservationBatch, error) {
	cb, err := codec.DecodeBatch(data)
	if err != nil {
		return nil, err
	}
	return &ObservationBatch{
		Client:      cb.Client,
		BatchID:     cb.BatchID,
		RingVersion: cb.RingVersion,
		Snapshot:    cb.Snapshot,
	}, nil
}

func (v2Codec) EncodePatchSet(buf *codec.Buffer, w *WirePatchSet) ([]byte, error) {
	return codec.EncodePatches(buf, patchSetToCodec(w)), nil
}

func (v2Codec) DecodePatchSet(data []byte) (*WirePatchSet, error) {
	ps, err := codec.DecodePatches(data)
	if err != nil {
		return nil, err
	}
	return patchSetFromCodec(ps), nil
}

func (v2Codec) EncodeDelta(buf *codec.Buffer, d *SnapshotDelta) ([]byte, error) {
	return codec.EncodeDelta(buf, deltaToCodec(d)), nil
}

func (v2Codec) DecodeDelta(data []byte) (*SnapshotDelta, error) {
	cd, err := codec.DecodeDelta(data)
	if err != nil {
		return nil, err
	}
	return deltaFromCodec(cd), nil
}

// The conversions between the fleet wire structs and the codec's
// neutral forms are shape-preserving field copies: the codec package
// cannot import fleet (fleet imports it), so each side owns its own
// struct and the seam pays a few slice copies, never a re-encode.

func patchSetToCodec(w *WirePatchSet) *codec.PatchSet {
	ps := &codec.PatchSet{Version: w.Version, Epoch: w.Epoch}
	if len(w.Pads) > 0 {
		ps.Pads = make([]codec.PadEntry, len(w.Pads))
		for i, e := range w.Pads {
			ps.Pads[i] = codec.PadEntry{Site: e.Site, Pad: e.Pad}
		}
	}
	if len(w.FrontPads) > 0 {
		ps.FrontPads = make([]codec.PadEntry, len(w.FrontPads))
		for i, e := range w.FrontPads {
			ps.FrontPads[i] = codec.PadEntry{Site: e.Site, Pad: e.Pad}
		}
	}
	if len(w.Deferrals) > 0 {
		ps.Deferrals = make([]codec.DeferralEntry, len(w.Deferrals))
		for i, e := range w.Deferrals {
			ps.Deferrals[i] = codec.DeferralEntry{Alloc: e.Alloc, Free: e.Free, Deferral: e.Deferral}
		}
	}
	return ps
}

func patchSetFromCodec(ps *codec.PatchSet) *WirePatchSet {
	w := &WirePatchSet{Version: ps.Version, Epoch: ps.Epoch}
	if len(ps.Pads) > 0 {
		w.Pads = make([]PadEntry, len(ps.Pads))
		for i, e := range ps.Pads {
			w.Pads[i] = PadEntry{Site: e.Site, Pad: e.Pad}
		}
	}
	if len(ps.FrontPads) > 0 {
		w.FrontPads = make([]PadEntry, len(ps.FrontPads))
		for i, e := range ps.FrontPads {
			w.FrontPads[i] = PadEntry{Site: e.Site, Pad: e.Pad}
		}
	}
	if len(ps.Deferrals) > 0 {
		w.Deferrals = make([]DeferralEntry, len(ps.Deferrals))
		for i, e := range ps.Deferrals {
			w.Deferrals[i] = DeferralEntry{Alloc: e.Alloc, Free: e.Free, Deferral: e.Deferral}
		}
	}
	return w
}

func deltaToCodec(d *SnapshotDelta) *codec.Delta {
	cd := &codec.Delta{
		Epoch:    d.Epoch,
		Seq:      d.Seq,
		Full:     d.Full,
		Snapshot: d.Snapshot,
		ReqIDs:   d.ReqIDs,
	}
	if len(d.Ops) > 0 {
		cd.Ops = make([]codec.DeltaOp, len(d.Ops))
		for i, op := range d.Ops {
			cd.Ops[i] = codec.DeltaOp{Evict: op.Evict, Snapshot: op.Snapshot}
		}
	}
	return cd
}

func deltaFromCodec(cd *codec.Delta) *SnapshotDelta {
	d := &SnapshotDelta{
		Epoch:    cd.Epoch,
		Seq:      cd.Seq,
		Full:     cd.Full,
		Snapshot: cd.Snapshot,
		ReqIDs:   cd.ReqIDs,
	}
	if len(cd.Ops) > 0 {
		d.Ops = make([]DeltaOp, len(cd.Ops))
		for i, op := range cd.Ops {
			d.Ops[i] = DeltaOp{Evict: op.Evict, Snapshot: op.Snapshot}
		}
	}
	return d
}

// WritePatchSet answers a patch poll with the codec the request's
// Accept header negotiates: a v2 frame when it names the v2 media
// type, the v1 JSON document otherwise — which is why a v1 poller's
// responses stay byte-for-byte what they always were. Shared by every
// tier that serves GET /v1/patches (fleet server, cluster coordinator,
// read replicas).
func WritePatchSet(w http.ResponseWriter, r *http.Request, wire *WirePatchSet) {
	if !AcceptsV2(r.Header.Get("Accept")) {
		WriteJSON(w, wire)
		return
	}
	buf := codec.GetBuffer()
	defer codec.PutBuffer(buf)
	frame, err := V2Codec.EncodePatchSet(buf, wire)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", codec.ContentTypeV2)
	w.Write(frame)
}

// WriteSnapshotDelta answers a delta poll with the negotiated codec
// (see WritePatchSet).
func WriteSnapshotDelta(w http.ResponseWriter, r *http.Request, d *SnapshotDelta) {
	if !AcceptsV2(r.Header.Get("Accept")) {
		WriteJSON(w, d)
		return
	}
	buf := codec.GetBuffer()
	defer codec.PutBuffer(buf)
	frame, err := V2Codec.EncodeDelta(buf, d)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", codec.ContentTypeV2)
	w.Write(frame)
}

// maxResponseBytes bounds client-side reads of v2 response bodies (the
// JSON paths stream through json.Decoder; v2 frames are decoded from
// one in-memory buffer, so the read must be capped first).
const maxResponseBytes = 64 << 20

// DecodePatchSetResponse decodes a GET /v1/patches response by its
// Content-Type: a v2 frame if the server negotiated one, the v1 JSON
// document otherwise. Shared by fleet.Client and the cluster replica's
// poller.
func DecodePatchSetResponse(resp *http.Response) (*WirePatchSet, error) {
	if CodecForContentType(resp.Header.Get("Content-Type")) == V2Codec {
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		if err != nil {
			return nil, fmt.Errorf("fleet: read patch set: %w", err)
		}
		return V2Codec.DecodePatchSet(data)
	}
	return decodeWire(resp.Body)
}

// DecodeSnapshotDeltaResponse decodes a GET /v1/deltas response by its
// Content-Type (see DecodePatchSetResponse).
func DecodeSnapshotDeltaResponse(resp *http.Response) (*SnapshotDelta, error) {
	if CodecForContentType(resp.Header.Get("Content-Type")) == V2Codec {
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		if err != nil {
			return nil, fmt.Errorf("fleet: read delta: %w", err)
		}
		return V2Codec.DecodeDelta(data)
	}
	var d SnapshotDelta
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("fleet: decode delta: %w", err)
	}
	return &d, nil
}
