package fleet

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"exterminator/internal/cumulative"
	"exterminator/internal/fleet/codec"
	"exterminator/internal/patch"
	"exterminator/internal/report"
	"exterminator/internal/site"
	"exterminator/internal/telemetry"
	"exterminator/internal/triage"
)

// Client talks to a fleet aggregation server. It is safe for concurrent
// use. The zero value is not usable; call NewClient.
//
// Uploads are gzip-compressed (Content-Encoding: gzip) by default:
// observation batches are highly repetitive JSON, and large fleets care
// about ingest bandwidth. Set DisableCompression for servers that
// predate transparent decompression.
type Client struct {
	id     string
	token  string
	hc     *http.Client
	logger *slog.Logger
	m      *clientMetrics

	// DisableCompression sends request bodies uncompressed.
	DisableCompression bool

	// wireV2 switches observation uploads to binary v2 frames and adds
	// the v2 Accept header to patch/delta polls (SetWireV2). A server
	// that rejects the frame downgrades the client back to JSON for the
	// rest of its lifetime — the fleet never wedges on an old server.
	wireV2 atomic.Bool

	mu sync.Mutex
	// bases are the server base URLs in failover order; active indexes
	// the one requests currently go to. A transport failure or a 503
	// (a coordinator standing by) rotates to the next base and sticks —
	// millions of pollers must not hammer a dead primary on every poll.
	bases  []string
	active int
	// lastEpoch is the highest server incarnation seen by any patch
	// poll. Epochs are ordered across failovers (a promoted standby
	// takes an epoch above its predecessor's), so a response stamped
	// with a *lower* epoch comes from a zombie primary and is rejected;
	// a *higher* epoch means the server is a new incarnation whose
	// version numbering restarted, so the client resyncs from 0.
	lastEpoch uint64
	// etag and lastVersion are the patch-poll cache validator: the
	// ETag of the last 200 patch response and the version it carried.
	// Polls from that version revalidate with If-None-Match; a 304
	// answers "nothing new" without a body.
	etag        string
	lastVersion uint64
}

// clientMetrics is the upload-side instrument set, registered when the
// embedding process hands the client a registry (SetMetrics). Nil on
// clients that never did — every touch point is nil-guarded.
type clientMetrics struct {
	pushes       *telemetry.Counter
	retries      *telemetry.Counter
	backoffSec   *telemetry.Counter
	errors       *telemetry.Counter
	notMod       *telemetry.Counter
	failovers    *telemetry.Counter
	v2Downgrades *telemetry.Counter
	pushSec      *telemetry.Histogram
}

func newClientMetrics(reg *telemetry.Registry) *clientMetrics {
	return &clientMetrics{
		pushes: reg.Counter("fleet_client_pushes_total",
			"Observation batch uploads attempted (each counted once, however many 429 retries it took)."),
		retries: reg.Counter("fleet_client_retries_total",
			"Rate-limited (429) upload deliveries retried after a Retry-After wait."),
		backoffSec: reg.Counter("fleet_client_backoff_seconds_total",
			"Total seconds spent sleeping on Retry-After backoff."),
		errors: reg.Counter("fleet_client_push_errors_total",
			"Observation uploads that ultimately failed (after retries)."),
		notMod: reg.Counter("fleet_client_patch_not_modified_total",
			"Patch polls answered 304 Not Modified off the If-None-Match validator (no body shipped)."),
		failovers: reg.Counter("fleet_client_failovers_total",
			"Requests rotated to a fallback base after a transport failure or 503."),
		v2Downgrades: reg.Counter("fleet_client_v2_downgrades_total",
			"Uploads permanently downgraded from v2 binary frames to JSON after a server rejection."),
		pushSec: reg.Histogram("fleet_client_push_seconds",
			"Observation upload round-trip latency, including 429 backoff.",
			telemetry.DefBuckets),
	}
}

// NewClient returns a client for the server at base (e.g.
// "http://patches.example.com:7077"). id is an opaque installation
// identifier sent with uploads; empty is fine.
func NewClient(base, id string) *Client {
	return &Client{
		bases:  []string{strings.TrimRight(base, "/")},
		id:     id,
		hc:     &http.Client{Timeout: 15 * time.Second},
		logger: slog.New(slog.DiscardHandler),
	}
}

// SetFallbacks appends failover base URLs tried — in order, sticky —
// when the active base fails at the transport level or answers 503
// (a warm standby gating its read path). Point a fleet of pollers at
// the primary coordinator with its standby as fallback and a failover
// needs no client reconfiguration.
func (c *Client) SetFallbacks(bases ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range bases {
		if b = strings.TrimRight(b, "/"); b != "" {
			c.bases = append(c.bases, b)
		}
	}
}

// activeBase returns the base URL requests currently target.
func (c *Client) activeBase() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bases[c.active]
}

// numBases returns the failover set's size.
func (c *Client) numBases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bases)
}

// rotateFrom advances to the next base if failed is still the active
// one (concurrent requests that both fail rotate once, not twice).
func (c *Client) rotateFrom(failed string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.bases) > 1 && c.bases[c.active] == failed {
		c.active = (c.active + 1) % len(c.bases)
	}
}

// SetHTTPClient swaps the underlying HTTP client (tests, custom timeouts).
func (c *Client) SetHTTPClient(hc *http.Client) { c.hc = hc }

// SetLogger attaches a structured logger; by default the client is
// silent. Each rate-limited retry is logged with the attempt count, the
// server's Retry-After, and the batch and correlation IDs, so a stalled
// uploader explains itself.
func (c *Client) SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.DiscardHandler)
	}
	c.logger = l.With("component", "fleet-client")
}

// SetMetrics registers the client's upload instruments (push latency,
// retry and backoff counters) into reg. Without it the client records
// nothing.
func (c *Client) SetMetrics(reg *telemetry.Registry) {
	if reg != nil {
		c.m = newClientMetrics(reg)
	}
}

// SetToken attaches a shared ingest token, sent as `Authorization:
// Bearer <token>` with every request (servers started with -token reject
// unauthenticated writes).
func (c *Client) SetToken(token string) { c.token = token }

// SetWireV2 opts the client into the binary v2 wire protocol:
// observation uploads go out as application/x-exterminator-v2 frames,
// and patch/delta polls advertise v2 in Accept so servers that speak it
// answer in frames. Negotiation is self-healing — a server that
// rejects a v2 upload (415, or 400 from a pre-v2 server that tried to
// parse the frame as JSON) permanently downgrades this client back to
// JSON, so pointing a v2 client at a v1 fleet costs one extra
// round-trip, ever.
func (c *Client) SetWireV2(on bool) { c.wireV2.Store(on) }

// WireV2 reports whether the client currently uploads v2 frames.
func (c *Client) WireV2() bool { return c.wireV2.Load() }

// PushSnapshot uploads one batch of observations.
func (c *Client) PushSnapshot(s *cumulative.Snapshot) (*IngestReply, error) {
	return c.PushSnapshotContext(context.Background(), s)
}

// PushSnapshotContext is PushSnapshot honoring ctx. The batch carries no
// batch ID, so delivery is at-least-once: a retry after a lost ack is
// absorbed again. Exactly-once callers stamp their batches with
// cumulative.BatchID and use PushBatchContext (fleet.Sink does this).
func (c *Client) PushSnapshotContext(ctx context.Context, s *cumulative.Snapshot) (*IngestReply, error) {
	if s == nil {
		return nil, fmt.Errorf("fleet: nil snapshot")
	}
	return c.PushBatchContext(ctx, &ObservationBatch{Client: c.id, Snapshot: s})
}

// PushBatchContext uploads a prepared ObservationBatch verbatim —
// including its BatchID, which is what makes retries of the same batch
// idempotent against servers keeping a dedup window. The batch's Client
// field is filled from the client's id when empty.
func (c *Client) PushBatchContext(ctx context.Context, b *ObservationBatch) (*IngestReply, error) {
	if b == nil || b.Snapshot == nil {
		return nil, fmt.Errorf("fleet: nil batch")
	}
	if b.Client == "" {
		b.Client = c.id
	}
	var reply IngestReply
	if err := c.post(ctx, "/v1/observations", b.BatchID, b, &reply); err != nil {
		if c.m != nil {
			c.m.errors.Inc()
		}
		return nil, err
	}
	return &reply, nil
}

// ID returns the installation identifier uploads are attributed to.
func (c *Client) ID() string { return c.id }

// PushHistory uploads a whole local cumulative history as one batch.
// Upload the *delta* accumulated since the previous push, not the same
// history repeatedly: the server appends observations (evidence is a
// multiset, not a lattice).
func (c *Client) PushHistory(h *cumulative.History) (*IngestReply, error) {
	return c.PushHistoryContext(context.Background(), h)
}

// PushHistoryContext is PushHistory honoring ctx.
func (c *Client) PushHistoryContext(ctx context.Context, h *cumulative.History) (*IngestReply, error) {
	if h == nil {
		return nil, fmt.Errorf("fleet: nil history")
	}
	return c.PushSnapshotContext(ctx, h.Snapshot())
}

// PushReport uploads a human-readable bug report.
func (c *Client) PushReport(r *report.Report) error {
	return c.PushReportContext(context.Background(), r)
}

// PushReportContext is PushReport honoring ctx. The report is redacted
// in place before upload (report.Redact): relative paths only, no
// PII/token-shaped strings, capped lists — nothing leaves the client
// that the fleet's retention and triage tiers must not see.
func (c *Client) PushReportContext(ctx context.Context, r *report.Report) error {
	return c.postJSON(ctx, "/v1/reports", report.Redact(r), nil)
}

// Patches fetches the patch entries added after version since, returning
// the delta set and the server's current version. Merging the delta into
// a local set with Set.Merge is always safe: patches compose by maxima.
//
// Versions are only ordered within one server incarnation; if the server
// failed over or restarted since this client's previous poll (its epoch
// rose), the carried-over since would silently skip rederived patches,
// so the client transparently resyncs from version 0 instead. A response
// stamped with a *lower* epoch than the highest this client has seen
// comes from a deposed primary still answering; the client rotates to
// its fallback bases and, if every base is stale, fails with
// *StalePrimaryError rather than regress the patch log. Callers that
// persist since across their *own* restarts should poll once with
// since=0 after loading it.
func (c *Client) Patches(since uint64) (*patch.Set, uint64, error) {
	return c.PatchesContext(context.Background(), since)
}

// PatchesContext is Patches honoring ctx. Polls revalidate with the last
// response's ETag; a 304 Not Modified returns an empty delta and the
// cached version without shipping a body.
func (c *Client) PatchesContext(ctx context.Context, since uint64) (*patch.Set, uint64, error) {
	c.mu.Lock()
	inm := ""
	if c.etag != "" && since >= c.lastVersion {
		inm = c.etag
	}
	lastEpoch := c.lastEpoch
	c.mu.Unlock()

	w, etag, err := c.fetchPatches(ctx, since, inm)
	if err != nil {
		return nil, 0, err
	}
	if w == nil { // 304: nothing changed since the validator was minted
		if c.m != nil {
			c.m.notMod.Inc()
		}
		c.mu.Lock()
		v := c.lastVersion
		c.mu.Unlock()
		return patch.New(), v, nil
	}
	// Reject stale primaries: rotate away from any base answering with
	// an epoch below the highest we have integrated — merging its
	// response could not regress the set (patches compose by maxima),
	// but trusting its *version* would wedge the poll cursor.
	for tries := 1; w.Epoch != 0 && lastEpoch != 0 && w.Epoch < lastEpoch; tries++ {
		if tries >= c.numBases() {
			return nil, 0, &StalePrimaryError{Seen: lastEpoch, Got: w.Epoch}
		}
		c.rotateFrom(c.activeBase())
		if c.m != nil {
			c.m.failovers.Inc()
		}
		if w, etag, err = c.fetchPatches(ctx, since, ""); err != nil {
			return nil, 0, err
		}
		if w == nil {
			return nil, 0, fmt.Errorf("fleet: get patches: unexpected 304 without validator")
		}
	}
	if since > 0 && lastEpoch != 0 && w.Epoch > lastEpoch {
		// New incarnation: its version numbering restarted, so our
		// cursor means nothing to it. Resync from 0.
		if w, etag, err = c.fetchPatches(ctx, 0, ""); err != nil {
			return nil, 0, err
		}
		if w == nil {
			return nil, 0, fmt.Errorf("fleet: get patches: unexpected 304 without validator")
		}
	}
	c.mu.Lock()
	if w.Epoch > c.lastEpoch {
		c.lastEpoch = w.Epoch
	}
	c.etag, c.lastVersion = etag, w.Version
	c.mu.Unlock()
	return w.Set(), w.Version, nil
}

// fetchPatches issues one patch poll. A nil WirePatchSet with nil error
// reports 304 Not Modified (only possible when ifNoneMatch was sent).
func (c *Client) fetchPatches(ctx context.Context, since uint64, ifNoneMatch string) (*WirePatchSet, string, error) {
	hdr := map[string]string{}
	if ifNoneMatch != "" {
		hdr["If-None-Match"] = ifNoneMatch
	}
	if c.wireV2.Load() {
		// Advertise v2; servers that don't speak it ignore Accept and
		// answer JSON, which the response decode handles either way.
		hdr["Accept"] = codec.ContentTypeV2
	}
	resp, reqID, err := c.get(ctx, fmt.Sprintf("/v1/patches?since=%d", since), hdr)
	if err != nil {
		return nil, "", fmt.Errorf("fleet: get patches (request %s): %w", reqID, err)
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusNotModified && ifNoneMatch != "" {
		return nil, "", nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", httpError("get patches (request "+reqID+")", resp)
	}
	w, err := DecodePatchSetResponse(resp)
	if err != nil {
		return nil, "", err
	}
	return w, resp.Header.Get("ETag"), nil
}

// Lease fetches the server's lease state (GET /v1/lease): its failover
// epoch and whether it is currently primary. Standby coordinators probe
// their primary with this; operators use it to verify a topology.
func (c *Client) Lease(ctx context.Context) (*LeaseReply, error) {
	resp, reqID, err := c.get(ctx, "/v1/lease", nil)
	if err != nil {
		return nil, fmt.Errorf("fleet: get lease (request %s): %w", reqID, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("get lease (request "+reqID+")", resp)
	}
	var lr LeaseReply
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return nil, fmt.Errorf("fleet: get lease (request %s): %w", reqID, err)
	}
	return &lr, nil
}

// Status fetches aggregate server statistics.
func (c *Client) Status() (*StatusReply, error) {
	resp, reqID, err := c.get(context.Background(), "/v1/status", nil)
	if err != nil {
		return nil, fmt.Errorf("fleet: get status (request %s): %w", reqID, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("get status (request "+reqID+")", resp)
	}
	var st StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("fleet: get status (request %s): %w", reqID, err)
	}
	return &st, nil
}

// TriageRankings fetches the server's paginated triage ranking (GET
// /v1/triage): the fleet's top defect clusters, pooled-Bayes first.
func (c *Client) TriageRankings(ctx context.Context, offset, limit int) (*triage.RankingReply, error) {
	resp, reqID, err := c.get(ctx, fmt.Sprintf("/v1/triage?offset=%d&limit=%d", offset, limit), nil)
	if err != nil {
		return nil, fmt.Errorf("fleet: get triage (request %s): %w", reqID, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("get triage (request "+reqID+")", resp)
	}
	var rr triage.RankingReply
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("fleet: get triage (request %s): %w", reqID, err)
	}
	return &rr, nil
}

// TriageCluster fetches one cluster's detail (GET /v1/triage/{cluster}).
func (c *Client) TriageCluster(ctx context.Context, id string) (*triage.ClusterDetail, error) {
	resp, reqID, err := c.get(ctx, "/v1/triage/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, fmt.Errorf("fleet: get triage cluster (request %s): %w", reqID, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("get triage cluster (request "+reqID+")", resp)
	}
	var d triage.ClusterDetail
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, fmt.Errorf("fleet: get triage cluster (request %s): %w", reqID, err)
	}
	return &d, nil
}

// Deltas polls the server's evidence journal: everything absorbed after
// journal sequence number since, merged into one snapshot. This is the
// feed cluster coordinators (internal/cluster) mirror partitions with;
// ordinary installations never need it.
func (c *Client) Deltas(ctx context.Context, since uint64) (*SnapshotDelta, error) {
	var hdr map[string]string
	if c.wireV2.Load() {
		hdr = map[string]string{"Accept": codec.ContentTypeV2}
	}
	resp, reqID, err := c.get(ctx, fmt.Sprintf("/v1/deltas?since=%d", since), hdr)
	if err != nil {
		return nil, fmt.Errorf("fleet: get deltas (request %s): %w", reqID, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("get deltas (request "+reqID+")", resp)
	}
	d, err := DecodeSnapshotDeltaResponse(resp)
	if err != nil {
		return nil, fmt.Errorf("fleet: decode deltas (request %s): %w", reqID, err)
	}
	return d, nil
}

// EvictKeys drains a key set from the server (POST /v1/evict): the keys'
// evidence is atomically removed and returned; counters additionally
// drains the node's run totals (for a node leaving the cluster). token
// is the caller's idempotency handle — re-evicting with the same token
// returns the original drain's result (Cached set) even if the store has
// since changed. This is the partition half of a cluster rebalance;
// ordinary installations never need it.
func (c *Client) EvictKeys(ctx context.Context, token string, keys []site.ID, counters bool) (*EvictReply, error) {
	var reply EvictReply
	if err := c.postJSON(ctx, "/v1/evict", EvictRequest{Token: token, Keys: keys, Counters: counters}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// AnnounceRing raises the server's required cluster membership version
// (POST /v1/ring); versioned uploads split under an older ring are
// rejected from then on. The requirement never regresses — the reply
// carries the version now in force.
func (c *Client) AnnounceRing(ctx context.Context, version uint64) (*RingReply, error) {
	var reply RingReply
	if err := c.postJSON(ctx, "/v1/ring", RingUpdate{Version: version}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Membership fetches a coordinator's current cluster topology (GET
// /v1/membership): the membership version and partition base URLs a
// router should split uploads across.
func (c *Client) Membership(ctx context.Context) (*MembershipReply, error) {
	resp, reqID, err := c.get(ctx, "/v1/membership", nil)
	if err != nil {
		return nil, fmt.Errorf("fleet: get membership (request %s): %w", reqID, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("get membership (request "+reqID+")", resp)
	}
	var m MembershipReply
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("fleet: get membership (request %s): %w", reqID, err)
	}
	return &m, nil
}

// get issues a read request for path (e.g. "/v1/patches?since=3"),
// stamping it with a fresh X-Request-ID — the read-path half of the
// correlation contract: uploads have carried one since PR 6, but a
// failed *fetch* could not be grepped across tiers. The ID is logged
// here and returned so callers thread it into their errors.
func (c *Client) get(ctx context.Context, path string, header map[string]string) (resp *http.Response, reqID string, err error) {
	reqID = telemetry.NewRequestID()
	attempts := c.numBases()
	for attempt := 0; ; attempt++ {
		base := c.activeBase()
		req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if rerr != nil {
			return nil, reqID, rerr
		}
		req.Header.Set(RequestIDHeader, reqID)
		if c.token != "" {
			req.Header.Set("Authorization", "Bearer "+c.token)
		}
		for k, v := range header {
			req.Header.Set(k, v)
		}
		resp, err = c.hc.Do(req)
		switch {
		case err != nil:
			c.logger.Warn("fetch failed", "path", path, "base", base, "requestId", reqID, "error", err)
		case resp.StatusCode == http.StatusServiceUnavailable && attempt+1 < attempts:
			// A standby coordinator gates its read path with 503; the
			// promoted peer is one rotation away.
			drain(resp)
			err = fmt.Errorf("fleet: %s unavailable (503)", base)
			c.logger.Warn("fetch got 503; rotating base", "path", path, "base", base, "requestId", reqID)
		default:
			c.logger.Debug("fetch", "path", path, "status", resp.StatusCode, "requestId", reqID)
			return resp, reqID, nil
		}
		if attempt+1 >= attempts {
			return nil, reqID, err
		}
		c.rotateFrom(base)
		if c.m != nil {
			c.m.failovers.Inc()
		}
	}
}

// StaleRingError reports a 409 stale-ring rejection: the upload was
// split under an older cluster membership than the partition requires.
// The evidence was not absorbed; the caller must refresh membership
// (coordinator GET /v1/membership, cluster.Ring.SetMembership) and
// re-split its delta before retrying. Required is the partition's
// current membership version.
type StaleRingError struct {
	Required uint64
}

func (e *StaleRingError) Error() string {
	return fmt.Sprintf("fleet: upload split under a stale ring (partition requires membership version %d)", e.Required)
}

// StalePrimaryError reports that every configured base answered a patch
// poll with an epoch below the highest this client has already
// integrated — the failover's deposed primary is still serving (and is
// the only thing serving). The client must not adopt its version
// numbering; poll again once the topology heals.
type StalePrimaryError struct {
	// Seen is the highest epoch this client has integrated; Got is the
	// stale epoch the server answered with.
	Seen, Got uint64
}

func (e *StalePrimaryError) Error() string {
	return fmt.Sprintf("fleet: stale primary: server epoch %d is below the highest epoch seen %d", e.Got, e.Seen)
}

// Rate-limit retry bounds: a 429 with Retry-After is obeyed up to
// maxPushAttempts deliveries, each wait clamped to maxRetryAfterWait so
// a hostile or misconfigured server cannot park the client forever. The
// waits are context-aware — cancellation aborts immediately.
const (
	maxPushAttempts   = 4
	maxRetryAfterWait = 10 * time.Second
)

// postJSON encodes body as JSON — gzip-compressed unless
// DisableCompression — and posts it to path. Rate-limited requests
// (429, which the server sends with Retry-After and *without* having
// processed the body) are retried after the advertised delay, bounded
// by maxPushAttempts; a 409 stale-ring rejection surfaces as a
// *StaleRingError.
func (c *Client) postJSON(ctx context.Context, path string, body, reply any) error {
	return c.post(ctx, path, "", body, reply)
}

// gzWriterPool recycles upload gzip.Writers: each carries ~hundreds of
// KB of deflate state, and a fleet client pushes on a steady cadence —
// re-allocating one per push was measurable allocator pressure.
var gzWriterPool = sync.Pool{
	New: func() any { return gzip.NewWriter(io.Discard) },
}

// v2GzipMinBytes is the frame size below which v2 uploads skip gzip:
// the binary encoding is already dense, and for small frames the
// deflate overhead (CPU both ways plus header bytes) beats any saving.
const v2GzipMinBytes = 1024

// postBody is one encoded request body plus the headers that describe
// it.
type postBody struct {
	payload     []byte
	contentType string
	gzipped     bool
}

// encodePostBody encodes body for path under the client's current wire
// settings: a v2 binary frame for observation uploads when SetWireV2 is
// on (gzipped only past v2GzipMinBytes — small frames aren't worth the
// deflate round-trip), JSON (gzipped unless DisableCompression)
// otherwise.
func (c *Client) encodePostBody(path string, body any, allowV2 bool) (postBody, error) {
	if allowV2 {
		if b, ok := body.(*ObservationBatch); ok && path == "/v1/observations" {
			buf := codec.GetBuffer()
			defer codec.PutBuffer(buf)
			frame, err := V2Codec.EncodeBatch(buf, b)
			if err != nil {
				return postBody{}, fmt.Errorf("fleet: encode %s: %w", path, err)
			}
			if c.DisableCompression || len(frame) < v2GzipMinBytes {
				return postBody{payload: append([]byte(nil), frame...), contentType: codec.ContentTypeV2}, nil
			}
			var zbuf bytes.Buffer
			zw := gzWriterPool.Get().(*gzip.Writer)
			zw.Reset(&zbuf)
			_, werr := zw.Write(frame)
			cerr := zw.Close()
			gzWriterPool.Put(zw)
			if werr != nil || cerr != nil {
				if werr == nil {
					werr = cerr
				}
				return postBody{}, fmt.Errorf("fleet: compress %s: %w", path, werr)
			}
			return postBody{payload: zbuf.Bytes(), contentType: codec.ContentTypeV2, gzipped: true}, nil
		}
	}
	var buf bytes.Buffer
	if c.DisableCompression {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return postBody{}, fmt.Errorf("fleet: encode %s: %w", path, err)
		}
		return postBody{payload: buf.Bytes(), contentType: "application/json"}, nil
	}
	zw := gzWriterPool.Get().(*gzip.Writer)
	zw.Reset(&buf)
	err := json.NewEncoder(zw).Encode(body)
	cerr := zw.Close()
	gzWriterPool.Put(zw)
	if err != nil {
		return postBody{}, fmt.Errorf("fleet: encode %s: %w", path, err)
	}
	if cerr != nil {
		return postBody{}, fmt.Errorf("fleet: compress %s: %w", path, cerr)
	}
	return postBody{payload: buf.Bytes(), contentType: "application/json", gzipped: true}, nil
}

// post is postJSON carrying the batch's identity for log correlation.
// Every delivery is stamped with one X-Request-ID, held constant across
// 429 retries of the same payload so all server-side log lines for this
// upload share a single correlation handle.
func (c *Client) post(ctx context.Context, path, batchID string, body, reply any) error {
	usingV2 := c.wireV2.Load()
	pb, err := c.encodePostBody(path, body, usingV2)
	if err != nil {
		return err
	}
	usingV2 = pb.contentType == codec.ContentTypeV2
	reqID := telemetry.NewRequestID()
	if path == "/v1/observations" && c.m != nil {
		c.m.pushes.Inc()
		defer c.m.pushSec.ObserveSince(time.Now())
	}
	failovers := 0
	for attempt := 1; ; attempt++ {
		base := c.activeBase()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(pb.payload))
		if err != nil {
			return fmt.Errorf("fleet: post %s: %w", path, err)
		}
		req.Header.Set("Content-Type", pb.contentType)
		req.Header.Set(RequestIDHeader, reqID)
		if c.token != "" {
			req.Header.Set("Authorization", "Bearer "+c.token)
		}
		if pb.gzipped {
			req.Header.Set("Content-Encoding", "gzip")
		}
		resp, err := c.hc.Do(req)
		if err != nil || resp.StatusCode == http.StatusServiceUnavailable {
			// Transport failure or a standby gating writes: rotate to the
			// next base. Failovers don't consume 429 delivery attempts.
			if err == nil {
				drain(resp)
				err = fmt.Errorf("%s unavailable (503)", base)
			}
			failovers++
			if failovers >= c.numBases() {
				return fmt.Errorf("fleet: post %s: %w", path, err)
			}
			c.rotateFrom(base)
			if c.m != nil {
				c.m.failovers.Inc()
			}
			c.logger.Warn("push failed; rotating base",
				"path", path, "base", base, "requestId", reqID, "error", err)
			attempt--
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < maxPushAttempts {
			wait := retryAfter(resp)
			drain(resp)
			c.logger.Warn("push rate-limited; backing off",
				"path", path,
				"attempt", attempt,
				"retryAfterSec", wait.Seconds(),
				"batchId", batchID,
				"requestId", reqID)
			if c.m != nil {
				c.m.retries.Inc()
				c.m.backoffSec.Add(wait.Seconds())
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("fleet: post %s: %w", path, ctx.Err())
			case <-time.After(wait):
			}
			continue
		}
		if usingV2 && (resp.StatusCode == http.StatusUnsupportedMediaType || resp.StatusCode == http.StatusBadRequest) {
			// The server doesn't speak v2 (415 from one that says so, 400
			// from a pre-v2 server that tried to parse the frame as JSON).
			// Downgrade this client permanently and redeliver as JSON — a
			// genuinely malformed batch fails again there and surfaces.
			drain(resp)
			c.wireV2.Store(false)
			usingV2 = false
			if c.m != nil {
				c.m.v2Downgrades.Inc()
			}
			c.logger.Warn("server rejected v2 frame; downgrading to JSON",
				"path", path, "base", base, "status", resp.StatusCode, "requestId", reqID)
			if pb, err = c.encodePostBody(path, body, false); err != nil {
				return err
			}
			attempt--
			continue
		}
		defer drain(resp)
		if resp.StatusCode == http.StatusConflict {
			var ir IngestReply
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			if json.Unmarshal(raw, &ir) == nil && ir.StaleRing {
				return &StaleRingError{Required: ir.RingVersion}
			}
			return fmt.Errorf("fleet: post %s: %s: %s", path, resp.Status, strings.TrimSpace(string(raw)))
		}
		if resp.StatusCode != http.StatusOK {
			return httpError("post "+path, resp)
		}
		if reply != nil {
			if err := json.NewDecoder(resp.Body).Decode(reply); err != nil {
				return fmt.Errorf("fleet: decode %s reply: %w", path, err)
			}
		}
		return nil
	}
}

// retryAfter parses a 429's Retry-After seconds, defaulting to one
// second and clamping to maxRetryAfterWait.
func retryAfter(resp *http.Response) time.Duration {
	wait := time.Second
	if v, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); err == nil && v > 0 {
		wait = time.Duration(v) * time.Second
	}
	if wait > maxRetryAfterWait {
		wait = maxRetryAfterWait
	}
	return wait
}

func httpError(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("fleet: %s: %s: %s", op, resp.Status, strings.TrimSpace(string(msg)))
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
