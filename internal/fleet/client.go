package fleet

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"exterminator/internal/cumulative"
	"exterminator/internal/patch"
	"exterminator/internal/report"
	"exterminator/internal/site"
	"exterminator/internal/telemetry"
	"exterminator/internal/triage"
)

// Client talks to a fleet aggregation server. It is safe for concurrent
// use. The zero value is not usable; call NewClient.
//
// Uploads are gzip-compressed (Content-Encoding: gzip) by default:
// observation batches are highly repetitive JSON, and large fleets care
// about ingest bandwidth. Set DisableCompression for servers that
// predate transparent decompression.
type Client struct {
	base   string
	id     string
	token  string
	hc     *http.Client
	logger *slog.Logger
	m      *clientMetrics

	// DisableCompression sends request bodies uncompressed.
	DisableCompression bool

	mu        sync.Mutex
	lastEpoch uint64 // server incarnation seen by the previous poll
}

// clientMetrics is the upload-side instrument set, registered when the
// embedding process hands the client a registry (SetMetrics). Nil on
// clients that never did — every touch point is nil-guarded.
type clientMetrics struct {
	pushes     *telemetry.Counter
	retries    *telemetry.Counter
	backoffSec *telemetry.Counter
	errors     *telemetry.Counter
	pushSec    *telemetry.Histogram
}

func newClientMetrics(reg *telemetry.Registry) *clientMetrics {
	return &clientMetrics{
		pushes: reg.Counter("fleet_client_pushes_total",
			"Observation batch uploads attempted (each counted once, however many 429 retries it took)."),
		retries: reg.Counter("fleet_client_retries_total",
			"Rate-limited (429) upload deliveries retried after a Retry-After wait."),
		backoffSec: reg.Counter("fleet_client_backoff_seconds_total",
			"Total seconds spent sleeping on Retry-After backoff."),
		errors: reg.Counter("fleet_client_push_errors_total",
			"Observation uploads that ultimately failed (after retries)."),
		pushSec: reg.Histogram("fleet_client_push_seconds",
			"Observation upload round-trip latency, including 429 backoff.",
			telemetry.DefBuckets),
	}
}

// NewClient returns a client for the server at base (e.g.
// "http://patches.example.com:7077"). id is an opaque installation
// identifier sent with uploads; empty is fine.
func NewClient(base, id string) *Client {
	return &Client{
		base:   strings.TrimRight(base, "/"),
		id:     id,
		hc:     &http.Client{Timeout: 15 * time.Second},
		logger: slog.New(slog.DiscardHandler),
	}
}

// SetHTTPClient swaps the underlying HTTP client (tests, custom timeouts).
func (c *Client) SetHTTPClient(hc *http.Client) { c.hc = hc }

// SetLogger attaches a structured logger; by default the client is
// silent. Each rate-limited retry is logged with the attempt count, the
// server's Retry-After, and the batch and correlation IDs, so a stalled
// uploader explains itself.
func (c *Client) SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.DiscardHandler)
	}
	c.logger = l.With("component", "fleet-client")
}

// SetMetrics registers the client's upload instruments (push latency,
// retry and backoff counters) into reg. Without it the client records
// nothing.
func (c *Client) SetMetrics(reg *telemetry.Registry) {
	if reg != nil {
		c.m = newClientMetrics(reg)
	}
}

// SetToken attaches a shared ingest token, sent as `Authorization:
// Bearer <token>` with every request (servers started with -token reject
// unauthenticated writes).
func (c *Client) SetToken(token string) { c.token = token }

// PushSnapshot uploads one batch of observations.
func (c *Client) PushSnapshot(s *cumulative.Snapshot) (*IngestReply, error) {
	return c.PushSnapshotContext(context.Background(), s)
}

// PushSnapshotContext is PushSnapshot honoring ctx. The batch carries no
// batch ID, so delivery is at-least-once: a retry after a lost ack is
// absorbed again. Exactly-once callers stamp their batches with
// cumulative.BatchID and use PushBatchContext (fleet.Sink does this).
func (c *Client) PushSnapshotContext(ctx context.Context, s *cumulative.Snapshot) (*IngestReply, error) {
	if s == nil {
		return nil, fmt.Errorf("fleet: nil snapshot")
	}
	return c.PushBatchContext(ctx, &ObservationBatch{Client: c.id, Snapshot: s})
}

// PushBatchContext uploads a prepared ObservationBatch verbatim —
// including its BatchID, which is what makes retries of the same batch
// idempotent against servers keeping a dedup window. The batch's Client
// field is filled from the client's id when empty.
func (c *Client) PushBatchContext(ctx context.Context, b *ObservationBatch) (*IngestReply, error) {
	if b == nil || b.Snapshot == nil {
		return nil, fmt.Errorf("fleet: nil batch")
	}
	if b.Client == "" {
		b.Client = c.id
	}
	var reply IngestReply
	if err := c.post(ctx, "/v1/observations", b.BatchID, b, &reply); err != nil {
		if c.m != nil {
			c.m.errors.Inc()
		}
		return nil, err
	}
	return &reply, nil
}

// ID returns the installation identifier uploads are attributed to.
func (c *Client) ID() string { return c.id }

// PushHistory uploads a whole local cumulative history as one batch.
// Upload the *delta* accumulated since the previous push, not the same
// history repeatedly: the server appends observations (evidence is a
// multiset, not a lattice).
func (c *Client) PushHistory(h *cumulative.History) (*IngestReply, error) {
	return c.PushHistoryContext(context.Background(), h)
}

// PushHistoryContext is PushHistory honoring ctx.
func (c *Client) PushHistoryContext(ctx context.Context, h *cumulative.History) (*IngestReply, error) {
	if h == nil {
		return nil, fmt.Errorf("fleet: nil history")
	}
	return c.PushSnapshotContext(ctx, h.Snapshot())
}

// PushReport uploads a human-readable bug report.
func (c *Client) PushReport(r *report.Report) error {
	return c.PushReportContext(context.Background(), r)
}

// PushReportContext is PushReport honoring ctx. The report is redacted
// in place before upload (report.Redact): relative paths only, no
// PII/token-shaped strings, capped lists — nothing leaves the client
// that the fleet's retention and triage tiers must not see.
func (c *Client) PushReportContext(ctx context.Context, r *report.Report) error {
	return c.postJSON(ctx, "/v1/reports", report.Redact(r), nil)
}

// Patches fetches the patch entries added after version since, returning
// the delta set and the server's current version. Merging the delta into
// a local set with Set.Merge is always safe: patches compose by maxima.
//
// Versions are only ordered within one server incarnation; if the server
// restarted since this client's previous poll (its epoch changed), the
// carried-over since would silently skip rederived patches, so the
// client transparently resyncs from version 0 instead. Callers that
// persist since across their *own* restarts should poll once with
// since=0 after loading it.
func (c *Client) Patches(since uint64) (*patch.Set, uint64, error) {
	return c.PatchesContext(context.Background(), since)
}

// PatchesContext is Patches honoring ctx.
func (c *Client) PatchesContext(ctx context.Context, since uint64) (*patch.Set, uint64, error) {
	w, err := c.fetchPatches(ctx, since)
	if err != nil {
		return nil, 0, err
	}
	c.mu.Lock()
	stale := since > 0 && c.lastEpoch != 0 && w.Epoch != 0 && w.Epoch != c.lastEpoch
	c.lastEpoch = w.Epoch
	c.mu.Unlock()
	if stale {
		if w, err = c.fetchPatches(ctx, 0); err != nil {
			return nil, 0, err
		}
	}
	return w.Set(), w.Version, nil
}

func (c *Client) fetchPatches(ctx context.Context, since uint64) (*WirePatchSet, error) {
	resp, reqID, err := c.get(ctx, fmt.Sprintf("/v1/patches?since=%d", since))
	if err != nil {
		return nil, fmt.Errorf("fleet: get patches (request %s): %w", reqID, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("get patches (request "+reqID+")", resp)
	}
	return decodeWire(resp.Body)
}

// Status fetches aggregate server statistics.
func (c *Client) Status() (*StatusReply, error) {
	resp, reqID, err := c.get(context.Background(), "/v1/status")
	if err != nil {
		return nil, fmt.Errorf("fleet: get status (request %s): %w", reqID, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("get status (request "+reqID+")", resp)
	}
	var st StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("fleet: get status (request %s): %w", reqID, err)
	}
	return &st, nil
}

// TriageRankings fetches the server's paginated triage ranking (GET
// /v1/triage): the fleet's top defect clusters, pooled-Bayes first.
func (c *Client) TriageRankings(ctx context.Context, offset, limit int) (*triage.RankingReply, error) {
	resp, reqID, err := c.get(ctx, fmt.Sprintf("/v1/triage?offset=%d&limit=%d", offset, limit))
	if err != nil {
		return nil, fmt.Errorf("fleet: get triage (request %s): %w", reqID, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("get triage (request "+reqID+")", resp)
	}
	var rr triage.RankingReply
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("fleet: get triage (request %s): %w", reqID, err)
	}
	return &rr, nil
}

// TriageCluster fetches one cluster's detail (GET /v1/triage/{cluster}).
func (c *Client) TriageCluster(ctx context.Context, id string) (*triage.ClusterDetail, error) {
	resp, reqID, err := c.get(ctx, "/v1/triage/"+url.PathEscape(id))
	if err != nil {
		return nil, fmt.Errorf("fleet: get triage cluster (request %s): %w", reqID, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("get triage cluster (request "+reqID+")", resp)
	}
	var d triage.ClusterDetail
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, fmt.Errorf("fleet: get triage cluster (request %s): %w", reqID, err)
	}
	return &d, nil
}

// Deltas polls the server's evidence journal: everything absorbed after
// journal sequence number since, merged into one snapshot. This is the
// feed cluster coordinators (internal/cluster) mirror partitions with;
// ordinary installations never need it.
func (c *Client) Deltas(ctx context.Context, since uint64) (*SnapshotDelta, error) {
	resp, reqID, err := c.get(ctx, fmt.Sprintf("/v1/deltas?since=%d", since))
	if err != nil {
		return nil, fmt.Errorf("fleet: get deltas (request %s): %w", reqID, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("get deltas (request "+reqID+")", resp)
	}
	var d SnapshotDelta
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("fleet: decode deltas (request %s): %w", reqID, err)
	}
	return &d, nil
}

// EvictKeys drains a key set from the server (POST /v1/evict): the keys'
// evidence is atomically removed and returned; counters additionally
// drains the node's run totals (for a node leaving the cluster). token
// is the caller's idempotency handle — re-evicting with the same token
// returns the original drain's result (Cached set) even if the store has
// since changed. This is the partition half of a cluster rebalance;
// ordinary installations never need it.
func (c *Client) EvictKeys(ctx context.Context, token string, keys []site.ID, counters bool) (*EvictReply, error) {
	var reply EvictReply
	if err := c.postJSON(ctx, "/v1/evict", EvictRequest{Token: token, Keys: keys, Counters: counters}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// AnnounceRing raises the server's required cluster membership version
// (POST /v1/ring); versioned uploads split under an older ring are
// rejected from then on. The requirement never regresses — the reply
// carries the version now in force.
func (c *Client) AnnounceRing(ctx context.Context, version uint64) (*RingReply, error) {
	var reply RingReply
	if err := c.postJSON(ctx, "/v1/ring", RingUpdate{Version: version}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Membership fetches a coordinator's current cluster topology (GET
// /v1/membership): the membership version and partition base URLs a
// router should split uploads across.
func (c *Client) Membership(ctx context.Context) (*MembershipReply, error) {
	resp, reqID, err := c.get(ctx, "/v1/membership")
	if err != nil {
		return nil, fmt.Errorf("fleet: get membership (request %s): %w", reqID, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("get membership (request "+reqID+")", resp)
	}
	var m MembershipReply
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("fleet: get membership (request %s): %w", reqID, err)
	}
	return &m, nil
}

// get issues a read request for path (e.g. "/v1/patches?since=3"),
// stamping it with a fresh X-Request-ID — the read-path half of the
// correlation contract: uploads have carried one since PR 6, but a
// failed *fetch* could not be grepped across tiers. The ID is logged
// here and returned so callers thread it into their errors.
func (c *Client) get(ctx context.Context, path string) (resp *http.Response, reqID string, err error) {
	reqID = telemetry.NewRequestID()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, reqID, err
	}
	req.Header.Set(RequestIDHeader, reqID)
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err = c.hc.Do(req)
	if err != nil {
		c.logger.Warn("fetch failed", "path", path, "requestId", reqID, "error", err)
		return nil, reqID, err
	}
	c.logger.Debug("fetch", "path", path, "status", resp.StatusCode, "requestId", reqID)
	return resp, reqID, nil
}

// StaleRingError reports a 409 stale-ring rejection: the upload was
// split under an older cluster membership than the partition requires.
// The evidence was not absorbed; the caller must refresh membership
// (coordinator GET /v1/membership, cluster.Ring.SetMembership) and
// re-split its delta before retrying. Required is the partition's
// current membership version.
type StaleRingError struct {
	Required uint64
}

func (e *StaleRingError) Error() string {
	return fmt.Sprintf("fleet: upload split under a stale ring (partition requires membership version %d)", e.Required)
}

// Rate-limit retry bounds: a 429 with Retry-After is obeyed up to
// maxPushAttempts deliveries, each wait clamped to maxRetryAfterWait so
// a hostile or misconfigured server cannot park the client forever. The
// waits are context-aware — cancellation aborts immediately.
const (
	maxPushAttempts   = 4
	maxRetryAfterWait = 10 * time.Second
)

// postJSON encodes body as JSON — gzip-compressed unless
// DisableCompression — and posts it to path. Rate-limited requests
// (429, which the server sends with Retry-After and *without* having
// processed the body) are retried after the advertised delay, bounded
// by maxPushAttempts; a 409 stale-ring rejection surfaces as a
// *StaleRingError.
func (c *Client) postJSON(ctx context.Context, path string, body, reply any) error {
	return c.post(ctx, path, "", body, reply)
}

// post is postJSON carrying the batch's identity for log correlation.
// Every delivery is stamped with one X-Request-ID, held constant across
// 429 retries of the same payload so all server-side log lines for this
// upload share a single correlation handle.
func (c *Client) post(ctx context.Context, path, batchID string, body, reply any) error {
	var buf bytes.Buffer
	if c.DisableCompression {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return fmt.Errorf("fleet: encode %s: %w", path, err)
		}
	} else {
		zw := gzip.NewWriter(&buf)
		if err := json.NewEncoder(zw).Encode(body); err != nil {
			return fmt.Errorf("fleet: encode %s: %w", path, err)
		}
		if err := zw.Close(); err != nil {
			return fmt.Errorf("fleet: compress %s: %w", path, err)
		}
	}
	payload := buf.Bytes()
	reqID := telemetry.NewRequestID()
	if path == "/v1/observations" && c.m != nil {
		c.m.pushes.Inc()
		defer c.m.pushSec.ObserveSince(time.Now())
	}
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("fleet: post %s: %w", path, err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(RequestIDHeader, reqID)
		if c.token != "" {
			req.Header.Set("Authorization", "Bearer "+c.token)
		}
		if !c.DisableCompression {
			req.Header.Set("Content-Encoding", "gzip")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return fmt.Errorf("fleet: post %s: %w", path, err)
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < maxPushAttempts {
			wait := retryAfter(resp)
			drain(resp)
			c.logger.Warn("push rate-limited; backing off",
				"path", path,
				"attempt", attempt,
				"retryAfterSec", wait.Seconds(),
				"batchId", batchID,
				"requestId", reqID)
			if c.m != nil {
				c.m.retries.Inc()
				c.m.backoffSec.Add(wait.Seconds())
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("fleet: post %s: %w", path, ctx.Err())
			case <-time.After(wait):
			}
			continue
		}
		defer drain(resp)
		if resp.StatusCode == http.StatusConflict {
			var ir IngestReply
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			if json.Unmarshal(raw, &ir) == nil && ir.StaleRing {
				return &StaleRingError{Required: ir.RingVersion}
			}
			return fmt.Errorf("fleet: post %s: %s: %s", path, resp.Status, strings.TrimSpace(string(raw)))
		}
		if resp.StatusCode != http.StatusOK {
			return httpError("post "+path, resp)
		}
		if reply != nil {
			if err := json.NewDecoder(resp.Body).Decode(reply); err != nil {
				return fmt.Errorf("fleet: decode %s reply: %w", path, err)
			}
		}
		return nil
	}
}

// retryAfter parses a 429's Retry-After seconds, defaulting to one
// second and clamping to maxRetryAfterWait.
func retryAfter(resp *http.Response) time.Duration {
	wait := time.Second
	if v, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); err == nil && v > 0 {
		wait = time.Duration(v) * time.Second
	}
	if wait > maxRetryAfterWait {
		wait = maxRetryAfterWait
	}
	return wait
}

func httpError(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("fleet: %s: %s: %s", op, resp.Status, strings.TrimSpace(string(msg)))
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
