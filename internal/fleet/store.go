package fleet

import (
	"sync"
	"sync/atomic"

	"exterminator/internal/cumulative"
	"exterminator/internal/site"
)

// Store is the server-side evidence pool: cumulative-mode histories
// sharded by call site across mutex-striped partitions. Concurrent
// ingests touching different shards never contend; ingests touching the
// same shard serialize on that shard's lock only.
//
// Overflow evidence stripes by allocation site; dangling evidence, pad
// hints and deferral hints stripe by the (allocation-side) site of their
// key, so every key deterministically lives in exactly one shard and
// Combined can union the shards without deduplication.
type Store struct {
	cfg    cumulative.Config
	shards []storeShard

	runs        atomic.Int64
	failedRuns  atomic.Int64
	corruptRuns atomic.Int64
	batches     atomic.Int64

	// identifyWorkers is the correction pool width: shards scored
	// concurrently per Identify pass. 1 = serial (the default).
	identifyWorkers atomic.Int64

	clientMu sync.Mutex
	clients  map[string]bool
}

type storeShard struct {
	mu   sync.Mutex
	hist *cumulative.History
}

// DefaultShards is the default stripe count. Call-site hashes are well
// distributed (DJB2), so modest striping already removes almost all
// contention.
const DefaultShards = 16

// NewStore returns an empty store with n shards (n <= 0 means
// DefaultShards).
func NewStore(n int, cfg cumulative.Config) *Store {
	if n <= 0 {
		n = DefaultShards
	}
	st := &Store{
		cfg:     cfg,
		shards:  make([]storeShard, n),
		clients: make(map[string]bool),
	}
	for i := range st.shards {
		st.shards[i].hist = cumulative.NewHistory(cfg)
	}
	return st
}

// shardIndex maps a site ID to its shard. Fibonacci mixing spreads
// consecutive synthetic site IDs (tests use 0x100, 0x101, ...) as well as
// real DJB2 hashes.
func (st *Store) shardIndex(id site.ID) int {
	return int((uint32(id) * 2654435761) % uint32(len(st.shards)))
}

// NumShards returns the stripe count.
func (st *Store) NumShards() int { return len(st.shards) }

// ShardIndex exposes the shard mapping for callers that pre-split work
// along the store's own stripes (the v2 ingest path decodes uploads
// directly into per-shard parts using this function, so the decoded
// split and the store's split are the same split by construction).
func (st *Store) ShardIndex(id site.ID) int { return st.shardIndex(id) }

// AbsorbSnapshot folds one uploaded snapshot into the store. The snapshot
// is split into per-shard sub-snapshots; each shard is locked once. Run
// counters are tracked globally, not per shard.
func (st *Store) AbsorbSnapshot(s *cumulative.Snapshot) {
	if s == nil {
		return
	}
	st.runs.Add(int64(s.Runs))
	st.failedRuns.Add(int64(s.FailedRuns))
	st.corruptRuns.Add(int64(s.CorruptRuns))
	st.batches.Add(1)

	parts := make([]*cumulative.Snapshot, len(st.shards))
	part := func(i int) *cumulative.Snapshot {
		if parts[i] == nil {
			parts[i] = &cumulative.Snapshot{C: s.C, P: s.P}
		}
		return parts[i]
	}
	for _, id := range s.Sites {
		p := part(st.shardIndex(id))
		p.Sites = append(p.Sites, id)
	}
	for _, so := range s.Overflow {
		p := part(st.shardIndex(so.Site))
		p.Overflow = append(p.Overflow, so)
	}
	for _, po := range s.Dangling {
		p := part(st.shardIndex(po.Alloc))
		p.Dangling = append(p.Dangling, po)
	}
	for _, h := range s.PadHints {
		p := part(st.shardIndex(h.Site))
		p.PadHints = append(p.PadHints, h)
	}
	for _, h := range s.DeferralHints {
		p := part(st.shardIndex(h.Alloc))
		p.DeferralHints = append(p.DeferralHints, h)
	}
	for i, p := range parts {
		if p == nil {
			continue
		}
		sh := &st.shards[i]
		sh.mu.Lock()
		sh.hist.Absorb(p)
		sh.mu.Unlock()
	}
}

// AbsorbParts folds an upload that was already decoded into per-shard
// sub-snapshots (codec.DecodeBatchSharded keyed by ShardIndex) — the
// zero-copy half of the v2 ingest path: no merged snapshot is ever
// materialized and no re-split happens under load. Run counters may
// appear on any part (the codec puts them on the first non-nil one);
// they are summed into the global atomics and stripped before the shard
// absorb, so shard histories end up byte-identical to the
// AbsorbSnapshot path.
func (st *Store) AbsorbParts(parts []*cumulative.Snapshot) {
	for _, p := range parts {
		if p == nil {
			continue
		}
		st.runs.Add(int64(p.Runs))
		st.failedRuns.Add(int64(p.FailedRuns))
		st.corruptRuns.Add(int64(p.CorruptRuns))
	}
	st.batches.Add(1)
	for i, p := range parts {
		if p == nil {
			continue
		}
		q := *p
		q.Runs, q.FailedRuns, q.CorruptRuns = 0, 0, 0
		sh := &st.shards[i]
		sh.mu.Lock()
		sh.hist.Absorb(&q)
		sh.mu.Unlock()
	}
}

// Extract atomically removes and returns the canonical evidence for a
// key set — the store-level half of a rebalance drain (Server.Evict
// holds the delta lock, making the extraction exclusive against ingest).
// Each key lives in exactly one shard, so the per-shard extractions
// union without overlap; run counters are not keyed and stay put.
func (st *Store) Extract(keys []site.ID) *cumulative.Snapshot {
	perShard := make(map[int][]site.ID)
	for _, k := range keys {
		i := st.shardIndex(k)
		perShard[i] = append(perShard[i], k)
	}
	tmp := cumulative.NewHistory(st.cfg)
	for i, ks := range perShard {
		sh := &st.shards[i]
		sh.mu.Lock()
		snap := sh.hist.Extract(ks)
		sh.mu.Unlock()
		tmp.Absorb(snap)
	}
	return tmp.Snapshot()
}

// AbsorbHistory folds a whole history into the store (snapshot restore and
// in-process aggregation paths).
func (st *Store) AbsorbHistory(h *cumulative.History) {
	if h == nil {
		return
	}
	st.AbsorbSnapshot(h.Snapshot())
}

// maxClients bounds the distinct-installation statistic: IDs are
// client-chosen, so an unbounded set would let one misbehaving client
// grow server memory without limit.
const maxClients = 1 << 16

// NoteClient records an installation identifier for statistics. Beyond
// maxClients distinct IDs, new ones are counted as existing (the
// statistic saturates rather than the map growing unboundedly).
func (st *Store) NoteClient(id string) {
	if id == "" {
		return
	}
	st.clientMu.Lock()
	if len(st.clients) < maxClients || st.clients[id] {
		st.clients[id] = true
	}
	st.clientMu.Unlock()
}

// Clients returns the number of distinct installation identifiers seen.
func (st *Store) Clients() int {
	st.clientMu.Lock()
	defer st.clientMu.Unlock()
	return len(st.clients)
}

// Combined merges every shard into one history carrying the global run
// counters. Shard snapshots are taken under the shard lock one at a time,
// so Combined never blocks the whole store; the result is canonically
// ordered (see cumulative.Snapshot), making Identify independent of the
// order in which evidence arrived.
func (st *Store) Combined() *cumulative.History {
	hist := cumulative.NewHistory(st.cfg)
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		snap := sh.hist.Snapshot()
		sh.mu.Unlock()
		hist.Absorb(snap)
	}
	hist.Runs = int(st.runs.Load())
	hist.FailedRuns = int(st.failedRuns.Load())
	hist.CorruptRuns = int(st.corruptRuns.Load())
	return hist
}

// Identify runs the Bayesian hypothesis test shard by shard without ever
// materializing a merged history: each shard holds a disjoint slice of
// the logical evidence pool (keys stripe deterministically), so testing
// its keys against the *global* site count N decides exactly as an
// unsharded store would. Passes are incremental — each shard's History
// caches Bayes factors and rescores only keys whose evidence changed
// since the last pass — which is what keeps correction O(dirty sites),
// not O(all sites), as the fleet grows.
func (st *Store) Identify() *cumulative.Findings {
	n := st.Sites()
	f := &cumulative.Findings{}
	if n == 0 {
		return f
	}
	workers := int(st.identifyWorkers.Load())
	if workers <= 1 || len(st.shards) == 1 {
		for i := range st.shards {
			sh := &st.shards[i]
			sh.mu.Lock()
			sf := sh.hist.IdentifyWithSites(n)
			sh.mu.Unlock()
			f.Overflows = append(f.Overflows, sf.Overflows...)
			f.Danglings = append(f.Danglings, sf.Danglings...)
		}
		return f
	}
	// Elastic pool: score up to `workers` shards concurrently, each
	// goroutine holding exactly one shard lock at a time (no nesting, so
	// no ordering constraint between shard locks). Per-shard results land
	// in indexed slots and merge in shard order, keeping findings
	// deterministic regardless of which shard finishes first.
	if workers > len(st.shards) {
		workers = len(st.shards)
	}
	results := make([]*cumulative.Findings, len(st.shards))
	next := atomic.Int64{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(st.shards) {
					return
				}
				sh := &st.shards[i]
				sh.mu.Lock()
				results[i] = sh.hist.IdentifyWithSites(n)
				sh.mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, sf := range results {
		f.Overflows = append(f.Overflows, sf.Overflows...)
		f.Danglings = append(f.Danglings, sf.Danglings...)
	}
	return f
}

// SetIdentifyWorkers sets the correction pool width: how many shards an
// Identify pass scores concurrently. n <= 1 keeps passes serial; n is
// clamped to the shard count at use. Safe to change at runtime.
func (st *Store) SetIdentifyWorkers(n int) {
	if n < 1 {
		n = 1
	}
	st.identifyWorkers.Store(int64(n))
}

// TriageCandidates collects every shard's ranked per-site candidates
// for a triage pass. Keys stripe deterministically across shards, so
// concatenation is exactly the unsharded candidate set; the triage
// engine re-sorts internally, so cross-shard order does not matter.
func (st *Store) TriageCandidates() (over, dang []cumulative.Candidate) {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		over = append(over, sh.hist.OverflowCandidates()...)
		dang = append(dang, sh.hist.DanglingCandidates()...)
		sh.mu.Unlock()
	}
	return over, dang
}

// Threshold returns the store-wide identification threshold cN−1, with
// N the global distinct-site count — the same N Identify tests against.
func (st *Store) Threshold() float64 {
	return st.cfg.C*float64(st.Sites()) - 1
}

// DirtyKeys returns the number of evidence keys (overflow sites plus
// dangling pairs) changed since the last correction pass — the work the
// next pass will do.
func (st *Store) DirtyKeys() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += sh.hist.DirtyKeys()
		sh.mu.Unlock()
	}
	return n
}

// ShardStats returns per-shard evidence counts for operator visibility
// (GET /v1/status): rebalance skew and recompute backlog show up here.
func (st *Store) ShardStats() []ShardStatus {
	out := make([]ShardStatus, len(st.shards))
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		out[i] = ShardStatus{
			Sites:        sh.hist.Sites(),
			OverflowKeys: sh.hist.OverflowKeys(),
			DanglingKeys: sh.hist.DanglingKeys(),
			DirtyKeys:    sh.hist.DirtyKeys(),
		}
		sh.mu.Unlock()
	}
	return out
}

// DrainCounters atomically zeroes the global run counters and returns
// their prior values — the final step of draining a partition that is
// leaving the cluster (counters are not keyed, so Extract cannot move
// them). Callers serialize against ingest (Server.Evict holds the delta
// lock exclusively).
func (st *Store) DrainCounters() (runs, failed, corrupt int64) {
	return st.runs.Swap(0), st.failedRuns.Swap(0), st.corruptRuns.Swap(0)
}

// Runs returns the fleet-wide run count.
func (st *Store) Runs() int64 { return st.runs.Load() }

// FailedRuns returns the fleet-wide failed-run count.
func (st *Store) FailedRuns() int64 { return st.failedRuns.Load() }

// CorruptRuns returns the fleet-wide corrupt-run count.
func (st *Store) CorruptRuns() int64 { return st.corruptRuns.Load() }

// Batches returns the number of observation batches absorbed.
func (st *Store) Batches() int64 { return st.batches.Load() }

// Sites returns the fleet-wide number of distinct allocation sites.
func (st *Store) Sites() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += sh.hist.Sites()
		sh.mu.Unlock()
	}
	return n
}
