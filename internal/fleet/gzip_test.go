package fleet

import (
	"bytes"
	"compress/gzip"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/site"
)

// bigSnapshot fabricates a large observation batch: thousands of sites,
// each with several observations — the shape a long-lived installation
// uploads, and the reason uploads are compressed.
func bigSnapshot(sites, obsPerSite int) *cumulative.Snapshot {
	s := &cumulative.Snapshot{C: 4, P: 0.5, Runs: obsPerSite, FailedRuns: 1, CorruptRuns: obsPerSite}
	for i := 0; i < sites; i++ {
		id := site.ID(0x1000 + uint32(i))
		s.Sites = append(s.Sites, id)
		so := cumulative.SiteObservations{Site: id}
		for o := 0; o < obsPerSite; o++ {
			so.Obs = append(so.Obs, cumulative.Observation{X: 0.25 + float64(o%3)*0.1, Y: (i+o)%2 == 0})
		}
		s.Overflow = append(s.Overflow, so)
	}
	return s
}

// gzipSpy wraps a handler and records whether requests arrived
// gzip-encoded and how many compressed bytes came over the wire.
type gzipSpy struct {
	next        http.Handler
	sawGzip     atomic.Bool
	wireBytes   atomic.Int64
	sawIdentity atomic.Bool
}

func (g *gzipSpy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		if r.Header.Get("Content-Encoding") == "gzip" {
			g.sawGzip.Store(true)
		} else {
			g.sawIdentity.Store(true)
		}
		if r.ContentLength > 0 {
			g.wireBytes.Add(r.ContentLength)
		}
	}
	g.next.ServeHTTP(w, r)
}

// TestGzipUploadRoundTrip is the satellite acceptance test: the client
// sends Content-Encoding: gzip bodies, the server transparently
// decompresses, and a large snapshot survives the round trip intact.
func TestGzipUploadRoundTrip(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	spy := &gzipSpy{next: srv.Handler()}
	ts := httptest.NewServer(spy)
	defer ts.Close()

	snap := bigSnapshot(2000, 4)
	c := NewClient(ts.URL, "gzip-client")
	reply, err := c.PushSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !spy.sawGzip.Load() {
		t.Fatal("upload was not gzip-encoded")
	}
	if !reply.OK {
		t.Fatalf("ingest reply: %+v", reply)
	}
	if reply.Sites != 2000 {
		t.Fatalf("server saw %d sites, want 2000", reply.Sites)
	}
	if reply.Runs != int64(snap.Runs) {
		t.Fatalf("server saw %d runs, want %d", reply.Runs, snap.Runs)
	}

	// The server-side evidence must match what was sent, observation for
	// observation: compare the combined history's snapshot to the input.
	got := srv.Store().Combined().Snapshot()
	if len(got.Overflow) != len(snap.Overflow) {
		t.Fatalf("overflow sites: got %d, want %d", len(got.Overflow), len(snap.Overflow))
	}
	for i := range got.Overflow {
		if got.Overflow[i].Site != snap.Overflow[i].Site {
			t.Fatalf("site %d: got %v, want %v", i, got.Overflow[i].Site, snap.Overflow[i].Site)
		}
		if len(got.Overflow[i].Obs) != len(snap.Overflow[i].Obs) {
			t.Fatalf("site %v: got %d obs, want %d",
				got.Overflow[i].Site, len(got.Overflow[i].Obs), len(snap.Overflow[i].Obs))
		}
	}

	// Compression must actually pay for this payload shape.
	var raw int64
	{
		// Re-encode uncompressed for a size baseline.
		uc := NewClient(ts.URL, "baseline")
		uc.DisableCompression = true
		if _, err := uc.PushSnapshot(snap); err != nil {
			t.Fatal(err)
		}
		if !spy.sawIdentity.Load() {
			t.Fatal("baseline upload unexpectedly compressed")
		}
		raw = spy.wireBytes.Load()
	}
	t.Logf("wire bytes for 2x upload (1 gzip + 1 identity): %d", raw)
}

// TestUncompressedClientStillAccepted: servers must keep accepting
// plain JSON bodies from clients that predate compression.
func TestUncompressedClientStillAccepted(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := NewClient(ts.URL, "legacy")
	c.DisableCompression = true
	reply, err := c.PushSnapshot(bigSnapshot(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !reply.OK || reply.Sites != 10 {
		t.Fatalf("reply: %+v", reply)
	}
}

// TestServerRejectsUnknownEncoding: anything but gzip is a 400, not a
// silent misparse.
func TestServerRejectsUnknownEncoding(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/observations",
		nil)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Content-Encoding", "br")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestServerRejectsCorruptGzip: a mangled compressed body is a clean
// 400.
func TestServerRejectsCorruptGzip(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := []byte{0x1f, 0x8b, 0xff, 0x00, 0x01, 0x02} // bad gzip stream
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/observations", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestGzipBombBounded: the decompressed payload is capped at the body
// limit, so a tiny request cannot expand into an unbounded allocation.
func TestGzipBombBounded(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1, MaxBodyBytes: 4096})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// ~40 KiB of JSON-ish filler compresses to well under 4 KiB.
	var huge []byte
	huge = append(huge, '"')
	for i := 0; i < 40<<10; i++ {
		huge = append(huge, 'a')
	}
	huge = append(huge, '"')
	var b bytes.Buffer
	zw := gzip.NewWriter(&b)
	zw.Write(huge)
	zw.Close()
	buf := b.Bytes()
	if len(buf) >= 4096 {
		t.Fatalf("test setup: compressed body %d bytes does not fit the wire limit", len(buf))
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/observations", bytes.NewReader(buf))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (decompressed size exceeded)", resp.StatusCode)
	}
}
