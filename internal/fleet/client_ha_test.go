package fleet

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exterminator/internal/patch"
	"exterminator/internal/site"
	"exterminator/internal/telemetry"
)

// patchOrigin is a minimal /v1/patches origin for client-side tests:
// it serves one patch set stamped with a settable epoch/version, honors
// If-None-Match, and records every since= cursor and validator it saw.
type patchOrigin struct {
	epoch   atomic.Uint64
	version atomic.Uint64

	mu     sync.Mutex
	set    *patch.Set
	sinces []string
	inms   []string
}

func newPatchOrigin(epoch, version uint64) *patchOrigin {
	ps := patch.New()
	ps.AddPad(site.ID(0xE7A6), 24)
	o := &patchOrigin{set: ps}
	o.epoch.Store(epoch)
	o.version.Store(version)
	return o
}

func (o *patchOrigin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	o.mu.Lock()
	o.sinces = append(o.sinces, r.URL.Query().Get("since"))
	o.inms = append(o.inms, r.Header.Get("If-None-Match"))
	set := o.set.Clone()
	o.mu.Unlock()
	epoch, version := o.epoch.Load(), o.version.Load()
	if MatchETag(w, r, PatchETag(epoch, version)) {
		return
	}
	wire := ToWire(set, version)
	wire.Epoch = epoch
	WriteJSON(w, wire)
}

func (o *patchOrigin) seen() (sinces, inms []string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.sinces...), append([]string(nil), o.inms...)
}

// TestClientConditionalPatchPolling pins the client half of the ETag
// handshake: after a successful poll the client revalidates with
// If-None-Match, treats the 304 as "no change" (empty delta, cursor
// kept), and counts the saved body.
func TestClientConditionalPatchPolling(t *testing.T) {
	origin := newPatchOrigin(7, 3)
	ts := httptest.NewServer(origin)
	defer ts.Close()

	c := NewClient(ts.URL, "etag-client")
	reg := telemetry.NewRegistry()
	c.SetMetrics(reg)

	first, v, err := c.Patches(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 || first.Len() == 0 {
		t.Fatalf("first poll = (%s, v%d), want the origin set at v3", first, v)
	}

	delta, v2, err := c.Patches(v)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Len() != 0 || v2 != v {
		t.Fatalf("revalidation poll = (%s, v%d), want empty delta at v%d", delta, v2, v)
	}
	if got := c.m.notMod.Value(); got != 1 {
		t.Fatalf("fleet_client_patch_not_modified_total = %v, want 1", got)
	}
	_, inms := origin.seen()
	if len(inms) != 2 || inms[0] != "" || inms[1] != PatchETag(7, 3) {
		t.Fatalf("If-None-Match sequence = %q, want none then %q", inms, PatchETag(7, 3))
	}
}

// TestClientRotatesToFallbackOnTransportError pins base rotation: with
// the active base unreachable, a poll lands on the fallback without an
// error surfacing, the rotation is counted, and the fallback stays
// sticky for the next request.
func TestClientRotatesToFallbackOnTransportError(t *testing.T) {
	origin := newPatchOrigin(4, 1)
	ts := httptest.NewServer(origin)
	defer ts.Close()

	c := NewClient("http://127.0.0.1:1", "failover-client")
	c.SetFallbacks(ts.URL)
	reg := telemetry.NewRegistry()
	c.SetMetrics(reg)

	if _, _, err := c.Patches(0); err != nil {
		t.Fatalf("poll with dead active base: %v", err)
	}
	if got := c.activeBase(); got != ts.URL {
		t.Fatalf("active base after failover = %q, want %q", got, ts.URL)
	}
	if got := c.m.failovers.Value(); got < 1 {
		t.Fatalf("fleet_client_failovers_total = %v, want >= 1", got)
	}
	if _, _, err := c.Patches(0); err != nil {
		t.Fatalf("sticky fallback poll: %v", err)
	}
	if sinces, _ := origin.seen(); len(sinces) != 2 {
		t.Fatalf("fallback served %d requests, want 2 (sticky)", len(sinces))
	}
}

// TestClientRotatesOn503 pins the standby-gate path: a base answering
// 503 (a coordinator standing by) is rotated past, not retried into.
func TestClientRotatesOn503(t *testing.T) {
	var gated atomic.Int64
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gated.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "standing by (not primary)", http.StatusServiceUnavailable)
	}))
	defer gate.Close()
	origin := newPatchOrigin(4, 1)
	ts := httptest.NewServer(origin)
	defer ts.Close()

	c := NewClient(gate.URL, "gate-client")
	c.SetFallbacks(ts.URL)

	ps, _, err := c.Patches(0)
	if err != nil {
		t.Fatalf("poll with gated active base: %v", err)
	}
	if ps.Len() == 0 {
		t.Fatal("poll returned empty set, want the fallback's patches")
	}
	if got := gated.Load(); got != 1 {
		t.Fatalf("gated base hit %d times, want 1 (no retry into a standby)", got)
	}
}

// TestClientRejectsStalePrimary pins zombie fencing: once the client
// has seen epoch E, bases still stamping a lower epoch are rotated
// through and, with every base stale, the poll fails with
// StalePrimaryError rather than silently regressing.
func TestClientRejectsStalePrimary(t *testing.T) {
	origin := newPatchOrigin(100, 5)
	a := httptest.NewServer(origin)
	defer a.Close()
	b := httptest.NewServer(origin)
	defer b.Close()

	c := NewClient(a.URL, "fence-client")
	c.SetFallbacks(b.URL)
	if _, _, err := c.Patches(0); err != nil {
		t.Fatal(err)
	}

	origin.epoch.Store(50) // both bases are now zombies
	origin.version.Store(9)
	_, _, err := c.Patches(5)
	var stale *StalePrimaryError
	if !errors.As(err, &stale) {
		t.Fatalf("poll against all-stale bases = %v, want StalePrimaryError", err)
	}
	if stale.Seen != 100 || stale.Got != 50 {
		t.Fatalf("StalePrimaryError = %+v, want Seen=100 Got=50", stale)
	}
}

// TestClientResyncsOnEpochBump pins the failover resync: a delta poll
// answered from a higher epoch (a promoted standby with restarted
// version numbering) is transparently refetched from 0.
func TestClientResyncsOnEpochBump(t *testing.T) {
	origin := newPatchOrigin(1, 5)
	ts := httptest.NewServer(origin)
	defer ts.Close()

	c := NewClient(ts.URL, "resync-client")
	if _, _, err := c.Patches(0); err != nil {
		t.Fatal(err)
	}

	origin.epoch.Store(2) // new incarnation, version numbering restarted
	origin.version.Store(2)
	ps, v, err := c.Patches(5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || !ps.Equal(origin.set) {
		t.Fatalf("post-bump poll = (%s, v%d), want the full set at v2", ps, v)
	}
	sinces, _ := origin.seen()
	want := []string{"0", "5", "0"}
	if len(sinces) != len(want) {
		t.Fatalf("since cursors = %q, want %q", sinces, want)
	}
	for i := range want {
		if sinces[i] != want[i] {
			t.Fatalf("since cursors = %q, want %q", sinces, want)
		}
	}
}

// TestJitterIntervalBounds pins the poll-jitter distribution: every
// draw lands in [0.9d, 1.1d), and both halves of the window are hit —
// the de-synchronization the jitter exists to provide.
func TestJitterIntervalBounds(t *testing.T) {
	const d = time.Second
	lo, hi := time.Duration(float64(d)*(1-JitterFraction)), time.Duration(float64(d)*(1+JitterFraction))
	var below, above int
	for i := 0; i < 4000; i++ {
		j := JitterInterval(d)
		if j < lo || j >= hi {
			t.Fatalf("JitterInterval(%v) = %v, outside [%v, %v)", d, j, lo, hi)
		}
		if j < d {
			below++
		} else {
			above++
		}
	}
	if below == 0 || above == 0 {
		t.Fatalf("jitter never crossed the midpoint: %d below, %d above", below, above)
	}
	if JitterInterval(0) != 0 {
		t.Fatalf("JitterInterval(0) = %v, want 0", JitterInterval(0))
	}
}
