package fleet

import (
	"sync"

	"exterminator/internal/patch"
)

// PatchLog is the versioned patch store behind GET /v1/patches. Every
// correction pass folds its freshly derived patch.Set into the log; when
// the fold actually improves the cumulative set (patches compose by
// maxima, so improvement means a new site or a larger pad/deferral), the
// version increments and the improvement is retained as a delta. Clients
// poll with the last version they saw and receive only the entries added
// since — usually nothing.
type PatchLog struct {
	mu      sync.RWMutex
	version uint64
	full    *patch.Set
	// deltas[i] holds exactly the entries version base+i+1 introduced.
	deltas []*patch.Set
	// base is the version the oldest retained delta builds on. Polls with
	// since < base are answered with the full set (resync).
	base uint64
}

// maxDeltas bounds retained history; beyond it old deltas compact away and
// stale pollers resync from the full set.
const maxDeltas = 256

// NewPatchLog returns an empty log at version 0.
func NewPatchLog() *PatchLog {
	return &PatchLog{full: patch.New()}
}

// Fold merges ps into the log. It returns the (possibly new) version and
// whether the log changed.
func (l *PatchLog) Fold(ps *patch.Set) (uint64, bool) {
	if ps == nil {
		return l.Version(), false
	}
	l.mu.Lock()
	defer l.mu.Unlock()

	delta := ps.Diff(l.full)
	if delta.Len() == 0 {
		return l.version, false
	}
	l.full.Merge(delta)
	l.version++
	l.deltas = append(l.deltas, delta)
	if len(l.deltas) > maxDeltas {
		drop := len(l.deltas) - maxDeltas/2
		l.deltas = append([]*patch.Set(nil), l.deltas[drop:]...)
		l.base += uint64(drop)
	}
	return l.version, true
}

// Since returns the union of entries added after version since, plus the
// current version. A since at or beyond the current version yields an
// empty set; a since older than the retained delta window (or from a
// previous server incarnation, i.e. ahead of the current version) yields
// the full set — merging it is idempotent, so over-answering is safe.
func (l *PatchLog) Since(since uint64) (*patch.Set, uint64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if since >= l.version {
		if since > l.version {
			// The client knows a version this incarnation never issued
			// (server restarted from a snapshot): resync.
			return l.full.Clone(), l.version
		}
		return patch.New(), l.version
	}
	if since < l.base {
		return l.full.Clone(), l.version
	}
	out := patch.New()
	for i := since - l.base; i < uint64(len(l.deltas)); i++ {
		out.Merge(l.deltas[i])
	}
	return out, l.version
}

// Full returns a copy of the cumulative set and its version.
func (l *PatchLog) Full() (*patch.Set, uint64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.full.Clone(), l.version
}

// Version returns the current version.
func (l *PatchLog) Version() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.version
}

// Len returns the number of entries in the cumulative set.
func (l *PatchLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.full.Len()
}
