package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"exterminator/internal/cumulative"
	"exterminator/internal/engine"
	"exterminator/internal/site"
)

func evidenceBatch(id site.ID) *cumulative.Snapshot {
	return &cumulative.Snapshot{C: 4, P: 0.5, Runs: 2, CorruptRuns: 1,
		Sites: []site.ID{id},
		Overflow: []cumulative.SiteObservations{
			{Site: id, Obs: []cumulative.Observation{{X: 0.2, Y: true}}},
		},
		PadHints: []cumulative.PadHint{{Site: id, Pad: 8}},
	}
}

func TestIngestTokenAuth(t *testing.T) {
	srv := NewServer(ServerOptions{Token: "sekrit", CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// No token: writes rejected, reads still open.
	anon := NewClient(ts.URL, "anon")
	if _, err := anon.PushSnapshot(evidenceBatch(0x1)); err == nil {
		t.Fatal("unauthenticated push accepted")
	}
	if _, _, err := anon.Patches(0); err != nil {
		t.Fatalf("unauthenticated patch poll rejected: %v", err)
	}

	// Wrong token.
	wrong := NewClient(ts.URL, "wrong")
	wrong.SetToken("not-it")
	if _, err := wrong.PushSnapshot(evidenceBatch(0x1)); err == nil {
		t.Fatal("wrong token accepted")
	}

	// Right token.
	ok := NewClient(ts.URL, "ok")
	ok.SetToken("sekrit")
	if _, err := ok.PushSnapshot(evidenceBatch(0x1)); err != nil {
		t.Fatalf("authenticated push rejected: %v", err)
	}
	if srv.Store().Runs() != 2 {
		t.Fatalf("store runs = %d, want 2", srv.Store().Runs())
	}
}

func TestIngestRateLimit(t *testing.T) {
	srv := NewServer(ServerOptions{RatePerSec: 1, RateBurst: 2, CorrectEvery: -1})
	handler := srv.Handler()

	post := func() *httptest.ResponseRecorder {
		body := `{"client":"rl","snapshot":{"c":4,"p":0.5,"runs":1}}`
		req := httptest.NewRequest(http.MethodPost, "/v1/observations", strings.NewReader(body))
		req.RemoteAddr = "10.0.0.9:4242"
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		return rec
	}

	if rec := post(); rec.Code != http.StatusOK {
		t.Fatalf("first request: %d %s", rec.Code, rec.Body)
	}
	if rec := post(); rec.Code != http.StatusOK {
		t.Fatalf("second request (burst): %d %s", rec.Code, rec.Body)
	}
	rec := post()
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("third request = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// A different client is not throttled by the first one's bucket.
	req := httptest.NewRequest(http.MethodPost, "/v1/observations", strings.NewReader(`{"client":"other","snapshot":{"c":4,"p":0.5,"runs":1}}`))
	req.RemoteAddr = "10.0.0.10:4242"
	req.Header.Set("Content-Type", "application/json")
	other := httptest.NewRecorder()
	handler.ServeHTTP(other, req)
	if other.Code != http.StatusOK {
		t.Fatalf("independent client throttled: %d", other.Code)
	}
}

func TestRateLimiterRefills(t *testing.T) {
	l := newRateLimiter(10, 1)
	now := time.Unix(100, 0)
	if ok, _ := l.allow("h", now); !ok {
		t.Fatal("first token denied")
	}
	ok, wait := l.allow("h", now)
	if ok {
		t.Fatal("empty bucket allowed")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait = %v", wait)
	}
	if ok, _ := l.allow("h", now.Add(200*time.Millisecond)); !ok {
		t.Fatal("bucket did not refill")
	}
}

func TestDeltasEndpoint(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, "d")
	ctx := context.Background()

	// Empty server: empty delta at seq 0.
	d, err := c.Deltas(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Seq != 0 || d.Full || d.Snapshot != nil {
		t.Fatalf("empty server delta: %+v", d)
	}

	if _, err := c.PushSnapshot(evidenceBatch(0x10)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PushSnapshot(evidenceBatch(0x20)); err != nil {
		t.Fatal(err)
	}

	// Delta from 0 carries both batches.
	d, err = c.Deltas(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Seq != 2 || d.Full || d.Snapshot == nil {
		t.Fatalf("delta since 0: %+v", d)
	}
	if d.Snapshot.Runs != 4 || len(d.Snapshot.Overflow) != 2 {
		t.Fatalf("delta content: runs=%d overflow=%d", d.Snapshot.Runs, len(d.Snapshot.Overflow))
	}

	// Caught-up cursor: empty delta.
	d, err = c.Deltas(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Seq != 2 || d.Snapshot != nil {
		t.Fatalf("caught-up delta: %+v", d)
	}

	// Cursor from another incarnation (ahead of seq): full resync.
	d, err = c.Deltas(ctx, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Full || d.Seq != 2 || d.Snapshot == nil || d.Snapshot.Runs != 4 {
		t.Fatalf("stale-cursor delta: %+v", d)
	}
}

func TestDeltasJournalWindowFallsBackToFull(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1, JournalLen: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, "w")
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		if _, err := c.PushSnapshot(evidenceBatch(site.ID(0x100 + uint32(i)))); err != nil {
			t.Fatal(err)
		}
	}
	d, err := c.Deltas(ctx, 1) // long fallen off the 4-batch window
	if err != nil {
		t.Fatal(err)
	}
	if !d.Full || d.Seq != 10 {
		t.Fatalf("want full resync at seq 10, got %+v", d)
	}
	if d.Snapshot.Runs != 20 {
		t.Fatalf("full resync runs = %d, want 20", d.Snapshot.Runs)
	}
}

// TestDeltasSeeSnapshotRestoredEvidence: evidence restored from a
// snapshot never went through the journal, so delta polls — including
// since=0 from a brand-new poller — must be answered with a Full store
// snapshot, not a journal-only delta that silently misses it.
func TestDeltasSeeSnapshotRestoredEvidence(t *testing.T) {
	old := NewServer(ServerOptions{CorrectEvery: -1})
	oldTS := httptest.NewServer(old.Handler())
	c := NewClient(oldTS.URL, "r")
	ctx := context.Background()
	if _, err := c.PushSnapshot(evidenceBatch(0x77)); err != nil {
		t.Fatal(err)
	}
	snap := t.TempDir() + "/restore.snap"
	if err := old.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	oldTS.Close()

	srv := NewServer(ServerOptions{CorrectEvery: -1})
	if err := srv.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c = NewClient(ts.URL, "r2")

	// Post-restore batches land in the new journal.
	if _, err := c.PushSnapshot(evidenceBatch(0x78)); err != nil {
		t.Fatal(err)
	}

	d, err := c.Deltas(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Full {
		t.Fatalf("since=0 after a restore must be a full resync, got %+v", d)
	}
	if d.Snapshot.Runs != 4 {
		t.Fatalf("full resync runs = %d, want 4 (restored 2 + new 2)", d.Snapshot.Runs)
	}

	// The returned cursor delta-polls cleanly from here on.
	if _, err := c.PushSnapshot(evidenceBatch(0x79)); err != nil {
		t.Fatal(err)
	}
	d2, err := c.Deltas(ctx, d.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Full || d2.Snapshot == nil || d2.Snapshot.Runs != 2 {
		t.Fatalf("incremental poll after restore resync: %+v", d2)
	}
}

func TestStatusReportsDirtyAndShardCounts(t *testing.T) {
	srv := NewServer(ServerOptions{Shards: 4, CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, "s")

	for i := 0; i < 8; i++ {
		if _, err := c.PushSnapshot(evidenceBatch(site.ID(0x900 + uint32(i)*17))); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.DirtyKeys == 0 {
		t.Fatal("status shows no dirty keys after ingest")
	}
	if len(st.Shards) != 4 {
		t.Fatalf("status shards = %d, want 4", len(st.Shards))
	}
	sites, dirty := 0, 0
	for _, sh := range st.Shards {
		sites += sh.Sites
		dirty += sh.DirtyKeys
	}
	if sites != st.Sites {
		t.Fatalf("shard sites sum %d != total %d", sites, st.Sites)
	}
	if dirty != st.DirtyKeys {
		t.Fatalf("shard dirty sum %d != total %d", dirty, st.DirtyKeys)
	}
	if st.Seq != 8 {
		t.Fatalf("status seq = %d, want 8", st.Seq)
	}

	srv.Correct()
	st, err = c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.DirtyKeys != 0 {
		t.Fatalf("dirty keys after correction = %d, want 0", st.DirtyKeys)
	}
	if st.Corrections == 0 {
		t.Fatal("corrections counter not reported")
	}
}

// TestDisableCorrectionSuppressesEveryDerivationPath: a cluster
// partition (DisableCorrection) must never publish patches — not from
// inline correction, not from an explicit Correct call, and not from the
// snapshot-restore pass — because its partition-local site count would
// understate the Bayesian prior's N.
func TestDisableCorrectionSuppressesEveryDerivationPath(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: 0, DisableCorrection: true})
	ts := httptest.NewServer(srv.Handler())
	c := NewClient(ts.URL, "part")

	// Overwhelming single-site evidence: any correcting server would patch.
	snap := evidenceBatch(0x1)
	snap.Overflow[0].Obs = []cumulative.Observation{
		{X: 0.01, Y: true}, {X: 0.01, Y: true}, {X: 0.01, Y: true},
	}
	if _, err := c.PushSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if v, changed := srv.Correct(); v != 0 || changed {
		t.Fatalf("partition derived patches: version %d changed %v", v, changed)
	}
	if srv.PatchLog().Len() != 0 {
		t.Fatalf("partition patch log has %d entries", srv.PatchLog().Len())
	}

	// Restart through the snapshot path: LoadSnapshot's correction pass
	// must also be suppressed.
	snapPath := t.TempDir() + "/part.snap"
	if err := srv.SaveSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	srv2 := NewServer(ServerOptions{CorrectEvery: 0, DisableCorrection: true})
	if err := srv2.LoadSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	if srv2.PatchLog().Len() != 0 {
		t.Fatalf("restored partition derived %d patch entries", srv2.PatchLog().Len())
	}

	// Sanity: the same evidence DOES patch on a correcting server.
	ref := NewServer(ServerOptions{CorrectEvery: 0})
	ref.Store().AbsorbSnapshot(snap)
	ref.Correct()
	if ref.PatchLog().Len() == 0 {
		t.Fatal("reference server did not patch — evidence too weak for this test")
	}
}

// TestSinkUploadsDeltaOnly is the -resume-history + -fleet dedup test at
// the sink level: committing the same history twice must not double the
// server's evidence.
func TestSinkUploadsDeltaOnly(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	hist := cumulative.NewHistory(cumulative.DefaultConfig())
	hist.Absorb(evidenceBatch(0x42))

	sink := NewSink(NewClient(ts.URL, "dedup"))
	ev := &engine.Evidence{History: hist}
	if err := sink.Commit(context.Background(), ev); err != nil {
		t.Fatal(err)
	}
	if got := srv.Store().Runs(); got != 2 {
		t.Fatalf("first commit: runs = %d, want 2", got)
	}

	// Second commit with nothing new: nothing uploaded.
	if err := sink.Commit(context.Background(), ev); err != nil {
		t.Fatal(err)
	}
	if got := srv.Store().Runs(); got != 2 {
		t.Fatalf("re-commit double-counted: runs = %d, want 2", got)
	}
	if got := srv.Store().Batches(); got != 1 {
		t.Fatalf("re-commit sent a batch: %d", got)
	}

	// New evidence: only the delta goes up.
	hist.Absorb(evidenceBatch(0x43))
	if err := sink.Commit(context.Background(), ev); err != nil {
		t.Fatal(err)
	}
	if got := srv.Store().Runs(); got != 4 {
		t.Fatalf("delta commit: runs = %d, want 4", got)
	}
}
