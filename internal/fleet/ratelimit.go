package fleet

import (
	"net"
	"sync"
	"time"
)

// rateLimiter is a per-key token-bucket limiter for the ingest path: one
// hostile or misconfigured client must not be able to monopolize
// /v1/observations. Keys are remote hosts (not the client-chosen
// installation id, which an abuser would simply randomize).
type rateLimiter struct {
	rate  float64 // tokens added per second
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds limiter memory; when full, stale (fully refilled)
// buckets are swept, and as a last resort new keys share one overflow
// bucket rather than growing the map without limit.
const maxBuckets = 1 << 14

const overflowKey = "\x00overflow"

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// allow consumes one token from key's bucket. When the bucket is empty it
// returns false and how long until the next token accrues (the
// Retry-After value).
func (l *rateLimiter) allow(key string, now time.Time) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxBuckets {
			l.sweep(now)
		}
		if len(l.buckets) >= maxBuckets {
			key = overflowKey
		}
		if b = l.buckets[key]; b == nil {
			b = &bucket{tokens: l.burst, last: now}
			l.buckets[key] = b
		}
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
		return false, wait
	}
	b.tokens--
	return true, 0
}

// sweep drops buckets that have fully refilled — their owners have been
// quiet long enough that forgetting them changes nothing.
func (l *rateLimiter) sweep(now time.Time) {
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// limiterKey extracts the remote host from a RemoteAddr.
func limiterKey(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}
