package fleet

import (
	"bytes"
	"encoding/binary"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/patch"
	"exterminator/internal/site"
)

// fuzzSnapshotSeed builds a small valid XFSN container to seed the
// corpus: ring version, one evict entry, two dedup IDs, and a history
// carrying every section (sites, overflow, dangling, hints, watermark).
func fuzzSnapshotSeed(t testing.TB) []byte {
	hist := cumulative.NewHistory(cumulative.DefaultConfig())
	snap := &cumulative.Snapshot{
		Runs:  3,
		Sites: []site.ID{1, 2},
		Overflow: []cumulative.SiteObservations{
			{Site: 1, Obs: []cumulative.Observation{{X: 0.5, Y: true}}},
		},
		Dangling: []cumulative.PairObservations{
			{Alloc: 1, Free: 2, Obs: []cumulative.Observation{{X: 0.25, Y: false}}},
		},
		PadHints: []cumulative.PadHint{{Site: 1, Pad: 16}},
	}
	hist.Absorb(snap)
	st := fleetSnapState{
		hist:   hist,
		ring:   7,
		ids:    []string{"batch-a", "batch-b"},
		evicts: []evictEntry{{Token: "tok-1", Snap: snap}},
	}
	var buf bytes.Buffer
	if err := writeFleetSnapshot(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzXFSNDecode fuzzes the fleet snapshot container decoder: corrupt,
// truncated, or adversarial input (forged length prefixes, implausible
// counts) must come back as an error — never a panic, and never an
// allocation sized by an untrusted prefix rather than the bytes present.
func FuzzXFSNDecode(f *testing.F) {
	seed := fuzzSnapshotSeed(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // truncated mid-container
	f.Add(seed[:9])           // truncated inside the header
	f.Add([]byte{})
	f.Add([]byte("XTCH legacy-looking junk"))
	// Forged dedup-id length prefix: header claims far more bytes than
	// the input holds.
	forged := append([]byte{}, seed[:12]...)
	binary.LittleEndian.PutUint32(forged[8:], 0xFFFFFF)
	f.Add(forged)
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := readFleetSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must yield a usable history: re-encoding it
		// must not panic either.
		if st.hist == nil {
			t.Fatal("nil history with nil error")
		}
		var buf bytes.Buffer
		if err := st.hist.Encode(&buf); err != nil {
			t.Fatalf("re-encode of accepted snapshot: %v", err)
		}
	})
}

// FuzzWirePatchLog fuzzes the JSON patch-set wire decoder (the GET
// /v1/patches body and the standalone .json patch file format): any
// input either decodes into a re-encodable set or errors — truncation,
// trailing garbage, and type confusion must never panic.
func FuzzWirePatchLog(f *testing.F) {
	ps := testPatchSet()
	var valid bytes.Buffer
	if err := EncodePatchSet(&valid, ps, 42); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add(append(valid.Bytes(), valid.Bytes()...)) // trailing document
	f.Add([]byte(`{"version": 1, "pads": [{"site": -1, "pad": 1e99}]}`))
	f.Add([]byte(`{"version": "not a number"}`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		set, version, err := DecodePatchSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodePatchSet(&buf, set, version); err != nil {
			t.Fatalf("re-encode of accepted patch set: %v", err)
		}
	})
}

// testPatchSet builds a patch set exercising all three tables.
func testPatchSet() *patch.Set {
	ps := patch.New()
	ps.AddPad(site.ID(0xBAD), 24)
	ps.AddFrontPad(site.ID(0xF00), 8)
	ps.AddDeferral(site.Pair{Alloc: 0xDA, Free: 0xDF}, 128)
	return ps
}
