package fleet

import (
	"context"
	"errors"
	"sync"

	"exterminator/internal/cumulative"
	"exterminator/internal/engine"
	"exterminator/internal/fleet/codec"
	"exterminator/internal/patch"
	"exterminator/internal/report"
)

// Sink adapts a fleet Client to the engine's evidence-sink contract, so
// a session wired with engine.WithSink(fleet.NewSink(client)) stays
// current with the fleet before the run (patch download, via the
// engine.PatchSource side of the interface) and contributes back after
// it (observation upload for cumulative sessions, bug reports for newly
// derived patches). This replaces the hand-rolled -fleet plumbing that
// used to live in cmd/exterminate.
type Sink struct {
	c *Client

	mu             sync.Mutex
	fetchedEntries int
	fetchedVersion uint64
	lastIngest     *IngestReply
	// pending is a batch that was sent but never acknowledged (network
	// error or lost ack). It is retried verbatim — same content, same
	// batch ID — before any new delta is cut, so the server's dedup
	// window can recognize it if the first delivery actually landed.
	// Until it is acked the watermark stays put, which is what keeps the
	// evidence from leaking into (and double-counting via) a newer delta.
	pending *ObservationBatch
	flushes int64
}

// NewSink wraps a client.
func NewSink(c *Client) *Sink { return &Sink{c: c} }

// SinkName implements engine.EvidenceSink.
func (s *Sink) SinkName() string { return "fleet" }

// FetchPatches implements engine.PatchSource: download the fleet's
// current patch set so the session runs under everything the fleet has
// already learned. Merging is always safe (patches compose by maxima).
func (s *Sink) FetchPatches(ctx context.Context) (*patch.Set, error) {
	ps, version, err := s.c.PatchesContext(ctx, 0)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.fetchedEntries, s.fetchedVersion = ps.Len(), version
	s.mu.Unlock()
	return ps, nil
}

// Commit implements engine.EvidenceSink: upload the session's
// observation history (cumulative mode) and report any newly derived
// patch entries. Only the session's own derivations are reported —
// re-reporting pre-loaded or fleet-fetched entries would spam the fleet
// with duplicates on every run.
//
// Uploads are watermarked: only the history delta not yet acknowledged
// by a fleet is sent, and the watermark advances only on success. A
// session resumed with -resume-history therefore cannot double-count
// evidence an earlier session already uploaded — the watermark rides
// along in the persisted history file.
//
// Uploads are also exactly-once: every batch is stamped with a
// content-addressed ID (cumulative.BatchID) and an unacknowledged batch
// is retried verbatim before a new delta is cut, so a server keeping a
// dedup window absorbs each batch at most once even when acks are lost.
func (s *Sink) Commit(ctx context.Context, ev *engine.Evidence) error {
	var errs []error
	if ev.History != nil && ev.History.Runs > 0 {
		if err := s.stream(ctx, ev.History); err != nil {
			errs = append(errs, err)
		}
	}
	if ev.Derived != nil && ev.Derived.Len() > 0 {
		if err := s.c.PushReportContext(ctx, report.FromPatches(ev.Derived, nil)); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// FlushEvidence implements engine.StreamingSink: upload the history's
// unacknowledged delta mid-run. The engine calls it with the session's
// history serialized (no run is folding in concurrently), so the
// UploadDelta/MarkUploaded pair here is safe; evidence recorded between
// flushes simply rides the next one.
func (s *Sink) FlushEvidence(ctx context.Context, ev *engine.Evidence) error {
	if ev.History == nil {
		return nil
	}
	s.mu.Lock()
	s.flushes++
	s.mu.Unlock()
	return s.stream(ctx, ev.History)
}

// stream is the shared upload path for Commit and FlushEvidence:
// (1) retry the pending unacknowledged batch, if any — verbatim, so its
// batch ID matches what the server may already have absorbed; (2) cut
// the next watermark delta, stamp it, and push it; (3) advance the
// watermark only for what was acknowledged. On failure the new batch
// becomes the pending one, and no further delta is cut until it is
// through — overlapping deltas would make the ID useless.
func (s *Sink) stream(ctx context.Context, hist *cumulative.History) error {
	s.mu.Lock()
	pending := s.pending
	s.mu.Unlock()
	if pending != nil {
		reply, err := s.c.PushBatchContext(ctx, pending)
		if err != nil {
			return err
		}
		hist.MarkUploaded(pending.Snapshot)
		s.mu.Lock()
		s.pending, s.lastIngest = nil, reply
		s.mu.Unlock()
	}

	delta := hist.UploadDelta()
	if cumulative.DeltaEmpty(delta) {
		return nil
	}
	wmRuns, wmObs := hist.UploadedCounts()
	// Both ID schemes satisfy the identity contract (retries reproduce
	// the ID); the binary one skips the canonical-JSON round trip, so a
	// v2 client stamps an order of magnitude cheaper. The scheme is
	// fixed at stamping time: a mid-flight codec downgrade retries the
	// pending batch verbatim, ID included.
	stamp := cumulative.BatchID
	if s.c.WireV2() {
		stamp = codec.BatchID
	}
	batch := &ObservationBatch{
		Client:   s.c.ID(),
		Snapshot: delta,
		BatchID:  stamp(s.c.ID(), wmRuns, wmObs, delta),
	}
	reply, err := s.c.PushBatchContext(ctx, batch)
	if err != nil {
		s.mu.Lock()
		s.pending = batch
		s.mu.Unlock()
		return err
	}
	hist.MarkUploaded(delta)
	s.mu.Lock()
	s.lastIngest = reply
	s.mu.Unlock()
	return nil
}

// Flushes reports how many mid-run evidence flushes the engine asked
// this sink for (diagnostics).
func (s *Sink) Flushes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushes
}

// Fetched reports what the pre-run download merged: entry count and the
// fleet patch version it corresponded to (zero values before any fetch).
func (s *Sink) Fetched() (entries int, version uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetchedEntries, s.fetchedVersion
}

// LastIngest returns the server's reply to the most recent observation
// upload (nil if none succeeded yet).
func (s *Sink) LastIngest() *IngestReply {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastIngest
}
