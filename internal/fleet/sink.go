package fleet

import (
	"context"
	"errors"
	"sync"

	"exterminator/internal/cumulative"
	"exterminator/internal/engine"
	"exterminator/internal/patch"
	"exterminator/internal/report"
)

// Sink adapts a fleet Client to the engine's evidence-sink contract, so
// a session wired with engine.WithSink(fleet.NewSink(client)) stays
// current with the fleet before the run (patch download, via the
// engine.PatchSource side of the interface) and contributes back after
// it (observation upload for cumulative sessions, bug reports for newly
// derived patches). This replaces the hand-rolled -fleet plumbing that
// used to live in cmd/exterminate.
type Sink struct {
	c *Client

	mu             sync.Mutex
	fetchedEntries int
	fetchedVersion uint64
	lastIngest     *IngestReply
}

// NewSink wraps a client.
func NewSink(c *Client) *Sink { return &Sink{c: c} }

// SinkName implements engine.EvidenceSink.
func (s *Sink) SinkName() string { return "fleet" }

// FetchPatches implements engine.PatchSource: download the fleet's
// current patch set so the session runs under everything the fleet has
// already learned. Merging is always safe (patches compose by maxima).
func (s *Sink) FetchPatches(ctx context.Context) (*patch.Set, error) {
	ps, version, err := s.c.PatchesContext(ctx, 0)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.fetchedEntries, s.fetchedVersion = ps.Len(), version
	s.mu.Unlock()
	return ps, nil
}

// Commit implements engine.EvidenceSink: upload the session's
// observation history (cumulative mode) and report any newly derived
// patch entries. Only the session's own derivations are reported —
// re-reporting pre-loaded or fleet-fetched entries would spam the fleet
// with duplicates on every run.
//
// Uploads are watermarked: only the history delta not yet acknowledged
// by a fleet is sent, and the watermark advances only on success. A
// session resumed with -resume-history therefore cannot double-count
// evidence an earlier session already uploaded — the watermark rides
// along in the persisted history file.
func (s *Sink) Commit(ctx context.Context, ev *engine.Evidence) error {
	var errs []error
	if ev.History != nil && ev.History.Runs > 0 {
		delta := ev.History.UploadDelta()
		if !cumulative.DeltaEmpty(delta) {
			reply, err := s.c.PushSnapshotContext(ctx, delta)
			if err != nil {
				errs = append(errs, err)
			} else {
				ev.History.MarkUploaded(delta)
				s.mu.Lock()
				s.lastIngest = reply
				s.mu.Unlock()
			}
		}
	}
	if ev.Derived != nil && ev.Derived.Len() > 0 {
		if err := s.c.PushReportContext(ctx, report.FromPatches(ev.Derived, nil)); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Fetched reports what the pre-run download merged: entry count and the
// fleet patch version it corresponded to (zero values before any fetch).
func (s *Sink) Fetched() (entries int, version uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetchedEntries, s.fetchedVersion
}

// LastIngest returns the server's reply to the most recent observation
// upload (nil if none succeeded yet).
func (s *Sink) LastIngest() *IngestReply {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastIngest
}
