package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"exterminator/internal/telemetry"
)

// syncBuffer is a goroutine-safe log sink: the HTTP server logs from
// request goroutines while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// scrape fetches url and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one unlabeled sample's value from an exposition
// body ("" if absent).
func metricValue(body, name string) string {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return rest
		}
	}
	return ""
}

// TestServerIngestMetricsAndCorrelation: one upload increments the
// ingest counters on /metrics, the reply and response header echo a
// correlation ID, the server's log carries it, and a duplicate retry
// shows up as a dedup hit — the partition half of the observability
// pipeline.
func TestServerIngestMetricsAndCorrelation(t *testing.T) {
	var logBuf syncBuffer
	reg := telemetry.NewRegistry()
	srv := NewServer(ServerOptions{
		CorrectEvery: -1,
		Metrics:      reg,
		Logger:       slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	clientReg := telemetry.NewRegistry()
	c := NewClient(ts.URL, "obs-client")
	c.SetMetrics(clientReg)
	c.SetLogger(slog.New(slog.DiscardHandler))

	batch := stampedBatch("obs-client", smallSnapshot(2, 0x200, 0x201))
	reply, err := c.PushBatchContext(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if reply.RequestID == "" {
		t.Fatal("ingest reply carries no correlation ID")
	}
	if !strings.Contains(logBuf.String(), "requestId="+reply.RequestID) {
		t.Errorf("server log does not mention correlation ID %s:\n%s", reply.RequestID, logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "ingest absorbed") {
		t.Errorf("server log missing the absorb line:\n%s", logBuf.String())
	}

	// Retry the same stamped batch: dedup hit, second correlation ID.
	dup, err := c.PushBatchContext(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Duplicate {
		t.Fatal("retry not deduplicated")
	}

	body := scrape(t, ts.URL+"/metrics")
	for name, want := range map[string]string{
		"fleet_ingest_batches_total":      "1",
		"fleet_ingest_observations_total": "2",
		"fleet_ingest_runs_total":         "2",
		"fleet_dedup_hits_total":          "1",
	} {
		if got := metricValue(body, name); got != want {
			t.Errorf("%s = %q, want %q", name, got, want)
		}
	}
	if got := metricValue(body, "fleet_ingest_seconds_count"); got != "2" {
		t.Errorf("fleet_ingest_seconds_count = %q, want 2 (both deliveries timed)", got)
	}
	if !strings.Contains(body, "exterminator_build_info{") {
		t.Error("/metrics missing exterminator_build_info")
	}

	// The client side of the pipeline counted its pushes.
	var cb strings.Builder
	if err := clientReg.WriteText(&cb); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(cb.String(), "fleet_client_pushes_total"); got != "2" {
		t.Errorf("fleet_client_pushes_total = %q, want 2", got)
	}
	if got := metricValue(cb.String(), "fleet_client_push_seconds_count"); got != "2" {
		t.Errorf("fleet_client_push_seconds_count = %q, want 2", got)
	}
}

// TestRequestIDProvidedByCaller: a caller-supplied X-Request-ID is
// honored end to end — echoed on the response header and the reply body
// — rather than replaced by a server-minted one.
func TestRequestIDProvidedByCaller(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	batch := stampedBatch("hdr-client", smallSnapshot(1, 0x300))
	payload, _ := json.Marshal(batch)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/observations", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, "caller-chosen-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "caller-chosen-id-42" {
		t.Errorf("response %s = %q, want the caller's ID", RequestIDHeader, got)
	}
	var reply IngestReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.RequestID != "caller-chosen-id-42" {
		t.Errorf("reply.RequestID = %q, want the caller's ID", reply.RequestID)
	}
}

// TestClientRetryLogging: a 429 with Retry-After makes the client log
// the retry (attempt count, wait, batch and correlation IDs) and count
// it in its retry/backoff metrics.
func TestClientRetryLogging(t *testing.T) {
	var rejected bool
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		first := !rejected
		rejected = true
		mu.Unlock()
		if first {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		io.Copy(io.Discard, r.Body)
		json.NewEncoder(w).Encode(IngestReply{OK: true, RequestID: r.Header.Get(RequestIDHeader)})
	}))
	defer ts.Close()

	var logBuf syncBuffer
	reg := telemetry.NewRegistry()
	c := NewClient(ts.URL, "retry-client")
	c.DisableCompression = true
	c.SetLogger(slog.New(slog.NewTextHandler(&logBuf, nil)))
	c.SetMetrics(reg)

	batch := stampedBatch("retry-client", smallSnapshot(1, 0x400))
	reply, err := c.PushBatchContext(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if reply.RequestID == "" {
		t.Fatal("no correlation ID came back")
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "rate-limited") {
		t.Errorf("client log missing the retry line:\n%s", logs)
	}
	for _, field := range []string{"attempt=1", "retryAfterSec=1", "batchId=" + batch.BatchID, "requestId=" + reply.RequestID} {
		if !strings.Contains(logs, field) {
			t.Errorf("client retry log missing %q:\n%s", field, logs)
		}
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(b.String(), "fleet_client_retries_total"); got != "1" {
		t.Errorf("fleet_client_retries_total = %q, want 1", got)
	}
	if got := metricValue(b.String(), "fleet_client_backoff_seconds_total"); got != "1" {
		t.Errorf("fleet_client_backoff_seconds_total = %q, want 1", got)
	}
}

// TestStatusCarriesBuild: /v1/status reports the binary's link-time
// identity.
func TestStatusCarriesBuild(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	st, err := NewClient(ts.URL, "").Status()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.Build, "dev") {
		t.Errorf("status Build = %q, want the default dev stamp", st.Build)
	}
}
