package fleet_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"exterminator/internal/cumulative"
	"exterminator/internal/fleet"
	"exterminator/internal/site"
)

// A server absorbs stamped observation batches exactly once: the second
// delivery of the same batch — what a client does after a lost ack — is
// acknowledged as a duplicate without touching the evidence pool.
func ExampleServer_exactlyOnceIngest() {
	srv := fleet.NewServer(fleet.ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := fleet.NewClient(ts.URL, "install-1")
	snap := &cumulative.Snapshot{
		C: 4, P: 0.5, Runs: 3,
		Sites: []site.ID{0x100, 0x101},
	}
	batch := &fleet.ObservationBatch{
		Snapshot: snap,
		BatchID:  cumulative.BatchID("install-1", 0, 0, snap),
	}

	first, _ := client.PushBatchContext(context.Background(), batch)
	second, _ := client.PushBatchContext(context.Background(), batch) // retry after a "lost ack"

	fmt.Println("first duplicate:", first.Duplicate)
	fmt.Println("second duplicate:", second.Duplicate)
	fmt.Println("fleet runs:", second.Runs)
	// Output:
	// first duplicate: false
	// second duplicate: true
	// fleet runs: 3
}

// Clients poll patches with the last version they saw; merging a delta
// is always safe because patches compose by maxima.
func ExampleClient_patches() {
	srv := fleet.NewServer(fleet.ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Strong evidence for one overflow site crosses the Bayesian
	// threshold once a correction pass runs.
	snap := &cumulative.Snapshot{
		C: 4, P: 0.5, Runs: 6, CorruptRuns: 6,
		Sites: []site.ID{0xBAD, 0x101, 0x102},
		Overflow: []cumulative.SiteObservations{
			{Site: 0xBAD, Obs: []cumulative.Observation{
				{X: 0.1, Y: true}, {X: 0.1, Y: true}, {X: 0.1, Y: true},
			}},
		},
		PadHints: []cumulative.PadHint{{Site: 0xBAD, Pad: 16}},
	}
	client := fleet.NewClient(ts.URL, "install-2")
	client.PushSnapshot(snap)
	srv.Correct()

	ps, version, _ := client.Patches(0)
	fmt.Println("version:", version)
	fmt.Println("pad for 0xBAD:", ps.Pad(0xBAD))
	// Output:
	// version: 1
	// pad for 0xBAD: 16
}
