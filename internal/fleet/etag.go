package fleet

import (
	"fmt"
	"net/http"
)

// PatchETag formats the strong validator every patch-serving tier
// (fleetd, coordinator, read replica) stamps on GET /v1/patches: the
// serving incarnation's epoch and its patch-log version. The pair
// changes exactly when the body could — a version bump within an epoch,
// or a failover to a new epoch — so If-None-Match revalidation is
// correct by construction.
func PatchETag(epoch, version uint64) string {
	return fmt.Sprintf("%q", fmt.Sprintf("e%d.v%d", epoch, version))
}

// MatchETag stamps etag on the response and, when the request's
// If-None-Match presents the same validator, answers 304 Not Modified
// and reports true — the caller must not write a body. CDN-style
// fan-out lives on this: an unchanged patch log costs a replica (and
// the coordinator behind it) a handful of header bytes per poller.
func MatchETag(w http.ResponseWriter, r *http.Request, etag string) bool {
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && inm == etag {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}
