package fleet

import (
	"bytes"
	"fmt"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/patch"
	"exterminator/internal/site"
	"exterminator/internal/xrand"
)

// Property tests pinning the algebra the whole fan-out tier leans on:
// patch sets compose by maxima, forming a join-semilattice. Every
// "over-answering is safe" shortcut — replica full-set resyncs, patch
// log delta unions, failover re-merges — is sound only because Merge is
// commutative, associative, and idempotent. Randomized histories are
// driven by the deterministic xrand generator (seed printed on
// failure), and counterexamples are shrunk to a minimal op list before
// reporting.

// patchOp is one randomized mutation of a patch set.
type patchOp struct {
	kind uint8 // 0: pad, 1: front pad, 2: deferral
	a, b site.ID
	v    uint64
}

func (o patchOp) String() string {
	switch o.kind {
	case 0:
		return fmt.Sprintf("AddPad(%#x, %d)", uint32(o.a), o.v)
	case 1:
		return fmt.Sprintf("AddFrontPad(%#x, %d)", uint32(o.a), o.v)
	default:
		return fmt.Sprintf("AddDeferral({%#x,%#x}, %d)", uint32(o.a), uint32(o.b), o.v)
	}
}

// genOps draws n ops from a deliberately small site domain so maxima
// collisions (the interesting case) are common.
func genOps(rng *xrand.RNG, n int) []patchOp {
	ops := make([]patchOp, n)
	for i := range ops {
		ops[i] = patchOp{
			kind: uint8(rng.Intn(3)),
			a:    site.ID(rng.Intn(8)),
			b:    site.ID(rng.Intn(8)),
			v:    uint64(rng.Intn(64) + 1),
		}
	}
	return ops
}

func applyOps(ops []patchOp) *patch.Set {
	ps := patch.New()
	for _, o := range ops {
		switch o.kind {
		case 0:
			ps.AddPad(o.a, uint32(o.v))
		case 1:
			ps.AddFrontPad(o.a, uint32(o.v))
		default:
			ps.AddDeferral(site.Pair{Alloc: o.a, Free: o.b}, o.v)
		}
	}
	return ps
}

func merged(a, b *patch.Set) *patch.Set {
	m := a.Clone()
	m.Merge(b)
	return m
}

// checkSemilattice verifies the three lattice laws on the sets built
// from three op lists, returning a description of the first violated
// law.
func checkSemilattice(opsA, opsB, opsC []patchOp) error {
	a, b, c := applyOps(opsA), applyOps(opsB), applyOps(opsC)
	if ab, ba := merged(a, b), merged(b, a); !ab.Equal(ba) {
		return fmt.Errorf("commutativity: a∪b = %s, b∪a = %s", ab, ba)
	}
	if abc, bca := merged(merged(a, b), c), merged(a, merged(b, c)); !abc.Equal(bca) {
		return fmt.Errorf("associativity: (a∪b)∪c = %s, a∪(b∪c) = %s", abc, bca)
	}
	if aa := merged(a, a); !aa.Equal(a) {
		return fmt.Errorf("idempotence: a∪a = %s, a = %s", aa, a)
	}
	return nil
}

// shrinkOps minimizes one op list against a still-failing predicate by
// repeatedly dropping ops while the failure reproduces.
func shrinkOps(ops []patchOp, fails func([]patchOp) bool) []patchOp {
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(ops); i++ {
			cand := append(append([]patchOp{}, ops[:i]...), ops[i+1:]...)
			if fails(cand) {
				ops = cand
				changed = true
				break
			}
		}
	}
	return ops
}

func TestPatchSetIsJoinSemilattice(t *testing.T) {
	const seed, trials = 0xE57E12, 500
	rng := xrand.New(seed)
	for trial := 0; trial < trials; trial++ {
		opsA := genOps(rng, rng.Intn(12))
		opsB := genOps(rng, rng.Intn(12))
		opsC := genOps(rng, rng.Intn(12))
		err := checkSemilattice(opsA, opsB, opsC)
		if err == nil {
			continue
		}
		// Shrink each list in turn while the same-law failure holds.
		fails := func(a, b, c []patchOp) bool { return checkSemilattice(a, b, c) != nil }
		opsA = shrinkOps(opsA, func(o []patchOp) bool { return fails(o, opsB, opsC) })
		opsB = shrinkOps(opsB, func(o []patchOp) bool { return fails(opsA, o, opsC) })
		opsC = shrinkOps(opsC, func(o []patchOp) bool { return fails(opsA, opsB, o) })
		t.Fatalf("seed %#x trial %d: %v\nshrunk a: %v\nshrunk b: %v\nshrunk c: %v",
			seed, trial, checkSemilattice(opsA, opsB, opsC), opsA, opsB, opsC)
	}
}

// TestPatchLogFoldOrderIndependent pins the property failover rests on:
// folding the same randomized history of patch sets in any order yields
// the same cumulative set, and re-folding anything already absorbed is
// a no-op (version does not move). This is why a promoted standby that
// replayed the same deltas — possibly in different poll order, possibly
// twice — serves the same full set as the primary it replaced.
func TestPatchLogFoldOrderIndependent(t *testing.T) {
	const seed, trials = 0x10F0, 200
	rng := xrand.New(seed)
	for trial := 0; trial < trials; trial++ {
		n := rng.Intn(8) + 2
		sets := make([]*patch.Set, n)
		for i := range sets {
			sets[i] = applyOps(genOps(rng, rng.Intn(10)))
		}
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i := n - 1; i > 0; i-- { // Fisher–Yates off the same rng
			j := rng.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		fwd, shuf := NewPatchLog(), NewPatchLog()
		for i := 0; i < n; i++ {
			fwd.Fold(sets[i])
			shuf.Fold(sets[perm[i]])
		}
		fullFwd, _ := fwd.Full()
		fullShuf, _ := shuf.Full()
		if !fullFwd.Equal(fullShuf) {
			t.Fatalf("seed %#x trial %d: fold order changed the log:\nin order: %s\nshuffled: %s",
				seed, trial, fullFwd, fullShuf)
		}
		vBefore, _ := fwd.Since(0)
		version := fwd.Version()
		if _, changed := fwd.Fold(fullShuf); changed || fwd.Version() != version {
			t.Fatalf("seed %#x trial %d: re-folding the cumulative set moved the log v%d -> v%d",
				seed, trial, version, fwd.Version())
		}
		if after, _ := fwd.Since(0); !after.Equal(vBefore) {
			t.Fatalf("seed %#x trial %d: idempotent fold altered the full set", seed, trial)
		}
	}
}

// TestHistoryMergeCommutesButIsNotIdempotent pins cumulative evidence's
// actual algebra: merge order never matters (observations are
// exchangeable under the §5.1 model), but evidence is a multiset —
// merging the same history twice double-counts, which is exactly why
// exactly-once ingest lives in the partitions' dedup window rather than
// in the merge itself.
func TestHistoryMergeCommutesButIsNotIdempotent(t *testing.T) {
	const seed, trials = 0xCAFE, 100
	rng := xrand.New(seed)
	canonical := func(h *cumulative.History) []byte {
		h.Canonicalize()
		var buf bytes.Buffer
		if err := h.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	randHistory := func() *cumulative.History {
		h := cumulative.NewHistory(cumulative.DefaultConfig())
		s := &cumulative.Snapshot{Runs: rng.Intn(4) + 1}
		for i, n := 0, rng.Intn(4); i < n; i++ {
			id := site.ID(rng.Intn(6))
			s.Sites = append(s.Sites, id)
			s.Overflow = append(s.Overflow, cumulative.SiteObservations{
				Site: id,
				Obs:  []cumulative.Observation{{X: float64(rng.Intn(100)) / 100, Y: rng.Intn(2) == 1}},
			})
		}
		h.Absorb(s)
		return h
	}
	for trial := 0; trial < trials; trial++ {
		a, b, c := randHistory(), randHistory(), randHistory()

		ab := cumulative.NewHistory(cumulative.DefaultConfig())
		ab.Merge(a)
		ab.Merge(b)
		ab.Merge(c)
		cba := cumulative.NewHistory(cumulative.DefaultConfig())
		cba.Merge(c)
		cba.Merge(b)
		cba.Merge(a)
		if !bytes.Equal(canonical(ab), canonical(cba)) {
			t.Fatalf("seed %#x trial %d: merge order changed the evidence", seed, trial)
		}

		once := cumulative.NewHistory(cumulative.DefaultConfig())
		once.Merge(a)
		twice := cumulative.NewHistory(cumulative.DefaultConfig())
		twice.Merge(a)
		twice.Merge(a)
		if a.Runs > 0 && twice.Runs != 2*once.Runs {
			t.Fatalf("seed %#x trial %d: double merge runs = %d, want %d (multiset semantics)",
				seed, trial, twice.Runs, 2*once.Runs)
		}
	}
}
