package codec

import (
	"math"

	"exterminator/internal/cumulative"
	"exterminator/internal/site"
)

// Snapshot payload layout (inside FrameSnapshot, and embedded at the
// tail of FrameBatch / FrameDelta payloads — it is self-delimiting):
//
//	f64 c | f64 p
//	uvarint runs | failedRuns | corruptRuns
//	sites:    uvarint n | n × svarint site delta
//	overflow: uvarint groups | uvarint totalObs
//	          groups × (svarint site delta | uvarint obsCount)
//	          totalObs × f64 X | ceil(totalObs/8) bytes Y bits
//	dangling: uvarint groups | uvarint totalObs
//	          groups × (svarint alloc delta | uvarint free | uvarint obsCount)
//	          totalObs × f64 X | ceil(totalObs/8) bytes Y bits
//	padHints:      uvarint n | n × (svarint site delta | uvarint pad)
//	deferralHints: uvarint n | n × (svarint alloc delta | uvarint free | uvarint deferral)
//
// Site columns are zigzag deltas against the previous entry in the same
// column (first entry deltas against zero). Observation X values are
// one contiguous float64 run and Y one packed bit run, in group order —
// the columnar shape that lets the decoder allocate a single backing
// observation array per section and hand out exact sub-slices.

// appendSnapshot encodes s (nil encodes as an all-zero snapshot guarded
// by the caller's has-snapshot flag) into buf.
func appendSnapshot(buf *Buffer, s *cumulative.Snapshot) {
	buf.f64(s.C)
	buf.f64(s.P)
	buf.uvarint(uint64(s.Runs))
	buf.uvarint(uint64(s.FailedRuns))
	buf.uvarint(uint64(s.CorruptRuns))

	buf.uvarint(uint64(len(s.Sites)))
	prev := int64(0)
	for _, id := range s.Sites {
		buf.svarint(int64(id) - prev)
		prev = int64(id)
	}

	total := 0
	for _, g := range s.Overflow {
		total += len(g.Obs)
	}
	buf.uvarint(uint64(len(s.Overflow)))
	buf.uvarint(uint64(total))
	prev = 0
	for _, g := range s.Overflow {
		buf.svarint(int64(g.Site) - prev)
		prev = int64(g.Site)
		buf.uvarint(uint64(len(g.Obs)))
	}
	for _, g := range s.Overflow {
		for _, o := range g.Obs {
			buf.f64(o.X)
		}
	}
	appendYBits(buf, total, func(yield func(bool)) {
		for _, g := range s.Overflow {
			for _, o := range g.Obs {
				yield(o.Y)
			}
		}
	})

	total = 0
	for _, g := range s.Dangling {
		total += len(g.Obs)
	}
	buf.uvarint(uint64(len(s.Dangling)))
	buf.uvarint(uint64(total))
	prev = 0
	for _, g := range s.Dangling {
		buf.svarint(int64(g.Alloc) - prev)
		prev = int64(g.Alloc)
		buf.uvarint(uint64(g.Free))
		buf.uvarint(uint64(len(g.Obs)))
	}
	for _, g := range s.Dangling {
		for _, o := range g.Obs {
			buf.f64(o.X)
		}
	}
	appendYBits(buf, total, func(yield func(bool)) {
		for _, g := range s.Dangling {
			for _, o := range g.Obs {
				yield(o.Y)
			}
		}
	})

	buf.uvarint(uint64(len(s.PadHints)))
	prev = 0
	for _, h := range s.PadHints {
		buf.svarint(int64(h.Site) - prev)
		prev = int64(h.Site)
		buf.uvarint(uint64(h.Pad))
	}

	buf.uvarint(uint64(len(s.DeferralHints)))
	prev = 0
	for _, h := range s.DeferralHints {
		buf.svarint(int64(h.Alloc) - prev)
		prev = int64(h.Alloc)
		buf.uvarint(uint64(h.Free))
		buf.uvarint(h.Deferral)
	}
}

// appendYBits packs total booleans produced by walk into buf, LSB
// first within each byte.
func appendYBits(buf *Buffer, total int, walk func(yield func(bool))) {
	start := len(buf.B)
	buf.B = append(buf.B, make([]byte, (total+7)/8)...)
	i := 0
	walk(func(y bool) {
		if y {
			buf.B[start+i/8] |= 1 << (i % 8)
		}
		i++
	})
}

// EncodeSnapshot encodes one bare snapshot as a complete FrameSnapshot
// frame appended to buf; the returned bytes alias buf.
func EncodeSnapshot(buf *Buffer, s *cumulative.Snapshot) []byte {
	start := buf.beginFrame(FrameSnapshot)
	appendSnapshot(buf, s)
	return buf.endFrame(start)
}

// DecodeSnapshot decodes a FrameSnapshot frame.
func DecodeSnapshot(data []byte) (*cumulative.Snapshot, error) {
	payload, err := expectFrame(data, FrameSnapshot)
	if err != nil {
		return nil, err
	}
	r := &reader{b: payload}
	s := readSnapshot(r)
	if err := r.finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// readSnapshot decodes one snapshot payload from r's current position,
// allocating each output slice at its exact final size.
func readSnapshot(r *reader) *cumulative.Snapshot {
	s := &cumulative.Snapshot{}
	s.C = r.f64()
	s.P = r.f64()
	s.Runs = r.nonNeg("run counter")
	s.FailedRuns = r.nonNeg("run counter")
	s.CorruptRuns = r.nonNeg("run counter")

	if n := r.count(1, "site"); n > 0 {
		s.Sites = make([]site.ID, n)
		prev := int64(0)
		for i := range s.Sites {
			s.Sites[i] = r.siteID(&prev)
		}
	}

	if groups, counts, ids, _, obs := readObsGroups(r, false, nil); groups > 0 {
		s.Overflow = make([]cumulative.SiteObservations, groups)
		off := 0
		for i := range s.Overflow {
			n := counts[i]
			s.Overflow[i] = cumulative.SiteObservations{Site: ids[i], Obs: obs[off : off+n : off+n]}
			off += n
		}
	}
	if groups, counts, ids, frees, obs := readObsGroups(r, true, nil); groups > 0 {
		s.Dangling = make([]cumulative.PairObservations, groups)
		off := 0
		for i := range s.Dangling {
			n := counts[i]
			s.Dangling[i] = cumulative.PairObservations{Alloc: ids[i], Free: frees[i], Obs: obs[off : off+n : off+n]}
			off += n
		}
	}

	if n := r.count(2, "pad hint"); n > 0 {
		s.PadHints = make([]cumulative.PadHint, n)
		prev := int64(0)
		for i := range s.PadHints {
			s.PadHints[i].Site = r.siteID(&prev)
			s.PadHints[i].Pad = r.pad()
		}
	}
	if n := r.count(3, "deferral hint"); n > 0 {
		s.DeferralHints = make([]cumulative.DeferralHint, n)
		prev := int64(0)
		for i := range s.DeferralHints {
			s.DeferralHints[i].Alloc = r.siteID(&prev)
			s.DeferralHints[i].Free = r.freeSite()
			s.DeferralHints[i].Deferral = r.uvarint()
		}
	}
	return s
}

// pad reads a uint32 pad value.
func (r *reader) pad() uint32 {
	v := r.uvarint()
	if v > math.MaxUint32 {
		r.fail("pad %d out of range", v)
		return 0
	}
	return uint32(v)
}

// freeSite reads an absolute (non-delta) site ID.
func (r *reader) freeSite() site.ID {
	v := r.uvarint()
	if v > math.MaxUint32 {
		r.fail("site id %d out of range", v)
		return 0
	}
	return site.ID(v)
}

// readObsGroups decodes one observation section (overflow or, with
// pairs set, dangling): group headers, then the columnar X run and Y
// bits, materialized into a single backing observation slice. All
// returned slices are nil when the section is empty or r has failed.
// With a non-nil scratch the returned slices are pooled buffers valid
// only until the next scratch use — the sharded decode copies out of
// them; without one they are fresh allocations the caller may keep
// (readSnapshot aliases them into the decoded snapshot).
func readObsGroups(r *reader, pairs bool, sc *shardScratch) (groups int, counts []int, ids, frees []site.ID, obs []cumulative.Observation) {
	perGroup := 2
	if pairs {
		perGroup = 3
	}
	groups = r.count(perGroup, "observation group")
	total := r.uvarint()
	if r.err != nil {
		return 0, nil, nil, nil, nil
	}
	// Each observation costs 8 bytes of X column alone; a total the
	// remaining bytes cannot hold is a forgery.
	if total > uint64(r.rem()/8) {
		r.fail("forged observation total %d exceeds remaining %d bytes", total, r.rem())
		return 0, nil, nil, nil, nil
	}
	if groups == 0 {
		if total != 0 {
			r.fail("observation total %d with zero groups", total)
		}
		return 0, nil, nil, nil, nil
	}
	if sc != nil {
		counts = sc.counts(groups)
		ids = sc.ids(groups)
		if pairs {
			frees = sc.frees(groups)
		}
	} else {
		counts = make([]int, groups)
		ids = make([]site.ID, groups)
		if pairs {
			frees = make([]site.ID, groups)
		}
	}
	prev := int64(0)
	sum := uint64(0)
	for i := 0; i < groups; i++ {
		ids[i] = r.siteID(&prev)
		if pairs {
			frees[i] = r.freeSite()
		}
		n := r.uvarint()
		if n > total {
			r.fail("observation group count %d exceeds section total %d", n, total)
			return 0, nil, nil, nil, nil
		}
		counts[i] = int(n)
		sum += n
	}
	if r.err != nil {
		return 0, nil, nil, nil, nil
	}
	if sum != total {
		r.fail("observation group counts sum %d, header says %d", sum, total)
		return 0, nil, nil, nil, nil
	}
	if sc != nil {
		obs = sc.obs(int(total))
	} else {
		obs = make([]cumulative.Observation, total)
	}
	for i := range obs {
		obs[i].X = r.f64()
	}
	readYBits(r, obs)
	return groups, counts, ids, frees, obs
}

// readYBits unpacks len(obs) Y bits into obs.
func readYBits(r *reader, obs []cumulative.Observation) {
	nbytes := (len(obs) + 7) / 8
	if r.rem() < nbytes {
		r.fail("truncated Y bit column")
		return
	}
	bits := r.b[r.off : r.off+nbytes]
	r.off += nbytes
	for i := range obs {
		obs[i].Y = bits[i/8]&(1<<(i%8)) != 0
	}
}
