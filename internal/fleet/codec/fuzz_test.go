package codec

import (
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/site"
)

// FuzzV2FrameDecode drives every v2 frame decoder with arbitrary
// bytes, the same contract as the XFSN/XCSN persistence targets: no
// panic, and no allocation sized from a forged length or count prefix
// (every decoder validates counts against the bytes actually present
// first). Valid frames that decode must re-encode and decode to the
// same value — a cheap round-trip oracle on top of crash safety.
func FuzzV2FrameDecode(f *testing.F) {
	// Seed with one valid frame of each type, so mutation starts from
	// structurally plausible inputs.
	snap := &cumulative.Snapshot{
		C: 4, P: 0.5, Runs: 3, FailedRuns: 1,
		Sites: []site.ID{0x10, 0x20},
		Overflow: []cumulative.SiteObservations{
			{Site: 0x10, Obs: []cumulative.Observation{{X: 0.25, Y: true}, {X: 0.5}}},
		},
		Dangling: []cumulative.PairObservations{
			{Alloc: 0x20, Free: 0x21, Obs: []cumulative.Observation{{X: 0.125}}},
		},
		PadHints:      []cumulative.PadHint{{Site: 0x10, Pad: 8}},
		DeferralHints: []cumulative.DeferralHint{{Alloc: 0x20, Free: 0x21, Deferral: 100}},
	}
	buf := GetBuffer()
	f.Add(append([]byte(nil), EncodeBatch(buf, &Batch{Client: "c", BatchID: "b", RingVersion: 1, Snapshot: snap})...))
	buf.B = buf.B[:0]
	f.Add(append([]byte(nil), EncodeSnapshot(buf, snap)...))
	buf.B = buf.B[:0]
	f.Add(append([]byte(nil), EncodePatches(buf, &PatchSet{
		Version: 2, Epoch: 7,
		Pads:      []PadEntry{{Site: 1, Pad: 16}},
		FrontPads: []PadEntry{{Site: 2, Pad: 8}},
		Deferrals: []DeferralEntry{{Alloc: 3, Free: 4, Deferral: 9}},
	})...))
	buf.B = buf.B[:0]
	whole := append([]byte(nil), EncodeDelta(buf, &Delta{
		Epoch: 1, Seq: 5, Snapshot: snap, ReqIDs: []string{"r"},
		Ops: []DeltaOp{{Evict: []site.ID{1, 2}}},
	})...)
	PutBuffer(buf)
	f.Add(whole)
	// Truncations and a forged length prefix as explicit seeds.
	if len(whole) > 12 {
		f.Add(whole[:12:12])
	}
	f.Add([]byte("XWF2\x01\x01\xff\xff\xff\x7f"))

	shardOf := func(id site.ID) int { return int(uint32(id) % 7) }
	f.Fuzz(func(t *testing.T, data []byte) {
		if b, err := DecodeBatch(data); err == nil {
			rt := GetBuffer()
			re := EncodeBatch(rt, b)
			if _, err := DecodeBatch(re); err != nil {
				t.Fatalf("re-decode batch: %v", err)
			}
			PutBuffer(rt)
		}
		if _, parts, err := DecodeBatchSharded(data, 7, shardOf); err == nil {
			for i, p := range parts {
				if p == nil {
					continue
				}
				for _, id := range p.Sites {
					if shardOf(id) != i {
						t.Fatalf("sharded decode misplaced site %v", id)
					}
				}
			}
		}
		if s, err := DecodeSnapshot(data); err == nil {
			rt := GetBuffer()
			re := EncodeSnapshot(rt, s)
			if _, err := DecodeSnapshot(re); err != nil {
				t.Fatalf("re-decode snapshot: %v", err)
			}
			PutBuffer(rt)
		}
		if ps, err := DecodePatches(data); err == nil {
			rt := GetBuffer()
			re := EncodePatches(rt, ps)
			if _, err := DecodePatches(re); err != nil {
				t.Fatalf("re-decode patches: %v", err)
			}
			PutBuffer(rt)
		}
		if d, err := DecodeDelta(data); err == nil {
			rt := GetBuffer()
			re := EncodeDelta(rt, d)
			if _, err := DecodeDelta(re); err != nil {
				t.Fatalf("re-decode delta: %v", err)
			}
			PutBuffer(rt)
		}
	})
}
