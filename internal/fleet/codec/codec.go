// Package codec implements the fleet's v2 binary wire encoding: the
// negotiated alternative to the v1 JSON protocol (docs/PROTOCOL.md,
// "v2 binary framing"). v1 burns the aggregation tier's CPU
// marshalling at fleet scale; v2 exists so the ingest path costs near
// zero per observation.
//
// Every v2 HTTP body is one self-contained frame:
//
//	magic "XWF2" | version byte | frame type byte | u32 LE payload length | payload
//
// Payloads encode integers as LEB128 varints, site-ID columns as
// zigzag deltas (canonical snapshots sort them, so deltas are tiny),
// and observations columnarly — all X values as one float64 run, all Y
// bits packed — which is both smaller and decodable straight into
// exact-size output slices with no intermediate maps. Encoders append
// into pooled buffers (GetBuffer/PutBuffer); decoders only ever slice
// the input, so a forged length or count prefix fails validation
// before any allocation is sized from it.
//
// The package deliberately depends only on the evidence types
// (internal/cumulative, internal/site, internal/patch): the fleet and
// cluster tiers convert their wire structs to and from the codec's
// neutral forms, keeping JSON and binary as two implementations behind
// one seam.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"exterminator/internal/site"
)

// ContentTypeV2 is the negotiated media type: requests carrying a v2
// frame declare it in Content-Type, pollers willing to receive one
// declare it in Accept, and servers answering with a frame stamp it on
// the response. Anything else means v1 JSON.
const ContentTypeV2 = "application/x-exterminator-v2"

// Frame types. One frame type per wire struct, so a frame is
// self-describing and a misrouted body fails loudly instead of
// half-decoding.
const (
	// FrameBatch is an ObservationBatch (POST /v1/observations body).
	FrameBatch byte = 1
	// FramePatches is a WirePatchSet (GET /v1/patches response).
	FramePatches byte = 2
	// FrameDelta is a SnapshotDelta (GET /v1/deltas response).
	FrameDelta byte = 3
	// FrameSnapshot is a bare cumulative.Snapshot (no HTTP endpoint
	// sends one today; the frame exists for files and tooling).
	FrameSnapshot byte = 4
)

// frameVersion is the encoding version inside the magic. Bumped only
// for incompatible layout changes; field additions get new trailing
// sections gated on it instead.
const frameVersion = 1

var frameMagic = [4]byte{'X', 'W', 'F', '2'}

// frameHeaderLen is magic(4) + version(1) + type(1) + length(4).
const frameHeaderLen = 10

// MaxFrameBytes bounds a frame's declared payload length. It exists so
// ParseFrame callers that stream (rather than hold the whole body)
// have a hard ceiling; HTTP callers are additionally bounded by the
// server's body limit.
const MaxFrameBytes = 1 << 30

// Buffer is a pooled append buffer for frame encoding. Encoders append
// to B; the encoded frame aliases B, so the buffer must outlive any use
// of the returned bytes and only then go back via PutBuffer.
type Buffer struct {
	B []byte
}

// maxPooledBuffer keeps pathological one-off giants out of the pool.
const maxPooledBuffer = 4 << 20

var bufPool = sync.Pool{
	New: func() any { return &Buffer{B: make([]byte, 0, 4096)} },
}

// GetBuffer returns an empty buffer from the pool.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// PutBuffer returns a buffer to the pool. The caller must not touch
// bytes that alias b.B afterwards.
func PutBuffer(b *Buffer) {
	if b != nil && cap(b.B) <= maxPooledBuffer {
		bufPool.Put(b)
	}
}

// beginFrame appends a frame header with a zero length and returns its
// offset, for endFrame to patch once the payload is in place.
func (b *Buffer) beginFrame(typ byte) int {
	start := len(b.B)
	b.B = append(b.B, frameMagic[:]...)
	b.B = append(b.B, frameVersion, typ, 0, 0, 0, 0)
	return start
}

// endFrame patches the header's payload length and returns the whole
// frame (aliasing the buffer).
func (b *Buffer) endFrame(start int) []byte {
	payload := len(b.B) - start - frameHeaderLen
	binary.LittleEndian.PutUint32(b.B[start+6:start+10], uint32(payload))
	return b.B[start:]
}

func (b *Buffer) u8(v byte) { b.B = append(b.B, v) }

func (b *Buffer) f64(v float64) {
	b.B = binary.LittleEndian.AppendUint64(b.B, math.Float64bits(v))
}

func (b *Buffer) uvarint(v uint64) {
	b.B = binary.AppendUvarint(b.B, v)
}

// svarint appends a zigzag-encoded signed varint.
func (b *Buffer) svarint(v int64) {
	b.B = binary.AppendUvarint(b.B, uint64(v<<1)^uint64(v>>63))
}

func (b *Buffer) str(s string) {
	b.uvarint(uint64(len(s)))
	b.B = append(b.B, s...)
}

// ParseFrame validates a complete in-memory frame and returns its type
// and payload (aliasing data). The declared length must match the
// input exactly: truncated and concatenated frames both fail, mirroring
// the strict trailing-data rejection of the JSON decoders.
func ParseFrame(data []byte) (typ byte, payload []byte, err error) {
	if len(data) < frameHeaderLen {
		return 0, nil, fmt.Errorf("codec: frame shorter than header (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != frameMagic {
		return 0, nil, fmt.Errorf("codec: bad frame magic %q", data[:4])
	}
	if data[4] != frameVersion {
		return 0, nil, fmt.Errorf("codec: unsupported frame version %d", data[4])
	}
	typ = data[5]
	n := binary.LittleEndian.Uint32(data[6:10])
	if n > MaxFrameBytes {
		return 0, nil, fmt.Errorf("codec: implausible frame length %d", n)
	}
	if int(n) != len(data)-frameHeaderLen {
		return 0, nil, fmt.Errorf("codec: frame length %d does not match body %d", n, len(data)-frameHeaderLen)
	}
	return typ, data[frameHeaderLen:], nil
}

// expectFrame parses data and checks the frame type.
func expectFrame(data []byte, want byte) ([]byte, error) {
	typ, payload, err := ParseFrame(data)
	if err != nil {
		return nil, err
	}
	if typ != want {
		return nil, fmt.Errorf("codec: frame type %d, want %d", typ, want)
	}
	return payload, nil
}

// reader decodes a payload with a sticky error: every accessor
// validates against the bytes actually present before sizing anything
// from a decoded count, so forged prefixes fail instead of allocating.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("codec: "+format, args...)
	}
}

func (r *reader) rem() int { return len(r.b) - r.off }

func (r *reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.rem() < 1 {
		r.fail("truncated payload")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.rem() < 8 {
		r.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) svarint() int64 {
	u := r.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// count reads an element count for a section whose elements each cost
// at least perElem encoded bytes, rejecting counts the remaining input
// cannot possibly hold.
func (r *reader) count(perElem int, what string) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.rem()/perElem) {
		r.fail("forged %s count %d exceeds remaining %d bytes", what, v, r.rem())
		return 0
	}
	return int(v)
}

// nonNeg reads a varint destined for an int counter.
func (r *reader) nonNeg(what string) int {
	v := r.uvarint()
	if v > math.MaxInt64/2 {
		r.fail("implausible %s %d", what, v)
		return 0
	}
	return int(v)
}

func (r *reader) str(what string) string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.rem()) {
		r.fail("forged %s length %d exceeds remaining %d bytes", what, n, r.rem())
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// siteID decodes one zigzag-delta site ID against prev.
func (r *reader) siteID(prev *int64) site.ID {
	v := *prev + r.svarint()
	if r.err != nil {
		return 0
	}
	if v < 0 || v > math.MaxUint32 {
		r.fail("site id %d out of range", v)
		return 0
	}
	*prev = v
	return site.ID(v)
}

// finish asserts the payload was consumed exactly.
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.rem() != 0 {
		return fmt.Errorf("codec: %d trailing bytes after payload", r.rem())
	}
	return nil
}
