package codec

import (
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/site"
)

// testSnapshot builds a canonical snapshot with every section
// populated, via a History so the ordering invariants are the real
// ones.
func testSnapshot(t testing.TB) *cumulative.Snapshot {
	t.Helper()
	raw := &cumulative.Snapshot{Runs: 41, FailedRuns: 3, CorruptRuns: 2}
	for i := 0; i < 12; i++ {
		id := site.ID(0x1000 + i*7)
		raw.Sites = append(raw.Sites, id)
		g := cumulative.SiteObservations{Site: id}
		for j := 0; j < 3; j++ {
			g.Obs = append(g.Obs, cumulative.Observation{X: 0.25 * float64(j+1), Y: j == 0})
		}
		raw.Overflow = append(raw.Overflow, g)
		raw.PadHints = append(raw.PadHints, cumulative.PadHint{Site: id, Pad: uint32(8 + i)})
	}
	for i := 0; i < 5; i++ {
		alloc, free := site.ID(0x9000+i*3), site.ID(0x400+i)
		raw.Dangling = append(raw.Dangling, cumulative.PairObservations{
			Alloc: alloc, Free: free,
			Obs: []cumulative.Observation{{X: 0.5, Y: i%2 == 0}, {X: 0.125}},
		})
		raw.DeferralHints = append(raw.DeferralHints, cumulative.DeferralHint{
			Alloc: alloc, Free: free, Deferral: uint64(1000 + i),
		})
	}
	// Round through a history so the snapshot is canonical by the same
	// rules every real upload obeys.
	h := cumulative.NewHistory(cumulative.DefaultConfig())
	h.Absorb(raw)
	return h.Snapshot()
}

func TestSnapshotRoundTrip(t *testing.T) {
	snaps := map[string]*cumulative.Snapshot{
		"full":  testSnapshot(t),
		"empty": {},
		"counters-only": {
			C: 4, P: 0.5, Runs: 10, FailedRuns: 2, CorruptRuns: 1,
		},
		"unsorted-sites": {
			Sites: []site.ID{math.MaxUint32, 0, 7, 3},
		},
	}
	for name, s := range snaps {
		t.Run(name, func(t *testing.T) {
			buf := GetBuffer()
			defer PutBuffer(buf)
			frame := EncodeSnapshot(buf, s)
			got, err := DecodeSnapshot(frame)
			if err != nil {
				t.Fatalf("DecodeSnapshot: %v", err)
			}
			if !snapshotsEqual(got, s) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
			}
		})
	}
}

// snapshotsEqual compares treating nil and empty slices alike.
func snapshotsEqual(a, b *cumulative.Snapshot) bool {
	norm := func(s *cumulative.Snapshot) cumulative.Snapshot {
		c := *s
		if len(c.Sites) == 0 {
			c.Sites = nil
		}
		if len(c.Overflow) == 0 {
			c.Overflow = nil
		}
		if len(c.Dangling) == 0 {
			c.Dangling = nil
		}
		if len(c.PadHints) == 0 {
			c.PadHints = nil
		}
		if len(c.DeferralHints) == 0 {
			c.DeferralHints = nil
		}
		return c
	}
	return reflect.DeepEqual(norm(a), norm(b))
}

func TestBatchRoundTrip(t *testing.T) {
	b := &Batch{
		Client:      "client-a",
		BatchID:     "0123456789abcdef",
		RingVersion: 7,
		Snapshot:    testSnapshot(t),
	}
	buf := GetBuffer()
	defer PutBuffer(buf)
	frame := EncodeBatch(buf, b)
	got, err := DecodeBatch(frame)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if got.Client != b.Client || got.BatchID != b.BatchID || got.RingVersion != b.RingVersion {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !snapshotsEqual(got.Snapshot, b.Snapshot) {
		t.Fatalf("snapshot mismatch")
	}

	// No-snapshot batches keep their nil.
	buf2 := GetBuffer()
	defer PutBuffer(buf2)
	frame2 := EncodeBatch(buf2, &Batch{Client: "c"})
	got2, err := DecodeBatch(frame2)
	if err != nil {
		t.Fatalf("DecodeBatch(no snapshot): %v", err)
	}
	if got2.Snapshot != nil {
		t.Fatalf("expected nil snapshot, got %+v", got2.Snapshot)
	}
}

func TestDecodeBatchSharded(t *testing.T) {
	const shards = 8
	shardOf := func(id site.ID) int {
		return int((uint32(id) * 2654435761) % uint32(shards))
	}
	orig := testSnapshot(t)
	b := &Batch{Client: "c", BatchID: "id", RingVersion: 3, Snapshot: orig}
	buf := GetBuffer()
	defer PutBuffer(buf)
	frame := EncodeBatch(buf, b)

	info, parts, err := DecodeBatchSharded(frame, shards, shardOf)
	if err != nil {
		t.Fatalf("DecodeBatchSharded: %v", err)
	}
	if info.Client != "c" || info.BatchID != "id" || info.RingVersion != 3 || !info.HasSnapshot {
		t.Fatalf("info mismatch: %+v", info)
	}
	wantObs := 0
	for _, g := range orig.Overflow {
		wantObs += len(g.Obs)
	}
	for _, g := range orig.Dangling {
		wantObs += len(g.Obs)
	}
	if info.Observations != wantObs {
		t.Fatalf("info.Observations = %d, want %d", info.Observations, wantObs)
	}
	if info.Runs != orig.Runs {
		t.Fatalf("info.Runs = %d, want %d", info.Runs, orig.Runs)
	}
	if len(parts) != shards {
		t.Fatalf("len(parts) = %d, want %d", len(parts), shards)
	}

	// Every key must land in its own shard, counters in exactly one part.
	runs, failed, corrupt := 0, 0, 0
	for i, p := range parts {
		if p == nil {
			continue
		}
		runs += p.Runs
		failed += p.FailedRuns
		corrupt += p.CorruptRuns
		if p.C != orig.C || p.P != orig.P {
			t.Fatalf("part %d lost config: %+v", i, p)
		}
		for _, id := range p.Sites {
			if shardOf(id) != i {
				t.Fatalf("site %v in shard %d, want %d", id, i, shardOf(id))
			}
		}
		for _, g := range p.Overflow {
			if shardOf(g.Site) != i {
				t.Fatalf("overflow %v misplaced", g.Site)
			}
		}
		for _, g := range p.Dangling {
			if shardOf(g.Alloc) != i {
				t.Fatalf("dangling %v misplaced", g.Alloc)
			}
		}
	}
	if runs != orig.Runs || failed != orig.FailedRuns || corrupt != orig.CorruptRuns {
		t.Fatalf("counters (%d,%d,%d), want (%d,%d,%d)",
			runs, failed, corrupt, orig.Runs, orig.FailedRuns, orig.CorruptRuns)
	}

	// Absorbing all parts reproduces exactly the original evidence.
	merged := cumulative.NewHistory(cumulative.DefaultConfig())
	for _, p := range parts {
		merged.Absorb(p)
	}
	control := cumulative.NewHistory(cumulative.DefaultConfig())
	control.Absorb(orig)
	if !snapshotsEqual(merged.Snapshot(), control.Snapshot()) {
		t.Fatalf("sharded absorb diverges from whole-batch absorb")
	}
}

func TestDecodeBatchShardedCountersWithoutEvidence(t *testing.T) {
	b := &Batch{Snapshot: &cumulative.Snapshot{C: 4, P: 0.5, Runs: 9}}
	buf := GetBuffer()
	defer PutBuffer(buf)
	frame := EncodeBatch(buf, b)
	_, parts, err := DecodeBatchSharded(frame, 4, func(site.ID) int { return 0 })
	if err != nil {
		t.Fatalf("DecodeBatchSharded: %v", err)
	}
	total := 0
	for _, p := range parts {
		if p != nil {
			total += p.Runs
		}
	}
	if total != 9 {
		t.Fatalf("counters-only batch lost its runs: %d", total)
	}
}

func TestPatchesRoundTrip(t *testing.T) {
	ps := &PatchSet{
		Version:   12,
		Epoch:     99,
		Pads:      []PadEntry{{Site: 1, Pad: 8}, {Site: 500, Pad: 64}},
		FrontPads: []PadEntry{{Site: 77, Pad: 16}},
		Deferrals: []DeferralEntry{
			{Alloc: 3, Free: 9, Deferral: 1000},
			{Alloc: 3, Free: 10, Deferral: 2000},
			{Alloc: 800, Free: 1, Deferral: 5},
		},
	}
	buf := GetBuffer()
	defer PutBuffer(buf)
	frame := EncodePatches(buf, ps)
	got, err := DecodePatches(frame)
	if err != nil {
		t.Fatalf("DecodePatches: %v", err)
	}
	if !reflect.DeepEqual(got, ps) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ps)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	deltas := map[string]*Delta{
		"snapshot": {
			Epoch: 5, Seq: 17,
			Snapshot: testSnapshot(t),
			ReqIDs:   []string{"r1", "r2"},
		},
		"full": {
			Epoch: 5, Seq: 17, Full: true,
			Snapshot: testSnapshot(t),
		},
		"ops": {
			Epoch: 2, Seq: 9,
			Ops: []DeltaOp{
				{Snapshot: testSnapshot(t)},
				{Evict: []site.ID{1, 2, 0x9000}},
				{Snapshot: &cumulative.Snapshot{Runs: 1}},
			},
			ReqIDs: []string{"a"},
		},
		"empty": {Epoch: 1, Seq: 2},
	}
	for name, d := range deltas {
		t.Run(name, func(t *testing.T) {
			buf := GetBuffer()
			defer PutBuffer(buf)
			frame := EncodeDelta(buf, d)
			got, err := DecodeDelta(frame)
			if err != nil {
				t.Fatalf("DecodeDelta: %v", err)
			}
			if got.Epoch != d.Epoch || got.Seq != d.Seq || got.Full != d.Full {
				t.Fatalf("header mismatch: %+v", got)
			}
			if !reflect.DeepEqual(got.ReqIDs, d.ReqIDs) {
				t.Fatalf("reqIDs mismatch: %v vs %v", got.ReqIDs, d.ReqIDs)
			}
			if (got.Snapshot == nil) != (d.Snapshot == nil) ||
				(got.Snapshot != nil && !snapshotsEqual(got.Snapshot, d.Snapshot)) {
				t.Fatalf("snapshot mismatch")
			}
			if len(got.Ops) != len(d.Ops) {
				t.Fatalf("ops mismatch: %d vs %d", len(got.Ops), len(d.Ops))
			}
			for i := range d.Ops {
				if !reflect.DeepEqual(got.Ops[i].Evict, d.Ops[i].Evict) {
					t.Fatalf("op %d evict mismatch", i)
				}
				if (got.Ops[i].Snapshot == nil) != (d.Ops[i].Snapshot == nil) {
					t.Fatalf("op %d snapshot presence mismatch", i)
				}
				if got.Ops[i].Snapshot != nil && !snapshotsEqual(got.Ops[i].Snapshot, d.Ops[i].Snapshot) {
					t.Fatalf("op %d snapshot mismatch", i)
				}
			}
		})
	}
}

func TestParseFrameRejects(t *testing.T) {
	buf := GetBuffer()
	defer PutBuffer(buf)
	frame := append([]byte(nil), EncodeBatch(buf, &Batch{Client: "x", Snapshot: testSnapshot(t)})...)

	cases := map[string][]byte{
		"short":       frame[:5],
		"bad magic":   append([]byte("NOPE"), frame[4:]...),
		"bad version": append([]byte("XWF2\x7f"), frame[5:]...),
		"truncated":   frame[:len(frame)-3],
		"trailing":    append(append([]byte(nil), frame...), 0xEE),
	}
	// Forged length prefix: declare far more payload than present.
	forged := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(forged[6:10], 1<<28)
	cases["forged length"] = forged

	for name, data := range cases {
		if _, _, err := ParseFrame(data); err == nil {
			t.Errorf("%s: ParseFrame accepted invalid frame", name)
		}
	}
	if _, err := DecodePatches(frame); err == nil {
		t.Errorf("DecodePatches accepted a batch frame")
	}
}

func TestForgedCountsFailBeforeAllocating(t *testing.T) {
	// A syntactically valid frame whose site count claims 2^40 entries
	// must be rejected by the remaining-bytes check, not attempted.
	buf := GetBuffer()
	defer PutBuffer(buf)
	start := buf.beginFrame(FrameBatch)
	buf.u8(batchFlagSnapshot)
	buf.str("")
	buf.str("")
	buf.uvarint(0)
	buf.f64(4)
	buf.f64(0.5)
	buf.uvarint(0)
	buf.uvarint(0)
	buf.uvarint(0)
	buf.uvarint(1 << 40) // forged site count
	frame := buf.endFrame(start)
	if _, err := DecodeBatch(frame); err == nil {
		t.Fatal("forged site count decoded")
	}
	if _, _, err := DecodeBatchSharded(frame, 4, func(site.ID) int { return 0 }); err == nil {
		t.Fatal("forged site count decoded (sharded)")
	}
}

func TestBatchIDStable(t *testing.T) {
	s := testSnapshot(t)
	a := BatchID("client", 10, 20, s)
	b := BatchID("client", 10, 20, s)
	if a != b {
		t.Fatalf("BatchID not deterministic: %s vs %s", a, b)
	}
	if BatchID("client", 10, 21, s) == a {
		t.Fatal("BatchID ignores watermark position")
	}
	if BatchID("other", 10, 20, s) == a {
		t.Fatal("BatchID ignores client")
	}
	if len(a) != 32 {
		t.Fatalf("BatchID length %d, want 32 hex chars", len(a))
	}
}
