package codec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"exterminator/internal/cumulative"
	"exterminator/internal/site"
)

// Batch is the codec-neutral form of fleet.ObservationBatch: what a
// FrameBatch payload carries.
//
// Payload layout:
//
//	u8 flags (bit0: snapshot present)
//	str client | str batchID | uvarint ringVersion
//	[snapshot payload]
type Batch struct {
	Client      string
	BatchID     string
	RingVersion uint64
	Snapshot    *cumulative.Snapshot
}

const batchFlagSnapshot = 1 << 0

// EncodeBatch appends b as a complete FrameBatch frame; the returned
// bytes alias buf.
func EncodeBatch(buf *Buffer, b *Batch) []byte {
	start := buf.beginFrame(FrameBatch)
	flags := byte(0)
	if b.Snapshot != nil {
		flags |= batchFlagSnapshot
	}
	buf.u8(flags)
	buf.str(b.Client)
	buf.str(b.BatchID)
	buf.uvarint(b.RingVersion)
	if b.Snapshot != nil {
		appendSnapshot(buf, b.Snapshot)
	}
	return buf.endFrame(start)
}

// DecodeBatch decodes a FrameBatch frame into one whole snapshot.
func DecodeBatch(data []byte) (*Batch, error) {
	payload, err := expectFrame(data, FrameBatch)
	if err != nil {
		return nil, err
	}
	r := &reader{b: payload}
	b := &Batch{}
	flags := r.u8()
	b.Client = r.str("client id")
	b.BatchID = r.str("batch id")
	b.RingVersion = r.uvarint()
	if flags&batchFlagSnapshot != 0 {
		b.Snapshot = readSnapshot(r)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return b, nil
}

// BatchInfo is the header of a sharded batch decode: everything the
// ingest path needs before touching the store, plus the counters that
// rode the frame (they are assigned to exactly one of the returned
// parts, so absorbing all parts counts each run once).
type BatchInfo struct {
	Client      string
	BatchID     string
	RingVersion uint64
	// HasSnapshot reports whether the frame carried a snapshot at all
	// (the v1 equivalent of ObservationBatch.Snapshot != nil).
	HasSnapshot bool
	// Observations is the total overflow + dangling observation count,
	// the unit the ingest metrics are denominated in.
	Observations int
	// Runs is the batch's run-counter increment (metrics; the counters
	// themselves ride the parts).
	Runs int
}

// DecodeBatchSharded decodes a FrameBatch payload directly into
// per-shard sub-snapshots: parts[i] holds exactly the evidence whose
// key shardOf maps to i, sized exactly, with no whole-batch
// intermediate. Shards the batch touches get a snapshot; the rest stay
// nil. The split mirrors fleet.Store: overflow, pad hints and the site
// set shard by site, dangling evidence and deferral hints by their
// allocation side. Run counters ride the first non-nil part (one is
// created if the batch has counters but no evidence), so a store or
// mirror absorbing every part sees each run exactly once.
func DecodeBatchSharded(data []byte, shards int, shardOf func(site.ID) int) (BatchInfo, []*cumulative.Snapshot, error) {
	var info BatchInfo
	if shards <= 0 {
		return info, nil, fmt.Errorf("codec: sharded decode needs a positive shard count")
	}
	payload, err := expectFrame(data, FrameBatch)
	if err != nil {
		return info, nil, err
	}
	r := &reader{b: payload}
	flags := r.u8()
	info.Client = r.str("client id")
	info.BatchID = r.str("batch id")
	info.RingVersion = r.uvarint()
	if flags&batchFlagSnapshot == 0 {
		return info, nil, r.finish()
	}
	info.HasSnapshot = true

	parts := make([]*cumulative.Snapshot, shards)
	// Every per-shard snapshot comes out of one backing array: a batch
	// of any size touches most shards of a default store, and a single
	// allocation (pinned for as long as the longest-lived part, i.e. the
	// journal window) beats one per shard.
	snaps := make([]cumulative.Snapshot, shards)
	c := r.f64()
	p := r.f64()
	part := func(i int) *cumulative.Snapshot {
		if parts[i] == nil {
			snaps[i].C, snaps[i].P = c, p
			parts[i] = &snaps[i]
		}
		return parts[i]
	}
	runs := r.nonNeg("run counter")
	failed := r.nonNeg("run counter")
	corrupt := r.nonNeg("run counter")
	info.Runs = runs

	sc := getScratch(shards)
	defer putScratch(sc)

	// Sites: count per shard, then carve exact-size per-part slices out
	// of one backing array (disjoint capacity windows, so the appends
	// below never cross shards).
	if n := r.count(1, "site"); n > 0 {
		ids := sc.ids(n)
		clear(sc.perShard)
		prev := int64(0)
		for i := range ids {
			ids[i] = r.siteID(&prev)
		}
		if r.err == nil {
			for _, id := range ids {
				sc.perShard[shardOf(id)]++
			}
			backing := make([]site.ID, n)
			off := 0
			for i, cnt := range sc.perShard {
				if cnt > 0 {
					part(i).Sites = backing[off : off : off+cnt]
					off += cnt
				}
			}
			for _, id := range ids {
				sh := parts[shardOf(id)]
				sh.Sites = append(sh.Sites, id)
			}
		}
	}

	// Overflow groups → per-shard group slices and observation arrays,
	// each carved from one backing allocation. The group headers and
	// observation columns land in pooled scratch and are copied out.
	if groups, counts, ids, _, obs := readObsGroups(r, false, sc); groups > 0 {
		info.Observations += len(obs)
		clear(sc.perShard)
		clear(sc.perShardObs)
		for i, id := range ids {
			sh := shardOf(id)
			sc.perShard[sh]++
			sc.perShardObs[sh] += counts[i]
		}
		groupBacking := make([]cumulative.SiteObservations, groups)
		gOff := 0
		for i, cnt := range sc.perShard {
			if cnt > 0 {
				part(i).Overflow = groupBacking[gOff : gOff : gOff+cnt]
				gOff += cnt
			}
		}
		backing := sc.obsBacking(shards, sc.perShardObs)
		off := 0
		for i, id := range ids {
			sh := shardOf(id)
			dst := backing.take(sh, counts[i])
			copy(dst, obs[off:off+counts[i]])
			off += counts[i]
			p := parts[sh]
			p.Overflow = append(p.Overflow, cumulative.SiteObservations{Site: id, Obs: dst})
		}
	}

	// Dangling groups shard by allocation side.
	if groups, counts, ids, frees, obs := readObsGroups(r, true, sc); groups > 0 {
		info.Observations += len(obs)
		clear(sc.perShard)
		clear(sc.perShardObs)
		for i, id := range ids {
			sh := shardOf(id)
			sc.perShard[sh]++
			sc.perShardObs[sh] += counts[i]
		}
		groupBacking := make([]cumulative.PairObservations, groups)
		gOff := 0
		for i, cnt := range sc.perShard {
			if cnt > 0 {
				part(i).Dangling = groupBacking[gOff : gOff : gOff+cnt]
				gOff += cnt
			}
		}
		backing := sc.obsBacking(shards, sc.perShardObs)
		off := 0
		for i, id := range ids {
			sh := shardOf(id)
			dst := backing.take(sh, counts[i])
			copy(dst, obs[off:off+counts[i]])
			off += counts[i]
			p := parts[sh]
			p.Dangling = append(p.Dangling, cumulative.PairObservations{Alloc: id, Free: frees[i], Obs: dst})
		}
	}

	if n := r.count(2, "pad hint"); n > 0 && r.err == nil {
		hints := sc.pads(n)
		clear(sc.perShard)
		prev := int64(0)
		for i := range hints {
			hints[i].Site = r.siteID(&prev)
			hints[i].Pad = r.pad()
		}
		if r.err == nil {
			for _, h := range hints {
				sc.perShard[shardOf(h.Site)]++
			}
			backing := make([]cumulative.PadHint, n)
			off := 0
			for i, cnt := range sc.perShard {
				if cnt > 0 {
					part(i).PadHints = backing[off : off : off+cnt]
					off += cnt
				}
			}
			for _, h := range hints {
				sh := parts[shardOf(h.Site)]
				sh.PadHints = append(sh.PadHints, h)
			}
		}
	}
	if n := r.count(3, "deferral hint"); n > 0 && r.err == nil {
		hints := sc.deferrals(n)
		clear(sc.perShard)
		prev := int64(0)
		for i := range hints {
			hints[i].Alloc = r.siteID(&prev)
			hints[i].Free = r.freeSite()
			hints[i].Deferral = r.uvarint()
		}
		if r.err == nil {
			for _, h := range hints {
				sc.perShard[shardOf(h.Alloc)]++
			}
			backing := make([]cumulative.DeferralHint, n)
			off := 0
			for i, cnt := range sc.perShard {
				if cnt > 0 {
					part(i).DeferralHints = backing[off : off : off+cnt]
					off += cnt
				}
			}
			for _, h := range hints {
				sh := parts[shardOf(h.Alloc)]
				sh.DeferralHints = append(sh.DeferralHints, h)
			}
		}
	}
	if err := r.finish(); err != nil {
		return info, nil, err
	}

	// Counters ride exactly one part.
	if runs != 0 || failed != 0 || corrupt != 0 {
		carrier := (*cumulative.Snapshot)(nil)
		for _, p := range parts {
			if p != nil {
				carrier = p
				break
			}
		}
		if carrier == nil {
			carrier = part(0)
		}
		carrier.Runs, carrier.FailedRuns, carrier.CorruptRuns = runs, failed, corrupt
	}
	return info, parts, nil
}

// shardScratch recycles the transient index arrays a sharded decode
// needs, so the steady-state ingest path allocates only its outputs.
type shardScratch struct {
	perShard    []int
	perShardObs []int
	idBuf       []site.ID
	freeBuf     []site.ID
	countBuf    []int
	obsBuf      []cumulative.Observation
	padBuf      []cumulative.PadHint
	defBuf      []cumulative.DeferralHint
	obsOff      []int
}

var scratchPool = sync.Pool{New: func() any { return &shardScratch{} }}

func getScratch(shards int) *shardScratch {
	sc := scratchPool.Get().(*shardScratch)
	if cap(sc.perShard) < shards {
		sc.perShard = make([]int, shards)
		sc.perShardObs = make([]int, shards)
		sc.obsOff = make([]int, shards)
	}
	sc.perShard = sc.perShard[:shards]
	sc.perShardObs = sc.perShardObs[:shards]
	sc.obsOff = sc.obsOff[:shards]
	return sc
}

func putScratch(sc *shardScratch) { scratchPool.Put(sc) }

func (sc *shardScratch) ids(n int) []site.ID {
	if cap(sc.idBuf) < n {
		sc.idBuf = make([]site.ID, n)
	}
	return sc.idBuf[:n]
}

func (sc *shardScratch) frees(n int) []site.ID {
	if cap(sc.freeBuf) < n {
		sc.freeBuf = make([]site.ID, n)
	}
	return sc.freeBuf[:n]
}

func (sc *shardScratch) counts(n int) []int {
	if cap(sc.countBuf) < n {
		sc.countBuf = make([]int, n)
	}
	return sc.countBuf[:n]
}

func (sc *shardScratch) obs(n int) []cumulative.Observation {
	if cap(sc.obsBuf) < n {
		sc.obsBuf = make([]cumulative.Observation, n)
	}
	return sc.obsBuf[:n]
}

func (sc *shardScratch) pads(n int) []cumulative.PadHint {
	if cap(sc.padBuf) < n {
		sc.padBuf = make([]cumulative.PadHint, n)
	}
	return sc.padBuf[:n]
}

func (sc *shardScratch) deferrals(n int) []cumulative.DeferralHint {
	if cap(sc.defBuf) < n {
		sc.defBuf = make([]cumulative.DeferralHint, n)
	}
	return sc.defBuf[:n]
}

// obsBacking carves one observation array per shard out of contiguous
// per-shard regions: take(shard, n) returns the shard's next n slots as
// a full-capacity sub-slice, so group slices within a shard stay
// adjacent but can never grow into a neighbour.
type obsBacking struct {
	buf []cumulative.Observation
	off []int
}

func (sc *shardScratch) obsBacking(shards int, perShardObs []int) obsBacking {
	total := 0
	for i, n := range perShardObs {
		sc.obsOff[i] = total
		total += n
	}
	return obsBacking{buf: make([]cumulative.Observation, total), off: sc.obsOff}
}

func (b obsBacking) take(shard, n int) []cumulative.Observation {
	off := b.off[shard]
	b.off[shard] = off + n
	return b.buf[off : off+n : off+n]
}

// PadEntry mirrors fleet.PadEntry on the codec seam.
type PadEntry struct {
	Site site.ID
	Pad  uint32
}

// DeferralEntry mirrors fleet.DeferralEntry on the codec seam.
type DeferralEntry struct {
	Alloc    site.ID
	Free     site.ID
	Deferral uint64
}

// PatchSet is the codec-neutral form of fleet.WirePatchSet: what a
// FramePatches payload carries. Entries are encoded in the order given;
// fleet.ToWire produces the canonical sorted order.
//
// Payload layout:
//
//	uvarint version | uvarint epoch
//	pads:      uvarint n | n × (svarint site delta | uvarint pad)
//	frontPads: uvarint n | n × (svarint site delta | uvarint pad)
//	deferrals: uvarint n | n × (svarint alloc delta | uvarint free | uvarint deferral)
type PatchSet struct {
	Version   uint64
	Epoch     uint64
	Pads      []PadEntry
	FrontPads []PadEntry
	Deferrals []DeferralEntry
}

// EncodePatches appends ps as a complete FramePatches frame; the
// returned bytes alias buf.
func EncodePatches(buf *Buffer, ps *PatchSet) []byte {
	start := buf.beginFrame(FramePatches)
	buf.uvarint(ps.Version)
	buf.uvarint(ps.Epoch)
	appendPadColumn(buf, ps.Pads)
	appendPadColumn(buf, ps.FrontPads)
	buf.uvarint(uint64(len(ps.Deferrals)))
	prev := int64(0)
	for _, e := range ps.Deferrals {
		buf.svarint(int64(e.Alloc) - prev)
		prev = int64(e.Alloc)
		buf.uvarint(uint64(e.Free))
		buf.uvarint(e.Deferral)
	}
	return buf.endFrame(start)
}

func appendPadColumn(buf *Buffer, entries []PadEntry) {
	buf.uvarint(uint64(len(entries)))
	prev := int64(0)
	for _, e := range entries {
		buf.svarint(int64(e.Site) - prev)
		prev = int64(e.Site)
		buf.uvarint(uint64(e.Pad))
	}
}

// DecodePatches decodes a FramePatches frame.
func DecodePatches(data []byte) (*PatchSet, error) {
	payload, err := expectFrame(data, FramePatches)
	if err != nil {
		return nil, err
	}
	r := &reader{b: payload}
	ps := &PatchSet{}
	ps.Version = r.uvarint()
	ps.Epoch = r.uvarint()
	ps.Pads = readPadColumn(r)
	ps.FrontPads = readPadColumn(r)
	if n := r.count(3, "deferral"); n > 0 {
		ps.Deferrals = make([]DeferralEntry, n)
		prev := int64(0)
		for i := range ps.Deferrals {
			ps.Deferrals[i].Alloc = r.siteID(&prev)
			ps.Deferrals[i].Free = r.freeSite()
			ps.Deferrals[i].Deferral = r.uvarint()
		}
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return ps, nil
}

func readPadColumn(r *reader) []PadEntry {
	n := r.count(2, "pad entry")
	if n == 0 {
		return nil
	}
	entries := make([]PadEntry, n)
	prev := int64(0)
	for i := range entries {
		entries[i].Site = r.siteID(&prev)
		entries[i].Pad = r.pad()
	}
	return entries
}

// DeltaOp mirrors fleet.DeltaOp on the codec seam.
type DeltaOp struct {
	Evict    []site.ID
	Snapshot *cumulative.Snapshot
}

// Delta is the codec-neutral form of fleet.SnapshotDelta: what a
// FrameDelta payload carries.
//
// Payload layout:
//
//	uvarint epoch | uvarint seq
//	u8 flags (bit0: full resync, bit1: snapshot present)
//	reqIDs: uvarint n | n × str
//	ops:    uvarint n | n × op
//	  op: u8 kind (0: snapshot payload follows; 1: eviction —
//	      uvarint n | n × svarint site delta)
//	[snapshot payload]
type Delta struct {
	Epoch    uint64
	Seq      uint64
	Full     bool
	Snapshot *cumulative.Snapshot
	Ops      []DeltaOp
	ReqIDs   []string
}

const (
	deltaFlagFull     = 1 << 0
	deltaFlagSnapshot = 1 << 1
)

const (
	deltaOpSnapshot byte = 0
	deltaOpEvict    byte = 1
)

// EncodeDelta appends d as a complete FrameDelta frame; the returned
// bytes alias buf.
func EncodeDelta(buf *Buffer, d *Delta) []byte {
	start := buf.beginFrame(FrameDelta)
	buf.uvarint(d.Epoch)
	buf.uvarint(d.Seq)
	flags := byte(0)
	if d.Full {
		flags |= deltaFlagFull
	}
	if d.Snapshot != nil {
		flags |= deltaFlagSnapshot
	}
	buf.u8(flags)
	buf.uvarint(uint64(len(d.ReqIDs)))
	for _, id := range d.ReqIDs {
		buf.str(id)
	}
	buf.uvarint(uint64(len(d.Ops)))
	for _, op := range d.Ops {
		if len(op.Evict) > 0 {
			buf.u8(deltaOpEvict)
			buf.uvarint(uint64(len(op.Evict)))
			prev := int64(0)
			for _, id := range op.Evict {
				buf.svarint(int64(id) - prev)
				prev = int64(id)
			}
			continue
		}
		buf.u8(deltaOpSnapshot)
		var snap cumulative.Snapshot
		if op.Snapshot != nil {
			snap = *op.Snapshot
		}
		appendSnapshot(buf, &snap)
	}
	if d.Snapshot != nil {
		appendSnapshot(buf, d.Snapshot)
	}
	return buf.endFrame(start)
}

// DecodeDelta decodes a FrameDelta frame.
func DecodeDelta(data []byte) (*Delta, error) {
	payload, err := expectFrame(data, FrameDelta)
	if err != nil {
		return nil, err
	}
	r := &reader{b: payload}
	d := &Delta{}
	d.Epoch = r.uvarint()
	d.Seq = r.uvarint()
	flags := r.u8()
	d.Full = flags&deltaFlagFull != 0
	if n := r.count(1, "request id"); n > 0 {
		d.ReqIDs = make([]string, n)
		for i := range d.ReqIDs {
			d.ReqIDs[i] = r.str("request id")
		}
	}
	if n := r.count(1, "delta op"); n > 0 {
		d.Ops = make([]DeltaOp, n)
		for i := range d.Ops {
			switch kind := r.u8(); kind {
			case deltaOpSnapshot:
				d.Ops[i].Snapshot = readSnapshot(r)
			case deltaOpEvict:
				ne := r.count(1, "evicted key")
				if ne > 0 {
					d.Ops[i].Evict = make([]site.ID, ne)
					prev := int64(0)
					for j := range d.Ops[i].Evict {
						d.Ops[i].Evict[j] = r.siteID(&prev)
					}
				}
			default:
				r.fail("unknown delta op kind %d", kind)
			}
			if r.err != nil {
				return nil, r.err
			}
		}
	}
	if flags&deltaFlagSnapshot != 0 {
		d.Snapshot = readSnapshot(r)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return d, nil
}

// BatchID is the binary-wire twin of cumulative.BatchID: the same
// content-addressed identity contract (WHO, WHERE in the client's
// history, WHAT), hashed over the codec's snapshot encoding instead of
// canonical JSON — an order of magnitude cheaper to stamp, which is
// what lets the cluster router split and re-stamp pieces without a
// JSON round-trip. The "v2\x00" domain separator keeps the two ID
// spaces disjoint by construction; a given uploader must stamp one
// batch's deliveries with one scheme (retries then reproduce the ID
// exactly, which is all the dedup window needs).
func BatchID(client string, wmRuns, wmObs int, s *cumulative.Snapshot) string {
	buf := GetBuffer()
	defer PutBuffer(buf)
	buf.B = append(buf.B, "v2\x00"...)
	buf.str(client)
	buf.svarint(int64(wmRuns))
	buf.svarint(int64(wmObs))
	if s != nil {
		appendSnapshot(buf, s)
	}
	sum := sha256.Sum256(buf.B)
	return hex.EncodeToString(sum[:16])
}
