package fleet

import (
	"compress/gzip"
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"exterminator/internal/cumulative"
	"exterminator/internal/report"
)

// ServerOptions configures an aggregation server.
type ServerOptions struct {
	// Shards is the evidence-store stripe count (0 = DefaultShards).
	Shards int
	// Config parameterizes the Bayesian classifier (zero = paper defaults).
	Config cumulative.Config
	// CorrectEvery triggers a synchronous correction pass once more than
	// this many ingested batches are pending, in addition to any
	// background loop. 0 means every batch (evidence is never left
	// sitting); negative disables inline correction entirely (background
	// loop only).
	CorrectEvery int
	// MaxReports bounds the retained bug-report ring (0 = 128).
	MaxReports int
	// MaxBodyBytes bounds request bodies (0 = 16 MiB).
	MaxBodyBytes int64
	// Token, when non-empty, is required as `Authorization: Bearer
	// <token>` on the write endpoints (/v1/observations, /v1/reports).
	// Reads stay open.
	Token string
	// RatePerSec enables a per-remote-host token-bucket limit on
	// /v1/observations (0 disables). Over-limit requests get 429 with a
	// Retry-After header.
	RatePerSec float64
	// RateBurst is the token-bucket capacity (0 = 2×RatePerSec, min 1).
	RateBurst int
	// JournalLen bounds the evidence journal behind GET /v1/deltas
	// (0 = 1024 batches; negative disables retention — single-node
	// deployments that nothing delta-polls then hold no snapshot
	// references, and any poll is answered with a full resync).
	// Coordinators that fall further behind than the window receive a
	// full resync.
	JournalLen int
	// DisableCorrection turns Correct into a no-op (cluster partition
	// mode): the server stores and journals evidence but never derives
	// patches. A partition holds only its ring slice of the sites, so
	// its local N would understate the Bayesian prior — only the
	// coordinator, which sees the merged pool and the true N, may run
	// the hypothesis test.
	DisableCorrection bool
}

// Server is the fleet aggregation service: sharded evidence store,
// versioned patch log, correction loop, and the HTTP API over them.
type Server struct {
	store *Store
	log   *PatchLog

	correctEvery int
	noCorrect    bool
	maxBody      int64
	pending      atomic.Int64 // batches since the last correction pass
	correctMu    sync.Mutex   // serializes correction passes
	corrections  atomic.Int64

	token   string
	limiter *rateLimiter
	limited atomic.Int64 // requests rejected with 429

	// journal records absorbed batches for GET /v1/deltas. deltaMu makes
	// (absorb into store + append to journal) atomic with respect to a
	// full-resync read: ingest holds it shared (absorbs stay concurrent
	// across shards), a full snapshot holds it exclusively, so the
	// snapshot it takes corresponds exactly to a journal position.
	journal *journal
	deltaMu sync.RWMutex

	reportMu   sync.Mutex
	reports    []*report.Report
	maxReports int
	reportSeen atomic.Int64

	start time.Time
	epoch uint64
	mux   *http.ServeMux
}

// NewServer returns a ready-to-serve aggregation server.
func NewServer(opts ServerOptions) *Server {
	cfg := opts.Config
	if cfg.C == 0 && cfg.P == 0 {
		cfg = cumulative.DefaultConfig()
	}
	burst := opts.RateBurst
	if burst <= 0 {
		burst = int(2 * opts.RatePerSec)
	}
	s := &Server{
		store:        NewStore(opts.Shards, cfg),
		log:          NewPatchLog(),
		correctEvery: opts.CorrectEvery,
		noCorrect:    opts.DisableCorrection,
		maxReports:   opts.MaxReports,
		maxBody:      opts.MaxBodyBytes,
		token:        opts.Token,
		limiter:      newRateLimiter(opts.RatePerSec, burst),
		journal:      newJournal(opts.JournalLen),
		start:        time.Now(),
		epoch:        uint64(time.Now().UnixNano()),
	}
	if s.maxReports <= 0 {
		s.maxReports = 128
	}
	if s.maxBody <= 0 {
		s.maxBody = 16 << 20
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/observations", s.handleObservations)
	mux.HandleFunc("/v1/reports", s.handleReports)
	mux.HandleFunc("/v1/patches", s.handlePatches)
	mux.HandleFunc("/v1/deltas", s.handleDeltas)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the evidence store (tests and fleetd snapshots).
func (s *Server) Store() *Store { return s.store }

// PatchLog exposes the versioned patch log.
func (s *Server) PatchLog() *PatchLog { return s.log }

// Correct runs one correction pass: rerun the Bayesian test over the
// sharded store and fold any derived patches into the versioned log. It
// returns the current version and whether it changed. Passes are
// incremental — only sites whose evidence changed since the previous
// pass are rescored (Store.Identify) — and serialize; ingest is never
// blocked by a running pass.
func (s *Server) Correct() (uint64, bool) {
	if s.noCorrect {
		// Partition mode: every derivation path — inline, background
		// loop, snapshot restore — is suppressed here, at the server, so
		// no caller can accidentally publish partition-local patches.
		return s.log.Version(), false
	}
	s.correctMu.Lock()
	defer s.correctMu.Unlock()
	s.pending.Store(0)
	s.corrections.Add(1)
	findings := s.store.Identify()
	if findings.Empty() {
		return s.log.Version(), false
	}
	return s.log.Fold(findings.Patches())
}

// RunCorrectionLoop reruns Correct every interval until ctx is done — the
// background half of "rerun the test as evidence arrives". It only pays
// for a pass when new batches actually arrived since the last one.
func (s *Server) RunCorrectionLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if s.pending.Load() > 0 {
				s.Correct()
			}
		}
	}
}

// BearerAuthorized reports whether the request carries `Authorization:
// Bearer <token>`, compared in constant time. Exported so other fleet
// tiers (the cluster coordinator) enforce exactly the same check.
func BearerAuthorized(r *http.Request, token string) bool {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	return len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) &&
		subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(token)) == 1
}

// authorize enforces the shared ingest token on write endpoints. With no
// token configured it always passes.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request) bool {
	if s.token == "" || BearerAuthorized(r, s.token) {
		return true
	}
	w.Header().Set("WWW-Authenticate", `Bearer realm="fleet"`)
	http.Error(w, "fleet: missing or invalid ingest token", http.StatusUnauthorized)
	return false
}

// throttle applies the per-remote-host token bucket to the ingest path.
func (s *Server) throttle(w http.ResponseWriter, r *http.Request) bool {
	if s.limiter == nil {
		return true
	}
	ok, wait := s.limiter.allow(limiterKey(r.RemoteAddr), time.Now())
	if ok {
		return true
	}
	s.limited.Add(1)
	secs := int64(wait/time.Second) + 1
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	http.Error(w, "fleet: ingest rate limit exceeded", http.StatusTooManyRequests)
	return false
}

func (s *Server) handleObservations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorize(w, r) || !s.throttle(w, r) {
		return
	}
	var batch ObservationBatch
	if err := DecodeJSONBody(w, r, s.maxBody, &batch); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if batch.Snapshot == nil {
		http.Error(w, "fleet: batch has no snapshot", http.StatusBadRequest)
		return
	}
	// Shared deltaMu: absorbs from many clients stay concurrent, but a
	// full-resync read (which takes it exclusively) sees store and
	// journal at one consistent point.
	s.deltaMu.RLock()
	s.store.AbsorbSnapshot(batch.Snapshot)
	s.journal.append(batch.Snapshot)
	s.deltaMu.RUnlock()
	s.store.NoteClient(batch.Client)
	version := s.log.Version()
	if n := s.pending.Add(1); s.correctEvery >= 0 && n > int64(s.correctEvery) {
		version, _ = s.Correct()
	}
	WriteJSON(w, IngestReply{
		OK:      true,
		Version: version,
		Sites:   s.store.Sites(),
		Runs:    s.store.Runs(),
	})
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		if !s.authorize(w, r) {
			return
		}
		var rep report.Report
		if err := DecodeJSONBody(w, r, s.maxBody, &rep); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.reportSeen.Add(1)
		s.reportMu.Lock()
		s.reports = append(s.reports, &rep)
		if len(s.reports) > s.maxReports {
			s.reports = append([]*report.Report(nil), s.reports[len(s.reports)-s.maxReports:]...)
		}
		s.reportMu.Unlock()
		WriteJSON(w, map[string]any{"ok": true, "retained": s.retainedReports()})
	case http.MethodGet:
		s.reportMu.Lock()
		out := append([]*report.Report{}, s.reports...)
		s.reportMu.Unlock()
		WriteJSON(w, out)
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

func (s *Server) retainedReports() int {
	s.reportMu.Lock()
	defer s.reportMu.Unlock()
	return len(s.reports)
}

func (s *Server) handlePatches(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "fleet: bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = v
	}
	ps, version := s.log.Since(since)
	wire := ToWire(ps, version)
	wire.Epoch = s.epoch
	WriteJSON(w, wire)
}

// handleDeltas serves the partition→coordinator evidence feed: the
// batches absorbed after journal position ?since=S, merged into one
// canonical snapshot. Cursors outside the retained window (or from a
// previous incarnation) are answered with a Full resync taken at a
// consistent journal position.
func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "fleet: bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = v
	}
	entries, seq, ok := s.journal.since(since)
	if !ok {
		// Full resync: exclude in-flight ingest so the snapshot matches
		// the sequence number exactly.
		s.deltaMu.Lock()
		seq = s.journal.seqNow()
		hist := s.store.Combined()
		s.deltaMu.Unlock()
		WriteJSON(w, SnapshotDelta{Epoch: s.epoch, Seq: seq, Full: true, Snapshot: hist.Snapshot()})
		return
	}
	reply := SnapshotDelta{Epoch: s.epoch, Seq: seq}
	if len(entries) > 0 {
		merged := cumulative.NewHistory(s.store.cfg)
		for _, e := range entries {
			merged.Absorb(e)
		}
		reply.Snapshot = merged.Snapshot()
	}
	WriteJSON(w, reply)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	WriteJSON(w, StatusReply{
		Version:     s.log.Version(),
		Sites:       s.store.Sites(),
		Runs:        s.store.Runs(),
		FailedRuns:  s.store.FailedRuns(),
		CorruptRuns: s.store.CorruptRuns(),
		Batches:     s.store.Batches(),
		Clients:     s.store.Clients(),
		Reports:     s.reportSeen.Load(),
		PatchLen:    s.log.Len(),
		UptimeSec:   int64(time.Since(s.start).Seconds()),
		Corrections: s.corrections.Load(),
		RateLimited: s.limited.Load(),
		DirtyKeys:   s.store.DirtyKeys(),
		Seq:         s.journal.seqNow(),
		Shards:      s.store.ShardStats(),
	})
}

// DecodeJSONBody strictly decodes one JSON document from the request,
// transparently decompressing gzip-encoded bodies (Content-Encoding:
// gzip — the client's default upload encoding). limit bounds both the
// compressed bytes read off the wire and the decompressed bytes fed to
// the decoder, so a decompression bomb cannot expand past it. Exported
// so every fleet tier (the cluster coordinator included) accepts
// exactly the request bodies fleet.Client sends.
func DecodeJSONBody(w http.ResponseWriter, r *http.Request, limit int64, dst any) error {
	var body io.Reader = http.MaxBytesReader(w, r.Body, limit)
	if enc := r.Header.Get("Content-Encoding"); enc != "" {
		if !strings.EqualFold(enc, "gzip") {
			return fmt.Errorf("fleet: unsupported Content-Encoding %q", enc)
		}
		zr, err := gzip.NewReader(body)
		if err != nil {
			return fmt.Errorf("fleet: decode gzip body: %w", err)
		}
		defer zr.Close()
		// Stream straight into the decoder — no full-body buffer — but
		// fail as soon as the decompressed stream exceeds the limit.
		body = &boundedReader{r: zr, remaining: limit + 1, limit: limit}
	}
	dec := json.NewDecoder(body)
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("fleet: decode body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("fleet: decode body: trailing data")
	}
	return nil
}

// boundedReader errors once more than limit bytes have been read — the
// decompressed-size analogue of http.MaxBytesReader, with O(1) memory.
type boundedReader struct {
	r         io.Reader
	remaining int64 // limit+1: consuming the extra byte is the violation
	limit     int64
}

func (b *boundedReader) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("fleet: decompressed body exceeds %d bytes", b.limit)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.r.Read(p)
	b.remaining -= int64(n)
	if b.remaining <= 0 && (err == nil || err == io.EOF) {
		// The stream delivered limit+1 bytes (even if it ended exactly
		// there): over the cap either way.
		err = fmt.Errorf("fleet: decompressed body exceeds %d bytes", b.limit)
	}
	return n, err
}

// WriteJSON encodes v as the response body with the JSON content type —
// the response-side twin of DecodeJSONBody, shared by every fleet tier.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// SaveSnapshot writes the combined evidence store to path in the
// cumulative persist format (write-to-temp, then rename, so a crash
// mid-write never corrupts the previous snapshot).
func (s *Server) SaveSnapshot(path string) error {
	hist := s.store.Combined()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".fleet-snap-*")
	if err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := hist.Encode(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSnapshot restores evidence from a snapshot file written by
// SaveSnapshot and runs a correction pass so the patch log is warm before
// the first poll. A missing file is not an error (fresh start).
func (s *Server) LoadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("fleet: restore: %w", err)
	}
	defer f.Close()
	hist, err := cumulative.DecodeHistory(f)
	if err != nil {
		return fmt.Errorf("fleet: restore %s: %w", path, err)
	}
	// Restored evidence enters the store without a journal entry, so any
	// journal cursor issued before this point (including 0) can no longer
	// reconstruct the store from deltas — invalidate them all, forcing
	// pollers onto the full-resync path.
	s.deltaMu.Lock()
	s.store.AbsorbHistory(hist)
	s.journal.invalidate()
	s.deltaMu.Unlock()
	s.Correct()
	return nil
}
