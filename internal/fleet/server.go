package fleet

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"crypto/subtle"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"exterminator/internal/cumulative"
	"exterminator/internal/fleet/codec"
	"exterminator/internal/report"
	"exterminator/internal/site"
	"exterminator/internal/telemetry"
	"exterminator/internal/triage"
	"exterminator/internal/version"
)

// ServerOptions configures an aggregation server.
type ServerOptions struct {
	// Shards is the evidence-store stripe count (0 = DefaultShards).
	Shards int
	// Config parameterizes the Bayesian classifier (zero = paper defaults).
	Config cumulative.Config
	// CorrectEvery triggers a synchronous correction pass once more than
	// this many ingested batches are pending, in addition to any
	// background loop. 0 means every batch (evidence is never left
	// sitting); negative disables inline correction entirely (background
	// loop only).
	CorrectEvery int
	// MaxReports bounds the retained bug-report ring (0 = 128).
	MaxReports int
	// MaxBodyBytes bounds request bodies (0 = 16 MiB).
	MaxBodyBytes int64
	// Token, when non-empty, is required as `Authorization: Bearer
	// <token>` on the write endpoints (/v1/observations, /v1/reports).
	// Reads stay open.
	Token string
	// RatePerSec enables a per-remote-host token-bucket limit on
	// /v1/observations (0 disables). Over-limit requests get 429 with a
	// Retry-After header.
	RatePerSec float64
	// RateBurst is the token-bucket capacity (0 = 2×RatePerSec, min 1).
	RateBurst int
	// JournalLen bounds the evidence journal behind GET /v1/deltas
	// (0 = 1024 batches; negative disables retention — single-node
	// deployments that nothing delta-polls then hold no snapshot
	// references, and any poll is answered with a full resync).
	// Coordinators that fall further behind than the window receive a
	// full resync.
	JournalLen int
	// CorrectWorkers is the correction pool width: how many evidence
	// shards an Identify pass rescores concurrently. 0 sizes the pool
	// elastically — min(GOMAXPROCS, Shards) — so many-core hosts use
	// their cores without the operator re-deriving the number from the
	// replica count; 1 (or negative) keeps passes serial. Findings are
	// merged in shard order, so the pool width never changes results.
	CorrectWorkers int
	// DisableCorrection turns Correct into a no-op (cluster partition
	// mode): the server stores and journals evidence but never derives
	// patches. A partition holds only its ring slice of the sites, so
	// its local N would understate the Bayesian prior — only the
	// coordinator, which sees the merged pool and the true N, may run
	// the hypothesis test.
	DisableCorrection bool
	// DedupWindow bounds the exactly-once ingest window: the number of
	// recently absorbed batch IDs retained (0 = 4096; negative disables
	// dedup entirely). An upload stamped with a batch ID already in the
	// window is acknowledged without being re-absorbed, so a client
	// retrying after a lost ack cannot double-count evidence. The window
	// is persisted in snapshots, so the guarantee survives restarts.
	DedupWindow int
	// Triage configures the triage engine behind GET /v1/triage
	// (clustered top-offender rankings) and its webhook alerter. The
	// zero value serves rankings with alerting off. Partition-mode
	// servers (DisableCorrection) skip triage passes for the same
	// reason they skip correction — a ring slice's local view would
	// mis-rank — and serve empty rankings.
	Triage triage.Config
	// Metrics is the telemetry registry the server instruments into and
	// serves on GET /metrics (nil = a fresh private registry — /metrics
	// still works, nothing else shares it).
	Metrics *telemetry.Registry
	// Logger receives the server's structured log stream (ingest,
	// dedup/stale/eviction decisions, correction passes, snapshots), each
	// record carrying the upload's X-Request-ID correlation field where
	// one applies. Nil discards.
	Logger *slog.Logger
}

// Server is the fleet aggregation service: sharded evidence store,
// versioned patch log, correction loop, and the HTTP API over them.
type Server struct {
	store  *Store
	log    *PatchLog
	triage *triage.Engine // nil in partition mode

	correctEvery int
	noCorrect    bool
	maxBody      int64
	pending      atomic.Int64 // batches since the last correction pass
	correctMu    sync.Mutex   // serializes correction passes
	corrections  atomic.Int64

	token   string
	limiter *rateLimiter
	limited atomic.Int64 // requests rejected with 429

	// dedup is the exactly-once ingest window (nil when disabled). IDs
	// are admitted *before* the absorb, so a concurrent duplicate is
	// acked while the first delivery is still folding in.
	dedup   *dedupWindow
	deduped atomic.Int64 // batches acked as duplicates without absorbing

	// ringVersion is the required cluster membership version (0 = none
	// announced; versioned uploads below it are rejected with 409 +
	// StaleRing). It is only ever raised — under deltaMu exclusively, so
	// an ingest that passed the check before a rebalance's announcement
	// either lands before the announce completes (and is then drained by
	// the eviction that follows it) or re-checks under the shared lock
	// and is rejected. evictions/evicts back POST /v1/evict.
	ringVersion atomic.Uint64
	evictions   atomic.Int64
	evicts      *evictCache

	// journal records absorbed batches for GET /v1/deltas. deltaMu makes
	// (absorb into store + append to journal) atomic with respect to a
	// full-resync read: ingest holds it shared (absorbs stay concurrent
	// across shards), a full snapshot holds it exclusively, so the
	// snapshot it takes corresponds exactly to a journal position.
	journal *journal
	deltaMu sync.RWMutex

	reportMu   sync.Mutex
	reports    []*report.Report
	maxReports int
	reportSeen atomic.Int64

	reg     *telemetry.Registry
	metrics serverMetrics
	logger  *slog.Logger

	start time.Time
	epoch uint64
	mux   *http.ServeMux
}

// serverMetrics is the fleet server's instrument set (see
// docs/OBSERVABILITY.md for the full reference).
type serverMetrics struct {
	batches      *telemetry.Counter
	v2Batches    *telemetry.Counter
	observations *telemetry.Counter
	runs         *telemetry.Counter
	wireBytes    *telemetry.Counter
	bodyBytes    *telemetry.Counter
	dedupHits    *telemetry.Counter
	staleRing    *telemetry.Counter
	rateLimited  *telemetry.Counter
	unauthorized *telemetry.Counter
	evictions    *telemetry.Counter
	corrections  *telemetry.Counter
	ingestSec    *telemetry.Histogram
	identifySec  *telemetry.Histogram
	correctSec   *telemetry.Histogram
}

// register instruments the server into reg: the ingest counter set, the
// identify/correct latency histograms, and scrape-time gauges over the
// live store/journal/patch-log state.
func (m *serverMetrics) register(reg *telemetry.Registry, s *Server) {
	m.batches = reg.Counter("fleet_ingest_batches_total",
		"Observation batches absorbed (duplicates and rejections excluded).")
	m.v2Batches = reg.Counter("fleet_ingest_v2_batches_total",
		"Batches that arrived as v2 binary frames (subset of fleet_ingest_batches_total).")
	m.observations = reg.Counter("fleet_ingest_observations_total",
		"Individual overflow/dangling observations absorbed.")
	m.runs = reg.Counter("fleet_ingest_runs_total",
		"Run-counter increments absorbed with batches.")
	m.wireBytes = reg.Counter("fleet_ingest_wire_bytes_total",
		"Ingest request-body bytes read off the wire (compressed when the client gzips).")
	m.bodyBytes = reg.Counter("fleet_ingest_body_bytes_total",
		"Ingest request-body bytes after decompression; divide wire by body for the gzip ratio.")
	m.dedupHits = reg.Counter("fleet_dedup_hits_total",
		"Uploads acknowledged as duplicates without being re-absorbed (exactly-once window hits).")
	m.staleRing = reg.Counter("fleet_stale_ring_rejects_total",
		"Uploads rejected with 409 for being split under an outdated cluster membership.")
	m.rateLimited = reg.Counter("fleet_rate_limited_total",
		"Uploads rejected with 429 by the per-host token bucket.")
	m.unauthorized = reg.Counter("fleet_unauthorized_total",
		"Write requests rejected with 401 (missing or invalid ingest token).")
	m.evictions = reg.Counter("fleet_evictions_total",
		"Rebalance drains served via POST /v1/evict (cache hits included).")
	m.corrections = reg.Counter("fleet_corrections_total",
		"Completed correction passes.")
	m.ingestSec = reg.Histogram("fleet_ingest_seconds",
		"POST /v1/observations handling latency in seconds.", nil)
	m.identifySec = reg.Histogram("fleet_identify_seconds",
		"Incremental Bayesian identify latency per correction pass, in seconds.", nil)
	m.correctSec = reg.Histogram("fleet_correct_seconds",
		"Whole correction-pass latency (identify + patch fold), in seconds.", nil)
	reg.GaugeFunc("fleet_dirty_keys",
		"Evidence keys the next correction pass must rescore (recompute backlog).",
		func() float64 { return float64(s.store.DirtyKeys()) })
	reg.GaugeFunc("fleet_journal_seq",
		"Evidence journal sequence number (the cursor coordinators poll with).",
		func() float64 { return float64(s.journal.seqNow()) })
	reg.GaugeFunc("fleet_journal_entries",
		"Evidence journal entries currently retained (delta-poll window depth).",
		func() float64 { return float64(s.journal.length()) })
	reg.GaugeFunc("fleet_patch_version",
		"Patch log version.",
		func() float64 { return float64(s.log.Version()) })
	reg.GaugeFunc("fleet_patch_entries",
		"Patch log entry count.",
		func() float64 { return float64(s.log.Len()) })
	reg.GaugeFunc("fleet_evidence_sites",
		"Distinct allocation sites in the evidence store (N in the Bayesian prior).",
		func() float64 { return float64(s.store.Sites()) })
	reg.GaugeFunc("fleet_evidence_runs",
		"Fleet-wide run count in the evidence store.",
		func() float64 { return float64(s.store.Runs()) })
	telemetry.RegisterBuildInfo(reg)
}

// NewServer returns a ready-to-serve aggregation server.
func NewServer(opts ServerOptions) *Server {
	cfg := opts.Config
	if cfg.C == 0 && cfg.P == 0 {
		cfg = cumulative.DefaultConfig()
	}
	burst := opts.RateBurst
	if burst <= 0 {
		burst = int(2 * opts.RatePerSec)
	}
	s := &Server{
		store:        NewStore(opts.Shards, cfg),
		log:          NewPatchLog(),
		correctEvery: opts.CorrectEvery,
		noCorrect:    opts.DisableCorrection,
		maxReports:   opts.MaxReports,
		maxBody:      opts.MaxBodyBytes,
		token:        opts.Token,
		limiter:      newRateLimiter(opts.RatePerSec, burst),
		dedup:        newDedupWindow(opts.DedupWindow),
		evicts:       newEvictCache(0),
		journal:      newJournal(opts.JournalLen),
		reg:          opts.Metrics,
		logger:       opts.Logger,
		start:        time.Now(),
		epoch:        uint64(time.Now().UnixNano()),
	}
	if s.maxReports <= 0 {
		s.maxReports = 128
	}
	if s.maxBody <= 0 {
		s.maxBody = 16 << 20
	}
	switch {
	case opts.CorrectWorkers == 0:
		s.store.SetIdentifyWorkers(min(runtime.GOMAXPROCS(0), s.store.NumShards()))
	case opts.CorrectWorkers > 1:
		s.store.SetIdentifyWorkers(opts.CorrectWorkers)
	}
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	if !s.noCorrect {
		tcfg := opts.Triage
		tcfg.Source = "fleetd"
		s.triage = triage.New(tcfg)
		s.triage.SetLogger(s.logger)
		s.triage.SetMetrics(s.reg)
	}
	s.logger = s.logger.With("component", "fleet")
	s.metrics.register(s.reg, s)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/observations", s.handleObservations)
	mux.HandleFunc("/v1/reports", s.handleReports)
	mux.HandleFunc("/v1/patches", s.handlePatches)
	mux.HandleFunc("/v1/deltas", s.handleDeltas)
	mux.HandleFunc("/v1/evict", s.handleEvict)
	mux.HandleFunc("/v1/ring", s.handleRing)
	mux.HandleFunc("/v1/status", s.handleStatus)
	// s.triage may be a typed nil (partition mode): Engine.ServeHTTP is
	// nil-receiver-safe and answers with an empty ranking.
	mux.Handle("/v1/triage", s.triage)
	mux.Handle("/v1/triage/", s.triage)
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the registry the server instruments into (fleetd also
// serves it on the -debug-addr listener).
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Store exposes the evidence store (tests and fleetd snapshots).
func (s *Server) Store() *Store { return s.store }

// PatchLog exposes the versioned patch log.
func (s *Server) PatchLog() *PatchLog { return s.log }

// Correct runs one correction pass: rerun the Bayesian test over the
// sharded store and fold any derived patches into the versioned log. It
// returns the current version and whether it changed. Passes are
// incremental — only sites whose evidence changed since the previous
// pass are rescored (Store.Identify) — and serialize; ingest is never
// blocked by a running pass.
func (s *Server) Correct() (uint64, bool) {
	if s.noCorrect {
		// Partition mode: every derivation path — inline, background
		// loop, snapshot restore — is suppressed here, at the server, so
		// no caller can accidentally publish partition-local patches.
		return s.log.Version(), false
	}
	s.correctMu.Lock()
	defer s.correctMu.Unlock()
	start := time.Now()
	defer s.metrics.correctSec.ObserveSince(start)
	s.pending.Store(0)
	s.corrections.Add(1)
	s.metrics.corrections.Inc()
	identifyStart := time.Now()
	//extlint:ignore lockio correctMu exists to serialize whole correction passes; the elastic identify pool's WaitGroup joins CPU-bound stripe scorers, not IO, and the serial pass held the lock for the same work
	findings := s.store.Identify()
	s.metrics.identifySec.ObserveSince(identifyStart)
	changed := false
	if findings.Empty() {
		s.logger.Debug("correction pass: no findings",
			"version", s.log.Version(), "durationSec", time.Since(start).Seconds())
	} else {
		var v uint64
		if v, changed = s.log.Fold(findings.Patches()); changed {
			s.logger.Info("correction pass derived patches",
				"version", v, "patchEntries", s.log.Len(), "durationSec", time.Since(start).Seconds())
		}
	}
	// Triage rides the correction pass: cluster the rescored candidates
	// against the patch log the pass just folded. Still under correctMu,
	// so passes (and their lifecycle transitions) stay serialized.
	s.triagePass()
	return s.log.Version(), changed
}

// triagePass folds the store's current per-site candidates into the
// triage engine. No-op in partition mode.
func (s *Server) triagePass() {
	if s.triage == nil {
		return
	}
	over, dang := s.store.TriageCandidates()
	ps, _ := s.log.Since(0)
	s.triage.Pass(triage.PassInput{
		Overflows: over,
		Danglings: dang,
		Patches:   ps,
		Threshold: s.store.Threshold(),
	})
}

// Triage exposes the triage engine (nil in partition mode).
func (s *Server) Triage() *triage.Engine { return s.triage }

// RunCorrectionLoop reruns Correct every interval until ctx is done — the
// background half of "rerun the test as evidence arrives". It only pays
// for a pass when new batches actually arrived since the last one.
func (s *Server) RunCorrectionLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if s.pending.Load() > 0 {
				s.Correct()
			}
			// Alert delivery is decoupled from passes: due retries
			// drain every tick even when no new evidence arrived.
			s.triage.DeliverAlerts(ctx)
		}
	}
}

// BearerAuthorized reports whether the request carries `Authorization:
// Bearer <token>`, compared in constant time. Exported so other fleet
// tiers (the cluster coordinator) enforce exactly the same check.
func BearerAuthorized(r *http.Request, token string) bool {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	return len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) &&
		subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(token)) == 1
}

// authorize enforces the shared ingest token on write endpoints. With no
// token configured it always passes.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request) bool {
	if s.token == "" || BearerAuthorized(r, s.token) {
		return true
	}
	s.metrics.unauthorized.Inc()
	s.logger.Warn("unauthorized write rejected",
		"path", r.URL.Path, "remote", r.RemoteAddr, "requestId", r.Header.Get(RequestIDHeader))
	w.Header().Set("WWW-Authenticate", `Bearer realm="fleet"`)
	http.Error(w, "fleet: missing or invalid ingest token", http.StatusUnauthorized)
	return false
}

// throttle applies the per-remote-host token bucket to the ingest path.
func (s *Server) throttle(w http.ResponseWriter, r *http.Request) bool {
	if s.limiter == nil {
		return true
	}
	ok, wait := s.limiter.allow(limiterKey(r.RemoteAddr), time.Now())
	if ok {
		return true
	}
	s.limited.Add(1)
	s.metrics.rateLimited.Inc()
	secs := int64(wait/time.Second) + 1
	s.logger.Warn("ingest rate limited",
		"remote", r.RemoteAddr, "retryAfterSec", secs, "requestId", r.Header.Get(RequestIDHeader))
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	http.Error(w, "fleet: ingest rate limit exceeded", http.StatusTooManyRequests)
	return false
}

// requestID extracts the upload's X-Request-ID correlation field,
// minting one for requests that arrive without it (legacy clients), so
// every ingest log record and journal entry carries a grep-able handle.
func requestID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get(RequestIDHeader)); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		return id
	}
	return telemetry.NewRequestID()
}

// EchoRequestID extracts (or mints) the request's correlation ID and
// echoes it on the response — the read-path half of the X-Request-ID
// contract, so failed fetches grep across tiers just like uploads.
// Exported so the cluster coordinator's read handlers share it.
func EchoRequestID(w http.ResponseWriter, r *http.Request) string {
	id := requestID(r)
	w.Header().Set(RequestIDHeader, id)
	return id
}

func (s *Server) handleObservations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	defer s.metrics.ingestSec.ObserveSince(start)
	if !s.authorize(w, r) || !s.throttle(w, r) {
		return
	}
	reqID := requestID(r)
	w.Header().Set(RequestIDHeader, reqID)
	if CodecForContentType(r.Header.Get("Content-Type")) == V2Codec {
		s.ingestV2(w, r, reqID)
		return
	}
	var batch ObservationBatch
	wireBytes, bodyBytes, err := decodeBodyMetered(w, r, s.maxBody, &batch)
	s.metrics.wireBytes.Add(float64(wireBytes))
	s.metrics.bodyBytes.Add(float64(bodyBytes))
	if err != nil {
		s.logger.Warn("ingest body rejected", "requestId", reqID, "error", err.Error())
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if batch.Snapshot == nil {
		http.Error(w, "fleet: batch has no snapshot", http.StatusBadRequest)
		return
	}
	// Exactly-once ingest: a batch whose content-addressed ID is already
	// in the dedup window was absorbed by an earlier delivery whose ack
	// was lost — acknowledge it (Duplicate set) without re-absorbing.
	// Unstamped batches (legacy clients) skip the window and stay
	// at-least-once. The duplicate check comes BEFORE the stale-ring
	// check: a retry of a batch absorbed before a rebalance must ack as
	// a duplicate (its evidence was drained to the new owner), not make
	// the client re-split and double-deliver it.
	if batch.BatchID != "" && s.dedup != nil && s.dedup.has(batch.BatchID) {
		s.ackDuplicate(w, &batch, reqID)
		return
	}
	// Cheap pre-check; the authoritative stale-ring check runs under the
	// shared deltaMu below, ordered against the rebalance announcement.
	if s.writeIfStale(w, &batch, reqID) {
		return
	}
	// Shared deltaMu: absorbs from many clients stay concurrent, but a
	// full-resync read (which takes it exclusively) sees store and
	// journal at one consistent point — and the ring-version requirement
	// (raised exclusively) is re-checked here, so no stale batch can slip
	// in behind a rebalance's drain.
	s.deltaMu.RLock()
	if s.writeIfStale(w, &batch, reqID) {
		s.deltaMu.RUnlock()
		return
	}
	if batch.BatchID != "" && s.dedup != nil && !s.dedup.admit(batch.BatchID) {
		s.deltaMu.RUnlock()
		s.ackDuplicate(w, &batch, reqID)
		return
	}
	s.store.AbsorbSnapshot(batch.Snapshot)
	seq := s.journal.append(batch.Snapshot, reqID)
	s.deltaMu.RUnlock()
	s.store.NoteClient(batch.Client)
	obs := SnapshotObservations(batch.Snapshot)
	s.metrics.batches.Inc()
	s.metrics.observations.Add(float64(obs))
	s.metrics.runs.Add(float64(batch.Snapshot.Runs))
	s.logger.Info("ingest absorbed",
		"requestId", reqID, "batchId", batch.BatchID, "client", batch.Client,
		"runs", batch.Snapshot.Runs, "observations", obs, "seq", seq,
		"wireBytes", wireBytes, "bodyBytes", bodyBytes)
	version := s.log.Version()
	if n := s.pending.Add(1); s.correctEvery >= 0 && n > int64(s.correctEvery) {
		version, _ = s.Correct()
	}
	WriteJSON(w, IngestReply{
		OK:          true,
		RequestID:   reqID,
		Version:     version,
		Sites:       s.store.Sites(),
		Runs:        s.store.Runs(),
		RingVersion: s.ringVersion.Load(),
	})
}

// ingestV2 is the binary-wire ingest path: the frame is decoded
// straight into per-shard sub-snapshots along the store's own stripes
// (codec.DecodeBatchSharded keyed by Store.ShardIndex) — no
// intermediate merged snapshot, no re-split under the ingest lock, and
// the whole decode runs before deltaMu is even touched, so decoding
// cost never extends lock hold time. The exactly-once window, the
// stale-ring fence and the journal discipline are identical to the v1
// path; only the wire format and the absorb shape differ. Replies stay
// JSON on every ingest response (success and failure), v2 or not.
func (s *Server) ingestV2(w http.ResponseWriter, r *http.Request, reqID string) {
	buf := codec.GetBuffer()
	wireBytes, bodyBytes, err := readBodyMetered(w, r, s.maxBody, buf)
	s.metrics.wireBytes.Add(float64(wireBytes))
	s.metrics.bodyBytes.Add(float64(bodyBytes))
	if err != nil {
		codec.PutBuffer(buf)
		s.logger.Warn("ingest body rejected", "requestId", reqID, "error", err.Error())
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	info, parts, err := codec.DecodeBatchSharded(buf.B, s.store.NumShards(), s.store.ShardIndex)
	codec.PutBuffer(buf) // decoded values never alias the frame bytes
	if err != nil {
		s.logger.Warn("ingest v2 frame rejected", "requestId", reqID, "error", err.Error())
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !info.HasSnapshot {
		http.Error(w, "fleet: batch has no snapshot", http.StatusBadRequest)
		return
	}
	// stub carries the batch's identity fields through the same dedup /
	// stale-ring / ack helpers the v1 path uses.
	stub := &ObservationBatch{Client: info.Client, BatchID: info.BatchID, RingVersion: info.RingVersion}
	if stub.BatchID != "" && s.dedup != nil && s.dedup.has(stub.BatchID) {
		s.ackDuplicate(w, stub, reqID)
		return
	}
	if s.writeIfStale(w, stub, reqID) {
		return
	}
	s.deltaMu.RLock()
	if s.writeIfStale(w, stub, reqID) {
		s.deltaMu.RUnlock()
		return
	}
	if stub.BatchID != "" && s.dedup != nil && !s.dedup.admit(stub.BatchID) {
		s.deltaMu.RUnlock()
		s.ackDuplicate(w, stub, reqID)
		return
	}
	s.store.AbsorbParts(parts)
	seq := s.journal.appendParts(parts, reqID)
	s.deltaMu.RUnlock()
	s.store.NoteClient(info.Client)
	s.metrics.batches.Inc()
	s.metrics.v2Batches.Inc()
	s.metrics.observations.Add(float64(info.Observations))
	s.metrics.runs.Add(float64(info.Runs))
	s.logger.Info("ingest absorbed",
		"requestId", reqID, "batchId", info.BatchID, "client", info.Client,
		"runs", info.Runs, "observations", info.Observations, "seq", seq,
		"wireBytes", wireBytes, "bodyBytes", bodyBytes, "wire", "v2")
	version := s.log.Version()
	if n := s.pending.Add(1); s.correctEvery >= 0 && n > int64(s.correctEvery) {
		version, _ = s.Correct()
	}
	WriteJSON(w, IngestReply{
		OK:          true,
		RequestID:   reqID,
		Version:     version,
		Sites:       s.store.Sites(),
		Runs:        s.store.Runs(),
		RingVersion: s.ringVersion.Load(),
	})
}

// ackDuplicate acknowledges a batch the dedup window already holds,
// without re-absorbing it.
func (s *Server) ackDuplicate(w http.ResponseWriter, batch *ObservationBatch, reqID string) {
	s.deduped.Add(1)
	s.metrics.dedupHits.Inc()
	s.logger.Info("ingest duplicate acknowledged",
		"requestId", reqID, "batchId", batch.BatchID, "client", batch.Client)
	WriteJSON(w, IngestReply{
		OK:          true,
		Duplicate:   true,
		RequestID:   reqID,
		Version:     s.log.Version(),
		Sites:       s.store.Sites(),
		Runs:        s.store.Runs(),
		RingVersion: s.ringVersion.Load(),
	})
}

// writeIfStale rejects a versioned batch split under an older membership
// than this partition requires (409 + StaleRing), reporting whether it
// wrote the response. Unversioned batches always pass.
func (s *Server) writeIfStale(w http.ResponseWriter, batch *ObservationBatch, reqID string) bool {
	cur := s.ringVersion.Load()
	if batch.RingVersion == 0 || cur == 0 || batch.RingVersion >= cur {
		return false
	}
	s.metrics.staleRing.Inc()
	s.logger.Warn("stale-ring upload rejected",
		"requestId", reqID, "batchId", batch.BatchID, "client", batch.Client,
		"batchRingVersion", batch.RingVersion, "requiredRingVersion", cur)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusConflict)
	json.NewEncoder(w).Encode(IngestReply{StaleRing: true, RequestID: reqID, RingVersion: cur})
	return true
}

// RequireRingVersion raises the partition's required membership version
// (it never regresses) and returns the version now in force. The raise
// is ordered against ingest through deltaMu: once it returns, every
// in-flight stale batch has either fully absorbed (and will be drained
// by the eviction that follows the announcement) or will be rejected.
func (s *Server) RequireRingVersion(v uint64) uint64 {
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	if cur := s.ringVersion.Load(); v > cur {
		s.ringVersion.Store(v)
	}
	return s.ringVersion.Load()
}

// handleRing is the rebalance announcement endpoint: POST /v1/ring
// {version} raises the required membership version.
func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorize(w, r) {
		return
	}
	var upd RingUpdate
	if err := DecodeJSONBody(w, r, s.maxBody, &upd); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if upd.Version == 0 {
		http.Error(w, "fleet: ring version must be positive", http.StatusBadRequest)
		return
	}
	v := s.RequireRingVersion(upd.Version)
	s.logger.Info("ring version announced", "announced", upd.Version, "required", v)
	WriteJSON(w, RingReply{OK: true, Version: v})
}

// Evict atomically removes and returns the canonical evidence for a key
// set (a rebalance drain), journaling the removal so delta pollers see
// it; with counters set it also drains the global run counters into the
// snapshot (a node leaving the cluster takes its totals with it). The
// extraction is exclusive against ingest (deltaMu), so the returned
// snapshot plus the remaining store partition the evidence exactly.
// Results are cached under token: re-evicting with the same token
// returns the original snapshot without touching the store, which is
// what makes a crashed coordinator's re-drive lossless.
func (s *Server) Evict(token string, keys []site.ID, counters bool) (snap *cumulative.Snapshot, cached bool) {
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	if prev, ok := s.evicts.get(token); ok {
		return prev, true
	}
	snap = s.store.Extract(keys)
	switch {
	case counters:
		r, f, cr := s.store.DrainCounters()
		snap.Runs, snap.FailedRuns, snap.CorruptRuns = int(r), int(f), int(cr)
		// Counter movement cannot be expressed as a journal op (run
		// counters only ever add), so a journal replay from before this
		// point would re-count the drained runs if the node ever rejoins.
		// Invalidate every cursor instead: pollers full-resync against
		// the post-drain store, which is the truth.
		s.journal.invalidate()
	case len(keys) > 0:
		// Empty key drains (nothing to move) need no journal entry —
		// there is no removal for a mirror to apply.
		s.journal.appendEvict(keys)
	}
	s.evicts.put(token, snap)
	s.evictions.Add(1)
	s.metrics.evictions.Inc()
	s.logger.Info("rebalance drain served",
		"token", token, "keys", len(keys), "counters", counters)
	return snap, false
}

// handleEvict serves POST /v1/evict (see Evict). It is a write endpoint:
// token-authenticated when the server has an ingest token.
func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorize(w, r) {
		return
	}
	var req EvictRequest
	if err := DecodeJSONBody(w, r, s.maxBody, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Token == "" {
		http.Error(w, "fleet: evict needs an idempotency token", http.StatusBadRequest)
		return
	}
	snap, cached := s.Evict(req.Token, req.Keys, req.Counters)
	WriteJSON(w, EvictReply{OK: true, Cached: cached, Evicted: snap, RingVersion: s.ringVersion.Load()})
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		if !s.authorize(w, r) {
			return
		}
		var rep report.Report
		if err := DecodeJSONBody(w, r, s.maxBody, &rep); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Clients redact before upload; redacting again here keeps the
		// retained set clean even for hand-rolled uploaders.
		report.Redact(&rep)
		s.feedTriageFrames(&rep)
		s.reportSeen.Add(1)
		s.reportMu.Lock()
		s.reports = append(s.reports, &rep)
		if len(s.reports) > s.maxReports {
			s.reports = append([]*report.Report(nil), s.reports[len(s.reports)-s.maxReports:]...)
		}
		s.reportMu.Unlock()
		WriteJSON(w, map[string]any{"ok": true, "retained": s.retainedReports()})
	case http.MethodGet:
		s.reportMu.Lock()
		out := append([]*report.Report{}, s.reports...)
		s.reportMu.Unlock()
		WriteJSON(w, out)
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// feedTriageFrames hands a report's structured site provenance to the
// triage engine: recorded call stacks are what upgrade site-hash
// clusters into signature clusters.
func (s *Server) feedTriageFrames(rep *report.Report) {
	if s.triage == nil {
		return
	}
	for _, f := range rep.Findings {
		for _, t := range f.Sites {
			s.triage.RecordFrames(t.Site, t.Frames)
		}
	}
}

func (s *Server) retainedReports() int {
	s.reportMu.Lock()
	defer s.reportMu.Unlock()
	return len(s.reports)
}

func (s *Server) handlePatches(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "fleet: bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = v
	}
	reqID := EchoRequestID(w, r)
	ps, version := s.log.Since(since)
	if MatchETag(w, r, PatchETag(s.epoch, version)) {
		s.logger.Debug("patches revalidated (304)",
			"since", since, "version", version, "requestId", reqID)
		return
	}
	wire := ToWire(ps, version)
	wire.Epoch = s.epoch
	s.logger.Debug("patches served",
		"since", since, "version", version, "entries", ps.Len(), "requestId", reqID)
	WritePatchSet(w, r, wire)
}

// handleDeltas serves the partition→coordinator evidence feed: the
// batches absorbed after journal position ?since=S, merged into one
// canonical snapshot. Cursors outside the retained window (or from a
// previous incarnation) are answered with a Full resync taken at a
// consistent journal position.
func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "fleet: bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = v
	}
	reqID := EchoRequestID(w, r)
	entries, seq, ok := s.journal.since(since)
	if !ok {
		// Full resync: exclude in-flight ingest so the snapshot matches
		// the sequence number exactly.
		s.deltaMu.Lock()
		seq = s.journal.seqNow()
		hist := s.store.Combined()
		s.deltaMu.Unlock()
		s.logger.Info("delta poll answered with full resync",
			"since", since, "seq", seq, "requestId", reqID)
		WriteSnapshotDelta(w, r, &SnapshotDelta{Epoch: s.epoch, Seq: seq, Full: true, Snapshot: hist.Snapshot()})
		return
	}
	reply := SnapshotDelta{Epoch: s.epoch, Seq: seq}
	// Carry the window's correlation IDs so the coordinator's delta log
	// lines up with this partition's ingest log, upload by upload.
	for _, e := range entries {
		if e.reqID != "" && len(reply.ReqIDs) < maxDeltaReqIDs {
			reply.ReqIDs = append(reply.ReqIDs, e.reqID)
		}
	}
	// Merge runs of consecutive additions; a rebalance eviction breaks
	// the run (ordering matters: evidence added before the drain was
	// drained, evidence added after it was not). Windows without
	// evictions keep the legacy single-snapshot shape.
	var ops []DeltaOp
	var merged *cumulative.History
	flush := func() {
		if merged != nil {
			ops = append(ops, DeltaOp{Snapshot: merged.Snapshot()})
			merged = nil
		}
	}
	hasEvict := false
	for _, e := range entries {
		if len(e.evict) > 0 {
			hasEvict = true
			flush()
			ops = append(ops, DeltaOp{Evict: e.evict})
			continue
		}
		if merged == nil {
			merged = cumulative.NewHistory(s.store.cfg)
		}
		if e.snap != nil {
			merged.Absorb(e.snap)
		}
		// v2 uploads are journaled pre-split; Absorb is commutative over
		// the parts' disjoint key sets, so folding them one by one equals
		// folding the original batch.
		for _, p := range e.parts {
			merged.Absorb(p)
		}
	}
	flush()
	switch {
	case hasEvict:
		reply.Ops = ops
	case len(ops) == 1:
		reply.Snapshot = ops[0].Snapshot
	}
	s.logger.Debug("deltas served",
		"since", since, "seq", seq, "entries", len(entries), "requestId", reqID)
	WriteSnapshotDelta(w, r, &reply)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reqID := EchoRequestID(w, r)
	s.logger.Debug("status served", "requestId", reqID)
	WriteJSON(w, StatusReply{
		Build:       version.String(),
		Version:     s.log.Version(),
		Sites:       s.store.Sites(),
		Runs:        s.store.Runs(),
		FailedRuns:  s.store.FailedRuns(),
		CorruptRuns: s.store.CorruptRuns(),
		Batches:     s.store.Batches(),
		Clients:     s.store.Clients(),
		Reports:     s.reportSeen.Load(),
		PatchLen:    s.log.Len(),
		UptimeSec:   int64(time.Since(s.start).Seconds()),
		Corrections: s.corrections.Load(),
		RateLimited: s.limited.Load(),
		DirtyKeys:   s.store.DirtyKeys(),
		Deduped:     s.deduped.Load(),
		Seq:         s.journal.seqNow(),
		RingVersion: s.ringVersion.Load(),
		Evictions:   s.evictions.Load(),
		Shards:      s.store.ShardStats(),
	})
}

// DecodeJSONBody strictly decodes one JSON document from the request,
// transparently decompressing gzip-encoded bodies (Content-Encoding:
// gzip — the client's default upload encoding). limit bounds both the
// compressed bytes read off the wire and the decompressed bytes fed to
// the decoder, so a decompression bomb cannot expand past it. Exported
// so every fleet tier (the cluster coordinator included) accepts
// exactly the request bodies fleet.Client sends.
func DecodeJSONBody(w http.ResponseWriter, r *http.Request, limit int64, dst any) error {
	_, _, err := decodeBodyMetered(w, r, limit, dst)
	return err
}

// decodeBodyMetered is DecodeJSONBody additionally reporting the bytes
// read off the wire (compressed, when the client gzips) and the decoded
// body bytes fed to the JSON decoder — the pair behind the ingest
// byte/gzip-ratio metrics. Byte counts are valid even on error (they
// cover whatever was consumed before the failure).
func decodeBodyMetered(w http.ResponseWriter, r *http.Request, limit int64, dst any) (wireBytes, bodyBytes int64, err error) {
	wire := &countReader{r: http.MaxBytesReader(w, r.Body, limit)}
	var body io.Reader = wire
	gz := false
	if enc := r.Header.Get("Content-Encoding"); enc != "" {
		if !strings.EqualFold(enc, "gzip") {
			return wire.n, wire.n, fmt.Errorf("fleet: unsupported Content-Encoding %q", enc)
		}
		zr, zerr := gzip.NewReader(body)
		if zerr != nil {
			return wire.n, 0, fmt.Errorf("fleet: decode gzip body: %w", zerr)
		}
		defer zr.Close()
		// Stream straight into the decoder — no full-body buffer — but
		// fail as soon as the decompressed stream exceeds the limit.
		body = &boundedReader{r: zr, remaining: limit + 1, limit: limit}
		gz = true
	}
	decoded := &countReader{r: body}
	dec := json.NewDecoder(decoded)
	bytesRead := func() (int64, int64) {
		if gz {
			return wire.n, decoded.n
		}
		return wire.n, wire.n
	}
	if err := dec.Decode(dst); err != nil {
		wireBytes, bodyBytes = bytesRead()
		return wireBytes, bodyBytes, fmt.Errorf("fleet: decode body: %w", err)
	}
	if dec.More() {
		wireBytes, bodyBytes = bytesRead()
		return wireBytes, bodyBytes, fmt.Errorf("fleet: decode body: trailing data")
	}
	wireBytes, bodyBytes = bytesRead()
	return wireBytes, bodyBytes, nil
}

// readBodyMetered reads a raw (non-JSON) request body into buf,
// applying the same wire/decompression limits and byte accounting as
// decodeBodyMetered: limit bounds both the compressed bytes and the
// decompressed expansion, and the returned counts are valid even on
// error. The v2 ingest path uses it to land a whole binary frame in one
// pooled buffer before decoding.
func readBodyMetered(w http.ResponseWriter, r *http.Request, limit int64, buf *codec.Buffer) (wireBytes, bodyBytes int64, err error) {
	wire := &countReader{r: http.MaxBytesReader(w, r.Body, limit)}
	var body io.Reader = wire
	gz := false
	if enc := r.Header.Get("Content-Encoding"); enc != "" {
		if !strings.EqualFold(enc, "gzip") {
			return wire.n, wire.n, fmt.Errorf("fleet: unsupported Content-Encoding %q", enc)
		}
		zr, zerr := gzip.NewReader(body)
		if zerr != nil {
			return wire.n, 0, fmt.Errorf("fleet: decode gzip body: %w", zerr)
		}
		defer zr.Close()
		body = &boundedReader{r: zr, remaining: limit + 1, limit: limit}
		gz = true
	}
	decoded := &countReader{r: body}
	for {
		if len(buf.B) == cap(buf.B) {
			buf.B = append(buf.B, 0)[:len(buf.B)]
		}
		n, rerr := decoded.Read(buf.B[len(buf.B):cap(buf.B)])
		buf.B = buf.B[:len(buf.B)+n]
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			if !gz {
				return wire.n, wire.n, fmt.Errorf("fleet: read body: %w", rerr)
			}
			return wire.n, decoded.n, fmt.Errorf("fleet: read body: %w", rerr)
		}
	}
	if gz {
		return wire.n, decoded.n, nil
	}
	return wire.n, wire.n, nil
}

// countReader counts the bytes read through it.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// boundedReader errors once more than limit bytes have been read — the
// decompressed-size analogue of http.MaxBytesReader, with O(1) memory.
type boundedReader struct {
	r         io.Reader
	remaining int64 // limit+1: consuming the extra byte is the violation
	limit     int64
}

func (b *boundedReader) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("fleet: decompressed body exceeds %d bytes", b.limit)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.r.Read(p)
	b.remaining -= int64(n)
	if b.remaining <= 0 && (err == nil || err == io.EOF) {
		// The stream delivered limit+1 bytes (even if it ended exactly
		// there): over the cap either way.
		err = fmt.Errorf("fleet: decompressed body exceeds %d bytes", b.limit)
	}
	return n, err
}

// WriteJSON encodes v as the response body with the JSON content type —
// the response-side twin of DecodeJSONBody, shared by every fleet tier.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Fleet snapshot container: the dedup window, the required ring version,
// the rebalance evict cache, and the evidence store in the cumulative
// persist format. Persisting the window alongside the evidence is what
// carries exactly-once ingest across restarts: a batch absorbed before
// the snapshot and retried after the restore is still recognized as a
// duplicate. Plain cumulative history files (what SaveSnapshot wrote
// before the container existed) still load, with an empty window;
// version-1 containers (pre-rebalancing) load with ring version 0 and an
// empty evict cache.
const (
	fleetSnapMagic   = 0x4E534658 // "XFSN" little-endian
	fleetSnapVersion = 2
	// maxSnapIDs bounds decoded dedup IDs against corrupt files.
	maxSnapIDs = 1 << 20
	// maxSnapEvicts/maxEvictBytes bound the decoded evict cache.
	maxSnapEvicts = 1 << 10
	maxEvictBytes = 1 << 28
)

// fleetSnapState is everything SaveSnapshot persists, captured at one
// consistent point.
type fleetSnapState struct {
	ids    []string
	ring   uint64
	evicts []evictEntry
	hist   *cumulative.History
}

// SaveSnapshot writes the combined evidence store, the dedup window, the
// required ring version and the evict cache to path (write-to-temp, then
// rename, so a crash mid-write never corrupts the previous snapshot).
// The whole state is captured under deltaMu held exclusively, so the
// dedup IDs correspond exactly to the evidence: no batch can slip
// between the two captures, which is what makes restore-and-retry
// lossless (an ID in the window without its evidence would make the
// server drop the retry as a duplicate).
func (s *Server) SaveSnapshot(path string) error {
	s.deltaMu.Lock()
	st := fleetSnapState{
		hist: s.store.Combined(),
		ring: s.ringVersion.Load(),
	}
	if s.dedup != nil {
		st.ids = s.dedup.ids()
	}
	st.evicts = s.evicts.entries()
	s.deltaMu.Unlock()

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".fleet-snap-*")
	if err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := writeFleetSnapshot(tmp, st); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSnapshot restores evidence (and the dedup window) from a snapshot
// file written by SaveSnapshot and runs a correction pass so the patch
// log is warm before the first poll. A missing file is not an error
// (fresh start); a pre-container file (bare cumulative history) restores
// with an empty dedup window.
func (s *Server) LoadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("fleet: restore: %w", err)
	}
	defer f.Close()
	st, err := readFleetSnapshot(f)
	if err != nil {
		return fmt.Errorf("fleet: restore %s: %w", path, err)
	}
	if s.dedup != nil {
		s.dedup.restore(st.ids)
	}
	s.evicts.restore(st.evicts)
	if st.ring > 0 {
		s.RequireRingVersion(st.ring)
	}
	// Restored evidence enters the store without a journal entry, so any
	// journal cursor issued before this point (including 0) can no longer
	// reconstruct the store from deltas — invalidate them all, forcing
	// pollers onto the full-resync path.
	s.deltaMu.Lock()
	s.store.AbsorbHistory(st.hist)
	s.journal.invalidate()
	s.deltaMu.Unlock()
	s.Correct()
	return nil
}

// writeFleetSnapshot emits the container: magic, version, ring version,
// evict cache, dedup IDs, then the history in the cumulative persist
// format.
func writeFleetSnapshot(w io.Writer, st fleetSnapState) error {
	bw := bufio.NewWriter(w)
	u32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	u32(fleetSnapMagic)
	u32(fleetSnapVersion)
	binary.Write(bw, binary.LittleEndian, st.ring)
	u32(uint32(len(st.evicts)))
	for _, e := range st.evicts {
		blob, err := json.Marshal(e.Snap)
		if err != nil {
			return err
		}
		u32(uint32(len(e.Token)))
		bw.WriteString(e.Token)
		u32(uint32(len(blob)))
		bw.Write(blob)
	}
	u32(uint32(len(st.ids)))
	for _, id := range st.ids {
		u32(uint32(len(id)))
		bw.WriteString(id)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return st.hist.Encode(w)
}

// readFleetSnapshot decodes a container written by writeFleetSnapshot —
// any supported version — or a legacy bare cumulative history file
// (empty window, ring version 0).
func readFleetSnapshot(r io.Reader) (fleetSnapState, error) {
	var st fleetSnapState
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return st, err
	}
	if binary.LittleEndian.Uint32(head) != fleetSnapMagic {
		st.hist, err = cumulative.DecodeHistory(br)
		return st, err
	}
	var magic, version uint32
	read := func(v *uint32) {
		if err == nil {
			err = binary.Read(br, binary.LittleEndian, v)
		}
	}
	readStr := func(limit uint32, what string) string {
		var l uint32
		read(&l)
		if err == nil && l > limit {
			err = fmt.Errorf("implausible %s length %d", what, l)
		}
		if err != nil {
			return ""
		}
		// Copy instead of a trusting make([]byte, l): a forged length
		// prefix must fail with a short read, not a huge allocation.
		var buf bytes.Buffer
		if _, rerr := io.CopyN(&buf, br, int64(l)); rerr != nil {
			err = rerr
			return ""
		}
		return buf.String()
	}
	read(&magic)
	read(&version)
	if err != nil {
		return st, err
	}
	if version < 1 || version > fleetSnapVersion {
		return st, fmt.Errorf("unsupported fleet snapshot version %d", version)
	}
	if version >= 2 {
		if err = binary.Read(br, binary.LittleEndian, &st.ring); err != nil {
			return st, err
		}
		var ne uint32
		read(&ne)
		if err == nil && ne > maxSnapEvicts {
			err = fmt.Errorf("implausible evict cache size %d", ne)
		}
		for i := uint32(0); err == nil && i < ne; i++ {
			tok := readStr(1024, "evict token")
			blob := readStr(maxEvictBytes, "evict snapshot")
			if err != nil {
				break
			}
			var snap cumulative.Snapshot
			if jerr := json.Unmarshal([]byte(blob), &snap); jerr != nil {
				err = jerr
				break
			}
			st.evicts = append(st.evicts, evictEntry{Token: tok, Snap: &snap})
		}
		if err != nil {
			return st, fmt.Errorf("fleet snapshot evict cache: %w", err)
		}
	}
	var n uint32
	read(&n)
	if err != nil {
		return st, err
	}
	if n > maxSnapIDs {
		return st, fmt.Errorf("implausible dedup id count %d", n)
	}
	for i := uint32(0); i < n; i++ {
		id := readStr(1024, "dedup id")
		if err != nil {
			return st, fmt.Errorf("fleet snapshot dedup id: %w", err)
		}
		st.ids = append(st.ids, id)
	}
	st.hist, err = cumulative.DecodeHistory(br)
	return st, err
}
