package fleet

import (
	"bufio"
	"compress/gzip"
	"context"
	"crypto/subtle"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"exterminator/internal/cumulative"
	"exterminator/internal/report"
)

// ServerOptions configures an aggregation server.
type ServerOptions struct {
	// Shards is the evidence-store stripe count (0 = DefaultShards).
	Shards int
	// Config parameterizes the Bayesian classifier (zero = paper defaults).
	Config cumulative.Config
	// CorrectEvery triggers a synchronous correction pass once more than
	// this many ingested batches are pending, in addition to any
	// background loop. 0 means every batch (evidence is never left
	// sitting); negative disables inline correction entirely (background
	// loop only).
	CorrectEvery int
	// MaxReports bounds the retained bug-report ring (0 = 128).
	MaxReports int
	// MaxBodyBytes bounds request bodies (0 = 16 MiB).
	MaxBodyBytes int64
	// Token, when non-empty, is required as `Authorization: Bearer
	// <token>` on the write endpoints (/v1/observations, /v1/reports).
	// Reads stay open.
	Token string
	// RatePerSec enables a per-remote-host token-bucket limit on
	// /v1/observations (0 disables). Over-limit requests get 429 with a
	// Retry-After header.
	RatePerSec float64
	// RateBurst is the token-bucket capacity (0 = 2×RatePerSec, min 1).
	RateBurst int
	// JournalLen bounds the evidence journal behind GET /v1/deltas
	// (0 = 1024 batches; negative disables retention — single-node
	// deployments that nothing delta-polls then hold no snapshot
	// references, and any poll is answered with a full resync).
	// Coordinators that fall further behind than the window receive a
	// full resync.
	JournalLen int
	// DisableCorrection turns Correct into a no-op (cluster partition
	// mode): the server stores and journals evidence but never derives
	// patches. A partition holds only its ring slice of the sites, so
	// its local N would understate the Bayesian prior — only the
	// coordinator, which sees the merged pool and the true N, may run
	// the hypothesis test.
	DisableCorrection bool
	// DedupWindow bounds the exactly-once ingest window: the number of
	// recently absorbed batch IDs retained (0 = 4096; negative disables
	// dedup entirely). An upload stamped with a batch ID already in the
	// window is acknowledged without being re-absorbed, so a client
	// retrying after a lost ack cannot double-count evidence. The window
	// is persisted in snapshots, so the guarantee survives restarts.
	DedupWindow int
}

// Server is the fleet aggregation service: sharded evidence store,
// versioned patch log, correction loop, and the HTTP API over them.
type Server struct {
	store *Store
	log   *PatchLog

	correctEvery int
	noCorrect    bool
	maxBody      int64
	pending      atomic.Int64 // batches since the last correction pass
	correctMu    sync.Mutex   // serializes correction passes
	corrections  atomic.Int64

	token   string
	limiter *rateLimiter
	limited atomic.Int64 // requests rejected with 429

	// dedup is the exactly-once ingest window (nil when disabled). IDs
	// are admitted *before* the absorb, so a concurrent duplicate is
	// acked while the first delivery is still folding in.
	dedup   *dedupWindow
	deduped atomic.Int64 // batches acked as duplicates without absorbing

	// journal records absorbed batches for GET /v1/deltas. deltaMu makes
	// (absorb into store + append to journal) atomic with respect to a
	// full-resync read: ingest holds it shared (absorbs stay concurrent
	// across shards), a full snapshot holds it exclusively, so the
	// snapshot it takes corresponds exactly to a journal position.
	journal *journal
	deltaMu sync.RWMutex

	reportMu   sync.Mutex
	reports    []*report.Report
	maxReports int
	reportSeen atomic.Int64

	start time.Time
	epoch uint64
	mux   *http.ServeMux
}

// NewServer returns a ready-to-serve aggregation server.
func NewServer(opts ServerOptions) *Server {
	cfg := opts.Config
	if cfg.C == 0 && cfg.P == 0 {
		cfg = cumulative.DefaultConfig()
	}
	burst := opts.RateBurst
	if burst <= 0 {
		burst = int(2 * opts.RatePerSec)
	}
	s := &Server{
		store:        NewStore(opts.Shards, cfg),
		log:          NewPatchLog(),
		correctEvery: opts.CorrectEvery,
		noCorrect:    opts.DisableCorrection,
		maxReports:   opts.MaxReports,
		maxBody:      opts.MaxBodyBytes,
		token:        opts.Token,
		limiter:      newRateLimiter(opts.RatePerSec, burst),
		dedup:        newDedupWindow(opts.DedupWindow),
		journal:      newJournal(opts.JournalLen),
		start:        time.Now(),
		epoch:        uint64(time.Now().UnixNano()),
	}
	if s.maxReports <= 0 {
		s.maxReports = 128
	}
	if s.maxBody <= 0 {
		s.maxBody = 16 << 20
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/observations", s.handleObservations)
	mux.HandleFunc("/v1/reports", s.handleReports)
	mux.HandleFunc("/v1/patches", s.handlePatches)
	mux.HandleFunc("/v1/deltas", s.handleDeltas)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the evidence store (tests and fleetd snapshots).
func (s *Server) Store() *Store { return s.store }

// PatchLog exposes the versioned patch log.
func (s *Server) PatchLog() *PatchLog { return s.log }

// Correct runs one correction pass: rerun the Bayesian test over the
// sharded store and fold any derived patches into the versioned log. It
// returns the current version and whether it changed. Passes are
// incremental — only sites whose evidence changed since the previous
// pass are rescored (Store.Identify) — and serialize; ingest is never
// blocked by a running pass.
func (s *Server) Correct() (uint64, bool) {
	if s.noCorrect {
		// Partition mode: every derivation path — inline, background
		// loop, snapshot restore — is suppressed here, at the server, so
		// no caller can accidentally publish partition-local patches.
		return s.log.Version(), false
	}
	s.correctMu.Lock()
	defer s.correctMu.Unlock()
	s.pending.Store(0)
	s.corrections.Add(1)
	findings := s.store.Identify()
	if findings.Empty() {
		return s.log.Version(), false
	}
	return s.log.Fold(findings.Patches())
}

// RunCorrectionLoop reruns Correct every interval until ctx is done — the
// background half of "rerun the test as evidence arrives". It only pays
// for a pass when new batches actually arrived since the last one.
func (s *Server) RunCorrectionLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if s.pending.Load() > 0 {
				s.Correct()
			}
		}
	}
}

// BearerAuthorized reports whether the request carries `Authorization:
// Bearer <token>`, compared in constant time. Exported so other fleet
// tiers (the cluster coordinator) enforce exactly the same check.
func BearerAuthorized(r *http.Request, token string) bool {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	return len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) &&
		subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(token)) == 1
}

// authorize enforces the shared ingest token on write endpoints. With no
// token configured it always passes.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request) bool {
	if s.token == "" || BearerAuthorized(r, s.token) {
		return true
	}
	w.Header().Set("WWW-Authenticate", `Bearer realm="fleet"`)
	http.Error(w, "fleet: missing or invalid ingest token", http.StatusUnauthorized)
	return false
}

// throttle applies the per-remote-host token bucket to the ingest path.
func (s *Server) throttle(w http.ResponseWriter, r *http.Request) bool {
	if s.limiter == nil {
		return true
	}
	ok, wait := s.limiter.allow(limiterKey(r.RemoteAddr), time.Now())
	if ok {
		return true
	}
	s.limited.Add(1)
	secs := int64(wait/time.Second) + 1
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	http.Error(w, "fleet: ingest rate limit exceeded", http.StatusTooManyRequests)
	return false
}

func (s *Server) handleObservations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorize(w, r) || !s.throttle(w, r) {
		return
	}
	var batch ObservationBatch
	if err := DecodeJSONBody(w, r, s.maxBody, &batch); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if batch.Snapshot == nil {
		http.Error(w, "fleet: batch has no snapshot", http.StatusBadRequest)
		return
	}
	// Exactly-once ingest: a batch whose content-addressed ID is already
	// in the dedup window was absorbed by an earlier delivery whose ack
	// was lost — acknowledge it (Duplicate set) without re-absorbing.
	// Unstamped batches (legacy clients) skip the window and stay
	// at-least-once.
	if batch.BatchID != "" && s.dedup != nil && !s.dedup.admit(batch.BatchID) {
		s.deduped.Add(1)
		WriteJSON(w, IngestReply{
			OK:        true,
			Duplicate: true,
			Version:   s.log.Version(),
			Sites:     s.store.Sites(),
			Runs:      s.store.Runs(),
		})
		return
	}
	// Shared deltaMu: absorbs from many clients stay concurrent, but a
	// full-resync read (which takes it exclusively) sees store and
	// journal at one consistent point.
	s.deltaMu.RLock()
	s.store.AbsorbSnapshot(batch.Snapshot)
	s.journal.append(batch.Snapshot)
	s.deltaMu.RUnlock()
	s.store.NoteClient(batch.Client)
	version := s.log.Version()
	if n := s.pending.Add(1); s.correctEvery >= 0 && n > int64(s.correctEvery) {
		version, _ = s.Correct()
	}
	WriteJSON(w, IngestReply{
		OK:      true,
		Version: version,
		Sites:   s.store.Sites(),
		Runs:    s.store.Runs(),
	})
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		if !s.authorize(w, r) {
			return
		}
		var rep report.Report
		if err := DecodeJSONBody(w, r, s.maxBody, &rep); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.reportSeen.Add(1)
		s.reportMu.Lock()
		s.reports = append(s.reports, &rep)
		if len(s.reports) > s.maxReports {
			s.reports = append([]*report.Report(nil), s.reports[len(s.reports)-s.maxReports:]...)
		}
		s.reportMu.Unlock()
		WriteJSON(w, map[string]any{"ok": true, "retained": s.retainedReports()})
	case http.MethodGet:
		s.reportMu.Lock()
		out := append([]*report.Report{}, s.reports...)
		s.reportMu.Unlock()
		WriteJSON(w, out)
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

func (s *Server) retainedReports() int {
	s.reportMu.Lock()
	defer s.reportMu.Unlock()
	return len(s.reports)
}

func (s *Server) handlePatches(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "fleet: bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = v
	}
	ps, version := s.log.Since(since)
	wire := ToWire(ps, version)
	wire.Epoch = s.epoch
	WriteJSON(w, wire)
}

// handleDeltas serves the partition→coordinator evidence feed: the
// batches absorbed after journal position ?since=S, merged into one
// canonical snapshot. Cursors outside the retained window (or from a
// previous incarnation) are answered with a Full resync taken at a
// consistent journal position.
func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "fleet: bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = v
	}
	entries, seq, ok := s.journal.since(since)
	if !ok {
		// Full resync: exclude in-flight ingest so the snapshot matches
		// the sequence number exactly.
		s.deltaMu.Lock()
		seq = s.journal.seqNow()
		hist := s.store.Combined()
		s.deltaMu.Unlock()
		WriteJSON(w, SnapshotDelta{Epoch: s.epoch, Seq: seq, Full: true, Snapshot: hist.Snapshot()})
		return
	}
	reply := SnapshotDelta{Epoch: s.epoch, Seq: seq}
	if len(entries) > 0 {
		merged := cumulative.NewHistory(s.store.cfg)
		for _, e := range entries {
			merged.Absorb(e)
		}
		reply.Snapshot = merged.Snapshot()
	}
	WriteJSON(w, reply)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	WriteJSON(w, StatusReply{
		Version:     s.log.Version(),
		Sites:       s.store.Sites(),
		Runs:        s.store.Runs(),
		FailedRuns:  s.store.FailedRuns(),
		CorruptRuns: s.store.CorruptRuns(),
		Batches:     s.store.Batches(),
		Clients:     s.store.Clients(),
		Reports:     s.reportSeen.Load(),
		PatchLen:    s.log.Len(),
		UptimeSec:   int64(time.Since(s.start).Seconds()),
		Corrections: s.corrections.Load(),
		RateLimited: s.limited.Load(),
		DirtyKeys:   s.store.DirtyKeys(),
		Deduped:     s.deduped.Load(),
		Seq:         s.journal.seqNow(),
		Shards:      s.store.ShardStats(),
	})
}

// DecodeJSONBody strictly decodes one JSON document from the request,
// transparently decompressing gzip-encoded bodies (Content-Encoding:
// gzip — the client's default upload encoding). limit bounds both the
// compressed bytes read off the wire and the decompressed bytes fed to
// the decoder, so a decompression bomb cannot expand past it. Exported
// so every fleet tier (the cluster coordinator included) accepts
// exactly the request bodies fleet.Client sends.
func DecodeJSONBody(w http.ResponseWriter, r *http.Request, limit int64, dst any) error {
	var body io.Reader = http.MaxBytesReader(w, r.Body, limit)
	if enc := r.Header.Get("Content-Encoding"); enc != "" {
		if !strings.EqualFold(enc, "gzip") {
			return fmt.Errorf("fleet: unsupported Content-Encoding %q", enc)
		}
		zr, err := gzip.NewReader(body)
		if err != nil {
			return fmt.Errorf("fleet: decode gzip body: %w", err)
		}
		defer zr.Close()
		// Stream straight into the decoder — no full-body buffer — but
		// fail as soon as the decompressed stream exceeds the limit.
		body = &boundedReader{r: zr, remaining: limit + 1, limit: limit}
	}
	dec := json.NewDecoder(body)
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("fleet: decode body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("fleet: decode body: trailing data")
	}
	return nil
}

// boundedReader errors once more than limit bytes have been read — the
// decompressed-size analogue of http.MaxBytesReader, with O(1) memory.
type boundedReader struct {
	r         io.Reader
	remaining int64 // limit+1: consuming the extra byte is the violation
	limit     int64
}

func (b *boundedReader) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("fleet: decompressed body exceeds %d bytes", b.limit)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.r.Read(p)
	b.remaining -= int64(n)
	if b.remaining <= 0 && (err == nil || err == io.EOF) {
		// The stream delivered limit+1 bytes (even if it ended exactly
		// there): over the cap either way.
		err = fmt.Errorf("fleet: decompressed body exceeds %d bytes", b.limit)
	}
	return n, err
}

// WriteJSON encodes v as the response body with the JSON content type —
// the response-side twin of DecodeJSONBody, shared by every fleet tier.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Fleet snapshot container (version 1): the dedup window followed by the
// evidence store in the cumulative persist format. Persisting the window
// alongside the evidence is what carries exactly-once ingest across
// restarts: a batch absorbed before the snapshot and retried after the
// restore is still recognized as a duplicate. Plain cumulative history
// files (what SaveSnapshot wrote before the container existed) still
// load, with an empty window.
const (
	fleetSnapMagic   = 0x4E534658 // "XFSN" little-endian
	fleetSnapVersion = 1
	// maxSnapIDs bounds decoded dedup IDs against corrupt files.
	maxSnapIDs = 1 << 20
)

// SaveSnapshot writes the combined evidence store plus the dedup window
// to path (write-to-temp, then rename, so a crash mid-write never
// corrupts the previous snapshot). The evidence is captured before the
// dedup IDs: ingest admits a batch's ID before absorbing it, so every
// batch whose evidence made the snapshot has its ID in the window by
// the time the IDs are read. A batch racing the snapshot is then at
// worst dropped on restore-and-retry (its ID in the snapshot, its
// evidence not), never double-counted — the opposite capture order
// would invert that into a double count.
func (s *Server) SaveSnapshot(path string) error {
	hist := s.store.Combined()
	var ids []string
	if s.dedup != nil {
		ids = s.dedup.ids()
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".fleet-snap-*")
	if err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := writeFleetSnapshot(tmp, ids, hist); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSnapshot restores evidence (and the dedup window) from a snapshot
// file written by SaveSnapshot and runs a correction pass so the patch
// log is warm before the first poll. A missing file is not an error
// (fresh start); a pre-container file (bare cumulative history) restores
// with an empty dedup window.
func (s *Server) LoadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("fleet: restore: %w", err)
	}
	defer f.Close()
	ids, hist, err := readFleetSnapshot(f)
	if err != nil {
		return fmt.Errorf("fleet: restore %s: %w", path, err)
	}
	if s.dedup != nil {
		s.dedup.restore(ids)
	}
	// Restored evidence enters the store without a journal entry, so any
	// journal cursor issued before this point (including 0) can no longer
	// reconstruct the store from deltas — invalidate them all, forcing
	// pollers onto the full-resync path.
	s.deltaMu.Lock()
	s.store.AbsorbHistory(hist)
	s.journal.invalidate()
	s.deltaMu.Unlock()
	s.Correct()
	return nil
}

// writeFleetSnapshot emits the container: magic, version, dedup IDs,
// then the history in the cumulative persist format.
func writeFleetSnapshot(w io.Writer, ids []string, hist *cumulative.History) error {
	bw := bufio.NewWriter(w)
	u32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	u32(fleetSnapMagic)
	u32(fleetSnapVersion)
	u32(uint32(len(ids)))
	for _, id := range ids {
		u32(uint32(len(id)))
		bw.WriteString(id)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return hist.Encode(w)
}

// readFleetSnapshot decodes a container written by writeFleetSnapshot,
// or a legacy bare cumulative history file (empty ID set).
func readFleetSnapshot(r io.Reader) ([]string, *cumulative.History, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, nil, err
	}
	if binary.LittleEndian.Uint32(head) != fleetSnapMagic {
		hist, err := cumulative.DecodeHistory(br)
		return nil, hist, err
	}
	var magic, version, n uint32
	read := func(v *uint32) {
		if err == nil {
			err = binary.Read(br, binary.LittleEndian, v)
		}
	}
	read(&magic)
	read(&version)
	read(&n)
	if err != nil {
		return nil, nil, err
	}
	if version < 1 || version > fleetSnapVersion {
		return nil, nil, fmt.Errorf("unsupported fleet snapshot version %d", version)
	}
	if n > maxSnapIDs {
		return nil, nil, fmt.Errorf("implausible dedup id count %d", n)
	}
	ids := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		var l uint32
		read(&l)
		if err != nil || l > 1024 {
			if err == nil {
				err = errors.New("implausible dedup id length")
			}
			return nil, nil, fmt.Errorf("fleet snapshot dedup id: %w", err)
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, nil, err
		}
		ids = append(ids, string(buf))
	}
	hist, err := cumulative.DecodeHistory(br)
	return ids, hist, err
}
