package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"exterminator/internal/cumulative"
	"exterminator/internal/site"
)

// rebalanceTestSnapshot builds a small batch with deterministic keys.
func rebalanceTestSnapshot(salt int) *cumulative.Snapshot {
	s := &cumulative.Snapshot{C: 4, P: 0.5, Runs: 2, FailedRuns: 1, CorruptRuns: 1}
	for i := 0; i < 6; i++ {
		id := site.ID(0x4000 + uint32(salt*16+i))
		s.Sites = append(s.Sites, id)
		s.Overflow = append(s.Overflow, cumulative.SiteObservations{
			Site: id,
			Obs:  []cumulative.Observation{{X: 0.25, Y: i%2 == 0}},
		})
	}
	s.PadHints = append(s.PadHints, cumulative.PadHint{Site: s.Sites[0], Pad: uint32(8 + salt)})
	s.Dangling = append(s.Dangling, cumulative.PairObservations{
		Alloc: s.Sites[1], Free: site.ID(0x9000),
		Obs: []cumulative.Observation{{X: 0.5, Y: true}},
	})
	s.DeferralHints = append(s.DeferralHints, cumulative.DeferralHint{
		Alloc: s.Sites[1], Free: site.ID(0x9000), Deferral: 64,
	})
	return s
}

// TestStaleRingRejectionOrdering pins the ingest decision order that
// makes rebalancing safe: (1) a duplicate of a batch absorbed before the
// membership bump acks as Duplicate — rejecting it as stale would make
// the client re-split and double-deliver evidence the drain already
// moved; (2) a NEW batch under the old ring is rejected with 409 +
// StaleRing and not absorbed; (3) the requirement never regresses; (4)
// unversioned batches are always accepted.
func TestStaleRingRejectionOrdering(t *testing.T) {
	ctx := context.Background()
	srv := NewServer(ServerOptions{CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, "c1")

	first := &ObservationBatch{Snapshot: rebalanceTestSnapshot(1), BatchID: "batch-1", RingVersion: 1}
	if _, err := c.PushBatchContext(ctx, first); err != nil {
		t.Fatalf("versioned push with no requirement set: %v", err)
	}
	if got := srv.Store().Batches(); got != 1 {
		t.Fatalf("batches = %d, want 1", got)
	}

	reply, err := c.AnnounceRing(ctx, 2)
	if err != nil || reply.Version != 2 {
		t.Fatalf("announce: %v, %+v", err, reply)
	}

	// Lost-ack retry of the pre-rebalance batch: duplicate, never stale.
	r, err := c.PushBatchContext(ctx, first)
	if err != nil {
		t.Fatalf("retry of pre-rebalance batch: %v", err)
	}
	if !r.Duplicate {
		t.Fatal("pre-rebalance retry was not deduped")
	}
	if got := srv.Store().Batches(); got != 1 {
		t.Fatalf("duplicate was absorbed: batches = %d", got)
	}

	// A fresh batch still split under the old ring bounces.
	staleBatch := &ObservationBatch{Snapshot: rebalanceTestSnapshot(2), BatchID: "batch-2", RingVersion: 1}
	_, err = c.PushBatchContext(ctx, staleBatch)
	var sre *StaleRingError
	if !errors.As(err, &sre) {
		t.Fatalf("stale push error = %v, want StaleRingError", err)
	}
	if sre.Required != 2 {
		t.Fatalf("stale error requires v%d, want 2", sre.Required)
	}
	if got := srv.Store().Batches(); got != 1 {
		t.Fatalf("stale batch was absorbed: batches = %d", got)
	}

	// Re-split under the current ring: accepted.
	staleBatch.RingVersion = 2
	if _, err := c.PushBatchContext(ctx, staleBatch); err != nil {
		t.Fatalf("current-ring push: %v", err)
	}

	// The requirement never regresses.
	if reply, err = c.AnnounceRing(ctx, 1); err != nil || reply.Version != 2 {
		t.Fatalf("regressive announce: %v, %+v", err, reply)
	}

	// Legacy unversioned uploads stay accepted.
	if _, err := c.PushSnapshot(rebalanceTestSnapshot(3)); err != nil {
		t.Fatalf("unversioned push: %v", err)
	}
	if got := srv.Store().Batches(); got != 3 {
		t.Fatalf("batches = %d, want 3", got)
	}
	st, err := c.Status()
	if err != nil || st.RingVersion != 2 {
		t.Fatalf("status ring version: %v, %+v", err, st)
	}
}

// TestEvictExtractsJournalsAndCaches: POST /v1/evict atomically removes
// and returns a key set's evidence, journals the removal for delta
// pollers (as an ordered op), and replays the original result for a
// repeated token — the crash-re-drive contract.
func TestEvictExtractsJournalsAndCaches(t *testing.T) {
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()
	srv := NewServer(ServerOptions{Config: cfg, CorrectEvery: -1, DisableCorrection: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, "c1")

	batch := rebalanceTestSnapshot(1)
	if _, err := c.PushSnapshot(batch); err != nil {
		t.Fatal(err)
	}
	// Establish a delta cursor before the eviction.
	d0, err := c.Deltas(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}

	moved := []site.ID{batch.Sites[0], batch.Sites[1]}
	reply, err := c.EvictKeys(ctx, "tok-1", moved, false)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Cached {
		t.Fatal("first evict reported cached")
	}
	if got := len(reply.Evicted.Overflow); got != 2 {
		t.Fatalf("evicted %d overflow keys, want 2", got)
	}
	if len(reply.Evicted.Dangling) != 1 || len(reply.Evicted.PadHints) != 1 || len(reply.Evicted.DeferralHints) != 1 {
		t.Fatalf("evicted snapshot incomplete: %+v", reply.Evicted)
	}
	if got, want := srv.Store().Sites(), len(batch.Sites)-2; got != want {
		t.Fatalf("store sites after evict = %d, want %d", got, want)
	}

	// Same token again — the cached original, even though the store moved on.
	if _, err := c.PushSnapshot(rebalanceTestSnapshot(7)); err != nil {
		t.Fatal(err)
	}
	again, err := c.EvictKeys(ctx, "tok-1", nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("re-evict with the same token was not served from cache")
	}
	b1, _ := json.Marshal(reply.Evicted)
	b2, _ := json.Marshal(again.Evicted)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached evict result differs:\n%s\n%s", b1, b2)
	}

	// Delta pollers see the ordered ops: eviction first, then the later
	// addition — and applying them to a mirror reproduces the store.
	d1, err := c.Deltas(ctx, d0.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Ops) == 0 {
		t.Fatalf("delta after eviction carries no ops: %+v", d1)
	}
	if len(d1.Ops[0].Evict) != 2 {
		t.Fatalf("first op is not the eviction: %+v", d1.Ops[0])
	}
	// Applying the ordered ops to a mirror of the pre-evict state
	// reproduces the store exactly.
	replay := cumulative.NewHistory(cfg)
	replay.Absorb(batch)
	for _, op := range d1.Ops {
		if len(op.Evict) > 0 {
			replay.Extract(op.Evict)
		}
		if op.Snapshot != nil {
			replay.Absorb(op.Snapshot)
		}
	}
	replay.Canonicalize()
	want := srv.Store().Combined()
	want.Canonicalize()
	if !replay.Equal(want) {
		t.Fatalf("mirror replay diverged from store:\n%s\n%s", replay, want)
	}
}

// TestEvictCountersInvalidatesJournal: a counter drain (node leaving the
// cluster) cannot be expressed as a journal op, so it must invalidate
// delta cursors — otherwise a poller replaying the node's journal from
// before the drain re-counts runs whose counters moved to a survivor
// (caught live: a drained-then-re-added partition inflated the
// coordinator's totals by exactly its pre-drain run count).
func TestEvictCountersInvalidatesJournal(t *testing.T) {
	ctx := context.Background()
	cfg := cumulative.DefaultConfig()
	srv := NewServer(ServerOptions{Config: cfg, CorrectEvery: -1, DisableCorrection: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, "c1")

	batch := rebalanceTestSnapshot(1)
	if _, err := c.PushSnapshot(batch); err != nil {
		t.Fatal(err)
	}
	reply, err := c.EvictKeys(ctx, "leave-1", srv.Store().Combined().EvidenceKeys(), true)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Evicted.Runs != batch.Runs || reply.Evicted.FailedRuns != batch.FailedRuns {
		t.Fatalf("counters not drained: %+v", reply.Evicted)
	}
	if got := srv.Store().Runs(); got != 0 {
		t.Fatalf("store runs after counter drain = %d", got)
	}

	// A replay-from-zero poll must get a full resync of the post-drain
	// store — never the pre-drain journal entries.
	d, err := c.Deltas(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Full {
		t.Fatalf("cursor 0 after counter drain answered with a delta: %+v", d)
	}
	mirror := cumulative.NewHistory(cfg)
	mirror.Absorb(d.Snapshot)
	if mirror.Runs != 0 {
		t.Fatalf("mirror re-counted drained runs: %d", mirror.Runs)
	}
}

// TestClientHonors429RetryAfter: a rate-limited upload retries after the
// server's Retry-After instead of surfacing an error — the bounded,
// context-aware backoff the sink stack relies on.
func TestClientHonors429RetryAfter(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: -1, RatePerSec: 5, RateBurst: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, "limited")

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.PushBatchContext(ctx, &ObservationBatch{
			Snapshot: rebalanceTestSnapshot(i),
			BatchID:  fmt.Sprintf("rl-%d", i),
		}); err != nil {
			t.Fatalf("push %d through rate limit: %v", i, err)
		}
	}
	if got := srv.Store().Batches(); got != 2 {
		t.Fatalf("batches = %d, want 2 (rate-limited upload lost)", got)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.RateLimited == 0 {
		t.Fatal("server never rate-limited — test exercised nothing")
	}
}

// TestClient429RetryHonorsContext: cancellation aborts the backoff wait
// immediately; a permanently limited server cannot park the client.
func TestClient429RetryHonorsContext(t *testing.T) {
	always429 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "5")
		http.Error(w, "limited", http.StatusTooManyRequests)
	}))
	defer always429.Close()
	c := NewClient(always429.URL, "canceled")

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.PushSnapshotContext(ctx, rebalanceTestSnapshot(0))
	if err == nil {
		t.Fatal("push against a permanent 429 succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v — Retry-After wait ignored the context", elapsed)
	}
}

// TestClient429BoundedRetries: the retry budget is finite — a client
// facing a permanent 429 gives up with the rate-limit error rather than
// looping forever.
func TestClient429BoundedRetries(t *testing.T) {
	attempts := 0
	always429 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.Header().Set("Retry-After", "0") // parsed as invalid → 1s default; keep waits real but short via header "0"
		http.Error(w, "limited", http.StatusTooManyRequests)
	}))
	defer always429.Close()
	c := NewClient(always429.URL, "bounded")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := c.PushSnapshotContext(ctx, rebalanceTestSnapshot(0))
	if err == nil {
		t.Fatal("push against a permanent 429 succeeded")
	}
	if attempts != maxPushAttempts {
		t.Fatalf("client made %d attempts, want %d", attempts, maxPushAttempts)
	}
}

// TestSnapshotCapturesDedupAtomically: SaveSnapshot captures evidence
// and dedup IDs at one consistent point (under the delta lock), so a
// batch racing the snapshot can no longer be dropped on
// restore-and-retry — restoring any snapshot and re-pushing every batch
// converges to exactly-once evidence.
func TestSnapshotCapturesDedupAtomically(t *testing.T) {
	cfg := cumulative.DefaultConfig()
	srv := NewServer(ServerOptions{Config: cfg, CorrectEvery: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, "racer")

	const n = 60
	batches := make([]*ObservationBatch, n)
	for i := range batches {
		batches[i] = &ObservationBatch{
			Client:   "racer",
			Snapshot: rebalanceTestSnapshot(i),
			BatchID:  fmt.Sprintf("race-%d", i),
		}
	}

	snapPath := filepath.Join(t.TempDir(), "race.snap")
	done := make(chan error, 1)
	go func() {
		for _, b := range batches {
			if _, err := c.PushBatchContext(context.Background(), b); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	// Snapshot concurrently with the ingest stream; keep the last one
	// taken mid-stream.
	for i := 0; i < 50; i++ {
		if err := srv.SaveSnapshot(snapPath); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Restore the mid-stream snapshot and re-deliver EVERY batch: ones in
	// the snapshot dedup, ones after it absorb — zero drops either way.
	srv2 := NewServer(ServerOptions{Config: cfg, CorrectEvery: -1})
	if err := srv2.LoadSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	c2 := NewClient(ts2.URL, "racer")
	for _, b := range batches {
		if _, err := c2.PushBatchContext(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}

	want := cumulative.NewHistory(cfg)
	for _, b := range batches {
		want.Absorb(b.Snapshot)
	}
	want.Canonicalize()
	got := srv2.Store().Combined()
	got.Canonicalize()
	if !got.Equal(want) {
		t.Fatalf("restore+retry diverged from exactly-once:\ngot  %s\nwant %s", got, want)
	}
}

// TestSnapshotRoundTripsRingVersionAndEvictCache: the v2 container
// carries the ring requirement and the evict cache across restarts, so
// a restarted partition keeps rejecting stale writers and a re-driving
// coordinator still finds its drained evidence.
func TestSnapshotRoundTripsRingVersionAndEvictCache(t *testing.T) {
	ctx := context.Background()
	srv := NewServer(ServerOptions{CorrectEvery: -1, DisableCorrection: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, "c1")

	batch := rebalanceTestSnapshot(1)
	if _, err := c.PushSnapshot(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AnnounceRing(ctx, 3); err != nil {
		t.Fatal(err)
	}
	evicted, err := c.EvictKeys(ctx, "tok-9", []site.ID{batch.Sites[0]}, false)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "part.snap")
	if err := srv.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(ServerOptions{CorrectEvery: -1, DisableCorrection: true})
	if err := srv2.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	c2 := NewClient(ts2.URL, "c1")

	// Stale writers still bounce after the restart.
	_, err = c2.PushBatchContext(ctx, &ObservationBatch{Snapshot: rebalanceTestSnapshot(2), RingVersion: 2})
	var sre *StaleRingError
	if !errors.As(err, &sre) || sre.Required != 3 {
		t.Fatalf("restored server did not enforce ring version: %v", err)
	}
	// The drained evidence is still replayable by token.
	again, err := c2.EvictKeys(ctx, "tok-9", nil, false)
	if err != nil || !again.Cached {
		t.Fatalf("restored server lost the evict cache: %v, %+v", err, again)
	}
	b1, _ := json.Marshal(evicted.Evicted)
	b2, _ := json.Marshal(again.Evicted)
	if !bytes.Equal(b1, b2) {
		t.Fatal("restored evict cache returned different evidence")
	}
}
