// Package fleet turns Exterminator's cumulative mode (paper §5) into a
// networked subsystem: an HTTP aggregation server that pools per-site
// (X, Y) observations from any number of independent installations, reruns
// the Bayesian hypothesis test as evidence arrives, and distributes the
// derived runtime patches back to the fleet with cheap delta polling —
// the "automatic distribution" deployment the paper's §6.3/§6.4 sketch.
//
// Protocol (all JSON over HTTP):
//
//	POST /v1/observations   ObservationBatch (a cumulative.Snapshot + client id)
//	POST /v1/reports        report.Report (human-readable bug reports)
//	GET  /v1/reports        recently received reports
//	GET  /v1/patches?since=V WirePatchSet with entries added after version V
//	GET  /v1/deltas?since=S  SnapshotDelta with evidence absorbed after journal seq S
//	POST /v1/evict          EvictRequest: drain a key set (cluster rebalancing)
//	POST /v1/ring           RingUpdate: raise the required membership version
//	GET  /v1/status         aggregate statistics
//	GET  /healthz           liveness
//
// Write endpoints optionally require a shared bearer token and are rate
// limited per remote host (ServerOptions.Token / RatePerSec); GET
// /v1/deltas is the partition→coordinator feed the cluster tier
// (internal/cluster) builds on.
//
// Ingest is exactly-once for stamped uploads: batches carry a
// content-addressed identity (cumulative.BatchID over the client id,
// upload-watermark position and canonical snapshot), and the server
// keeps a bounded, snapshot-persisted window of recently absorbed IDs —
// a retry after a lost ack is acknowledged as a duplicate without being
// re-absorbed. Unstamped batches from legacy clients stay
// at-least-once. Sink streams evidence both mid-run (as an
// engine.StreamingSink under WithFlushInterval/WithFlushEvery) and at
// session end, retrying unacknowledged batches verbatim so the
// guarantee holds end to end.
//
// The server shards its evidence store by call site across mutex striped
// partitions, so concurrent ingest from many clients scales without a
// global lock; patch distribution is versioned, so clients poll with the
// last version they saw and usually get an empty delta back.
//
// The normative wire specification lives in docs/PROTOCOL.md; the
// operator's runbook in docs/OPERATIONS.md.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"exterminator/internal/cumulative"
	"exterminator/internal/patch"
	"exterminator/internal/site"
)

// ObservationBatch is the POST /v1/observations request body: one
// installation's accumulated run summaries, in the canonical snapshot
// form. Client is an opaque installation identifier used only for
// statistics.
type ObservationBatch struct {
	Client   string               `json:"client,omitempty" v2:"1"`
	Snapshot *cumulative.Snapshot `json:"snapshot" v2:"2"`
	// BatchID is the batch's content-addressed identity
	// (cumulative.BatchID): a digest of the client id, the upload
	// watermark position the delta was cut at, and the canonical
	// snapshot. Servers keep a bounded window of recently absorbed IDs
	// and acknowledge a duplicate without re-absorbing it, which makes
	// ingest exactly-once under retried uploads (lost acks). Empty means
	// "no identity": the batch is absorbed unconditionally (legacy
	// at-least-once clients).
	BatchID string `json:"batchId,omitempty" v2:"3"`
	// RingVersion is the cluster membership version the uploader split
	// this batch under (cluster.Ring.Version). A partition whose
	// required ring version is newer rejects the batch with 409 and
	// IngestReply.StaleRing, so a writer that missed a rebalance
	// re-splits under the new topology instead of stranding evidence on
	// a former owner. Zero means "unversioned": the batch is accepted
	// regardless (single-node deployments and legacy clients).
	RingVersion uint64 `json:"ringVersion,omitempty" v2:"4"`
}

// RequestIDHeader is the correlation header every fleet tier propagates:
// the upload client stamps each POST with a fresh ID (or the caller's),
// the partition logs and journals it, and the coordinator logs it again
// when the batch's delta arrives — one upload's journey is grep-able
// end to end across all three logs.
const RequestIDHeader = "X-Request-ID"

// maxDeltaReqIDs bounds the correlation IDs carried on one delta reply.
const maxDeltaReqIDs = 1024

// IngestReply is the POST /v1/observations response body.
type IngestReply struct {
	OK bool `json:"ok"`
	// RequestID echoes the upload's X-Request-ID correlation field (the
	// server mints one when the request carried none), so a client can
	// quote the exact handle the server logged under.
	RequestID string `json:"requestId,omitempty"`
	// Duplicate reports that the batch's ID was already in the server's
	// dedup window: the evidence was absorbed by an earlier delivery and
	// was NOT absorbed again. Clients advance their upload watermark on
	// a duplicate ack exactly as on a first ack.
	Duplicate bool `json:"duplicate,omitempty"`
	// StaleRing reports that the batch was rejected (HTTP 409, OK false)
	// because it was split under an older cluster membership than this
	// partition requires. The evidence was NOT absorbed; the client must
	// refresh membership (coordinator GET /v1/membership) and re-split.
	// The dedup window is consulted first, so a retry of a batch absorbed
	// *before* the rebalance still acks as a duplicate, never stale.
	StaleRing bool `json:"staleRing,omitempty"`
	// RingVersion is the partition's required membership version
	// (non-zero once a rebalance has announced one), echoed on every
	// reply so writers can detect they are behind.
	RingVersion uint64 `json:"ringVersion,omitempty"`
	// Version is the server's current patch-set version after the ingest
	// (and any correction pass it triggered), so uploaders can decide to
	// poll immediately.
	Version uint64 `json:"version"`
	// Sites is the fleet-wide number of distinct allocation sites (N in
	// the §5.1 prior).
	Sites int `json:"sites"`
	// Runs is the fleet-wide run count.
	Runs int64 `json:"runs"`
}

// PadEntry is one pad-table entry on the wire.
type PadEntry struct {
	Site site.ID `json:"site" v2:"1"`
	Pad  uint32  `json:"pad" v2:"2"`
}

// DeferralEntry is one deferral-table entry on the wire.
type DeferralEntry struct {
	Alloc    site.ID `json:"alloc" v2:"1"`
	Free     site.ID `json:"free" v2:"2"`
	Deferral uint64  `json:"deferral" v2:"3"`
}

// WirePatchSet is a versioned patch.Set in the fleet wire encoding: the
// GET /v1/patches response body, and also a standalone file format
// (cmd/patchmerge reads and writes it alongside the binary .xtp format).
type WirePatchSet struct {
	Version uint64 `json:"version" v2:"1"`
	// Epoch identifies the server incarnation that issued Version.
	// Versions are only ordered within one epoch: after a restart the
	// server rederives its patch log from the (possibly stale) snapshot
	// and restarts version numbering, so a client holding a version from
	// another epoch must resync from 0 instead of delta-polling (the
	// Client does this transparently). Zero in standalone files.
	Epoch     uint64          `json:"epoch,omitempty" v2:"2"`
	Pads      []PadEntry      `json:"pads,omitempty" v2:"3"`
	FrontPads []PadEntry      `json:"frontPads,omitempty" v2:"4"`
	Deferrals []DeferralEntry `json:"deferrals,omitempty" v2:"5"`
}

// ToWire converts a patch set to its wire form, sorted for deterministic
// encoding.
func ToWire(ps *patch.Set, version uint64) *WirePatchSet {
	w := &WirePatchSet{Version: version}
	for s, pad := range ps.Pads {
		w.Pads = append(w.Pads, PadEntry{Site: s, Pad: pad})
	}
	for s, pad := range ps.FrontPads {
		w.FrontPads = append(w.FrontPads, PadEntry{Site: s, Pad: pad})
	}
	for p, d := range ps.Deferrals {
		w.Deferrals = append(w.Deferrals, DeferralEntry{Alloc: p.Alloc, Free: p.Free, Deferral: d})
	}
	sort.Slice(w.Pads, func(i, j int) bool { return w.Pads[i].Site < w.Pads[j].Site })
	sort.Slice(w.FrontPads, func(i, j int) bool { return w.FrontPads[i].Site < w.FrontPads[j].Site })
	sort.Slice(w.Deferrals, func(i, j int) bool {
		if w.Deferrals[i].Alloc != w.Deferrals[j].Alloc {
			return w.Deferrals[i].Alloc < w.Deferrals[j].Alloc
		}
		return w.Deferrals[i].Free < w.Deferrals[j].Free
	})
	return w
}

// Set converts the wire form back into a patch set.
func (w *WirePatchSet) Set() *patch.Set {
	ps := patch.New()
	for _, e := range w.Pads {
		ps.AddPad(e.Site, e.Pad)
	}
	for _, e := range w.FrontPads {
		ps.AddFrontPad(e.Site, e.Pad)
	}
	for _, e := range w.Deferrals {
		ps.AddDeferral(site.Pair{Alloc: e.Alloc, Free: e.Free}, e.Deferral)
	}
	return ps
}

// EncodePatchSet writes a patch set in the JSON wire encoding.
func EncodePatchSet(w io.Writer, ps *patch.Set, version uint64) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToWire(ps, version))
}

// DecodePatchSet reads a patch set in the JSON wire encoding. It rejects
// trailing garbage so a truncated or concatenated file cannot silently
// decode into a partial set.
func DecodePatchSet(r io.Reader) (*patch.Set, uint64, error) {
	w, err := decodeWire(r)
	if err != nil {
		return nil, 0, err
	}
	return w.Set(), w.Version, nil
}

// decodeWire strictly decodes one WirePatchSet document.
func decodeWire(r io.Reader) (*WirePatchSet, error) {
	dec := json.NewDecoder(r)
	var w WirePatchSet
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("fleet: decode patch set: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("fleet: decode patch set: trailing data after JSON document")
	}
	return &w, nil
}

// LeaseReply is the GET /v1/lease response body: the serving
// coordinator's incarnation epoch and role. Epochs are the failover
// ordering: a promoted standby takes an epoch strictly above anything
// the old primary ever stamped into a patch response, so clients can
// reject a zombie primary (lower epoch than the highest they have seen)
// without any out-of-band signal. A warm standby answers with
// primary=false; its probe loop watches the primary's lease and
// promotes itself when the primary stops answering.
type LeaseReply struct {
	// Epoch is the incarnation stamp this server puts in WirePatchSet
	// responses (monotonically increasing across failovers).
	Epoch uint64 `json:"epoch"`
	// Holder names the lease holder (operator-chosen, diagnostic only).
	Holder string `json:"holder"`
	// Primary reports whether this server currently serves the
	// patch-log read path (a standby answers false and 503s patch and
	// triage reads until promoted).
	Primary bool `json:"primary"`
	// PatchVersion is the holder's current patch-log version.
	PatchVersion uint64 `json:"patchVersion"`
}

// StatusReply is the GET /v1/status response body.
type StatusReply struct {
	// Build is the serving binary's link-time identity ("version
	// (commit)", stamped via -ldflags; see internal/version), so an
	// operator can tell which binary a partition runs.
	Build       string `json:"build,omitempty"`
	Version     uint64 `json:"version"`
	Sites       int    `json:"sites"`
	Runs        int64  `json:"runs"`
	FailedRuns  int64  `json:"failedRuns"`
	CorruptRuns int64  `json:"corruptRuns"`
	Batches     int64  `json:"batches"`
	Clients     int    `json:"clients"`
	Reports     int64  `json:"reports"`
	PatchLen    int    `json:"patchLen"`
	UptimeSec   int64  `json:"uptimeSec"`
	// Corrections counts completed correction passes.
	Corrections int64 `json:"corrections"`
	// RateLimited counts uploads rejected with 429 — visible rate-limit
	// pressure.
	RateLimited int64 `json:"rateLimited"`
	// DirtyKeys is the evidence-key backlog the next correction pass will
	// rescore (0 means the patch log fully reflects the evidence).
	DirtyKeys int `json:"dirtyKeys"`
	// Deduped counts uploads acknowledged as duplicates without being
	// absorbed (exactly-once ingest catching retried batches).
	Deduped int64 `json:"deduped,omitempty"`
	// Seq is the evidence journal's current sequence number (the cursor
	// coordinators poll GET /v1/deltas with).
	Seq uint64 `json:"seq,omitempty"`
	// RingVersion is the required cluster membership version (0 until a
	// rebalance announces one; see ObservationBatch.RingVersion).
	RingVersion uint64 `json:"ringVersion,omitempty"`
	// Evictions counts rebalance drains served via POST /v1/evict.
	Evictions int64 `json:"evictions,omitempty"`
	// Shards breaks the evidence store down per stripe, so operators can
	// see rebalance skew and per-shard recompute health at a glance.
	Shards []ShardStatus `json:"shards,omitempty"`
}

// ShardStatus is one evidence-store stripe's counters in StatusReply.
type ShardStatus struct {
	Sites        int `json:"sites"`
	OverflowKeys int `json:"overflowKeys"`
	DanglingKeys int `json:"danglingKeys"`
	DirtyKeys    int `json:"dirtyKeys"`
}

// SnapshotDelta is the GET /v1/deltas response body: the evidence
// absorbed after journal sequence number `since`, merged into one
// canonical snapshot. It is the partition→coordinator half of the
// cluster protocol (internal/cluster): coordinators poll each partition
// with the last Seq they applied and absorb only what is new.
type SnapshotDelta struct {
	// Epoch identifies the server incarnation that issued Seq. Sequence
	// numbers are only ordered within one epoch; a poller holding a Seq
	// from another epoch receives a Full resync.
	Epoch uint64 `json:"epoch" v2:"1"`
	// Seq is the journal position the delta runs up to; poll with it
	// next time.
	Seq uint64 `json:"seq" v2:"2"`
	// Full marks a resync: Snapshot is the server's entire evidence
	// store, not a delta, and must *replace* (not augment) whatever the
	// poller previously mirrored from this server.
	Full bool `json:"full,omitempty" v2:"3"`
	// Snapshot is the merged evidence (nil when nothing changed). It is
	// only used when the window holds no evictions; otherwise Ops carries
	// the ordered sequence instead.
	Snapshot *cumulative.Snapshot `json:"snapshot,omitempty" v2:"4"`
	// Ops is the ordered delta when the window contains rebalance
	// evictions: additions and evictions must be applied in sequence
	// (an eviction removes a key's entire evidence from the mirror at
	// that point in the stream). Consecutive additions are pre-merged.
	// Mutually exclusive with Snapshot.
	Ops []DeltaOp `json:"ops,omitempty" v2:"5"`
	// ReqIDs are the X-Request-ID correlation fields of the uploads this
	// delta covers (bounded; oldest first). The coordinator logs them
	// when it applies the delta, so one upload is grep-able from the
	// client through the partition to the coordinator.
	ReqIDs []string `json:"reqIds,omitempty" v2:"6"`
}

// SnapshotObservations counts the individual overflow and dangling
// observations a snapshot carries — the unit the ingest
// observation-counter metrics are denominated in.
func SnapshotObservations(s *cumulative.Snapshot) int {
	if s == nil {
		return 0
	}
	n := 0
	for _, so := range s.Overflow {
		n += len(so.Obs)
	}
	for _, po := range s.Dangling {
		n += len(po.Obs)
	}
	return n
}

// DeltaOp is one step of an ordered evidence delta: either an absorbed
// snapshot or a key-set eviction (a rebalance drain — the keys' evidence
// moved to another partition and must leave the poller's mirror of this
// one).
type DeltaOp struct {
	Evict    []site.ID            `json:"evict,omitempty" v2:"1"`
	Snapshot *cumulative.Snapshot `json:"snapshot,omitempty" v2:"2"`
}

// EvictRequest is the POST /v1/evict body: atomically remove and return
// the canonical evidence for a key set (a rebalance drain). Token is the
// caller's idempotency handle: the server caches the extraction result
// under it, and re-posting the same token returns the cached snapshot —
// which is what lets a coordinator that crashed between drain and
// backfill re-drain without losing the already-extracted evidence.
type EvictRequest struct {
	Token string    `json:"token"`
	Keys  []site.ID `json:"keys"`
	// Counters additionally drains the store's run counters into the
	// returned snapshot (they are not keyed, so key eviction alone never
	// moves them). Set when the node is leaving the cluster entirely —
	// its counters must follow its evidence to the survivors, or the
	// fleet-wide run totals would shrink.
	Counters bool `json:"counters,omitempty"`
}

// EvictReply is the POST /v1/evict response.
type EvictReply struct {
	OK bool `json:"ok"`
	// Cached reports that Token was seen before and Evicted is the
	// original extraction's result (Keys was ignored).
	Cached bool `json:"cached,omitempty"`
	// Evicted is the removed evidence in canonical snapshot form.
	Evicted *cumulative.Snapshot `json:"evicted"`
	// RingVersion echoes the partition's required membership version.
	RingVersion uint64 `json:"ringVersion,omitempty"`
}

// RingUpdate is the POST /v1/ring body: announce the cluster membership
// version this partition must require on versioned uploads. The server
// only ever moves the requirement forward.
type RingUpdate struct {
	Version uint64 `json:"version"`
}

// RingReply is the POST /v1/ring response, echoing the (possibly higher)
// version now in force.
type RingReply struct {
	OK      bool   `json:"ok"`
	Version uint64 `json:"version"`
}

// MembershipReply is the coordinator's GET /v1/membership response: the
// current cluster topology, which writers adopt via
// cluster.Ring.SetMembership after a stale-ring rejection (or on their
// regular patch-poll path).
type MembershipReply struct {
	Version uint64   `json:"version"`
	Nodes   []string `json:"nodes"`
}
