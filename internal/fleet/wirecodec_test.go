package fleet

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"exterminator/internal/cumulative"
	"exterminator/internal/fleet/codec"
	"exterminator/internal/site"
	"exterminator/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite the cross-codec golden files under testdata/")

// sampleWireBatch is the fixed batch the cross-codec tests run on:
// deterministic content exercising every snapshot section.
func sampleWireBatch() *ObservationBatch {
	s := testBatches(1)[0]
	return &ObservationBatch{
		Client:      "codec-test",
		Snapshot:    s,
		BatchID:     cumulative.BatchID("codec-test", 0, 0, s),
		RingVersion: 7,
	}
}

func sampleWirePatchSet() *WirePatchSet {
	return &WirePatchSet{
		Version: 12,
		Epoch:   3,
		Pads: []PadEntry{
			{Site: 0x100, Pad: 8},
			{Site: guiltySite, Pad: 24},
		},
		FrontPads: []PadEntry{{Site: 0x101, Pad: 16}},
		Deferrals: []DeferralEntry{
			{Alloc: guiltyAlloc, Free: guiltyFree, Deferral: 33},
		},
	}
}

func sampleSnapshotDelta() *SnapshotDelta {
	return &SnapshotDelta{
		Epoch:    2,
		Seq:      41,
		Snapshot: testBatches(2)[1],
		Ops: []DeltaOp{
			{Snapshot: testBatches(1)[0]},
			{Evict: []site.ID{0x100, 0x104, guiltySite}},
		},
		ReqIDs: []string{"req-1", "req-2"},
	}
}

// canonJSON renders v through encoding/json for structural comparison:
// two wire values that marshal identically carry identical evidence.
func canonJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCrossCodecEquivalence round-trips every wire struct through both
// codecs and requires the decoded values to be structurally identical:
// v1 JSON and v2 frames must carry the same canonical evidence.
func TestCrossCodecEquivalence(t *testing.T) {
	batch := sampleWireBatch()
	patches := sampleWirePatchSet()
	delta := sampleSnapshotDelta()

	roundTrip := func(c Codec, encode func(*codec.Buffer) ([]byte, error), decode func([]byte) (any, error)) any {
		buf := codec.GetBuffer()
		defer codec.PutBuffer(buf)
		data, err := encode(buf)
		if err != nil {
			t.Fatalf("%s encode: %v", c.ContentType(), err)
		}
		v, err := decode(data)
		if err != nil {
			t.Fatalf("%s decode: %v", c.ContentType(), err)
		}
		return v
	}

	for _, c := range []Codec{JSONCodec, V2Codec} {
		got := roundTrip(c,
			func(buf *codec.Buffer) ([]byte, error) { return c.EncodeBatch(buf, batch) },
			func(d []byte) (any, error) { return c.DecodeBatch(d) })
		if canonJSON(t, got) != canonJSON(t, batch) {
			t.Errorf("%s batch round trip diverged:\n got  %s\n want %s",
				c.ContentType(), canonJSON(t, got), canonJSON(t, batch))
		}
		// The decoded snapshot must also absorb to the same history as
		// the original — the equivalence the store actually relies on.
		ref := cumulative.NewHistory(cumulative.DefaultConfig())
		ref.Absorb(batch.Snapshot)
		dec := cumulative.NewHistory(cumulative.DefaultConfig())
		dec.Absorb(got.(*ObservationBatch).Snapshot)
		if !dec.Equal(ref) {
			t.Errorf("%s: absorbed decoded snapshot differs from absorbed original", c.ContentType())
		}

		got = roundTrip(c,
			func(buf *codec.Buffer) ([]byte, error) { return c.EncodePatchSet(buf, patches) },
			func(d []byte) (any, error) { return c.DecodePatchSet(d) })
		if canonJSON(t, got) != canonJSON(t, patches) {
			t.Errorf("%s patch set round trip diverged", c.ContentType())
		}

		got = roundTrip(c,
			func(buf *codec.Buffer) ([]byte, error) { return c.EncodeDelta(buf, delta) },
			func(d []byte) (any, error) { return c.DecodeDelta(d) })
		if canonJSON(t, got) != canonJSON(t, delta) {
			t.Errorf("%s delta round trip diverged", c.ContentType())
		}
	}
}

// TestCrossCodecGolden pins both wire representations byte-for-byte
// with checked-in golden files, and proves the codecs interconvert in
// both directions: decoding the v1 golden and re-encoding as v2 must
// reproduce the v2 golden exactly, and vice versa. Run with -update to
// regenerate after a deliberate format change (which must also bump
// the spec in docs/PROTOCOL.md).
func TestCrossCodecGolden(t *testing.T) {
	cases := []struct {
		name   string
		value  any
		encode func(Codec, *codec.Buffer) ([]byte, error)
		decode func(Codec, []byte) (any, error)
	}{
		{
			name:   "batch",
			value:  sampleWireBatch(),
			encode: func(c Codec, buf *codec.Buffer) ([]byte, error) { return c.EncodeBatch(buf, sampleWireBatch()) },
			decode: func(c Codec, d []byte) (any, error) { return c.DecodeBatch(d) },
		},
		{
			name:   "patchset",
			value:  sampleWirePatchSet(),
			encode: func(c Codec, buf *codec.Buffer) ([]byte, error) { return c.EncodePatchSet(buf, sampleWirePatchSet()) },
			decode: func(c Codec, d []byte) (any, error) { return c.DecodePatchSet(d) },
		},
		{
			name:   "delta",
			value:  sampleSnapshotDelta(),
			encode: func(c Codec, buf *codec.Buffer) ([]byte, error) { return c.EncodeDelta(buf, sampleSnapshotDelta()) },
			decode: func(c Codec, d []byte) (any, error) { return c.DecodeDelta(d) },
		},
	}

	reencode := func(c Codec, tc int, v any) []byte {
		buf := codec.GetBuffer()
		defer codec.PutBuffer(buf)
		var data []byte
		var err error
		switch v := v.(type) {
		case *ObservationBatch:
			data, err = c.EncodeBatch(buf, v)
		case *WirePatchSet:
			data, err = c.EncodePatchSet(buf, v)
		case *SnapshotDelta:
			data, err = c.EncodeDelta(buf, v)
		}
		if err != nil {
			t.Fatalf("%s re-encode %s: %v", cases[tc].name, c.ContentType(), err)
		}
		return append([]byte(nil), data...)
	}

	for i, tc := range cases {
		v1Path := filepath.Join("testdata", "wire_"+tc.name+".v1.json")
		v2Path := filepath.Join("testdata", "wire_"+tc.name+".v2.bin")

		if *updateGolden {
			for _, out := range []struct {
				c    Codec
				path string
			}{{JSONCodec, v1Path}, {V2Codec, v2Path}} {
				buf := codec.GetBuffer()
				data, err := tc.encode(out.c, buf)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(out.path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				codec.PutBuffer(buf)
			}
		}

		v1Golden, err := os.ReadFile(v1Path)
		if err != nil {
			t.Fatalf("missing golden (run with -update): %v", err)
		}
		v2Golden, err := os.ReadFile(v2Path)
		if err != nil {
			t.Fatalf("missing golden (run with -update): %v", err)
		}

		// v1 → decode → v2 must hit the v2 golden byte-for-byte.
		fromV1, err := tc.decode(JSONCodec, v1Golden)
		if err != nil {
			t.Fatalf("%s: decode v1 golden: %v", tc.name, err)
		}
		if got := reencode(V2Codec, i, fromV1); !bytes.Equal(got, v2Golden) {
			t.Errorf("%s: v1 golden → v2 encode diverged from v2 golden (%d vs %d bytes)",
				tc.name, len(got), len(v2Golden))
		}

		// v2 → decode → v1 must hit the v1 golden byte-for-byte.
		fromV2, err := tc.decode(V2Codec, v2Golden)
		if err != nil {
			t.Fatalf("%s: decode v2 golden: %v", tc.name, err)
		}
		if got := reencode(JSONCodec, i, fromV2); !bytes.Equal(got, v1Golden) {
			t.Errorf("%s: v2 golden → v1 encode diverged from v1 golden:\n got  %s\n want %s",
				tc.name, got, v1Golden)
		}

		// And the current in-memory sample still encodes to both goldens
		// (the format itself has not drifted).
		if got := reencode(JSONCodec, i, tc.value); !bytes.Equal(got, v1Golden) {
			t.Errorf("%s: sample's v1 encoding drifted from golden", tc.name)
		}
		if got := reencode(V2Codec, i, tc.value); !bytes.Equal(got, v2Golden) {
			t.Errorf("%s: sample's v2 encoding drifted from golden", tc.name)
		}
	}
}

// TestServerIngestV2Equivalence feeds the same batches to one server
// over v1 JSON and another over v2 frames: the stores, run counters and
// derived patches must match exactly — the zero-copy sharded decode is
// an encoding change, never an evidence change.
func TestServerIngestV2Equivalence(t *testing.T) {
	batches := testBatches(24)

	run := func(v2 bool) (*Server, *cumulative.History) {
		srv := NewServer(ServerOptions{Shards: 4, CorrectEvery: 0})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		c := NewClient(ts.URL, "install-x")
		c.SetWireV2(v2)
		for _, b := range batches {
			if _, err := c.PushSnapshot(b); err != nil {
				t.Fatalf("push (v2=%v): %v", v2, err)
			}
		}
		return srv, srv.Store().Combined()
	}

	srvJSON, histJSON := run(false)
	srvV2, histV2 := run(true)

	if !histV2.Equal(histJSON) {
		t.Fatal("v2-ingested store differs from JSON-ingested store")
	}
	pJSON := histJSON.Identify().Patches()
	pV2 := histV2.Identify().Patches()
	if !pV2.Equal(pJSON) {
		t.Fatalf("derived patches diverge:\n v2:   %s\n json: %s", pV2, pJSON)
	}
	if got := srvV2.Store().Runs(); got != srvJSON.Store().Runs() {
		t.Fatalf("run counters diverge: v2 %d, json %d", got, srvJSON.Store().Runs())
	}
	if v := srvV2.metrics.v2Batches.Value(); v != float64(len(batches)) {
		t.Fatalf("fleet_ingest_v2_batches_total = %v, want %d", v, len(batches))
	}
	if v := srvJSON.metrics.v2Batches.Value(); v != 0 {
		t.Fatalf("JSON server counted %v v2 batches", v)
	}
}

// TestServerIngestV2Dedup: a v2 batch retried with the same binary
// batch ID must be acknowledged as a duplicate and absorbed once.
func TestServerIngestV2Dedup(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: 0})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := NewClient(ts.URL, "dedup-install")
	c.SetWireV2(true)
	s := testBatches(1)[0]
	batch := &ObservationBatch{
		Client:   "dedup-install",
		Snapshot: s,
		BatchID:  codec.BatchID("dedup-install", 0, 0, s),
	}
	first, err := c.PushBatchContext(t.Context(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if first.Duplicate {
		t.Fatal("first delivery acknowledged as duplicate")
	}
	second, err := c.PushBatchContext(t.Context(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Duplicate {
		t.Fatal("retry not acknowledged as duplicate")
	}
	if runs := srv.Store().Runs(); runs != int64(s.Runs) {
		t.Fatalf("runs = %d after duplicate delivery, want %d", runs, s.Runs)
	}
}

// TestServerIngestV2StaleRing: the stale-membership rejection must
// fire on the v2 path exactly as on v1 — after decode, before absorb.
func TestServerIngestV2StaleRing(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: 0})
	srv.RequireRingVersion(3)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := NewClient(ts.URL, "stale-install")
	c.SetWireV2(true)
	s := testBatches(1)[0]
	_, err := c.PushBatchContext(t.Context(), &ObservationBatch{
		Client:      "stale-install",
		Snapshot:    s,
		RingVersion: 2,
	})
	if err == nil {
		t.Fatal("stale ring version accepted over v2")
	}
	if runs := srv.Store().Runs(); runs != 0 {
		t.Fatalf("stale batch absorbed: runs = %d", runs)
	}
	// Current membership goes through.
	if _, err := c.PushBatchContext(t.Context(), &ObservationBatch{
		Client:      "stale-install",
		Snapshot:    s,
		RingVersion: 3,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestClientV2Downgrade: a v2 client facing a server that rejects the
// media type must fall back to JSON, re-deliver the same batch, and
// stay on JSON for good.
func TestClientV2Downgrade(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: 0})
	inner := srv.Handler()
	var rejected int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A pre-v2 server: unknown media type on ingest is a 415.
		if r.URL.Path == "/v1/observations" && r.Header.Get("Content-Type") == codec.ContentTypeV2 {
			rejected++
			http.Error(w, "unsupported media type", http.StatusUnsupportedMediaType)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, "downgrade-install")
	c.SetMetrics(telemetry.NewRegistry())
	c.SetWireV2(true)
	s := testBatches(1)[0]
	if _, err := c.PushSnapshot(s); err != nil {
		t.Fatalf("push across downgrade: %v", err)
	}
	if rejected != 1 {
		t.Fatalf("server rejected %d v2 deliveries, want exactly 1", rejected)
	}
	if c.WireV2() {
		t.Fatal("client still in v2 mode after rejection")
	}
	if runs := srv.Store().Runs(); runs != int64(s.Runs) {
		t.Fatalf("batch not re-delivered as JSON: runs = %d", runs)
	}
	// The next push must go straight to JSON (no second rejection).
	if _, err := c.PushSnapshot(testBatches(2)[1]); err != nil {
		t.Fatal(err)
	}
	if rejected != 1 {
		t.Fatalf("downgrade not sticky: %d rejections", rejected)
	}
	if v := c.m.v2Downgrades.Value(); v != 1 {
		t.Fatalf("fleet_client_v2_downgrades_total = %v, want 1", v)
	}
}

// TestClientV2GzipThreshold: v2 frames below the gzip threshold go out
// uncompressed (the gzip header would cost more than it saves); bigger
// frames still compress.
func TestClientV2GzipThreshold(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: 0})
	inner := srv.Handler()
	var encodings []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/observations" {
			encodings = append(encodings, r.Header.Get("Content-Encoding"))
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, "gzip-install")
	c.SetWireV2(true)

	small := &cumulative.Snapshot{C: 4, P: 0.5, Runs: 1, Sites: []site.ID{1, 2, 3}}
	if _, err := c.PushSnapshot(small); err != nil {
		t.Fatal(err)
	}

	big := &cumulative.Snapshot{C: 4, P: 0.5, Runs: 1}
	for i := 0; i < 2000; i++ {
		big.Sites = append(big.Sites, site.ID(i*7+1))
		big.Overflow = append(big.Overflow, cumulative.SiteObservations{
			Site: site.ID(i*7 + 1),
			Obs:  []cumulative.Observation{{X: float64(i), Y: i%3 == 0}},
		})
	}
	if _, err := c.PushSnapshot(big); err != nil {
		t.Fatal(err)
	}

	if len(encodings) != 2 {
		t.Fatalf("saw %d uploads, want 2", len(encodings))
	}
	if encodings[0] != "" {
		t.Fatalf("small v2 frame was %q-encoded, want identity", encodings[0])
	}
	if encodings[1] != "gzip" {
		t.Fatalf("large v2 frame encoding = %q, want gzip", encodings[1])
	}
	if runs := srv.Store().Runs(); runs != 2 {
		t.Fatalf("runs = %d, want 2", runs)
	}
}

// TestDeltasNegotiation: the same journal must replay identically over
// a v2-negotiated delta poll and the v1 JSON one.
func TestDeltasNegotiation(t *testing.T) {
	srv := NewServer(ServerOptions{CorrectEvery: 0})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	up := NewClient(ts.URL, "uploader")
	up.SetWireV2(true)
	batches := testBatches(6)
	for _, b := range batches {
		if _, err := up.PushSnapshot(b); err != nil {
			t.Fatal(err)
		}
	}

	mirror := func(v2 bool) *cumulative.History {
		c := NewClient(ts.URL, "mirror")
		c.SetWireV2(v2)
		d, err := c.Deltas(t.Context(), 0)
		if err != nil {
			t.Fatal(err)
		}
		h := cumulative.NewHistory(cumulative.DefaultConfig())
		if d.Snapshot != nil {
			h.Absorb(d.Snapshot)
		}
		for _, op := range d.Ops {
			if op.Snapshot != nil {
				h.Absorb(op.Snapshot)
			}
		}
		return h
	}

	hV2 := mirror(true)
	hJSON := mirror(false)
	ref := cumulative.NewHistory(cumulative.DefaultConfig())
	for _, b := range batches {
		ref.Absorb(b)
	}
	// Canonicalize before comparing: Equal is order-sensitive and the
	// journal replay arrives pre-sorted while ref absorbed raw batches.
	hV2.Canonicalize()
	hJSON.Canonicalize()
	ref.Canonicalize()
	if !hV2.Equal(hJSON) {
		t.Fatal("v2 delta poll reconstructed a different history than JSON")
	}
	if !hV2.Equal(ref) {
		t.Fatal("v2 delta poll diverged from the uploaded evidence")
	}
}

// TestElasticIdentifyEquivalence: the parallel correction pool must
// derive exactly the serial pass's findings, whatever the worker count.
func TestElasticIdentifyEquivalence(t *testing.T) {
	batches := testBatches(32)
	build := func(workers int) *Store {
		st := NewStore(8, cumulative.DefaultConfig())
		st.SetIdentifyWorkers(workers)
		for _, b := range batches {
			st.AbsorbSnapshot(b)
		}
		return st
	}

	want := build(1).Identify().Patches()
	if want.Len() == 0 {
		t.Fatal("serial pass derived no patches; evidence too weak")
	}
	for _, workers := range []int{2, 4, 8, 32} {
		got := build(workers).Identify().Patches()
		if !got.Equal(want) {
			t.Fatalf("workers=%d diverged:\n got  %s\n want %s", workers, got, want)
		}
	}
}
