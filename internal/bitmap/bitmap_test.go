package bitmap

import (
	"testing"
	"testing/quick"

	"exterminator/internal/xrand"
)

func TestSetClearGet(t *testing.T) {
	b := New(130)
	if b.Count() != 0 || b.Len() != 130 {
		t.Fatal("fresh bitmap not empty")
	}
	if !b.Set(0) || !b.Set(64) || !b.Set(129) {
		t.Fatal("Set returned false on clear bit")
	}
	if b.Count() != 3 {
		t.Fatalf("count = %d", b.Count())
	}
	if !b.Get(64) || b.Get(63) {
		t.Fatal("Get wrong")
	}
	if b.Set(64) {
		t.Fatal("double Set reported change")
	}
	if !b.Clear(64) {
		t.Fatal("Clear of set bit reported no change")
	}
	if b.Clear(64) {
		t.Fatal("double Clear reported change (double free must be benign)")
	}
	if b.Count() != 2 {
		t.Fatalf("count after clear = %d", b.Count())
	}
}

func TestRandomClearBitAlwaysFree(t *testing.T) {
	rng := xrand.New(9)
	b := New(256)
	for i := 0; i < 128; i++ {
		b.Set(rng.Intn(256))
	}
	for i := 0; i < 1000; i++ {
		bit := b.RandomClearBit(rng)
		if bit < 0 {
			t.Fatal("no clear bit found in half-empty bitmap")
		}
		if b.Get(bit) {
			t.Fatalf("RandomClearBit returned set bit %d", bit)
		}
	}
}

func TestRandomClearBitFull(t *testing.T) {
	b := New(64)
	for i := 0; i < 64; i++ {
		b.Set(i)
	}
	if got := b.RandomClearBit(xrand.New(1)); got != -1 {
		t.Fatalf("full bitmap returned %d", got)
	}
}

func TestRandomClearBitNearlyFull(t *testing.T) {
	// One free slot among 4096: the fallback path must still find it.
	b := New(4096)
	for i := 0; i < 4096; i++ {
		if i != 1234 {
			b.Set(i)
		}
	}
	rng := xrand.New(5)
	for trial := 0; trial < 50; trial++ {
		if got := b.RandomClearBit(rng); got != 1234 {
			t.Fatalf("got %d, want 1234", got)
		}
	}
}

func TestRandomClearBitUniform(t *testing.T) {
	// Among 4 free slots, each should be chosen ~uniformly.
	b := New(64)
	free := map[int]int{3: 0, 17: 0, 42: 0, 63: 0}
	for i := 0; i < 64; i++ {
		if _, ok := free[i]; !ok {
			b.Set(i)
		}
	}
	rng := xrand.New(77)
	const trials = 20000
	for i := 0; i < trials; i++ {
		free[b.RandomClearBit(rng)]++
	}
	for bit, c := range free {
		if c < trials/4-trials/16 || c > trials/4+trials/16 {
			t.Errorf("bit %d chosen %d times (want ~%d)", bit, c, trials/4)
		}
	}
}

func TestForEachSet(t *testing.T) {
	b := New(200)
	want := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEachSet(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	b := New(64)
	b.Set(10)
	c := b.Clone()
	c.Set(20)
	if b.Get(20) {
		t.Fatal("clone aliases original")
	}
	if !c.Get(10) {
		t.Fatal("clone missing original bit")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	b := New(100)
	for _, i := range []int{0, 31, 64, 99} {
		b.Set(i)
	}
	c := FromWords(100, b.Words())
	if c.Count() != b.Count() {
		t.Fatalf("count %d != %d", c.Count(), b.Count())
	}
	for i := 0; i < 100; i++ {
		if b.Get(i) != c.Get(i) {
			t.Fatalf("bit %d differs", i)
		}
	}
}

func TestPropertyCountConsistent(t *testing.T) {
	if err := quick.Check(func(ops []uint16) bool {
		b := New(512)
		naive := map[int]bool{}
		for _, op := range ops {
			i := int(op % 512)
			if op&0x8000 != 0 {
				b.Set(i)
				naive[i] = true
			} else {
				b.Clear(i)
				delete(naive, i)
			}
		}
		if b.Count() != len(naive) {
			return false
		}
		for i := 0; i < 512; i++ {
			if b.Get(i) != naive[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for _, f := range []func(){
		func() { b.Get(10) },
		func() { b.Set(-1) },
		func() { b.Clear(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkRandomClearBitHalfFull(b *testing.B) {
	bm := New(4096)
	rng := xrand.New(1)
	for i := 0; i < 2048; i++ {
		bm.Set(rng.Intn(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.RandomClearBit(rng)
	}
}

func BenchmarkLinearScanBaseline(b *testing.B) {
	// Ablation partner for BenchmarkRandomClearBitHalfFull: first-fit scan
	// (what a naive allocator would do) for the same occupancy.
	bm := New(4096)
	rng := xrand.New(1)
	for i := 0; i < 2048; i++ {
		bm.Set(rng.Intn(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < bm.Len(); j++ {
			if !bm.Get(j) {
				break
			}
		}
	}
}
