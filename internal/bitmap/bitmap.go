// Package bitmap provides the allocation bitmaps at the core of DieHard's
// heap layout (paper §3.1, Figure 2).
//
// Each miniheap tracks its object slots with one bit per slot. Allocation
// randomly probes for a clear bit — O(1) expected time when the heap is at
// most 1/M full — and freeing resets the bit. Because "a bit can only be
// reset once", double frees are benign (paper §2), a property the Clear
// method exposes by reporting whether it actually changed state.
package bitmap

import "exterminator/internal/xrand"

// Bitmap is a fixed-size bit set. The zero value is an empty bitmap of
// length 0; use New.
type Bitmap struct {
	words []uint64
	n     int // number of valid bits
	set   int // number of set bits
}

// New returns a bitmap of n bits, all clear.
func New(n int) *Bitmap {
	if n < 0 {
		panic("bitmap: negative size")
	}
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (b *Bitmap) Len() int { return b.n }

// Count returns the number of set bits.
func (b *Bitmap) Count() int { return b.set }

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	b.check(i)
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i and reports whether the bitmap changed (the bit was
// previously clear).
func (b *Bitmap) Set(i int) bool {
	b.check(i)
	w, m := i>>6, uint64(1)<<uint(i&63)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.set++
	return true
}

// Clear clears bit i and reports whether the bitmap changed (the bit was
// previously set). A second Clear of the same bit is a no-op, which is the
// bitmap-level mechanism that makes double frees benign.
func (b *Bitmap) Clear(i int) bool {
	b.check(i)
	w, m := i>>6, uint64(1)<<uint(i&63)
	if b.words[w]&m == 0 {
		return false
	}
	b.words[w] &^= m
	b.set--
	return true
}

// RandomClearBit returns a uniformly random clear bit, probing random
// positions as DieHard's allocator does. It returns -1 if every bit is
// set. Expected probes are n/(n-set), i.e. O(1) while the occupancy
// invariant (≤ 1/M full) holds; a deterministic fallback scan bounds the
// worst case.
func (b *Bitmap) RandomClearBit(rng *xrand.RNG) int {
	free := b.n - b.set
	if free == 0 {
		return -1
	}
	// Random probing: with occupancy ≤ 1/2 this succeeds in ≤ 2 expected
	// tries. Cap probes to keep the worst case linear overall.
	maxProbes := 8 * (b.n/free + 1)
	if maxProbes > 256 {
		maxProbes = 256
	}
	for t := 0; t < maxProbes; t++ {
		i := rng.Intn(b.n)
		if b.words[i>>6]&(1<<uint(i&63)) == 0 {
			return i
		}
	}
	// Fallback: pick the k-th clear bit uniformly to preserve the uniform
	// distribution even under pathological occupancy.
	k := rng.Intn(free)
	for i := 0; i < b.n; i++ {
		if b.words[i>>6]&(1<<uint(i&63)) == 0 {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1 // unreachable while counts are consistent
}

// ForEachSet calls fn for each set bit in ascending order.
func (b *Bitmap) ForEachSet(fn func(i int)) {
	for w, word := range b.words {
		for word != 0 {
			bit := trailingZeros64(word)
			i := w<<6 + bit
			if i >= b.n {
				return
			}
			fn(i)
			word &^= 1 << uint(bit)
		}
	}
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitmap{words: w, n: b.n, set: b.set}
}

// Words exposes the raw backing words for serialization. The returned
// slice must not be modified.
func (b *Bitmap) Words() []uint64 { return b.words }

// FromWords reconstructs a bitmap of n bits from raw words (the inverse of
// Words, used by the heap-image decoder).
func FromWords(n int, words []uint64) *Bitmap {
	b := New(n)
	copy(b.words, words)
	for i := 0; i < n; i++ {
		if b.words[i>>6]&(1<<uint(i&63)) != 0 {
			b.set++
		}
	}
	return b
}

func (b *Bitmap) check(i int) {
	if i < 0 || i >= b.n {
		panic("bitmap: index out of range")
	}
}

func trailingZeros64(v uint64) int {
	if v == 0 {
		return 64
	}
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}
