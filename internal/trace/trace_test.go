package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"exterminator/internal/diefast"
	"exterminator/internal/freelist"
	"exterminator/internal/mem"
	"exterminator/internal/mutator"
	"exterminator/internal/site"
	"exterminator/internal/workloads"
	"exterminator/internal/xrand"
)

// record runs a workload through a Recorder on a DieFast heap.
func record(t *testing.T, progName string, seed uint64) *Trace {
	t.Helper()
	prog, ok := workloads.ByName(progName, 1)
	if !ok {
		t.Fatalf("unknown workload %s", progName)
	}
	h := diefast.New(diefast.DefaultConfig(), xrand.New(seed))
	h.OnError = func(diefast.Event) {}
	rec := NewRecorder(h)
	e := mutator.NewEnv(rec, h.Space(), xrand.New(7), nil)
	out := mutator.Run(prog, e)
	if !out.Completed {
		t.Fatalf("recording run failed: %s", out)
	}
	return rec.Trace()
}

func TestRecorderCapturesWorkload(t *testing.T) {
	tr := record(t, "cfrac", 1)
	mallocs, frees, bytesTotal, peak := tr.Stats()
	if mallocs == 0 || frees == 0 || bytesTotal == 0 {
		t.Fatalf("empty trace: %d/%d/%d", mallocs, frees, bytesTotal)
	}
	if frees != mallocs {
		t.Fatalf("workload frees everything, trace says %d mallocs %d frees", mallocs, frees)
	}
	if peak <= 0 || peak > mallocs {
		t.Fatalf("peak = %d", peak)
	}
}

func TestReplayOnFreshDieFast(t *testing.T) {
	tr := record(t, "cfrac", 2)
	h := diefast.New(diefast.DefaultConfig(), xrand.New(99))
	h.OnError = func(diefast.Event) {}
	e := mutator.NewEnv(h, h.Space(), xrand.New(7), nil)
	out := mutator.Run(Player{T: tr, TraceName: "cfrac"}, e)
	if !out.Completed {
		t.Fatalf("replay failed: %s", out)
	}
	if h.Diehard().Stats().Live != 0 {
		t.Fatal("replay leaked")
	}
	mallocs, _, _, _ := tr.Stats()
	if out.Clock != uint64(mallocs) {
		t.Fatalf("replay clock %d != trace mallocs %d", out.Clock, mallocs)
	}
}

func TestReplayOnFreelist(t *testing.T) {
	// The whole point: one trace, any allocator.
	tr := record(t, "espresso", 3)
	rng := xrand.New(5)
	fl := freelist.New(mem.NewSpace(rng.Split()), rng.Split())
	e := mutator.NewEnv(fl, fl.Space(), xrand.New(7), nil)
	e.NoSites = true
	out := mutator.Run(Player{T: tr}, e)
	if !out.Completed {
		t.Fatalf("freelist replay failed: %s", out)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := record(t, "cfrac", 4)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != len(tr.Ops) {
		t.Fatalf("op counts differ: %d vs %d", len(got.Ops), len(tr.Ops))
	}
	for i := range tr.Ops {
		if got.Ops[i] != tr.Ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, got.Ops[i], tr.Ops[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{nil, []byte("xx"), []byte("0123456789ABCDEF")} {
		if _, err := Decode(bytes.NewReader(in)); err == nil {
			t.Fatalf("decoded %q", in)
		}
	}
	// Bad op kind.
	tr := &Trace{Ops: []Op{{Kind: OpMalloc, Arg: 8}}}
	var buf bytes.Buffer
	tr.Encode(&buf)
	raw := buf.Bytes()
	raw[12] = 99 // first record's kind byte
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad op kind accepted")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	err := quick.Check(func(kinds []bool, args []uint32, sites []uint32) bool {
		n := len(kinds)
		if len(args) < n {
			n = len(args)
		}
		if len(sites) < n {
			n = len(sites)
		}
		tr := &Trace{}
		for i := 0; i < n; i++ {
			k := OpMalloc
			if kinds[i] {
				k = OpFree
			}
			tr.Ops = append(tr.Ops, Op{Kind: k, Arg: uint64(args[i]), Site: site.ID(sites[i])})
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || len(got.Ops) != len(tr.Ops) {
			return false
		}
		for i := range tr.Ops {
			if got.Ops[i] != tr.Ops[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlayerFailsOnCorruptTrace(t *testing.T) {
	tr := &Trace{Ops: []Op{{Kind: OpFree, Arg: 999}}}
	h := diefast.New(diefast.DefaultConfig(), xrand.New(1))
	e := mutator.NewEnv(h, h.Space(), xrand.New(1), nil)
	out := mutator.Run(Player{T: tr}, e)
	if !out.Failed {
		t.Fatalf("corrupt trace replay did not fail: %s", out)
	}
}

func BenchmarkReplayTrace(b *testing.B) {
	prog, _ := workloads.ByName("cfrac", 1)
	h := diefast.New(diefast.DefaultConfig(), xrand.New(1))
	rec := NewRecorder(h)
	e := mutator.NewEnv(rec, h.Space(), xrand.New(7), nil)
	mutator.Run(prog, e)
	tr := rec.Trace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h2 := diefast.New(diefast.DefaultConfig(), xrand.New(uint64(i)))
		e2 := mutator.NewEnv(h2, h2.Space(), xrand.New(7), nil)
		mutator.Run(Player{T: tr}, e2)
	}
}
