// Package trace records and replays allocation traces.
//
// A Recorder is allocator middleware: wrapped around any alloc.Allocator
// it logs every malloc/free with sizes and call sites. A Player replays
// a recorded trace — as a mutator.Program — against any other allocator,
// which is how memory-management studies compare allocators on identical
// workloads (the methodology behind the paper's §7.1 suite) and how a
// deployed site can ship a repro trace instead of its binary.
//
// The binary format round-trips losslessly and is versioned like the
// heap-image and patch formats.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"exterminator/internal/alloc"
	"exterminator/internal/mem"
	"exterminator/internal/mutator"
	"exterminator/internal/site"
)

// OpKind distinguishes trace records.
type OpKind uint8

const (
	// OpMalloc allocates; Arg is the requested size.
	OpMalloc OpKind = iota
	// OpFree frees; Arg is the index of the malloc op that created the
	// object (object identity is positional, not address-based, so a
	// trace replays on any allocator).
	OpFree
)

// Op is one trace record.
type Op struct {
	Kind OpKind
	Arg  uint64
	Site site.ID
}

// Trace is a recorded operation sequence.
type Trace struct {
	Ops []Op
}

// Recorder wraps an allocator and logs operations through it.
type Recorder struct {
	inner alloc.Allocator
	trace *Trace
	index map[mem.Addr]uint64 // live address -> malloc op index
}

var _ alloc.Allocator = (*Recorder)(nil)

// NewRecorder wraps inner.
func NewRecorder(inner alloc.Allocator) *Recorder {
	return &Recorder{inner: inner, trace: &Trace{}, index: make(map[mem.Addr]uint64)}
}

// Trace returns the recording so far.
func (r *Recorder) Trace() *Trace { return r.trace }

// Malloc implements alloc.Allocator.
func (r *Recorder) Malloc(size int, s site.ID) (mem.Addr, error) {
	ptr, err := r.inner.Malloc(size, s)
	if err != nil {
		return 0, err
	}
	r.index[ptr] = uint64(len(r.trace.Ops))
	r.trace.Ops = append(r.trace.Ops, Op{Kind: OpMalloc, Arg: uint64(size), Site: s})
	return ptr, nil
}

// Free implements alloc.Allocator. Invalid/double frees are forwarded but
// not recorded (they have no positional identity).
func (r *Recorder) Free(ptr mem.Addr, s site.ID) alloc.FreeStatus {
	idx, known := r.index[ptr]
	st := r.inner.Free(ptr, s)
	if known && (st == alloc.FreeOK || st == alloc.FreeDeferred) {
		delete(r.index, ptr)
		r.trace.Ops = append(r.trace.Ops, Op{Kind: OpFree, Arg: idx, Site: s})
	}
	return st
}

// Clock implements alloc.Allocator.
func (r *Recorder) Clock() uint64 { return r.inner.Clock() }

// Player replays a trace as a mutator.Program: mallocs and frees execute
// in recorded order with recorded sizes and sites, and each object's
// payload is touched so the replay exercises memory, not just metadata.
type Player struct {
	T *Trace
	// TraceName labels the program.
	TraceName string
}

// Name implements mutator.Program.
func (p Player) Name() string {
	if p.TraceName != "" {
		return "trace:" + p.TraceName
	}
	return "trace"
}

// Run implements mutator.Program.
func (p Player) Run(e *mutator.Env) {
	ptrs := make(map[uint64]mutator.Ptr, 64)
	sizes := make(map[uint64]int, 64)
	for i, op := range p.T.Ops {
		switch op.Kind {
		case OpMalloc:
			var ptr mutator.Ptr
			e.Call(uint64(op.Site), func() { ptr = e.Malloc(int(op.Arg)) })
			ptrs[uint64(i)] = ptr
			sizes[uint64(i)] = int(op.Arg)
			// Touch the object like a program would.
			n := int(op.Arg)
			if n > 8 {
				n = 8
			}
			e.Write(ptr, 0, make([]byte, n))
		case OpFree:
			ptr, ok := ptrs[op.Arg]
			if !ok {
				e.Fail(fmt.Sprintf("trace: free of unknown op %d", op.Arg))
			}
			e.Call(uint64(op.Site), func() { e.Free(ptr) })
			delete(ptrs, op.Arg)
			delete(sizes, op.Arg)
		}
	}
	e.Printf("trace replay done: %d ops, %d leaked\n", len(p.T.Ops), len(ptrs))
}

// Binary format.
const (
	magic   = 0x43415458 // "XTAC"
	version = 1
)

// Encode writes the trace.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(t.Ops)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, op := range t.Ops {
		var rec [13]byte
		rec[0] = byte(op.Kind)
		binary.LittleEndian.PutUint64(rec[1:], op.Arg)
		binary.LittleEndian.PutUint32(rec[9:], uint32(op.Site))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a trace written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, errors.New("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint32(hdr[8:])
	if n > 1<<28 {
		return nil, errors.New("trace: implausible op count")
	}
	t := &Trace{Ops: make([]Op, 0, n)}
	for i := uint32(0); i < n; i++ {
		var rec [13]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: op %d: %w", i, err)
		}
		op := Op{
			Kind: OpKind(rec[0]),
			Arg:  binary.LittleEndian.Uint64(rec[1:]),
			Site: site.ID(binary.LittleEndian.Uint32(rec[9:])),
		}
		if op.Kind != OpMalloc && op.Kind != OpFree {
			return nil, fmt.Errorf("trace: op %d: bad kind %d", i, op.Kind)
		}
		t.Ops = append(t.Ops, op)
	}
	return t, nil
}

// Stats summarizes a trace.
func (t *Trace) Stats() (mallocs, frees int, bytes uint64, peakLive int) {
	live := 0
	for _, op := range t.Ops {
		switch op.Kind {
		case OpMalloc:
			mallocs++
			bytes += op.Arg
			live++
			if live > peakLive {
				peakLive = live
			}
		case OpFree:
			frees++
			live--
		}
	}
	return
}
