// Package testutil holds helpers shared by the repo's test suites. It
// is imported only from _test.go files; nothing here may appear in a
// production dependency chain.
package testutil

import (
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// leakGrace is how long the cleanup check waits for goroutines started
// during the test to unwind before declaring them leaked. Shutdown is
// asynchronous — a loop selecting on ctx.Done() needs a few scheduler
// ticks to observe the cancel — so the check polls rather than
// snapshotting once. Overridden by the self-test.
var leakGrace = 5 * time.Second

// VerifyNoLeaks arms a goroutine-leak check on t: it snapshots the
// goroutines alive right now and, after the test body and every
// later-registered cleanup have finished, requires that every goroutine
// started during the test has exited. A goroutine still running after
// the grace period fails the test with its full stack.
//
// Call it first, before spawning anything: cleanups run last-in
// first-out, so arming early places the check after the shutdown paths
// it audits (httptest.Server.Close, context cancels, etc). Do not
// combine it with t.Parallel — goroutines belonging to sibling tests
// would be indistinguishable from leaks.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	base := goroutines()
	t.Cleanup(func() {
		deadline := time.Now().Add(leakGrace)
		var leaked []string
		for {
			leaked = leaked[:0]
			for id, stack := range goroutines() {
				if _, ok := base[id]; !ok {
					leaked = append(leaked, stack)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		sort.Strings(leaked)
		t.Errorf("goroutine leak: %d goroutine(s) started during the test still running after %v:\n\n%s",
			len(leaked), leakGrace, strings.Join(leaked, "\n\n"))
	})
}

// goroutines returns the stack of every live goroutine keyed by its id
// (from the "goroutine N [state]:" header). Goroutines created by the
// runtime itself (GC workers, scavenger) are excluded: the runtime
// starts them at its own pace, and they never exit.
func goroutines() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		header, _, _ := strings.Cut(g, "\n")
		f := strings.Fields(header)
		if len(f) < 2 || f[0] != "goroutine" {
			continue
		}
		if strings.Contains(g, "\ncreated by runtime.") {
			continue
		}
		out[f[1]] = g
	}
	return out
}
