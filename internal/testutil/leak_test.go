package testutil

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeTB captures the calls VerifyNoLeaks makes so the failure path can
// be exercised without failing the real test. Embedding testing.TB
// satisfies the interface's private method; anything unstubbed panics.
type fakeTB struct {
	testing.TB
	cleanups []func()
	failed   bool
	msg      string
}

func (f *fakeTB) Helper() {}

func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }

func (f *fakeTB) Errorf(format string, args ...any) {
	f.failed = true
	f.msg = fmt.Sprintf(format, args...)
}

func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestVerifyNoLeaksPassesOnCleanExit(t *testing.T) {
	ft := &fakeTB{}
	VerifyNoLeaks(ft)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
	}()
	close(stop)
	<-done

	ft.runCleanups()
	if ft.failed {
		t.Fatalf("clean exit reported as leak:\n%s", ft.msg)
	}
}

func TestVerifyNoLeaksReportsStuckGoroutine(t *testing.T) {
	old := leakGrace
	leakGrace = 50 * time.Millisecond
	defer func() { leakGrace = old }()

	ft := &fakeTB{}
	VerifyNoLeaks(ft)

	stop := make(chan struct{})
	go func() { <-stop }() // still blocked when cleanups run

	ft.runCleanups()
	close(stop)
	if !ft.failed {
		t.Fatal("stuck goroutine not reported")
	}
	if !strings.Contains(ft.msg, "goroutine leak") || !strings.Contains(ft.msg, "leak_test.go") {
		t.Fatalf("leak report missing the header or the leaking stack:\n%s", ft.msg)
	}
}
