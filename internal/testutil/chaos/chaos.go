// Package chaos is the repository's fault-injection harness: a
// deterministic manual clock, a partition-drop TCP proxy, and named
// kill-at-phase failpoints. The coordinator-kill failover e2e and the
// streaming-timing tests are built on it.
//
// Like its parent package testutil, chaos is imported only from _test.go
// files; nothing here may appear in a production dependency chain.
// Production code stays chaos-free — tests inject faults from the
// outside (a proxy in front of a server, a failpoint wired into an
// exported test hook), never by threading harness types through
// production constructors.
package chaos

import (
	"fmt"
	"io"
	"net"
	"net/url"
	"sort"
	"sync"
	"time"
)

// Clock is a deterministic manual clock. Time only moves when a test
// calls Advance, so a test that used to sleep real milliseconds and hope
// instead advances virtual time and *knows*. The zero value is not
// usable; call NewClock.
type Clock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*clockWaiter
}

type clockWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewClock returns a clock frozen at start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that receives the virtual time once the clock
// has been advanced past d from now. A non-positive d fires immediately.
func (c *Clock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	if d <= 0 {
		now := c.now
		c.mu.Unlock()
		ch <- now
		return ch
	}
	c.waiters = append(c.waiters, &clockWaiter{deadline: c.now.Add(d), ch: ch})
	c.mu.Unlock()
	return ch
}

// Sleep blocks until the clock is advanced past d from now.
func (c *Clock) Sleep(d time.Duration) { <-c.After(d) }

// Advance moves the clock forward by d and releases every waiter whose
// deadline has been reached, in deadline order.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due []*clockWaiter
	rest := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.deadline.After(now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
	c.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].deadline.Before(due[j].deadline) })
	for _, w := range due {
		w.ch <- now
	}
}

// Waiters reports how many sleepers are currently parked on the clock —
// the synchronization handle that lets a test advance only once the
// code under test has actually gone to sleep.
func (c *Clock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// BlockUntilWaiters polls until at least n sleepers are parked or the
// real-time timeout expires; it reports whether the count was reached.
func (c *Clock) BlockUntilWaiters(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Waiters() >= n {
			return true
		}
		time.Sleep(100 * time.Microsecond)
	}
	return c.Waiters() >= n
}

// Proxy is a TCP pass-through in front of one backend that a test can
// partition at will. Drop severs every live connection and refuses new
// ones (dials through the proxy fail like a dead host, not like an HTTP
// error), Restore heals the partition, Close tears the proxy down. This
// is how the failover e2e "kills" a coordinator that is in fact still
// running: clients pointed at the proxy observe exactly what they would
// observe if the process had died.
type Proxy struct {
	ln     net.Listener
	target string

	mu      sync.Mutex
	dropped bool
	closed  bool
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
}

// NewProxy starts a proxy in front of target, which may be a host:port
// or an http:// URL (httptest server URLs paste straight in).
func NewProxy(target string) (*Proxy, error) {
	if u, err := url.Parse(target); err == nil && u.Host != "" {
		target = u.Host
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy listen: %w", err)
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// URL returns the proxy's base URL ("http://127.0.0.1:port").
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// Addr returns the proxy's host:port.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Drop partitions the backend: live connections are severed and new
// dials are accepted then immediately closed, so in-flight requests fail
// with transport errors exactly as against a crashed host.
func (p *Proxy) Drop() {
	p.mu.Lock()
	p.dropped = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Restore heals the partition; new connections flow again.
func (p *Proxy) Restore() {
	p.mu.Lock()
	p.dropped = false
	p.mu.Unlock()
}

// Dropped reports whether the proxy is currently partitioned.
func (p *Proxy) Dropped() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Close shuts the proxy down and waits for its goroutines.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.ln.Close()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed || p.dropped {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.mu.Unlock()
		backend, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		p.track(conn)
		p.track(backend)
		p.wg.Add(2)
		go p.pipe(conn, backend)
		go p.pipe(backend, conn)
	}
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	io.Copy(dst, src)
	// Half-close is enough to unstick the peer copy; severing both ends
	// keeps the bookkeeping simple and matches a crashed host.
	dst.Close()
	src.Close()
	p.mu.Lock()
	delete(p.conns, dst)
	delete(p.conns, src)
	p.mu.Unlock()
}

// Failpoints is a named kill-at-phase registry. Code under test exposes
// a hook (for example cluster.Coordinator's rebalance crash hook) and
// the test arms phases by name: Hit returns the armed error exactly as
// often as armed, and counts every crossing either way — so a test can
// both inject a crash at "drain" and assert the phase was actually
// reached.
type Failpoints struct {
	mu    sync.Mutex
	armed map[string][]error
	hits  map[string]int
}

// NewFailpoints returns an empty registry.
func NewFailpoints() *Failpoints {
	return &Failpoints{armed: make(map[string][]error), hits: make(map[string]int)}
}

// Arm queues err to be returned by the next Hit(name). Arming the same
// name repeatedly queues further one-shot failures in order.
func (f *Failpoints) Arm(name string, err error) {
	f.mu.Lock()
	f.armed[name] = append(f.armed[name], err)
	f.mu.Unlock()
}

// Disarm clears every queued failure for name.
func (f *Failpoints) Disarm(name string) {
	f.mu.Lock()
	delete(f.armed, name)
	f.mu.Unlock()
}

// Hit records a crossing of name and pops its next armed failure, if
// any. Pass it (or a closure over it) as the code-under-test's hook.
func (f *Failpoints) Hit(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hits[name]++
	q := f.armed[name]
	if len(q) == 0 {
		return nil
	}
	err := q[0]
	if len(q) == 1 {
		delete(f.armed, name)
	} else {
		f.armed[name] = q[1:]
	}
	return err
}

// Hits reports how many times name has been crossed.
func (f *Failpoints) Hits(name string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits[name]
}
