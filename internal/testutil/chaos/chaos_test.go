package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"exterminator/internal/testutil"
)

func TestClockAdvanceReleasesWaitersInOrder(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	c := NewClock(time.Unix(1000, 0))

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	sleep := func(name string, d time.Duration) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Sleep(d)
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}()
	}
	sleep("late", 3*time.Second)
	sleep("early", 1*time.Second)
	if !c.BlockUntilWaiters(2, 5*time.Second) {
		t.Fatal("sleepers never parked")
	}

	c.Advance(500 * time.Millisecond)
	mu.Lock()
	if len(order) != 0 {
		t.Fatalf("woke %v before any deadline", order)
	}
	mu.Unlock()

	// Advance past the first deadline only: exactly the early sleeper
	// wakes — the determinism real time.Sleep waits never give a test.
	c.Advance(1 * time.Second)
	woke := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), order...)
	}
	for deadline := time.Now().Add(5 * time.Second); len(woke()) == 0 && time.Now().Before(deadline); {
		time.Sleep(100 * time.Microsecond)
	}
	if got := woke(); len(got) != 1 || got[0] != "early" {
		t.Fatalf("after first deadline, woke %v, want [early]", got)
	}
	if c.Waiters() != 1 {
		t.Fatal("late sleeper was released early")
	}

	c.Advance(4 * time.Second)
	wg.Wait()
	if order[1] != "late" {
		t.Fatalf("wake order = %v, want [early late]", order)
	}
	if got := c.Now(); !got.Equal(time.Unix(1000, 0).Add(5500 * time.Millisecond)) {
		t.Fatalf("Now() = %v after advances", got)
	}
	if ch := c.After(0); len(ch) != 1 {
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestProxyDropSeversAndRestoreHeals(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer backend.Close()

	p, err := NewProxy(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Disable keep-alives so a healed partition dials fresh instead of
	// reusing a severed connection.
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 5 * time.Second}
	get := func() (string, error) {
		resp, err := hc.Get(p.URL())
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	if body, err := get(); err != nil || body != "ok" {
		t.Fatalf("pass-through: body=%q err=%v", body, err)
	}
	p.Drop()
	if _, err := get(); err == nil {
		t.Fatal("request through a dropped proxy succeeded")
	}
	p.Restore()
	if body, err := get(); err != nil || body != "ok" {
		t.Fatalf("after restore: body=%q err=%v", body, err)
	}
}

func TestFailpointsArmOnceAndCount(t *testing.T) {
	fp := NewFailpoints()
	boom := errors.New("boom")
	fp.Arm("drain", boom)

	if err := fp.Hit("announce"); err != nil {
		t.Fatalf("unarmed phase errored: %v", err)
	}
	if err := fp.Hit("drain"); !errors.Is(err, boom) {
		t.Fatalf("armed phase returned %v, want boom", err)
	}
	if err := fp.Hit("drain"); err != nil {
		t.Fatalf("one-shot failpoint fired twice: %v", err)
	}
	if got := fp.Hits("drain"); got != 2 {
		t.Fatalf("Hits(drain) = %d, want 2", got)
	}

	fp.Arm("commit", boom)
	fp.Disarm("commit")
	if err := fp.Hit("commit"); err != nil {
		t.Fatalf("disarmed phase errored: %v", err)
	}
}
