package mutator

import (
	"strings"
	"testing"

	"exterminator/internal/diefast"
	"exterminator/internal/mem"
	"exterminator/internal/xrand"
)

// progFunc adapts a function to Program.
type progFunc struct {
	name string
	fn   func(e *Env)
}

func (p progFunc) Name() string { return p.name }
func (p progFunc) Run(e *Env)   { p.fn(e) }

func newEnv(seed uint64) *Env {
	h := diefast.New(diefast.DefaultConfig(), xrand.New(seed))
	return NewEnv(h, h.Space(), xrand.New(99), nil)
}

func TestCompletedRun(t *testing.T) {
	e := newEnv(1)
	out := Run(progFunc{"ok", func(e *Env) {
		p := e.Malloc(32)
		e.Write(p, 0, []byte("hello"))
		buf := make([]byte, 5)
		e.Read(p, 0, buf)
		if string(buf) != "hello" {
			e.Fail("readback mismatch")
		}
		e.Free(p)
		e.Print("done")
	}}, e)
	if !out.Completed || out.Crashed || out.Failed {
		t.Fatalf("outcome: %s", out)
	}
	if strings.TrimSpace(string(out.Output)) != "done" {
		t.Fatalf("output %q", out.Output)
	}
	if out.Clock != 1 {
		t.Fatalf("clock = %d", out.Clock)
	}
}

func TestCrashOnWildWrite(t *testing.T) {
	out := Run(progFunc{"wild", func(e *Env) {
		e.Write(0xdeadbeef000, 0, []byte("boom"))
	}}, newEnv(2))
	if !out.Crashed || out.Fault == nil || out.Fault.Kind != mem.SegV {
		t.Fatalf("outcome: %s", out)
	}
	if out.Completed {
		t.Fatal("crashed run marked completed")
	}
}

func TestCrashOnCanaryDeref(t *testing.T) {
	out := Run(progFunc{"dangle-read", func(e *Env) {
		p := e.Malloc(64)
		e.FreeUnderneath(p) // premature free; slot is canary-filled
		v := e.Read64(p, 0) // reads the canary word
		e.Deref(v)          // dereferences it: alignment/segv trap
	}}, newEnv(3))
	if !out.Crashed {
		t.Fatalf("outcome: %s", out)
	}
}

func TestFailOutcome(t *testing.T) {
	out := Run(progFunc{"abort", func(e *Env) { e.Fail("bitset corrupt") }}, newEnv(4))
	if !out.Failed || out.FailMsg != "bitset corrupt" || out.Crashed {
		t.Fatalf("outcome: %s", out)
	}
	if !out.Bad() {
		t.Fatal("failed run not Bad()")
	}
}

func TestStopOutcome(t *testing.T) {
	out := Run(progFunc{"stop", func(e *Env) { panic(Stop{Reason: "diefast signal"}) }}, newEnv(5))
	if !out.Stopped || out.StopReason != "diefast signal" {
		t.Fatalf("outcome: %s", out)
	}
	if out.Bad() {
		t.Fatal("stop is not a failure")
	}
}

func TestMallocBreakpoint(t *testing.T) {
	e := newEnv(6)
	e.StopAtClock = 5
	allocs := 0
	out := Run(progFunc{"bp", func(e *Env) {
		for i := 0; i < 100; i++ {
			e.Malloc(16)
			allocs++
		}
	}}, e)
	if !out.BreakpointHit {
		t.Fatalf("outcome: %s", out)
	}
	// The 5th allocation completes (clock=5) but control never returns to
	// the program, so its own counter reads 4.
	if allocs != 4 || out.Clock != 5 {
		t.Fatalf("stopped after %d allocs, clock %d", allocs, out.Clock)
	}
}

func TestCallSitesDistinguishPaths(t *testing.T) {
	e := newEnv(7)
	h := e.Alloc.(*diefast.Heap)
	var p1, p2 Ptr
	Run(progFunc{"sites", func(e *Env) {
		e.Call(0x100, func() { p1 = e.Malloc(32) })
		e.Call(0x200, func() { p2 = e.Malloc(32) })
	}}, e)
	m1, s1, _ := h.Diehard().Lookup(p1)
	m2, s2, _ := h.Diehard().Lookup(p2)
	if m1.Meta(s1).AllocSite == m2.Meta(s2).AllocSite {
		t.Fatal("different call paths produced the same site")
	}
}

func TestLiveTracking(t *testing.T) {
	e := newEnv(8)
	Run(progFunc{"live", func(e *Env) {
		a := e.Malloc(16)
		b := e.Malloc(16)
		c := e.Malloc(16)
		e.Free(b)
		live := e.Live()
		if len(live) != 2 {
			t.Fatalf("live = %d", len(live))
		}
		if live[0].Ptr != a || live[1].Ptr != c {
			t.Fatal("live order not by ordinal")
		}
		if live[0].Ord != 1 || live[1].Ord != 3 {
			t.Fatalf("ordinals %d,%d", live[0].Ord, live[1].Ord)
		}
		if o, ok := e.Object(a); !ok || o.Size != 16 {
			t.Fatal("Object lookup failed")
		}
		if _, ok := e.Object(b); ok {
			t.Fatal("freed object still live")
		}
	}}, e)
}

type countingHook struct {
	ords  []uint64
	sizes []int
}

func (h *countingHook) AfterMalloc(e *Env, ord uint64, ptr Ptr, size int) {
	h.ords = append(h.ords, ord)
	h.sizes = append(h.sizes, size)
}

func TestHookObservesAllocations(t *testing.T) {
	e := newEnv(9)
	hook := &countingHook{}
	e.Hook = hook
	Run(progFunc{"hooked", func(e *Env) {
		e.Malloc(10)
		e.Malloc(20)
	}}, e)
	if len(hook.ords) != 2 || hook.ords[0] != 1 || hook.sizes[1] != 20 {
		t.Fatalf("hook saw %v %v", hook.ords, hook.sizes)
	}
}

func TestDeterministicAcrossHeapSeeds(t *testing.T) {
	// Same program seed, different heap seeds: outputs and clocks align
	// (the replica property).
	prog := progFunc{"det", func(e *Env) {
		var ptrs []Ptr
		for i := 0; i < 200; i++ {
			p := e.Malloc(8 + e.Rng.Intn(100))
			ptrs = append(ptrs, p)
			if len(ptrs) > 10 && e.Rng.Bool(0.5) {
				k := e.Rng.Intn(len(ptrs))
				e.Free(ptrs[k])
				ptrs = append(ptrs[:k], ptrs[k+1:]...)
			}
		}
		e.Printf("allocs=%d live=%d\n", e.Alloc.Clock(), len(ptrs))
	}}
	run := func(heapSeed uint64) *Outcome {
		h := diefast.New(diefast.DefaultConfig(), xrand.New(heapSeed))
		e := NewEnv(h, h.Space(), xrand.New(42), nil)
		return Run(prog, e)
	}
	o1, o2 := run(111), run(222)
	if string(o1.Output) != string(o2.Output) || o1.Clock != o2.Clock {
		t.Fatalf("replicas diverged: %q/%d vs %q/%d", o1.Output, o1.Clock, o2.Output, o2.Clock)
	}
}

func TestHarnessBugsNotSwallowed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-fault panic was swallowed")
		}
	}()
	Run(progFunc{"bug", func(e *Env) { panic("harness bug") }}, newEnv(10))
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []*Outcome{
		{Program: "p", Completed: true},
		{Program: "p", Crashed: true, Fault: &mem.Fault{Kind: mem.SegV}},
		{Program: "p", Crashed: true},
		{Program: "p", Failed: true, FailMsg: "x"},
		{Program: "p", Stopped: true, StopReason: "r"},
		{Program: "p", BreakpointHit: true},
	} {
		if o.String() == "" {
			t.Fatal("empty outcome string")
		}
	}
}
