// Package mutator is the simulated-program substrate: the stand-in for
// the unmodified C/C++ binaries Exterminator runs underneath.
//
// A Program is deterministic given its input and program-level random
// seed, so running it over differently seeded heaps yields the aligned
// object ids that iterative/replicated isolation requires (§4). Programs
// allocate through an alloc.Allocator, access memory through the
// simulated address space (loads/stores that trap raise panics the
// driver converts into crash outcomes — the analogue of the paper's
// SIGSEGV handler that dumps a heap image), maintain a simulated call
// stack for site hashing (§3.2), and write observable output that the
// replicated-mode voter compares.
//
// The Env supports the malloc breakpoint of iterative mode (§3.4): replay
// stops when the allocation clock reaches the clock recorded in the
// original error's heap image.
package mutator

import (
	"bytes"
	"fmt"
	"sort"

	"exterminator/internal/alloc"
	"exterminator/internal/freelist"
	"exterminator/internal/mem"
	"exterminator/internal/site"
	"exterminator/internal/xrand"
)

// Ptr is a simulated pointer.
type Ptr = mem.Addr

// Program is a simulated application.
type Program interface {
	// Name identifies the workload (used in reports).
	Name() string
	// Run executes the program against the environment. Bugs manifest as
	// panics (memory faults, allocator aborts) or calls to Env.Fail.
	Run(e *Env)
}

// Hook observes allocation events; the fault injector uses it to plant
// bugs at deterministic logical points.
type Hook interface {
	// AfterMalloc runs after each successful program allocation. ord is
	// the allocation ordinal (clock value), ptr/size describe the object.
	AfterMalloc(e *Env, ord uint64, ptr Ptr, size int)
}

// Stop is the panic value used to halt execution deliberately (e.g. when
// DieFast signals an error in stop-on-error mode). The driver reports it
// as a stopped — not crashed — outcome.
type Stop struct {
	Reason string
}

// breakpoint is the internal panic value for malloc breakpoints.
type breakpoint struct{}

// failure is the internal panic value for Env.Fail (abort()-style exits).
type failure struct {
	msg string
}

// Object tracks one live program allocation (injector victim pool).
type Object struct {
	Ord  uint64
	Ptr  Ptr
	Size int
}

// Env is the execution environment handed to programs.
type Env struct {
	Alloc alloc.Allocator
	Space *mem.Space
	Stack *site.Stack
	Out   bytes.Buffer
	Rng   *xrand.RNG // program-level randomness: same seed across replicas
	Input []byte

	// StopAtClock, when nonzero, stops execution once the allocation
	// clock reaches it (the malloc breakpoint).
	StopAtClock uint64
	// Hook, when non-nil, observes allocations (fault injection).
	Hook Hook
	// NoSites skips call-site hashing (the libc baseline of Figure 7
	// computes no allocation contexts; Exterminator's cost of doing so
	// "dominates" on allocation-intensive programs, §7.1).
	NoSites bool

	live    map[Ptr]*Object
	byOrd   map[uint64]*Object
	ordered []uint64 // allocation ordinals of live objects (sorted lazily)
	dirty   bool
}

// NewEnv builds an environment around an allocator.
func NewEnv(a alloc.Allocator, space *mem.Space, rng *xrand.RNG, input []byte) *Env {
	return &Env{
		Alloc: a,
		Space: space,
		Stack: &site.Stack{},
		Rng:   rng,
		Input: input,
		live:  make(map[Ptr]*Object),
		byOrd: make(map[uint64]*Object),
	}
}

func (e *Env) siteHash() site.ID {
	if e.NoSites {
		return 0
	}
	return e.Stack.Hash()
}

// Malloc allocates n bytes at the current call site. Allocation failure
// aborts the program (as a real malloc returning NULL followed by a
// dereference would).
func (e *Env) Malloc(n int) Ptr {
	ptr, err := e.Alloc.Malloc(n, e.siteHash())
	if err != nil {
		panic(&mem.Fault{Kind: mem.SegV, Addr: 0, Op: "malloc-failed"})
	}
	ord := e.Alloc.Clock()
	o := &Object{Ord: ord, Ptr: ptr, Size: n}
	e.live[ptr] = o
	e.byOrd[ord] = o
	e.dirty = true
	if e.Hook != nil {
		e.Hook.AfterMalloc(e, ord, ptr, n)
	}
	if e.StopAtClock != 0 && ord >= e.StopAtClock {
		panic(breakpoint{})
	}
	return ptr
}

// Free releases ptr at the current call site.
func (e *Env) Free(ptr Ptr) {
	e.Alloc.Free(ptr, e.siteHash())
	e.forget(ptr)
}

// forget removes ptr from the live table (without freeing).
func (e *Env) forget(ptr Ptr) {
	if o, ok := e.live[ptr]; ok {
		delete(e.live, ptr)
		delete(e.byOrd, o.Ord)
		e.dirty = true
	}
}

// FreeUnderneath releases an object without the program's knowledge —
// the injector's premature free. The object stays in the program's
// conceptual ownership, so later program accesses become dangling
// reads/writes and its eventual Free becomes a double free.
func (e *Env) FreeUnderneath(ptr Ptr) {
	e.Alloc.Free(ptr, e.siteHash())
}

// Live returns the live objects ordered by allocation ordinal. The slice
// is valid until the next allocation or free.
func (e *Env) Live() []Object {
	if e.dirty {
		e.ordered = e.ordered[:0]
		for ord := range e.byOrd {
			e.ordered = append(e.ordered, ord)
		}
		sort.Slice(e.ordered, func(i, j int) bool { return e.ordered[i] < e.ordered[j] })
		e.dirty = false
	}
	out := make([]Object, 0, len(e.ordered))
	for _, ord := range e.ordered {
		out = append(out, *e.byOrd[ord])
	}
	return out
}

// Object returns the live object at ptr, if any.
func (e *Env) Object(ptr Ptr) (Object, bool) {
	o, ok := e.live[ptr]
	if !ok {
		return Object{}, false
	}
	return *o, true
}

// Write stores data at ptr+off, trapping on bad addresses.
func (e *Env) Write(ptr Ptr, off int, data []byte) {
	if f := e.Space.Write(ptr+Ptr(off), data); f != nil {
		panic(f)
	}
}

// Read loads len(buf) bytes from ptr+off, trapping on bad addresses.
func (e *Env) Read(ptr Ptr, off int, buf []byte) {
	if f := e.Space.Read(ptr+Ptr(off), buf); f != nil {
		panic(f)
	}
}

// Write64 stores a word, trapping on bad or misaligned addresses.
func (e *Env) Write64(ptr Ptr, off int, v uint64) {
	if f := e.Space.Write64(ptr+Ptr(off), v); f != nil {
		panic(f)
	}
}

// Read64 loads a word, trapping on bad or misaligned addresses.
func (e *Env) Read64(ptr Ptr, off int) uint64 {
	v, f := e.Space.Read64(ptr + Ptr(off))
	if f != nil {
		panic(f)
	}
	return v
}

// Deref follows a stored pointer value: the classic way a canary read
// turns into a crash (its low bit forces an alignment trap; its random
// high bits hit unmapped space).
func (e *Env) Deref(value uint64) uint64 {
	v, f := e.Space.Read64(mem.Addr(value))
	if f != nil {
		panic(f)
	}
	return v
}

// Call runs fn inside a simulated call frame with return address pc,
// giving allocations inside fn a distinct call site.
func (e *Env) Call(pc uint64, fn func()) {
	e.Stack.Push(pc)
	defer e.Stack.Pop()
	fn()
}

// Print writes voter-visible output.
func (e *Env) Print(args ...any) {
	fmt.Fprintln(&e.Out, args...)
}

// Printf writes formatted voter-visible output.
func (e *Env) Printf(format string, args ...any) {
	fmt.Fprintf(&e.Out, format, args...)
}

// Fail aborts the program with a message, as a failed assertion or
// abort() would. Distinct from a crash: the program detected its own
// confusion (e.g. espresso reading canary bytes as bitset data).
func (e *Env) Fail(msg string) {
	panic(failure{msg: msg})
}

// Outcome describes how a run ended.
type Outcome struct {
	Program string
	// Completed: Run returned normally.
	Completed bool
	// Crashed: a memory fault (simulated SIGSEGV/SIGBUS) or allocator
	// abort terminated the run.
	Crashed bool
	Fault   *mem.Fault      // non-nil for memory faults
	Abort   *freelist.Abort // non-nil for freelist allocator aborts
	// Stopped: halted deliberately via Stop (stop-on-error).
	Stopped    bool
	StopReason string
	// BreakpointHit: the malloc breakpoint was reached.
	BreakpointHit bool
	// Failed: the program aborted itself via Env.Fail.
	Failed  bool
	FailMsg string

	Output []byte
	Clock  uint64
}

// Bad reports whether the run ended abnormally (crash or self-detected
// failure) — the cumulative mode's "failed run" predicate.
func (o *Outcome) Bad() bool { return o.Crashed || o.Failed }

// String summarizes the outcome.
func (o *Outcome) String() string {
	switch {
	case o.Crashed && o.Fault != nil:
		return fmt.Sprintf("%s: crashed (%v) at clock %d", o.Program, o.Fault, o.Clock)
	case o.Crashed && o.Abort != nil:
		return fmt.Sprintf("%s: aborted (%v) at clock %d", o.Program, o.Abort, o.Clock)
	case o.Crashed:
		return fmt.Sprintf("%s: crashed at clock %d", o.Program, o.Clock)
	case o.Failed:
		return fmt.Sprintf("%s: failed (%s) at clock %d", o.Program, o.FailMsg, o.Clock)
	case o.Stopped:
		return fmt.Sprintf("%s: stopped (%s) at clock %d", o.Program, o.StopReason, o.Clock)
	case o.BreakpointHit:
		return fmt.Sprintf("%s: hit malloc breakpoint at clock %d", o.Program, o.Clock)
	default:
		return fmt.Sprintf("%s: completed at clock %d", o.Program, o.Clock)
	}
}

// Run executes a program, converting panics into classified outcomes —
// the role the paper's signal handlers play.
func Run(p Program, e *Env) (out *Outcome) {
	out = &Outcome{Program: p.Name()}
	defer func() {
		out.Output = e.Out.Bytes()
		out.Clock = e.Alloc.Clock()
		r := recover()
		switch v := r.(type) {
		case nil:
			out.Completed = true
		case breakpoint:
			out.BreakpointHit = true
		case Stop:
			out.Stopped = true
			out.StopReason = v.Reason
		case *Stop:
			out.Stopped = true
			out.StopReason = v.Reason
		case failure:
			out.Failed = true
			out.FailMsg = v.msg
		case *mem.Fault:
			out.Crashed = true
			out.Fault = v
		case *freelist.Abort:
			out.Crashed = true
			out.Abort = v
		default:
			panic(r) // genuine bug in the harness: do not swallow
		}
	}()
	p.Run(e)
	return out
}
