package mutator

// StreamProgram is a long-running service processed in input chunks —
// the continuously-running-program shape of the paper's replicated mode
// (Figure 5): input is broadcast chunk by chunk, output voted per chunk,
// and the process (and its heap) lives across chunks.
type StreamProgram interface {
	// Name identifies the service.
	Name() string
	// NewSession creates per-replica service state bound to env.
	NewSession(e *Env) Session
}

// Session is one replica's live service instance.
type Session interface {
	// Step processes one input chunk. Memory errors surface as panics,
	// which the serving harness traps per replica.
	Step(chunk []byte)
}
