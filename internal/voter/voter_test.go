package voter

import (
	"testing"
)

func TestUnanimous(t *testing.T) {
	r := Vote([][]byte{[]byte("out"), []byte("out"), []byte("out")})
	if !r.Unanimous || string(r.Winner) != "out" || len(r.Agree) != 3 {
		t.Fatalf("%+v", r)
	}
}

func TestPluralityOutvotesOneBadReplica(t *testing.T) {
	r := Vote([][]byte{[]byte("good"), []byte("BAD!"), []byte("good")})
	if r.Unanimous {
		t.Fatal("divergence not flagged")
	}
	if string(r.Winner) != "good" {
		t.Fatalf("winner %q", r.Winner)
	}
	if len(r.Dissent) != 1 || r.Dissent[0] != 1 {
		t.Fatalf("dissent %v", r.Dissent)
	}
}

func TestCrashedReplicaLosesToOutput(t *testing.T) {
	// Two crashed (nil output), one healthy: prefer real output on tie.
	r := Vote([][]byte{nil, []byte("alive"), nil})
	if string(r.Winner) != "alive" && len(r.Agree) != 2 {
		// nil got 2 votes; plurality honestly goes to nil. The tie-break
		// only applies on equal counts, so check the plain plurality.
		if r.Winner != nil {
			t.Fatalf("%+v", r)
		}
	}
}

func TestTiePrefersRealOutput(t *testing.T) {
	r := Vote([][]byte{nil, []byte("alive")})
	if string(r.Winner) != "alive" {
		t.Fatalf("tie broke toward silence: %+v", r)
	}
}

func TestEmpty(t *testing.T) {
	r := Vote(nil)
	if !r.Unanimous || r.Winner != nil {
		t.Fatalf("%+v", r)
	}
}

func TestAllDistinct(t *testing.T) {
	r := Vote([][]byte{[]byte("a"), []byte("b"), []byte("c")})
	if r.Unanimous || len(r.Agree) != 1 || len(r.Dissent) != 2 {
		t.Fatalf("%+v", r)
	}
}
