// Package voter implements output plurality voting across replicas
// (paper §3.1, Figure 5).
//
// DieHard-style replication broadcasts one input to N independently
// randomized replicas and "only actually generates output agreed on by a
// plurality of the replicas". A replica whose heap error perturbed its
// output is outvoted; disagreement is also the replicated-mode trigger
// for heap-image dumps and error isolation.
package voter

import "bytes"

// Result describes a vote.
type Result struct {
	// Winner is the plurality output (nil when no output wins).
	Winner []byte
	// Agree lists the replica indices that produced the winner.
	Agree []int
	// Dissent lists replicas that produced something else.
	Dissent []int
	// Unanimous reports whether every replica agreed.
	Unanimous bool
}

// Vote compares replica outputs and returns the plurality result. A nil
// slice entry represents a replica that produced no output (e.g. it
// crashed); nil entries can win the vote only if no non-crashed replica
// produced anything.
func Vote(outputs [][]byte) Result {
	type bucket struct {
		out   []byte
		votes []int
	}
	var buckets []*bucket
	for i, out := range outputs {
		placed := false
		for _, b := range buckets {
			if bytes.Equal(b.out, out) {
				b.votes = append(b.votes, i)
				placed = true
				break
			}
		}
		if !placed {
			buckets = append(buckets, &bucket{out: out, votes: []int{i}})
		}
	}
	var best *bucket
	for _, b := range buckets {
		if best == nil || len(b.votes) > len(best.votes) {
			best = b
		} else if len(b.votes) == len(best.votes) && b.out != nil && best.out == nil {
			best = b // prefer real output over crashed silence on ties
		}
	}
	if best == nil {
		return Result{Unanimous: true}
	}
	res := Result{Winner: best.out, Agree: best.votes}
	for i := range outputs {
		if !contains(best.votes, i) {
			res.Dissent = append(res.Dissent, i)
		}
	}
	res.Unanimous = len(res.Dissent) == 0
	return res
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
