package image

import (
	"bytes"
	"testing"

	"exterminator/internal/diefast"
	"exterminator/internal/heap"
	"exterminator/internal/mem"
	"exterminator/internal/site"
	"exterminator/internal/xrand"
)

func buildHeap(seed uint64) (*diefast.Heap, []mem.Addr) {
	h := diefast.New(diefast.DefaultConfig(), xrand.New(seed))
	var ptrs []mem.Addr
	for i := 0; i < 30; i++ {
		p, _ := h.Malloc(40+i, site.ID(i%5))
		ptrs = append(ptrs, p)
	}
	for i := 0; i < 10; i++ {
		h.Free(ptrs[i], site.ID(0x99))
	}
	return h, ptrs
}

func TestCaptureContents(t *testing.T) {
	h, _ := buildHeap(1)
	img := Capture(h, "test")
	if img.Reason != "test" || img.Clock != 30 {
		t.Fatalf("header: reason=%q clock=%d", img.Reason, img.Clock)
	}
	if img.Canary != h.Canary() || img.M != 2 {
		t.Fatal("canary or M not captured")
	}
	live, freed, bad := img.Stats()
	if live != 20 || freed != 10 || bad != 0 {
		t.Fatalf("stats = %d live, %d freed, %d bad", live, freed, bad)
	}
	if len(img.Minis) == 0 {
		t.Fatal("no miniheaps captured")
	}
}

func TestObjectLookupByID(t *testing.T) {
	h, ptrs := buildHeap(2)
	img := Capture(h, "t")
	for id := heap.ObjectID(1); id <= 30; id++ {
		o := img.Object(id)
		if o == nil {
			t.Fatalf("object %d missing", id)
		}
		if o.ID != id {
			t.Fatalf("object %d has id %d", id, o.ID)
		}
	}
	if img.Object(999) != nil {
		t.Fatal("phantom object")
	}
	// Address matches the allocator's pointer for a live object.
	o := img.Object(15)
	if o.Addr != ptrs[14] {
		t.Fatalf("object 15 addr %x, allocator returned %x", o.Addr, ptrs[14])
	}
}

func TestFreedObjectsCarryCanaryEvidence(t *testing.T) {
	h, _ := buildHeap(3)
	img := Capture(h, "t")
	for id := heap.ObjectID(1); id <= 10; id++ {
		o := img.Object(id)
		if o.Live {
			t.Fatalf("object %d should be freed", id)
		}
		if !o.Canaried {
			t.Fatalf("freed object %d not canaried in AlwaysFill mode", id)
		}
		if !img.Canary.Verify(o.Data) {
			t.Fatalf("freed object %d canary not intact in image", id)
		}
		if o.FreeSite != 0x99 || o.FreeTime == 0 {
			t.Fatalf("free metadata missing: %+v", o)
		}
	}
}

func TestCaptureIsSnapshot(t *testing.T) {
	h, ptrs := buildHeap(4)
	img := Capture(h, "t")
	o := img.Object(15)
	before := make([]byte, len(o.Data))
	copy(before, o.Data)
	// Mutate the heap after capture.
	h.Space().Write(ptrs[14], []byte{0xFF, 0xFE, 0xFD})
	if !bytes.Equal(o.Data, before) {
		t.Fatal("image data aliases live heap")
	}
}

func TestObjectAt(t *testing.T) {
	h, ptrs := buildHeap(5)
	img := Capture(h, "t")
	o := img.ObjectAt(ptrs[14] + 3)
	if o == nil || o.ID != 15 {
		t.Fatalf("ObjectAt interior = %+v", o)
	}
	if img.ObjectAt(0x1) != nil {
		t.Fatal("ObjectAt unmapped returned object")
	}
}

func TestMiniLookup(t *testing.T) {
	h, _ := buildHeap(6)
	img := Capture(h, "t")
	m := img.Mini(0)
	if m == nil || m.Index != 0 {
		t.Fatal("Mini(0) missing")
	}
	if img.Mini(999) != nil {
		t.Fatal("phantom miniheap")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h, _ := buildHeap(7)
	img := Capture(h, "sig: corruption at alloc")
	var buf bytes.Buffer
	if err := img.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != img.Reason || got.Clock != img.Clock || got.Canary != img.Canary || got.M != img.M {
		t.Fatal("header mismatch")
	}
	if len(got.Minis) != len(img.Minis) || len(got.Objects) != len(img.Objects) {
		t.Fatal("count mismatch")
	}
	for i := range img.Minis {
		if got.Minis[i] != img.Minis[i] {
			t.Fatalf("miniheap %d mismatch", i)
		}
	}
	for i := range img.Objects {
		a, b := &img.Objects[i], &got.Objects[i]
		if a.ID != b.ID || a.Addr != b.Addr || a.Live != b.Live ||
			a.Canaried != b.Canaried || a.Bad != b.Bad ||
			a.AllocSite != b.AllocSite || a.FreeSite != b.FreeSite ||
			a.AllocTime != b.AllocTime || a.FreeTime != b.FreeTime ||
			a.ReqSize != b.ReqSize || a.SlotSize != b.SlotSize ||
			a.Mini != b.Mini || a.Slot != b.Slot {
			t.Fatalf("object %d field mismatch:\n%+v\n%+v", i, a, b)
		}
		if !bytes.Equal(a.Data, b.Data) {
			t.Fatalf("object %d data mismatch", i)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{
		nil,
		[]byte("short"),
		[]byte("XXXXYYYYZZZZWWWWVVVVUUUU00000000"),
	} {
		if _, err := Decode(bytes.NewReader(in)); err == nil {
			t.Fatalf("decoded garbage %q", in)
		}
	}
	// Truncated valid stream.
	h, _ := buildHeap(8)
	var buf bytes.Buffer
	Capture(h, "t").Encode(&buf)
	if _, err := Decode(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("decoded truncated image")
	}
}

func TestBadIsolatedObjectsInImage(t *testing.T) {
	h := diefast.New(diefast.DefaultConfig(), xrand.New(9))
	p, _ := h.Malloc(40, 1)
	h.Free(p, 2)
	h.Space().Write(p, []byte("CORRUPT!"))
	h.OnError = func(diefast.Event) {}
	for i := 0; i < 5000 && len(h.Events()) == 0; i++ {
		q, _ := h.Malloc(40, 1)
		h.Free(q, 2)
	}
	if len(h.Events()) == 0 {
		t.Skip("corruption not probed in this run")
	}
	img := Capture(h, "t")
	_, _, bad := img.Stats()
	if bad == 0 {
		t.Fatal("bad-isolated slot not in image")
	}
	o := img.Object(1)
	if o == nil || !o.Bad {
		t.Fatalf("object 1 not marked bad: %+v", o)
	}
	if string(o.Data[:8]) != "CORRUPT!" {
		t.Fatalf("evidence not preserved: %q", o.Data[:8])
	}
}

func TestClockIsMallocBreakpoint(t *testing.T) {
	// The replay driver uses Image.Clock as the malloc breakpoint; it must
	// equal the number of allocations to date (paper §3.4).
	h := diefast.New(diefast.DefaultConfig(), xrand.New(10))
	for i := 0; i < 17; i++ {
		h.Malloc(16, 0)
	}
	if img := Capture(h, "t"); img.Clock != 17 {
		t.Fatalf("clock = %d, want 17", img.Clock)
	}
}

func BenchmarkCapture1000Objects(b *testing.B) {
	h := diefast.New(diefast.DefaultConfig(), xrand.New(1))
	for i := 0; i < 1000; i++ {
		h.Malloc(64, site.ID(i%10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Capture(h, "bench")
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	h, _ := buildHeap(1)
	img := Capture(h, "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		img.Encode(&buf)
		if _, err := Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
