package image

import (
	"bytes"
	"testing"
	"testing/quick"

	"exterminator/internal/diefast"
	"exterminator/internal/heap"
	"exterminator/internal/site"
	"exterminator/internal/xrand"
)

// TestPropertyRoundTripArbitraryHeaps captures heaps produced by random
// allocation/free sequences and checks Encode∘Decode is the identity on
// every field and every byte.
func TestPropertyRoundTripArbitraryHeaps(t *testing.T) {
	err := quick.Check(func(seed uint64, ops []uint16) bool {
		if len(ops) > 300 {
			ops = ops[:300]
		}
		h := diefast.New(diefast.CumulativeConfig(0.5), xrand.New(seed))
		var live []uint64
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				p, err := h.Malloc(1+int(op)%500, site.ID(op))
				if err != nil {
					return false
				}
				live = append(live, p)
			} else {
				k := int(op) % len(live)
				h.Free(live[k], site.ID(op^0xFF))
				live = append(live[:k], live[k+1:]...)
			}
		}
		img := Capture(h, "property")
		var buf bytes.Buffer
		if err := img.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if got.Clock != img.Clock || got.Canary != img.Canary ||
			got.M != img.M || got.Reason != img.Reason ||
			len(got.Minis) != len(img.Minis) || len(got.Objects) != len(img.Objects) {
			return false
		}
		for i := range img.Minis {
			if got.Minis[i] != img.Minis[i] {
				return false
			}
		}
		for i := range img.Objects {
			a, b := &img.Objects[i], &got.Objects[i]
			if a.ID != b.ID || a.Mini != b.Mini || a.Slot != b.Slot ||
				a.Addr != b.Addr || a.SlotSize != b.SlotSize ||
				a.ReqSize != b.ReqSize || a.AllocSite != b.AllocSite ||
				a.FreeSite != b.FreeSite || a.AllocTime != b.AllocTime ||
				a.FreeTime != b.FreeTime || a.Live != b.Live ||
				a.Canaried != b.Canaried || a.Bad != b.Bad ||
				!bytes.Equal(a.Data, b.Data) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropertyObjectIndexComplete: every live allocation appears in the
// image exactly once, retrievable by id, with the address the allocator
// returned.
func TestPropertyObjectIndexComplete(t *testing.T) {
	err := quick.Check(func(seed uint64, n uint8) bool {
		h := diefast.New(diefast.DefaultConfig(), xrand.New(seed))
		count := 1 + int(n)%100
		addrs := make(map[uint64]uint64, count)
		for i := 0; i < count; i++ {
			p, err := h.Malloc(16, 0)
			if err != nil {
				return false
			}
			addrs[uint64(i+1)] = p
		}
		img := Capture(h, "t")
		seen := 0
		for id, addr := range addrs {
			o := img.Object(heap.ObjectID(id))
			if o == nil || o.Addr != addr || !o.Live {
				return false
			}
			seen++
		}
		return seen == count
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}
