// Package image implements Exterminator's heap images (paper §3.4).
//
// A heap image is "akin to a core dump, but contains less data (e.g., no
// code), and is organized to simplify processing": the full heap contents
// and metadata of every tracked slot, plus the current allocation time.
// The iterative/replicated error isolator (§4) consumes several images of
// the *same logical execution* under differently randomized heaps and
// diffs objects by their ids.
//
// Images capture every slot that has ever held an object — live objects,
// freed (possibly canaried) slots whose last occupant is still recorded,
// and bad-isolated slots — because freed slots carry the canary evidence
// the isolator needs.
package image

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"exterminator/internal/canary"
	"exterminator/internal/diefast"
	"exterminator/internal/heap"
	"exterminator/internal/mem"
	"exterminator/internal/site"
)

// Miniheap records the geometry of one miniheap at capture time.
// Miniheap indexing is deterministic across replicas (creation order
// follows the program's allocation sequence), which cumulative-mode
// probability computations rely on.
type Miniheap struct {
	Index      int
	Class      int
	SlotSize   int
	Slots      int
	Base       mem.Addr
	CreateTime uint64
}

// Object is one tracked slot.
type Object struct {
	ID        heap.ObjectID
	Mini      int // miniheap index
	Slot      int
	Addr      mem.Addr
	SlotSize  int
	ReqSize   int
	AllocSite site.ID
	FreeSite  site.ID
	AllocTime uint64
	FreeTime  uint64
	Live      bool
	Canaried  bool
	Bad       bool
	Data      []byte // full slot contents
}

// End returns the first address past the slot.
func (o *Object) End() mem.Addr { return o.Addr + mem.Addr(o.SlotSize) }

// Image is a captured heap state.
type Image struct {
	Reason  string // why the image was dumped (signal, divergence, breakpoint)
	Clock   uint64 // allocation time at capture (the malloc breakpoint value)
	Canary  canary.Canary
	M       float64
	Minis   []Miniheap
	Objects []Object

	byID map[heap.ObjectID]*Object
}

// Capture snapshots a DieFast heap.
func Capture(h *diefast.Heap, reason string) *Image {
	dh := h.Diehard()
	img := &Image{
		Reason: reason,
		Clock:  dh.Clock(),
		Canary: h.Canary(),
		M:      dh.M(),
	}
	for _, mh := range dh.Miniheaps() {
		img.Minis = append(img.Minis, Miniheap{
			Index: mh.Index, Class: mh.Class, SlotSize: mh.SlotSize,
			Slots: mh.Slots, Base: mh.Base(), CreateTime: mh.CreateTime,
		})
		for slot := 0; slot < mh.Slots; slot++ {
			m := mh.Meta(slot)
			if m.ID == 0 {
				continue // never occupied
			}
			data := make([]byte, mh.SlotSize)
			copy(data, mh.SlotData(slot))
			img.Objects = append(img.Objects, Object{
				ID: m.ID, Mini: mh.Index, Slot: slot,
				Addr: mh.SlotAddr(slot), SlotSize: mh.SlotSize,
				ReqSize: int(m.ReqSize), AllocSite: m.AllocSite, FreeSite: m.FreeSite,
				AllocTime: m.AllocTime, FreeTime: m.FreeTime,
				Live: mh.InUse(slot) && !m.Bad, Canaried: m.Canaried, Bad: m.Bad,
				Data: data,
			})
		}
	}
	return img
}

// Object returns the record for an object id, or nil if the id is not in
// the image (e.g. its slot has been recycled).
func (img *Image) Object(id heap.ObjectID) *Object {
	if img.byID == nil {
		img.byID = make(map[heap.ObjectID]*Object, len(img.Objects))
		for i := range img.Objects {
			img.byID[img.Objects[i].ID] = &img.Objects[i]
		}
	}
	return img.byID[id]
}

// ObjectAt resolves an address to the object whose slot contains it, or
// nil. Used for pointer-equivalence tests during isolation.
func (img *Image) ObjectAt(addr mem.Addr) *Object {
	for i := range img.Objects {
		o := &img.Objects[i]
		if addr >= o.Addr && addr < o.End() {
			return o
		}
	}
	return nil
}

// Mini returns the miniheap record with the given index, or nil.
func (img *Image) Mini(index int) *Miniheap {
	for i := range img.Minis {
		if img.Minis[i].Index == index {
			return &img.Minis[i]
		}
	}
	return nil
}

// Stats summarizes the image for tools.
func (img *Image) Stats() (live, freed, bad int) {
	for i := range img.Objects {
		switch {
		case img.Objects[i].Bad:
			bad++
		case img.Objects[i].Live:
			live++
		default:
			freed++
		}
	}
	return
}

// Binary format. All integers little-endian, fixed width.
const (
	magic   = 0x484d5458 // "XTMH"
	version = 1
)

// Encode writes the image.
func (img *Image) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	writeU64 := func(v uint64) { binary.Write(bw, binary.LittleEndian, v) }

	writeU32(magic)
	writeU32(version)
	reason := []byte(img.Reason)
	writeU32(uint32(len(reason)))
	bw.Write(reason)
	writeU64(img.Clock)
	writeU32(uint32(img.Canary))
	writeU64(uint64(img.M * 1000)) // milli-M, avoids float encoding
	writeU32(uint32(len(img.Minis)))
	writeU32(uint32(len(img.Objects)))

	for _, m := range img.Minis {
		writeU32(uint32(m.Index))
		writeU32(uint32(m.Class))
		writeU32(uint32(m.SlotSize))
		writeU32(uint32(m.Slots))
		writeU64(m.Base)
		writeU64(m.CreateTime)
	}
	for i := range img.Objects {
		o := &img.Objects[i]
		writeU64(uint64(o.ID))
		writeU32(uint32(o.Mini))
		writeU32(uint32(o.Slot))
		writeU64(o.Addr)
		writeU32(uint32(o.SlotSize))
		writeU32(uint32(o.ReqSize))
		writeU32(uint32(o.AllocSite))
		writeU32(uint32(o.FreeSite))
		writeU64(o.AllocTime)
		writeU64(o.FreeTime)
		var flags uint32
		if o.Live {
			flags |= 1
		}
		if o.Canaried {
			flags |= 2
		}
		if o.Bad {
			flags |= 4
		}
		writeU32(flags)
		writeU32(uint32(len(o.Data)))
		bw.Write(o.Data)
	}
	return bw.Flush()
}

// Decode reads an image written by Encode.
func Decode(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var err error
	readU32 := func() uint32 {
		var v uint32
		if err == nil {
			err = binary.Read(br, binary.LittleEndian, &v)
		}
		return v
	}
	readU64 := func() uint64 {
		var v uint64
		if err == nil {
			err = binary.Read(br, binary.LittleEndian, &v)
		}
		return v
	}

	if m := readU32(); err != nil || m != magic {
		if err == nil {
			err = errors.New("bad magic")
		}
		return nil, fmt.Errorf("image: %w", err)
	}
	if v := readU32(); err != nil || v != version {
		if err == nil {
			err = fmt.Errorf("unsupported version %d", v)
		}
		return nil, fmt.Errorf("image: %w", err)
	}
	img := &Image{}
	rlen := readU32()
	if err != nil {
		return nil, fmt.Errorf("image: %w", err)
	}
	const maxStr = 1 << 16
	if rlen > maxStr {
		return nil, errors.New("image: implausible reason length")
	}
	reason := make([]byte, rlen)
	if _, e := io.ReadFull(br, reason); e != nil {
		return nil, fmt.Errorf("image: reason: %w", e)
	}
	img.Reason = string(reason)
	img.Clock = readU64()
	img.Canary = canary.Canary(readU32())
	img.M = float64(readU64()) / 1000
	nMinis := readU32()
	nObjs := readU32()
	if err != nil {
		return nil, fmt.Errorf("image: header: %w", err)
	}
	const maxEntries = 1 << 26
	if nMinis > maxEntries || nObjs > maxEntries {
		return nil, errors.New("image: implausible entry count")
	}
	for i := uint32(0); i < nMinis; i++ {
		m := Miniheap{
			Index:    int(readU32()),
			Class:    int(readU32()),
			SlotSize: int(readU32()),
			Slots:    int(readU32()),
		}
		m.Base = readU64()
		m.CreateTime = readU64()
		if err != nil {
			return nil, fmt.Errorf("image: miniheap %d: %w", i, err)
		}
		img.Minis = append(img.Minis, m)
	}
	for i := uint32(0); i < nObjs; i++ {
		var o Object
		o.ID = heap.ObjectID(readU64())
		o.Mini = int(readU32())
		o.Slot = int(readU32())
		o.Addr = readU64()
		o.SlotSize = int(readU32())
		o.ReqSize = int(readU32())
		o.AllocSite = site.ID(readU32())
		o.FreeSite = site.ID(readU32())
		o.AllocTime = readU64()
		o.FreeTime = readU64()
		flags := readU32()
		o.Live = flags&1 != 0
		o.Canaried = flags&2 != 0
		o.Bad = flags&4 != 0
		dlen := readU32()
		if err != nil {
			return nil, fmt.Errorf("image: object %d: %w", i, err)
		}
		if dlen > 1<<24 {
			return nil, errors.New("image: implausible object size")
		}
		o.Data = make([]byte, dlen)
		if _, e := io.ReadFull(br, o.Data); e != nil {
			return nil, fmt.Errorf("image: object %d data: %w", i, e)
		}
		img.Objects = append(img.Objects, o)
	}
	return img, nil
}
