package triage

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"exterminator/internal/telemetry"
)

// requestIDHeader mirrors fleet.RequestIDHeader (this package sits
// below internal/fleet in the import graph, so the constant is
// duplicated rather than imported).
const requestIDHeader = "X-Request-ID"

// ServeHTTP serves the triage read API. Mount it at both "/v1/triage"
// (ranking) and "/v1/triage/" ({cluster} detail). A nil engine serves
// an empty ranking — partition-mode fleetds answer consistently rather
// than 404ing generic tooling.
//
// Read requests echo their X-Request-ID (minting one when absent) and
// log it, extending PR 6's write-path correlation to reads.
func (e *Engine) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reqID := strings.TrimSpace(r.Header.Get(requestIDHeader))
	if len(reqID) > 128 {
		reqID = reqID[:128]
	}
	if reqID == "" {
		reqID = telemetry.NewRequestID()
	}
	w.Header().Set(requestIDHeader, reqID)

	rest := strings.TrimPrefix(r.URL.Path, "/v1/triage")
	rest = strings.Trim(rest, "/")
	if rest != "" {
		d, ok := e.Detail(rest)
		if !ok {
			http.Error(w, "triage: no such cluster", http.StatusNotFound)
			return
		}
		if e != nil {
			e.logger.Debug("triage detail served", "cluster", rest, "requestId", reqID)
		}
		writeJSON(w, d)
		return
	}

	q := r.URL.Query()
	offset, _ := strconv.Atoi(q.Get("offset"))
	limit, _ := strconv.Atoi(q.Get("limit"))
	reply := e.Rankings(offset, limit)
	if e != nil {
		e.logger.Debug("triage ranking served",
			"offset", reply.Offset, "limit", reply.Limit, "total", reply.Total,
			"requestId", reqID)
	}
	writeJSON(w, reply)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
