package triage

import "exterminator/internal/telemetry"

// metricsSet is the triage instrument set, registered when the owning
// tier hands the engine a registry (SetMetrics). Nil on engines that
// never did — every touch point is nil-guarded.
type metricsSet struct {
	clusters     *telemetry.Gauge
	topBayes     *telemetry.Gauge
	passSec      *telemetry.Histogram
	transitions  map[string]*telemetry.Counter
	alertsFired  *telemetry.Counter
	alertRetries *telemetry.Counter
	alertDrops   *telemetry.Counter
}

func newMetricsSet(reg *telemetry.Registry) *metricsSet {
	m := &metricsSet{
		clusters: reg.Gauge("exterminator_triage_clusters",
			"Defect clusters the triage engine currently tracks."),
		topBayes: reg.Gauge("exterminator_triage_top_bayes",
			"Pooled log10 Bayes factor of the top-ranked cluster."),
		passSec: reg.Histogram("exterminator_triage_pass_seconds",
			"Triage pass latency (clustering + lifecycle + alert arming).",
			telemetry.DefBuckets),
		alertsFired: reg.Counter("exterminator_triage_alerts_fired_total",
			"Webhook alerts delivered."),
		alertRetries: reg.Counter("exterminator_triage_alert_retries_total",
			"Webhook alert deliveries retried after a failure."),
		alertDrops: reg.Counter("exterminator_triage_alert_drops_total",
			"Webhook alerts dropped after exhausting delivery attempts."),
		transitions: make(map[string]*telemetry.Counter),
	}
	for _, st := range []string{StateNew, StateActive, StatePatched, StateResolved, StateRegressed} {
		m.transitions[st] = reg.Counter("exterminator_triage_transitions_total",
			"Cluster lifecycle transitions, labeled by destination state.",
			telemetry.L("to", st))
	}
	return m
}

func (m *metricsSet) transition(to string) {
	if c := m.transitions[to]; c != nil {
		c.Inc()
	}
}
