package triage

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"exterminator/internal/cumulative"
	"exterminator/internal/patch"
	"exterminator/internal/site"
)

// over builds an overflow candidate.
func over(s site.ID, bayes float64, obs int) cumulative.Candidate {
	return cumulative.Candidate{Site: s, Bayes: bayes, Obs: obs}
}

// dang builds a dangling candidate.
func dang(alloc, free site.ID, bayes float64, obs int) cumulative.Candidate {
	return cumulative.Candidate{Pair: site.Pair{Alloc: alloc, Free: free}, Bayes: bayes, Obs: obs}
}

func TestSignatureClustering(t *testing.T) {
	e := New(Config{})
	// Two sites share the same innermost 3 frames but differ in outer
	// frames and in the high "module base" bits — one source defect
	// reached through two call paths on two installations.
	e.RecordFrames(0x100, []uint64{0xaaaa, 0x1111, 0x2222, 0x3333})
	e.RecordFrames(0x101, []uint64{0xbbbb, 0xcccc, 0xdead_0000_0000_0000 | 0x1111, 0x2222, 0x3333})
	// A third site has a different innermost suffix.
	e.RecordFrames(0x102, []uint64{0x1111, 0x2222, 0x9999})

	e.Pass(PassInput{Overflows: []cumulative.Candidate{
		over(0x100, 100, 10), over(0x101, 50, 5), over(0x102, 10, 1),
	}})

	if got := e.Clusters(); got != 2 {
		t.Fatalf("clusters = %d, want 2 (shared suffix merges 0x100+0x101)", got)
	}
	r := e.Rankings(0, 10)
	if r.Total != 2 || len(r.Clusters) != 2 {
		t.Fatalf("ranking total/len = %d/%d, want 2/2", r.Total, len(r.Clusters))
	}
	topC := r.Clusters[0]
	if topC.Sites != 2 || topC.Occurrences != 15 {
		t.Fatalf("top cluster sites/occurrences = %d/%d, want 2/15", topC.Sites, topC.Occurrences)
	}
	// Pooled evidence: log10(100) + log10(50) ≈ 3.699 beats log10(10) = 1.
	if topC.PooledBayes <= r.Clusters[1].PooledBayes {
		t.Fatalf("ranking not pooled-descending: %v then %v", topC.PooledBayes, r.Clusters[1].PooledBayes)
	}
	d, ok := e.Detail(topC.ID)
	if !ok {
		t.Fatalf("no detail for top cluster %q", topC.ID)
	}
	if len(d.Instances) != 2 || d.Instances[0].Bayes < d.Instances[1].Bayes {
		t.Fatalf("instances = %+v, want 2 entries strongest first", d.Instances)
	}
	if len(d.Frames) != 3 {
		t.Fatalf("frames = %v, want the 3-frame signature suffix", d.Frames)
	}
}

func TestSiteFallbackGroupsDanglingByAllocSite(t *testing.T) {
	e := New(Config{})
	// No recorded stacks: dangling pairs cluster by allocation site, so
	// every premature free of one site lands in one cluster.
	e.Pass(PassInput{Danglings: []cumulative.Candidate{
		dang(0x200, 0x300, 40, 4),
		dang(0x200, 0x301, 30, 3),
		dang(0x201, 0x300, 20, 2),
	}})
	if got := e.Clusters(); got != 2 {
		t.Fatalf("clusters = %d, want 2 (grouped by alloc site)", got)
	}
	r := e.Rankings(0, 10)
	if r.Clusters[0].Occurrences != 7 {
		t.Fatalf("top cluster occurrences = %d, want 7", r.Clusters[0].Occurrences)
	}
	d, _ := e.Detail(r.Clusters[0].ID)
	if len(d.Instances) != 2 || d.Instances[0].Free == "" {
		t.Fatalf("dangling instances = %+v, want 2 with free sites", d.Instances)
	}
}

func TestInstanceListCapped(t *testing.T) {
	e := New(Config{MaxInstances: 5})
	// 40 sites sharing one signature: the cluster must serve at most 5
	// instances (gasoline DL-5 — no unbounded example lists).
	var cands []cumulative.Candidate
	for i := 0; i < 40; i++ {
		id := site.ID(0x1000 + i)
		e.RecordFrames(id, []uint64{uint64(i), 0x1, 0x2, 0x3})
		cands = append(cands, over(id, float64(i+1), 1))
	}
	e.Pass(PassInput{Overflows: cands})
	if got := e.Clusters(); got != 1 {
		t.Fatalf("clusters = %d, want 1", got)
	}
	d, _ := e.Detail(e.Rankings(0, 1).Clusters[0].ID)
	if len(d.Instances) != 5 {
		t.Fatalf("instances = %d, want cap 5", len(d.Instances))
	}
	if d.Sites != 40 || d.Instances[0].Bayes != 40 {
		t.Fatalf("cap must keep the strongest members: sites=%d top=%v", d.Sites, d.Instances[0].Bayes)
	}
}

func TestPaginationClamps(t *testing.T) {
	e := New(Config{})
	var cands []cumulative.Candidate
	for i := 0; i < 30; i++ {
		cands = append(cands, over(site.ID(0x500+i), float64(i+1), 1))
	}
	e.Pass(PassInput{Overflows: cands})

	r := e.Rankings(0, 0)
	if r.Limit != DefaultPageSize || len(r.Clusters) != DefaultPageSize || r.Total != 30 {
		t.Fatalf("default page: limit=%d len=%d total=%d", r.Limit, len(r.Clusters), r.Total)
	}
	r = e.Rankings(25, 1000)
	if r.Limit != MaxPageSize || len(r.Clusters) != 5 {
		t.Fatalf("clamped page: limit=%d len=%d, want %d/5", r.Limit, len(r.Clusters), MaxPageSize)
	}
	r = e.Rankings(1000, 10)
	if len(r.Clusters) != 0 || r.Total != 30 {
		t.Fatalf("past-the-end page: len=%d total=%d, want 0/30", len(r.Clusters), r.Total)
	}
	if r = e.Rankings(-5, 10); r.Offset != 0 {
		t.Fatalf("negative offset not clamped: %d", r.Offset)
	}
}

// passOver drives one pass with a single overflow candidate.
func passOver(e *Engine, ps *patch.Set, bayes float64, obs int) PassStats {
	return e.Pass(PassInput{
		Overflows: []cumulative.Candidate{over(0x42, bayes, obs)},
		Patches:   ps,
	})
}

func TestLifecycle(t *testing.T) {
	e := New(Config{ResolveAfter: 2})

	passOver(e, nil, 10, 1)
	id := e.Rankings(0, 1).Clusters[0].ID
	state := func() string {
		d, ok := e.Detail(id)
		if !ok {
			t.Fatalf("cluster %q vanished", id)
		}
		return d.State
	}
	if got := state(); got != StateNew {
		t.Fatalf("after first pass: %q, want %q", got, StateNew)
	}

	passOver(e, nil, 12, 2)
	if got := state(); got != StateActive {
		t.Fatalf("after second pass: %q, want %q", got, StateActive)
	}

	// The patch log covers the site: patched.
	ps := patch.New()
	ps.AddPad(0x42, 8)
	passOver(e, ps, 12, 2)
	if got := state(); got != StatePatched {
		t.Fatalf("patched pass: %q, want %q", got, StatePatched)
	}

	// Two quiet passes (no new occurrences) resolve it.
	passOver(e, ps, 12, 2)
	passOver(e, ps, 12, 2)
	if got := state(); got != StateResolved {
		t.Fatalf("after quiet passes: %q, want %q", got, StateResolved)
	}

	// Fresh evidence against a resolved cluster: regression.
	passOver(e, ps, 20, 9)
	d, _ := e.Detail(id)
	if d.State != StateRegressed || d.Regressions != 1 {
		t.Fatalf("after regrowth: state=%q regressions=%d, want %q/1", d.State, d.Regressions, StateRegressed)
	}
}

func TestAlertArmAndDeliver(t *testing.T) {
	var posts atomic.Int64
	var got AlertPayload
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		json.NewDecoder(r.Body).Decode(&got)
	}))
	defer srv.Close()

	e := New(Config{Source: "fleetd", Alert: AlertConfig{URL: srv.URL, BayesThreshold: 2}})
	st := passOver(e, nil, 1000, 5) // pooled log10 = 3 >= 2
	if st.Queued != 1 || e.PendingAlerts() != 1 {
		t.Fatalf("queued=%d pending=%d, want 1/1", st.Queued, e.PendingAlerts())
	}
	if n := e.DeliverAlerts(context.Background()); n != 1 {
		t.Fatalf("delivered = %d, want 1", n)
	}
	if posts.Load() != 1 {
		t.Fatalf("webhook POSTs = %d, want 1", posts.Load())
	}
	if got.Source != "fleetd" || got.Reason != "bayes" || got.Cluster.Occurrences != 5 {
		t.Fatalf("payload = %+v", got)
	}

	// Dedup: the same crossing never re-arms.
	for i := 0; i < 3; i++ {
		if st := passOver(e, nil, 1000, 5); st.Queued != 0 {
			t.Fatalf("pass %d re-armed a fired cluster", i)
		}
	}
	e.DeliverAlerts(context.Background())
	if posts.Load() != 1 {
		t.Fatalf("webhook POSTs after dedup = %d, want still 1", posts.Load())
	}
}

func TestAlertPayloadNeverCarriesRawText(t *testing.T) {
	var body []byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		buf := new(bytes.Buffer)
		buf.ReadFrom(r.Body)
		body = buf.Bytes()
	}))
	defer srv.Close()

	e := New(Config{Alert: AlertConfig{URL: srv.URL, MinOccurrences: 1}})
	passOver(e, nil, 10, 3)
	e.DeliverAlerts(context.Background())

	// The compound alert is a normalized summary: no instance lists, no
	// frames, no details text ride along (gasoline DL-6).
	for _, forbidden := range []string{"instances", "frames", "details", "Details"} {
		if bytes.Contains(body, []byte(`"`+forbidden+`"`)) {
			t.Fatalf("alert payload carries %q: %s", forbidden, body)
		}
	}
	var p AlertPayload
	if err := json.Unmarshal(body, &p); err != nil || p.Cluster.Summary == "" {
		t.Fatalf("payload not a normalized summary: %v %s", err, body)
	}
}

func TestAlertRegressionRefiresAfterCooldown(t *testing.T) {
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
	}))
	defer srv.Close()

	e := New(Config{ResolveAfter: 1, Alert: AlertConfig{URL: srv.URL, BayesThreshold: 1, Cooldown: time.Hour}})
	clock := time.Now()
	e.alerter.now = func() time.Time { return clock }

	ps := patch.New()
	ps.AddPad(0x42, 8)
	passOver(e, nil, 100, 1) // new, alert armed
	passOver(e, ps, 100, 1)  // patched
	passOver(e, ps, 100, 1)  // resolved (1 quiet pass)
	e.DeliverAlerts(context.Background())
	if posts.Load() != 1 {
		t.Fatalf("initial alert POSTs = %d, want 1", posts.Load())
	}

	// Regression inside the cooldown window: suppressed.
	passOver(e, ps, 100, 7)
	e.DeliverAlerts(context.Background())
	if posts.Load() != 1 {
		t.Fatalf("regression re-fired inside cooldown")
	}

	// Roll the clock past the cooldown: the standing regression (count 1,
	// fired record still at 0) re-arms on the very next pass.
	clock = clock.Add(2 * time.Hour)
	passOver(e, ps, 100, 7)
	// A second resolved→regressed cycle inside the new cooldown window
	// stays suppressed even though Regressions grows again.
	passOver(e, nil, 100, 20)
	passOver(e, ps, 100, 20)
	passOver(e, ps, 100, 20)
	passOver(e, ps, 100, 33)
	e.DeliverAlerts(context.Background())
	if posts.Load() != 2 {
		t.Fatalf("regression after cooldown: POSTs = %d, want 2", posts.Load())
	}
}

func TestAlertRetryBackoffAndDrop(t *testing.T) {
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		http.Error(w, "nope", http.StatusBadGateway)
	}))
	defer srv.Close()

	e := New(Config{Alert: AlertConfig{
		URL: srv.URL, MinOccurrences: 1, MaxAttempts: 3, Backoff: time.Minute,
	}})
	clock := time.Now()
	e.alerter.now = func() time.Time { return clock }

	passOver(e, nil, 10, 2)
	if n := e.DeliverAlerts(context.Background()); n != 0 {
		t.Fatalf("delivered %d against a failing webhook", n)
	}
	if posts.Load() != 1 || e.PendingAlerts() != 1 {
		t.Fatalf("after first attempt: posts=%d pending=%d, want 1/1", posts.Load(), e.PendingAlerts())
	}

	// Before the backoff elapses nothing is due.
	e.DeliverAlerts(context.Background())
	if posts.Load() != 1 {
		t.Fatalf("retried before backoff elapsed")
	}

	// Walk the clock through the remaining attempts: 1m, then 2m.
	clock = clock.Add(61 * time.Second)
	e.DeliverAlerts(context.Background())
	clock = clock.Add(121 * time.Second)
	e.DeliverAlerts(context.Background())
	if posts.Load() != 3 {
		t.Fatalf("total attempts = %d, want MaxAttempts=3", posts.Load())
	}
	if e.PendingAlerts() != 0 {
		t.Fatalf("alert not dropped after max attempts: pending=%d", e.PendingAlerts())
	}
	// Dropped means dropped: nothing ever retries again.
	clock = clock.Add(time.Hour)
	e.DeliverAlerts(context.Background())
	if posts.Load() != 3 {
		t.Fatalf("dropped alert came back: posts=%d", posts.Load())
	}
}

func TestAlertStateRoundTrip(t *testing.T) {
	e := New(Config{Alert: AlertConfig{URL: "http://unreachable.invalid", MinOccurrences: 1}})
	passOver(e, nil, 10, 2)
	if e.PendingAlerts() != 1 {
		t.Fatalf("pending = %d, want 1", e.PendingAlerts())
	}
	blob, err := e.AlertState()
	if err != nil {
		t.Fatalf("AlertState: %v", err)
	}

	// A fresh engine restoring the blob inherits both halves: the fired
	// record suppresses re-arming, the pending queue survives.
	e2 := New(Config{Alert: AlertConfig{URL: "http://unreachable.invalid", MinOccurrences: 1}})
	if err := e2.RestoreAlertState(blob); err != nil {
		t.Fatalf("RestoreAlertState: %v", err)
	}
	if e2.PendingAlerts() != 1 {
		t.Fatalf("restored pending = %d, want 1", e2.PendingAlerts())
	}
	if st := passOver(e2, nil, 10, 2); st.Queued != 0 {
		t.Fatalf("restored fired record did not suppress re-arming")
	}

	// Empty blob (pre-v3 snapshot) is a no-op, not an error.
	if err := e2.RestoreAlertState(nil); err != nil {
		t.Fatalf("empty restore: %v", err)
	}
	if e2.PendingAlerts() != 1 {
		t.Fatalf("empty restore clobbered state")
	}
}

func TestHTTPHandler(t *testing.T) {
	e := New(Config{})
	e.Pass(PassInput{Overflows: []cumulative.Candidate{
		over(0x42, 100, 3), over(0x43, 10, 1),
	}})

	srv := httptest.NewServer(e)
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		req.Header.Set("X-Request-ID", "reqid1234")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, body := get("/v1/triage?limit=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rankings: %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") != "reqid1234" {
		t.Fatalf("request id not echoed: %q", resp.Header.Get("X-Request-ID"))
	}
	var r RankingReply
	if err := json.Unmarshal(body, &r); err != nil || r.Total != 2 || len(r.Clusters) != 1 {
		t.Fatalf("rankings body: %v %s", err, body)
	}

	resp, body = get("/v1/triage/" + r.Clusters[0].ID)
	var d ClusterDetail
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &d) != nil || d.ID != r.Clusters[0].ID {
		t.Fatalf("detail: %d %s", resp.StatusCode, body)
	}

	if resp, _ = get("/v1/triage/no-such-cluster"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cluster: %d, want 404", resp.StatusCode)
	}
	if presp, err := http.Post(srv.URL+"/v1/triage", "application/json", nil); err != nil || presp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: %v %d, want 405", err, presp.StatusCode)
	}

	// A nil engine serves an empty ranking — the partition-mode story.
	var nilEngine *Engine
	nsrv := httptest.NewServer(nilEngine)
	defer nsrv.Close()
	nresp, err := http.Get(nsrv.URL + "/v1/triage")
	if err != nil || nresp.StatusCode != http.StatusOK {
		t.Fatalf("nil engine: %v %v", err, nresp)
	}
	var nr RankingReply
	json.NewDecoder(nresp.Body).Decode(&nr)
	nresp.Body.Close()
	if nr.Total != 0 {
		t.Fatalf("nil engine total = %d, want 0", nr.Total)
	}
}

func TestDeterministicRankingsAcrossShuffles(t *testing.T) {
	// The same candidate multiset in two arrival orders must produce
	// byte-identical rankings (the property the cluster e2e relies on).
	build := func(reverse bool) []byte {
		e := New(Config{})
		for i := 0; i < 6; i++ {
			e.RecordFrames(site.ID(0x700+i), []uint64{uint64(i % 2), 0xa, 0xb, 0xc})
		}
		var cands []cumulative.Candidate
		for i := 0; i < 6; i++ {
			cands = append(cands, over(site.ID(0x700+i), float64(100+i), i+1))
		}
		if reverse {
			for i, j := 0, len(cands)-1; i < j; i, j = i+1, j-1 {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
		e.Pass(PassInput{Overflows: cands})
		b, err := json.Marshal(e.Rankings(0, 50))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := build(false), build(true)
	if !bytes.Equal(a, b) {
		t.Fatalf("rankings depend on arrival order:\n%s\n%s", a, b)
	}
}
