// Package triage clusters the fleet's correlated error sites into
// ranked, lifecycle-tracked defect clusters — the aggregation layer a
// million-client deployment needs on top of raw per-site Bayes factors.
//
// The paper's hypothesis test (§5) scores *individual* allocation and
// deallocation sites; at fleet scale one source defect commonly surfaces
// as many distinct site hashes (the same buggy helper inlined or called
// from several places, differing only in outer frames). The engine folds
// those back together by normalized callsite signature: the innermost
// suffix of the site's recorded call stack, each frame normalized to its
// module-relative low bits so layout differences between installations
// do not split clusters. Sites with no recorded stack cluster by their
// own site hash — for dangling pairs that still merges every premature
// free of one allocation site into a single cluster.
//
// Per cluster the engine maintains a pooled Bayes factor (the sum of the
// members' log10 factors: observations at correlated sites are
// independent evidence for the shared root cause), a capped instance
// list (gasoline's DL-5 rule: never ship unbounded example lists), and a
// lifecycle:
//
//	new → active → patched → resolved
//	                 ↑           │ evidence re-accumulates
//	                 └── regressed
//
// A cluster is "patched" when every member key is covered by the current
// patch log, "resolved" after ResolveAfter quiet passes, and "regressed"
// when a resolved cluster re-accumulates evidence — the signal that a
// supposedly fixed defect shipped again. Regressions re-arm the webhook
// alerter (alert.go).
//
// Passes are driven by the owning tier — fleet.Server after each
// correction pass, cluster.Coordinator after each merge+correct — and
// are deterministic: the same evidence, frames and patch log produce
// byte-identical rankings regardless of sharding, which the cluster e2e
// test pins.
package triage

import (
	"log/slog"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"exterminator/internal/cumulative"
	"exterminator/internal/patch"
	"exterminator/internal/site"
	"exterminator/internal/telemetry"
)

// Cluster lifecycle states.
const (
	StateNew       = "new"
	StateActive    = "active"
	StatePatched   = "patched"
	StateResolved  = "resolved"
	StateRegressed = "regressed"
)

// Defaults for Config fields left zero.
const (
	DefaultSuffixDepth  = 3
	DefaultMaxInstances = 20 // gasoline DL-5: instance lists are capped
	DefaultResolveAfter = 3
)

// frameMask normalizes a stack frame to its module-relative low bits:
// synthetic site stacks (and real return PCs under ASLR) differ across
// installations only in the high "module base" bits, so clustering
// hashes the masked value.
const frameMask = 0xffffffff

// Config parameterizes the engine. The zero value is usable: defaults
// apply and alerting stays off until Alert.URL is set.
type Config struct {
	// SuffixDepth is how many innermost frames of a site's recorded
	// stack form its normalized signature (0 means DefaultSuffixDepth).
	SuffixDepth int

	// MaxInstances caps the per-cluster instance list served in detail
	// replies (0 means DefaultMaxInstances).
	MaxInstances int

	// ResolveAfter is how many consecutive quiet passes (no new
	// evidence) a patched cluster needs before it counts as resolved
	// (0 means DefaultResolveAfter).
	ResolveAfter int

	// Source names the tier in alert payloads ("fleetd",
	// "coordinator"); empty means "fleet".
	Source string

	// Alert configures the webhook alerter; the zero value disables it.
	Alert AlertConfig
}

func (c Config) withDefaults() Config {
	if c.SuffixDepth <= 0 {
		c.SuffixDepth = DefaultSuffixDepth
	}
	if c.MaxInstances <= 0 {
		c.MaxInstances = DefaultMaxInstances
	}
	if c.ResolveAfter <= 0 {
		c.ResolveAfter = DefaultResolveAfter
	}
	if c.Source == "" {
		c.Source = "fleet"
	}
	return c
}

// PassInput is one triage pass's evidence: the per-site candidates the
// owning tier's history ranked, the patch log the tier currently
// distributes, and the per-site identification threshold (cN−1) in
// force when the candidates were scored.
type PassInput struct {
	Overflows []cumulative.Candidate
	Danglings []cumulative.Candidate
	Patches   *patch.Set
	Threshold float64
}

// PassStats summarizes one pass.
type PassStats struct {
	Pass        uint64
	Clusters    int
	Transitions int
	Queued      int // alerts enqueued this pass
}

// clusterState is the engine's per-cluster record. The wire-facing
// summary is regenerated from it on demand.
type clusterState struct {
	id   string
	kind string // "overflow", "underflow", "dangling"

	state       string
	firstPass   uint64
	lastPass    uint64
	lastGrowth  uint64 // pass that last added evidence
	regressions int

	sites       int
	occurrences int
	pooled      float64 // log10 pooled Bayes factor
	top         float64 // strongest member's raw Bayes factor
	above       bool    // top member crossed the per-site threshold
	frames      []uint64
	instances   []TriageInstance
}

// Engine is the triage engine. Safe for concurrent use; a nil *Engine
// is a valid no-op (partition-mode servers serve empty rankings).
type Engine struct {
	cfg     Config
	logger  *slog.Logger
	m       *metricsSet
	alerter *Alerter

	mu       sync.Mutex
	frames   map[site.ID][]uint64
	clusters map[string]*clusterState
	pass     uint64
	ranked   []string // cluster ids in rank order, regenerated per pass
}

// New returns an engine with cfg (zero value fine).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:      cfg,
		logger:   slog.New(slog.DiscardHandler),
		frames:   make(map[site.ID][]uint64),
		clusters: make(map[string]*clusterState),
	}
	e.alerter = newAlerter(cfg.Alert, cfg.Source)
	return e
}

// SetLogger attaches a structured logger (default: silent).
func (e *Engine) SetLogger(l *slog.Logger) {
	if e == nil || l == nil {
		return
	}
	e.logger = l.With("component", "triage")
	e.alerter.logger = e.logger
}

// SetMetrics registers the triage instrument set into reg.
func (e *Engine) SetMetrics(reg *telemetry.Registry) {
	if e == nil || reg == nil {
		return
	}
	e.m = newMetricsSet(reg)
	e.alerter.m = e.m
}

// RecordFrames stores the recorded call stack for a site (outermost
// first), feeding signature clustering. First writer wins, mirroring
// site.Registry semantics.
func (e *Engine) RecordFrames(id site.ID, frames []uint64) {
	if e == nil || len(frames) == 0 {
		return
	}
	if len(frames) > maxTraceFrames {
		frames = frames[len(frames)-maxTraceFrames:]
	}
	e.mu.Lock()
	if _, ok := e.frames[id]; !ok {
		e.frames[id] = append([]uint64(nil), frames...)
	}
	e.mu.Unlock()
}

// FramesKnown reports how many sites have recorded stacks.
func (e *Engine) FramesKnown() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.frames)
}

// signature hashes the normalized innermost suffix of a recorded stack
// (64-bit DJB2 over the masked frames), or reports ok=false when the
// site has no recorded stack.
func (e *Engine) signatureLocked(id site.ID) (sig uint64, suffix []uint64, ok bool) {
	frames, found := e.frames[id]
	if !found || len(frames) == 0 {
		return 0, nil, false
	}
	depth := e.cfg.SuffixDepth
	if depth > len(frames) {
		depth = len(frames)
	}
	suffix = frames[len(frames)-depth:]
	h := uint64(5381)
	for _, pc := range suffix {
		h = h*33 + (pc & frameMask)
	}
	return h, suffix, true
}

// member is one candidate folded into a cluster during a pass.
type member struct {
	site  site.ID
	pair  site.Pair // dangling only
	kind  string
	bayes float64
	obs   int
}

// agg accumulates one cluster's members for the current pass.
type agg struct {
	id      string
	kind    string
	frames  []uint64
	members []member
}

// Pass folds the tier's current candidates into the cluster map,
// advances lifecycles against the patch log, and arms due alerts. It is
// deterministic in its inputs. Safe to call on a nil engine (no-op).
func (e *Engine) Pass(in PassInput) PassStats {
	if e == nil {
		return PassStats{}
	}
	start := time.Now()
	e.mu.Lock()
	e.pass++
	stats := PassStats{Pass: e.pass}

	// 1. Aggregate candidates by cluster key.
	aggs := make(map[string]*agg)
	fold := func(id string, kind string, frames []uint64, m member) {
		a := aggs[id]
		if a == nil {
			a = &agg{id: id, kind: kind, frames: frames}
			aggs[id] = a
		}
		a.members = append(a.members, m)
	}
	for _, c := range in.Overflows {
		id, frames := e.clusterKeyLocked("overflow", c.Site)
		fold(id, "overflow", frames, member{site: c.Site, kind: "overflow", bayes: c.Bayes, obs: c.Obs})
	}
	for _, c := range in.Danglings {
		id, frames := e.clusterKeyLocked("dangling", c.Pair.Alloc)
		fold(id, "dangling", frames, member{site: c.Pair.Alloc, pair: c.Pair, kind: "dangling", bayes: c.Bayes, obs: c.Obs})
	}

	// 2. Advance each aggregated cluster's state.
	for _, id := range sortedKeys(aggs) {
		a := aggs[id]
		cs := e.clusters[id]
		if cs == nil {
			cs = &clusterState{id: id, kind: a.kind, state: StateNew, firstPass: e.pass, frames: a.frames}
			e.clusters[id] = cs
			e.transition(cs, StateNew, &stats)
		}
		prevObs := cs.occurrences
		e.refreshLocked(cs, a)
		cs.lastPass = e.pass
		grew := cs.occurrences > prevObs || cs.firstPass == e.pass
		if grew {
			cs.lastGrowth = e.pass
		}
		patched := in.Patches != nil && clusterPatched(a, in.Patches)
		cs.above = in.Threshold > 0 && cs.top >= in.Threshold

		switch {
		case cs.state == StateResolved && grew:
			cs.regressions++
			e.transition(cs, StateRegressed, &stats)
		case patched && (cs.state == StatePatched || cs.state == StateResolved):
			if cs.state == StatePatched && e.pass-cs.lastGrowth >= uint64(e.cfg.ResolveAfter) {
				e.transition(cs, StateResolved, &stats)
			}
		case patched:
			e.transition(cs, StatePatched, &stats)
		case cs.state == StateNew && cs.firstPass != e.pass:
			e.transition(cs, StateActive, &stats)
		case cs.state == StateRegressed && !patched:
			// stays regressed until the patch log covers it again
		}
	}

	// 3. Regenerate the ranking and arm alerts.
	e.rankLocked()
	stats.Clusters = len(e.clusters)
	for _, id := range e.ranked {
		cs := e.clusters[id]
		if queued, reason := e.alerter.consider(e.summaryLocked(cs), e.pass); queued {
			stats.Queued++
			e.logger.Info("alert armed",
				"cluster", cs.id, "reason", reason,
				"pooledBayes", cs.pooled, "occurrences", cs.occurrences)
		}
	}

	if e.m != nil {
		e.m.clusters.Set(float64(len(e.clusters)))
		top := 0.0
		if len(e.ranked) > 0 {
			top = e.clusters[e.ranked[0]].pooled
		}
		e.m.topBayes.Set(top)
	}
	e.mu.Unlock()
	if e.m != nil {
		e.m.passSec.ObserveSince(start)
	}
	return stats
}

// clusterKeyLocked computes the cluster id for a candidate keyed by
// alloc-side site s: signature-based when the site has a recorded
// stack, site-hash-based otherwise.
func (e *Engine) clusterKeyLocked(kind string, s site.ID) (string, []uint64) {
	if sig, suffix, ok := e.signatureLocked(s); ok {
		return kind + "-sig-" + strconv.FormatUint(sig, 16), suffix
	}
	return kind + "-site-" + strconv.FormatUint(uint64(s), 16), nil
}

// refreshLocked recomputes a cluster's pooled evidence from this pass's
// membership. Summation runs in key order so the pooled float is
// identical however the members arrived.
func (e *Engine) refreshLocked(cs *clusterState, a *agg) {
	sort.Slice(a.members, func(i, j int) bool {
		if a.members[i].site != a.members[j].site {
			return a.members[i].site < a.members[j].site
		}
		return a.members[i].pair.Free < a.members[j].pair.Free
	})
	distinct := make(map[site.ID]bool, len(a.members))
	pooled, top, occ := 0.0, 0.0, 0
	for _, m := range a.members {
		distinct[m.site] = true
		occ += m.obs
		pooled += log10Clamped(m.bayes)
		if m.bayes > top {
			top = m.bayes
		}
	}
	cs.sites = len(distinct)
	cs.occurrences = occ
	cs.pooled = pooled
	cs.top = top
	if len(a.frames) > 0 {
		cs.frames = a.frames
	}

	// Instance list: strongest first, deterministic tie-break, capped
	// (gasoline DL-5 — never an unbounded example list on the wire).
	inst := make([]TriageInstance, 0, len(a.members))
	for _, m := range a.members {
		ti := TriageInstance{Site: m.site.String(), Bayes: m.bayes, Obs: m.obs}
		if m.kind == "dangling" {
			ti.Free = m.pair.Free.String()
		}
		inst = append(inst, ti)
	}
	sort.SliceStable(inst, func(i, j int) bool {
		if inst[i].Bayes != inst[j].Bayes {
			return inst[i].Bayes > inst[j].Bayes
		}
		if inst[i].Site != inst[j].Site {
			return inst[i].Site < inst[j].Site
		}
		return inst[i].Free < inst[j].Free
	})
	if len(inst) > e.cfg.MaxInstances {
		inst = inst[:e.cfg.MaxInstances]
	}
	cs.instances = inst
}

// clusterPatched reports whether the patch log covers every member key.
func clusterPatched(a *agg, ps *patch.Set) bool {
	for _, m := range a.members {
		if m.kind == "dangling" {
			if ps.Deferral(m.pair) == 0 {
				return false
			}
			continue
		}
		if ps.Pad(m.site) == 0 && ps.FrontPad(m.site) == 0 {
			return false
		}
	}
	return true
}

// transition moves a cluster into state and counts it.
func (e *Engine) transition(cs *clusterState, state string, stats *PassStats) {
	if cs.state == state && state != StateNew {
		return
	}
	from := cs.state
	cs.state = state
	stats.Transitions++
	if e.m != nil {
		e.m.transition(state)
	}
	if state != StateNew {
		e.logger.Info("cluster transition", "cluster", cs.id, "from", from, "to", state)
	}
}

// rankLocked rebuilds the ranking: pooled Bayes descending, id
// ascending as the deterministic tie-break.
func (e *Engine) rankLocked() {
	e.ranked = e.ranked[:0]
	for id := range e.clusters {
		e.ranked = append(e.ranked, id)
	}
	sort.Slice(e.ranked, func(i, j int) bool {
		a, b := e.clusters[e.ranked[i]], e.clusters[e.ranked[j]]
		if a.pooled != b.pooled {
			return a.pooled > b.pooled
		}
		return a.id < b.id
	})
}

// summaryLocked renders the wire summary for one cluster. The summary
// string is a normalized template (gasoline DL-4/DL-6): counts and
// scores only, never raw payload text.
func (e *Engine) summaryLocked(cs *clusterState) ClusterSummary {
	return ClusterSummary{
		ID:             cs.id,
		Kind:           cs.kind,
		State:          cs.state,
		Sites:          cs.sites,
		Occurrences:    cs.occurrences,
		PooledBayes:    cs.pooled,
		TopBayes:       cs.top,
		AboveThreshold: cs.above,
		Regressions:    cs.regressions,
		FirstPass:      cs.firstPass,
		LastPass:       cs.lastPass,
		Summary: cs.kind + ": " + strconv.Itoa(cs.sites) + " correlated site(s), " +
			strconv.Itoa(cs.occurrences) + " observation(s), pooled log10 Bayes " +
			strconv.FormatFloat(cs.pooled, 'g', 6, 64),
	}
}

// Rankings serves the paginated top-offender list. offset/limit are
// clamped (limit 0 means DefaultPageSize, capped at MaxPageSize).
func (e *Engine) Rankings(offset, limit int) *RankingReply {
	if limit <= 0 {
		limit = DefaultPageSize
	}
	if limit > MaxPageSize {
		limit = MaxPageSize
	}
	if offset < 0 {
		offset = 0
	}
	reply := &RankingReply{Offset: offset, Limit: limit, Clusters: []ClusterSummary{}}
	if e == nil {
		return reply
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	reply.Pass = e.pass
	reply.Total = len(e.ranked)
	for i := offset; i < len(e.ranked) && len(reply.Clusters) < limit; i++ {
		reply.Clusters = append(reply.Clusters, e.summaryLocked(e.clusters[e.ranked[i]]))
	}
	return reply
}

// Detail serves one cluster's detail reply.
func (e *Engine) Detail(id string) (*ClusterDetail, bool) {
	if e == nil {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cs, ok := e.clusters[id]
	if !ok {
		return nil, false
	}
	d := &ClusterDetail{
		ClusterSummary: e.summaryLocked(cs),
		Instances:      append([]TriageInstance{}, cs.instances...),
	}
	for _, pc := range cs.frames {
		d.Frames = append(d.Frames, "0x"+strconv.FormatUint(pc&frameMask, 16))
	}
	d.Alert = e.alerter.status(cs.id)
	return d, true
}

// Clusters reports the current cluster count.
func (e *Engine) Clusters() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.clusters)
}

func sortedKeys(m map[string]*agg) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func log10Clamped(v float64) float64 {
	if v < 1e-300 {
		v = 1e-300
	}
	return math.Log10(v)
}
