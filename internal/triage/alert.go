package triage

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"exterminator/internal/telemetry"
)

// Webhook alerting. Pass arms alerts under the engine lock (cheap map
// work only); delivery happens in DeliverAlerts, driven by the owning
// tier's background loop, which POSTs while holding NO triage lock —
// blocking I/O under a mutex is a lockio violation and would stall
// passes behind a slow webhook.
//
// Exactly-once: arming a cluster records it in the fired map *and*
// enqueues the payload in the pending queue atomically (one mutex), and
// both halves marshal into the coordinator's XCSN snapshot. A restart
// therefore neither re-arms an already-fired crossing (fired map
// restored) nor loses an armed-but-undelivered alert (pending queue
// restored and re-driven).

// Alert delivery defaults.
const (
	DefaultAlertCooldown = time.Hour
	DefaultMaxAttempts   = 5
	DefaultBackoff       = 2 * time.Second
	alertTimeout         = 10 * time.Second
)

// AlertConfig configures the webhook alerter. The zero value disables
// alerting entirely.
type AlertConfig struct {
	// URL is the webhook endpoint; empty disables alerting.
	URL string

	// BayesThreshold arms an alert when a cluster's pooled log10
	// Bayes factor reaches it; 0 disables the trigger.
	BayesThreshold float64

	// MinOccurrences arms an alert when a cluster's pooled observation
	// count reaches it (gasoline's "compound alert at N occurrences");
	// 0 disables the trigger.
	MinOccurrences int

	// Cooldown is the per-cluster re-arm floor (regressions re-arm a
	// cluster, but never faster than this). 0 means
	// DefaultAlertCooldown.
	Cooldown time.Duration

	// MaxAttempts bounds delivery retries per alert (0 means
	// DefaultMaxAttempts); Backoff is the base delay, doubled per
	// failed attempt (0 means DefaultBackoff).
	MaxAttempts int
	Backoff     time.Duration
}

func (c AlertConfig) withDefaults() AlertConfig {
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultAlertCooldown
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultBackoff
	}
	return c
}

// Enabled reports whether any trigger can ever arm.
func (c AlertConfig) Enabled() bool {
	return c.URL != "" && (c.BayesThreshold > 0 || c.MinOccurrences > 0)
}

// firedRecord remembers that a cluster's crossing already alerted.
type firedRecord struct {
	Pass        uint64 `json:"pass"`
	Regressions int    `json:"regressions"`
	At          int64  `json:"at"` // unix nanoseconds
}

// pendingAlert is one queued delivery.
type pendingAlert struct {
	Payload   AlertPayload `json:"payload"`
	Attempts  int          `json:"attempts"`
	NotBefore int64        `json:"notBefore"` // unix nanoseconds
}

// alertState is the persisted form (XCSN alert blob).
type alertState struct {
	Fired   map[string]firedRecord `json:"fired"`
	Pending []pendingAlert         `json:"pending"`
}

// Alerter owns alert dedup state and the delivery queue.
type Alerter struct {
	cfg    AlertConfig
	source string
	hc     *http.Client
	logger *slog.Logger
	m      *metricsSet
	now    func() time.Time

	mu      sync.Mutex
	fired   map[string]firedRecord
	pending []pendingAlert
}

func newAlerter(cfg AlertConfig, source string) *Alerter {
	return &Alerter{
		cfg:    cfg.withDefaults(),
		source: source,
		hc:     &http.Client{Timeout: alertTimeout},
		logger: slog.New(slog.DiscardHandler),
		now:    time.Now,
		fired:  make(map[string]firedRecord),
	}
}

// consider arms an alert for the cluster when a trigger holds and
// neither the dedup record nor the cooldown suppresses it. Called from
// Pass under the engine lock; takes only the alerter lock and does no
// I/O.
func (a *Alerter) consider(c ClusterSummary, pass uint64) (queued bool, reason string) {
	if !a.cfg.Enabled() {
		return false, ""
	}
	switch {
	case a.cfg.BayesThreshold > 0 && c.PooledBayes >= a.cfg.BayesThreshold:
		reason = "bayes"
	case a.cfg.MinOccurrences > 0 && c.Occurrences >= a.cfg.MinOccurrences:
		reason = "occurrences"
	default:
		return false, ""
	}
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	if rec, ok := a.fired[c.ID]; ok {
		// Already alerted: only a fresh regression re-arms, and never
		// inside the cooldown window.
		if c.Regressions <= rec.Regressions {
			return false, ""
		}
		if now.Sub(time.Unix(0, rec.At)) < a.cfg.Cooldown {
			return false, ""
		}
		reason = "regression"
	}
	a.fired[c.ID] = firedRecord{Pass: pass, Regressions: c.Regressions, At: now.UnixNano()}
	a.pending = append(a.pending, pendingAlert{
		Payload:   AlertPayload{Source: a.source, Reason: reason, Pass: pass, Cluster: c},
		NotBefore: now.UnixNano(),
	})
	return true, reason
}

// status reports a cluster's alert state for detail replies. Returns
// nil when alerting is off.
func (a *Alerter) status(id string) *AlertStatus {
	if !a.cfg.Enabled() {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := &AlertStatus{}
	if rec, ok := a.fired[id]; ok {
		st.Fired = true
		st.FiredPass = rec.Pass
	}
	for _, p := range a.pending {
		if p.Payload.Cluster.ID == id {
			st.Pending++
		}
	}
	return st
}

// DeliverAlerts drains the due half of the pending queue, POSTing each
// payload to the webhook with bounded retry+backoff. It returns the
// number delivered. No lock is held across a POST.
func (e *Engine) DeliverAlerts(ctx context.Context) int {
	if e == nil {
		return 0
	}
	return e.alerter.deliver(ctx)
}

// PendingAlerts reports the queued-but-undelivered alert count.
func (e *Engine) PendingAlerts() int {
	if e == nil {
		return 0
	}
	e.alerter.mu.Lock()
	defer e.alerter.mu.Unlock()
	return len(e.alerter.pending)
}

func (a *Alerter) deliver(ctx context.Context) int {
	if a.cfg.URL == "" {
		return 0
	}
	delivered := 0
	for ctx.Err() == nil {
		now := a.now()
		a.mu.Lock()
		idx := -1
		for i, p := range a.pending {
			if p.NotBefore <= now.UnixNano() {
				idx = i
				break
			}
		}
		if idx < 0 {
			a.mu.Unlock()
			break
		}
		p := a.pending[idx]
		a.pending = append(a.pending[:idx], a.pending[idx+1:]...)
		a.mu.Unlock()

		err := a.post(ctx, p.Payload)
		if err == nil {
			delivered++
			if a.m != nil {
				a.m.alertsFired.Inc()
			}
			a.logger.Info("alert delivered",
				"cluster", p.Payload.Cluster.ID, "reason", p.Payload.Reason,
				"attempt", p.Attempts+1)
			continue
		}
		p.Attempts++
		if p.Attempts >= a.cfg.MaxAttempts {
			if a.m != nil {
				a.m.alertDrops.Inc()
			}
			a.logger.Error("alert dropped after max attempts",
				"cluster", p.Payload.Cluster.ID, "attempts", p.Attempts, "error", err)
			continue
		}
		if a.m != nil {
			a.m.alertRetries.Inc()
		}
		backoff := a.cfg.Backoff << (p.Attempts - 1)
		p.NotBefore = now.Add(backoff).UnixNano()
		a.logger.Warn("alert delivery failed; will retry",
			"cluster", p.Payload.Cluster.ID, "attempt", p.Attempts,
			"backoffSec", backoff.Seconds(), "error", err)
		a.mu.Lock()
		a.pending = append(a.pending, p)
		a.mu.Unlock()
	}
	return delivered
}

func (a *Alerter) post(ctx context.Context, payload AlertPayload) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("triage: encode alert: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.cfg.URL, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("triage: alert request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(requestIDHeader, telemetry.NewRequestID())
	resp, err := a.hc.Do(req)
	if err != nil {
		return fmt.Errorf("triage: post alert: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("triage: post alert: %s", resp.Status)
	}
	return nil
}

// AlertState marshals the alerter's dedup map and pending queue for
// snapshot persistence.
func (e *Engine) AlertState() ([]byte, error) {
	if e == nil {
		return json.Marshal(alertState{})
	}
	a := e.alerter
	a.mu.Lock()
	defer a.mu.Unlock()
	return json.Marshal(alertState{Fired: a.fired, Pending: a.pending})
}

// RestoreAlertState replaces the alerter's state from a snapshot blob.
// Empty input is a no-op (snapshots predating the alert blob).
func (e *Engine) RestoreAlertState(data []byte) error {
	if e == nil || len(data) == 0 {
		return nil
	}
	var st alertState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("triage: decode alert state: %w", err)
	}
	a := e.alerter
	a.mu.Lock()
	defer a.mu.Unlock()
	a.fired = st.Fired
	if a.fired == nil {
		a.fired = make(map[string]firedRecord)
	}
	a.pending = st.Pending
	return nil
}
