package modes

import (
	"exterminator/internal/engine"
	"exterminator/internal/mutator"
)

// StreamProgram re-exports the long-running-service contract.
type StreamProgram = mutator.StreamProgram

// Session re-exports the per-replica service instance contract.
type Session = mutator.Session

// Incident records one error detection during service.
type Incident = engine.Incident

// ServeResult reports a completed service run.
type ServeResult = engine.ServeResult

// Serve runs a replicated service over an input stream (Figure 5,
// §3.4 replicated mode for continuously running programs): every chunk
// is broadcast to N independently randomized replicas, per-chunk outputs
// are voted, any error indication triggers isolation across synchronized
// live heap images, derived patches are reloaded into the *running*
// replicas, and crashed replicas are restarted.
//
// Deprecated: use engine.New(engine.Stream(prog), engine.WithMode(
// engine.ModeServe), engine.WithChunks(chunks), ...).Run(ctx).
func Serve(prog StreamProgram, chunks [][]byte, hookFor HookFactory, opts Options) *ServeResult {
	opts.fill()
	eo := append(opts.engineOpts(engine.ModeServe),
		engine.WithChunks(chunks), engine.WithHook(hookFor))
	return run(engine.Stream(prog), eo).Serve
}
