package modes

import (
	"bytes"
	"fmt"

	"exterminator/internal/correct"
	"exterminator/internal/diefast"
	"exterminator/internal/image"
	"exterminator/internal/isolate"
	"exterminator/internal/mutator"
	"exterminator/internal/patch"
	"exterminator/internal/voter"
	"exterminator/internal/xrand"
)

// StreamProgram re-exports the long-running-service contract.
type StreamProgram = mutator.StreamProgram

// Session re-exports the per-replica service instance contract.
type Session = mutator.Session

// Incident records one error detection during service.
type Incident struct {
	Chunk      int
	Detection  string
	NewPatches int
	Restarted  []int // replicas restarted after crashing
}

// ServeResult reports a completed service run.
type ServeResult struct {
	Chunks    int
	Incidents []Incident
	Patches   *patch.Set
	// Outputs is the voted output per chunk.
	Outputs [][]byte
	// Crashes counts replica-level crashes absorbed by the service
	// (the service itself never stops).
	Crashes int
}

// serveReplica is one live replica.
type serveReplica struct {
	heap    *diefast.Heap
	alloc   *correct.Allocator
	env     *mutator.Env
	session Session
	dead    bool
	seed    uint64
}

// Serve runs a replicated service over an input stream (Figure 5,
// §3.4 replicated mode for continuously running programs):
//
//   - every chunk is broadcast to N independently randomized replicas;
//   - per-chunk outputs are voted; divergence, DieFast signals, or a
//     replica crash trigger error isolation across synchronized heap
//     images (all replicas sit at the same chunk boundary);
//   - derived patches are reloaded into the *running* replicas'
//     correcting allocators — execution is never interrupted;
//   - crashed replicas are restarted (fresh randomized heap, replaying
//     the chunk stream so far under the current patches).
func Serve(prog StreamProgram, chunks [][]byte, hookFor HookFactory, opts Options) *ServeResult {
	opts.fill()
	res := &ServeResult{Patches: patch.New()}
	if opts.Patches != nil {
		res.Patches = opts.Patches.Clone()
	}

	newReplica := func(seed uint64, replay [][]byte) *serveReplica {
		h := diefast.New(diefast.DefaultConfig(), xrand.New(seed))
		h.OnError = func(diefast.Event) {} // record only; checked per chunk
		a := correct.New(h)
		a.Reload(res.Patches.Clone())
		e := mutator.NewEnv(a, h.Space(), xrand.New(opts.ProgSeed), nil)
		if hookFor != nil {
			e.Hook = hookFor()
		}
		r := &serveReplica{heap: h, alloc: a, env: e, seed: seed}
		r.session = prog.NewSession(e)
		for _, c := range replay {
			r.step(c) // replay may crash again; the caller handles it
			if r.dead {
				break
			}
		}
		return r
	}

	replicas := make([]*serveReplica, opts.Replicas)
	for i := range replicas {
		replicas[i] = newReplica(opts.HeapSeed+uint64(i)*7919, nil)
	}

	for ci, chunk := range chunks {
		res.Chunks++
		outputs := make([][]byte, len(replicas))
		eventsBefore := make([]int, len(replicas))
		for i, r := range replicas {
			eventsBefore[i] = len(r.heap.Events())
			if r.dead {
				continue
			}
			mark := r.env.Out.Len()
			r.step(chunk)
			if !r.dead {
				outputs[i] = append([]byte(nil), r.env.Out.Bytes()[mark:]...)
			}
		}

		vote := voter.Vote(outputs)
		res.Outputs = append(res.Outputs, vote.Winner)

		trouble := ""
		for i, r := range replicas {
			if r.dead {
				trouble = "replica crash"
				_ = i
				break
			}
			if len(r.heap.Events()) > eventsBefore[i] {
				trouble = "DieFast signal"
				break
			}
		}
		if trouble == "" && !vote.Unanimous {
			trouble = "output divergence"
		}
		if trouble == "" {
			continue
		}

		// Incident: dump synchronized images from every live replica
		// (all sit at the same chunk boundary), isolate, and reload the
		// patches into the running allocators.
		incident := Incident{Chunk: ci, Detection: trouble}
		var images []*image.Image
		for _, r := range replicas {
			images = append(images, image.Capture(r.heap, trouble))
		}
		if rep, err := isolate.Analyze(images); err == nil {
			newPatches := rep.Patches()
			incident.NewPatches = newPatches.Len()
			if res.Patches.Merge(newPatches) {
				for _, r := range replicas {
					if !r.dead {
						r.alloc.Reload(res.Patches.Clone())
					}
				}
			}
		}

		// Restart dead replicas under the (possibly new) patches.
		for i, r := range replicas {
			if !r.dead {
				continue
			}
			res.Crashes++
			incident.Restarted = append(incident.Restarted, i)
			replicas[i] = newReplica(r.seed^0xD1ED*uint64(ci+2), chunks[:ci+1])
		}
		res.Incidents = append(res.Incidents, incident)
	}
	return res
}

// step runs one chunk, trapping crashes (simulated signals) so the
// service as a whole survives a replica's death.
func (r *serveReplica) step(chunk []byte) {
	defer func() {
		if v := recover(); v != nil {
			if isDeathPanic(v) {
				r.dead = true
				return
			}
			panic(v) // harness bug: do not swallow
		}
	}()
	r.session.Step(chunk)
}

// isDeathPanic classifies panic values that mean "this replica died":
// simulated hardware faults and allocator aborts satisfy error, and
// deliberate stops use mutator.Stop.
func isDeathPanic(v any) bool {
	if _, ok := v.(error); ok {
		return true
	}
	if _, ok := v.(mutator.Stop); ok {
		return true
	}
	return false
}

// String summarizes the result.
func (res *ServeResult) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "serve: %d chunks, %d incidents, %d crashes absorbed, %d patch entries",
		res.Chunks, len(res.Incidents), res.Crashes, res.Patches.Len())
	return b.String()
}
