package modes

import (
	"testing"

	"exterminator/internal/correct"
	"exterminator/internal/diefast"
	"exterminator/internal/mutator"
	"exterminator/internal/patch"
	"exterminator/internal/workloads"
	"exterminator/internal/xrand"
)

// TestOnTheFlyPatchReload exercises the paper's deployment story for
// long-running programs (§3.4, §6.3): a server keeps running on one heap;
// an error is isolated out-of-band; the correcting allocator reloads the
// patches without interrupting execution; subsequent allocations are
// fixed in place.
func TestOnTheFlyPatchReload(t *testing.T) {
	squid := workloads.NewSquid()
	hostile := workloads.SquidHostileInput(200, 100)

	// Derive patches out-of-band (the error isolator process).
	var patches *patch.Set
	for seed := uint64(1); seed <= 8; seed++ {
		ir := Iterative(squid, hostile, nil, Options{HeapSeed: seed * 7919})
		if ir.Corrected {
			patches = ir.Patches
			break
		}
	}
	if patches == nil {
		t.Fatal("could not derive squid patches")
	}

	// The long-running server: ONE heap and allocator across phases.
	h := diefast.New(diefast.DefaultConfig(), xrand.New(0xBEEF))
	h.OnError = func(diefast.Event) {} // record only
	a := correct.New(h)
	env := mutator.NewEnv(a, h.Space(), xrand.New(4), hostile)

	// Phase 1: unpatched service hits the exploit.
	out1 := mutator.Run(squid, env)
	if !out1.Completed {
		t.Skipf("phase 1 crashed in this layout: %s", out1)
	}
	corrupt1 := len(h.Scan(false))
	if corrupt1 == 0 && len(h.Events()) == 0 {
		t.Skip("exploit left no visible corruption in this layout")
	}
	eventsBefore := len(h.Events())

	// The reload signal: patches applied to the running allocator.
	a.Reload(patches.Clone())

	// Phase 2: same process, same heap, fresh hostile traffic.
	env2 := mutator.NewEnv(a, h.Space(), xrand.New(4), hostile)
	out2 := mutator.Run(squid, env2)
	if !out2.Completed {
		t.Fatalf("patched phase crashed: %s", out2)
	}
	// Phase 2's overflow must be contained: no new DieFast events and no
	// new corrupt slots beyond phase 1's residue (which is bad-isolated
	// and stays visible by design).
	if got := len(h.Events()); got != eventsBefore {
		t.Fatalf("new DieFast events after reload: %d -> %d", eventsBefore, got)
	}
	if got := len(h.Scan(false)); got > corrupt1 {
		t.Fatalf("new corruption after reload: %d -> %d", corrupt1, got)
	}
}
