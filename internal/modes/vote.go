package modes

import "exterminator/internal/voter"

// voterResult aliases the voter package's result type.
type voterResult = voter.Result

func voteImpl(outputs [][]byte) voter.Result { return voter.Vote(outputs) }
