package modes

import (
	"testing"

	"exterminator/internal/inject"
	"exterminator/internal/mutator"
	"exterminator/internal/workloads"
)

func espresso() mutator.Program {
	p, _ := workloads.ByName("espresso", 1)
	return p
}

func overflowHook(size int) HookFactory {
	return func() mutator.Hook {
		return inject.New(inject.Plan{Kind: inject.Overflow, TriggerAlloc: 700, Size: size, Seed: 17})
	}
}

func danglingHook() HookFactory {
	return func() mutator.Hook {
		return inject.New(inject.Plan{Kind: inject.Dangling, TriggerAlloc: 700, Seed: 23})
	}
}

func TestIterativeCleanRun(t *testing.T) {
	res := Iterative(espresso(), nil, nil, Options{HeapSeed: 1})
	if !res.CleanAtStart || res.Corrected || res.GaveUp {
		t.Fatalf("%s", res)
	}
	if res.Patches.Len() != 0 {
		t.Fatal("clean run generated patches")
	}
}

func TestIterativeCorrectsInjectedOverflow(t *testing.T) {
	// The §7.2 experiment: injected overflows, iterative mode. The paper
	// observed 3 images sufficing; we assert correction within the
	// default budget and verify the patched program runs clean.
	for _, size := range []int{4, 20, 36} {
		// A single detection run may miss the overflow when it lands on
		// uncanaried space (the paper ran 10 experiments per size); try a
		// few heap seeds and require at least one full correction.
		corrected := false
		for seed := uint64(0); seed < 5 && !corrected; seed++ {
			res := Iterative(espresso(), nil, overflowHook(size), Options{HeapSeed: uint64(100+size) + seed*977})
			if res.CleanAtStart || !res.Corrected {
				continue
			}
			if res.Patches.Len() == 0 {
				t.Fatalf("size %d: corrected without patches?", size)
			}
			// Independent verification on a fresh seed.
			if _, clean := Verify(espresso(), nil, overflowHook(size)(), res.Patches, 0xFEED+seed, 0x9106); !clean {
				t.Fatalf("size %d: patched program still misbehaves", size)
			}
			corrected = true
		}
		if !corrected {
			t.Fatalf("size %d: never corrected across 5 seeds", size)
		}
	}
}

func TestIterativeDanglingWriteCorrection(t *testing.T) {
	// Injected dangling pointers in iterative mode: the paper isolates
	// the error when the program *writes* through the dangling pointer
	// (4/10 runs) and cannot when it only reads (the canary-read
	// crash/abort cases). Either outcome is faithful; what must hold is
	// no wrong patch and, when corrected, a clean verified rerun.
	corrected, gaveUp := 0, 0
	for trial := uint64(1); trial <= 6; trial++ {
		// Each trial is a *different* injected dangling fault (different
		// victim and trigger), as in the paper's 10 distinct faults.
		hookFor := func() mutator.Hook {
			return inject.New(inject.Plan{Kind: inject.Dangling, TriggerAlloc: 300 + trial*150, Seed: trial * 13})
		}
		res := Iterative(espresso(), nil, hookFor, Options{HeapSeed: trial * 31})
		switch {
		case res.Corrected:
			corrected++
		case res.GaveUp:
			gaveUp++
		}
	}
	if corrected == 0 && gaveUp == 0 {
		t.Fatal("dangling injection neither corrected nor abandoned in 6 trials")
	}
	t.Logf("dangling iterative: %d corrected, %d gave up (paper: 4/10 vs 6/10)", corrected, gaveUp)
}

func TestReplicatedHealthyRun(t *testing.T) {
	res := Replicated(espresso(), nil, nil, Options{HeapSeed: 5})
	if res.ErrorDetected {
		t.Fatalf("healthy run flagged: %s", res.Detection)
	}
	if len(res.Agreed) == 0 {
		t.Fatal("no agreed output")
	}
	for _, o := range res.Outcomes {
		if !o.Completed {
			t.Fatalf("replica outcome: %s", o)
		}
	}
}

func TestReplicatedDetectsAndCorrectsOverflow(t *testing.T) {
	res := Replicated(espresso(), nil, overflowHook(20), Options{HeapSeed: 6, Replicas: 4})
	if !res.ErrorDetected {
		t.Fatal("overflow not detected across replicas")
	}
	if res.Patches.Len() == 0 {
		t.Fatalf("no patches from replicated isolation (detection: %s)", res.Detection)
	}
	if !res.Corrected {
		t.Fatalf("patched re-run not clean (detection: %s)", res.Detection)
	}
}

func TestCumulativeIdentifiesInjectedDangling(t *testing.T) {
	// The §7.2 cumulative-mode experiment: injected dangling pointers in
	// espresso, isolated by correlating canary placement with failures.
	// Following the paper's methodology, first search for an injector
	// seed whose fault actually triggers an error, then use that seed
	// deterministically.
	// The trigger sits near the run's end: a premature free close to the
	// object's real lifetime end, so the slot is rarely reused before the
	// program's own accesses — failure then hinges on the canary coin.
	plan, ok := findFailingDanglingPlan(2300, 20)
	if !ok {
		t.Fatal("no injector seed triggers a failure")
	}
	hook := func(run int) mutator.Hook { return inject.New(plan) }
	res := Cumulative(espresso(), nil, hook, Options{HeapSeed: 7, MaxRuns: 80})
	if !res.Identified {
		t.Fatalf("cumulative mode never identified the dangling error: %s", res.History)
	}
	if len(res.Findings.Danglings) == 0 {
		t.Fatalf("findings: %+v", res.Findings)
	}
	t.Logf("identified after %d runs, %d failures (paper: 22–34 runs, ~15 failures)", res.Runs, res.Failures)
}

// findFailingDanglingPlan searches injector seeds for a dangling fault
// that actually makes espresso fail (the paper's "run the injector using
// a random seed until it triggers an error").
func findFailingDanglingPlan(trigger uint64, maxSeeds uint64) (inject.Plan, bool) {
	for s := uint64(1); s <= maxSeeds; s++ {
		plan := inject.Plan{Kind: inject.Dangling, TriggerAlloc: trigger, Seed: s}
		for heapSeed := uint64(1); heapSeed <= 3; heapSeed++ {
			out, _ := Verify(espresso(), nil, inject.New(plan), nil, heapSeed*1299709, 0x9106)
			if out.Bad() {
				return plan, true
			}
		}
	}
	return inject.Plan{}, false
}

func TestCumulativeMozilla(t *testing.T) {
	// The Mozilla case study (§7.2): nondeterministic workload, cumulative
	// mode, immediate-trigger scenario.
	moz := workloads.NewMozilla(8)
	inputFor := func(run int) []byte { return workloads.MozillaSession(2, true) }
	res := Cumulative(moz, inputFor, nil, Options{HeapSeed: 8, MaxRuns: 80, VaryProgSeed: true})
	if !res.Identified {
		t.Fatalf("mozilla overflow never identified: %s", res.History)
	}
	if len(res.Findings.Overflows) == 0 {
		t.Fatal("no overflow finding")
	}
	t.Logf("mozilla isolated after %d runs (paper: 23 immediate / 34 browse-first)", res.Runs)
}

func TestVerifyDetectsResidualBug(t *testing.T) {
	// Verify must fail when the bug is still present (no patches).
	_, clean := Verify(espresso(), nil, overflowHook(20)(), nil, 9, 0x9106)
	if clean {
		t.Fatal("Verify passed an unpatched buggy run")
	}
	_, clean = Verify(espresso(), nil, nil, nil, 9, 0x9106)
	if !clean {
		t.Fatal("Verify failed a clean run")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.Images != 3 || o.Replicas != 3 || o.MaxIterations != 8 || o.FillProb != 0.5 {
		t.Fatalf("%+v", o)
	}
}

func TestIterativeCorrectsRealMinimizer(t *testing.T) {
	// End-to-end on a real algorithm (QM minimizer), not a synthetic
	// profile: inject an overflow, isolate, patch, verify.
	prog, _ := workloads.ByName("espresso-qm", 1)
	hookFor := func() mutator.Hook {
		return inject.New(inject.Plan{Kind: inject.Overflow, TriggerAlloc: 120, Size: 12, Seed: 5})
	}
	corrected := false
	for seed := uint64(1); seed <= 8 && !corrected; seed++ {
		res := Iterative(prog, nil, hookFor, Options{HeapSeed: seed * 104729})
		if res.Corrected {
			corrected = true
			if _, clean := Verify(prog, nil, hookFor(), res.Patches, 0xF00D+seed, 0x9106); !clean {
				t.Fatal("patched minimizer still misbehaves")
			}
		}
	}
	if !corrected {
		t.Fatal("minimizer overflow never corrected across 8 seeds")
	}
}

func TestReplicatedRealFactorizer(t *testing.T) {
	// The factorizer is deterministic: replicas agree on healthy runs.
	prog, _ := workloads.ByName("cfrac-mp", 1)
	res := Replicated(prog, nil, nil, Options{HeapSeed: 77})
	if res.ErrorDetected {
		t.Fatalf("healthy factorizer flagged: %s", res.Detection)
	}
	if len(res.Agreed) == 0 {
		t.Fatal("no agreed output")
	}
}

func TestIterativeCorrectsInjectedUnderflow(t *testing.T) {
	// The §2.1 extension end to end: the paper's §7.2 even describes its
	// overflow experiments as "underflowing objects in the espresso
	// benchmark". Inject a backward overflow, isolate, front-pad, verify.
	hookFor := func() mutator.Hook {
		return inject.New(inject.Plan{Kind: inject.Underflow, TriggerAlloc: 700, Size: 12, Seed: 29})
	}
	corrected := false
	for seed := uint64(1); seed <= 8 && !corrected; seed++ {
		res := Iterative(espresso(), nil, hookFor, Options{HeapSeed: seed * 15485863})
		if !res.Corrected {
			continue
		}
		if len(res.Patches.FrontPads) == 0 {
			t.Fatalf("corrected without a front pad: %s", res.Patches)
		}
		if _, clean := Verify(espresso(), nil, hookFor(), res.Patches, 0xFACE+seed, 0x9106); !clean {
			t.Fatal("front-padded program still misbehaves")
		}
		corrected = true
	}
	if !corrected {
		t.Fatal("underflow never corrected across 8 seeds")
	}
}
