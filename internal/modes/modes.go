// Package modes holds the legacy entry points for Exterminator's three
// modes of operation (paper §3.4): iterative, replicated, and
// cumulative.
//
// Deprecated: this package is a thin compatibility layer. The drivers
// live in internal/engine, which adds context cancellation, a typed
// event stream, pluggable evidence sinks, and a cumulative worker pool;
// new code should build an engine.Session directly:
//
//	sess, _ := engine.New(engine.Batch(prog),
//	    engine.WithMode(engine.ModeIterative),
//	    engine.WithSeeds(seed, progSeed))
//	res, _ := sess.Run(ctx)
//
// The wrappers here preserve the historical behavior exactly, including
// the Options seed remapping (see Options.HeapSeed).
package modes

import (
	"context"

	"exterminator/internal/cumulative"
	"exterminator/internal/engine"
	"exterminator/internal/mutator"
	"exterminator/internal/patch"
)

// Options configures a mode driver.
//
// Deprecated: use engine functional options (engine.WithSeeds,
// engine.WithImages, ...) instead.
type Options struct {
	// HeapSeed is the base seed; iterations and replicas derive distinct
	// heap seeds from it.
	//
	// NOTE (legacy footgun): fill() remaps a zero HeapSeed/ProgSeed to
	// magic defaults (0x5eed / 0x9106), so an explicit zero seed is
	// unreachable through this struct. engine.WithSeeds distinguishes
	// "unset" from "zero" and honors explicit zeros.
	HeapSeed uint64
	// ProgSeed seeds program-level randomness (shared across replicas).
	ProgSeed uint64
	// Images is k, the number of heap images per isolation round
	// (default 3, the paper's empirical sweet spot).
	Images int
	// MaxIterations bounds iterative-mode correction rounds (default 8).
	MaxIterations int
	// Replicas is N for replicated mode (default 3).
	Replicas int
	// MaxRuns bounds cumulative mode (default 100).
	MaxRuns int
	// FillProb is cumulative mode's canary probability p (default 1/2).
	FillProb float64
	// VaryProgSeed gives each cumulative run a different program seed
	// (nondeterministic workloads like Mozilla); by default the program
	// input and seed are fixed and only heap randomization varies, as in
	// the paper's espresso experiments.
	VaryProgSeed bool
	// Patches seeds the correcting allocator (nil for none).
	Patches *patch.Set
}

func (o *Options) fill() {
	if o.Images <= 0 {
		o.Images = 3
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 8
	}
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 100
	}
	if o.FillProb <= 0 || o.FillProb >= 1 {
		o.FillProb = 0.5
	}
	if o.HeapSeed == 0 {
		o.HeapSeed = 0x5eed
	}
	if o.ProgSeed == 0 {
		o.ProgSeed = 0x9106
	}
}

// engineOpts translates filled Options into engine options. Seeds are
// passed explicitly (post-remap), so behavior matches the historical
// drivers bit for bit.
func (o Options) engineOpts(mode engine.Mode) []engine.Option {
	return []engine.Option{
		engine.WithMode(mode),
		engine.WithSeeds(o.HeapSeed, o.ProgSeed),
		engine.WithImages(o.Images),
		engine.WithMaxIterations(o.MaxIterations),
		engine.WithReplicas(o.Replicas),
		engine.WithMaxRuns(o.MaxRuns),
		engine.WithFillProb(o.FillProb),
		engine.WithVaryProgSeed(o.VaryProgSeed),
		engine.WithPatches(o.Patches),
	}
}

// run builds the session and drives it without cancellation.
func run(w engine.Workload, opts []engine.Option) *engine.Result {
	sess, err := engine.New(w, opts...)
	if err != nil {
		panic("modes: " + err.Error()) // wrapper passes validated options
	}
	res, _ := sess.Run(context.Background())
	return res
}

// HookFactory builds a fresh mutator.Hook per execution (injectors carry
// per-run state). nil means no hook.
type HookFactory = engine.HookFactory

// IterativeRound records one isolation round.
type IterativeRound = engine.IterativeRound

// IterativeResult is the outcome of iterative-mode correction.
type IterativeResult = engine.IterativeResult

// Iterative runs the iterative-mode loop (§3.4): detect, replay with a
// malloc breakpoint to gather k images, isolate, patch, repeat.
//
// Deprecated: use engine.New(engine.Batch(prog), engine.WithMode(
// engine.ModeIterative), ...).Run(ctx).
func Iterative(prog mutator.Program, input []byte, hookFor HookFactory, opts Options) *IterativeResult {
	opts.fill()
	eo := append(opts.engineOpts(engine.ModeIterative),
		engine.WithInput(input), engine.WithHook(hookFor))
	return run(engine.Batch(prog), eo).Iterative
}

// ReplicatedResult is the outcome of replicated-mode execution.
type ReplicatedResult = engine.ReplicatedResult

// Replicated runs N replicas concurrently, votes, and — on any error
// indication — isolates across the replicas' heap images, generates
// patches, and re-runs to verify the on-the-fly fix (§3.4, Figure 5).
//
// Deprecated: use engine.New(engine.Batch(prog), engine.WithMode(
// engine.ModeReplicated), ...).Run(ctx).
func Replicated(prog mutator.Program, input []byte, hookFor HookFactory, opts Options) *ReplicatedResult {
	opts.fill()
	eo := append(opts.engineOpts(engine.ModeReplicated),
		engine.WithInput(input), engine.WithHook(hookFor))
	return run(engine.Batch(prog), eo).Replicated
}

// CumulativeResult is the outcome of cumulative-mode isolation.
type CumulativeResult = engine.CumulativeResult

// Cumulative runs up to MaxRuns executions — each with fresh heap *and*
// program seeds, so nondeterministic workloads are fine — folding each
// into the Bayesian history until a site crosses the threshold (§5).
// inputFor may vary the input per run (the Mozilla browse-first study);
// hookFor may inject a fault per run.
//
// Deprecated: use engine.New(engine.Batch(prog), engine.WithMode(
// engine.ModeCumulative), ...).Run(ctx).
func Cumulative(prog mutator.Program, inputFor func(run int) []byte,
	hookFor func(run int) mutator.Hook, opts Options) *CumulativeResult {
	return CumulativeResume(prog, inputFor, hookFor, nil, opts)
}

// CumulativeResume continues cumulative isolation from a persisted
// history (§3.4: summaries are retained between executions, so isolation
// spans process restarts). hist may be nil for a fresh start.
//
// Deprecated: use engine.WithHistory on an engine session.
func CumulativeResume(prog mutator.Program, inputFor func(run int) []byte,
	hookFor func(run int) mutator.Hook, hist *cumulative.History, opts Options) *CumulativeResult {
	opts.fill()
	eo := append(opts.engineOpts(engine.ModeCumulative),
		engine.WithInputFunc(inputFor), engine.WithRunHook(hookFor), engine.WithHistory(hist))
	return run(engine.Batch(prog), eo).Cumulative
}

// Verify runs prog once under the given patches and reports whether the
// run completed without crash, failure, DieFast signal, or residual
// canary corruption.
//
// Deprecated: use engine.Verify.
func Verify(prog mutator.Program, input []byte, hook mutator.Hook,
	patches *patch.Set, heapSeed, progSeed uint64) (*mutator.Outcome, bool) {
	return engine.Verify(prog, input, hook, patches, heapSeed, progSeed)
}

// VerifyCumulative is Verify under the cumulative-mode heap configuration
// (p = 1/2 canary fill): the right probe when asking whether a fault
// triggers failures in that mode.
//
// Deprecated: use engine.VerifyCumulative.
func VerifyCumulative(prog mutator.Program, input []byte, hook mutator.Hook,
	heapSeed, progSeed uint64) (*mutator.Outcome, bool) {
	return engine.VerifyCumulative(prog, input, hook, heapSeed, progSeed)
}

// Vote is re-exported for the replicated driver (kept in its own package
// for unit testing).
func Vote(outputs [][]byte) VoteResult { return voteImpl(outputs) }

// VoteResult aliases voter.Result.
type VoteResult = voterResult
