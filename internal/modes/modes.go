// Package modes implements Exterminator's three modes of operation
// (paper §3.4): iterative, replicated, and cumulative.
//
//   - Iterative: run until DieFast signals or the program misbehaves,
//     dump a heap image, then replay the same input over fresh random
//     heaps up to a malloc breakpoint to collect k independent images;
//     isolate (§4), patch (§6), and re-run to verify.
//   - Replicated: run N differently seeded replicas on the same input,
//     vote on their outputs (§3.1); a DieFast signal, a crash, or output
//     divergence triggers image dumps from every replica and the same
//     isolation pipeline, after which patches are reloaded on the fly.
//   - Cumulative: no replication and no determinism required; each run
//     contributes per-site summaries and the Bayesian classifier (§5)
//     identifies error sites across runs.
package modes

import (
	"fmt"
	"sync"

	"exterminator/internal/correct"
	"exterminator/internal/cumulative"
	"exterminator/internal/diefast"
	"exterminator/internal/image"
	"exterminator/internal/isolate"
	"exterminator/internal/mutator"
	"exterminator/internal/patch"
	"exterminator/internal/xrand"
)

// Options configures a mode driver.
type Options struct {
	// HeapSeed is the base seed; iterations and replicas derive distinct
	// heap seeds from it.
	HeapSeed uint64
	// ProgSeed seeds program-level randomness (shared across replicas).
	ProgSeed uint64
	// Images is k, the number of heap images per isolation round
	// (default 3, the paper's empirical sweet spot).
	Images int
	// MaxIterations bounds iterative-mode correction rounds (default 8).
	MaxIterations int
	// Replicas is N for replicated mode (default 3).
	Replicas int
	// MaxRuns bounds cumulative mode (default 100).
	MaxRuns int
	// FillProb is cumulative mode's canary probability p (default 1/2).
	FillProb float64
	// VaryProgSeed gives each cumulative run a different program seed
	// (nondeterministic workloads like Mozilla); by default the program
	// input and seed are fixed and only heap randomization varies, as in
	// the paper's espresso experiments.
	VaryProgSeed bool
	// Patches seeds the correcting allocator (nil for none).
	Patches *patch.Set
}

func (o *Options) fill() {
	if o.Images <= 0 {
		o.Images = 3
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 8
	}
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 100
	}
	if o.FillProb <= 0 || o.FillProb >= 1 {
		o.FillProb = 0.5
	}
	if o.HeapSeed == 0 {
		o.HeapSeed = 0x5eed
	}
	if o.ProgSeed == 0 {
		o.ProgSeed = 0x9106
	}
}

// HookFactory builds a fresh mutator.Hook per execution (injectors carry
// per-run state). nil means no hook.
type HookFactory func() mutator.Hook

// Execution is one program run under a correcting DieFast heap.
type Execution struct {
	Outcome *mutator.Outcome
	Heap    *diefast.Heap
	Alloc   *correct.Allocator
}

// execute runs prog once.
//
// stopOnError makes DieFast signals halt execution immediately (the
// iterative mode's initial detection run). stopAt sets a malloc
// breakpoint (0 = none). The correcting allocator applies patches.
func execute(prog mutator.Program, input []byte, hook mutator.Hook,
	cfg diefast.Config, heapSeed, progSeed uint64,
	patches *patch.Set, stopAt uint64, stopOnError bool) *Execution {

	h := diefast.New(cfg, xrand.New(heapSeed))
	if stopOnError {
		h.OnError = func(ev diefast.Event) {
			panic(mutator.Stop{Reason: ev.String()})
		}
	} else {
		h.OnError = func(diefast.Event) {} // record only
	}
	a := correct.New(h)
	if patches != nil {
		a.Reload(patches.Clone())
	}
	e := mutator.NewEnv(a, h.Space(), xrand.New(progSeed), input)
	e.StopAtClock = stopAt
	e.Hook = hook
	out := mutator.Run(prog, e)
	return &Execution{Outcome: out, Heap: h, Alloc: a}
}

// Verify runs prog once under the given patches and reports whether the
// run completed without crash, failure, DieFast signal, or residual
// canary corruption.
func Verify(prog mutator.Program, input []byte, hook mutator.Hook,
	patches *patch.Set, heapSeed, progSeed uint64) (*mutator.Outcome, bool) {
	ex := execute(prog, input, hook, diefast.DefaultConfig(), heapSeed, progSeed, patches, 0, false)
	clean := ex.Outcome.Completed &&
		len(ex.Heap.Events()) == 0 &&
		len(ex.Heap.Scan(false)) == 0
	return ex.Outcome, clean
}

// VerifyCumulative is Verify under the cumulative-mode heap configuration
// (p = 1/2 canary fill): the right probe when asking whether a fault
// triggers failures in that mode.
func VerifyCumulative(prog mutator.Program, input []byte, hook mutator.Hook,
	heapSeed, progSeed uint64) (*mutator.Outcome, bool) {
	ex := execute(prog, input, hook, diefast.CumulativeConfig(0.5), heapSeed, progSeed, nil, 0, false)
	clean := ex.Outcome.Completed &&
		len(ex.Heap.Events()) == 0 &&
		len(ex.Heap.Scan(false)) == 0
	return ex.Outcome, clean
}

// IterativeRound records one isolation round.
type IterativeRound struct {
	Images     int
	StopClock  uint64
	StopReason string
	Overflows  int
	Danglings  int
	NewPatches int
}

// IterativeResult is the outcome of iterative-mode correction.
type IterativeResult struct {
	Corrected    bool // final verification run was clean
	CleanAtStart bool // the very first run showed no error
	Rounds       []IterativeRound
	Patches      *patch.Set
	Final        *mutator.Outcome
	// GaveUp: an error persisted but isolation produced no new patches
	// (e.g. read-only dangling pointers, §4.2).
	GaveUp bool
}

// Iterative runs the iterative-mode loop (§3.4): detect, replay with a
// malloc breakpoint to gather k images, isolate, patch, repeat.
func Iterative(prog mutator.Program, input []byte, hookFor HookFactory, opts Options) *IterativeResult {
	opts.fill()
	res := &IterativeResult{Patches: patch.New()}
	if opts.Patches != nil {
		res.Patches = opts.Patches.Clone()
	}
	hook := func() mutator.Hook {
		if hookFor == nil {
			return nil
		}
		return hookFor()
	}

	for iter := 0; iter < opts.MaxIterations; iter++ {
		base := opts.HeapSeed + uint64(iter)*0x10001
		// Detection run: stop at the first DieFast signal.
		ex := execute(prog, input, hook(), diefast.DefaultConfig(),
			base, opts.ProgSeed, res.Patches, 0, true)
		out := ex.Outcome
		res.Final = out
		if out.Completed && len(ex.Heap.Scan(false)) == 0 {
			res.Corrected = iter > 0
			res.CleanAtStart = iter == 0
			return res
		}

		round := IterativeRound{StopClock: out.Clock, StopReason: out.String()}
		images := []*image.Image{image.Capture(ex.Heap, out.String())}

		// Replay over fresh heaps up to the malloc breakpoint. If
		// isolation comes up empty, keep generating independent images
		// ("this process can be repeated multiple times", §3.4) before
		// giving up on this error.
		maxImages := 3 * opts.Images
		var newPatches *patch.Set
		next := uint64(1)
		target := opts.Images
		for {
			for len(images) < target {
				rx := execute(prog, input, hook(), diefast.DefaultConfig(),
					base+next, opts.ProgSeed, res.Patches, out.Clock, false)
				next++
				images = append(images, image.Capture(rx.Heap, "replay"))
			}
			rep, err := isolate.Analyze(images)
			if err != nil {
				break
			}
			round.Overflows = len(rep.Overflows)
			round.Danglings = len(rep.Danglings)
			newPatches = rep.Patches()
			if newPatches.Len() > 0 || len(images) >= maxImages {
				break
			}
			target = len(images) + 2
			if target > maxImages {
				target = maxImages
			}
		}
		round.Images = len(images)
		if newPatches != nil {
			round.NewPatches = newPatches.Len()
		}
		res.Rounds = append(res.Rounds, round)

		if newPatches == nil || !res.Patches.Merge(newPatches) {
			// No progress possible (e.g. read-only dangling pointer:
			// no corruption evidence in any image).
			res.GaveUp = true
			return res
		}
	}
	res.GaveUp = true
	return res
}

// ReplicatedResult is the outcome of replicated-mode execution.
type ReplicatedResult struct {
	// ErrorDetected: a signal, crash, or output divergence occurred.
	ErrorDetected bool
	// Detection describes what tripped first.
	Detection string
	// Outcomes holds each replica's first-round outcome.
	Outcomes []*mutator.Outcome
	// Agreed is the voted output of the first round (nil if none).
	Agreed []byte
	// Patches generated by isolation (empty if no error).
	Patches *patch.Set
	// Corrected: the post-patch re-run round was clean and unanimous.
	Corrected bool
}

// Replicated runs N replicas concurrently, votes, and — on any error
// indication — isolates across the replicas' heap images, generates
// patches, and re-runs to verify the on-the-fly fix (§3.4, Figure 5).
func Replicated(prog mutator.Program, input []byte, hookFor HookFactory, opts Options) *ReplicatedResult {
	opts.fill()
	res := &ReplicatedResult{Patches: patch.New()}
	if opts.Patches != nil {
		res.Patches = opts.Patches.Clone()
	}

	runAll := func(patches *patch.Set, seedBase uint64) []*Execution {
		exs := make([]*Execution, opts.Replicas)
		var wg sync.WaitGroup
		for i := 0; i < opts.Replicas; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var hook mutator.Hook
				if hookFor != nil {
					hook = hookFor()
				}
				exs[i] = execute(prog, input, hook, diefast.DefaultConfig(),
					seedBase+uint64(i)*7919, opts.ProgSeed, patches, 0, false)
			}(i)
		}
		wg.Wait()
		return exs
	}

	exs := runAll(res.Patches, opts.HeapSeed)
	outputs := make([][]byte, len(exs))
	for i, ex := range exs {
		res.Outcomes = append(res.Outcomes, ex.Outcome)
		if !ex.Outcome.Crashed && !ex.Outcome.Failed {
			outputs[i] = ex.Outcome.Output
		}
	}
	vote := Vote(outputs)
	res.Agreed = vote.Winner

	switch {
	case anyCrashOrFail(exs):
		res.ErrorDetected = true
		res.Detection = "replica crash/failure"
	case anyEvents(exs):
		res.ErrorDetected = true
		res.Detection = "DieFast signal"
	case !vote.Unanimous:
		res.ErrorDetected = true
		res.Detection = "output divergence"
	default:
		return res // healthy: nothing to do
	}

	// Dump synchronized heap images. The paper's replicas all receive the
	// dump signal at (logically) the same point; our batch replicas have
	// run past it, so exploit determinism: find the earliest error clock
	// and re-execute every replica up to that malloc breakpoint.
	stopClock := earliestErrorClock(exs)
	images := make([]*image.Image, 0, opts.Replicas)
	for i := 0; i < opts.Replicas; i++ {
		var hook mutator.Hook
		if hookFor != nil {
			hook = hookFor()
		}
		rx := execute(prog, input, hook, diefast.DefaultConfig(),
			opts.HeapSeed+uint64(i)*7919, opts.ProgSeed, res.Patches, stopClock, false)
		images = append(images, image.Capture(rx.Heap, res.Detection))
	}
	rep, err := isolate.Analyze(images)
	if err == nil {
		res.Patches.Merge(rep.Patches())
	}

	// Reload patches and re-run (the on-the-fly fix applied to fresh
	// executions; long-running processes would reload in place).
	if res.Patches.Len() > 0 {
		again := runAll(res.Patches, opts.HeapSeed+0xABCDEF)
		outs := make([][]byte, len(again))
		clean := true
		for i, ex := range again {
			if ex.Outcome.Crashed || ex.Outcome.Failed || len(ex.Heap.Events()) > 0 {
				clean = false
			}
			outs[i] = ex.Outcome.Output
		}
		res.Corrected = clean && Vote(outs).Unanimous
	}
	return res
}

// earliestErrorClock returns the smallest allocation clock at which any
// replica showed trouble (crash/failure end clock, or first DieFast
// event), falling back to the minimum completion clock.
func earliestErrorClock(exs []*Execution) uint64 {
	best := ^uint64(0)
	for _, ex := range exs {
		if ex.Outcome.Crashed || ex.Outcome.Failed {
			if ex.Outcome.Clock < best {
				best = ex.Outcome.Clock
			}
		}
		for _, ev := range ex.Heap.Events() {
			if ev.Clock < best {
				best = ev.Clock
			}
		}
	}
	if best == ^uint64(0) {
		for _, ex := range exs {
			if ex.Outcome.Clock < best {
				best = ex.Outcome.Clock
			}
		}
	}
	return best
}

func anyCrashOrFail(exs []*Execution) bool {
	for _, ex := range exs {
		if ex.Outcome.Crashed || ex.Outcome.Failed {
			return true
		}
	}
	return false
}

func anyEvents(exs []*Execution) bool {
	for _, ex := range exs {
		if len(ex.Heap.Events()) > 0 {
			return true
		}
	}
	return false
}

// CumulativeResult is the outcome of cumulative-mode isolation.
type CumulativeResult struct {
	Identified bool
	Runs       int
	Failures   int
	Findings   *cumulative.Findings
	Patches    *patch.Set
	History    *cumulative.History
}

// Cumulative runs up to MaxRuns executions — each with fresh heap *and*
// program seeds, so nondeterministic workloads are fine — folding each
// into the Bayesian history until a site crosses the threshold (§5).
// inputFor may vary the input per run (the Mozilla browse-first study);
// hookFor may inject a fault per run.
func Cumulative(prog mutator.Program, inputFor func(run int) []byte,
	hookFor func(run int) mutator.Hook, opts Options) *CumulativeResult {
	return CumulativeResume(prog, inputFor, hookFor, nil, opts)
}

// CumulativeResume continues cumulative isolation from a persisted
// history (§3.4: summaries are retained between executions, so isolation
// spans process restarts). hist may be nil for a fresh start.
func CumulativeResume(prog mutator.Program, inputFor func(run int) []byte,
	hookFor func(run int) mutator.Hook, hist *cumulative.History, opts Options) *CumulativeResult {
	opts.fill()
	if hist == nil {
		hist = cumulative.NewHistory(cumulative.Config{C: 4, P: opts.FillProb})
	}
	res := &CumulativeResult{History: hist, Patches: patch.New()}
	if opts.Patches != nil {
		res.Patches = opts.Patches.Clone()
	}

	// When resuming, already-recorded runs advance the seed derivation so
	// the new session explores fresh randomizations.
	start := hist.Runs
	for run := start + 1; run <= start+opts.MaxRuns; run++ {
		var input []byte
		if inputFor != nil {
			input = inputFor(run)
		}
		var hook mutator.Hook
		if hookFor != nil {
			hook = hookFor(run)
		}
		progSeed := opts.ProgSeed
		if opts.VaryProgSeed {
			progSeed += uint64(run) * 7919
		}
		ex := execute(prog, input, hook, diefast.CumulativeConfig(opts.FillProb),
			opts.HeapSeed+uint64(run)*104729, progSeed,
			res.Patches, 0, false)
		hist.RecordRun(ex.Heap, ex.Outcome.Bad())
		res.Runs = run
		res.Failures = hist.FailedRuns

		if f := hist.Identify(); !f.Empty() {
			res.Identified = true
			res.Findings = f
			res.Patches.Merge(f.Patches())
			return res
		}
	}
	return res
}

// Vote is re-exported for the replicated driver (kept in its own package
// for unit testing).
func Vote(outputs [][]byte) VoteResult { return voteImpl(outputs) }

// VoteResult aliases voter.Result.
type VoteResult = voterResult

// String summarizes an iterative result.
func (r *IterativeResult) String() string {
	return fmt.Sprintf("iterative: corrected=%v rounds=%d patches=%d gaveUp=%v",
		r.Corrected, len(r.Rounds), r.Patches.Len(), r.GaveUp)
}
