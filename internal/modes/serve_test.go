package modes

import (
	"bytes"
	"testing"

	"exterminator/internal/mutator"
	"exterminator/internal/workloads"
)

func TestServeHealthyStream(t *testing.T) {
	chunks := workloads.SquidRequestStream(workloads.SquidBenignInput(120))
	res := Serve(workloads.NewSquidStream(), chunks, nil, Options{HeapSeed: 3})
	if len(res.Incidents) != 0 {
		t.Fatalf("healthy stream had incidents: %+v", res.Incidents)
	}
	if res.Crashes != 0 {
		t.Fatalf("crashes: %d", res.Crashes)
	}
	if res.Chunks != len(chunks) {
		t.Fatalf("served %d of %d chunks", res.Chunks, len(chunks))
	}
	for i, out := range res.Outputs {
		if len(out) == 0 {
			t.Fatalf("chunk %d produced no voted output", i)
		}
	}
}

func TestServeSurvivesHostileStreamAndPatchesOnline(t *testing.T) {
	// The Figure 5 story end to end: hostile requests recur throughout
	// the stream; the service must never stop, must isolate the overflow
	// from synchronized live-replica images, reload patches into the
	// running replicas, and keep answering.
	var raw bytes.Buffer
	raw.Write(workloads.SquidHostileInput(60, 30))
	raw.Write(workloads.SquidHostileInput(60, 20)) // second wave, same bug
	raw.Write(workloads.SquidHostileInput(60, 45)) // third wave
	chunks := workloads.SquidRequestStream(raw.Bytes())

	var res *ServeResult
	detected := false
	for seed := uint64(1); seed <= 5 && !detected; seed++ {
		res = Serve(workloads.NewSquidStream(), chunks, nil, Options{HeapSeed: seed * 99991, Replicas: 4})
		detected = len(res.Incidents) > 0
	}
	if !detected {
		t.Skip("overflow invisible across 5 service layouts")
	}
	// The service processed the whole stream regardless.
	if res.Chunks != len(chunks) {
		t.Fatalf("service stopped early: %d of %d chunks", res.Chunks, len(chunks))
	}
	t.Logf("%s", res)

	// If a patch was derived, later incidents should not recur for the
	// same site (pads grow monotonically, so at most a couple of rounds).
	if res.Patches.Len() > 0 {
		pad := uint32(0)
		for _, p := range res.Patches.Pads {
			if p > pad {
				pad = p
			}
		}
		if pad < 6 {
			t.Errorf("pad %d does not contain squid's 6-byte overflow", pad)
		}
	}
}

func TestServeRestartsCrashedReplica(t *testing.T) {
	// Force a crash: an underflow at a miniheap's first slot can walk off
	// the mapped region. Use a hostile stream long enough that some
	// layout crashes one replica; the service must restart it and finish.
	var raw bytes.Buffer
	for i := 0; i < 4; i++ {
		raw.Write(workloads.SquidHostileInput(50, 10+i*9))
	}
	chunks := workloads.SquidRequestStream(raw.Bytes())
	sawCrash := false
	for seed := uint64(1); seed <= 10 && !sawCrash; seed++ {
		res := Serve(workloads.NewSquidStream(), chunks, nil, Options{HeapSeed: seed * 31337, Replicas: 3})
		if res.Chunks != len(chunks) {
			t.Fatal("service stopped early")
		}
		if res.Crashes > 0 {
			sawCrash = true
			for _, inc := range res.Incidents {
				if len(inc.Restarted) > 0 {
					return // restart recorded in an incident ✓
				}
			}
			t.Fatal("crash absorbed but no restart recorded")
		}
	}
	if !sawCrash {
		t.Skip("no replica crash across 10 layouts (overflow never walked off a miniheap)")
	}
}

func TestServeResultString(t *testing.T) {
	res := Serve(workloads.NewSquidStream(), nil, nil, Options{HeapSeed: 1})
	if res.String() == "" {
		t.Fatal("empty string")
	}
}

// divergentService exposes heap addresses in its output — the class of
// bug (address-dependent behaviour) that only the voter catches.
type divergentService struct{}

func (divergentService) Name() string { return "divergent" }
func (divergentService) NewSession(e *mutator.Env) mutator.Session {
	return &divergentSession{e: e}
}

type divergentSession struct {
	e *mutator.Env
	n int
}

func (s *divergentSession) Step(chunk []byte) {
	p := s.e.Malloc(32)
	s.n++
	if s.n == 5 {
		// The bug: output depends on the heap address.
		s.e.Printf("result %d\n", p%97)
	} else {
		s.e.Printf("result %d\n", s.n)
	}
	s.e.Free(p)
}

func TestServeDetectsOutputDivergence(t *testing.T) {
	chunks := make([][]byte, 10)
	for i := range chunks {
		chunks[i] = []byte("x")
	}
	res := Serve(divergentService{}, chunks, nil, Options{HeapSeed: 5, Replicas: 3})
	if len(res.Incidents) == 0 {
		t.Fatal("address-dependent output not flagged")
	}
	if res.Incidents[0].Detection != "output divergence" {
		t.Fatalf("detection = %q", res.Incidents[0].Detection)
	}
	if res.Incidents[0].Chunk != 4 {
		t.Fatalf("flagged chunk %d, want 4", res.Incidents[0].Chunk)
	}
	// The voter still emitted SOME plurality output for every chunk.
	if res.Chunks != 10 {
		t.Fatal("service stopped")
	}
}
