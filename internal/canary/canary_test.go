package canary

import (
	"bytes"
	"testing"
	"testing/quick"

	"exterminator/internal/xrand"
)

func TestLowBitAlwaysSet(t *testing.T) {
	rng := xrand.New(1)
	for i := 0; i < 1000; i++ {
		if c := New(rng); uint32(c)&1 == 0 {
			t.Fatalf("canary %08x has clear low bit", uint32(c))
		}
	}
}

func TestCanariesDifferAcrossSeeds(t *testing.T) {
	a := New(xrand.New(1))
	b := New(xrand.New(2))
	if a == b {
		t.Fatal("canaries identical across seeds")
	}
}

func TestFillVerifyRoundTrip(t *testing.T) {
	c := New(xrand.New(3))
	for _, n := range []int{0, 1, 3, 4, 7, 8, 16, 255, 256} {
		buf := make([]byte, n)
		c.Fill(buf)
		if !c.Verify(buf) {
			t.Fatalf("fresh fill of %d bytes fails verify", n)
		}
	}
}

func TestVerifyDetectsAnySingleByteFlip(t *testing.T) {
	c := New(xrand.New(4))
	buf := make([]byte, 64)
	c.Fill(buf)
	for i := range buf {
		orig := buf[i]
		buf[i] ^= 0xff
		if c.Verify(buf) {
			t.Fatalf("flip at %d undetected", i)
		}
		buf[i] = orig
	}
}

func TestCorruptRangesLocatesOverflowString(t *testing.T) {
	c := New(xrand.New(5))
	buf := make([]byte, 64)
	c.Fill(buf)
	overflow := []byte("OVERFLOW")
	copy(buf[10:], overflow)
	rs := c.CorruptRanges(buf)
	if len(rs) == 0 {
		t.Fatal("no corruption found")
	}
	// The detected range must cover the overflow string (bytes of the
	// string that happen to equal the canary pattern may split it).
	if rs[0].Start < 10 || rs[len(rs)-1].End > 10+len(overflow) {
		t.Fatalf("ranges %v outside [10,18)", rs)
	}
	total := 0
	for _, r := range rs {
		total += r.Len()
		if !bytes.Equal(r.Bytes, buf[r.Start:r.End]) {
			t.Fatal("range bytes do not match buffer")
		}
	}
	if total < len(overflow)-2 { // allow ≤2 accidental pattern matches
		t.Fatalf("only %d corrupted bytes found", total)
	}
}

func TestCorruptRangesIntactIsNil(t *testing.T) {
	c := New(xrand.New(6))
	buf := make([]byte, 32)
	c.Fill(buf)
	if rs := c.CorruptRanges(buf); rs != nil {
		t.Fatalf("intact buffer reported ranges %v", rs)
	}
}

func TestCorruptRangesMultipleSegments(t *testing.T) {
	c := New(xrand.New(7))
	buf := make([]byte, 64)
	c.Fill(buf)
	buf[5] ^= 0x55
	buf[40] ^= 0x55
	rs := c.CorruptRanges(buf)
	if len(rs) != 2 {
		t.Fatalf("got %d ranges, want 2: %v", len(rs), rs)
	}
	if rs[0].Start != 5 || rs[0].End != 6 || rs[1].Start != 40 {
		t.Fatalf("ranges %v", rs)
	}
}

func TestByteMatchesFillAtAllPhases(t *testing.T) {
	c := Canary(0x11223345)
	buf := make([]byte, 9)
	c.Fill(buf)
	for i, b := range buf {
		if c.Byte(i) != b {
			t.Fatalf("Byte(%d) = %02x, fill = %02x", i, c.Byte(i), b)
		}
	}
	if buf[0] != 0x45 || buf[1] != 0x33 || buf[4] != 0x45 {
		t.Fatalf("little-endian repetition wrong: % x", buf)
	}
}

func TestWord64(t *testing.T) {
	c := Canary(0xdeadbeef)
	if c.Word64() != 0xdeadbeefdeadbeef {
		t.Fatalf("Word64 = %x", c.Word64())
	}
	// Low bit of the word equals the canary's low bit: the alignment trap.
	c2 := New(xrand.New(8))
	if c2.Word64()&1 != 1 {
		t.Fatal("Word64 low bit clear")
	}
}

func TestPropertyVerifyIffUncorrupted(t *testing.T) {
	c := New(xrand.New(9))
	if err := quick.Check(func(n uint8, flip uint8, doFlip bool) bool {
		size := int(n%128) + 1
		buf := make([]byte, size)
		c.Fill(buf)
		if !doFlip {
			return c.Verify(buf)
		}
		i := int(flip) % size
		buf[i] ^= 0x01
		return !c.Verify(buf) && len(c.CorruptRanges(buf)) == 1
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFill256(b *testing.B) {
	c := New(xrand.New(1))
	buf := make([]byte, 256)
	for i := 0; i < b.N; i++ {
		c.Fill(buf)
	}
}

func BenchmarkVerify256(b *testing.B) {
	c := New(xrand.New(1))
	buf := make([]byte, 256)
	c.Fill(buf)
	for i := 0; i < b.N; i++ {
		c.Verify(buf)
	}
}
