// Package canary implements DieFast's random canaries (paper §3.3).
//
// Unlike traditional debugging allocators that use a fixed pattern such as
// 0xDEADBEEF, DieFast chooses a random 32-bit value at startup so that any
// fixed program data value collides with the canary with probability at
// most 1/2^31. The canary's last bit is always set: if a program reads a
// canary through a dangling pointer and dereferences it, the misaligned
// address traps immediately (see mem.Align).
//
// Canaries fill *freed* space. Combined with DieHard's headerless layout
// and E(M-1) freed objects between live ones, freed space acts as implicit
// fence-posts at zero space overhead.
package canary

import "exterminator/internal/xrand"

// Canary is the process-wide random 32-bit canary value.
type Canary uint32

// New draws a random canary with the low bit set.
func New(rng *xrand.RNG) Canary {
	return Canary(rng.Uint32() | 1)
}

// Byte returns the canary byte expected at offset off of a canary-filled
// buffer (the 4-byte little-endian pattern repeats from the buffer start).
func (c Canary) Byte(off int) byte {
	return byte(uint32(c) >> (8 * uint(off&3)))
}

// Fill overwrites buf with the repeating canary pattern.
func (c Canary) Fill(buf []byte) {
	for i := range buf {
		buf[i] = c.Byte(i)
	}
}

// Verify reports whether buf contains an intact canary fill.
func (c Canary) Verify(buf []byte) bool {
	for i, b := range buf {
		if b != c.Byte(i) {
			return false
		}
	}
	return true
}

// Range is a contiguous corrupted byte range [Start, End) within a
// canary-filled buffer, together with the bytes observed there. Ranges are
// the raw material of the error isolator: they locate overflow strings.
type Range struct {
	Start, End int
	Bytes      []byte
}

// Len returns the number of corrupted bytes.
func (r Range) Len() int { return r.End - r.Start }

// CorruptRanges returns the maximal contiguous ranges of buf that differ
// from the canary pattern, in ascending order. An intact buffer yields nil.
func (c Canary) CorruptRanges(buf []byte) []Range {
	var out []Range
	i := 0
	for i < len(buf) {
		if buf[i] == c.Byte(i) {
			i++
			continue
		}
		j := i + 1
		for j < len(buf) && buf[j] != c.Byte(j) {
			j++
		}
		seg := make([]byte, j-i)
		copy(seg, buf[i:j])
		out = append(out, Range{Start: i, End: j, Bytes: seg})
		i = j
	}
	return out
}

// Word64 returns the 64-bit value a load would observe from a
// canary-filled region at an 8-aligned offset: two repetitions of the
// 32-bit pattern. Useful for tests that model dereferencing a canary.
func (c Canary) Word64() uint64 {
	return uint64(c)<<32 | uint64(c)
}
