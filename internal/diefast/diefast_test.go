package diefast

import (
	"testing"

	"exterminator/internal/alloc"
	"exterminator/internal/mem"
	"exterminator/internal/xrand"
)

func newHeap(seed uint64) *Heap {
	return New(DefaultConfig(), xrand.New(seed))
}

func TestZeroFillOnMalloc(t *testing.T) {
	h := newHeap(1)
	p, err := h.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Free (fills with canary), then re-allocating the same slot later
	// must hand back zeroed memory.
	h.Free(p, 0)
	for i := 0; i < 200; i++ {
		q, _ := h.Malloc(64, 0)
		buf := make([]byte, 64)
		if f := h.Space().Read(q, buf); f != nil {
			t.Fatal(f)
		}
		for j, b := range buf {
			if b != 0 {
				t.Fatalf("allocation not zero-filled at byte %d: %02x", j, b)
			}
		}
	}
}

func TestFreeFillsWithCanary(t *testing.T) {
	h := newHeap(2)
	p, _ := h.Malloc(48, 0)
	h.Free(p, 0)
	mh, slot, ok := h.Diehard().Lookup(p)
	if !ok {
		t.Fatal("lookup failed")
	}
	if !mh.Meta(slot).Canaried {
		t.Fatal("AlwaysFill mode did not canary the slot")
	}
	if !h.Canary().Verify(mh.SlotData(slot)) {
		t.Fatal("freed slot does not hold intact canary")
	}
}

func TestProbabilisticFillRate(t *testing.T) {
	h := New(CumulativeConfig(0.5), xrand.New(3))
	canaried, total := 0, 0
	for i := 0; i < 2000; i++ {
		p, _ := h.Malloc(32, 0)
		h.Free(p, 0)
		mh, slot, _ := h.Diehard().Lookup(p)
		total++
		if mh.Meta(slot).Canaried {
			canaried++
		}
	}
	rate := float64(canaried) / float64(total)
	if rate < 0.42 || rate > 0.58 {
		t.Fatalf("canary fill rate = %.3f, want ~0.5", rate)
	}
}

func TestOverflowDetectedOnAllocOrFree(t *testing.T) {
	// Corrupt a freed, canaried slot directly; DieFast must detect it
	// within a bounded number of subsequent allocations (E(H) bound).
	h := newHeap(4)
	var victim mem.Addr
	for i := 0; i < 20; i++ {
		p, _ := h.Malloc(40, 0)
		if i == 10 {
			victim = p
		}
	}
	h.Free(victim, 0)
	// Simulated overflow into the freed slot.
	h.Space().Write(victim+8, []byte("SMASHED!"))

	seen := false
	h.OnError = func(e Event) { seen = true }
	for i := 0; i < 5000 && !seen; i++ {
		p, _ := h.Malloc(40, 0)
		h.Free(p, 0)
	}
	if !seen {
		t.Fatal("corruption never detected")
	}
	ev := h.Events()[0]
	mh, slot, _ := h.Diehard().Lookup(victim)
	if ev.Mini != mh.Index || ev.Slot != slot {
		t.Fatalf("event %v does not locate victim slot %d/%d", ev, mh.Index, slot)
	}
}

func TestBadObjectIsolationPreservesContents(t *testing.T) {
	h := newHeap(5)
	p, _ := h.Malloc(40, 0)
	h.Free(p, 0)
	h.Space().Write(p, []byte("EVIDENCE"))

	h.OnError = func(Event) {}
	// Churn until the corrupted slot is probed and isolated.
	for i := 0; i < 5000 && len(h.Events()) == 0; i++ {
		q, _ := h.Malloc(40, 0)
		h.Free(q, 0)
	}
	if len(h.Events()) == 0 {
		t.Fatal("corruption not found")
	}
	mh, slot, _ := h.Diehard().Lookup(p)
	if !mh.Meta(slot).Bad {
		t.Fatal("corrupted slot not marked bad")
	}
	buf := make([]byte, 8)
	h.Space().Read(p, buf)
	if string(buf) != "EVIDENCE" {
		t.Fatalf("contents not preserved: %q", buf)
	}
	// And the slot is never returned again.
	for i := 0; i < 2000; i++ {
		q, _ := h.Malloc(40, 0)
		if q == p {
			t.Fatal("bad slot reused")
		}
	}
}

func TestNeighborCheckFindsOverflowOnFree(t *testing.T) {
	// Allocate a cluster, free one slot (canaried), overflow into it from
	// the adjacent object, then free that object: the neighbour check
	// should fire immediately.
	h := newHeap(6)
	ptrs := make([]mem.Addr, 0, 64)
	for i := 0; i < 64; i++ {
		p, _ := h.Malloc(24, 0)
		ptrs = append(ptrs, p)
	}
	// Find two physically adjacent allocations.
	var left, right mem.Addr
	for _, a := range ptrs {
		for _, b := range ptrs {
			if b == a+32 { // slot size for class of 24 bytes is 32
				left, right = a, b
			}
		}
	}
	if left == 0 {
		t.Skip("no physically adjacent pair in this layout")
	}
	h.Free(right, 0)                                                                       // right is now canaried
	h.Space().Write(left+24, []byte{0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE}) // spills into right
	h.Free(left, 0)
	found := false
	for _, e := range h.Events() {
		if e.Kind == CorruptOnFreeNeighbor {
			found = true
		}
	}
	if !found {
		t.Fatalf("neighbour check did not fire; events: %v", h.Events())
	}
}

func TestScanFindsAllCorruptions(t *testing.T) {
	h := newHeap(7)
	var freed []mem.Addr
	for i := 0; i < 50; i++ {
		p, _ := h.Malloc(32, 0)
		freed = append(freed, p)
	}
	for _, p := range freed {
		h.Free(p, 0)
	}
	h.Space().Write(freed[3]+4, []byte("xx"))
	h.Space().Write(freed[17]+0, []byte("yyyy"))
	cs := h.Scan(false)
	if len(cs) != 2 {
		t.Fatalf("scan found %d corruptions, want 2", len(cs))
	}
	for _, c := range cs {
		if len(c.Ranges) == 0 {
			t.Fatal("corruption without ranges")
		}
	}
	if len(h.Events()) != 0 {
		t.Fatal("Scan(false) raised events")
	}
	if got := h.Scan(true); len(got) != 2 || len(h.Events()) != 2 {
		t.Fatal("Scan(true) did not signal")
	}
}

func TestDoubleAndInvalidFreeStillBenign(t *testing.T) {
	h := newHeap(8)
	p, _ := h.Malloc(16, 0)
	h.Free(p, 0)
	if st := h.Free(p, 0); st != alloc.FreeDouble {
		t.Fatalf("double free = %v", st)
	}
	if st := h.Free(0x1234567, 0); st != alloc.FreeInvalid {
		t.Fatalf("invalid free = %v", st)
	}
	if len(h.Events()) != 0 {
		t.Fatal("benign frees raised events")
	}
}

func TestIDsAlignedAcrossReplicasDespiteBadIsolation(t *testing.T) {
	// Replica A suffers corruption (bad-isolated slot); replica B does
	// not. Subsequent object ids must stay aligned.
	a, b := newHeap(100), newHeap(200)
	a.OnError = func(Event) {}
	pa, _ := a.Malloc(32, 0)
	pb, _ := b.Malloc(32, 0)
	a.Free(pa, 0)
	b.Free(pb, 0)
	a.Space().Write(pa, []byte("CORRUPT!"))
	for i := 0; i < 3000; i++ {
		qa, _ := a.Malloc(32, 1)
		qb, _ := b.Malloc(32, 1)
		ma, sa, _ := a.Diehard().Lookup(qa)
		mb, sb, _ := b.Diehard().Lookup(qb)
		if ma.Meta(sa).ID != mb.Meta(sb).ID {
			t.Fatalf("ids diverged at %d: %d vs %d", i, ma.Meta(sa).ID, mb.Meta(sb).ID)
		}
	}
	if len(a.Events()) == 0 {
		t.Fatal("replica A never detected the corruption")
	}
}

func TestCanaryWordLowBitSet(t *testing.T) {
	h := newHeap(9)
	if uint32(h.Canary())&1 == 0 {
		t.Fatal("canary low bit clear")
	}
}

func TestChecksCounted(t *testing.T) {
	h := newHeap(10)
	p, _ := h.Malloc(16, 0)
	h.Free(p, 0)
	before := h.Checks()
	for i := 0; i < 100; i++ {
		q, _ := h.Malloc(16, 0)
		h.Free(q, 0)
	}
	if h.Checks() == before {
		t.Fatal("no canary checks performed during churn")
	}
}

func BenchmarkDieFastMallocFree(b *testing.B) {
	h := newHeap(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := h.Malloc(64, 0)
		h.Free(p, 0)
	}
}

func BenchmarkDieFastMallocFreeNoFill(b *testing.B) {
	// Ablation: canary fill probability p≈0 isolates the cost of filling
	// and verifying canaries.
	cfg := CumulativeConfig(0.001)
	h := New(cfg, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := h.Malloc(64, 0)
		h.Free(p, 0)
	}
}
