// Package diefast implements DieFast, Exterminator's probabilistic
// debugging allocator (paper §3.3, Figure 4).
//
// DieFast keeps DieHard's randomized, over-provisioned layout and adds
// error *detection*:
//
//   - Freed space is (probabilistically) filled with a process-wide random
//     canary whose low bit is set. Freed slots double as implicit
//     fence-posts: no per-object padding is needed because live objects are
//     separated by E(M−1) freed slots.
//   - malloc verifies the canary of the slot about to be returned; a
//     corrupted slot signals an error and is "bad-object isolated": left
//     allocated forever so its contents survive for the error isolator.
//   - free checks both physically adjacent slots; a freed, canaried
//     neighbour with a broken canary signals a buffer overflow immediately.
//
// In iterative/replicated modes every freed slot is canaried (AlwaysFill);
// cumulative mode fills with probability p (default 1/2) so that canary
// placement becomes a Bernoulli trial that the §5.2 dangling-pointer
// isolation can correlate with failures.
//
// Allocated objects are zero-filled: Exterminator does not detect
// uninitialized reads (Table 1), it defines them away.
package diefast

import (
	"fmt"

	"exterminator/internal/alloc"
	"exterminator/internal/canary"
	"exterminator/internal/diehard"
	"exterminator/internal/heap"
	"exterminator/internal/mem"
	"exterminator/internal/site"
	"exterminator/internal/xrand"
)

// EventKind distinguishes how a corruption was discovered.
type EventKind int

const (
	// CorruptOnAlloc: malloc found the canary of the slot it was about to
	// return overwritten.
	CorruptOnAlloc EventKind = iota
	// CorruptOnFreeNeighbor: free found an adjacent freed slot's canary
	// overwritten.
	CorruptOnFreeNeighbor
	// CorruptOnScan: a full-heap sweep (cumulative mode end-of-run check)
	// found an overwritten canary.
	CorruptOnScan
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case CorruptOnAlloc:
		return "corrupt-on-alloc"
	case CorruptOnFreeNeighbor:
		return "corrupt-on-free-neighbor"
	case CorruptOnScan:
		return "corrupt-on-scan"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is a DieFast error signal: heap corruption detected at a specific
// slot. The victim's identity (the overwritten freed object) is recorded;
// finding the culprit is the error isolator's job.
type Event struct {
	Kind     EventKind
	Mini     int           // miniheap index
	Slot     int           // slot within the miniheap
	Addr     mem.Addr      // slot address
	VictimID heap.ObjectID // most recent occupant of the corrupted slot
	Clock    uint64        // allocation clock at detection
}

// String formats the event.
func (e Event) String() string {
	return fmt.Sprintf("%s mini=%d slot=%d addr=0x%x victim=%d t=%d",
		e.Kind, e.Mini, e.Slot, e.Addr, e.VictimID, e.Clock)
}

// Config parameterizes DieFast.
type Config struct {
	Diehard diehard.Config
	// AlwaysFill fills every freed slot with canaries (iterative and
	// replicated modes; "notCumulativeMode" in Figure 4).
	AlwaysFill bool
	// FillProb is the canary fill probability p when AlwaysFill is false.
	// The paper sets p = 1/2 (§5.2).
	FillProb float64
	// LogFrees records a FreeRecord per successful free — the per-run
	// Bernoulli-trial data cumulative-mode dangling isolation needs
	// (paper §5.2).
	LogFrees bool
}

// FreeRecord is one entry of the cumulative-mode free log.
type FreeRecord struct {
	ID        heap.ObjectID
	AllocSite site.ID
	FreeSite  site.ID
	FreeTime  uint64
	Canaried  bool
	Class     int
}

// DefaultConfig returns the iterative/replicated-mode configuration.
func DefaultConfig() Config {
	return Config{Diehard: diehard.DefaultConfig(), AlwaysFill: true, FillProb: 0.5}
}

// CumulativeConfig returns the cumulative-mode configuration with canary
// probability p (the paper's p = 1/2) and allocation/free logging enabled.
func CumulativeConfig(p float64) Config {
	dh := diehard.DefaultConfig()
	dh.LogAllocs = true
	return Config{Diehard: dh, AlwaysFill: false, FillProb: p, LogFrees: true}
}

// Heap is a DieFast heap.
type Heap struct {
	dh  *diehard.Heap
	can canary.Canary
	cfg Config
	rng *xrand.RNG

	// OnError, if set, is invoked synchronously for each detection. The
	// driver uses it to stop execution and dump a heap image.
	OnError func(Event)

	events  []Event
	checks  uint64 // canary verifications performed (perf accounting)
	freeLog []FreeRecord
}

var _ alloc.Allocator = (*Heap)(nil)

// New creates a DieFast heap. rng seeds the heap layout, the canary value
// and the probabilistic fill decisions; different seeds yield fully
// independent heaps.
func New(cfg Config, rng *xrand.RNG) *Heap {
	if cfg.FillProb <= 0 || cfg.FillProb > 1 {
		cfg.FillProb = 0.5
	}
	space := mem.NewSpace(rng.Split())
	return &Heap{
		dh:  diehard.New(cfg.Diehard, space, rng.Split()),
		can: canary.New(rng),
		cfg: cfg,
		rng: rng.Split(),
	}
}

// Diehard exposes the underlying DieHard heap (for image capture and the
// correcting allocator).
func (h *Heap) Diehard() *diehard.Heap { return h.dh }

// Space returns the simulated address space.
func (h *Heap) Space() *mem.Space { return h.dh.Space() }

// Canary returns the process-wide canary value.
func (h *Heap) Canary() canary.Canary { return h.can }

// Clock returns the allocation clock.
func (h *Heap) Clock() uint64 { return h.dh.Clock() }

// Events returns all error signals raised so far.
func (h *Heap) Events() []Event { return h.events }

// Checks returns the number of canary verifications performed.
func (h *Heap) Checks() uint64 { return h.checks }

// Malloc implements Figure 4's diefast_malloc: allocate, verify that the
// slot's canary (if any) is intact, signal and bad-isolate on corruption,
// and zero-fill the returned object.
func (h *Heap) Malloc(size int, allocSite site.ID) (mem.Addr, error) {
	class := alloc.ClassForSize(size)
	if class < 0 {
		return 0, fmt.Errorf("diefast: unsatisfiable request of %d bytes", size)
	}
	for {
		mh, slot := h.dh.AllocSlot(class)
		m := mh.Meta(slot)
		if m.Canaried {
			h.checks++
			if !h.can.Verify(mh.SlotData(slot)) {
				// Corrupted: signal, isolate, and try another slot. The
				// object id is NOT consumed, so ids stay aligned across
				// replicas that did not observe this corruption.
				h.dh.MarkBad(mh, slot)
				h.signal(Event{
					Kind: CorruptOnAlloc, Mini: mh.Index, Slot: slot,
					Addr: mh.SlotAddr(slot), VictimID: m.ID, Clock: h.dh.Clock(),
				})
				continue
			}
		}
		addr := h.dh.Commit(mh, slot, size, allocSite)
		m.Canaried = false
		zero(mh.SlotData(slot))
		return addr, nil
	}
}

// Free implements Figure 4's diefast_free: release the slot,
// probabilistically canary it, and verify the canaries of both physically
// adjacent slots if they are free.
func (h *Heap) Free(ptr mem.Addr, freeSite site.ID) alloc.FreeStatus {
	mh, slot, ok := h.dh.Lookup(ptr)
	if !ok {
		return h.dh.Free(ptr, freeSite) // counts the invalid free
	}
	st := h.dh.Free(ptr, freeSite)
	if st != alloc.FreeOK {
		return st
	}
	m := mh.Meta(slot)
	// Probabilistically fill with canary (always outside cumulative mode).
	if h.cfg.AlwaysFill || h.rng.Bool(h.cfg.FillProb) {
		h.can.Fill(mh.SlotData(slot))
		m.Canaried = true
	} else {
		m.Canaried = false
	}
	if h.cfg.LogFrees {
		h.freeLog = append(h.freeLog, FreeRecord{
			ID: m.ID, AllocSite: m.AllocSite, FreeSite: m.FreeSite,
			FreeTime: m.FreeTime, Canaried: m.Canaried, Class: mh.Class,
		})
	}
	// Check the preceding and following slots.
	h.checkNeighbor(mh, slot-1)
	h.checkNeighbor(mh, slot+1)
	return st
}

// FreeLog returns the free log (nil unless Config.LogFrees).
func (h *Heap) FreeLog() []FreeRecord { return h.freeLog }

func (h *Heap) checkNeighbor(mh *heap.Miniheap, slot int) {
	if slot < 0 || slot >= mh.Slots || mh.InUse(slot) {
		return
	}
	m := mh.Meta(slot)
	if !m.Canaried {
		return
	}
	h.checks++
	if h.can.Verify(mh.SlotData(slot)) {
		return
	}
	// Preserve the evidence exactly as the alloc-time check does.
	h.dh.Isolate(mh, slot)
	h.signal(Event{
		Kind: CorruptOnFreeNeighbor, Mini: mh.Index, Slot: slot,
		Addr: mh.SlotAddr(slot), VictimID: m.ID, Clock: h.dh.Clock(),
	})
}

// Corruption describes one corrupted canaried slot found by Scan.
type Corruption struct {
	Mini, Slot int
	VictimID   heap.ObjectID
	Ranges     []canary.Range // corrupted byte ranges within the slot
}

// Scan sweeps the whole heap for overwritten canaries — the cumulative
// mode's corruption check and the basis of the paper's claim that heap
// corruption is caught within E(H) allocations. Scan itself raises no
// events unless signal is true.
func (h *Heap) Scan(signal bool) []Corruption {
	var out []Corruption
	for _, mh := range h.dh.Miniheaps() {
		for slot := 0; slot < mh.Slots; slot++ {
			m := mh.Meta(slot)
			if mh.InUse(slot) && !m.Bad {
				continue
			}
			if !m.Canaried {
				continue
			}
			h.checks++
			rs := h.can.CorruptRanges(mh.SlotData(slot))
			if len(rs) == 0 {
				continue
			}
			out = append(out, Corruption{Mini: mh.Index, Slot: slot, VictimID: m.ID, Ranges: rs})
			if signal {
				h.signal(Event{
					Kind: CorruptOnScan, Mini: mh.Index, Slot: slot,
					Addr: mh.SlotAddr(slot), VictimID: m.ID, Clock: h.dh.Clock(),
				})
			}
		}
	}
	return out
}

func (h *Heap) signal(e Event) {
	h.events = append(h.events, e)
	if h.OnError != nil {
		h.OnError(e)
	}
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
