// Package mem implements the simulated 64-bit address space on which every
// allocator in this reproduction operates.
//
// Exterminator (PLDI 2007) is a C/C++ runtime; Go's garbage-collected
// runtime cannot host the real thing, so — per the reproduction's
// substitution rule — we run its algorithms over a byte-accurate simulated
// heap instead. A Space maps miniheap-sized Regions at random,
// non-overlapping base addresses (mirroring DieHard's randomly located
// miniheaps, §5.1 of the paper: "miniheaps are randomly located throughout
// the whole address space"). All mutator loads and stores go through the
// Space, which reproduces the two hardware traps the paper relies on:
//
//   - SegFault: access to an unmapped address (e.g. dereferencing a
//     canary-filled pointer, whose value is never a mapped base);
//   - AlignFault: word access at a misaligned address (the canary's low bit
//     is set precisely so that dereferencing it misaligns, §3.3).
//
// Faults are reported as *Fault values; the mutator layer converts them to
// panics that the execution driver recovers, playing the role of the
// paper's signal handler that dumps a heap image on SIGSEGV.
package mem

import (
	"fmt"
	"sort"

	"exterminator/internal/xrand"
)

// Addr is a simulated 64-bit address.
type Addr = uint64

// FaultKind classifies simulated hardware traps.
type FaultKind int

const (
	// SegV is an access to an unmapped address.
	SegV FaultKind = iota
	// Align is a misaligned word access.
	Align
)

// String returns the conventional signal-style name of the fault kind.
func (k FaultKind) String() string {
	switch k {
	case SegV:
		return "SIGSEGV"
	case Align:
		return "SIGBUS"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault describes a simulated hardware trap. It implements error and is
// also used as a panic value by the mutator layer.
type Fault struct {
	Kind FaultKind
	Addr Addr
	Op   string // "read", "write", ...
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("%s: %s at 0x%x", f.Kind, f.Op, f.Addr)
}

// Region is a contiguous mapped range of the simulated address space.
type Region struct {
	Base Addr
	Data []byte
	// Tag lets the owner (a miniheap, a freelist arena) identify itself
	// when an address is resolved back to its region.
	Tag any
}

// Size returns the region length in bytes.
func (r *Region) Size() int { return len(r.Data) }

// End returns the first address past the region.
func (r *Region) End() Addr { return r.Base + Addr(len(r.Data)) }

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr Addr) bool {
	return addr >= r.Base && addr < r.End()
}

// Space is a simulated address space: a set of disjoint Regions. The zero
// value is not usable; call NewSpace.
type Space struct {
	regions []*Region // sorted by Base
	rng     *xrand.RNG
	mapped  int // total mapped bytes
}

// Page-size alignment for random placement. Generous alignment keeps
// region bases well separated, as with mmap on a real system.
const baseAlign = 1 << 12

// addrBits bounds randomly chosen bases to a 47-bit user-space-like range,
// leaving the top of the address space unmapped so that canary values
// (which have high random bits) never collide with a mapped region.
const addrBits = 47

// NewSpace returns an empty address space whose random placement is driven
// by rng.
func NewSpace(rng *xrand.RNG) *Space {
	return &Space{rng: rng}
}

// MappedBytes returns the total number of currently mapped bytes.
func (s *Space) MappedBytes() int { return s.mapped }

// NumRegions returns the number of mapped regions.
func (s *Space) NumRegions() int { return len(s.regions) }

// Map allocates a region of the given size at a random, aligned,
// non-overlapping base address and returns it.
func (s *Space) Map(size int, tag any) *Region {
	if size <= 0 {
		panic("mem: Map with non-positive size")
	}
	for {
		base := (s.rng.Uint64() % (1 << addrBits)) &^ (baseAlign - 1)
		if base == 0 {
			continue // keep address 0 unmapped so nil-like pointers fault
		}
		if base+Addr(size) < base { // wrap
			continue
		}
		if s.overlaps(base, size) {
			continue
		}
		r := &Region{Base: base, Data: make([]byte, size), Tag: tag}
		s.insert(r)
		s.mapped += size
		return r
	}
}

// MapAt maps a region at a specific base address (used by tests and by the
// image loader to reconstruct a heap exactly). It panics if the placement
// overlaps an existing region or is unaligned to 8 bytes.
func (s *Space) MapAt(base Addr, size int, tag any) *Region {
	if size <= 0 {
		panic("mem: MapAt with non-positive size")
	}
	if base%8 != 0 {
		panic("mem: MapAt with misaligned base")
	}
	if s.overlaps(base, size) {
		panic(fmt.Sprintf("mem: MapAt overlap at 0x%x", base))
	}
	r := &Region{Base: base, Data: make([]byte, size), Tag: tag}
	s.insert(r)
	s.mapped += size
	return r
}

// Unmap removes a region from the space. Accesses to its range fault
// afterwards.
func (s *Space) Unmap(r *Region) {
	i := s.search(r.Base)
	if i < len(s.regions) && s.regions[i] == r {
		s.regions = append(s.regions[:i], s.regions[i+1:]...)
		s.mapped -= len(r.Data)
		return
	}
	panic("mem: Unmap of region not in space")
}

func (s *Space) overlaps(base Addr, size int) bool {
	i := s.search(base)
	if i < len(s.regions) && s.regions[i].Base < base+Addr(size) {
		return true
	}
	if i > 0 && s.regions[i-1].End() > base {
		return true
	}
	return false
}

// search returns the index of the first region with Base >= addr.
func (s *Space) search(addr Addr) int {
	return sort.Search(len(s.regions), func(i int) bool {
		return s.regions[i].Base >= addr
	})
}

// Find returns the region containing addr, or nil if addr is unmapped.
func (s *Space) Find(addr Addr) *Region {
	i := s.search(addr)
	if i < len(s.regions) && s.regions[i].Contains(addr) {
		return s.regions[i]
	}
	if i > 0 && s.regions[i-1].Contains(addr) {
		return s.regions[i-1]
	}
	return nil
}

// Regions calls fn for every mapped region in ascending base order.
func (s *Space) Regions(fn func(*Region)) {
	for _, r := range s.regions {
		fn(r)
	}
}

// resolve locates the region for an n-byte access at addr, faulting if the
// access is unmapped or spills past the region end (an overflow that walks
// off a miniheap hits unmapped space, as in the paper's §5.1 assumption).
func (s *Space) resolve(addr Addr, n int, op string) (*Region, int, *Fault) {
	r := s.Find(addr)
	if r == nil {
		return nil, 0, &Fault{Kind: SegV, Addr: addr, Op: op}
	}
	off := int(addr - r.Base)
	if off+n > len(r.Data) {
		return nil, 0, &Fault{Kind: SegV, Addr: r.End(), Op: op}
	}
	return r, off, nil
}

// Read copies len(buf) bytes starting at addr into buf.
func (s *Space) Read(addr Addr, buf []byte) *Fault {
	r, off, f := s.resolve(addr, len(buf), "read")
	if f != nil {
		return f
	}
	copy(buf, r.Data[off:])
	return nil
}

// Write copies buf into the space starting at addr.
func (s *Space) Write(addr Addr, buf []byte) *Fault {
	r, off, f := s.resolve(addr, len(buf), "write")
	if f != nil {
		return f
	}
	copy(r.Data[off:], buf)
	return nil
}

// Read64 loads a 64-bit little-endian word. Misaligned loads raise an
// Align fault — this is how a dereferenced canary (low bit set) traps.
func (s *Space) Read64(addr Addr) (uint64, *Fault) {
	if addr%8 != 0 {
		return 0, &Fault{Kind: Align, Addr: addr, Op: "read64"}
	}
	r, off, f := s.resolve(addr, 8, "read64")
	if f != nil {
		return 0, f
	}
	return le64(r.Data[off:]), nil
}

// Write64 stores a 64-bit little-endian word, with the same alignment rule
// as Read64.
func (s *Space) Write64(addr Addr, v uint64) *Fault {
	if addr%8 != 0 {
		return &Fault{Kind: Align, Addr: addr, Op: "write64"}
	}
	r, off, f := s.resolve(addr, 8, "write64")
	if f != nil {
		return f
	}
	putLE64(r.Data[off:], v)
	return nil
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func (s *Space) insert(r *Region) {
	i := s.search(r.Base)
	s.regions = append(s.regions, nil)
	copy(s.regions[i+1:], s.regions[i:])
	s.regions[i] = r
}
